package gowren

import (
	"encoding/json"
	"time"

	"gowren/internal/core"
	"gowren/internal/cos"
	"gowren/internal/vclock"
	"gowren/internal/wire"
)

// Executor is the public face of the programming model (paper §4): it
// issues asynchronous calls and tracks their futures. Obtain one with
// Cloud.Executor and use it from inside Cloud.Run.
type Executor struct {
	inner *core.Executor
	clock vclock.Clock
}

// ID returns the executor's unique identifier.
func (e *Executor) ID() string { return e.inner.ID() }

// JobID returns the durable job identifier — the handle a later driver
// passes to Cloud.Attach to resume this executor's job after a crash. It is
// the same value as ID; the separate name marks it as the piece worth
// persisting outside the process.
func (e *Executor) JobID() string { return e.inner.ID() }

// Core exposes the underlying engine executor for harness-level access.
func (e *Executor) Core() *core.Executor { return e.inner }

// CallAsync runs one function asynchronously (Table 2: call_async).
func (e *Executor) CallAsync(function string, arg any) (*Future, error) {
	return e.inner.CallAsync(function, arg)
}

// Map runs one invocation of function per argument (Table 2: map).
func (e *Executor) Map(function string, args ...any) ([]*Future, error) {
	return e.inner.Map(function, args)
}

// MapSlice is Map over a prebuilt argument slice.
func (e *Executor) MapSlice(function string, args []any) ([]*Future, error) {
	return e.inner.Map(function, args)
}

// MapReduceOptions re-exports the engine's map_reduce knobs.
type MapReduceOptions = core.MapReduceOptions

// MapReduce runs a full MapReduce flow (Table 2: map_reduce) with automatic
// data discovery and partitioning for storage-backed sources (§4.3).
func (e *Executor) MapReduce(mapFn string, src DataSource, reduceFn string, opts MapReduceOptions) ([]*Future, error) {
	return e.inner.MapReduce(mapFn, src, reduceFn, opts)
}

// Wait applies a wait strategy to the tracked futures (Table 2: wait).
// A zero timeout waits indefinitely (except for WaitAlways, which never
// blocks).
func (e *Executor) Wait(strategy core.WaitStrategy, timeout time.Duration) (done, pending []*Future, err error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = e.clock.Now().Add(timeout)
	}
	return e.inner.Wait(strategy, deadline)
}

// GetResultOptions re-exports the engine's get_result knobs (timeout,
// progress callback).
type GetResultOptions = core.GetResultOptions

// GetResult waits for all tracked calls and returns their raw JSON results
// in call order, following dynamic compositions transparently (Table 2:
// get_result). For typed access use the Results helper.
func (e *Executor) GetResult(opts ...GetResultOptions) ([]json.RawMessage, error) {
	var o GetResultOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	return e.inner.GetResult(o)
}

// Clean deletes every object the executor staged or produced in the meta
// bucket (PyWren's clean()). Futures become unusable afterwards.
func (e *Executor) Clean() error { return e.inner.Clean() }

// WaitThreshold waits until at least frac (0,1] of the tracked calls have
// completed. A zero timeout waits indefinitely.
func (e *Executor) WaitThreshold(frac float64, timeout time.Duration) (done, pending []*Future, err error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = e.clock.Now().Add(timeout)
	}
	return e.inner.WaitThreshold(frac, deadline)
}

// FailedFutures returns the tracked calls known to have failed (failure
// status or dead activation).
func (e *Executor) FailedFutures() ([]*Future, error) { return e.inner.FailedFutures() }

// Respawn re-invokes failed calls from their staged payloads, recovering
// from transient platform failures such as container crashes. GetResult
// performs this automatically (see RecoveryOptions); Respawn remains for
// manual recovery flows.
func (e *Executor) Respawn(futures []*Future) error { return e.inner.Respawn(futures) }

// RecoveryOptions tune GetResult's automatic re-execution of failed calls
// (GetResultOptions.Recovery). The zero value means recovery on with
// defaults; set Disabled for the original fail-fast client behavior.
type RecoveryOptions = core.RecoveryOptions

// DeadLetter records one call automatic recovery gave up on.
type DeadLetter = core.DeadLetter

// PartialError reports permanently failed calls when GetResult runs with
// PartialResults; it unwraps to the per-call errors.
type PartialError = core.PartialError

// DeadLetters returns the calls automatic recovery abandoned across this
// executor's GetResult calls.
func (e *Executor) DeadLetters() []DeadLetter { return e.inner.DeadLetters() }

// PersistedDeadLetters reads the durable dead-letter records this executor
// wrote to the meta bucket — they survive the in-memory list (and, in a
// real deployment, the client process).
func (e *Executor) PersistedDeadLetters() ([]DeadLetter, error) {
	return e.inner.PersistedDeadLetters()
}

// ReplayDeadLetters re-stages every dead-lettered call as a fresh tracked
// job, clearing the in-memory list and the durable records. Use it after
// the underlying outage heals; collect the returned futures with
// GetResult as usual.
func (e *Executor) ReplayDeadLetters() ([]*Future, error) {
	return e.inner.ReplayDeadLetters()
}

// JobStats counts the executor's staged/produced objects in storage.
type JobStats = core.JobStats

// Stats returns the executor's storage footprint.
func (e *Executor) Stats() (JobStats, error) { return e.inner.Stats() }

// Results waits for exec's tracked calls and decodes every result into T.
func Results[T any](exec *Executor, opts ...GetResultOptions) ([]T, error) {
	raws, err := exec.GetResult(opts...)
	if err != nil {
		return nil, err
	}
	out := make([]T, len(raws))
	for i, raw := range raws {
		if err := wire.Unmarshal(raw, &out[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Result waits for a single tracked call and decodes it into T. It errors
// if the executor tracked more than one call.
func Result[T any](exec *Executor, opts ...GetResultOptions) (T, error) {
	var zero T
	results, err := Results[T](exec, opts...)
	if err != nil {
		return zero, err
	}
	if len(results) != 1 {
		return zero, ErrNoResults
	}
	return results[0], nil
}

// Data-source constructors for MapReduce.

// FromValues maps over inline values.
func FromValues(values ...any) DataSource { return core.InlineValues(values) }

// FromKeys names dataset objects explicitly.
func FromKeys(bucket string, keys ...string) DataSource {
	return core.ObjectKeys{Bucket: bucket, Keys: keys}
}

// FromBuckets triggers automatic data discovery over whole buckets (§4.3).
func FromBuckets(buckets ...string) DataSource { return core.Buckets(buckets) }

// Partition describes one byte range assigned to a map executor.
type Partition = wire.Partition

// PlanPartitions runs data discovery and partitioning without launching a
// job — useful to inspect how a chunk size translates into executors
// (Table 3's concurrency column).
func PlanPartitions(storage cos.Client, src DataSource, chunkBytes int64) ([]Partition, error) {
	return core.PlanPartitions(storage, src, chunkBytes)
}

// Composition helpers usable inside registered functions.

// Spawn fans function out over args from inside a running function and
// returns a continuation reference. Returning the reference from the
// function makes GetResult follow it transparently (§4.4).
func Spawn(ctx *Ctx, function string, args []any) (*wire.FuturesRef, error) {
	sp, err := ctx.Spawner()
	if err != nil {
		return nil, err
	}
	return sp.Spawn(function, args)
}

// SpawnAwait fans function out over args, waits in-function for the
// children, and decodes their results — the nested-parallelism shape used
// by algorithms that merge child results locally (e.g. mergesort).
func SpawnAwait[T any](ctx *Ctx, function string, args []any) ([]T, error) {
	sp, err := ctx.Spawner()
	if err != nil {
		return nil, err
	}
	ref, err := sp.Spawn(function, args)
	if err != nil {
		return nil, err
	}
	raws, err := sp.Await(ref)
	if err != nil {
		return nil, err
	}
	out := make([]T, len(raws))
	for i, raw := range raws {
		if err := wire.Unmarshal(raw, &out[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Chain invokes the next function of a sequence on arg and returns the
// continuation the current function should return, so the client receives
// the final value of the chain (§4.4 sequences).
func Chain(ctx *Ctx, next string, arg any) (*wire.FuturesRef, error) {
	sp, err := ctx.Spawner()
	if err != nil {
		return nil, err
	}
	ref, err := sp.Spawn(next, []any{arg})
	if err != nil {
		return nil, err
	}
	ref.Combine = wire.CombineSingle
	return ref, nil
}

// ShuffleOptions re-exports the keyed-shuffle MapReduce knobs.
type ShuffleOptions = core.ShuffleOptions

// MapReduceShuffle runs a keyed MapReduce with an object-storage shuffle:
// the map function emits KV pairs, the platform hash-partitions them
// across NumReducers reduce executors, and the reduce function runs once
// per key. Each reducer future resolves to a []KeyResult sorted by key.
// This generalizes the paper's reducer-per-object mode to arbitrary keys,
// addressing the shuffle challenge its related-work section highlights.
func (e *Executor) MapReduceShuffle(mapFn string, src DataSource, reduceFn string, opts ShuffleOptions) ([]*Future, error) {
	return e.inner.MapReduceShuffle(mapFn, src, reduceFn, opts)
}

// ShuffleResults waits for a shuffle job's reducers and merges their
// sorted key results into one global key-sorted slice.
func ShuffleResults(exec *Executor, opts ...GetResultOptions) ([]KeyResult, error) {
	partitions, err := Results[[]KeyResult](exec, opts...)
	if err != nil {
		return nil, err
	}
	var out []KeyResult
	for _, p := range partitions {
		out = append(out, p...)
	}
	sortKeyResults(out)
	return out, nil
}

func sortKeyResults(krs []KeyResult) {
	for i := 1; i < len(krs); i++ {
		for j := i; j > 0 && krs[j-1].Key > krs[j].Key; j-- {
			krs[j-1], krs[j] = krs[j], krs[j-1]
		}
	}
}

// SpeculationOptions re-exports straggler re-execution tuning.
type SpeculationOptions = core.SpeculationOptions

// GetResultSpeculative is GetResult with straggler mitigation: once most of
// the job has completed, lingering calls are re-invoked from their staged
// payloads and the first completion wins. Functions must be idempotent
// (GoWren jobs are: results are pure functions of the staged payload).
func (e *Executor) GetResultSpeculative(opts GetResultOptions, spec SpeculationOptions) ([]json.RawMessage, error) {
	return e.inner.GetResultSpeculative(opts, spec)
}
