package gowren_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"gowren"
)

// driverKillRun is the headline crash-recovery scenario: a 500-call map
// under container crashes and an early COS brownout, whose driver is killed
// after roughly a third of the job completes. All in-memory state — the
// executor, its futures, the respawn ledger — is discarded; a fresh driver
// attaches by job ID alone and finishes the job.
func driverKillRun(t *testing.T, seed int64) (results []int, elapsed time.Duration) {
	t.Helper()
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{
		Images:    []*gowren.Image{chaosImage(t)},
		Seed:      seed,
		CrashProb: 0.05,
		Chaos: []gowren.ChaosFault{
			{
				Kind:        gowren.ChaosCOSBrownout,
				Start:       1 * time.Second,
				End:         3 * time.Second,
				Probability: 0.8,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cloud.Run(func() {
		driver1, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		args := make([]any, 500)
		for i := range args {
			args[i] = i
		}
		start := cloud.Clock().Now()
		futs, err := driver1.MapSlice("work", args)
		if err != nil {
			t.Errorf("map: %v", err)
			return
		}
		// Drive the job to ~30% completion, then kill the driver. Only the
		// job ID survives — the durable manifest and journal carry the rest.
		if _, _, err := driver1.WaitThreshold(0.3, time.Hour); err != nil {
			t.Errorf("wait threshold: %v", err)
			return
		}
		jobID := driver1.JobID()

		driver2, err := cloud.Attach(jobID)
		if err != nil {
			t.Errorf("attach: %v", err)
			return
		}
		results, err = gowren.Results[int](driver2, gowren.GetResultOptions{Timeout: time.Hour})
		if err != nil {
			t.Errorf("get result after attach: %v", err)
			return
		}
		elapsed = cloud.Clock().Now().Sub(start)
		if dead := driver2.DeadLetters(); len(dead) != 0 {
			t.Errorf("recovery gave up on %d calls: %+v", len(dead), dead[0])
		}
		// The fencing epoch bumped on attach: the dead driver — were it
		// still alive — can no longer mutate job state, so completed calls
		// cannot be re-executed behind the new driver's back.
		if err := driver1.Respawn(futs[:1]); !errors.Is(err, gowren.ErrFenced) {
			t.Errorf("old driver respawn err = %v, want ErrFenced", err)
		}
	})
	return results, elapsed
}

func TestDriverKillAttachCompletesMap(t *testing.T) {
	results, _ := driverKillRun(t, 42)
	if len(results) != 500 {
		t.Fatalf("got %d results, want 500", len(results))
	}
	for i, r := range results {
		if r != i*2 {
			t.Fatalf("result[%d] = %d, want %d", i, r, i*2)
		}
	}
}

func TestDriverKillDeterministicUnderSeed(t *testing.T) {
	r1, e1 := driverKillRun(t, 42)
	r2, e2 := driverKillRun(t, 42)
	if e1 != e2 {
		t.Fatalf("elapsed diverged under same seed: %v vs %v", e1, e2)
	}
	if len(r1) != len(r2) {
		t.Fatalf("result counts diverged: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("result %d diverged: %d vs %d", i, r1[i], r2[i])
		}
	}
}

func TestAttachReplayDeadLettersIdempotent(t *testing.T) {
	// Cross-driver replay: driver 1 dead-letters every call of a job whose
	// backend is down, then dies. Driver 2 attaches after the backend heals
	// and replays the dead letters. A third driver attaching afterwards must
	// neither double-execute the replacements nor resurrect the originals,
	// and the fenced first driver must not sneak its own replay in.
	var healed atomic.Bool
	var execs atomic.Int64
	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	err := gowren.RegisterFunc(img, "guarded", func(_ *gowren.Ctx, x int) (int, error) {
		execs.Add(1)
		if !healed.Load() {
			return 0, errors.New("backend still down")
		}
		return x * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{Images: []*gowren.Image{img}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cloud.Run(func() {
		driver1, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := driver1.Map("guarded", 1, 2, 3, 4); err != nil {
			t.Errorf("map: %v", err)
			return
		}
		_, err = driver1.GetResult(gowren.GetResultOptions{
			Timeout:        time.Hour,
			PartialResults: true,
			Recovery:       &gowren.RecoveryOptions{MaxAttempts: 1},
		})
		var pe *gowren.PartialError
		if !errors.As(err, &pe) || len(pe.Failed) != 4 {
			t.Errorf("driver 1 err = %v, want PartialError with 4 failures", err)
			return
		}
		// 4 first attempts + 4 recovery attempts, all failed.
		if got := execs.Load(); got != 8 {
			t.Errorf("executions after driver 1 = %d, want 8", got)
		}
		jobID := driver1.JobID()

		// Driver 1 dies; the backend heals; driver 2 picks the job up and
		// replays the durable dead letters.
		healed.Store(true)
		driver2, err := cloud.Attach(jobID)
		if err != nil {
			t.Errorf("attach: %v", err)
			return
		}
		letters, err := driver2.PersistedDeadLetters()
		if err != nil || len(letters) != 4 {
			t.Errorf("persisted dead letters = %d (%v), want 4", len(letters), err)
			return
		}
		replayed, err := driver2.ReplayDeadLetters()
		if err != nil || len(replayed) != 4 {
			t.Errorf("replay = %d futures (%v), want 4", len(replayed), err)
			return
		}
		results, err := gowren.Results[int](driver2, gowren.GetResultOptions{Timeout: time.Hour})
		if err != nil {
			t.Errorf("get result after replay: %v", err)
			return
		}
		want := map[int]bool{10: true, 20: true, 30: true, 40: true}
		for _, r := range results {
			if !want[r] {
				t.Errorf("unexpected replay result %d", r)
			}
			delete(want, r)
		}
		if got := execs.Load(); got != 12 {
			t.Errorf("executions after replay = %d, want 12", got)
		}

		// The fenced first driver still holds the letters in memory; its
		// replay attempt must die at the lease checkpoint without launching.
		if _, err := driver1.ReplayDeadLetters(); !errors.Is(err, gowren.ErrFenced) {
			t.Errorf("old driver replay err = %v, want ErrFenced", err)
		}

		// A third driver sees the replay journal record: the originals are
		// superseded, the replacements already done. Nothing runs again.
		driver3, err := cloud.Attach(jobID)
		if err != nil {
			t.Errorf("attach driver 3: %v", err)
			return
		}
		if letters, err := driver3.PersistedDeadLetters(); err != nil || len(letters) != 0 {
			t.Errorf("driver 3 persisted letters = %d (%v), want 0", len(letters), err)
		}
		again, err := driver3.ReplayDeadLetters()
		if err != nil || again != nil {
			t.Errorf("driver 3 replay = %v, %v, want nil, nil", again, err)
		}
		results3, err := gowren.Results[int](driver3, gowren.GetResultOptions{Timeout: time.Hour})
		if err != nil || len(results3) != 4 {
			t.Errorf("driver 3 results = %v (%v), want the 4 replayed values", results3, err)
		}
		if got := execs.Load(); got != 12 {
			t.Errorf("executions after driver 3 = %d, want 12 (no re-execution)", got)
		}
	})
}

func TestAttachListJobsAndCleanAbandoned(t *testing.T) {
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{
		Images: []*gowren.Image{chaosImage(t)},
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.Map("work", 1, 2); err != nil {
			t.Errorf("map: %v", err)
			return
		}
		if _, err := gowren.Results[int](exec, gowren.GetResultOptions{Timeout: time.Hour}); err != nil {
			t.Errorf("get result: %v", err)
			return
		}
		jobs, err := cloud.ListJobs()
		if err != nil || len(jobs) != 1 {
			t.Errorf("jobs = %v (%v), want exactly one", jobs, err)
			return
		}
		if jobs[0].JobID != exec.JobID() || jobs[0].LeaseEpoch != 1 {
			t.Errorf("job = %+v, want id %s at lease epoch 1", jobs[0], exec.JobID())
		}
		// Too fresh to collect: the driver held the lease moments ago.
		if removed, err := cloud.CleanAbandoned(time.Hour); err != nil || len(removed) != 0 {
			t.Errorf("premature GC removed %v (%v)", removed, err)
		}
		cloud.Clock().Sleep(2 * time.Hour)
		removed, err := cloud.CleanAbandoned(time.Hour)
		if err != nil || len(removed) != 1 || removed[0] != exec.JobID() {
			t.Errorf("GC removed %v (%v), want [%s]", removed, err, exec.JobID())
			return
		}
		if jobs, err := cloud.ListJobs(); err != nil || len(jobs) != 0 {
			t.Errorf("jobs after GC = %v (%v), want none", jobs, err)
		}
		if _, err := cloud.Attach(exec.JobID()); err == nil {
			t.Error("attach to a collected job succeeded")
		}
	})
}
