// Package gowren is a Go reproduction of IBM-PyWren, the serverless
// data-analytics framework of "Serverless Data Analytics in the IBM Cloud"
// (Sampé, Vernik, Sánchez-Artigas, García-López — Middleware Industry 2018).
//
// It provides the paper's programming model — an executor with CallAsync,
// Map, MapReduce, Wait and GetResult (Table 2) — together with the cloud it
// needs to run on: a from-scratch simulation of IBM Cloud Object Storage
// and IBM Cloud Functions (Apache OpenWhisk), including data discovery and
// partitioning, custom Docker-style runtimes, dynamic function composition,
// and the massive-function-spawning mechanism of §5.1.
//
// The simulated cloud runs either in real time (examples, interactive use)
// or on a discrete-event virtual clock that lets experiments execute
// thousands of concurrent multi-minute functions in milliseconds of wall
// time — which is how the repository regenerates every figure and table of
// the paper's evaluation (see EXPERIMENTS.md).
//
// A minimal program, mirroring the paper's Fig. 1:
//
//	img := gowren.NewImage("quickstart:1", 0)
//	gowren.RegisterFunc(img, "my_function", func(_ *gowren.Ctx, x int) (int, error) {
//		return x + 7, nil
//	})
//	cloud, _ := gowren.NewSimCloud(gowren.SimConfig{Images: []*gowren.Image{img}})
//	cloud.Run(func() {
//		exec, _ := cloud.Executor(gowren.WithRuntime("quickstart:1"))
//		exec.Map("my_function", 3, 6, 9)
//		results, _ := gowren.Results[int](exec)
//		fmt.Println(results) // [10 13 16]
//	})
package gowren

import (
	"errors"
	"fmt"
	"time"

	"gowren/internal/chaos"
	"gowren/internal/core"
	"gowren/internal/cos"
	"gowren/internal/exchange"
	"gowren/internal/faas"
	"gowren/internal/netsim"
	"gowren/internal/runtime"
	"gowren/internal/trace"
	"gowren/internal/vclock"
	"gowren/internal/wire"
)

// Re-exported building blocks. The aliases keep one set of concrete types
// across the public API and the internal engine.
type (
	// Ctx is the execution context passed to user functions.
	Ctx = runtime.Ctx
	// Image is a runtime image bundling registered user functions.
	Image = runtime.Image
	// PartitionReader gives map functions ranged access to their data
	// partition.
	PartitionReader = runtime.PartitionReader
	// Future tracks one asynchronous call.
	Future = core.Future
	// DataSource describes map_reduce input data.
	DataSource = core.DataSource
	// Clock abstracts simulated or wall-clock time.
	Clock = vclock.Clock
	// FuturesRef is a dynamic-composition continuation: return one from a
	// registered function (via Spawn or Chain) and GetResult follows it.
	FuturesRef = wire.FuturesRef
)

// Wait strategies for Executor.Wait (paper §4.2).
const (
	WaitAlways       = core.WaitAlways
	WaitAnyCompleted = core.WaitAnyCompleted
	WaitAllCompleted = core.WaitAllCompleted
)

// Chaos fault-plan building blocks (see internal/chaos): a SimConfig.Chaos
// schedule of time-windowed correlated faults driven by the simulation
// clock.
type (
	// ChaosFault is one scheduled fault window.
	ChaosFault = chaos.Fault
	// ChaosKind names a fault type.
	ChaosKind = chaos.Kind
)

// Chaos fault kinds.
const (
	// ChaosCOSBrownout makes storage requests fail with elevated
	// probability during the window.
	ChaosCOSBrownout = chaos.COSBrownout
	// ChaosControllerOutage makes the FaaS gateway reject invocations
	// with 429s during the window.
	ChaosControllerOutage = chaos.ControllerOutage
	// ChaosSlowContainers multiplies activation jitter during the window.
	ChaosSlowContainers = chaos.SlowContainers
	// ChaosExchangeCacheDown kills the memory-tier exchange cache during
	// the window: fast-tier shuffle ops fail, the node's contents are
	// lost, and shuffles degrade to the COS baseline.
	ChaosExchangeCacheDown = chaos.ExchangeCacheDown
	// ChaosExchangePeerLoss kills lingering direct-exchange peers during
	// the window: partition pulls fail and reducers fall back to
	// COS/recomputation.
	ChaosExchangePeerLoss = chaos.ExchangePeerLoss
)

// Shuffle exchange transports for ShuffleOptions.Exchange (see DESIGN.md,
// "Data exchange tiers"): COS is the default and correctness baseline; the
// fast tiers keep intermediates off the object store and degrade back to
// it transparently on any loss.
const (
	// ExchangeCOS stages every shuffle partition as a COS object.
	ExchangeCOS = wire.ExchangeCOS
	// ExchangeMemory stages partitions in the ephemeral memory-tier cache
	// node (LRU, spill-to-COS on eviction).
	ExchangeMemory = wire.ExchangeMemory
	// ExchangeDirect serves partitions straight from the producing map
	// activation while it lingers.
	ExchangeDirect = wire.ExchangeDirect
)

// Exchange-tier accounting snapshots, the fast-tier analogue of
// Executor.StorageOps (see Cloud.ExchangeOps).
type (
	// ExchangeOpCounts aggregates per-transport exchange traffic plus
	// cache lifecycle counters (evictions, spills, kills, expiries).
	ExchangeOpCounts = exchange.OpCounts
	// ExchangeTransportCounts is one transport's op/byte/outcome counters.
	ExchangeTransportCounts = exchange.TransportCounts
)

// Multi-tenant admission building blocks (see DESIGN.md, "Admission &
// fairness"): SimConfig.Admission arms the controller's tenant-aware gate,
// WithTenant attributes an executor's invocations to a tenant.
type (
	// TenantQuota is one tenant's admission contract: sustained rate,
	// burst, and fair-share weight.
	TenantQuota = faas.TenantQuota
	// AdmissionConfig configures the tenant-aware admission layer:
	// per-tenant token buckets feeding a deficit-weighted round-robin
	// over bounded queues, with deadline-based shedding.
	AdmissionConfig = faas.AdmissionConfig
)

// DefaultTenant is the tenant name invocations fall under when no
// WithTenant option names one.
const DefaultTenant = faas.DefaultTenant

// Admission-layer rejections, re-exported for errors.Is against call and
// GetResult errors.
var (
	// ErrThrottled marks a 429 from the global concurrency gate.
	ErrThrottled = faas.ErrThrottled
	// ErrQuotaExceeded marks an invocation rejected because its tenant is
	// over its token-bucket rate quota.
	ErrQuotaExceeded = faas.ErrQuotaExceeded
	// ErrShed marks an invocation dropped by overload protection: a full
	// admission queue, or queueing past the admission deadline.
	ErrShed = faas.ErrShed
)

// ReplicationMode selects how a multi-region cloud propagates writes (see
// DESIGN.md, "Replication modes").
type ReplicationMode = cos.ReplicationMode

// MultiRegionSnapshot is a point-in-time copy of the multi-region facade's
// counters (failovers, read-repairs, cross-region traffic, async-replication
// queue activity), as returned by Cloud.MultiRegion().Stats().
type MultiRegionSnapshot = cos.MultiRegionSnapshot

const (
	// ReplicationSync acks a PUT only after every reachable region has the
	// object — the strongest durability, paid for on the write critical
	// path. The default.
	ReplicationSync = cos.ReplicationSync
	// ReplicationAsync acks a PUT as soon as the preferred region durably
	// accepts it; replica fan-out happens off the critical path through a
	// bounded catch-up queue, with versioned failover and read-repair as
	// the backstop (a stale replica is never served as current).
	ReplicationAsync = cos.ReplicationAsync
)

// LinkPhase is one scripted WAN degradation window on a network link
// (latency inflation, brownout, or full partition), driven by the
// simulation clock. Use it in RegionSpec.Degrade to script a region's
// network weather, or in WithLinkDegradation for a client's own path.
type LinkPhase = netsim.Phase

// RegionSpec describes one region of a multi-region COS deployment
// (SimConfig.Regions). Each region is an independent failure domain: its
// own store, its own network path, its own fault plan.
type RegionSpec struct {
	// Name identifies the region (e.g. "us-south"); required and unique.
	Name string
	// Chaos schedules fault windows on this region's storage stack only;
	// windows are relative to cloud creation. Only storage-affecting kinds
	// matter here (ChaosCOSBrownout).
	Chaos []ChaosFault
	// Degrade schedules network degradation windows on this region's
	// path: latency inflation, failure-probability floors, and full
	// partitions. Windows are relative to cloud creation.
	Degrade []LinkPhase
}

// Failure-handling errors, re-exported for errors.Is against GetResult and
// Wait results.
var (
	// ErrCallFailed marks a function call that failed permanently.
	ErrCallFailed = core.ErrCallFailed
	// ErrWaitTimeout marks a wait that hit its deadline.
	ErrWaitTimeout = core.ErrWaitTimeout
	// ErrFenced marks a job-state mutation (Respawn, dead-letter replay)
	// rejected because a newer driver attached to the job and bumped its
	// lease epoch. The superseded driver may keep reading results.
	ErrFenced = core.ErrFenced
)

// JobInfo summarizes one durable job manifest, as returned by
// Cloud.ListJobs: identity, runtime, and the driver-lease view the orphan
// GC keys on.
type JobInfo = core.JobInfo

// DefaultRuntime is the stock runtime image name.
const DefaultRuntime = runtime.DefaultImage

// NewImage creates a runtime image; sizeMB models the Docker image size
// (zero selects a typical default). Register functions on it, then pass it
// to NewSimCloud (the analogue of pushing to Docker Hub).
func NewImage(name string, sizeMB int) *Image { return runtime.NewImage(name, sizeMB) }

// SimConfig configures a simulated cloud.
type SimConfig struct {
	// RealTime runs the cloud on the wall clock instead of the virtual
	// clock. Use it for interactive examples; experiments use virtual
	// time.
	RealTime bool
	// TimeScale accelerates a RealTime cloud: model costs (cold starts,
	// compute charges) elapse TimeScale× faster than the wall clock while
	// remaining realistic in reported durations. Zero or one keeps true
	// wall speed. Ignored in virtual-time mode.
	TimeScale float64
	// Images are published to the runtime registry. An image named
	// DefaultRuntime becomes the stock runtime; otherwise an empty stock
	// image is created.
	Images []*Image
	// Seed drives every random model in the simulation.
	Seed int64
	// MaxConcurrent is the platform's concurrent-invocation limit
	// (default 1000, as in the paper; negative = unlimited).
	MaxConcurrent int
	// Admission, when non-nil, arms the tenant-aware admission layer on
	// the controller: per-tenant token buckets (sustained rate + burst)
	// feed a deficit-weighted round-robin over bounded per-tenant queues,
	// with deadline-based shedding. MaxConcurrent remains the global
	// capacity underneath. Nil keeps the paper's single global 429 gate.
	Admission *AdmissionConfig
	// Jitter enables per-activation platform noise (the paper's Fig. 3
	// variability). Off by default for deterministic unit use.
	Jitter bool
	// JitterSigma overrides the lognormal sigma of the platform noise
	// (default 0.8 with a 5 s cap). Values above 1 produce the
	// heavy-tailed straggler distributions that speculative execution
	// targets; the cap is lifted to 8 minutes — below the 600 s platform
	// timeout, so a straggler is slow rather than killed.
	JitterSigma float64
	// CrashProb is the probability an activation's container dies
	// mid-execution with no status committed (paper §3 failure model).
	// Zero disables crashes; failure-injection tests and chaos runs set
	// it. Crashed calls are detected client-side from activation records
	// and recovered automatically by GetResult (see RecoveryOptions).
	CrashProb float64
	// Chaos schedules deterministic fault windows on the simulation
	// clock: COS brownouts, controller outages, slow-container windows.
	// Start/End are relative to the cloud's creation time. Empty disables
	// fault injection.
	Chaos []ChaosFault
	// Regions, when non-empty, replaces the single object store with a
	// multi-region COS deployment: every bucket is replicated across all
	// listed regions, each an independent failure domain with its own
	// network path, fault plan, and scripted degradation windows. Reads
	// fail over between regions transparently and stale replicas are
	// read-repaired on the next full read. See DESIGN.md, "Failure
	// domains".
	Regions []RegionSpec
	// Replication selects sync (default) or async write propagation across
	// Regions. Ignored for single-region clouds.
	Replication ReplicationMode
	// ReplicationQueueLimit bounds the async catch-up queue per region;
	// writers block (backpressure) when a queue is full. Zero selects
	// cos.DefaultReplicationQueueLimit. Ignored under ReplicationSync.
	ReplicationQueueLimit int
	// ReplicationRedeliveryBudget is the number of delivery attempts an
	// async catch-up task gets (with exponential backoff between attempts)
	// before its replica is declared stale and left to read-repair. Zero
	// selects cos.DefaultReplicationRedeliveryBudget; 1 restores the old
	// single-attempt behaviour. Ignored under ReplicationSync.
	ReplicationRedeliveryBudget int
	// RegionZeroPlacement restores the legacy placement policy: in-cloud
	// functions read and write through the first region regardless of
	// where their call was placed. By default calls are spread across
	// regions by a seeded hash and each function uses its own region's
	// view, which removes almost all cross-region traffic (see
	// DESIGN.md, "Replication modes").
	RegionZeroPlacement bool
	// DisableRegionFailover pins all storage traffic to the preferred
	// region with no replica failover or read-repair — the control knob
	// for measuring what the resilience layer buys: with it set, a
	// regional partition surfaces as transient errors that exhaust
	// recovery and park calls in the dead-letter list.
	DisableRegionFailover bool
	// MetaBucket overrides the job-metadata bucket name.
	MetaBucket string
	// TraceCapacity, when positive, enables the platform flight recorder
	// with a ring of that many events (see Cloud.Trace).
	TraceCapacity int
	// ExchangeCacheMB bounds the memory-tier exchange cache node used by
	// ShuffleOptions.Exchange = ExchangeMemory (zero selects 256 MB).
	// Overfilling it evicts least-recently-used partitions, which spill to
	// COS asynchronously.
	ExchangeCacheMB int
	// ExchangeLinger bounds how long a direct-transport map activation
	// stays resident after completing to serve peer pulls (zero selects
	// 30s). It must cover the map phase's tail: partitions published
	// before the window closes but pulled after it are recomputed.
	ExchangeLinger time.Duration
}

// Cloud is a wired simulated cloud: object store, FaaS platform and
// clock. Create executors against it with Executor.
type Cloud struct {
	clock    vclock.Clock
	virtual  *vclock.Virtual // nil in real-time mode
	registry *runtime.Registry
	store    *cos.Store
	platform *core.Platform
	recorder *trace.Recorder
	seed     int64
	chaos    *chaos.Plan
	multi    *cos.MultiRegion // nil for single-region clouds
}

// NewSimCloud builds a simulated cloud from cfg.
func NewSimCloud(cfg SimConfig) (*Cloud, error) {
	var (
		clk     vclock.Clock
		virtual *vclock.Virtual
	)
	if cfg.RealTime {
		if cfg.TimeScale > 1 {
			clk = vclock.NewScaled(cfg.TimeScale)
		} else {
			clk = vclock.NewReal()
		}
	} else {
		virtual = vclock.NewVirtual()
		clk = virtual
	}

	registry := runtime.NewRegistry()
	haveDefault := false
	for _, img := range cfg.Images {
		if img.Name() == DefaultRuntime {
			haveDefault = true
		}
		if err := registry.Publish(img); err != nil {
			return nil, fmt.Errorf("gowren: publish image %s: %w", img.Name(), err)
		}
	}
	if !haveDefault {
		if err := registry.Publish(runtime.NewImage(DefaultRuntime, 0)); err != nil {
			return nil, err
		}
	}

	var recorder *trace.Recorder
	if cfg.TraceCapacity > 0 {
		recorder = trace.New(cfg.TraceCapacity)
	}
	var plan *chaos.Plan
	if len(cfg.Chaos) > 0 {
		var err error
		plan, err = chaos.NewPlan(clk, cfg.Seed, cfg.Chaos)
		if err != nil {
			return nil, fmt.Errorf("gowren: chaos plan: %w", err)
		}
	}

	// Storage plane: a single in-cloud store, or — when Regions are
	// configured — one independent store per region behind a replicating
	// facade with transparent failover.
	store := cos.NewStore()
	var multi *cos.MultiRegion
	if len(cfg.Regions) > 0 {
		metaBucket := cfg.MetaBucket
		if metaBucket == "" {
			metaBucket = core.DefaultMetaBucket
		}
		backends := make([]cos.RegionBackend, len(cfg.Regions))
		for i, r := range cfg.Regions {
			if r.Name == "" {
				return nil, fmt.Errorf("gowren: region %d has no name", i)
			}
			rs := cos.NewStore()
			// The meta bucket must exist in every region before the
			// platform starts; create it on the raw engine so no link time
			// is charged outside a simulation task.
			if err := rs.CreateBucket(metaBucket); err != nil {
				return nil, fmt.Errorf("gowren: region %s: %w", r.Name, err)
			}
			// Each region gets its own datacenter path with a distinct
			// seed, so degradation and jitter are uncorrelated across
			// failure domains.
			link := netsim.InCloud(cfg.Seed + 10 + int64(i))
			if len(r.Degrade) > 0 {
				sched, err := netsim.NewSchedule(clk, r.Degrade)
				if err != nil {
					return nil, fmt.Errorf("gowren: region %s degradation: %w", r.Name, err)
				}
				link.SetSchedule(sched)
			}
			var rplan *chaos.Plan
			if len(r.Chaos) > 0 {
				var err error
				rplan, err = chaos.NewPlan(clk, cfg.Seed+100+int64(i), r.Chaos)
				if err != nil {
					return nil, fmt.Errorf("gowren: region %s chaos plan: %w", r.Name, err)
				}
			}
			backends[i] = cos.RegionBackend{
				Name:   r.Name,
				Client: chaos.WrapStorage(cos.NewLinked(rs, clk, link), rplan),
			}
			if i == 0 {
				store = rs // Cloud.Store() seeds datasets into the first region
			}
		}
		var mopts []cos.MultiRegionOption
		if cfg.DisableRegionFailover {
			mopts = append(mopts, cos.WithoutFailover())
		}
		if cfg.Replication == ReplicationAsync {
			mopts = append(mopts, cos.WithAsyncReplication(clk, cfg.ReplicationQueueLimit))
			if cfg.ReplicationRedeliveryBudget > 0 {
				mopts = append(mopts, cos.WithReplicationRedelivery(cfg.ReplicationRedeliveryBudget))
			}
		}
		var err error
		multi, err = cos.NewMultiRegion(backends, mopts...)
		if err != nil {
			return nil, fmt.Errorf("gowren: %w", err)
		}
	}

	pcfg := core.PlatformConfig{
		Clock:              clk,
		Registry:           registry,
		Store:              store,
		Seed:               cfg.Seed,
		MaxConcurrent:      cfg.MaxConcurrent,
		Admission:          cfg.Admission,
		CrashProb:          cfg.CrashProb,
		MetaBucket:         cfg.MetaBucket,
		Trace:              recorder,
		Chaos:              plan,
		ExchangeCacheBytes: int64(cfg.ExchangeCacheMB) << 20,
		ExchangeLinger:     cfg.ExchangeLinger,
	}
	if multi != nil {
		pcfg.Backend = multi
		pcfg.RegionZeroPlacement = cfg.RegionZeroPlacement
	}
	if cfg.Jitter {
		sigma, cap := 0.8, 5*time.Second
		if cfg.JitterSigma > 0 {
			sigma = cfg.JitterSigma
			if sigma > 1 {
				cap = 8 * time.Minute
			}
		}
		pcfg.ExecJitter = netsim.LogNormal{Median: 300 * time.Millisecond, Sigma: sigma, Cap: cap}
	}
	if cfg.RealTime {
		// Scale platform costs down so interactive runs stay snappy while
		// preserving cold/warm ordering.
		pcfg.AdmitOverhead = 200 * time.Microsecond
		pcfg.ColdStartBoot = 5 * time.Millisecond
		pcfg.WarmStart = 500 * time.Microsecond
		pcfg.CloudLink = netsim.Loopback()
	}
	platform, err := core.NewPlatform(pcfg)
	if err != nil {
		return nil, err
	}
	return &Cloud{
		clock:    clk,
		virtual:  virtual,
		registry: registry,
		store:    store,
		platform: platform,
		recorder: recorder,
		seed:     cfg.Seed,
		chaos:    plan,
		multi:    multi,
	}, nil
}

// Run executes fn inside the simulation: on a virtual clock it becomes the
// root task and Run returns when fn and everything it spawned finish; in
// real-time mode fn just runs. All Cloud/Executor calls must happen inside
// Run (or inside tasks it spawns via Go).
func (c *Cloud) Run(fn func()) {
	if c.virtual != nil {
		c.virtual.Run(fn)
		return
	}
	fn()
}

// Go starts fn as a simulation task (usable from inside Run).
func (c *Cloud) Go(fn func()) {
	if c.virtual != nil {
		c.virtual.Go(fn)
		return
	}
	c.clock.Go(fn)
}

// Clock returns the cloud's clock.
func (c *Cloud) Clock() Clock { return c.clock }

// Store returns the raw object-store engine, for seeding datasets. On a
// multi-region cloud it is the first region's engine; reads through the
// facade find directly-seeded objects there via failover.
func (c *Cloud) Store() *cos.Store { return c.store }

// MultiRegion returns the replicating storage facade, or nil when
// SimConfig.Regions was empty. Its Stats report failovers, read-repairs
// and write misses observed so far.
func (c *Cloud) MultiRegion() *cos.MultiRegion { return c.multi }

// Platform exposes the wired core platform for advanced integrations and
// the experiment harnesses.
func (c *Cloud) Platform() *core.Platform { return c.platform }

// Trace returns the platform flight recorder, or nil when SimConfig did not
// enable one.
func (c *Cloud) Trace() *trace.Recorder { return c.recorder }

// ExchangeOps returns the fast-tier exchange accounting snapshot: per-
// transport GET/PUT ops, bytes and hit/miss/fallback outcomes, plus cache
// evictions, spills and kill losses. The fast-tier analogue of
// Executor.StorageOps.
func (c *Cloud) ExchangeOps() ExchangeOpCounts { return c.platform.ExchangeOps() }

// ClientProfile selects the network position of an executor's client.
type ClientProfile int

const (
	// ClientInCloud places the client inside the datacenter (e.g. a
	// Watson Studio notebook, as in the paper's §6.4 use case).
	ClientInCloud ClientProfile = iota + 1
	// ClientWAN places the client in a remote high-latency network — the
	// paper's laptop client (§6).
	ClientWAN
	// ClientLoopback removes network costs entirely (unit tests).
	ClientLoopback
)

// ExecutorOption customizes an executor.
type ExecutorOption func(*executorSettings)

type executorSettings struct {
	runtime          string
	tenant           string
	profile          ClientProfile
	massive          bool
	spawnGroup       int
	invokeConc       int
	stageConc        int
	clientOverhead   time.Duration
	pollInterval     time.Duration
	retryBackoff     time.Duration
	maxRetries       int
	retryBudget      float64
	breakerThreshold int
	breakerCooldown  time.Duration
	storage          cos.Client
	preferredRegion  string
	degrade          []LinkPhase
	antiAffinity     bool
}

// WithRuntime selects the runtime image, as in
// pw.ibm_cf_executor(runtime='matplotlib').
func WithRuntime(name string) ExecutorOption {
	return func(s *executorSettings) { s.runtime = name }
}

// WithTenant attributes the executor's invocations to a platform tenant:
// under SimConfig.Admission they are admitted against that tenant's rate
// quota and fair-share weight, and activation records carry the tenant for
// per-tenant billing rollups. The tenant travels in every staged payload,
// so respawns, remote invokers and dynamic compositions inherit it. Empty
// (or unset) means DefaultTenant.
func WithTenant(name string) ExecutorOption {
	return func(s *executorSettings) { s.tenant = name }
}

// WithClientProfile positions the client on the network.
func WithClientProfile(p ClientProfile) ExecutorOption {
	return func(s *executorSettings) { s.profile = p }
}

// WithMassiveSpawning enables the remote-invoker mechanism with the given
// group size (0 = the paper's 100).
func WithMassiveSpawning(groupSize int) ExecutorOption {
	return func(s *executorSettings) {
		s.massive = true
		s.spawnGroup = groupSize
	}
}

// WithInvokeConcurrency sets the client invocation thread-pool size.
func WithInvokeConcurrency(n int) ExecutorOption {
	return func(s *executorSettings) { s.invokeConc = n }
}

// WithStageConcurrency sets the upload/download pool size.
func WithStageConcurrency(n int) ExecutorOption {
	return func(s *executorSettings) { s.stageConc = n }
}

// WithClientOverhead models serialized per-invocation client work (the
// Python GIL effect of §5.1).
func WithClientOverhead(d time.Duration) ExecutorOption {
	return func(s *executorSettings) { s.clientOverhead = d }
}

// WithPollInterval sets the status polling granularity.
func WithPollInterval(d time.Duration) ExecutorOption {
	return func(s *executorSettings) { s.pollInterval = d }
}

// WithRetryPolicy sets the invocation retry limit and base backoff of the
// executor's shared retry policy (internal/retry): exponential backoff
// with decorrelated jitter, applied to invocations and storage accesses
// alike.
func WithRetryPolicy(maxRetries int, backoff time.Duration) ExecutorOption {
	return func(s *executorSettings) {
		s.maxRetries = maxRetries
		s.retryBackoff = backoff
	}
}

// WithRetryBudget caps the executor's total retry volume: a token bucket
// holding tokens retries, refilled one token per successful operation.
// A sustained outage then degrades into fast failures instead of a retry
// storm. Zero keeps the generous default (1024); negative disables the
// budget.
func WithRetryBudget(tokens float64) ExecutorOption {
	return func(s *executorSettings) { s.retryBudget = tokens }
}

// WithCircuitBreaker arms a circuit breaker on the invocation path: after
// threshold consecutive throttled attempts the executor sheds invocations
// for cooldown (zero cooldown selects 5s) instead of queueing behind a
// saturated gateway. Unset, throttled calls retry until the retry limit —
// the classic PyWren behavior.
func WithCircuitBreaker(threshold int, cooldown time.Duration) ExecutorOption {
	return func(s *executorSettings) {
		s.breakerThreshold = threshold
		s.breakerCooldown = cooldown
	}
}

// WithStorage overrides the executor's object-storage client entirely —
// e.g. a cos.HTTPClient for a store served over HTTP. The client profile
// then affects only the invocation-API path.
func WithStorage(client cos.Client) ExecutorOption {
	return func(s *executorSettings) { s.storage = client }
}

// WithPreferredRegion routes this executor's storage traffic to the named
// region first, failing over to the others only when it is unreachable
// (or not at all under SimConfig.DisableRegionFailover). Requires a
// multi-region cloud.
func WithPreferredRegion(name string) ExecutorOption {
	return func(s *executorSettings) { s.preferredRegion = name }
}

// WithLinkDegradation scripts WAN weather on this executor's own network
// paths (control and storage): latency inflation, failure floors, full
// partitions. Windows are relative to the Executor call. The executor
// gets dedicated links so other clients sharing the profile are not
// affected.
func WithLinkDegradation(phases ...LinkPhase) ExecutorOption {
	return func(s *executorSettings) { s.degrade = append(s.degrade, phases...) }
}

// WithAntiAffinityRespawn re-places respawned calls in a storage region
// different from the one whose failure killed the original run, instead of
// rehashing onto the same sick region. Requires a multi-region cloud; on
// single-region clouds it is a no-op.
func WithAntiAffinityRespawn() ExecutorOption {
	return func(s *executorSettings) { s.antiAffinity = true }
}

// Executor creates an executor against this cloud — the analogue of
// pw.ibm_cf_executor(). The default client profile is in-cloud with no
// massive spawning.
func (c *Cloud) Executor(opts ...ExecutorOption) (*Executor, error) {
	cfg, err := c.executorConfig(opts)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewExecutor(cfg)
	if err != nil {
		return nil, err
	}
	return &Executor{inner: inner, clock: c.clock}, nil
}

// Attach rebuilds the executor of a crashed or abandoned driver from the
// job's durable manifest and journal: futures are reconstructed, in-flight
// activations adopted, orphaned calls respawned, and the driver lease is
// taken over with a bumped fencing epoch — so if the previous driver is in
// fact still alive, its next mutation fails with ErrFenced. Wait and
// GetResult on the returned executor continue where the dead driver left
// off. Executor options configure the new driver's own client (profile,
// concurrency, retries); the runtime comes from the manifest.
func (c *Cloud) Attach(jobID string, opts ...ExecutorOption) (*Executor, error) {
	cfg, err := c.executorConfig(opts)
	if err != nil {
		return nil, err
	}
	inner, err := core.AttachExecutor(cfg, jobID)
	if err != nil {
		return nil, err
	}
	return &Executor{inner: inner, clock: c.clock}, nil
}

// Attach is Cloud.Attach as a package-level helper, mirroring the paper's
// flat client API surface.
func Attach(c *Cloud, jobID string, opts ...ExecutorOption) (*Executor, error) {
	return c.Attach(jobID, opts...)
}

// ListJobs lists the durable job manifests in the meta bucket — every job
// whose driver journaled, whether finished, abandoned, or still driven —
// joined with their driver leases. Use it to find a job ID to Attach to.
func (c *Cloud) ListJobs() ([]JobInfo, error) {
	return core.ListJobs(c.platform.Backend(), c.platform.MetaBucket())
}

// CleanAbandoned garbage-collects jobs nobody resumed: every job whose
// driver lease (or, leaseless, manifest) is at least ttl old is deleted —
// payloads, statuses, results, journal, lease, and manifest. It returns
// the removed job IDs. Live drivers renew their leases while waiting, so a
// generous ttl (minutes and up) never collects a driven job.
func (c *Cloud) CleanAbandoned(ttl time.Duration) ([]string, error) {
	return core.CleanAbandoned(c.platform.Backend(), c.clock, c.platform.MetaBucket(), ttl)
}

// executorConfig assembles the core executor config shared by Executor and
// Attach: network links per client profile, the storage stack, and tuning
// knobs.
func (c *Cloud) executorConfig(opts []ExecutorOption) (core.Config, error) {
	s := executorSettings{profile: ClientInCloud}
	for _, opt := range opts {
		opt(&s)
	}

	var controlLink, storageLink *netsim.Link
	switch s.profile {
	case ClientWAN:
		// The Cloud Functions API gateway and the COS endpoints are
		// distinct paths with distinct costs (netsim.WAN vs
		// netsim.WANStorage).
		controlLink = netsim.WAN(c.seed + 1)
		storageLink = netsim.WANStorage(c.seed + 2)
	case ClientInCloud:
		controlLink = c.platform.CloudLink()
		storageLink = c.platform.CloudLink()
	case ClientLoopback:
		controlLink = netsim.Loopback()
		storageLink = netsim.Loopback()
	default:
		return core.Config{}, fmt.Errorf("gowren: unknown client profile %d", int(s.profile))
	}

	if len(s.degrade) > 0 {
		sched, err := netsim.NewSchedule(c.clock, s.degrade)
		if err != nil {
			return core.Config{}, fmt.Errorf("gowren: link degradation: %w", err)
		}
		if s.profile == ClientInCloud {
			// The in-cloud profile shares the platform's link; degrade a
			// dedicated pair instead so the rest of the cloud keeps a
			// clean path.
			controlLink = netsim.InCloud(c.seed + 3)
			storageLink = netsim.InCloud(c.seed + 4)
		}
		controlLink.SetSchedule(sched)
		storageLink.SetSchedule(sched)
	}

	storage := s.storage
	if storage == nil {
		// The client's own path to storage: the single store, or the
		// multi-region facade (optionally pinned to a preferred region).
		// Each region charges its own link below the facade; storageLink
		// here is the client-to-frontend hop.
		backend := cos.Client(c.store)
		if c.multi != nil {
			backend = c.multi
			if s.preferredRegion != "" {
				view, err := c.multi.Preferred(s.preferredRegion)
				if err != nil {
					return core.Config{}, fmt.Errorf("gowren: %w", err)
				}
				backend = view
			}
		} else if s.preferredRegion != "" {
			return core.Config{}, errors.New("gowren: WithPreferredRegion requires SimConfig.Regions")
		}
		// A COS brownout degrades the service itself, so the client's view
		// is chaos-wrapped exactly like the in-cloud one (below the
		// executor's retry layer).
		storage = chaos.WrapStorage(cos.NewLinked(backend, c.clock, storageLink), c.chaos)
	} else if s.preferredRegion != "" {
		return core.Config{}, errors.New("gowren: WithPreferredRegion conflicts with WithStorage")
	}
	return core.Config{
		Platform:            c.platform,
		Storage:             storage,
		ControlLink:         controlLink,
		RuntimeImage:        s.runtime,
		Tenant:              s.tenant,
		InvokeConcurrency:   s.invokeConc,
		StageConcurrency:    s.stageConc,
		ClientOverhead:      s.clientOverhead,
		MassiveSpawning:     s.massive,
		SpawnGroupSize:      s.spawnGroup,
		MaxRetries:          s.maxRetries,
		RetryBackoff:        s.retryBackoff,
		PollInterval:        s.pollInterval,
		RetryBudget:         s.retryBudget,
		BreakerThreshold:    s.breakerThreshold,
		BreakerCooldown:     s.breakerCooldown,
		AntiAffinityRespawn: s.antiAffinity,
	}, nil
}

// ErrNoResults is returned by typed result helpers when no calls were made.
var ErrNoResults = errors.New("gowren: no results")
