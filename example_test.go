package gowren_test

// Runnable godoc examples for the public API. Each compiles into the test
// suite and its output is verified by `go test`.

import (
	"fmt"
	"log"

	"gowren"
)

// Example reproduces the paper's Fig. 1 flow end to end.
func Example() {
	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	if err := gowren.RegisterFunc(img, "my_function", func(_ *gowren.Ctx, x int) (int, error) {
		return x + 7, nil
	}); err != nil {
		log.Fatal(err)
	}
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{Images: []*gowren.Image{img}})
	if err != nil {
		log.Fatal(err)
	}
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := exec.Map("my_function", 3, 6, 9); err != nil {
			log.Fatal(err)
		}
		results, err := gowren.Results[int](exec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(results)
	})
	// Output: [10 13 16]
}

// ExampleExecutor_MapReduce runs a full map_reduce over a discovered bucket
// with automatic partitioning.
func ExampleExecutor_MapReduce() {
	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	if err := gowren.RegisterMapFunc(img, "bytes", func(_ *gowren.Ctx, part *gowren.PartitionReader) (int64, error) {
		return part.Size(), nil
	}); err != nil {
		log.Fatal(err)
	}
	if err := gowren.RegisterReduceFunc(img, "sum", func(_ *gowren.Ctx, _ string, sizes []int64) (int64, error) {
		var total int64
		for _, s := range sizes {
			total += s
		}
		return total, nil
	}); err != nil {
		log.Fatal(err)
	}
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{Images: []*gowren.Image{img}})
	if err != nil {
		log.Fatal(err)
	}
	store := cloud.Store()
	if err := store.CreateBucket("data"); err != nil {
		log.Fatal(err)
	}
	if _, err := store.Put("data", "a", make([]byte, 1200)); err != nil {
		log.Fatal(err)
	}
	if _, err := store.Put("data", "b", make([]byte, 800)); err != nil {
		log.Fatal(err)
	}
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			log.Fatal(err)
		}
		// 500-byte chunks: object a becomes 3 partitions, b becomes 2.
		if _, err := exec.MapReduce("bytes", gowren.FromBuckets("data"), "sum",
			gowren.MapReduceOptions{ChunkBytes: 500}); err != nil {
			log.Fatal(err)
		}
		total, err := gowren.Result[int64](exec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(total)
	})
	// Output: 2000
}

// ExampleChain shows a sequential composition: the client receives the
// final value of the chain without orchestrating the middle step.
func ExampleChain() {
	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	if err := gowren.RegisterFunc(img, "square", func(_ *gowren.Ctx, x int) (int, error) {
		return x * x, nil
	}); err != nil {
		log.Fatal(err)
	}
	if err := gowren.RegisterComposerFunc(img, "negate_then_square", func(ctx *gowren.Ctx, x int) (*gowren.FuturesRef, error) {
		return gowren.Chain(ctx, "square", -x)
	}); err != nil {
		log.Fatal(err)
	}
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{Images: []*gowren.Image{img}})
	if err != nil {
		log.Fatal(err)
	}
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := exec.CallAsync("negate_then_square", 6); err != nil {
			log.Fatal(err)
		}
		v, err := gowren.Result[int](exec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(v)
	})
	// Output: 36
}

// ExampleExecutor_MapReduceShuffle counts keys through the object-storage
// shuffle with two reduce executors.
func ExampleExecutor_MapReduceShuffle() {
	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	if err := gowren.RegisterKVMapFunc(img, "emit", func(_ *gowren.Ctx, part *gowren.PartitionReader) ([]gowren.KV, error) {
		data, err := part.ReadAll()
		if err != nil {
			return nil, err
		}
		var out []gowren.KV
		for _, b := range data {
			kv, err := gowren.EmitKV(string(b), 1)
			if err != nil {
				return nil, err
			}
			out = append(out, kv)
		}
		return out, nil
	}); err != nil {
		log.Fatal(err)
	}
	if err := gowren.RegisterKVReduceFunc(img, "count", func(_ *gowren.Ctx, _ string, ones []int) (int, error) {
		return len(ones), nil
	}); err != nil {
		log.Fatal(err)
	}
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{Images: []*gowren.Image{img}})
	if err != nil {
		log.Fatal(err)
	}
	if err := cloud.Store().CreateBucket("letters"); err != nil {
		log.Fatal(err)
	}
	if _, err := cloud.Store().Put("letters", "doc", []byte("abcaab")); err != nil {
		log.Fatal(err)
	}
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := exec.MapReduceShuffle("emit", gowren.FromBuckets("letters"), "count",
			gowren.ShuffleOptions{NumReducers: 2}); err != nil {
			log.Fatal(err)
		}
		merged, err := gowren.ShuffleResults(exec)
		if err != nil {
			log.Fatal(err)
		}
		for _, kr := range merged {
			fmt.Printf("%s=%s ", kr.Key, kr.Value)
		}
		fmt.Println()
	})
	// Output: a=3 b=2 c=1
}
