package gowren_test

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gowren"
	"gowren/internal/trace"
)

// chaosImage registers the functions the fault-injection tests run.
func chaosImage(t *testing.T) *gowren.Image {
	t.Helper()
	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(gowren.RegisterFunc(img, "work", func(ctx *gowren.Ctx, x int) (int, error) {
		if err := ctx.ChargeCompute(5 * time.Second); err != nil {
			return 0, err
		}
		return x * 2, nil
	}))
	must(gowren.RegisterFunc(img, "flaky", func(_ *gowren.Ctx, x int) (int, error) {
		if x < 0 {
			return 0, errors.New("deliberate permanent failure")
		}
		return x + 1, nil
	}))
	return img
}

// chaosRun executes one full 500-call map under a scripted COS brownout
// plus 5% container crashes and returns the results and elapsed virtual
// time. Recovery is left entirely to GetResult — no manual FailedFutures
// or Respawn.
func chaosRun(t *testing.T, seed int64) (results []int, elapsed time.Duration, crashes int, dead []gowren.DeadLetter) {
	t.Helper()
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{
		Images:        []*gowren.Image{chaosImage(t)},
		Seed:          seed,
		CrashProb:     0.05,
		TraceCapacity: 1 << 16,
		Chaos: []gowren.ChaosFault{
			{
				Kind:        gowren.ChaosCOSBrownout,
				Start:       3 * time.Second,
				End:         12 * time.Second,
				Probability: 0.9,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		args := make([]any, 500)
		for i := range args {
			args[i] = i
		}
		start := cloud.Clock().Now()
		if _, err := exec.MapSlice("work", args); err != nil {
			t.Errorf("map: %v", err)
			return
		}
		results, err = gowren.Results[int](exec, gowren.GetResultOptions{Timeout: time.Hour})
		if err != nil {
			t.Errorf("get result: %v", err)
			return
		}
		elapsed = cloud.Clock().Now().Sub(start)
		dead = exec.DeadLetters()
	})
	for _, ev := range cloud.Trace().Events() {
		if ev.Kind == trace.KindCrash {
			crashes++
		}
	}
	return results, elapsed, crashes, dead
}

func TestChaosMapRecoversAllCalls(t *testing.T) {
	// Acceptance: a 500-call map with a mid-job COS brownout and 5%
	// crash probability completes with zero lost calls, purely through
	// the automatic recovery in the wait path.
	results, _, crashes, dead := chaosRun(t, 42)
	if len(results) != 500 {
		t.Fatalf("got %d results, want 500", len(results))
	}
	for i, r := range results {
		if r != i*2 {
			t.Fatalf("result[%d] = %d, want %d", i, r, i*2)
		}
	}
	if len(dead) != 0 {
		t.Fatalf("recovery gave up on %d calls: %+v", len(dead), dead[0])
	}
	// The run must actually have injected faults, or the test proves
	// nothing: with CrashProb 0.05 over 500+ activations crashes are
	// statistically guaranteed under any seed.
	if crashes == 0 {
		t.Fatal("no containers crashed; fault injection did not engage")
	}
}

func TestChaosRunDeterministicUnderSeed(t *testing.T) {
	r1, e1, c1, _ := chaosRun(t, 42)
	r2, e2, c2, _ := chaosRun(t, 42)
	if e1 != e2 {
		t.Fatalf("elapsed diverged under same seed: %v vs %v", e1, e2)
	}
	if c1 != c2 {
		t.Fatalf("crash count diverged under same seed: %d vs %d", c1, c2)
	}
	if len(r1) != len(r2) {
		t.Fatalf("result counts diverged: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("result %d diverged: %d vs %d", i, r1[i], r2[i])
		}
	}
}

func TestRecoveryBudgetExhaustionDeadLetters(t *testing.T) {
	// Deterministically failing calls exhaust their per-call recovery
	// budget, land on the dead-letter list, and — with PartialResults —
	// the successful subset still comes back alongside a PartialError.
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{
		Images: []*gowren.Image{chaosImage(t)},
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.Map("flaky", 1, -1, 3, -2); err != nil {
			t.Errorf("map: %v", err)
			return
		}
		raws, err := exec.GetResult(gowren.GetResultOptions{
			Timeout:        time.Hour,
			PartialResults: true,
			Recovery:       &gowren.RecoveryOptions{MaxAttempts: 1},
		})
		if err == nil {
			t.Error("want PartialError, got nil")
			return
		}
		var pe *gowren.PartialError
		if !errors.As(err, &pe) {
			t.Errorf("err = %v, want *PartialError", err)
			return
		}
		if !errors.Is(err, gowren.ErrCallFailed) {
			t.Errorf("err = %v, want to wrap ErrCallFailed", err)
		}
		if len(pe.Failed) != 2 || len(pe.Errs) != 2 {
			t.Errorf("partial error reports %d/%d failures, want 2/2", len(pe.Failed), len(pe.Errs))
		}
		if len(raws) != 4 {
			t.Errorf("got %d slots, want 4", len(raws))
			return
		}
		// Successes resolved, failures left nil, in call order.
		for i, wantNil := range []bool{false, true, false, true} {
			if gotNil := raws[i] == nil; gotNil != wantNil {
				t.Errorf("slot %d nil=%v, want %v", i, gotNil, wantNil)
			}
		}
		dead := exec.DeadLetters()
		if len(dead) != 2 {
			t.Errorf("dead letters = %d, want 2", len(dead))
			return
		}
		for _, d := range dead {
			if d.Attempts != 1 {
				t.Errorf("dead letter %s attempts = %d, want 1", d.CallID, d.Attempts)
			}
		}
	})
}

func TestRecoveryDisabledFailsFast(t *testing.T) {
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{
		Images: []*gowren.Image{chaosImage(t)},
	})
	if err != nil {
		t.Fatal(err)
	}
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.Map("flaky", -1); err != nil {
			t.Errorf("map: %v", err)
			return
		}
		_, err = exec.GetResult(gowren.GetResultOptions{
			Timeout:  time.Hour,
			Recovery: &gowren.RecoveryOptions{Disabled: true},
		})
		if !errors.Is(err, gowren.ErrCallFailed) {
			t.Errorf("err = %v, want ErrCallFailed", err)
		}
		if dead := exec.DeadLetters(); len(dead) != 0 {
			t.Errorf("disabled recovery still dead-lettered %d calls", len(dead))
		}
	})
}

func TestControllerOutageWindowRecovered(t *testing.T) {
	// Invocations issued into a controller outage window see 429s and
	// retry through the shared policy until the window lifts; the job
	// still completes exactly.
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{
		Images: []*gowren.Image{chaosImage(t)},
		Seed:   5,
		Chaos: []gowren.ChaosFault{
			{
				Kind:  gowren.ChaosControllerOutage,
				Start: 0,
				End:   4 * time.Second,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cloud.Run(func() {
		exec, err := cloud.Executor(gowren.WithRetryPolicy(8, 500*time.Millisecond))
		if err != nil {
			t.Error(err)
			return
		}
		start := cloud.Clock().Now()
		if _, err := exec.Map("work", 1, 2, 3); err != nil {
			t.Errorf("map during outage: %v", err)
			return
		}
		results, err := gowren.Results[int](exec, gowren.GetResultOptions{Timeout: time.Hour})
		if err != nil {
			t.Errorf("get result: %v", err)
			return
		}
		if len(results) != 3 || results[0] != 2 || results[1] != 4 || results[2] != 6 {
			t.Errorf("results = %v, want [2 4 6]", results)
		}
		// The outage must have cost the invocation phase real (virtual)
		// time: nothing could be admitted before t=4s.
		if done := cloud.Clock().Now().Sub(start); done < 4*time.Second {
			t.Errorf("job finished in %v, impossible during a 4s outage", done)
		}
	})
}

// noisyNeighborRun executes the noisy-neighbor scenario: a victim tenant
// runs a modest job while a noisy tenant floods the platform with 10× its
// admitted share. The admission layer (per-tenant quotas + fair-share
// dispatch) must keep the victim whole. Returns the victim's results and
// elapsed virtual time plus the counts of quota rejections and sheds seen
// in the platform trace.
func noisyNeighborRun(t *testing.T, seed int64) (victim []int, elapsed time.Duration, quotaRejects, sheds int) {
	t.Helper()
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{
		Images:        []*gowren.Image{chaosImage(t)},
		Seed:          seed,
		MaxConcurrent: 10,
		TraceCapacity: 1 << 16,
		Admission: &gowren.AdmissionConfig{
			// The victim keeps an unlimited rate but a larger dispatch
			// weight; the noisy tenant is quota-capped well below its
			// offered flood.
			Tenants: map[string]gowren.TenantQuota{
				"victim": {Weight: 4},
				"noisy":  {Rate: 5, Burst: 10, Weight: 1},
			},
			MaxQueueDelay: 10 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cloud.Run(func() {
		var noisyDone atomic.Bool
		cloud.Go(func() {
			defer noisyDone.Store(true)
			noisy, err := cloud.Executor(
				gowren.WithTenant("noisy"),
				gowren.WithRetryPolicy(2, 200*time.Millisecond),
			)
			if err != nil {
				t.Error(err)
				return
			}
			args := make([]any, 150)
			for i := range args {
				args[i] = i
			}
			// The flood mostly bounces off the quota; errors (including
			// a failed collection) are the expected outcome.
			if _, err := noisy.MapSlice("work", args); err != nil {
				return
			}
			_, _ = noisy.GetResult(gowren.GetResultOptions{
				Timeout:        5 * time.Minute,
				PartialResults: true,
			})
		})

		exec, err := cloud.Executor(
			gowren.WithTenant("victim"),
			gowren.WithRetryPolicy(8, 500*time.Millisecond),
		)
		if err != nil {
			t.Error(err)
			return
		}
		args := make([]any, 10)
		for i := range args {
			args[i] = i
		}
		start := cloud.Clock().Now()
		if _, err := exec.MapSlice("work", args); err != nil {
			t.Errorf("victim map: %v", err)
			return
		}
		victim, err = gowren.Results[int](exec, gowren.GetResultOptions{Timeout: time.Hour})
		if err != nil {
			t.Errorf("victim get result: %v", err)
			return
		}
		elapsed = cloud.Clock().Now().Sub(start)
		for !noisyDone.Load() {
			cloud.Clock().Sleep(100 * time.Millisecond)
		}
	})
	for _, ev := range cloud.Trace().Events() {
		switch {
		case ev.Kind == trace.KindShed:
			sheds++
		case ev.Kind == trace.KindThrottle && strings.Contains(ev.Detail, "reason=quota"):
			quotaRejects++
		}
	}
	return victim, elapsed, quotaRejects, sheds
}

func TestChaosNoisyNeighborVictimUnharmed(t *testing.T) {
	// Acceptance: under a 10× noisy-neighbor flood the victim tenant's
	// 10-call job completes exactly, and the admission layer visibly
	// engaged (quota rejections or sheds in the trace).
	victim, _, quotaRejects, sheds := noisyNeighborRun(t, 11)
	if len(victim) != 10 {
		t.Fatalf("victim results = %d, want 10", len(victim))
	}
	for i, r := range victim {
		if r != i*2 {
			t.Fatalf("victim result[%d] = %d, want %d", i, r, i*2)
		}
	}
	if quotaRejects == 0 {
		t.Fatal("no quota rejections; the noisy flood never hit its rate limit")
	}
	if quotaRejects+sheds < 50 {
		t.Fatalf("admission barely engaged: quota=%d sheds=%d", quotaRejects, sheds)
	}
}

func TestChaosNoisyNeighborDeterministic(t *testing.T) {
	v1, e1, q1, s1 := noisyNeighborRun(t, 11)
	v2, e2, q2, s2 := noisyNeighborRun(t, 11)
	if e1 != e2 {
		t.Fatalf("victim elapsed diverged under same seed: %v vs %v", e1, e2)
	}
	if q1 != q2 || s1 != s2 {
		t.Fatalf("rejection counts diverged: quota %d vs %d, sheds %d vs %d", q1, q2, s1, s2)
	}
	if len(v1) != len(v2) {
		t.Fatalf("victim result counts diverged: %d vs %d", len(v1), len(v2))
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("victim result %d diverged: %d vs %d", i, v1[i], v2[i])
		}
	}
}
