package gowren_test

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"gowren"
)

// testImage builds the default runtime preloaded with the functions the
// API tests exercise.
func testImage(t *testing.T) *gowren.Image {
	t.Helper()
	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(gowren.RegisterFunc(img, "my_function", func(_ *gowren.Ctx, x int) (int, error) {
		return x + 7, nil
	}))
	must(gowren.RegisterFunc(img, "busy", func(ctx *gowren.Ctx, seconds int) (int, error) {
		if err := ctx.ChargeCompute(time.Duration(seconds) * time.Second); err != nil {
			return 0, err
		}
		return seconds, nil
	}))
	must(gowren.RegisterFunc(img, "fail", func(_ *gowren.Ctx, _ int) (int, error) {
		return 0, errors.New("deliberate failure")
	}))
	must(gowren.RegisterComposerFunc(img, "double_then_add7", func(ctx *gowren.Ctx, x int) (*gowren.FuturesRef, error) {
		return gowren.Chain(ctx, "my_function", x*2)
	}))
	must(gowren.RegisterFunc(img, "spawn_sum", func(ctx *gowren.Ctx, n int) (int, error) {
		args := make([]any, n)
		for i := range args {
			args[i] = i
		}
		vals, err := gowren.SpawnAwait[int](ctx, "my_function", args)
		if err != nil {
			return 0, err
		}
		sum := 0
		for _, v := range vals {
			sum += v
		}
		return sum, nil
	}))
	must(gowren.RegisterMapFunc(img, "count_bytes", func(_ *gowren.Ctx, part *gowren.PartitionReader) (int, error) {
		data, err := part.ReadAll()
		if err != nil {
			return 0, err
		}
		return len(data), nil
	}))
	must(gowren.RegisterReduceFunc(img, "total", func(_ *gowren.Ctx, group string, partials []int) (map[string]any, error) {
		sum := 0
		for _, p := range partials {
			sum += p
		}
		return map[string]any{"group": group, "sum": sum}, nil
	}))
	return img
}

func newCloud(t *testing.T, cfg gowren.SimConfig) *gowren.Cloud {
	t.Helper()
	cfg.Images = append(cfg.Images, testImage(t))
	cloud, err := gowren.NewSimCloud(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cloud
}

// TestAPITable2MapAndGetResult covers the map() row of the paper's Table 2
// with the exact Fig. 1 example.
func TestAPITable2MapAndGetResult(t *testing.T) {
	cloud := newCloud(t, gowren.SimConfig{})
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.Map("my_function", 3, 6, 9); err != nil {
			t.Error(err)
			return
		}
		results, err := gowren.Results[int](exec)
		if err != nil {
			t.Error(err)
			return
		}
		want := []int{10, 13, 16}
		for i := range want {
			if results[i] != want[i] {
				t.Errorf("results = %v, want %v", results, want)
			}
		}
	})
}

// TestAPITable2CallAsync covers the call_async() row.
func TestAPITable2CallAsync(t *testing.T) {
	cloud := newCloud(t, gowren.SimConfig{})
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.CallAsync("my_function", 35); err != nil {
			t.Error(err)
			return
		}
		got, err := gowren.Result[int](exec)
		if err != nil {
			t.Error(err)
			return
		}
		if got != 42 {
			t.Errorf("result = %d, want 42", got)
		}
	})
}

// TestAPITable2Wait covers the wait() row with all three unlock modes.
func TestAPITable2Wait(t *testing.T) {
	cloud := newCloud(t, gowren.SimConfig{})
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.Map("busy", 2, 120); err != nil {
			t.Error(err)
			return
		}
		done, pending, err := exec.Wait(gowren.WaitAlways, 0)
		if err != nil || len(done) != 0 || len(pending) != 2 {
			t.Errorf("always: %d/%d err=%v", len(done), len(pending), err)
		}
		done, pending, err = exec.Wait(gowren.WaitAnyCompleted, 0)
		if err != nil || len(done) != 1 || len(pending) != 1 {
			t.Errorf("any: %d/%d err=%v", len(done), len(pending), err)
		}
		done, pending, err = exec.Wait(gowren.WaitAllCompleted, 0)
		if err != nil || len(done) != 2 || len(pending) != 0 {
			t.Errorf("all: %d/%d err=%v", len(done), len(pending), err)
		}
	})
}

// TestAPITable2MapReduce covers the map_reduce() row over a discovered
// bucket with chunk-size partitioning and a reducer per object.
func TestAPITable2MapReduce(t *testing.T) {
	cloud := newCloud(t, gowren.SimConfig{})
	store := cloud.Store()
	if err := store.CreateBucket("ds"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put("ds", "obj1", make([]byte, 1500)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put("ds", "obj2", make([]byte, 700)); err != nil {
		t.Fatal(err)
	}
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		_, err = exec.MapReduce("count_bytes", gowren.FromBuckets("ds"), "total", gowren.MapReduceOptions{
			ChunkBytes:          1000,
			ReducerOnePerObject: true,
		})
		if err != nil {
			t.Error(err)
			return
		}
		results, err := gowren.Results[map[string]any](exec)
		if err != nil {
			t.Error(err)
			return
		}
		if len(results) != 2 {
			t.Errorf("reducers = %d, want 2", len(results))
			return
		}
		sums := map[string]float64{}
		for _, r := range results {
			sums[r["group"].(string)] = r["sum"].(float64)
		}
		if sums["ds/obj1"] != 1500 || sums["ds/obj2"] != 700 {
			t.Errorf("sums = %v", sums)
		}
	})
}

// TestAPITable2GetResultTimeout covers get_result's timeout support.
func TestAPITable2GetResultTimeout(t *testing.T) {
	cloud := newCloud(t, gowren.SimConfig{})
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.Map("busy", 500); err != nil {
			t.Error(err)
			return
		}
		_, err = exec.GetResult(gowren.GetResultOptions{Timeout: 5 * time.Second})
		if err == nil || !strings.Contains(err.Error(), "deadline") {
			t.Errorf("err = %v, want wait deadline", err)
		}
	})
}

func TestSequenceCompositionPublicAPI(t *testing.T) {
	cloud := newCloud(t, gowren.SimConfig{})
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		// f3 = f2 ∘ f1 : double_then_add7(5) = 5*2 + 7 = 17.
		if _, err := exec.CallAsync("double_then_add7", 5); err != nil {
			t.Error(err)
			return
		}
		got, err := gowren.Result[int](exec)
		if err != nil {
			t.Error(err)
			return
		}
		if got != 17 {
			t.Errorf("sequence = %d, want 17", got)
		}
	})
}

func TestNestedParallelismPublicAPI(t *testing.T) {
	cloud := newCloud(t, gowren.SimConfig{})
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.CallAsync("spawn_sum", 4); err != nil {
			t.Error(err)
			return
		}
		got, err := gowren.Result[int](exec)
		if err != nil {
			t.Error(err)
			return
		}
		if got != 0+1+2+3+4*7 {
			t.Errorf("spawn_sum = %d, want 34", got)
		}
	})
}

func TestUserFailureSurfaces(t *testing.T) {
	cloud := newCloud(t, gowren.SimConfig{})
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.Map("fail", 1); err != nil {
			t.Error(err)
			return
		}
		if _, err := gowren.Results[int](exec); err == nil || !strings.Contains(err.Error(), "deliberate failure") {
			t.Errorf("err = %v, want user failure", err)
		}
	})
}

func TestWANClientSlowerThanInCloud(t *testing.T) {
	measure := func(profile gowren.ClientProfile) time.Duration {
		cloud := newCloud(t, gowren.SimConfig{})
		var elapsed time.Duration
		cloud.Run(func() {
			exec, err := cloud.Executor(gowren.WithClientProfile(profile))
			if err != nil {
				t.Error(err)
				return
			}
			start := cloud.Clock().Now()
			args := make([]any, 50)
			for i := range args {
				args[i] = i
			}
			if _, err := exec.MapSlice("my_function", args); err != nil {
				t.Error(err)
				return
			}
			elapsed = cloud.Clock().Now().Sub(start)
		})
		return elapsed
	}
	wan := measure(gowren.ClientWAN)
	local := measure(gowren.ClientInCloud)
	if wan < 2*local {
		t.Fatalf("WAN invocation phase (%v) should be much slower than in-cloud (%v)", wan, local)
	}
}

func TestMassiveSpawningPublicAPI(t *testing.T) {
	cloud := newCloud(t, gowren.SimConfig{})
	cloud.Run(func() {
		exec, err := cloud.Executor(
			gowren.WithClientProfile(gowren.ClientWAN),
			gowren.WithMassiveSpawning(10),
		)
		if err != nil {
			t.Error(err)
			return
		}
		args := make([]any, 25)
		for i := range args {
			args[i] = i
		}
		if _, err := exec.MapSlice("my_function", args); err != nil {
			t.Error(err)
			return
		}
		results, err := gowren.Results[int](exec)
		if err != nil {
			t.Error(err)
			return
		}
		for i, v := range results {
			if v != i+7 {
				t.Errorf("result[%d] = %d, want %d", i, v, i+7)
			}
		}
	})
}

func TestRealTimeCloud(t *testing.T) {
	cloud := newCloud(t, gowren.SimConfig{RealTime: true})
	cloud.Run(func() {
		exec, err := cloud.Executor(gowren.WithPollInterval(time.Millisecond))
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.Map("my_function", 1, 2, 3); err != nil {
			t.Error(err)
			return
		}
		results, err := gowren.Results[int](exec)
		if err != nil {
			t.Error(err)
			return
		}
		if len(results) != 3 || results[0] != 8 {
			t.Errorf("real-time results = %v", results)
		}
	})
}

func TestDuplicateImageRejected(t *testing.T) {
	img := testImage(t)
	if _, err := gowren.NewSimCloud(gowren.SimConfig{Images: []*gowren.Image{img, img}}); err == nil {
		t.Fatal("duplicate image accepted")
	}
}

func TestNilFunctionRegistrationRejected(t *testing.T) {
	img := gowren.NewImage("x:1", 0)
	if err := gowren.RegisterFunc[int, int](img, "f", nil); err == nil {
		t.Fatal("nil plain fn accepted")
	}
	if err := gowren.RegisterMapFunc[int](img, "m", nil); err == nil {
		t.Fatal("nil map fn accepted")
	}
	if err := gowren.RegisterReduceFunc[int, int](img, "r", nil); err == nil {
		t.Fatal("nil reduce fn accepted")
	}
}

func TestCleanAndStatsPublicAPI(t *testing.T) {
	cloud := newCloud(t, gowren.SimConfig{})
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.Map("my_function", 1, 2); err != nil {
			t.Error(err)
			return
		}
		if _, err := gowren.Results[int](exec); err != nil {
			t.Error(err)
			return
		}
		stats, err := exec.Stats()
		if err != nil {
			t.Error(err)
			return
		}
		// Results is 0: small outputs are inlined in status records, so no
		// result objects are written.
		if stats.Payloads != 2 || stats.Statuses != 2 || stats.Results != 0 {
			t.Errorf("stats = %+v", stats)
		}
		if err := exec.Clean(); err != nil {
			t.Error(err)
			return
		}
		stats, err = exec.Stats()
		if err != nil {
			t.Error(err)
			return
		}
		if stats.Payloads+stats.Statuses+stats.Results != 0 {
			t.Errorf("post-clean stats = %+v", stats)
		}
	})
}

func TestWaitThresholdPublicAPI(t *testing.T) {
	cloud := newCloud(t, gowren.SimConfig{})
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.Map("busy", 5, 10, 200, 400); err != nil {
			t.Error(err)
			return
		}
		done, pending, err := exec.WaitThreshold(0.5, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if len(done) < 2 || len(pending) == 0 {
			t.Errorf("threshold: done=%d pending=%d", len(done), len(pending))
		}
	})
}

func TestRespawnPublicAPI(t *testing.T) {
	// A crash-free cloud: respawning an empty failure set is a no-op.
	cloud := newCloud(t, gowren.SimConfig{})
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.Map("my_function", 1); err != nil {
			t.Error(err)
			return
		}
		if _, _, err := exec.Wait(gowren.WaitAllCompleted, 0); err != nil {
			t.Error(err)
			return
		}
		failed, err := exec.FailedFutures()
		if err != nil {
			t.Error(err)
			return
		}
		if len(failed) != 0 {
			t.Errorf("failed = %d, want 0", len(failed))
		}
		if err := exec.Respawn(failed); err != nil {
			t.Error(err)
		}
	})
}

func TestShufflePublicAPI(t *testing.T) {
	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	err := gowren.RegisterKVMapFunc(img, "kv/chars", func(_ *gowren.Ctx, part *gowren.PartitionReader) ([]gowren.KV, error) {
		data, err := part.ReadAll()
		if err != nil {
			return nil, err
		}
		var out []gowren.KV
		for _, r := range string(data) {
			if r == '\n' {
				continue
			}
			kv, err := gowren.EmitKV(string(r), 1)
			if err != nil {
				return nil, err
			}
			out = append(out, kv)
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = gowren.RegisterKVReduceFunc(img, "kv/count", func(_ *gowren.Ctx, key string, values []int) (int, error) {
		sum := 0
		for _, v := range values {
			sum += v
		}
		return sum, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{Images: []*gowren.Image{img}})
	if err != nil {
		t.Fatal(err)
	}
	store := cloud.Store()
	if err := store.CreateBucket("letters"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put("letters", "x", []byte("aabbbc\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put("letters", "y", []byte("acc\n")); err != nil {
		t.Fatal(err)
	}
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.MapReduceShuffle("kv/chars", gowren.FromBuckets("letters"), "kv/count", gowren.ShuffleOptions{NumReducers: 3}); err != nil {
			t.Error(err)
			return
		}
		results, err := gowren.ShuffleResults(exec)
		if err != nil {
			t.Error(err)
			return
		}
		want := map[string]int{"a": 3, "b": 3, "c": 3}
		if len(results) != len(want) {
			t.Errorf("results = %v", results)
			return
		}
		prev := ""
		for _, kr := range results {
			if kr.Key <= prev {
				t.Errorf("merged results not sorted: %v", results)
			}
			prev = kr.Key
			var n int
			if err := json.Unmarshal(kr.Value, &n); err != nil {
				t.Error(err)
				return
			}
			if want[kr.Key] != n {
				t.Errorf("count[%s] = %d, want %d", kr.Key, n, want[kr.Key])
			}
		}
	})
}

func TestSpeculativeResultsPublicAPI(t *testing.T) {
	cloud := newCloud(t, gowren.SimConfig{Jitter: true})
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.Map("busy", 2, 2, 2, 2, 2, 2); err != nil {
			t.Error(err)
			return
		}
		results, err := exec.GetResultSpeculative(gowren.GetResultOptions{}, gowren.SpeculationOptions{})
		if err != nil {
			t.Error(err)
			return
		}
		if len(results) != 6 {
			t.Errorf("results = %d", len(results))
		}
	})
}

func TestTraceRecordsPlatformEvents(t *testing.T) {
	cloud := newCloud(t, gowren.SimConfig{TraceCapacity: 4096})
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.Map("my_function", 1, 2, 3); err != nil {
			t.Error(err)
			return
		}
		if _, err := gowren.Results[int](exec); err != nil {
			t.Error(err)
		}
	})
	rec := cloud.Trace()
	if rec == nil {
		t.Fatal("trace recorder not enabled")
	}
	counts := rec.CountByKind()
	if counts["invoke"] < 3 {
		t.Fatalf("invoke events = %d, want >= 3 (counts %v)", counts["invoke"], counts)
	}
	if counts["act-end"] < 3 {
		t.Fatalf("act-end events = %d (counts %v)", counts["act-end"], counts)
	}
	if counts["image-pull"] != 1 {
		t.Fatalf("image pulls = %d, want exactly 1 (counts %v)", counts["image-pull"], counts)
	}
	if counts["cold-start"] < 1 || counts["warm-start"]+counts["cold-start"] < 3 {
		t.Fatalf("container lifecycle events missing: %v", counts)
	}
	var sb strings.Builder
	if err := rec.Dump(&sb, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "gowren-runner--") {
		t.Fatalf("dump missing action names:\n%s", sb.String())
	}
}
