// Mergesort demonstrates dynamic function composition (paper §4.4, §6.3):
// a recursive algorithm where each function spawns two child functions —
// nested parallelism — with the spawn-tree depth under user control.
//
//	go run ./examples/mergesort [-n 2000000] [-depths 0,1,2,3]
//
// It sorts the same array at every requested depth, verifies each result,
// and prints the simulated execution times, showing how deeper trees win
// as the input grows (the paper's Fig. 4).
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"gowren"
	"gowren/internal/workloads"
)

func main() {
	n := flag.Int64("n", 2_000_000, "integers to sort")
	depthsFlag := flag.String("depths", "0,1,2,3", "comma-separated spawn-tree depths")
	flag.Parse()

	depths, err := parseDepths(*depthsFlag)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sorting %d integers at depths %v\n", *n, depths)
	for _, depth := range depths {
		elapsed, err := sortOnce(*n, depth)
		if err != nil {
			log.Fatal(err)
		}
		functions := 1<<(depth+1) - 1
		fmt.Printf("depth %d: %8.1fs simulated  (%3d functions, verified sorted)\n",
			depth, elapsed.Seconds(), functions)
	}
}

func sortOnce(n int64, depth int) (time.Duration, error) {
	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	if err := workloads.Register(img); err != nil {
		return 0, err
	}
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{Images: []*gowren.Image{img}})
	if err != nil {
		return 0, err
	}
	if err := workloads.LoadArray(cloud.Store(), "arrays", "input", n, 7); err != nil {
		return 0, err
	}
	if err := cloud.Store().CreateBucket("out"); err != nil {
		return 0, err
	}

	var (
		elapsed time.Duration
		seg     workloads.Segment
		runErr  error
	)
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			runErr = err
			return
		}
		start := cloud.Clock().Now()
		task := workloads.SortTask{
			Bucket: "arrays", Key: "input",
			Count: n, Depth: depth, OutBucket: "out",
		}
		if _, err := exec.CallAsync(workloads.FuncMergesort, task); err != nil {
			runErr = err
			return
		}
		seg, err = gowren.Result[workloads.Segment](exec)
		if err != nil {
			runErr = err
			return
		}
		elapsed = cloud.Clock().Now().Sub(start)
	})
	if runErr != nil {
		return 0, runErr
	}
	if err := workloads.VerifySorted(cloud.Store(), seg); err != nil {
		return 0, err
	}
	return elapsed, nil
}

func parseDepths(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 0 || d > 8 {
			return nil, fmt.Errorf("bad depth %q (want 0..8)", part)
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no depths given")
	}
	return out, nil
}
