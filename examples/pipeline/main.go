// Pipeline demonstrates dynamic function composition (paper §4.4): a
// sequential chain f3 = f2 ∘ f1 built with Chain, a dynamic fan-out where
// one function spawns a parallel map over data it generated, and the three
// wait() unlock modes of §4.2.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"gowren"
)

func main() {
	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	register := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// A two-stage sequence: normalize then score. normalize returns a
	// continuation, so the client receives score's output directly.
	register(gowren.RegisterFunc(img, "score", func(_ *gowren.Ctx, text string) (int, error) {
		return len(text), nil
	}))
	register(gowren.RegisterComposerFunc(img, "normalize", func(ctx *gowren.Ctx, text string) (*gowren.FuturesRef, error) {
		trimmed := ""
		for _, r := range text {
			if r != ' ' {
				trimmed += string(r)
			}
		}
		return gowren.Chain(ctx, "score", trimmed)
	}))

	// A dynamic fan-out: generate a random list inside the cloud, then map
	// over it in parallel — the paper's foo()/add_seven() example.
	register(gowren.RegisterFunc(img, "add_seven", func(_ *gowren.Ctx, y int) (int, error) {
		return y + 7, nil
	}))
	register(gowren.RegisterComposerFunc(img, "foo", func(ctx *gowren.Ctx, n int) (*gowren.FuturesRef, error) {
		rng := rand.New(rand.NewSource(99))
		items := make([]any, n)
		for i := range items {
			items[i] = rng.Intn(100)
		}
		return gowren.Spawn(ctx, "add_seven", items)
	}))

	// Tasks of mixed durations for the wait() demo.
	register(gowren.RegisterFunc(img, "work", func(ctx *gowren.Ctx, ms int) (int, error) {
		if err := ctx.ChargeCompute(time.Duration(ms) * time.Millisecond); err != nil {
			return 0, err
		}
		return ms, nil
	}))

	cloud, err := gowren.NewSimCloud(gowren.SimConfig{RealTime: true, Images: []*gowren.Image{img}})
	if err != nil {
		log.Fatal(err)
	}

	cloud.Run(func() {
		newExec := func() *gowren.Executor {
			exec, err := cloud.Executor(gowren.WithPollInterval(2 * time.Millisecond))
			if err != nil {
				log.Fatal(err)
			}
			return exec
		}

		// --- Sequence: f3 = score ∘ normalize ---
		seq := newExec()
		if _, err := seq.CallAsync("normalize", "a b c d"); err != nil {
			log.Fatal(err)
		}
		n, err := gowren.Result[int](seq)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sequence  : score(normalize(%q)) = %d\n", "a b c d", n)

		// --- Dynamic parallel fan-out ---
		fan := newExec()
		if _, err := fan.CallAsync("foo", 10); err != nil {
			log.Fatal(err)
		}
		values, err := gowren.Result[[]int](fan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fan-out   : foo spawned %d add_seven calls → %v\n", len(values), values)

		// --- Wait strategies ---
		waiter := newExec()
		if _, err := waiter.Map("work", 30, 300, 600); err != nil {
			log.Fatal(err)
		}
		done, pending, err := waiter.Wait(gowren.WaitAlways, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wait      : Always       → %d done, %d pending\n", len(done), len(pending))
		done, pending, err = waiter.Wait(gowren.WaitAnyCompleted, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wait      : AnyCompleted → %d done, %d pending\n", len(done), len(pending))
		done, pending, err = waiter.Wait(gowren.WaitAllCompleted, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wait      : AllCompleted → %d done, %d pending\n", len(done), len(pending))
	})
}
