// Quickstart reproduces the paper's Fig. 1 execution flow: a plain Go
// function mapped over a list of values through the serverless platform.
//
//	go run ./examples/quickstart
//
// The cloud runs in real time (wall clock) with an in-process object store
// and FaaS controller — no external services.
package main

import (
	"fmt"
	"log"
	"time"

	"gowren"
)

func main() {
	// 1. Build a runtime image and register the function in it. This is
	// GoWren's analogue of PyWren serializing your code: the image is the
	// unit of code distribution (see DESIGN.md).
	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	err := gowren.RegisterFunc(img, "my_function", func(_ *gowren.Ctx, x int) (int, error) {
		return x + 7, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Wire up a simulated IBM Cloud: COS + Cloud Functions.
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{RealTime: true, Images: []*gowren.Image{img}})
	if err != nil {
		log.Fatal(err)
	}

	cloud.Run(func() {
		// 3. exec = pw.ibm_cf_executor()
		exec, err := cloud.Executor(gowren.WithPollInterval(2 * time.Millisecond))
		if err != nil {
			log.Fatal(err)
		}

		// 4. exec.map(my_function, [3, 6, 9])
		data := []any{3, 6, 9}
		if _, err := exec.MapSlice("my_function", data); err != nil {
			log.Fatal(err)
		}

		// 5. result = exec.get_result()
		results, err := gowren.Results[int](exec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("input: ", data)
		fmt.Println("result:", results) // [10 13 16]
	})
}
