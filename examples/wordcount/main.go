// Wordcount is the classic MapReduce job written against GoWren's public
// API with user-defined map and reduce functions: documents stored in the
// object store are discovered, partitioned by chunk size, counted in
// parallel map executors, and merged by a single global reducer.
//
// It also demonstrates correct record handling across partition
// boundaries: partitions split mid-line, so each map executor skips its
// leading partial line and reads past its end to finish the last one —
// the standard technique the paper's partitioner expects map code to use.
//
// With -shuffle R the job instead runs through the keyed object-storage
// shuffle: map executors emit (word, 1) pairs that are hash-partitioned
// across R reduce executors — the shuffle architecture the paper's
// related-work section identifies as the open challenge for serverless
// MapReduce.
//
//	go run ./examples/wordcount [-shuffle 4]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"maps"
	"slices"
	"sort"
	"strings"
	"time"

	"gowren"
)

// chunkSize deliberately splits the documents mid-line.
const chunkSize = 1 << 10

func main() {
	shuffleReducers := flag.Int("shuffle", 0, "run via keyed shuffle with this many reducers (0 = classic global reducer)")
	flag.Parse()

	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	if err := gowren.RegisterMapFunc(img, "wc/map", countWords); err != nil {
		log.Fatal(err)
	}
	if err := gowren.RegisterReduceFunc(img, "wc/reduce", mergeCounts); err != nil {
		log.Fatal(err)
	}
	if err := gowren.RegisterKVMapFunc(img, "wc/emit", emitWords); err != nil {
		log.Fatal(err)
	}
	if err := gowren.RegisterKVReduceFunc(img, "wc/sum", sumCounts); err != nil {
		log.Fatal(err)
	}
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{RealTime: true, Images: []*gowren.Image{img}})
	if err != nil {
		log.Fatal(err)
	}

	// Seed a small corpus.
	store := cloud.Store()
	if err := store.CreateBucket("docs"); err != nil {
		log.Fatal(err)
	}
	corpus := map[string]string{
		"doc-a": strings.Repeat("the quick brown fox jumps over the lazy dog\n", 120),
		"doc-b": strings.Repeat("to be or not to be that is the question\n", 150),
		"doc-c": strings.Repeat("a rose is a rose is a rose\n", 200),
	}
	for _, key := range slices.Sorted(maps.Keys(corpus)) {
		if _, err := store.Put("docs", key, []byte(corpus[key])); err != nil {
			log.Fatal(err)
		}
	}

	cloud.Run(func() {
		exec, err := cloud.Executor(gowren.WithPollInterval(2 * time.Millisecond))
		if err != nil {
			log.Fatal(err)
		}
		parts, err := gowren.PlanPartitions(store, gowren.FromBuckets("docs"), chunkSize)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("corpus partitioned into %d chunks of ≤%d bytes\n", len(parts), chunkSize)

		var counts map[string]int
		if *shuffleReducers > 0 {
			fmt.Printf("shuffling across %d reduce executors\n", *shuffleReducers)
			_, err = exec.MapReduceShuffle("wc/emit", gowren.FromBuckets("docs"), "wc/sum",
				gowren.ShuffleOptions{ChunkBytes: chunkSize, NumReducers: *shuffleReducers})
			if err != nil {
				log.Fatal(err)
			}
			keyed, err := gowren.ShuffleResults(exec)
			if err != nil {
				log.Fatal(err)
			}
			counts = make(map[string]int, len(keyed))
			for _, kr := range keyed {
				var n int
				if err := json.Unmarshal(kr.Value, &n); err != nil {
					log.Fatal(err)
				}
				counts[kr.Key] = n
			}
		} else {
			_, err = exec.MapReduce("wc/map", gowren.FromBuckets("docs"), "wc/reduce",
				gowren.MapReduceOptions{ChunkBytes: chunkSize})
			if err != nil {
				log.Fatal(err)
			}
			counts, err = gowren.Result[map[string]int](exec)
			if err != nil {
				log.Fatal(err)
			}
		}

		type wc struct {
			word string
			n    int
		}
		var sorted []wc
		for _, w := range slices.Sorted(maps.Keys(counts)) {
			sorted = append(sorted, wc{w, counts[w]})
		}
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].n != sorted[j].n {
				return sorted[i].n > sorted[j].n
			}
			return sorted[i].word < sorted[j].word
		})
		fmt.Println("top words:")
		for i, e := range sorted {
			if i == 10 {
				break
			}
			fmt.Printf("  %-10s %d\n", e.word, e.n)
		}
	})
}

// countWords maps one partition to word counts, handling the partial lines
// at both partition boundaries.
func countWords(_ *gowren.Ctx, part *gowren.PartitionReader) (map[string]int, error) {
	p := part.Partition()
	body, err := part.ReadAll()
	if err != nil {
		return nil, err
	}
	// A line belongs to the partition where it *starts*. If the byte just
	// before this partition is not a newline, our first line started in
	// the previous partition (which completes it via ReadBeyond), so skip
	// it here.
	if p.Offset > 0 {
		prev, err := part.ReadBefore(1)
		if err != nil {
			return nil, err
		}
		if len(prev) == 1 && prev[0] != '\n' {
			if i := strings.IndexByte(string(body), '\n'); i >= 0 {
				body = body[i+1:]
			} else {
				body = nil
			}
		}
	}
	// Finish a trailing partial line by reading ahead past the partition.
	if len(body) > 0 && body[len(body)-1] != '\n' && p.Offset+part.Size() < p.ObjectSize {
		const lookahead = 256
		extra, err := part.ReadBeyond(lookahead)
		if err != nil {
			return nil, err
		}
		if i := strings.IndexByte(string(extra), '\n'); i >= 0 {
			body = append(body, extra[:i]...)
		} else {
			body = append(body, extra...)
		}
	}
	counts := make(map[string]int)
	for _, word := range strings.Fields(string(body)) {
		counts[strings.ToLower(word)]++
	}
	return counts, nil
}

// mergeCounts reduces the per-chunk maps into one.
func mergeCounts(_ *gowren.Ctx, _ string, partials []map[string]int) (map[string]int, error) {
	out := make(map[string]int)
	for _, p := range partials {
		for w, n := range p {
			out[w] += n
		}
	}
	return out, nil
}

// emitWords is countWords reshaped for the shuffle path: it emits one
// (word, count) pair per distinct word in the partition.
func emitWords(ctx *gowren.Ctx, part *gowren.PartitionReader) ([]gowren.KV, error) {
	counts, err := countWords(ctx, part)
	if err != nil {
		return nil, err
	}
	out := make([]gowren.KV, 0, len(counts))
	for _, w := range slices.Sorted(maps.Keys(counts)) {
		kv, err := gowren.EmitKV(w, counts[w])
		if err != nil {
			return nil, err
		}
		out = append(out, kv)
	}
	return out, nil
}

// sumCounts is the per-key shuffle reducer.
func sumCounts(_ *gowren.Ctx, _ string, values []int) (int, error) {
	sum := 0
	for _, v := range values {
		sum += v
	}
	return sum, nil
}
