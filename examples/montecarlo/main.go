// Montecarlo estimates π with massively parallel sampling — the
// embarrassingly-parallel scientific workload class the paper's
// introduction motivates ("allows users' non-optimized code to run on
// thousands of cores"). Each function executor draws its own batch of
// random points; a map over executors feeds a single client-side merge.
//
//	go run ./examples/montecarlo [-executors 200] [-samples 1000000]
//
// The run executes on virtual time with the full platform model, so the
// output also reports what the burst would cost under serverless billing.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"gowren"
	"gowren/internal/billing"
)

type batchSpec struct {
	Seed    int64 `json:"seed"`
	Samples int   `json:"samples"`
}

type batchResult struct {
	Inside  int `json:"inside"`
	Samples int `json:"samples"`
}

func main() {
	executors := flag.Int("executors", 200, "number of parallel function executors")
	samples := flag.Int("samples", 1_000_000, "samples per executor")
	flag.Parse()

	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	err := gowren.RegisterFunc(img, "pi/batch", func(ctx *gowren.Ctx, spec batchSpec) (batchResult, error) {
		// xorshift: no shared state between executors, reproducible.
		x := uint64(spec.Seed)*2685821657736338717 + 1
		inside := 0
		for i := 0; i < spec.Samples; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			u := float64(x&0xFFFFFFFF) / float64(1<<32)
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			v := float64(x&0xFFFFFFFF) / float64(1<<32)
			if u*u+v*v <= 1 {
				inside++
			}
		}
		// Model interpreter-speed sampling (~1µs per sample) so the
		// simulated cost reflects a realistic Python executor.
		if err := ctx.ChargeCompute(time.Duration(spec.Samples) * time.Microsecond); err != nil {
			return batchResult{}, err
		}
		return batchResult{Inside: inside, Samples: spec.Samples}, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	cloud, err := gowren.NewSimCloud(gowren.SimConfig{Images: []*gowren.Image{img}, Jitter: true})
	if err != nil {
		log.Fatal(err)
	}

	var (
		elapsed time.Duration
		pi      float64
		total   int
	)
	cloud.Run(func() {
		exec, err := cloud.Executor(gowren.WithMassiveSpawning(0))
		if err != nil {
			log.Fatal(err)
		}
		args := make([]any, *executors)
		for i := range args {
			args[i] = batchSpec{Seed: int64(i) + 1, Samples: *samples}
		}
		start := cloud.Clock().Now()
		if _, err := exec.MapSlice("pi/batch", args); err != nil {
			log.Fatal(err)
		}
		results, err := gowren.Results[batchResult](exec)
		if err != nil {
			log.Fatal(err)
		}
		elapsed = cloud.Clock().Now().Sub(start)

		var inside int
		for _, r := range results {
			inside += r.Inside
			total += r.Samples
		}
		pi = 4 * float64(inside) / float64(total)
	})

	// Meter after Run: activation records finalize when every platform
	// task (including post-handler jitter) has drained.
	usage := billing.MeterActivations(cloud.Platform().Controller().Activations(), 0)
	cost := usage.Cost(billing.IBMCloud2018())

	fmt.Printf("samples   : %d across %d executors\n", total, *executors)
	fmt.Printf("π estimate: %.6f (error %+.6f)\n", pi, pi-math.Pi)
	fmt.Printf("simulated : %v end to end (sequential would be ~%v)\n",
		elapsed.Round(time.Millisecond),
		(time.Duration(total) * time.Microsecond).Round(time.Second))
	fmt.Printf("usage     : %s\n", usage)
	fmt.Printf("cost      : $%.4f\n", cost)
}
