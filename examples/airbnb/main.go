// Airbnb runs the paper's §6.4 use case end to end: tone analysis of city
// review datasets with map_reduce, automatic data discovery and
// partitioning, a reducer per city, and an ASCII render of the resulting
// city map (the paper's Fig. 5).
//
//	go run ./examples/airbnb [-mb 100] [-chunk 4] [-city new-york]
//
// The simulation runs on virtual time, so the output reports the simulated
// duration the job would take on the modeled cloud alongside the measured
// speedup over a sequential baseline.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"gowren"
	"gowren/internal/workloads"
)

func main() {
	datasetMB := flag.Int("mb", 100, "dataset size in MB (paper: 1900)")
	chunkMiB := flag.Int("chunk", 4, "partition chunk size in MiB")
	city := flag.String("city", "new-york", "city map to render")
	flag.Parse()

	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	if err := workloads.Register(img); err != nil {
		log.Fatal(err)
	}
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{Images: []*gowren.Image{img}, Jitter: true})
	if err != nil {
		log.Fatal(err)
	}

	totalBytes := int64(*datasetMB) * 1_000_000
	cities, err := workloads.LoadDataset(cloud.Store(), "airbnb", totalBytes, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d cities, %.2f MB, %d comments\n",
		len(cities), float64(workloads.TotalBytes(cities))/1e6, workloads.TotalRecords(cities))

	var (
		maps     []workloads.CityMap
		elapsed  time.Duration
		executor int
	)
	cloud.Run(func() {
		exec, err := cloud.Executor(
			gowren.WithClientProfile(gowren.ClientInCloud), // a Watson-Studio-style notebook
			gowren.WithMassiveSpawning(0),
		)
		if err != nil {
			log.Fatal(err)
		}
		parts, err := gowren.PlanPartitions(cloud.Store(), gowren.FromBuckets("airbnb"), int64(*chunkMiB)<<20)
		if err != nil {
			log.Fatal(err)
		}
		executor = len(parts)

		start := cloud.Clock().Now()
		_, err = exec.MapReduce(
			workloads.FuncToneMap,
			gowren.FromBuckets("airbnb"),
			workloads.FuncToneReduce,
			gowren.MapReduceOptions{ChunkBytes: int64(*chunkMiB) << 20, ReducerOnePerObject: true},
		)
		if err != nil {
			log.Fatal(err)
		}
		maps, err = gowren.Results[workloads.CityMap](exec, gowren.GetResultOptions{
			Progress: func(done, total int) {
				fmt.Printf("\rreducers finished: %d/%d", done, total)
			},
		})
		fmt.Println()
		if err != nil {
			log.Fatal(err)
		}
		elapsed = cloud.Clock().Now().Sub(start)
	})

	fmt.Printf("map executors: %d (chunk %d MiB)\n", executor, *chunkMiB)
	fmt.Printf("simulated job time: %v\n", elapsed.Round(time.Second))

	var total workloads.ToneCounts
	for _, m := range maps {
		total.Add(m.Counts)
	}
	fmt.Printf("tones across all cities: good %d / neutral %d / bad %d\n\n",
		total.Good, total.Neutral, total.Bad)

	for _, m := range maps {
		if strings.HasSuffix(m.City, *city) {
			fmt.Print(workloads.RenderASCIIMap(m, 72, 18))
			return
		}
	}
	fmt.Printf("city %q not in dataset; available: ", *city)
	for i, c := range cities {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(c.Name)
	}
	fmt.Println()
}
