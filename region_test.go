package gowren_test

import (
	"errors"
	"testing"
	"time"

	"gowren"
)

// regionImage registers the function the multi-region acceptance tests
// run: 5 seconds of compute per call, so a mid-job regional partition
// lands squarely on the result-writing phase.
func regionImage(t *testing.T) *gowren.Image {
	t.Helper()
	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	if err := gowren.RegisterFunc(img, "work", func(ctx *gowren.Ctx, x int) (int, error) {
		if err := ctx.ChargeCompute(5 * time.Second); err != nil {
			return 0, err
		}
		return x * 2, nil
	}); err != nil {
		t.Fatal(err)
	}
	return img
}

// twoRegionConfig scripts the acceptance scenario: two regions, with the
// first fully partitioned from its network between t=2s and t=25s —
// covering the window where a 5 s job's statuses and results are written.
func twoRegionConfig(t *testing.T, seed int64, disableFailover bool) gowren.SimConfig {
	t.Helper()
	return gowren.SimConfig{
		Images: []*gowren.Image{regionImage(t)},
		Seed:   seed,
		Regions: []gowren.RegionSpec{
			{
				Name: "us-south",
				Degrade: []gowren.LinkPhase{
					{Start: 2 * time.Second, End: 25 * time.Second, Partition: true},
				},
			},
			{Name: "eu-gb"},
		},
		DisableRegionFailover: disableFailover,
	}
}

// regionRun executes one 500-call map through the scripted regional
// partition, with the client's own WAN path suffering a concurrent
// latency-inflation window, and returns results, elapsed virtual time,
// dead letters and the facade's failover count.
func regionRun(t *testing.T, seed int64) (results []int, elapsed time.Duration, dead []gowren.DeadLetter, failovers int64) {
	t.Helper()
	cloud, err := gowren.NewSimCloud(twoRegionConfig(t, seed, false))
	if err != nil {
		t.Fatal(err)
	}
	cloud.Run(func() {
		exec, err := cloud.Executor(gowren.WithLinkDegradation(gowren.LinkPhase{
			Start:         2 * time.Second,
			End:           25 * time.Second,
			LatencyFactor: 8,
		}))
		if err != nil {
			t.Error(err)
			return
		}
		args := make([]any, 500)
		for i := range args {
			args[i] = i
		}
		start := cloud.Clock().Now()
		if _, err := exec.MapSlice("work", args); err != nil {
			t.Errorf("map: %v", err)
			return
		}
		// Recovery patient enough to outlast the 23 s partition: a call
		// whose payload got only one replica (a rare write miss at staging)
		// and then lost that region must be re-run once the window lifts.
		results, err = gowren.Results[int](exec, gowren.GetResultOptions{
			Timeout:  time.Hour,
			Recovery: &gowren.RecoveryOptions{MaxAttempts: 8, Backoff: 2 * time.Second},
		})
		if err != nil {
			t.Errorf("get result: %v", err)
			return
		}
		elapsed = cloud.Clock().Now().Sub(start)
		dead = exec.DeadLetters()
	})
	return results, elapsed, dead, cloud.MultiRegion().Stats().Failovers
}

func TestRegionPartitionTransparentFailover(t *testing.T) {
	// Acceptance: a 500-call map runs through a full partition of the
	// preferred region plus an 8x WAN latency inflation on the client
	// path, and completes with every result intact and nothing
	// dead-lettered — the facade absorbs the outage by serving the
	// surviving region.
	results, _, dead, failovers := regionRun(t, 42)
	if len(results) != 500 {
		t.Fatalf("got %d results, want 500", len(results))
	}
	for i, r := range results {
		if r != i*2 {
			t.Fatalf("result[%d] = %d, want %d", i, r, i*2)
		}
	}
	if len(dead) != 0 {
		t.Fatalf("failover run dead-lettered %d calls: %+v", len(dead), dead[0])
	}
	// The partition must actually have engaged, or the test proves
	// nothing: every read served during the window had to fail over.
	if failovers == 0 {
		t.Fatal("no failovers recorded; the partition window never engaged")
	}
}

func TestRegionRunDeterministicUnderSeed(t *testing.T) {
	r1, e1, _, f1 := regionRun(t, 42)
	r2, e2, _, f2 := regionRun(t, 42)
	if e1 != e2 {
		t.Fatalf("elapsed diverged under same seed: %v vs %v", e1, e2)
	}
	if f1 != f2 {
		t.Fatalf("failover count diverged under same seed: %d vs %d", f1, f2)
	}
	if len(r1) != len(r2) {
		t.Fatalf("result counts diverged: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("result %d diverged: %d vs %d", i, r1[i], r2[i])
		}
	}
}

// asyncRegionRun executes the acceptance map with asynchronous replication:
// the preferred region is lost mid-job while catch-up writes to the second
// region are still queued (its path is latency-inflated during the early
// window), so completion depends on the queue carrying the committed bytes
// plus versioned failover and read-repair.
func asyncRegionRun(t *testing.T, seed int64) (results []int, elapsed time.Duration, dead []gowren.DeadLetter, snap gowren.MultiRegionSnapshot) {
	t.Helper()
	cfg := twoRegionConfig(t, seed, false)
	cfg.Replication = gowren.ReplicationAsync
	// Slow the surviving region's path while the first region is still up:
	// catch-up writes queued before the partition are in flight when the
	// primary disappears at t=2s.
	cfg.Regions[1].Degrade = []gowren.LinkPhase{
		{Start: 0, End: 4 * time.Second, LatencyFactor: 40},
	}
	cloud, err := gowren.NewSimCloud(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cloud.Run(func() {
		exec, err := cloud.Executor(gowren.WithLinkDegradation(gowren.LinkPhase{
			Start:         2 * time.Second,
			End:           25 * time.Second,
			LatencyFactor: 8,
		}))
		if err != nil {
			t.Error(err)
			return
		}
		args := make([]any, 500)
		for i := range args {
			args[i] = i
		}
		start := cloud.Clock().Now()
		if _, err := exec.MapSlice("work", args); err != nil {
			t.Errorf("map: %v", err)
			return
		}
		results, err = gowren.Results[int](exec, gowren.GetResultOptions{
			Timeout:  time.Hour,
			Recovery: &gowren.RecoveryOptions{MaxAttempts: 8, Backoff: 2 * time.Second},
		})
		if err != nil {
			t.Errorf("get result: %v", err)
			return
		}
		elapsed = cloud.Clock().Now().Sub(start)
		dead = exec.DeadLetters()
		if !cloud.MultiRegion().Drain(cloud.Clock().Now().Add(time.Hour)) {
			t.Error("replication queues did not drain")
		}
	})
	return results, elapsed, dead, cloud.MultiRegion().Stats()
}

func TestRegionAsyncPartitionCompletesAndRepairs(t *testing.T) {
	// Acceptance: with async replication, losing the preferred region
	// mid-job — before its catch-up queue has drained — must not lose data
	// or wedge the job: acked writes live in the queue (and the primary),
	// catch-up lands them in the survivor, and reads fail over without ever
	// serving a stale replica.
	results, _, dead, st := asyncRegionRun(t, 42)
	if len(results) != 500 {
		t.Fatalf("got %d results, want 500", len(results))
	}
	for i, r := range results {
		if r != i*2 {
			t.Fatalf("result[%d] = %d, want %d", i, r, i*2)
		}
	}
	if len(dead) != 0 {
		t.Fatalf("async run dead-lettered %d calls: %+v", len(dead), dead[0])
	}
	if st.Failovers == 0 {
		t.Fatal("no failovers recorded; the partition window never engaged")
	}
	if st.AsyncQueued == 0 {
		t.Fatal("no catch-up writes queued; replication never went async")
	}
	// The ledger must close: every queued catch-up either landed, was
	// dropped (leaving read-repair to fix the replica), or was obsolete by
	// drain time — none still pending.
	if st.AsyncReplicated+st.AsyncDropped+st.AsyncSkipped != st.AsyncQueued || st.AsyncLag != 0 {
		t.Fatalf("catch-up ledger open: %+v", st)
	}
}

func TestRegionAsyncRunDeterministicUnderSeed(t *testing.T) {
	r1, e1, _, s1 := asyncRegionRun(t, 42)
	r2, e2, _, s2 := asyncRegionRun(t, 42)
	if e1 != e2 {
		t.Fatalf("elapsed diverged under same seed: %v vs %v", e1, e2)
	}
	if s1.Failovers != s2.Failovers || s1.AsyncQueued != s2.AsyncQueued {
		t.Fatalf("facade stats diverged under same seed: %+v vs %+v", s1, s2)
	}
	if len(r1) != len(r2) {
		t.Fatalf("result counts diverged: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("result %d diverged: %d vs %d", i, r1[i], r2[i])
		}
	}
}

func TestRegionPartitionWithoutFailoverDeadLetters(t *testing.T) {
	// Control run: the same partition with failover disabled pins every
	// storage request to the dead region, so the runners cannot commit
	// results, recovery exhausts its budget, and the calls land on the
	// dead-letter list — exactly what the resilience layer exists to
	// prevent.
	cfg := twoRegionConfig(t, 42, true)
	// The window must cover every runner's result write (compute is 5 s)
	// and then lift, so the client's status sweep — itself pinned to the
	// dead region — can come back and observe the carnage.
	cfg.Regions[0].Degrade = []gowren.LinkPhase{
		{Start: 1 * time.Second, End: 20 * time.Second, Partition: true},
	}
	cloud, err := gowren.NewSimCloud(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.MapSlice("work", []any{1, 2, 3, 4}); err != nil {
			t.Errorf("map: %v", err)
			return
		}
		// MaxAttempts -1: record the failures as dead letters without
		// re-executing — a re-run after the window lifts would succeed and
		// mask what the outage cost.
		raws, err := exec.GetResult(gowren.GetResultOptions{
			Timeout:        30 * time.Minute,
			PartialResults: true,
			Recovery:       &gowren.RecoveryOptions{MaxAttempts: -1},
		})
		var pe *gowren.PartialError
		if !errors.As(err, &pe) {
			t.Errorf("err = %v, want *PartialError", err)
			return
		}
		if len(pe.Failed) != 4 {
			t.Errorf("partial error reports %d failures, want 4", len(pe.Failed))
		}
		for _, raw := range raws {
			if raw != nil {
				t.Error("a call committed a result through a partitioned region")
			}
		}
		if dead := exec.DeadLetters(); len(dead) != 4 {
			t.Errorf("dead letters = %d, want 4", len(dead))
		}
		if f := cloud.MultiRegion().Stats().Failovers; f != 0 {
			t.Errorf("failover-disabled run still failed over %d times", f)
		}
	})
}

func TestRegionReplicationVisibleInBothStores(t *testing.T) {
	// A small job on a healthy two-region cloud replicates the meta
	// bucket's objects: results are readable through a view pinned to
	// either region.
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{
		Images: []*gowren.Image{regionImage(t)},
		Seed:   3,
		Regions: []gowren.RegionSpec{
			{Name: "us-south"},
			{Name: "eu-gb"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cloud.Run(func() {
		exec, err := cloud.Executor(gowren.WithPreferredRegion("eu-gb"))
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.Map("work", 10, 20); err != nil {
			t.Errorf("map: %v", err)
			return
		}
		results, err := gowren.Results[int](exec, gowren.GetResultOptions{Timeout: time.Hour})
		if err != nil {
			t.Errorf("get result: %v", err)
			return
		}
		if len(results) != 2 || results[0] != 20 || results[1] != 40 {
			t.Errorf("results = %v, want [20 40]", results)
		}
	})
	if names := cloud.MultiRegion().RegionNames(); len(names) != 2 {
		t.Fatalf("regions = %v", names)
	}
}

func TestPreferredRegionRequiresRegions(t *testing.T) {
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cloud.Run(func() {
		if _, err := cloud.Executor(gowren.WithPreferredRegion("us-south")); err == nil {
			t.Error("WithPreferredRegion on a single-region cloud did not error")
		}
	})
}
