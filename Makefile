GO ?= go

.PHONY: all build vet lint test race chaos bench profile verify

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the in-repo determinism & correctness analyzer suite
# (cmd/gowren-vet: allowaudit, clockcheck, randcheck, errsink, mapiter,
# lockhold, vclockescape) plus a gofmt check. The suite is
# interprocedural: impure helpers taint their callers across package
# boundaries, so findings carry a call chain down to the origin. Suppress
# a finding with a justified `//gowren:allow <check>` comment at the taint
# origin; see DESIGN.md "Determinism rules". allowaudit fails the build on
# allow comments with no justification. `gowren-vet -json` emits the same
# diagnostics machine-readably for CI annotations and the determinism
# gate; `-facts` dumps the per-package taint summaries.
lint: build
	$(GO) run ./cmd/gowren-vet ./...
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt: files need formatting:"; echo "$$fmtout"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection acceptance suite under the race detector:
# scripted COS brownouts, controller outages, regional partitions with
# failover, the recovery/dead-letter machinery, the driver-kill
# crash-recovery scenario (kill the driver mid-map, Attach a fresh one),
# and the exchange-tier kills (memory cache node killed mid-shuffle,
# lingering direct-transfer peers lost before the pull — both must degrade
# to the COS baseline with zero dead letters, bit-identically per seed).
chaos:
	$(GO) test -race -run 'TestChaos|TestController|TestRecovery|TestRegion|TestAttach|TestDriver' .

# bench profiles the client wait/collect hot path at 10k futures
# (cmd/waitbench) and writes BENCH_waitpath.json: client-side storage
# request counts and simulated wall-clock for the incremental
# frontier-based status sweep vs the full-relist baseline. Fails unless
# the incremental sweep lists at least 10× fewer objects per collection.
# It then A/Bs the multi-region knobs (cmd/regionbench) and writes
# BENCH_regions.json: sync vs async PUT ack latency at 3 regions under
# WAN latency (gate: async p50 ≥2× faster) and region-zero vs placed
# cross-region reads on a 500-call map (gate: ≥5× fewer).
# Finally it runs the multi-tenant fairness mix (cmd/tenantbench): eight
# tenants, one bursting 10× its share, writing BENCH_tenants.json. Gates:
# Jain fairness index ≥ 0.9 on goodput satisfaction, zero starved in-quota
# tenants, and bit-identical same-seed reruns.
# simbench gates the simulator's own speed: one million seeded arrivals
# through admission, execution and drain, writing BENCH_simcore.json.
# Gates: ≥200k simulated arrivals per real second (5× the pre-overhaul
# baseline recorded in the report) and bit-identical same-seed reruns.
# exchangebench A/Bs the shuffle data plane (COS baseline vs memory-tier
# cache vs direct peer transfer) and writes BENCH_exchange.json. Gates:
# both fast tiers cut the p50 shuffle makespan ≥3× (latency scenario) and
# COS PUT+GET traffic ≥5× (ops scenario), with bit-identical same-seed
# reruns.
bench: build
	$(GO) run ./cmd/waitbench -n 10000 -out BENCH_waitpath.json -minreduction 10 -minthroughput 3000
	$(GO) run ./cmd/regionbench -out BENCH_regions.json -minackspeedup 2 -minreadreduction 5
	$(GO) run ./cmd/tenantbench -out BENCH_tenants.json -minjain 0.9
	$(GO) run ./cmd/simbench -out BENCH_simcore.json -minsims 200000
	$(GO) run ./cmd/exchangebench -out BENCH_exchange.json -minspeedup 3 -minops 5

# profile runs simbench under the Go profiler and prints the hottest CPU
# frames; simcore.cpu.pprof and simcore.mem.pprof are left behind for
# `go tool pprof` sessions. See DESIGN.md "Simulator performance" for how
# to read the output.
profile: build
	$(GO) run ./cmd/simbench -arrivals 300000 -naive-arrivals 0 -out /dev/null \
		-cpuprofile simcore.cpu.pprof -memprofile simcore.mem.pprof
	$(GO) tool pprof -top -nodecount 20 simcore.cpu.pprof

# verify is the tier-1 gate plus the race detector and the analyzer
# suite — what CI runs.
verify: build vet lint test race
