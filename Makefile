GO ?= go

.PHONY: all build vet test race verify

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the tier-1 gate plus the race detector — what CI runs.
verify: build vet test race
