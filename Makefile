GO ?= go

.PHONY: all build vet test race chaos verify

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection acceptance suite under the race detector:
# scripted COS brownouts, controller outages, regional partitions with
# failover, and the recovery/dead-letter machinery.
chaos:
	$(GO) test -race -run 'TestChaos|TestController|TestRecovery|TestRegion' .

# verify is the tier-1 gate plus the race detector — what CI runs.
verify: build vet test race
