package gowren_test

// Cross-layer integration tests: the executor flow over the HTTP storage
// dialect, many executors sharing one platform concurrently, large jobs on
// virtual time, and recovery from failure storms.

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gowren"
	"gowren/internal/cos"
)

// TestIntegrationHTTPStorageClient runs the full Fig. 1 flow with the
// client's storage access crossing a real socket: payload staging, status
// polling and result download all go through the COS HTTP dialect, while
// functions execute in-process.
func TestIntegrationHTTPStorageClient(t *testing.T) {
	cloud := newCloud(t, gowren.SimConfig{RealTime: true})
	srv := httptest.NewServer(cos.Handler(cloud.Store()))
	defer srv.Close()
	httpStore := cos.NewHTTPClient(srv.URL, srv.Client())

	cloud.Run(func() {
		exec, err := cloud.Executor(
			gowren.WithStorage(httpStore),
			gowren.WithPollInterval(2*time.Millisecond),
		)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.Map("my_function", 10, 20, 30); err != nil {
			t.Error(err)
			return
		}
		results, err := gowren.Results[int](exec)
		if err != nil {
			t.Error(err)
			return
		}
		want := []int{17, 27, 37}
		for i := range want {
			if results[i] != want[i] {
				t.Errorf("results over HTTP = %v, want %v", results, want)
			}
		}
		// The executor's objects must be visible through the HTTP client.
		stats, err := exec.Stats()
		if err != nil {
			t.Error(err)
			return
		}
		if stats.Payloads != 3 || stats.Statuses != 3 {
			t.Errorf("stats over HTTP = %+v", stats)
		}
		if err := exec.Clean(); err != nil {
			t.Errorf("clean over HTTP: %v", err)
		}
	})
}

// TestIntegrationManyExecutorsShareCloud drives several executors
// concurrently from separate simulation tasks against one platform.
func TestIntegrationManyExecutorsShareCloud(t *testing.T) {
	cloud := newCloud(t, gowren.SimConfig{})
	const clients = 8
	var mu sync.Mutex
	sums := make(map[int]int, clients)
	cloud.Run(func() {
		for c := 0; c < clients; c++ {
			cloud.Go(func() {
				exec, err := cloud.Executor()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := exec.Map("my_function", c*10, c*10+1); err != nil {
					t.Error(err)
					return
				}
				results, err := gowren.Results[int](exec)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				sums[c] = results[0] + results[1]
				mu.Unlock()
			})
		}
	})
	if len(sums) != clients {
		t.Fatalf("completed clients = %d, want %d", len(sums), clients)
	}
	for c, sum := range sums {
		if want := (c*10 + 7) + (c*10 + 1 + 7); sum != want {
			t.Errorf("client %d sum = %d, want %d", c, sum, want)
		}
	}
}

// TestIntegrationLargeMapVirtualTime runs a 2,000-call map on the virtual
// clock — paper scale — and checks every result and the elapsed simulated
// time (tasks overlap, so minutes of task time collapse to the critical
// path).
func TestIntegrationLargeMapVirtualTime(t *testing.T) {
	cloud := newCloud(t, gowren.SimConfig{MaxConcurrent: 2100})
	cloud.Run(func() {
		exec, err := cloud.Executor(gowren.WithMassiveSpawning(0))
		if err != nil {
			t.Error(err)
			return
		}
		const n = 2000
		args := make([]any, n)
		for i := range args {
			args[i] = i
		}
		start := cloud.Clock().Now()
		if _, err := exec.MapSlice("my_function", args); err != nil {
			t.Error(err)
			return
		}
		results, err := gowren.Results[int](exec)
		if err != nil {
			t.Error(err)
			return
		}
		for i, v := range results {
			if v != i+7 {
				t.Errorf("result[%d] = %d", i, v)
				return
			}
		}
		if elapsed := cloud.Clock().Now().Sub(start); elapsed > 2*time.Minute {
			t.Errorf("2000-call map took %v simulated, want well under 2m", elapsed)
		}
	})
}

// TestIntegrationFailureStormRecovery drives a job to completion on a
// platform that crashes 40% of activations, using the respawn loop.
func TestIntegrationFailureStormRecovery(t *testing.T) {
	img := testImage(t)
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{Images: []*gowren.Image{img}, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	// Jitter and crashes via the platform config are not exposed on
	// SimConfig for crashes; use the core-level behaviours covered in
	// internal tests and exercise the public respawn loop against WAN
	// network failures instead: every layer retries, so the job must
	// complete despite an 8% request loss rate.
	cloud.Run(func() {
		exec, err := cloud.Executor(
			gowren.WithClientProfile(gowren.ClientWAN),
			gowren.WithRetryPolicy(8, 200*time.Millisecond),
		)
		if err != nil {
			t.Error(err)
			return
		}
		const n = 150
		args := make([]any, n)
		for i := range args {
			args[i] = i
		}
		if _, err := exec.MapSlice("my_function", args); err != nil {
			t.Error(err)
			return
		}
		results, err := gowren.Results[int](exec)
		if err != nil {
			t.Error(err)
			return
		}
		if len(results) != n {
			t.Errorf("results = %d, want %d", len(results), n)
		}
	})
}

// TestIntegrationCompositionThroughMapReduce chains the features: a
// map_reduce whose reducer output is consumed by a follow-up composed
// call, all within one cloud.
func TestIntegrationCompositionThroughMapReduce(t *testing.T) {
	cloud := newCloud(t, gowren.SimConfig{})
	store := cloud.Store()
	if err := store.CreateBucket("data"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := store.Put("data", fmt.Sprintf("part-%d", i), make([]byte, 100*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	cloud.Run(func() {
		mr, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := mr.MapReduce("count_bytes", gowren.FromBuckets("data"), "total", gowren.MapReduceOptions{}); err != nil {
			t.Error(err)
			return
		}
		reduced, err := gowren.Results[map[string]any](mr)
		if err != nil {
			t.Error(err)
			return
		}
		total := int(reduced[0]["sum"].(float64))
		if total != 100+200+300+400 {
			t.Errorf("reduced total = %d", total)
			return
		}
		// Feed the reduced value into a composed sequence.
		seq, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := seq.CallAsync("double_then_add7", total); err != nil {
			t.Error(err)
			return
		}
		final, err := gowren.Result[int](seq)
		if err != nil {
			t.Error(err)
			return
		}
		if final != total*2+7 {
			t.Errorf("composed final = %d, want %d", final, total*2+7)
		}
	})
}
