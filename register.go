package gowren

import (
	"encoding/json"
	"fmt"

	"gowren/internal/runtime"
	"gowren/internal/wire"
)

// ExtendImage builds a custom image on top of a base — the Docker FROM
// idiom for custom runtimes (paper §3.1). The child inherits every base
// function; register additions on it before passing it to NewSimCloud.
func ExtendImage(base *Image, name string, extraSizeMB int) *Image {
	return base.Extend(name, extraSizeMB)
}

// RegisterFunc registers a typed plain function on an image. The argument
// and result cross the wire as JSON, so I and O must be JSON-serializable.
// This is GoWren's substitute for PyWren pickling arbitrary closures: code
// ships inside runtime images, addressed by name (see DESIGN.md §3).
func RegisterFunc[I, O any](img *Image, name string, fn func(ctx *Ctx, arg I) (O, error)) error {
	if fn == nil {
		return fmt.Errorf("gowren: register %q: nil function", name)
	}
	return img.RegisterPlain(name, func(ctx *Ctx, raw json.RawMessage) (any, error) {
		var arg I
		if len(raw) > 0 {
			if err := wire.Unmarshal(raw, &arg); err != nil {
				return nil, fmt.Errorf("gowren: %s: decode argument: %w", name, err)
			}
		}
		return fn(ctx, arg)
	})
}

// RegisterComposerFunc registers a plain function that returns a dynamic
// composition (a *FuturesRef from Spawn or Chain) instead of a value.
func RegisterComposerFunc[I any](img *Image, name string, fn func(ctx *Ctx, arg I) (*wire.FuturesRef, error)) error {
	if fn == nil {
		return fmt.Errorf("gowren: register %q: nil function", name)
	}
	return img.RegisterPlain(name, func(ctx *Ctx, raw json.RawMessage) (any, error) {
		var arg I
		if len(raw) > 0 {
			if err := wire.Unmarshal(raw, &arg); err != nil {
				return nil, fmt.Errorf("gowren: %s: decode argument: %w", name, err)
			}
		}
		return fn(ctx, arg)
	})
}

// RegisterMapFunc registers a typed map function over storage partitions,
// used by MapReduce with storage-backed data sources.
func RegisterMapFunc[O any](img *Image, name string, fn func(ctx *Ctx, part *PartitionReader) (O, error)) error {
	if fn == nil {
		return fmt.Errorf("gowren: register %q: nil function", name)
	}
	return img.RegisterMapPartition(name, func(ctx *Ctx, part *runtime.PartitionReader) (any, error) {
		return fn(ctx, part)
	})
}

// RegisterReduceFunc registers a typed reduce function. P is the map
// functions' result type; group is the source object key in
// reducer-one-per-object mode ("" for a global reducer).
func RegisterReduceFunc[P, O any](img *Image, name string, fn func(ctx *Ctx, group string, partials []P) (O, error)) error {
	if fn == nil {
		return fmt.Errorf("gowren: register %q: nil function", name)
	}
	return img.RegisterReduce(name, func(ctx *Ctx, group string, raws []json.RawMessage) (any, error) {
		partials := make([]P, len(raws))
		for i, raw := range raws {
			if err := wire.Unmarshal(raw, &partials[i]); err != nil {
				return nil, fmt.Errorf("gowren: %s: decode partial %d: %w", name, i, err)
			}
		}
		return fn(ctx, group, partials)
	})
}

// KV is one key–value pair emitted by a shuffle map function; build them
// with EmitKV.
type KV = wire.KV

// KeyResult is one reduced key produced by a shuffle reducer.
type KeyResult = wire.KeyResult

// EmitKV builds a key–value pair, marshaling the value as JSON.
func EmitKV(key string, value any) (KV, error) {
	raw, err := wire.Marshal(value)
	if err != nil {
		return KV{}, fmt.Errorf("gowren: emit %q: %w", key, err)
	}
	return KV{Key: key, Value: raw}, nil
}

// RegisterKVMapFunc registers a shuffle map function: it emits key–value
// pairs from its partition, which the platform shuffles across reducers
// through object storage.
func RegisterKVMapFunc(img *Image, name string, fn func(ctx *Ctx, part *PartitionReader) ([]KV, error)) error {
	if fn == nil {
		return fmt.Errorf("gowren: register %q: nil function", name)
	}
	return img.RegisterKVMap(name, func(ctx *Ctx, part *runtime.PartitionReader) ([]wire.KV, error) {
		return fn(ctx, part)
	})
}

// RegisterKVReduceFunc registers a typed per-key reduce function for
// shuffle jobs. V is the map functions' value type.
func RegisterKVReduceFunc[V, O any](img *Image, name string, fn func(ctx *Ctx, key string, values []V) (O, error)) error {
	if fn == nil {
		return fmt.Errorf("gowren: register %q: nil function", name)
	}
	return img.RegisterKVReduce(name, func(ctx *Ctx, key string, raws []json.RawMessage) (any, error) {
		values := make([]V, len(raws))
		for i, raw := range raws {
			if err := wire.Unmarshal(raw, &values[i]); err != nil {
				return nil, fmt.Errorf("gowren: %s: decode value %d of key %q: %w", name, i, key, err)
			}
		}
		return fn(ctx, key, values)
	})
}
