module gowren

go 1.24
