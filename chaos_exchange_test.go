package gowren_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"gowren"
	"gowren/internal/trace"
)

// exchangeChaosImage registers the KV pipeline the exchange fault tests
// run: a word-count map whose compute charge varies with partition size, so
// map completions stagger deterministically across the fault window — some
// partitions reach the fast tier before the kill, the rest land inside it.
func exchangeChaosImage(t *testing.T) *gowren.Image {
	t.Helper()
	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	err := gowren.RegisterKVMapFunc(img, "xc/words", func(ctx *gowren.Ctx, part *gowren.PartitionReader) ([]gowren.KV, error) {
		data, err := part.ReadAll()
		if err != nil {
			return nil, err
		}
		charge := time.Duration(1+len(data)%20) * 500 * time.Millisecond
		if err := ctx.ChargeCompute(charge); err != nil {
			return nil, err
		}
		var out []gowren.KV
		for _, w := range strings.Fields(string(data)) {
			kv, err := gowren.EmitKV(w, 1)
			if err != nil {
				return nil, err
			}
			out = append(out, kv)
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = gowren.RegisterKVReduceFunc(img, "xc/sum", func(_ *gowren.Ctx, _ string, values []int) (int, error) {
		sum := 0
		for _, v := range values {
			sum += v
		}
		return sum, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// exchangeCorpus builds n deterministic documents of varying length (so the
// map compute charges spread) and the expected word counts.
func exchangeCorpus(n int) (map[string]string, map[string]int) {
	vocab := []string{"alpha", "bravo", "charlie", "delta", "echo", "fox", "golf", "hotel"}
	docs := map[string]string{}
	want := map[string]int{}
	for i := 0; i < n; i++ {
		var sb strings.Builder
		for w := 0; w < 5+(i*7)%23; w++ {
			word := vocab[(i+w)%len(vocab)]
			sb.WriteString(word)
			sb.WriteByte(' ')
			want[word]++
		}
		docs[fmt.Sprintf("doc-%03d", i)] = sb.String()
	}
	return docs, want
}

// exchangeChaosRun executes one shuffle on the given transport under the
// given fault window and returns the merged results, elapsed virtual time,
// the number of exchange fallback events traced, the dead-letter count, and
// the fabric accounting snapshot.
func exchangeChaosRun(t *testing.T, seed int64, transport string, maps, reducers int,
	fault gowren.ChaosFault) ([]gowren.KeyResult, time.Duration, int, int, gowren.ExchangeOpCounts) {
	t.Helper()
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{
		Images:        []*gowren.Image{exchangeChaosImage(t)},
		Seed:          seed,
		TraceCapacity: 1 << 17,
		Chaos:         []gowren.ChaosFault{fault},
	})
	if err != nil {
		t.Fatal(err)
	}
	docs, _ := exchangeCorpus(maps)
	store := cloud.Store()
	if err := store.CreateBucket("corpus"); err != nil {
		t.Fatal(err)
	}
	for key, body := range docs {
		if _, err := store.Put("corpus", key, []byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	var results []gowren.KeyResult
	var elapsed time.Duration
	var dead int
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		start := cloud.Clock().Now()
		_, err = exec.MapReduceShuffle("xc/words", gowren.FromBuckets("corpus"), "xc/sum", gowren.ShuffleOptions{
			NumReducers: reducers,
			Exchange:    transport,
		})
		if err != nil {
			t.Errorf("shuffle: %v", err)
			return
		}
		results, err = gowren.ShuffleResults(exec, gowren.GetResultOptions{Timeout: 24 * time.Hour})
		if err != nil {
			t.Errorf("shuffle results: %v", err)
			return
		}
		elapsed = cloud.Clock().Now().Sub(start)
		dead = len(exec.DeadLetters())
	})
	fallbacks := 0
	for _, ev := range cloud.Trace().Events() {
		if ev.Kind == trace.KindExchange && strings.Contains(ev.Detail, "fallback=") {
			fallbacks++
		}
	}
	return results, elapsed, fallbacks, dead, cloud.ExchangeOps()
}

func checkExchangeCounts(t *testing.T, results []gowren.KeyResult, want map[string]int) {
	t.Helper()
	if len(results) != len(want) {
		t.Fatalf("distinct keys = %d, want %d", len(results), len(want))
	}
	for _, kr := range results {
		var n int
		if err := json.Unmarshal(kr.Value, &n); err != nil {
			t.Fatal(err)
		}
		if want[kr.Key] != n {
			t.Fatalf("count[%q] = %d, want %d", kr.Key, n, want[kr.Key])
		}
	}
}

// cacheDownFault kills the memory-tier cache from t=3s for the rest of the
// job: the first wave of map outputs reaches the cache and is flushed by
// the kill; everything after fails fast and degrades to synchronous COS
// writes. Reducers recompute the flushed partitions.
func cacheDownFault() gowren.ChaosFault {
	return gowren.ChaosFault{
		Kind:  gowren.ChaosExchangeCacheDown,
		Start: 3 * time.Second,
		End:   12 * time.Hour,
	}
}

// peerLossFault kills lingering direct-exchange producers from t=4s: early
// maps publish advertisements that are dropped before any reducer pulls,
// later maps fail publication outright and fall back to COS at write time.
func peerLossFault() gowren.ChaosFault {
	return gowren.ChaosFault{
		Kind:  gowren.ChaosExchangePeerLoss,
		Start: 4 * time.Second,
		End:   12 * time.Hour,
	}
}

func TestChaosExchangeCacheDownDegradesToCOS(t *testing.T) {
	// Acceptance: a 300-call memory-tier shuffle with the cache node
	// killed mid-job completes exactly — the kill costs the fast path,
	// never the answer — with zero dead letters.
	const maps, reducers = 280, 20
	_, want := exchangeCorpus(maps)
	results, _, fallbacks, dead, ops := exchangeChaosRun(t, 42, gowren.ExchangeMemory, maps, reducers, cacheDownFault())
	checkExchangeCounts(t, results, want)
	if dead != 0 {
		t.Fatalf("dead letters = %d, want 0", dead)
	}
	// The fault must actually have engaged the degradation path, or the
	// test proves nothing.
	if ops.Memory.PutOps == 0 {
		t.Fatal("no map output reached the cache before the kill")
	}
	if ops.Flushed == 0 {
		t.Fatal("cache kill flushed nothing; the fault window missed the job")
	}
	if ops.Memory.Fallbacks == 0 || fallbacks == 0 {
		t.Fatalf("no fallbacks recorded (counter=%d traced=%d)", ops.Memory.Fallbacks, fallbacks)
	}
}

func TestChaosExchangePeerLossDegradesToCOS(t *testing.T) {
	// Acceptance: a 200-call direct-transfer shuffle whose lingering
	// producers are killed before any reducer pulls completes exactly via
	// the COS/recompute fallback, with zero dead letters.
	const maps, reducers = 180, 20
	_, want := exchangeCorpus(maps)
	results, _, fallbacks, dead, ops := exchangeChaosRun(t, 42, gowren.ExchangeDirect, maps, reducers, peerLossFault())
	checkExchangeCounts(t, results, want)
	if dead != 0 {
		t.Fatalf("dead letters = %d, want 0", dead)
	}
	if ops.Direct.PutOps == 0 {
		t.Fatal("no advertisements published before the kill")
	}
	if ops.Expired == 0 {
		t.Fatal("peer loss dropped no advertisements; the fault window missed the job")
	}
	if ops.Direct.Fallbacks == 0 || fallbacks == 0 {
		t.Fatalf("no fallbacks recorded (counter=%d traced=%d)", ops.Direct.Fallbacks, fallbacks)
	}
}

func TestChaosExchangeDeterministicUnderSeed(t *testing.T) {
	// The degraded runs must stay same-seed bit-identical: identical
	// merged results, identical virtual elapsed, identical fallback
	// counts. Fault recovery is part of the simulation, not noise.
	scenarios := []struct {
		name      string
		transport string
		maps      int
		reducers  int
		fault     gowren.ChaosFault
	}{
		{"cache-down", gowren.ExchangeMemory, 120, 10, cacheDownFault()},
		{"peer-loss", gowren.ExchangeDirect, 120, 10, peerLossFault()},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			r1, e1, f1, d1, _ := exchangeChaosRun(t, 7, sc.transport, sc.maps, sc.reducers, sc.fault)
			r2, e2, f2, d2, _ := exchangeChaosRun(t, 7, sc.transport, sc.maps, sc.reducers, sc.fault)
			if e1 != e2 {
				t.Fatalf("elapsed diverged under same seed: %v vs %v", e1, e2)
			}
			if f1 != f2 || d1 != d2 {
				t.Fatalf("fallbacks/dead diverged: %d/%d vs %d/%d", f1, d1, f2, d2)
			}
			if len(r1) != len(r2) {
				t.Fatalf("result counts diverged: %d vs %d", len(r1), len(r2))
			}
			for i := range r1 {
				if r1[i].Key != r2[i].Key || string(r1[i].Value) != string(r2[i].Value) {
					t.Fatalf("result %d diverged: %s=%s vs %s=%s",
						i, r1[i].Key, r1[i].Value, r2[i].Key, r2[i].Value)
				}
			}
		})
	}
}
