// Package faas simulates the FaaS platform under IBM-PyWren: IBM Cloud
// Functions, which is Apache OpenWhisk (paper §3). The Controller exposes
// the pieces of the platform the paper's results depend on:
//
//   - asynchronous action invocation through a serialized admission
//     pipeline (the gateway bottleneck that caps in-cloud invocation rates
//     and makes 1,000 invocations take ~8 s even from inside the
//     datacenter — paper §5.1);
//   - a concurrent-invocation limit with 429-style throttling (default
//     1,000, raisable, as §3 describes);
//   - per-invocation memory (512 MB) and execution-time (600 s) limits;
//   - a container pool with Docker-image cold starts: the first activation
//     of an image pays a registry pull, later cold starts pay only the boot
//     cost because the image is cached internally (§3.1), and recently used
//     containers are kept warm;
//   - execution-time jitter modeling the variable resource availability
//     visible as ragged gray lines in the paper's Fig. 3;
//   - activation records with submit/start/end timestamps, from which the
//     experiment harnesses derive concurrency time series.
package faas

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"gowren/internal/cos"
	"gowren/internal/netsim"
	"gowren/internal/runtime"
	"gowren/internal/trace"
	"gowren/internal/vclock"
)

// Errors returned by the controller.
var (
	ErrNoSuchAction = errors.New("faas: no such action")
	ErrActionExists = errors.New("faas: action already exists")
	ErrThrottled    = errors.New("faas: too many concurrent invocations (429)")
	// ErrQuotaExceeded rejects an invocation whose tenant is over its
	// token-bucket rate quota (admission layer; Throttle-class to retry
	// policies, but the tenant's own doing rather than platform load).
	ErrQuotaExceeded = errors.New("faas: tenant rate quota exceeded (429)")
	// ErrShed rejects an invocation dropped by overload protection: its
	// tenant's admission queue was full, or it sat queued past the
	// admission deadline.
	ErrShed         = errors.New("faas: invocation shed under overload (429)")
	ErrMemoryLimit  = errors.New("faas: requested memory exceeds platform limit")
	ErrCrashed      = errors.New("faas: container crashed")
	ErrNoActivation = errors.New("faas: no such activation")
)

// Platform limits mirroring the paper's §3 defaults for IBM Cloud Functions
// at the time of writing.
const (
	DefaultMaxConcurrent = 1000
	DefaultMemoryMB      = 512
	MaxMemoryMB          = 2048
	DefaultTimeout       = 600 * time.Second
)

// Handler is the code bound to an action. GoWren registers one generic
// runner handler per runtime image (internal/exec); params are opaque bytes.
type Handler func(ctx *runtime.Ctx, params []byte) ([]byte, error)

// Config configures a Controller.
type Config struct {
	Clock    vclock.Clock
	Registry *runtime.Registry
	// Storage is the object-storage client functions see. In-process
	// simulations pass the Store directly so container traffic is charged
	// on the in-cloud link.
	Storage cos.Client

	// MaxConcurrent caps in-flight activations; exceeding it throttles
	// (429). Zero uses DefaultMaxConcurrent; negative means unlimited.
	MaxConcurrent int

	// Admission, when non-nil, replaces the bare global 429 gate with the
	// tenant-aware admission layer: per-tenant token buckets feed a
	// deficit-weighted round-robin over bounded per-tenant queues, with
	// deadline-based shedding (see AdmissionConfig). MaxConcurrent stays
	// the global capacity underneath it. Nil keeps the paper's behavior:
	// one global limit, immediate 429s.
	Admission *AdmissionConfig

	// AdmitOverhead is the serialized gateway service time per invocation:
	// the admission pipeline sustains 1/AdmitOverhead invocations/second
	// regardless of caller parallelism. Zero uses a calibrated default.
	AdmitOverhead time.Duration

	// ColdStartBoot is the container boot cost on a cold start, excluding
	// the image pull. Zero uses a sub-second default (paper §5: containers
	// "fast to boot up ... within a sub-second range").
	ColdStartBoot time.Duration
	// PullBandwidthMBps is the registry pull rate for the first cold start
	// of an image. Zero uses a default.
	PullBandwidthMBps float64
	// WarmStart is the reuse cost of a warm container.
	WarmStart time.Duration
	// KeepAlive is how long an idle container stays warm.
	KeepAlive time.Duration

	// ExecJitter adds platform noise to each activation's runtime
	// (scheduling delays, noisy neighbours). Nil means none.
	ExecJitter netsim.LatencyModel
	// CrashProb is the probability an activation dies with ErrCrashed
	// after starting; used by failure-injection tests. Zero disables.
	CrashProb float64

	// Seed feeds the controller's PRNG (jitter, crashes).
	Seed int64

	// Outage, when non-nil, is consulted on every invocation; returning
	// true makes the gateway reject the call with ErrThrottled, modeling a
	// controller outage window (chaos injection). Callers see ordinary
	// 429s and retry through the usual policy.
	Outage func() bool
	// SlowFactor, when non-nil, multiplies each activation's sampled exec
	// jitter; values > 1 model slow-container windows (chaos injection).
	SlowFactor func() float64

	// Trace, when non-nil, records platform events (invocations,
	// throttles, container lifecycle) for post-run inspection.
	Trace *trace.Recorder

	// RetainActivations bounds the completed activation records kept in
	// memory: once more than this many completed activations exist, the
	// oldest completed records are evicted from Activation/Activations
	// lookups, the way a real platform ages out its activation log. The
	// per-tenant completion counters (CompletedByTenant) survive eviction.
	// Zero retains everything — required by waiters that consult records
	// long after completion (the executor's dead-call detection).
	RetainActivations int
}

func (c *Config) applyDefaults() {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = DefaultMaxConcurrent
	}
	if c.AdmitOverhead == 0 {
		c.AdmitOverhead = 5 * time.Millisecond
	}
	if c.ColdStartBoot == 0 {
		c.ColdStartBoot = 450 * time.Millisecond
	}
	if c.PullBandwidthMBps == 0 {
		c.PullBandwidthMBps = 120
	}
	if c.WarmStart == 0 {
		c.WarmStart = 8 * time.Millisecond
	}
	if c.KeepAlive == 0 {
		c.KeepAlive = 10 * time.Minute
	}
}

// ActionSpec declares an action: a name bound to a handler executing inside
// a runtime image.
type ActionSpec struct {
	Name     string
	Image    string // runtime image name, resolved through the registry
	Handler  Handler
	MemoryMB int           // zero uses DefaultMemoryMB
	Timeout  time.Duration // zero uses DefaultTimeout; clamped to it
}

// Activation is the record of one function invocation.
type Activation struct {
	ID     string
	Action string
	// Tenant is the (resolved) tenant the invocation was admitted for —
	// DefaultTenant when the caller named none. Billing rolls up by it.
	Tenant string

	SubmitAt time.Time // accepted by the gateway
	StartAt  time.Time // handler entered (container ready)
	EndAt    time.Time // handler returned

	ColdStart bool
	OK        bool
	Error     string
	Result    []byte

	// MemoryMB is the container memory limit, for GB-second billing.
	MemoryMB int

	// LingerUntil, when set, is how long the container stayed resident
	// after completion to serve direct-exchange peer pulls (see
	// LingerActivation); zero for ordinary activations.
	LingerUntil time.Time
}

// Done reports whether the activation has finished.
func (a Activation) Done() bool { return !a.EndAt.IsZero() }

type action struct {
	spec ActionSpec
	img  *runtime.Image
}

// Controller is the simulated FaaS platform.
type Controller struct {
	cfg Config

	mu          sync.Mutex
	actions     map[string]*action
	activations map[string]*Activation
	order       []string // activation IDs in submit order
	// Completed-record aging (Config.RetainActivations): completed IDs in
	// completion order, consumed from completedHead as records age out.
	// completedOK counts successful completions per tenant forever.
	completed     []string
	completedHead int
	completedOK   map[string]int
	inflight      int
	nextActID     uint64
	gatewayFree   time.Time       // next free slot of the serialized admission pipeline
	pulled        map[string]bool // images already cached in the internal registry
	warm          map[string][]warmContainer
	// lingers holds per-activation keep-resident deadlines requested by
	// the exchange layer before the activation completes (direct shuffle
	// transport); consumed at completion time.
	lingers map[string]time.Time
	rng     *rand.Rand

	// adm is the tenant-aware admission state; nil when Config.Admission
	// is unset (legacy global gate).
	adm *admission

	spawnerFor func(ctx *runtime.Ctx) runtime.Spawner
}

type warmContainer struct {
	idleSince time.Time
	// residentUntil, when set, pins the container against KeepAlive
	// eviction: it is a lingering direct-exchange producer whose partition
	// outputs must stay pullable until the deadline. It remains a normal
	// warm container otherwise — new activations may reuse it (its staged
	// outputs live in the exchange layer, not the activation).
	residentUntil time.Time
}

// New returns a Controller with cfg. Clock, Registry and Storage are
// required.
func New(cfg Config) (*Controller, error) {
	if cfg.Clock == nil {
		return nil, errors.New("faas: config missing clock")
	}
	if cfg.Registry == nil {
		return nil, errors.New("faas: config missing runtime registry")
	}
	if cfg.Storage == nil {
		return nil, errors.New("faas: config missing storage client")
	}
	cfg.applyDefaults()
	c := &Controller{
		cfg:         cfg,
		actions:     make(map[string]*action),
		activations: make(map[string]*Activation),
		completedOK: make(map[string]int),
		pulled:      make(map[string]bool),
		warm:        make(map[string][]warmContainer),
		lingers:     make(map[string]time.Time),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Admission != nil {
		c.adm = newAdmission(*cfg.Admission)
	}
	return c, nil
}

// SetSpawnerFactory installs the hook that equips function contexts with a
// dynamic-composition spawner. The executor layer calls this once at wiring
// time; fn receives the partially built ctx and returns the spawner to
// expose to user code.
func (c *Controller) SetSpawnerFactory(fn func(ctx *runtime.Ctx) runtime.Spawner) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spawnerFor = fn
}

// CreateAction registers spec with the platform, validating limits and the
// runtime image.
func (c *Controller) CreateAction(spec ActionSpec) error {
	if spec.Name == "" {
		return errors.New("faas: action name required")
	}
	if spec.Handler == nil {
		return fmt.Errorf("faas: action %q has no handler", spec.Name)
	}
	if spec.MemoryMB == 0 {
		spec.MemoryMB = DefaultMemoryMB
	}
	if spec.MemoryMB > MaxMemoryMB {
		return fmt.Errorf("faas: action %q requests %d MB: %w", spec.Name, spec.MemoryMB, ErrMemoryLimit)
	}
	if spec.Timeout <= 0 || spec.Timeout > DefaultTimeout {
		spec.Timeout = DefaultTimeout
	}
	img, err := c.cfg.Registry.Pull(spec.Image)
	if err != nil {
		return fmt.Errorf("faas: action %q: %w", spec.Name, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.actions[spec.Name]; ok {
		return fmt.Errorf("faas: action %q: %w", spec.Name, ErrActionExists)
	}
	c.actions[spec.Name] = &action{spec: spec, img: img}
	return nil
}

// UpdateAction replaces an existing action's spec (new handler, image,
// limits), keeping its name — OpenWhisk's action update. Warm containers of
// the old version are discarded so the next invocation cold-starts the new
// code.
func (c *Controller) UpdateAction(spec ActionSpec) error {
	if spec.Name == "" {
		return errors.New("faas: action name required")
	}
	if spec.Handler == nil {
		return fmt.Errorf("faas: action %q has no handler", spec.Name)
	}
	if spec.MemoryMB == 0 {
		spec.MemoryMB = DefaultMemoryMB
	}
	if spec.MemoryMB > MaxMemoryMB {
		return fmt.Errorf("faas: action %q requests %d MB: %w", spec.Name, spec.MemoryMB, ErrMemoryLimit)
	}
	if spec.Timeout <= 0 || spec.Timeout > DefaultTimeout {
		spec.Timeout = DefaultTimeout
	}
	img, err := c.cfg.Registry.Pull(spec.Image)
	if err != nil {
		return fmt.Errorf("faas: action %q: %w", spec.Name, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.actions[spec.Name]; !ok {
		return fmt.Errorf("faas: update action %q: %w", spec.Name, ErrNoSuchAction)
	}
	c.actions[spec.Name] = &action{spec: spec, img: img}
	delete(c.warm, spec.Name)
	return nil
}

// DeleteAction unregisters an action. In-flight activations finish;
// subsequent invocations fail with ErrNoSuchAction.
func (c *Controller) DeleteAction(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.actions[name]; !ok {
		return fmt.Errorf("faas: delete action %q: %w", name, ErrNoSuchAction)
	}
	delete(c.actions, name)
	delete(c.warm, name)
	return nil
}

// Invoke submits an asynchronous invocation of the named action on behalf
// of the default tenant. The call blocks the caller through the gateway
// admission pipeline (so caller parallelism matters, as it does against
// the real platform), then returns the activation ID while the function
// runs in the background. It returns ErrThrottled when the
// concurrent-invocation limit is reached.
func (c *Controller) Invoke(actionName string, params []byte) (string, error) {
	return c.InvokeTenant("", actionName, params)
}

// InvokeTenant is Invoke on behalf of a named tenant (empty resolves to
// DefaultTenant). With an admission layer configured the tenant selects
// the token bucket, queue and DWRR share the invocation is admitted
// under; rejections become ErrQuotaExceeded (over rate quota) or ErrShed
// (queue full / admission deadline exceeded) instead of a blind
// ErrThrottled. Without one the tenant is only recorded on the
// activation, for billing rollups.
func (c *Controller) InvokeTenant(tenant, actionName string, params []byte) (string, error) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	c.mu.Lock()
	act, ok := c.actions[actionName]
	if !ok {
		c.mu.Unlock()
		return "", fmt.Errorf("faas: invoke %q: %w", actionName, ErrNoSuchAction)
	}
	// Reserve a slot in the serialized admission pipeline.
	now := c.cfg.Clock.Now()
	slot := c.gatewayFree
	if slot.Before(now) {
		slot = now
	}
	done := slot.Add(c.cfg.AdmitOverhead)
	c.gatewayFree = done
	c.mu.Unlock()

	// Wait out our turn in the pipeline on the caller's task.
	c.cfg.Clock.Sleep(done.Sub(now))

	if c.cfg.Outage != nil && c.cfg.Outage() {
		c.cfg.Trace.Emitf(c.cfg.Clock.Now(), trace.KindThrottle, actionName,
			"tenant=%s queued=%d reason=global: controller outage window", tenant, c.QueueDepth(tenant))
		return "", fmt.Errorf("faas: invoke %q: controller outage: %w", actionName, ErrThrottled)
	}

	if c.adm != nil {
		return c.admitTenant(tenant, act, params)
	}

	c.mu.Lock()
	if c.cfg.MaxConcurrent >= 0 && c.inflight >= c.cfg.MaxConcurrent {
		limit := c.cfg.MaxConcurrent
		c.mu.Unlock()
		c.cfg.Trace.Emitf(c.cfg.Clock.Now(), trace.KindThrottle, actionName,
			"tenant=%s queued=0 reason=global: inflight at limit %d", tenant, limit)
		return "", fmt.Errorf("faas: invoke %q: %w", actionName, ErrThrottled)
	}
	id := c.startActivationLocked(tenant, act, params)
	c.mu.Unlock()
	return id, nil
}

// startActivationLocked claims a concurrency slot, records the activation
// and starts its execution task. Called with c.mu held by both admission
// paths (the legacy gate and the tenant dispatcher).
func (c *Controller) startActivationLocked(tenant string, act *action, params []byte) string {
	c.inflight++
	c.nextActID++
	id := "act-" + strconv.FormatUint(c.nextActID, 10)
	rec := &Activation{ID: id, Action: act.spec.Name, Tenant: tenant, SubmitAt: c.cfg.Clock.Now(), MemoryMB: act.spec.MemoryMB}
	c.activations[id] = rec
	c.order = append(c.order, id)
	c.cfg.Trace.Emit(rec.SubmitAt, trace.KindInvoke, id, act.spec.Name)
	c.cfg.Clock.Go(func() { c.execute(act, rec, params) })
	return id
}

// execute provisions a container and runs the handler, recording the
// activation outcome.
func (c *Controller) execute(act *action, rec *Activation, params []byte) {
	cold, setup := c.provision(act)
	// Emitf boxes its variadic args at the call site even when the recorder
	// is nil, so the per-activation sites guard explicitly to keep the
	// untraced hot path allocation-free.
	if cold {
		if c.cfg.Trace != nil {
			c.cfg.Trace.Emitf(c.cfg.Clock.Now(), trace.KindColdStart, rec.ID, "setup %v", setup)
		}
	} else {
		c.cfg.Trace.Emit(c.cfg.Clock.Now(), trace.KindWarmStart, rec.ID, act.spec.Name)
	}
	c.cfg.Clock.Sleep(setup)

	start := c.cfg.Clock.Now()
	c.mu.Lock()
	rec.StartAt = start
	rec.ColdStart = cold
	crash := c.cfg.CrashProb > 0 && c.rng.Float64() < c.cfg.CrashProb
	var jitter time.Duration
	if c.cfg.ExecJitter != nil {
		jitter = c.cfg.ExecJitter.Sample(c.rng)
	}
	c.mu.Unlock()
	if c.cfg.SlowFactor != nil {
		if f := c.cfg.SlowFactor(); f > 1 {
			jitter = time.Duration(float64(jitter) * f)
		}
	}

	c.cfg.Trace.Emit(start, trace.KindActStart, rec.ID, act.spec.Name)
	ctx := runtime.NewCtx(c.buildCtxConfig(act, rec, cold, start))

	var (
		result []byte
		err    error
	)
	if crash {
		// A crash manifests partway through execution.
		c.cfg.Clock.Sleep(act.spec.Timeout / 10)
		err = ErrCrashed
	} else {
		// Platform noise (scheduling delays, noisy neighbours) lands
		// before user code so it delays everything the function produces
		// — including the status object clients poll for. This is what
		// makes stragglers visible end to end (paper Fig. 3).
		c.cfg.Clock.Sleep(jitter)
		result, err = act.spec.Handler(ctx, params)
	}

	end := c.cfg.Clock.Now()
	if crash {
		c.cfg.Trace.Emit(end, trace.KindCrash, rec.ID, act.spec.Name)
	}
	outcome := "ok"
	if err != nil {
		outcome = "error: " + err.Error()
	}
	if c.cfg.Trace != nil {
		c.cfg.Trace.Emitf(end, trace.KindActEnd, rec.ID, "%s %s after %v", act.spec.Name, outcome, end.Sub(start))
	}
	c.mu.Lock()
	rec.EndAt = end
	if err != nil {
		rec.OK = false
		rec.Error = err.Error()
	} else {
		rec.OK = true
		rec.Result = result
	}
	c.inflight--
	if rec.OK {
		c.completedOK[rec.Tenant]++
	}
	c.retireLocked(rec.ID)
	linger, lingering := c.lingers[rec.ID]
	if lingering {
		delete(c.lingers, rec.ID)
		rec.LingerUntil = linger
	}
	if !crash {
		wc := warmContainer{idleSince: end}
		if lingering && linger.After(end) {
			// The container stays resident serving exchange peer pulls
			// until the linger deadline: it joins the warm pool like any
			// other (reuse does not disturb its staged outputs) but is
			// pinned against KeepAlive eviction until the window closes.
			wc.residentUntil = linger
		}
		c.warm[act.spec.Name] = append(c.warm[act.spec.Name], wc)
	}
	// The freed slot goes to the fairest queued invocation, if any.
	c.dispatchLocked()
	c.mu.Unlock()
}

// LingerActivation asks the platform to keep the activation's container
// resident until the given instant after it completes, so it can serve
// direct-exchange partition pulls from reducers. The container still joins
// the warm pool at completion — reuse does not disturb its staged outputs —
// but it is pinned against idle eviction until the window closes. Later
// deadlines extend earlier ones; requests for unknown activations are
// dropped at completion time.
func (c *Controller) LingerActivation(id string, until time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if until.After(c.lingers[id]) {
		c.lingers[id] = until
	}
}

// retireLocked ages out completed activation records once more than
// Config.RetainActivations of them exist. Eviction is oldest-completed
// first; the order slice is compacted lazily when evictions leave it more
// than half dead, keeping both bookkeeping structures O(retained) instead
// of O(all-time).
func (c *Controller) retireLocked(id string) {
	limit := c.cfg.RetainActivations
	if limit <= 0 {
		return
	}
	c.completed = append(c.completed, id)
	for len(c.completed)-c.completedHead > limit {
		old := c.completed[c.completedHead]
		c.completed[c.completedHead] = ""
		c.completedHead++
		delete(c.activations, old)
	}
	if c.completedHead > len(c.completed)/2 {
		c.completed = append(c.completed[:0:0], c.completed[c.completedHead:]...)
		c.completedHead = 0
	}
	if len(c.order) > 2*(len(c.activations)+1) {
		kept := c.order[:0]
		for _, oid := range c.order {
			if _, ok := c.activations[oid]; ok {
				kept = append(kept, oid)
			}
		}
		clear(c.order[len(kept):])
		c.order = kept
	}
}

// CompletedByTenant reports, per tenant, how many activations have finished
// successfully since the controller started. Unlike the activation records
// themselves these counters survive RetainActivations eviction, so load
// generators can account outcomes without retaining a million records.
func (c *Controller) CompletedByTenant() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.completedOK))
	for tenant, n := range c.completedOK {
		out[tenant] = n
	}
	return out
}

func (c *Controller) buildCtxConfig(act *action, rec *Activation, cold bool, start time.Time) runtime.CtxConfig {
	cfg := runtime.CtxConfig{
		Clock:        c.cfg.Clock,
		Storage:      c.cfg.Storage,
		Image:        act.img,
		ActivationID: rec.ID,
		Deadline:     start.Add(act.spec.Timeout),
		ColdStart:    cold,
		MemoryMB:     act.spec.MemoryMB,
	}
	c.mu.Lock()
	factory := c.spawnerFor
	c.mu.Unlock()
	if factory != nil {
		ctx := runtime.NewCtx(cfg)
		cfg.Spawner = factory(ctx)
	}
	return cfg
}

// provision finds a warm container for the action or models a cold start.
// It returns whether the start was cold and the setup duration to charge.
func (c *Controller) provision(act *action) (cold bool, setup time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock.Now()

	// Evict expired warm containers lazily. idleSince is nondecreasing —
	// containers are appended at completion under c.mu, and simulated time
	// cannot advance while the completing task is runnable — so the expired
	// containers form a prefix of the pool. Trimming that prefix and reusing
	// from the back (most recently idle first) is amortized O(1) per
	// provision, where the old full-pool scan went quadratic once KeepAlive
	// let hundreds of thousands of containers accumulate.
	pool := c.warm[act.spec.Name]
	trimmed := 0
	for trimmed < len(pool) && now.Sub(pool[trimmed].idleSince) > c.cfg.KeepAlive {
		if pool[trimmed].residentUntil.After(now) {
			// A lingering direct-exchange producer pins itself (and,
			// conservatively, everything behind it) until its window
			// closes; the prefix resumes trimming afterwards.
			break
		}
		trimmed++
	}
	pool = pool[trimmed:]
	if len(pool) > 0 {
		c.warm[act.spec.Name] = pool[:len(pool)-1]
		return false, c.cfg.WarmStart
	}
	if trimmed > 0 {
		// Drop the drained backing array so it does not pin memory.
		c.warm[act.spec.Name] = nil
	}

	setup = c.cfg.ColdStartBoot
	if !c.pulled[act.img.Name()] {
		c.pulled[act.img.Name()] = true
		pull := time.Duration(float64(act.img.SizeMB()) / c.cfg.PullBandwidthMBps * float64(time.Second))
		setup += pull
		c.cfg.Trace.Emitf(now, trace.KindImagePull, act.img.Name(), "%d MB in %v", act.img.SizeMB(), pull)
	}
	// Cold starts are noisy; add up to 20% deterministic-seeded jitter.
	setup += time.Duration(c.rng.Int63n(int64(setup)/5 + 1))
	return true, setup
}

// Activation returns a snapshot of the activation record for id.
func (c *Controller) Activation(id string) (Activation, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.activations[id]
	if !ok {
		return Activation{}, fmt.Errorf("faas: activation %q: %w", id, ErrNoActivation)
	}
	return *rec, nil
}

// Activations returns snapshots of all activations in submit order.
func (c *Controller) Activations() []Activation {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Activation, 0, len(c.order))
	for _, id := range c.order {
		// Records aged out by RetainActivations leave gaps in the submit
		// order until the next compaction.
		if rec, ok := c.activations[id]; ok {
			out = append(out, *rec)
		}
	}
	return out
}

// InFlight returns the number of currently running activations.
func (c *Controller) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight
}

// Actions lists registered action names, sorted.
func (c *Controller) Actions() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.actions))
	for n := range c.actions {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WarmContainers reports the current number of idle warm containers for an
// action (for tests and ablation benchmarks).
func (c *Controller) WarmContainers(actionName string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.warm[actionName])
}
