package faas

import (
	"fmt"
	"sort"
	"time"

	"gowren/internal/trace"
	"gowren/internal/vclock"
)

// DefaultTenant is the tenant invocations without an explicit tenant are
// attributed to. A platform that never configures Admission still records
// it on activations, so per-tenant billing rollups work unconditionally.
const DefaultTenant = "default"

// Admission-layer defaults.
const (
	// DefaultAdmissionQueueLimit bounds each tenant's admission queue.
	DefaultAdmissionQueueLimit = 256
	// DefaultMaxQueueDelay is how long an invocation may sit in admission
	// (token-bucket wait plus queueing) before it is shed.
	DefaultMaxQueueDelay = 2 * time.Second
	// admissionPollInterval is the granularity at which a queued caller
	// observes its dispatch decision on the virtual clock.
	admissionPollInterval = 5 * time.Millisecond
)

// TenantQuota is one tenant's admission contract.
type TenantQuota struct {
	// Rate is the sustained admission rate in invocations per second,
	// enforced by a per-tenant token bucket. Zero or negative means no
	// rate limit for the tenant.
	Rate float64
	// Burst is the bucket capacity: how many invocations the tenant may
	// fire back-to-back before the sustained rate applies. Zero or
	// negative selects max(Rate, 1).
	Burst float64
	// Weight is the tenant's share in the deficit-weighted round-robin
	// over queued invocations. Zero or negative selects 1.
	Weight int
}

func (q TenantQuota) burst() float64 {
	if q.Burst > 0 {
		return q.Burst
	}
	if q.Rate > 1 {
		return q.Rate
	}
	return 1
}

func (q TenantQuota) weight() float64 {
	if q.Weight > 0 {
		return float64(q.Weight)
	}
	return 1
}

// AdmissionConfig turns the controller's global 429 gate into a
// tenant-aware admission layer: per-tenant token buckets (sustained rate +
// burst) feed a deficit-weighted round-robin over bounded per-tenant
// queues, and overload degrades to bounded queueing, then deadline-based
// shedding — never unbounded memory or silent starvation.
type AdmissionConfig struct {
	// Default is the quota applied to tenants not listed in Tenants —
	// including DefaultTenant. The zero value means no rate limit and
	// weight 1.
	Default TenantQuota
	// Tenants overrides the quota per tenant name.
	Tenants map[string]TenantQuota
	// QueueLimit bounds each tenant's admission queue; an invocation
	// arriving at a full queue is rejected with ErrShed. Zero selects
	// DefaultAdmissionQueueLimit. Negative disables queueing entirely:
	// an invocation that cannot start immediately is rejected with
	// ErrThrottled, exactly like the global gate.
	QueueLimit int
	// MaxQueueDelay is the admission deadline: the token-bucket wait plus
	// queue time an invocation tolerates before it is shed with ErrShed.
	// Zero selects DefaultMaxQueueDelay.
	MaxQueueDelay time.Duration
	// PollWaiters makes queued callers observe their dispatch decision by
	// polling the virtual clock every admissionPollInterval — the
	// pre-event-primitive behavior, kept as an A/B baseline for
	// cmd/simbench. The default (false) parks each waiter on an
	// event-driven vclock signal the dispatcher fires on state flips, so a
	// queued invocation costs O(1) scheduler events instead of O(polls).
	PollWaiters bool
}

func (cfg AdmissionConfig) queueLimit() int {
	if cfg.QueueLimit == 0 {
		return DefaultAdmissionQueueLimit
	}
	return cfg.QueueLimit
}

func (cfg AdmissionConfig) maxQueueDelay() time.Duration {
	if cfg.MaxQueueDelay <= 0 {
		return DefaultMaxQueueDelay
	}
	return cfg.MaxQueueDelay
}

func (cfg AdmissionConfig) quotaFor(tenant string) TenantQuota {
	if q, ok := cfg.Tenants[tenant]; ok {
		return q
	}
	return cfg.Default
}

// Waiter dispatch decisions.
const (
	admPending = iota
	admAdmitted
	admShed
)

// admWaiter is one invocation parked in a tenant's admission queue. All
// fields are guarded by Controller.mu; the queued caller parks on evt and
// the dispatcher signals it on every state flip (admitted or shed), so a
// queued invocation costs O(1) scheduler events. With
// AdmissionConfig.PollWaiters the caller instead observes state by polling
// the clock — the pre-event baseline kept for A/B benchmarking.
type admWaiter struct {
	tenant   string
	act      *action
	params   []byte
	deadline time.Time
	state    int
	id       string // activation ID once admitted
	evt      *vclock.Event
}

// wake signals the waiter's event after a state flip. Callers hold
// Controller.mu; the signal itself only touches clock state.
func (w *admWaiter) wake() {
	if w.evt != nil {
		w.evt.Signal()
	}
}

// tenantState is one tenant's token bucket, queue and DWRR credit.
// Guarded by Controller.mu.
type tenantState struct {
	name       string
	quota      TenantQuota
	tokens     float64
	lastRefill time.Time
	queue      []*admWaiter
	deficit    float64
}

// reserve charges the token bucket for one invocation at now. It returns
// the delay the caller must wait for its token to accrue, or ok=false —
// bucket untouched — when that delay would exceed maxWait. Reservations
// may drive the bucket negative, which spaces a burst's overflow at the
// sustained rate, GCRA-style.
func (ts *tenantState) reserve(now time.Time, maxWait time.Duration) (time.Duration, bool) {
	rate := ts.quota.Rate
	if rate <= 0 {
		return 0, true
	}
	ts.tokens += now.Sub(ts.lastRefill).Seconds() * rate
	if burst := ts.quota.burst(); ts.tokens > burst {
		ts.tokens = burst
	}
	ts.lastRefill = now
	if ts.tokens >= 1 {
		ts.tokens--
		return 0, true
	}
	wait := time.Duration((1 - ts.tokens) / rate * float64(time.Second))
	if wait > maxWait {
		return 0, false
	}
	ts.tokens--
	return wait, true
}

// admission is the tenant-aware gate state. Guarded by Controller.mu.
type admission struct {
	cfg     AdmissionConfig
	tenants map[string]*tenantState
	// order is the DWRR ring: tenants with queued invocations, sorted by
	// name so dispatch order is a function of simulation state alone.
	order  []string
	cursor int
	queued int // total queued waiters across tenants
}

func newAdmission(cfg AdmissionConfig) *admission {
	// Copy the per-tenant quota map so later caller mutations cannot race
	// the dispatcher.
	tenants := make(map[string]TenantQuota, len(cfg.Tenants))
	for name, q := range cfg.Tenants {
		tenants[name] = q
	}
	cfg.Tenants = tenants
	return &admission{cfg: cfg, tenants: make(map[string]*tenantState)}
}

// tenant returns (creating on first touch) the named tenant's state.
func (a *admission) tenant(name string, now time.Time) *tenantState {
	ts, ok := a.tenants[name]
	if !ok {
		q := a.cfg.quotaFor(name)
		ts = &tenantState{name: name, quota: q, tokens: q.burst(), lastRefill: now}
		a.tenants[name] = ts
	}
	return ts
}

func (a *admission) enqueue(ts *tenantState, w *admWaiter) {
	if len(ts.queue) == 0 {
		a.insertOrder(ts.name)
	}
	ts.queue = append(ts.queue, w)
	a.queued++
}

// insertOrder adds name to the DWRR ring at its sorted position, keeping
// the cursor on the tenant it pointed at.
func (a *admission) insertOrder(name string) {
	idx := sort.SearchStrings(a.order, name)
	if idx < len(a.order) && a.order[idx] == name {
		return
	}
	a.order = append(a.order, "")
	copy(a.order[idx+1:], a.order[idx:])
	a.order[idx] = name
	if idx < a.cursor {
		a.cursor++
	}
}

// removeOrder drops name from the DWRR ring, keeping the cursor on the
// tenant it pointed at (or its successor).
func (a *admission) removeOrder(name string) {
	idx := sort.SearchStrings(a.order, name)
	if idx >= len(a.order) || a.order[idx] != name {
		return
	}
	a.order = append(a.order[:idx], a.order[idx+1:]...)
	if a.cursor > idx {
		a.cursor--
	}
	if a.cursor >= len(a.order) {
		a.cursor = 0
	}
}

// remove unlinks w from its tenant's queue (used by callers shedding
// themselves past the deadline).
func (a *admission) remove(ts *tenantState, w *admWaiter) {
	for i, q := range ts.queue {
		if q == w {
			ts.queue = append(ts.queue[:i], ts.queue[i+1:]...)
			a.queued--
			break
		}
	}
	if len(ts.queue) == 0 {
		ts.deficit = 0
		a.removeOrder(ts.name)
	}
}

// hasSlotLocked reports whether the global concurrency limit leaves room
// for one more activation.
func (c *Controller) hasSlotLocked() bool {
	return c.cfg.MaxConcurrent < 0 || c.inflight < c.cfg.MaxConcurrent
}

// admitTenant is the tenant-aware admission path: token-bucket rate gate,
// then the concurrency gate with bounded per-tenant queueing and
// deadline-based shedding. Called after the gateway pipeline and outage
// checks, which are shared with the legacy path.
func (c *Controller) admitTenant(tenant string, act *action, params []byte) (string, error) {
	a := c.adm
	arrival := c.cfg.Clock.Now()
	deadline := arrival.Add(a.cfg.maxQueueDelay())

	// Rate gate: charge the tenant's bucket; a conforming invocation may
	// first owe a wait that spaces its burst overflow at the sustained
	// rate. A wait that would blow the admission deadline is a quota
	// rejection — the bucket is not charged.
	c.mu.Lock()
	ts := a.tenant(tenant, arrival)
	wait, ok := ts.reserve(arrival, deadline.Sub(arrival))
	if !ok {
		depth := len(ts.queue)
		c.mu.Unlock()
		c.cfg.Trace.Emitf(arrival, trace.KindThrottle, act.spec.Name,
			"tenant=%s queued=%d reason=quota: rate %g/s burst %g exceeded", tenant, depth, ts.quota.Rate, ts.quota.burst())
		return "", fmt.Errorf("faas: invoke %q: tenant %q over quota: %w", act.spec.Name, tenant, ErrQuotaExceeded)
	}
	c.mu.Unlock()
	if wait > 0 {
		c.cfg.Clock.Sleep(wait)
	}

	// Concurrency gate: start immediately when a slot is free and nobody
	// is queued ahead; otherwise queue (bounded) or reject.
	c.mu.Lock()
	if a.queued == 0 && c.hasSlotLocked() {
		id := c.startActivationLocked(tenant, act, params)
		c.mu.Unlock()
		return id, nil
	}
	if a.cfg.QueueLimit < 0 {
		// Queueing disabled: reduce exactly to the global gate's
		// immediate 429.
		limit := c.cfg.MaxConcurrent
		c.mu.Unlock()
		c.cfg.Trace.Emitf(c.cfg.Clock.Now(), trace.KindThrottle, act.spec.Name,
			"tenant=%s queued=0 reason=global: inflight at limit %d", tenant, limit)
		return "", fmt.Errorf("faas: invoke %q: %w", act.spec.Name, ErrThrottled)
	}
	if len(ts.queue) >= a.cfg.queueLimit() {
		depth := len(ts.queue)
		c.mu.Unlock()
		c.cfg.Trace.Emitf(c.cfg.Clock.Now(), trace.KindThrottle, act.spec.Name,
			"tenant=%s queued=%d reason=shed: admission queue full", tenant, depth)
		return "", fmt.Errorf("faas: invoke %q: tenant %q admission queue full: %w", act.spec.Name, tenant, ErrShed)
	}
	w := &admWaiter{tenant: tenant, act: act, params: params, deadline: deadline}
	if !a.cfg.PollWaiters {
		w.evt = vclock.NewEvent(c.cfg.Clock)
	}
	a.enqueue(ts, w)
	// A slot may have freed since the fast-path check; drain opportunistically.
	c.dispatchLocked()
	state, id := w.state, w.id
	c.mu.Unlock()

	if state == admPending {
		pending := func() bool {
			c.mu.Lock()
			defer c.mu.Unlock()
			return w.state != admPending
		}
		if w.evt != nil {
			w.evt.WaitFor(pending, deadline)
		} else {
			vclock.Poll(c.cfg.Clock, pending, admissionPollInterval, deadline)
		}
		c.mu.Lock()
		if w.state == admPending {
			// Deadline passed while queued: shed ourselves.
			a.remove(ts, w)
			w.state = admShed
			depth := len(ts.queue)
			now := c.cfg.Clock.Now()
			c.mu.Unlock()
			c.cfg.Trace.Emitf(now, trace.KindShed, act.spec.Name,
				"tenant=%s queued=%d reason=shed: %v admission deadline exceeded", tenant, depth, a.cfg.maxQueueDelay())
			return "", fmt.Errorf("faas: invoke %q: tenant %q shed after %v queued: %w",
				act.spec.Name, tenant, a.cfg.maxQueueDelay(), ErrShed)
		}
		state, id = w.state, w.id
		c.mu.Unlock()
	}
	if state == admShed {
		// Shed by the dispatcher's expiry sweep (already traced there).
		return "", fmt.Errorf("faas: invoke %q: tenant %q shed after %v queued: %w",
			act.spec.Name, tenant, a.cfg.maxQueueDelay(), ErrShed)
	}
	return id, nil
}

// dispatchLocked fills free concurrency slots from the admission queues in
// deficit-weighted round-robin order. Called with c.mu held, whenever a
// slot frees (activation completion) or a waiter joins.
func (c *Controller) dispatchLocked() {
	a := c.adm
	if a == nil {
		return
	}
	now := c.cfg.Clock.Now()
	for a.queued > 0 && c.hasSlotLocked() {
		w := c.nextWaiterLocked(now)
		if w == nil {
			return
		}
		w.state = admAdmitted
		w.id = c.startActivationLocked(w.tenant, w.act, w.params)
		w.wake()
	}
}

// nextWaiterLocked picks the next invocation to admit: expired waiters are
// shed, then the DWRR ring is scanned from the cursor; a tenant with
// deficit credit pays one unit per dispatch, and a full pass without a
// dispatch replenishes every queued tenant by its weight.
func (c *Controller) nextWaiterLocked(now time.Time) *admWaiter {
	a := c.adm
	c.shedExpiredLocked(now)
	for a.queued > 0 && len(a.order) > 0 {
		n := len(a.order)
		for i := 0; i < n; i++ {
			idx := (a.cursor + i) % n
			ts := a.tenants[a.order[idx]]
			if ts.deficit < 1 {
				continue
			}
			ts.deficit--
			w := ts.queue[0]
			ts.queue = ts.queue[1:]
			a.queued--
			a.cursor = idx
			if len(ts.queue) == 0 {
				ts.deficit = 0
				a.removeOrder(ts.name)
			}
			return w
		}
		for _, name := range a.order {
			ts := a.tenants[name]
			ts.deficit += ts.quota.weight()
		}
	}
	return nil
}

// shedExpiredLocked drops every queued waiter past its admission deadline,
// so the dispatcher never admits an invocation its caller has given up on.
func (c *Controller) shedExpiredLocked(now time.Time) {
	a := c.adm
	names := append([]string(nil), a.order...)
	for _, name := range names {
		ts := a.tenants[name]
		kept := ts.queue[:0]
		for _, w := range ts.queue {
			if now.After(w.deadline) {
				w.state = admShed
				w.wake()
				a.queued--
				c.cfg.Trace.Emitf(now, trace.KindShed, w.act.spec.Name,
					"tenant=%s queued=%d reason=shed: queued past admission deadline", name, len(kept))
				continue
			}
			kept = append(kept, w)
		}
		ts.queue = kept
		if len(ts.queue) == 0 {
			ts.deficit = 0
			a.removeOrder(name)
		}
	}
}

// QueueDepth reports how many invocations the named tenant has parked in
// admission. Zero without an admission layer.
func (c *Controller) QueueDepth(tenant string) int {
	if tenant == "" {
		tenant = DefaultTenant
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.adm == nil {
		return 0
	}
	ts, ok := c.adm.tenants[tenant]
	if !ok {
		return 0
	}
	return len(ts.queue)
}

// AdmissionQueued reports the total number of queued invocations across
// tenants. Zero without an admission layer.
func (c *Controller) AdmissionQueued() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.adm == nil {
		return 0
	}
	return c.adm.queued
}
