package faas

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"gowren/internal/cos"
	"gowren/internal/netsim"
	"gowren/internal/runtime"
	"gowren/internal/vclock"
	"gowren/internal/wire"
)

// testEnv wires a controller over a fresh registry/store/virtual clock.
type testEnv struct {
	clk   *vclock.Virtual
	reg   *runtime.Registry
	store *cos.Store
	ctrl  *Controller
}

func newEnv(t *testing.T, mutate func(*Config)) *testEnv {
	t.Helper()
	clk := vclock.NewVirtual()
	reg := runtime.NewRegistry()
	img := runtime.NewImage(runtime.DefaultImage, 100)
	if err := reg.Publish(img); err != nil {
		t.Fatal(err)
	}
	store := cos.NewStore()
	cfg := Config{Clock: clk, Registry: reg, Storage: store}
	if mutate != nil {
		mutate(&cfg)
	}
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{clk: clk, reg: reg, store: store, ctrl: ctrl}
}

// sleepAction registers an action whose handler charges d of compute.
func (e *testEnv) sleepAction(t *testing.T, name string, d time.Duration) {
	t.Helper()
	err := e.ctrl.CreateAction(ActionSpec{
		Name:  name,
		Image: runtime.DefaultImage,
		Handler: func(ctx *runtime.Ctx, params []byte) ([]byte, error) {
			if err := ctx.ChargeCompute(d); err != nil {
				return nil, err
			}
			return []byte(`"done"`), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	clk := vclock.NewVirtual()
	reg := runtime.NewRegistry()
	store := cos.NewStore()
	cases := []Config{
		{Registry: reg, Storage: store},
		{Clock: clk, Storage: store},
		{Clock: clk, Registry: reg},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: config accepted without required field", i)
		}
	}
}

func TestCreateActionValidation(t *testing.T) {
	e := newEnv(t, nil)
	h := func(*runtime.Ctx, []byte) ([]byte, error) { return nil, nil }
	if err := e.ctrl.CreateAction(ActionSpec{Image: runtime.DefaultImage, Handler: h}); err == nil {
		t.Fatal("nameless action accepted")
	}
	if err := e.ctrl.CreateAction(ActionSpec{Name: "a", Image: runtime.DefaultImage}); err == nil {
		t.Fatal("handlerless action accepted")
	}
	if err := e.ctrl.CreateAction(ActionSpec{Name: "a", Image: "ghost:1", Handler: h}); !errors.Is(err, runtime.ErrImageNotFound) {
		t.Fatalf("unknown image err = %v", err)
	}
	if err := e.ctrl.CreateAction(ActionSpec{Name: "a", Image: runtime.DefaultImage, Handler: h, MemoryMB: MaxMemoryMB + 1}); !errors.Is(err, ErrMemoryLimit) {
		t.Fatalf("memory err = %v", err)
	}
	if err := e.ctrl.CreateAction(ActionSpec{Name: "a", Image: runtime.DefaultImage, Handler: h}); err != nil {
		t.Fatal(err)
	}
	if err := e.ctrl.CreateAction(ActionSpec{Name: "a", Image: runtime.DefaultImage, Handler: h}); !errors.Is(err, ErrActionExists) {
		t.Fatalf("duplicate err = %v", err)
	}
	if got := e.ctrl.Actions(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Actions() = %v", got)
	}
}

func TestInvokeRunsHandlerAndRecords(t *testing.T) {
	e := newEnv(t, nil)
	e.sleepAction(t, "work", 50*time.Second)
	var id string
	e.clk.Run(func() {
		var err error
		id, err = e.ctrl.Invoke("work", nil)
		if err != nil {
			t.Error(err)
		}
	})
	rec, err := e.ctrl.Activation(id)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Done() || !rec.OK {
		t.Fatalf("activation not finished ok: %+v", rec)
	}
	if string(rec.Result) != `"done"` {
		t.Fatalf("result = %q", rec.Result)
	}
	if !rec.ColdStart {
		t.Fatal("first activation must be a cold start")
	}
	if run := rec.EndAt.Sub(rec.StartAt); run != 50*time.Second {
		t.Fatalf("handler span = %v, want 50s", run)
	}
	if rec.StartAt.Before(rec.SubmitAt) {
		t.Fatal("start before submit")
	}
}

func TestInvokeUnknownAction(t *testing.T) {
	e := newEnv(t, nil)
	e.clk.Run(func() {
		if _, err := e.ctrl.Invoke("ghost", nil); !errors.Is(err, ErrNoSuchAction) {
			t.Errorf("err = %v, want ErrNoSuchAction", err)
		}
	})
}

func TestActivationUnknownID(t *testing.T) {
	e := newEnv(t, nil)
	if _, err := e.ctrl.Activation("act-404"); !errors.Is(err, ErrNoActivation) {
		t.Fatalf("err = %v", err)
	}
}

func TestWarmReuse(t *testing.T) {
	e := newEnv(t, nil)
	e.sleepAction(t, "work", time.Second)
	e.clk.Run(func() {
		id1, err := e.ctrl.Invoke("work", nil)
		if err != nil {
			t.Error(err)
			return
		}
		// Wait for completion, then invoke again: the container is warm.
		vclock.Poll(e.clk, func() bool {
			rec, err := e.ctrl.Activation(id1)
			return err == nil && rec.Done()
		}, 10*time.Millisecond, time.Time{})
		id2, err := e.ctrl.Invoke("work", nil)
		if err != nil {
			t.Error(err)
			return
		}
		vclock.Poll(e.clk, func() bool {
			rec, err := e.ctrl.Activation(id2)
			return err == nil && rec.Done()
		}, 10*time.Millisecond, time.Time{})
		rec1, _ := e.ctrl.Activation(id1)
		rec2, _ := e.ctrl.Activation(id2)
		if !rec1.ColdStart {
			t.Error("first start should be cold")
		}
		if rec2.ColdStart {
			t.Error("second start should be warm")
		}
		cold := rec1.StartAt.Sub(rec1.SubmitAt)
		warmD := rec2.StartAt.Sub(rec2.SubmitAt)
		if warmD >= cold {
			t.Errorf("warm start (%v) not faster than cold (%v)", warmD, cold)
		}
	})
}

func TestKeepAliveExpiry(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.KeepAlive = 30 * time.Second })
	e.sleepAction(t, "work", time.Second)
	e.clk.Run(func() {
		id1, err := e.ctrl.Invoke("work", nil)
		if err != nil {
			t.Error(err)
			return
		}
		vclock.Poll(e.clk, func() bool {
			rec, _ := e.ctrl.Activation(id1)
			return rec.Done()
		}, 10*time.Millisecond, time.Time{})
		if e.ctrl.WarmContainers("work") != 1 {
			t.Error("container not kept warm after completion")
		}
		e.clk.Sleep(time.Minute) // outlive the keep-alive
		id2, err := e.ctrl.Invoke("work", nil)
		if err != nil {
			t.Error(err)
			return
		}
		vclock.Poll(e.clk, func() bool {
			rec, _ := e.ctrl.Activation(id2)
			return rec.Done()
		}, 10*time.Millisecond, time.Time{})
		rec2, _ := e.ctrl.Activation(id2)
		if !rec2.ColdStart {
			t.Error("expired container should force a cold start")
		}
	})
}

func TestFirstColdStartPaysImagePull(t *testing.T) {
	e := newEnv(t, func(c *Config) {
		c.PullBandwidthMBps = 100 // 100 MB image → 1s pull
		c.Seed = 3
	})
	e.sleepAction(t, "a", time.Second)
	e.sleepAction(t, "b", time.Second)
	e.clk.Run(func() {
		idA, err := e.ctrl.Invoke("a", nil)
		if err != nil {
			t.Error(err)
			return
		}
		vclock.Poll(e.clk, func() bool {
			rec, _ := e.ctrl.Activation(idA)
			return rec.Done()
		}, 10*time.Millisecond, time.Time{})
		// Action b uses the same image: its cold start must skip the pull.
		idB, err := e.ctrl.Invoke("b", nil)
		if err != nil {
			t.Error(err)
			return
		}
		vclock.Poll(e.clk, func() bool {
			rec, _ := e.ctrl.Activation(idB)
			return rec.Done()
		}, 10*time.Millisecond, time.Time{})
		recA, _ := e.ctrl.Activation(idA)
		recB, _ := e.ctrl.Activation(idB)
		if !recA.ColdStart || !recB.ColdStart {
			t.Error("both starts should be cold (different actions)")
		}
		setupA := recA.StartAt.Sub(recA.SubmitAt)
		setupB := recB.StartAt.Sub(recB.SubmitAt)
		if setupA < setupB+500*time.Millisecond {
			t.Errorf("first cold start %v should exceed cached cold start %v by the ~1s pull", setupA, setupB)
		}
	})
}

func TestThrottlingAt429(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.MaxConcurrent = 5 })
	e.sleepAction(t, "work", time.Hour)
	var throttled int
	var mu sync.Mutex
	e.clk.Run(func() {
		for i := 0; i < 8; i++ {
			e.clk.Go(func() {
				_, err := e.ctrl.Invoke("work", nil)
				if errors.Is(err, ErrThrottled) {
					mu.Lock()
					throttled++
					mu.Unlock()
				} else if err != nil {
					t.Error(err)
				}
			})
		}
		// Give invocations time to be admitted; the workers run 1h so
		// nothing completes meanwhile.
		e.clk.Sleep(10 * time.Second)
		if got := e.ctrl.InFlight(); got != 5 {
			t.Errorf("inflight = %d, want 5", got)
		}
	})
	if throttled != 3 {
		t.Fatalf("throttled = %d, want 3", throttled)
	}
}

func TestUnlimitedConcurrency(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.MaxConcurrent = -1 })
	e.sleepAction(t, "work", time.Minute)
	var errs int
	var mu sync.Mutex
	e.clk.Run(func() {
		for i := 0; i < 2000; i++ {
			e.clk.Go(func() {
				if _, err := e.ctrl.Invoke("work", nil); err != nil {
					mu.Lock()
					errs++
					mu.Unlock()
				}
			})
		}
	})
	if errs != 0 {
		t.Fatalf("%d invocations failed under unlimited concurrency", errs)
	}
	if got := len(e.ctrl.Activations()); got != 2000 {
		t.Fatalf("activations = %d, want 2000", got)
	}
}

func TestAdmissionPipelineSerializesInvocations(t *testing.T) {
	const overhead = 10 * time.Millisecond
	e := newEnv(t, func(c *Config) { c.AdmitOverhead = overhead })
	e.sleepAction(t, "work", time.Second)
	start := e.clk.Now()
	const n = 100
	e.clk.Run(func() {
		for i := 0; i < n; i++ {
			e.clk.Go(func() {
				if _, err := e.ctrl.Invoke("work", nil); err != nil {
					t.Error(err)
				}
			})
		}
	})
	// All n requests arrive simultaneously; the pipeline alone needs
	// n*overhead before the last is admitted.
	elapsed := e.clk.Now().Sub(start)
	if elapsed < time.Duration(n)*overhead {
		t.Fatalf("elapsed %v < pipeline floor %v", elapsed, time.Duration(n)*overhead)
	}
}

func TestHandlerTimeoutEnforced(t *testing.T) {
	e := newEnv(t, nil)
	err := e.ctrl.CreateAction(ActionSpec{
		Name:    "slow",
		Image:   runtime.DefaultImage,
		Timeout: 30 * time.Second,
		Handler: func(ctx *runtime.Ctx, _ []byte) ([]byte, error) {
			if err := ctx.ChargeCompute(10 * time.Minute); err != nil {
				return nil, err
			}
			return []byte("unreachable"), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var id string
	e.clk.Run(func() {
		id, err = e.ctrl.Invoke("slow", nil)
		if err != nil {
			t.Error(err)
		}
	})
	rec, err := e.ctrl.Activation(id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.OK {
		t.Fatal("over-deadline activation reported OK")
	}
	if !strings.Contains(rec.Error, "deadline") {
		t.Fatalf("error = %q, want deadline", rec.Error)
	}
	if run := rec.EndAt.Sub(rec.StartAt); run != 30*time.Second {
		t.Fatalf("killed after %v, want 30s", run)
	}
}

func TestTimeoutClampedToPlatformMax(t *testing.T) {
	e := newEnv(t, nil)
	err := e.ctrl.CreateAction(ActionSpec{
		Name:    "verylong",
		Image:   runtime.DefaultImage,
		Timeout: 2 * time.Hour,
		Handler: func(ctx *runtime.Ctx, _ []byte) ([]byte, error) {
			return nil, ctx.ChargeCompute(time.Hour)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var id string
	e.clk.Run(func() {
		id, _ = e.ctrl.Invoke("verylong", nil)
	})
	rec, _ := e.ctrl.Activation(id)
	if rec.OK {
		t.Fatal("activation beyond the 600s platform limit reported OK")
	}
	if run := rec.EndAt.Sub(rec.StartAt); run != DefaultTimeout {
		t.Fatalf("killed after %v, want %v", run, DefaultTimeout)
	}
}

func TestCrashInjection(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.CrashProb = 1.0 })
	e.sleepAction(t, "doomed", time.Second)
	var id string
	e.clk.Run(func() {
		id, _ = e.ctrl.Invoke("doomed", nil)
	})
	rec, _ := e.ctrl.Activation(id)
	if rec.OK || !strings.Contains(rec.Error, "crashed") {
		t.Fatalf("activation = %+v, want crash", rec)
	}
	if e.ctrl.WarmContainers("doomed") != 0 {
		t.Fatal("crashed container returned to the warm pool")
	}
}

func TestExecJitterStretchesRuntime(t *testing.T) {
	e := newEnv(t, func(c *Config) {
		c.ExecJitter = netsim.Constant{D: 5 * time.Second}
	})
	e.sleepAction(t, "work", 10*time.Second)
	var id string
	e.clk.Run(func() {
		id, _ = e.ctrl.Invoke("work", nil)
	})
	rec, _ := e.ctrl.Activation(id)
	if run := rec.EndAt.Sub(rec.StartAt); run != 15*time.Second {
		t.Fatalf("runtime with jitter = %v, want 15s", run)
	}
}

func TestSpawnerFactoryWired(t *testing.T) {
	e := newEnv(t, nil)
	e.ctrl.SetSpawnerFactory(func(ctx *runtime.Ctx) runtime.Spawner { return stubSpawner{} })
	err := e.ctrl.CreateAction(ActionSpec{
		Name:  "composer",
		Image: runtime.DefaultImage,
		Handler: func(ctx *runtime.Ctx, _ []byte) ([]byte, error) {
			if _, err := ctx.Spawner(); err != nil {
				return nil, err
			}
			return []byte("ok"), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var id string
	e.clk.Run(func() {
		id, _ = e.ctrl.Invoke("composer", nil)
	})
	rec, _ := e.ctrl.Activation(id)
	if !rec.OK {
		t.Fatalf("handler could not reach spawner: %+v", rec)
	}
}

type stubSpawner struct{}

func (stubSpawner) Spawn(string, []any) (*wire.FuturesRef, error) {
	return &wire.FuturesRef{}, nil
}

func (stubSpawner) Await(*wire.FuturesRef) ([]json.RawMessage, error) {
	return nil, nil
}

func TestConcurrencyTimelineFromActivations(t *testing.T) {
	// Sanity for the metrics pipeline downstream: with 3 concurrent 60s
	// functions, every activation overlaps the others.
	e := newEnv(t, nil)
	e.sleepAction(t, "work", 60*time.Second)
	e.clk.Run(func() {
		for i := 0; i < 3; i++ {
			e.clk.Go(func() {
				if _, err := e.ctrl.Invoke("work", nil); err != nil {
					t.Error(err)
				}
			})
		}
	})
	acts := e.ctrl.Activations()
	if len(acts) != 3 {
		t.Fatalf("activations = %d", len(acts))
	}
	for _, a := range acts {
		for _, b := range acts {
			if a.StartAt.After(b.EndAt) || b.StartAt.After(a.EndAt) {
				t.Fatalf("activations %s and %s do not overlap", a.ID, b.ID)
			}
		}
	}
}

func TestUpdateAction(t *testing.T) {
	e := newEnv(t, nil)
	e.sleepAction(t, "work", time.Second)
	// Warm a container, then update the action: the pool must be dropped
	// and the new handler must serve the next invocation.
	e.clk.Run(func() {
		id, err := e.ctrl.Invoke("work", nil)
		if err != nil {
			t.Error(err)
			return
		}
		vclock.Poll(e.clk, func() bool {
			rec, _ := e.ctrl.Activation(id)
			return rec.Done()
		}, 10*time.Millisecond, time.Time{})
		if e.ctrl.WarmContainers("work") != 1 {
			t.Error("no warm container before update")
		}
		err = e.ctrl.UpdateAction(ActionSpec{
			Name:  "work",
			Image: runtime.DefaultImage,
			Handler: func(*runtime.Ctx, []byte) ([]byte, error) {
				return []byte(`"v2"`), nil
			},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if e.ctrl.WarmContainers("work") != 0 {
			t.Error("warm pool survived the update")
		}
		id2, err := e.ctrl.Invoke("work", nil)
		if err != nil {
			t.Error(err)
			return
		}
		vclock.Poll(e.clk, func() bool {
			rec, _ := e.ctrl.Activation(id2)
			return rec.Done()
		}, 10*time.Millisecond, time.Time{})
		rec, _ := e.ctrl.Activation(id2)
		if string(rec.Result) != `"v2"` {
			t.Errorf("updated action result = %s", rec.Result)
		}
		if !rec.ColdStart {
			t.Error("updated action should cold-start")
		}
	})
}

func TestUpdateActionValidation(t *testing.T) {
	e := newEnv(t, nil)
	h := func(*runtime.Ctx, []byte) ([]byte, error) { return nil, nil }
	if err := e.ctrl.UpdateAction(ActionSpec{Name: "ghost", Image: runtime.DefaultImage, Handler: h}); !errors.Is(err, ErrNoSuchAction) {
		t.Fatalf("update missing err = %v", err)
	}
	if err := e.ctrl.UpdateAction(ActionSpec{Image: runtime.DefaultImage, Handler: h}); err == nil {
		t.Fatal("nameless update accepted")
	}
}

func TestDeleteAction(t *testing.T) {
	e := newEnv(t, nil)
	e.sleepAction(t, "gone", time.Second)
	if err := e.ctrl.DeleteAction("gone"); err != nil {
		t.Fatal(err)
	}
	if err := e.ctrl.DeleteAction("gone"); !errors.Is(err, ErrNoSuchAction) {
		t.Fatalf("double delete err = %v", err)
	}
	e.clk.Run(func() {
		if _, err := e.ctrl.Invoke("gone", nil); !errors.Is(err, ErrNoSuchAction) {
			t.Errorf("invoke deleted err = %v", err)
		}
	})
}

func TestCrashChargesPartialDuration(t *testing.T) {
	// A crashed activation must still be retrievable as a failed record
	// whose duration reflects the partial execution the platform bills:
	// the crash manifests at Timeout/10 into the run.
	e := newEnv(t, func(c *Config) { c.CrashProb = 1.0 })
	err := e.ctrl.CreateAction(ActionSpec{
		Name:    "doomed",
		Image:   runtime.DefaultImage,
		Timeout: 100 * time.Second,
		Handler: func(ctx *runtime.Ctx, params []byte) ([]byte, error) {
			t.Error("handler ran despite guaranteed crash")
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var id string
	e.clk.Run(func() {
		id, err = e.ctrl.Invoke("doomed", nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := e.ctrl.Activation(id)
	if err != nil {
		t.Fatalf("crashed activation not retrievable: %v", err)
	}
	if !rec.Done() || rec.OK {
		t.Fatalf("activation = %+v, want finished with error status", rec)
	}
	if !strings.Contains(rec.Error, "crashed") {
		t.Fatalf("error = %q, want crash", rec.Error)
	}
	if run := rec.EndAt.Sub(rec.StartAt); run != 10*time.Second {
		t.Fatalf("charged duration = %v, want Timeout/10 = 10s", run)
	}
	if rec.MemoryMB != DefaultMemoryMB {
		t.Fatalf("memory = %d, want %d for billing", rec.MemoryMB, DefaultMemoryMB)
	}
}

func TestOutageHookRejectsWith429(t *testing.T) {
	down := true
	e := newEnv(t, func(c *Config) { c.Outage = func() bool { return down } })
	e.sleepAction(t, "work", time.Second)
	e.clk.Run(func() {
		if _, err := e.ctrl.Invoke("work", nil); !errors.Is(err, ErrThrottled) {
			t.Errorf("err = %v, want ErrThrottled during outage", err)
		}
		down = false
		if _, err := e.ctrl.Invoke("work", nil); err != nil {
			t.Errorf("err = %v after outage lifted, want success", err)
		}
	})
}

func TestSlowFactorStretchesJitter(t *testing.T) {
	e := newEnv(t, func(c *Config) {
		c.ExecJitter = netsim.Constant{D: 5 * time.Second}
		c.SlowFactor = func() float64 { return 3 }
	})
	e.sleepAction(t, "work", 10*time.Second)
	var id string
	e.clk.Run(func() {
		id, _ = e.ctrl.Invoke("work", nil)
	})
	rec, _ := e.ctrl.Activation(id)
	if run := rec.EndAt.Sub(rec.StartAt); run != 25*time.Second {
		t.Fatalf("runtime = %v, want 10s work + 3×5s jitter = 25s", run)
	}
}
