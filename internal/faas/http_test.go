package faas

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gowren/internal/cos"
	"gowren/internal/runtime"
	"gowren/internal/vclock"
)

// newHTTPEnv builds a controller on the REAL clock (sockets cannot block on
// virtual time) with one action that sleeps briefly.
func newHTTPEnv(t *testing.T) (*Controller, *httptest.Server) {
	t.Helper()
	clk := vclock.NewReal()
	reg := runtime.NewRegistry()
	if err := reg.Publish(runtime.NewImage(runtime.DefaultImage, 1)); err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(Config{
		Clock:             clk,
		Registry:          reg,
		Storage:           cos.NewStore(),
		AdmitOverhead:     100 * time.Microsecond,
		ColdStartBoot:     time.Millisecond,
		WarmStart:         100 * time.Microsecond,
		PullBandwidthMBps: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = ctrl.CreateAction(ActionSpec{
		Name:  "echo",
		Image: runtime.DefaultImage,
		Handler: func(_ *runtime.Ctx, params []byte) ([]byte, error) {
			return params, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ctrl.Handler())
	t.Cleanup(srv.Close)
	return ctrl, srv
}

func TestHTTPInvokeAndFetchActivation(t *testing.T) {
	ctrl, srv := newHTTPEnv(t)
	resp, err := http.Post(srv.URL+"/api/v1/actions/echo/invoke", "application/json", bytes.NewReader([]byte(`{"x":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	var out struct {
		ActivationID string `json:"activationId"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ActivationID == "" {
		t.Fatal("missing activation id")
	}

	// Poll for completion over HTTP.
	deadline := time.Now().Add(5 * time.Second)
	for {
		recResp, err := http.Get(srv.URL + "/api/v1/activations/" + out.ActivationID)
		if err != nil {
			t.Fatal(err)
		}
		var rec Activation
		if err := json.NewDecoder(recResp.Body).Decode(&rec); err != nil {
			t.Fatal(err)
		}
		recResp.Body.Close()
		if rec.Done() {
			if !rec.OK || string(rec.Result) != `{"x":1}` {
				t.Fatalf("activation = %+v", rec)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("activation never finished")
		}
		time.Sleep(time.Millisecond)
	}
	_ = ctrl
}

func TestHTTPInvokeUnknownAction(t *testing.T) {
	_, srv := newHTTPEnv(t)
	resp, err := http.Post(srv.URL+"/api/v1/actions/ghost/invoke", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestHTTPThrottleIs429(t *testing.T) {
	clk := vclock.NewReal()
	reg := runtime.NewRegistry()
	if err := reg.Publish(runtime.NewImage(runtime.DefaultImage, 1)); err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(Config{
		Clock:             clk,
		Registry:          reg,
		Storage:           cos.NewStore(),
		MaxConcurrent:     1,
		AdmitOverhead:     100 * time.Microsecond,
		ColdStartBoot:     time.Millisecond,
		PullBandwidthMBps: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	err = ctrl.CreateAction(ActionSpec{
		Name:  "slow",
		Image: runtime.DefaultImage,
		Handler: func(_ *runtime.Ctx, _ []byte) ([]byte, error) {
			<-block
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ctrl.Handler())
	defer srv.Close()
	defer close(block)

	first, err := http.Post(srv.URL+"/api/v1/actions/slow/invoke", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	first.Body.Close()
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first invoke status = %d", first.StatusCode)
	}
	second, err := http.Post(srv.URL+"/api/v1/actions/slow/invoke", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	second.Body.Close()
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second invoke status = %d, want 429", second.StatusCode)
	}
}

func TestHTTPListActionsAndActivations(t *testing.T) {
	_, srv := newHTTPEnv(t)
	resp, err := http.Get(srv.URL + "/api/v1/actions")
	if err != nil {
		t.Fatal(err)
	}
	var actions []string
	if err := json.NewDecoder(resp.Body).Decode(&actions); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(actions) != 1 || actions[0] != "echo" {
		t.Fatalf("actions = %v", actions)
	}

	for i := 0; i < 3; i++ {
		r, err := http.Post(srv.URL+"/api/v1/actions/echo/invoke", "application/json", bytes.NewReader([]byte(`1`)))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	// Wait until all are done, via the filtered listing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/api/v1/activations?action=echo&done=true")
		if err != nil {
			t.Fatal(err)
		}
		var acts []Activation
		if err := json.NewDecoder(r.Body).Decode(&acts); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if len(acts) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d done activations", len(acts))
		}
		time.Sleep(time.Millisecond)
	}
	// Limit applies.
	r, err := http.Get(srv.URL + "/api/v1/activations?limit=2")
	if err != nil {
		t.Fatal(err)
	}
	var acts []Activation
	if err := json.NewDecoder(r.Body).Decode(&acts); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(acts) != 2 {
		t.Fatalf("limited listing = %d", len(acts))
	}
	// Bad limit rejected.
	r, err = http.Get(srv.URL + "/api/v1/activations?limit=abc")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit status = %d", r.StatusCode)
	}
	// Unknown activation is 404.
	r, err = http.Get(srv.URL + "/api/v1/activations/act-999999")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown activation status = %d", r.StatusCode)
	}
}

func TestHTTPDeleteAction(t *testing.T) {
	_, srv := newHTTPEnv(t)
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/api/v1/actions/echo", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	// Second delete is a 404.
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete status = %d", resp2.StatusCode)
	}
}
