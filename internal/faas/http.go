package faas

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
)

// Handler HTTP status mapping mirrors OpenWhisk's REST API: 202 for an
// accepted asynchronous invocation, 429 for the concurrent-invocation
// throttle, 404 for unknown actions/activations.
//
//	POST   /api/v1/actions/{name}/invoke   body = params → {"activationId"}
//	GET    /api/v1/actions                 registered action names
//	DELETE /api/v1/actions/{name}          unregister an action
//	GET  /api/v1/activations/{id}        one activation record
//	GET  /api/v1/activations?action=&limit=&done=  recent activations
//
// The gateway is the platform's management/observability surface; job
// execution still flows through the executor engine (handlers are Go
// functions and cannot cross the socket).
func (c *Controller) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/actions/{name}/invoke", func(w http.ResponseWriter, r *http.Request) {
		params, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id, err := c.Invoke(r.PathValue("name"), params)
		switch {
		case errors.Is(err, ErrNoSuchAction):
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		case errors.Is(err, ErrThrottled):
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(map[string]string{"activationId": id})
	})
	mux.HandleFunc("GET /api/v1/actions", func(w http.ResponseWriter, _ *http.Request) {
		writeJSONResponse(w, c.Actions())
	})
	mux.HandleFunc("DELETE /api/v1/actions/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := c.DeleteAction(r.PathValue("name")); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /api/v1/activations/{id}", func(w http.ResponseWriter, r *http.Request) {
		rec, err := c.Activation(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSONResponse(w, rec)
	})
	mux.HandleFunc("GET /api/v1/activations", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		limit := 0
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			limit = n
		}
		action := q.Get("action")
		onlyDone := q.Get("done") == "true"
		acts := c.Activations()
		out := make([]Activation, 0, len(acts))
		// Newest first, as OpenWhisk lists them.
		for i := len(acts) - 1; i >= 0; i-- {
			a := acts[i]
			if action != "" && a.Action != action {
				continue
			}
			if onlyDone && !a.Done() {
				continue
			}
			out = append(out, a)
			if limit > 0 && len(out) == limit {
				break
			}
		}
		writeJSONResponse(w, out)
	})
	return mux
}

func writeJSONResponse(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
