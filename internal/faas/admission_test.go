package faas

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"gowren/internal/trace"
	"gowren/internal/vclock"
)

// admitEnv builds a controller with an admission layer and a 1s "busy"
// action, tracing into rec.
func admitEnv(t *testing.T, mutate func(*Config)) (*testEnv, *trace.Recorder) {
	t.Helper()
	rec := trace.New(10000)
	e := newEnv(t, func(cfg *Config) {
		cfg.Trace = rec
		if mutate != nil {
			mutate(cfg)
		}
	})
	e.sleepAction(t, "busy", time.Second)
	return e, rec
}

// outcome tallies the per-tenant results of a batch of invocations.
type outcome struct {
	mu        sync.Mutex
	admitted  map[string]int
	quota     map[string]int
	shed      map[string]int
	throttled map[string]int
}

func newOutcome() *outcome {
	return &outcome{
		admitted:  make(map[string]int),
		quota:     make(map[string]int),
		shed:      make(map[string]int),
		throttled: make(map[string]int),
	}
}

func (o *outcome) record(tenant string, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	switch {
	case err == nil:
		o.admitted[tenant]++
	case errors.Is(err, ErrQuotaExceeded):
		o.quota[tenant]++
	case errors.Is(err, ErrShed):
		o.shed[tenant]++
	case errors.Is(err, ErrThrottled):
		o.throttled[tenant]++
	default:
		panic(fmt.Sprintf("unexpected error class: %v", err))
	}
}

func (o *outcome) get(m map[string]int, tenant string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return m[tenant]
}

// TestAdmissionFairShareUnderFlood checks the tentpole property: a tenant
// flooding the platform cannot starve another tenant's modest load. Tenant
// "flood" dumps 40 one-second invocations into a 2-slot controller; tenant
// "calm" then asks for 4. DWRR alternates the freed slots, so calm's work
// finishes among the first few dispatches instead of behind flood's
// 40-deep backlog.
func TestAdmissionFairShareUnderFlood(t *testing.T) {
	e, _ := admitEnv(t, func(cfg *Config) {
		cfg.MaxConcurrent = 2
		cfg.Admission = &AdmissionConfig{MaxQueueDelay: time.Hour}
	})
	o := newOutcome()
	var mu sync.Mutex
	var calmLast time.Duration
	e.clk.Run(func() {
		start := e.clk.Now()
		for i := 0; i < 40; i++ {
			e.clk.Go(func() {
				_, err := e.ctrl.InvokeTenant("flood", "busy", nil)
				o.record("flood", err)
			})
		}
		// Let the flood pass the gateway and fill the queue first.
		e.clk.Sleep(500 * time.Millisecond)
		for i := 0; i < 4; i++ {
			e.clk.Go(func() {
				_, err := e.ctrl.InvokeTenant("calm", "busy", nil)
				o.record("calm", err)
				mu.Lock()
				if at := e.clk.Now().Sub(start); at > calmLast {
					calmLast = at
				}
				mu.Unlock()
			})
		}
		if !vclock.Poll(e.clk, func() bool {
			return o.get(o.admitted, "calm") == 4
		}, 10*time.Millisecond, start.Add(time.Hour)) {
			t.Error("calm tenant never fully admitted")
		}
		e.clk.Sleep(45 * time.Second) // drain the flood
	})
	if got := o.get(o.admitted, "flood"); got != 40 {
		t.Fatalf("flood admitted = %d, want 40 (no quota set)", got)
	}
	// With strict FIFO, calm's last admission would wait ~20s behind the
	// flood backlog. Fair sharing admits one calm waiter for every freed
	// slot pair, so all four clear within a few seconds of arriving.
	if calmLast > 8*time.Second {
		t.Fatalf("calm tenant's last admission at %v — starved behind the flood backlog", calmLast)
	}
}

// TestAdmissionWeights checks that DWRR deficit credit follows configured
// weights: with both tenants saturating a slow controller, the tenant with
// weight 3 is dispatched ~3× as often.
func TestAdmissionWeights(t *testing.T) {
	e, _ := admitEnv(t, func(cfg *Config) {
		cfg.MaxConcurrent = 4
		cfg.Admission = &AdmissionConfig{
			MaxQueueDelay: time.Hour,
			Tenants: map[string]TenantQuota{
				"heavy": {Weight: 3},
				"light": {Weight: 1},
			},
		}
	})
	o := newOutcome()
	e.clk.Run(func() {
		for i := 0; i < 60; i++ {
			e.clk.Go(func() {
				_, err := e.ctrl.InvokeTenant("heavy", "busy", nil)
				o.record("heavy", err)
			})
			e.clk.Go(func() {
				_, err := e.ctrl.InvokeTenant("light", "busy", nil)
				o.record("light", err)
			})
		}
		// Sample dispatch mix while both queues are still saturated.
		e.clk.Sleep(8 * time.Second)
		heavy, light := o.get(o.admitted, "heavy"), o.get(o.admitted, "light")
		if heavy < 2*light {
			t.Errorf("weighted share not honored mid-run: heavy=%d light=%d", heavy, light)
		}
		e.clk.Sleep(time.Hour) // drain
	})
	if got := o.get(o.admitted, "heavy") + o.get(o.admitted, "light"); got != 120 {
		t.Fatalf("total admitted = %d, want 120", got)
	}
}

// TestAdmissionShedDeadline checks deadline-based shedding: waiters stuck
// past MaxQueueDelay fail with ErrShed and a KindShed trace carrying the
// tenant and reason.
func TestAdmissionShedDeadline(t *testing.T) {
	e, rec := admitEnv(t, func(cfg *Config) {
		cfg.MaxConcurrent = 1
		cfg.Admission = &AdmissionConfig{MaxQueueDelay: 2 * time.Second}
	})
	o := newOutcome()
	e.clk.Run(func() {
		// 10 one-second tasks on one slot with a 2s deadline: ~3 run,
		// the rest shed.
		for i := 0; i < 10; i++ {
			e.clk.Go(func() {
				_, err := e.ctrl.InvokeTenant("t", "busy", nil)
				o.record("t", err)
			})
		}
		e.clk.Sleep(time.Minute)
	})
	if shed := o.get(o.shed, "t"); shed == 0 {
		t.Fatal("no invocations shed despite a saturated slot")
	}
	if adm := o.get(o.admitted, "t"); adm == 0 {
		t.Fatal("nothing admitted")
	}
	var shedEvents int
	for _, ev := range rec.Events() {
		if ev.Kind != trace.KindShed {
			continue
		}
		shedEvents++
		if !strings.Contains(ev.Detail, "tenant=t") || !strings.Contains(ev.Detail, "reason=shed") {
			t.Fatalf("shed trace missing tenant/reason: %q", ev.Detail)
		}
	}
	if shedEvents != o.get(o.shed, "t") {
		t.Fatalf("shed traces = %d, want %d (one per shed invocation)", shedEvents, o.get(o.shed, "t"))
	}
}

// TestAdmissionQueueFull checks the bounded-queue overload path: arrivals
// beyond QueueLimit are rejected immediately with ErrShed and a throttle
// trace naming the queue-full reason.
func TestAdmissionQueueFull(t *testing.T) {
	e, rec := admitEnv(t, func(cfg *Config) {
		cfg.MaxConcurrent = 1
		cfg.Admission = &AdmissionConfig{QueueLimit: 2, MaxQueueDelay: time.Hour}
	})
	o := newOutcome()
	e.clk.Run(func() {
		for i := 0; i < 8; i++ {
			e.clk.Go(func() {
				_, err := e.ctrl.InvokeTenant("t", "busy", nil)
				o.record("t", err)
			})
		}
		e.clk.Sleep(time.Minute)
	})
	if shed := o.get(o.shed, "t"); shed == 0 {
		t.Fatal("no queue-full rejections")
	}
	found := false
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindThrottle && strings.Contains(ev.Detail, "reason=shed: admission queue full") {
			if !strings.Contains(ev.Detail, "tenant=t") {
				t.Fatalf("queue-full trace missing tenant: %q", ev.Detail)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no queue-full throttle trace recorded")
	}
}

// TestAdmissionQuotaReject checks the token-bucket gate: a tenant firing
// far past its burst sees ErrQuotaExceeded, and the trace carries the
// quota reason.
func TestAdmissionQuotaReject(t *testing.T) {
	e, rec := admitEnv(t, func(cfg *Config) {
		cfg.MaxConcurrent = 100
		cfg.Admission = &AdmissionConfig{
			Default:       TenantQuota{Rate: 1, Burst: 2},
			MaxQueueDelay: time.Second,
		}
	})
	o := newOutcome()
	e.clk.Run(func() {
		for i := 0; i < 10; i++ {
			e.clk.Go(func() {
				_, err := e.ctrl.InvokeTenant("t", "busy", nil)
				o.record("t", err)
			})
		}
		e.clk.Sleep(time.Minute)
	})
	// Burst 2 plus ~1 token over the deadline window: most of the 10 are
	// quota rejections.
	if q := o.get(o.quota, "t"); q < 5 {
		t.Fatalf("quota rejections = %d, want ≥ 5", q)
	}
	if a := o.get(o.admitted, "t"); a < 2 {
		t.Fatalf("admitted = %d, want the burst (≥ 2)", a)
	}
	found := false
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindThrottle && strings.Contains(ev.Detail, "reason=quota") {
			if !strings.Contains(ev.Detail, "tenant=t") || !strings.Contains(ev.Detail, "queued=") {
				t.Fatalf("quota trace missing fields: %q", ev.Detail)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no quota throttle trace recorded")
	}
}

// TestLegacyThrottleTraceDetail checks that the pre-admission global gate
// now emits the enriched throttle detail (tenant, queue depth, reason).
func TestLegacyThrottleTraceDetail(t *testing.T) {
	e, rec := admitEnv(t, func(cfg *Config) {
		cfg.MaxConcurrent = 1
	})
	e.clk.Run(func() {
		for i := 0; i < 3; i++ {
			e.clk.Go(func() {
				_, _ = e.ctrl.InvokeTenant("", "busy", nil)
			})
		}
		e.clk.Sleep(time.Minute)
	})
	found := false
	for _, ev := range rec.Events() {
		if ev.Kind != trace.KindThrottle {
			continue
		}
		if !strings.Contains(ev.Detail, "tenant=default") ||
			!strings.Contains(ev.Detail, "queued=0") ||
			!strings.Contains(ev.Detail, "reason=global") {
			t.Fatalf("legacy throttle detail not enriched: %q", ev.Detail)
		}
		found = true
	}
	if !found {
		t.Fatal("no throttle events recorded")
	}
}

// invokeSchedule is a deterministic batch of staggered invocations; used
// by the backward-compat property test.
type invokeSchedule struct {
	offsets []time.Duration
}

func makeSchedule(seed int64, n int) invokeSchedule {
	rng := rand.New(rand.NewSource(seed))
	s := invokeSchedule{offsets: make([]time.Duration, n)}
	at := time.Duration(0)
	for i := range s.offsets {
		at += time.Duration(rng.Int63n(int64(120 * time.Millisecond)))
		s.offsets[i] = at
	}
	return s
}

// runSchedule replays the schedule against a fresh controller and returns
// the accept/reject outcome per invocation plus each acceptance's error
// text (empty for accepts).
func runSchedule(t *testing.T, s invokeSchedule, mutate func(*Config)) []string {
	t.Helper()
	e := newEnv(t, mutate)
	e.sleepAction(t, "busy", time.Second)
	results := make([]string, len(s.offsets))
	e.clk.Run(func() {
		start := e.clk.Now()
		var wg sync.WaitGroup
		for i, off := range s.offsets {
			i, off := i, off
			wg.Add(1)
			e.clk.Go(func() {
				defer wg.Done()
				if d := off - e.clk.Now().Sub(start); d > 0 {
					e.clk.Sleep(d)
				}
				_, err := e.ctrl.InvokeTenant("", "busy", nil)
				if err != nil {
					results[i] = fmt.Sprintf("%v@%v", err, e.clk.Now().Sub(start))
				} else {
					results[i] = fmt.Sprintf("ok@%v", e.clk.Now().Sub(start))
				}
			})
		}
		e.clk.Sleep(time.Hour)
	})
	return results
}

// TestAdmissionBackwardCompat is the reduction property: one tenant with
// no rate quota and queueing disabled must behave bit-identically to the
// legacy global gate — same accepts, same rejects, same error text, same
// virtual timestamps — over a seeded schedule of 300 staggered calls
// against a small concurrency limit.
func TestAdmissionBackwardCompat(t *testing.T) {
	for _, seed := range []int64{1, 7, 1234} {
		s := makeSchedule(seed, 300)
		legacy := runSchedule(t, s, func(cfg *Config) {
			cfg.MaxConcurrent = 8
			cfg.Seed = seed
		})
		admission := runSchedule(t, s, func(cfg *Config) {
			cfg.MaxConcurrent = 8
			cfg.Seed = seed
			cfg.Admission = &AdmissionConfig{QueueLimit: -1}
		})
		for i := range legacy {
			if legacy[i] != admission[i] {
				t.Fatalf("seed %d call %d diverged:\n  legacy:    %s\n  admission: %s",
					seed, i, legacy[i], admission[i])
			}
		}
	}
}

// TestAdmissionQueueDepthIntrospection covers QueueDepth/AdmissionQueued.
func TestAdmissionQueueDepthIntrospection(t *testing.T) {
	e, _ := admitEnv(t, func(cfg *Config) {
		cfg.MaxConcurrent = 1
		cfg.Admission = &AdmissionConfig{MaxQueueDelay: time.Hour}
	})
	e.clk.Run(func() {
		for i := 0; i < 5; i++ {
			e.clk.Go(func() {
				_, _ = e.ctrl.InvokeTenant("t", "busy", nil)
			})
		}
		e.clk.Sleep(500 * time.Millisecond)
		if got := e.ctrl.QueueDepth("t"); got != 4 {
			t.Errorf("QueueDepth = %d, want 4 (1 running, 4 parked)", got)
		}
		if got := e.ctrl.AdmissionQueued(); got != 4 {
			t.Errorf("AdmissionQueued = %d, want 4", got)
		}
		e.clk.Sleep(time.Hour)
	})
	if got := e.ctrl.AdmissionQueued(); got != 0 {
		t.Fatalf("AdmissionQueued after drain = %d, want 0", got)
	}
}
