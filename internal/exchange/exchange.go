// Package exchange is the fast tier of the shuffle data plane: two
// selectable transports that keep MapReduce intermediates off the object
// store. The memory-tier Cache models an ephemeral Redis-like node inside
// the datacenter — bounded capacity, size-aware LRU eviction with
// spill-to-COS, GET/PUT/DEL charged over a netsim link. Peers models
// direct function-to-function transfer: a map activation advertises its
// partitions and lingers for a bounded window while reducers pull straight
// from it over in-cloud links.
//
// Neither transport is durable, and that is the point: every failure mode
// (node killed, entry evicted, peer gone or expired) surfaces as an error
// the shuffle runners translate into a transparent fall back to the COS
// baseline — a COS poll for spilled/fallback objects, then recomputation
// from the staged call payload. Jobs never depend on the fast tier for
// correctness, only for speed.
package exchange

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gowren/internal/netsim"
	"gowren/internal/vclock"
)

// Sentinel errors the shuffle runners branch on when degrading to COS.
var (
	// ErrUnavailable means the node did not answer (killed by chaos, or a
	// transient link failure). Contents may be gone.
	ErrUnavailable = errors.New("exchange: node unavailable")
	// ErrNotFound means the node answered but has no such partition
	// (evicted, flushed, or never written).
	ErrNotFound = errors.New("exchange: partition not found")
	// ErrTooLarge means the entry exceeds the cache's total capacity and
	// was refused outright.
	ErrTooLarge = errors.New("exchange: entry larger than cache capacity")
	// ErrPeerLost means the producing activation was killed while
	// lingering (chaos ExchangePeerLoss).
	ErrPeerLost = errors.New("exchange: lingering peer lost")
	// ErrExpired means the producer's linger window closed before the
	// pull arrived.
	ErrExpired = errors.New("exchange: peer advertisement expired")
)

// TransportCounts is a point-in-time snapshot of one transport's traffic,
// the exchange-tier analogue of cos.OpCounts: requests as they hit the
// simulated wire, plus hit/miss/fallback outcomes.
type TransportCounts struct {
	PutOps    int64 // writes / publishes accepted by the tier
	GetOps    int64 // reads / pulls attempted against the tier
	DeleteOps int64
	BytesIn   int64 // bytes written into the tier
	BytesOut  int64 // bytes served by the tier
	Hits      int64 // reads answered from the tier
	Misses    int64 // reads the tier could not answer
	Fallbacks int64 // ops the shuffle rerouted to the COS baseline
}

// transportCounters is the live, concurrently-updated form.
type transportCounters struct {
	putOps, getOps, deleteOps atomic.Int64
	bytesIn, bytesOut         atomic.Int64
	hits, misses, fallbacks   atomic.Int64
}

func (c *transportCounters) snapshot() TransportCounts {
	return TransportCounts{
		PutOps:    c.putOps.Load(),
		GetOps:    c.getOps.Load(),
		DeleteOps: c.deleteOps.Load(),
		BytesIn:   c.bytesIn.Load(),
		BytesOut:  c.bytesOut.Load(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Fallbacks: c.fallbacks.Load(),
	}
}

// OpCounts is the fabric-wide accounting snapshot surfaced through
// Platform.ExchangeOps: per-transport traffic plus the cache's lifecycle
// counters. Benchmarks report these instead of inferring savings.
type OpCounts struct {
	Memory TransportCounts
	Direct TransportCounts

	// Evictions counts cache entries displaced by LRU pressure; Spills
	// and SpillBytes count the async COS backups those evictions
	// scheduled. Flushed counts entries lost outright to a cache kill
	// (no spill — the node's memory is gone). Expired counts peer
	// advertisements that aged out of their linger window.
	Evictions  int64
	Spills     int64
	SpillBytes int64
	Flushed    int64
	Expired    int64
}

// Cache is the ephemeral memory-tier exchange node on the virtual clock.
// Every operation pays one request on the node's netsim link (latency +
// bandwidth) before touching the store, exactly like cos.Linked charges
// the COS path. The down probe is consulted per request: while it reports
// true the node is dead — requests fail with ErrUnavailable and the
// first such observation drops the node's entire contents, so it comes
// back empty, never stale.
type Cache struct {
	clk      vclock.Clock
	link     *netsim.Link
	capacity int64
	down     func() bool
	spill    func(key string, data []byte)

	mu      sync.Mutex
	used    int64
	lru     *list.List // front = most recently used
	entries map[string]*list.Element

	counts     transportCounters
	evictions  atomic.Int64
	spills     atomic.Int64
	spillBytes atomic.Int64
	flushed    atomic.Int64
}

type cacheEntry struct {
	key  string
	data []byte
}

// NewCache returns a cache of capacityBytes. down and spill may be nil
// (never down; evictions discard instead of spilling). spill runs as its
// own clock task, off the writer's critical path.
func NewCache(clk vclock.Clock, link *netsim.Link, capacityBytes int64, down func() bool, spill func(key string, data []byte)) (*Cache, error) {
	if clk == nil || link == nil {
		return nil, fmt.Errorf("exchange: cache requires a clock and a link")
	}
	if capacityBytes <= 0 {
		return nil, fmt.Errorf("exchange: cache capacity %d must be positive", capacityBytes)
	}
	return &Cache{
		clk:      clk,
		link:     link,
		capacity: capacityBytes,
		down:     down,
		spill:    spill,
		lru:      list.New(),
		entries:  make(map[string]*list.Element),
	}, nil
}

// charge pays one request carrying payloadBytes on the node's link and
// reports whether the request failed in flight.
func (c *Cache) charge(payloadBytes int64) bool {
	d, fail := c.link.RequestCost(payloadBytes)
	c.clk.Sleep(d)
	return fail
}

// isDown consults the kill probe and, on the first observation of a dead
// node, drops its contents: a killed cache restarts empty.
func (c *Cache) isDown() bool {
	if c.down == nil || !c.down() {
		return false
	}
	c.mu.Lock()
	if n := len(c.entries); n > 0 {
		c.lru.Init()
		c.entries = make(map[string]*list.Element)
		c.used = 0
		c.flushed.Add(int64(n))
	}
	c.mu.Unlock()
	return true
}

// Put stores data under key, evicting least-recently-used entries until it
// fits. Evicted entries are handed to the spill hook asynchronously.
func (c *Cache) Put(key string, data []byte) error {
	if c.charge(int64(len(data))) {
		return ErrUnavailable
	}
	if c.isDown() {
		return ErrUnavailable
	}
	if int64(len(data)) > c.capacity {
		return ErrTooLarge
	}
	c.counts.putOps.Add(1)
	c.counts.bytesIn.Add(int64(len(data)))
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.used += int64(len(data)) - int64(len(e.data))
		e.data = data
		c.lru.MoveToFront(el)
	} else {
		c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, data: data})
		c.used += int64(len(data))
	}
	var evicted []*cacheEntry
	for c.used > c.capacity {
		back := c.lru.Back()
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.used -= int64(len(e.data))
		evicted = append(evicted, e)
	}
	c.mu.Unlock()
	for _, e := range evicted {
		c.evictions.Add(1)
		if c.spill == nil {
			continue
		}
		c.spills.Add(1)
		c.spillBytes.Add(int64(len(e.data)))
		e := e
		c.clk.Go(func() { c.spill(e.key, e.data) })
	}
	return nil
}

// Get returns the entry under key, refreshing its recency.
func (c *Cache) Get(key string) ([]byte, error) {
	c.counts.getOps.Add(1)
	if c.isDown() {
		c.charge(0)
		c.counts.misses.Add(1)
		return nil, ErrUnavailable
	}
	c.mu.Lock()
	el, ok := c.entries[key]
	var data []byte
	if ok {
		data = el.Value.(*cacheEntry).data
		c.lru.MoveToFront(el)
	}
	c.mu.Unlock()
	if c.charge(int64(len(data))) {
		c.counts.misses.Add(1)
		return nil, ErrUnavailable
	}
	if !ok {
		c.counts.misses.Add(1)
		return nil, ErrNotFound
	}
	c.counts.hits.Add(1)
	c.counts.bytesOut.Add(int64(len(data)))
	return data, nil
}

// Delete removes the entry under key, if present.
func (c *Cache) Delete(key string) error {
	if c.charge(0) {
		return ErrUnavailable
	}
	if c.isDown() {
		return ErrUnavailable
	}
	c.counts.deleteOps.Add(1)
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.used -= int64(len(e.data))
		c.lru.Remove(el)
		delete(c.entries, key)
	}
	c.mu.Unlock()
	return nil
}

// Used returns the bytes currently resident.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Peers is the direct-transfer registry: partitions a lingering map
// activation is serving, keyed by (executor, call). Publish is free — the
// advertisement rides the producer's status record — while every Pull pays
// one request on the peer-to-peer link. Entries age out after the linger
// window; the lost probe models the producing container being killed,
// which drops every advertised partition at once.
type Peers struct {
	clk    vclock.Clock
	link   *netsim.Link
	linger time.Duration
	lost   func() bool

	mu      sync.Mutex
	entries map[string]*peerEntry
	order   []string // publish order == expiry order (constant linger)

	counts  transportCounters
	expired atomic.Int64
	dropped atomic.Int64
}

type peerEntry struct {
	parts   [][]byte
	expires time.Time
}

// NewPeers returns a registry whose advertisements live for linger.
func NewPeers(clk vclock.Clock, link *netsim.Link, linger time.Duration, lost func() bool) (*Peers, error) {
	if clk == nil || link == nil {
		return nil, fmt.Errorf("exchange: peers require a clock and a link")
	}
	if linger <= 0 {
		return nil, fmt.Errorf("exchange: linger window %v must be positive", linger)
	}
	return &Peers{
		clk:     clk,
		link:    link,
		linger:  linger,
		lost:    lost,
		entries: make(map[string]*peerEntry),
	}, nil
}

func peerKey(execID, callID string) string { return execID + "/" + callID }

// Linger returns the configured linger window.
func (p *Peers) Linger() time.Duration { return p.linger }

// isLost consults the peer-kill probe and, while it reports true, drops
// every advertisement: the lingering containers are gone.
func (p *Peers) isLost() bool {
	if p.lost == nil || !p.lost() {
		return false
	}
	p.mu.Lock()
	if n := len(p.entries); n > 0 {
		p.entries = make(map[string]*peerEntry)
		p.order = p.order[:0]
		p.dropped.Add(int64(n))
	}
	p.mu.Unlock()
	return true
}

// Publish advertises the partitions of one map call, partition index ==
// reducer index, and returns the instant the advertisement (and the
// producing container) expires. Re-publishing the same call — a respawned
// producer — replaces the previous advertisement.
func (p *Peers) Publish(execID, callID string, parts [][]byte) (time.Time, error) {
	if p.isLost() {
		return time.Time{}, ErrPeerLost
	}
	var total int64
	for _, part := range parts {
		total += int64(len(part))
	}
	p.counts.putOps.Add(1)
	p.counts.bytesIn.Add(total)
	now := p.clk.Now()
	expires := now.Add(p.linger)
	p.mu.Lock()
	// Expire from the front of the publish-order queue; constant linger
	// keeps it sorted by expiry, so this is O(expired), not O(entries).
	for len(p.order) > 0 {
		head := p.order[0]
		e, ok := p.entries[head]
		if ok && !now.After(e.expires) {
			break
		}
		if ok {
			delete(p.entries, head)
			p.expired.Add(1)
		}
		p.order = p.order[1:]
	}
	key := peerKey(execID, callID)
	p.entries[key] = &peerEntry{parts: parts, expires: expires}
	p.order = append(p.order, key)
	p.mu.Unlock()
	return expires, nil
}

// Pull fetches partition reducer of the given map call straight from its
// lingering producer.
func (p *Peers) Pull(execID, callID string, reducer int) ([]byte, error) {
	p.counts.getOps.Add(1)
	if p.isLost() {
		p.charge(0)
		p.counts.misses.Add(1)
		return nil, ErrPeerLost
	}
	now := p.clk.Now()
	p.mu.Lock()
	key := peerKey(execID, callID)
	e, ok := p.entries[key]
	var data []byte
	var wasExpired bool
	if ok && now.After(e.expires) {
		delete(p.entries, key)
		p.expired.Add(1)
		ok, wasExpired = false, true
	}
	if ok && reducer >= 0 && reducer < len(e.parts) {
		data = e.parts[reducer]
	} else {
		ok = false
	}
	p.mu.Unlock()
	if p.charge(int64(len(data))) {
		p.counts.misses.Add(1)
		return nil, ErrUnavailable
	}
	if !ok {
		p.counts.misses.Add(1)
		if wasExpired {
			return nil, ErrExpired
		}
		return nil, ErrNotFound
	}
	p.counts.hits.Add(1)
	p.counts.bytesOut.Add(int64(len(data)))
	return data, nil
}

func (p *Peers) charge(payloadBytes int64) bool {
	d, fail := p.link.RequestCost(payloadBytes)
	p.clk.Sleep(d)
	return fail
}

// Len returns the number of live advertisements.
func (p *Peers) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Config wires a Fabric.
type Config struct {
	Clock vclock.Clock
	// CacheLink and PeerLink carry memory-tier and direct-transfer
	// traffic respectively.
	CacheLink *netsim.Link
	PeerLink  *netsim.Link
	// CacheCapacity bounds the memory-tier node; zero selects 256 MiB.
	CacheCapacity int64
	// Linger bounds how long a direct-transport producer stays resident
	// to serve pulls; zero selects 30 s.
	Linger time.Duration
	// CacheDown and PeerLost are the chaos probes; nil means never.
	CacheDown func() bool
	PeerLost  func() bool
	// Spill receives evicted cache entries for the async COS backup.
	Spill func(key string, data []byte)
}

// Fabric bundles the two fast-tier transports behind one wiring point and
// aggregates their accounting.
type Fabric struct {
	Cache *Cache
	Peers *Peers

	spanMu sync.Mutex
	spans  ShuffleSpans
}

// DefaultCacheCapacity is the memory-tier node size when unconfigured.
const DefaultCacheCapacity int64 = 256 << 20

// DefaultLinger is the direct-transport linger window when unconfigured.
const DefaultLinger = 30 * time.Second

// NewFabric validates cfg, applies defaults and returns the fabric.
func NewFabric(cfg Config) (*Fabric, error) {
	if cfg.CacheCapacity == 0 {
		cfg.CacheCapacity = DefaultCacheCapacity
	}
	if cfg.Linger == 0 {
		cfg.Linger = DefaultLinger
	}
	cache, err := NewCache(cfg.Clock, cfg.CacheLink, cfg.CacheCapacity, cfg.CacheDown, cfg.Spill)
	if err != nil {
		return nil, err
	}
	peers, err := NewPeers(cfg.Clock, cfg.PeerLink, cfg.Linger, cfg.PeerLost)
	if err != nil {
		return nil, err
	}
	return &Fabric{Cache: cache, Peers: peers}, nil
}

// NoteFallback records that a shuffle op on the named transport was
// rerouted to the COS baseline (wire.ExchangeMemory / wire.ExchangeDirect;
// other names are ignored).
func (f *Fabric) NoteFallback(transport string) {
	switch transport {
	case "memory":
		f.Cache.counts.fallbacks.Add(1)
	case "direct":
		f.Peers.counts.fallbacks.Add(1)
	}
}

// Counts returns the fabric-wide accounting snapshot.
func (f *Fabric) Counts() OpCounts {
	return OpCounts{
		Memory:     f.Cache.counts.snapshot(),
		Direct:     f.Peers.counts.snapshot(),
		Evictions:  f.Cache.evictions.Load(),
		Spills:     f.Cache.spills.Load(),
		SpillBytes: f.Cache.spillBytes.Load(),
		Flushed:    f.Cache.flushed.Load(),
		Expired:    f.Peers.expired.Load() + f.Peers.dropped.Load(),
	}
}

// ShuffleSpans captures the data-plane windows of shuffle traffic since
// the last Reset: the envelope of map-side partition writes and of
// reduce-side partition reads, on the simulation clock. Benchmarks use
// Write+Read as the shuffle makespan — the time actually spent moving
// intermediate bytes — excluding the status-sweep coordination gap between
// the phases, which is identical across transports.
type ShuffleSpans struct {
	WriteStart, WriteEnd time.Time
	ReadStart, ReadEnd   time.Time
}

// Write returns the map-side envelope duration.
func (s ShuffleSpans) Write() time.Duration {
	if s.WriteStart.IsZero() {
		return 0
	}
	return s.WriteEnd.Sub(s.WriteStart)
}

// Read returns the reduce-side envelope duration.
func (s ShuffleSpans) Read() time.Duration {
	if s.ReadStart.IsZero() {
		return 0
	}
	return s.ReadEnd.Sub(s.ReadStart)
}

// DataPlane returns the combined shuffle data-plane makespan.
func (s ShuffleSpans) DataPlane() time.Duration { return s.Write() + s.Read() }

// NoteWrite folds one map-side partition write window into the envelope.
// All transports report here, COS included, so A/B comparisons measure the
// same thing.
func (f *Fabric) NoteWrite(start, end time.Time) {
	f.spanMu.Lock()
	if f.spans.WriteStart.IsZero() || start.Before(f.spans.WriteStart) {
		f.spans.WriteStart = start
	}
	if end.After(f.spans.WriteEnd) {
		f.spans.WriteEnd = end
	}
	f.spanMu.Unlock()
}

// NoteRead folds one reduce-side partition fetch window into the envelope.
func (f *Fabric) NoteRead(start, end time.Time) {
	f.spanMu.Lock()
	if f.spans.ReadStart.IsZero() || start.Before(f.spans.ReadStart) {
		f.spans.ReadStart = start
	}
	if end.After(f.spans.ReadEnd) {
		f.spans.ReadEnd = end
	}
	f.spanMu.Unlock()
}

// ResetSpans clears the envelopes before a measured run.
func (f *Fabric) ResetSpans() {
	f.spanMu.Lock()
	f.spans = ShuffleSpans{}
	f.spanMu.Unlock()
}

// Spans returns the current envelopes.
func (f *Fabric) Spans() ShuffleSpans {
	f.spanMu.Lock()
	defer f.spanMu.Unlock()
	return f.spans
}
