package exchange

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gowren/internal/netsim"
	"gowren/internal/vclock"
)

func newTestCache(t *testing.T, clk *vclock.Virtual, capacity int64, down func() bool, spill func(string, []byte)) *Cache {
	t.Helper()
	c, err := NewCache(clk, netsim.Loopback(), capacity, down, spill)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheLRUEvictionSpillsInOrder(t *testing.T) {
	clk := vclock.NewVirtual()
	var mu sync.Mutex
	var spilled []string
	spillData := map[string][]byte{}
	c := newTestCache(t, clk, 100, nil, func(key string, data []byte) {
		mu.Lock()
		spilled = append(spilled, key)
		spillData[key] = data
		mu.Unlock()
	})
	clk.Run(func() {
		// Three 40-byte entries in a 100-byte cache: inserting "c" must
		// evict exactly the least recently used entry.
		for _, k := range []string{"a", "b"} {
			if err := c.Put(k, bytes.Repeat([]byte(k), 40)); err != nil {
				t.Fatal(err)
			}
		}
		// Touch "a" so "b" becomes the LRU victim.
		if _, err := c.Get("a"); err != nil {
			t.Fatal(err)
		}
		if err := c.Put("c", bytes.Repeat([]byte("c"), 40)); err != nil {
			t.Fatal(err)
		}
	})
	if len(spilled) != 1 || spilled[0] != "b" {
		t.Fatalf("spilled = %v, want [b]", spilled)
	}
	if !bytes.Equal(spillData["b"], bytes.Repeat([]byte("b"), 40)) {
		t.Fatalf("spill handed back wrong bytes for b")
	}
	if c.Len() != 2 || c.Used() != 80 {
		t.Fatalf("len=%d used=%d after eviction, want 2/80", c.Len(), c.Used())
	}
	clk.Run(func() {
		if _, err := c.Get("b"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get(b) after eviction = %v, want ErrNotFound", err)
		}
		if data, err := c.Get("a"); err != nil || len(data) != 40 {
			t.Fatalf("Get(a) = %d bytes, %v", len(data), err)
		}
	})
	counts := c.counts.snapshot()
	if counts.PutOps != 3 || counts.Hits != 2 || counts.Misses != 1 {
		t.Fatalf("counters = %+v", counts)
	}
	if c.evictions.Load() != 1 || c.spills.Load() != 1 || c.spillBytes.Load() != 40 {
		t.Fatalf("evictions=%d spills=%d spillBytes=%d", c.evictions.Load(), c.spills.Load(), c.spillBytes.Load())
	}
}

func TestCacheUpdateReplacesInPlace(t *testing.T) {
	clk := vclock.NewVirtual()
	c := newTestCache(t, clk, 100, nil, nil)
	clk.Run(func() {
		if err := c.Put("k", make([]byte, 60)); err != nil {
			t.Fatal(err)
		}
		if err := c.Put("k", make([]byte, 30)); err != nil {
			t.Fatal(err)
		}
	})
	if c.Len() != 1 || c.Used() != 30 {
		t.Fatalf("len=%d used=%d after in-place update, want 1/30", c.Len(), c.Used())
	}
	clk.Run(func() {
		if err := c.Delete("k"); err != nil {
			t.Fatal(err)
		}
		if err := c.Delete("k"); err != nil { // idempotent
			t.Fatal(err)
		}
	})
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatalf("len=%d used=%d after delete, want 0/0", c.Len(), c.Used())
	}
}

func TestCacheRejectsOversizedEntry(t *testing.T) {
	clk := vclock.NewVirtual()
	c := newTestCache(t, clk, 64, nil, nil)
	clk.Run(func() {
		if err := c.Put("big", make([]byte, 65)); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("Put oversized = %v, want ErrTooLarge", err)
		}
	})
	if c.Len() != 0 {
		t.Fatalf("oversized entry was admitted")
	}
}

func TestCacheKillFlushesContents(t *testing.T) {
	clk := vclock.NewVirtual()
	down := false
	c := newTestCache(t, clk, 1<<20, func() bool { return down }, nil)
	clk.Run(func() {
		if err := c.Put("k", []byte("payload")); err != nil {
			t.Fatal(err)
		}
		down = true
		if _, err := c.Get("k"); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("Get while down = %v, want ErrUnavailable", err)
		}
		if err := c.Put("other", []byte("x")); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("Put while down = %v, want ErrUnavailable", err)
		}
		// The node restarts empty: previously resident entries are gone,
		// not stale.
		down = false
		if _, err := c.Get("k"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get after restart = %v, want ErrNotFound", err)
		}
	})
	if c.flushed.Load() != 1 {
		t.Fatalf("flushed = %d, want 1", c.flushed.Load())
	}
	if c.Used() != 0 {
		t.Fatalf("used = %d after flush", c.Used())
	}
}

func newTestPeers(t *testing.T, clk *vclock.Virtual, linger time.Duration, lost func() bool) *Peers {
	t.Helper()
	p, err := NewPeers(clk, netsim.Loopback(), linger, lost)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPeersPublishPullAndExpiry(t *testing.T) {
	clk := vclock.NewVirtual()
	p := newTestPeers(t, clk, 10*time.Second, nil)
	clk.Run(func() {
		expires, err := p.Publish("exec", "call-1", [][]byte{[]byte("r0"), []byte("r1")})
		if err != nil {
			t.Fatal(err)
		}
		if got := expires.Sub(clk.Now()); got != 10*time.Second {
			t.Fatalf("linger = %v, want 10s", got)
		}
		data, err := p.Pull("exec", "call-1", 1)
		if err != nil || string(data) != "r1" {
			t.Fatalf("Pull = %q, %v", data, err)
		}
		// Out-of-range reducer index and unknown call are misses, not
		// panics.
		if _, err := p.Pull("exec", "call-1", 2); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Pull reducer 2 = %v, want ErrNotFound", err)
		}
		if _, err := p.Pull("exec", "ghost", 0); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Pull unknown call = %v, want ErrNotFound", err)
		}
		// Past the linger window the advertisement ages out.
		clk.Sleep(11 * time.Second)
		if _, err := p.Pull("exec", "call-1", 0); !errors.Is(err, ErrExpired) {
			t.Fatalf("Pull after linger = %v, want ErrExpired", err)
		}
	})
	if p.Len() != 0 {
		t.Fatalf("live ads = %d after expiry", p.Len())
	}
	if p.expired.Load() != 1 {
		t.Fatalf("expired = %d, want 1", p.expired.Load())
	}
}

func TestPeersPublishSweepsExpiredQueue(t *testing.T) {
	clk := vclock.NewVirtual()
	p := newTestPeers(t, clk, time.Second, nil)
	clk.Run(func() {
		for i := 0; i < 5; i++ {
			if _, err := p.Publish("exec", fmt.Sprintf("old-%d", i), [][]byte{[]byte("x")}); err != nil {
				t.Fatal(err)
			}
		}
		clk.Sleep(2 * time.Second)
		if _, err := p.Publish("exec", "fresh", [][]byte{[]byte("y")}); err != nil {
			t.Fatal(err)
		}
	})
	if p.Len() != 1 {
		t.Fatalf("live ads = %d after sweep, want 1", p.Len())
	}
	if p.expired.Load() != 5 {
		t.Fatalf("expired = %d, want 5", p.expired.Load())
	}
}

func TestPeersLossDropsAllAdvertisements(t *testing.T) {
	clk := vclock.NewVirtual()
	lost := false
	p := newTestPeers(t, clk, time.Minute, func() bool { return lost })
	clk.Run(func() {
		for i := 0; i < 3; i++ {
			if _, err := p.Publish("exec", fmt.Sprintf("call-%d", i), [][]byte{[]byte("x")}); err != nil {
				t.Fatal(err)
			}
		}
		lost = true
		if _, err := p.Pull("exec", "call-0", 0); !errors.Is(err, ErrPeerLost) {
			t.Fatalf("Pull while lost = %v, want ErrPeerLost", err)
		}
		// The kill is not a pause: the containers are gone, so recovery
		// does not resurrect their advertisements.
		lost = false
		if _, err := p.Pull("exec", "call-1", 0); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Pull after loss = %v, want ErrNotFound", err)
		}
	})
	if p.Len() != 0 {
		t.Fatalf("live ads = %d after loss", p.Len())
	}
	if p.dropped.Load() != 3 {
		t.Fatalf("dropped = %d, want 3", p.dropped.Load())
	}
}

func TestFabricCountsAndFallbacks(t *testing.T) {
	clk := vclock.NewVirtual()
	f, err := NewFabric(Config{
		Clock:     clk,
		CacheLink: netsim.Loopback(),
		PeerLink:  netsim.Loopback(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Cache.capacity != DefaultCacheCapacity {
		t.Fatalf("default capacity = %d", f.Cache.capacity)
	}
	if f.Peers.Linger() != DefaultLinger {
		t.Fatalf("default linger = %v", f.Peers.Linger())
	}
	clk.Run(func() {
		if err := f.Cache.Put("k", []byte("abc")); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Cache.Get("k"); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Peers.Publish("e", "c", [][]byte{[]byte("wxyz")}); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Peers.Pull("e", "c", 0); err != nil {
			t.Fatal(err)
		}
	})
	f.NoteFallback("memory")
	f.NoteFallback("direct")
	f.NoteFallback("cos") // ignored: COS is the baseline, not a fast tier
	got := f.Counts()
	if got.Memory.PutOps != 1 || got.Memory.GetOps != 1 || got.Memory.Hits != 1 ||
		got.Memory.BytesIn != 3 || got.Memory.BytesOut != 3 || got.Memory.Fallbacks != 1 {
		t.Fatalf("memory counts = %+v", got.Memory)
	}
	if got.Direct.PutOps != 1 || got.Direct.GetOps != 1 || got.Direct.Hits != 1 ||
		got.Direct.BytesIn != 4 || got.Direct.BytesOut != 4 || got.Direct.Fallbacks != 1 {
		t.Fatalf("direct counts = %+v", got.Direct)
	}
}

func TestShuffleSpansEnvelope(t *testing.T) {
	clk := vclock.NewVirtual()
	f, err := NewFabric(Config{Clock: clk, CacheLink: netsim.Loopback(), PeerLink: netsim.Loopback()})
	if err != nil {
		t.Fatal(err)
	}
	base := clk.Now()
	at := func(d time.Duration) time.Time { return base.Add(d) }
	// Overlapping windows fold into one envelope per phase.
	f.NoteWrite(at(2*time.Second), at(5*time.Second))
	f.NoteWrite(at(1*time.Second), at(3*time.Second))
	f.NoteRead(at(10*time.Second), at(11*time.Second))
	f.NoteRead(at(10500*time.Millisecond), at(12*time.Second))
	spans := f.Spans()
	if spans.Write() != 4*time.Second {
		t.Fatalf("write envelope = %v, want 4s", spans.Write())
	}
	if spans.Read() != 2*time.Second {
		t.Fatalf("read envelope = %v, want 2s", spans.Read())
	}
	if spans.DataPlane() != 6*time.Second {
		t.Fatalf("data plane = %v, want 6s", spans.DataPlane())
	}
	f.ResetSpans()
	if got := f.Spans(); got.DataPlane() != 0 {
		t.Fatalf("spans after reset = %+v", got)
	}
}

func TestNewFabricValidation(t *testing.T) {
	clk := vclock.NewVirtual()
	if _, err := NewFabric(Config{Clock: clk, PeerLink: netsim.Loopback()}); err == nil {
		t.Fatal("fabric without cache link accepted")
	}
	if _, err := NewCache(clk, netsim.Loopback(), -1, nil, nil); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := NewPeers(clk, netsim.Loopback(), -time.Second, nil); err == nil {
		t.Fatal("negative linger accepted")
	}
}
