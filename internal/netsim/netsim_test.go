package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestConstantSample(t *testing.T) {
	m := Constant{D: 42 * time.Millisecond}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if got := m.Sample(r); got != 42*time.Millisecond {
			t.Fatalf("sample = %v, want 42ms", got)
		}
	}
}

func TestUniformBounds(t *testing.T) {
	m := Uniform{Min: 10 * time.Millisecond, Max: 20 * time.Millisecond}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		got := m.Sample(r)
		if got < m.Min || got > m.Max {
			t.Fatalf("sample %v out of [%v,%v]", got, m.Min, m.Max)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	m := Uniform{Min: 5 * time.Millisecond, Max: 5 * time.Millisecond}
	r := rand.New(rand.NewSource(3))
	if got := m.Sample(r); got != 5*time.Millisecond {
		t.Fatalf("degenerate uniform = %v, want 5ms", got)
	}
	inverted := Uniform{Min: 9 * time.Millisecond, Max: time.Millisecond}
	if got := inverted.Sample(r); got != 9*time.Millisecond {
		t.Fatalf("inverted uniform = %v, want Min", got)
	}
}

func TestLogNormalPositiveAndCapped(t *testing.T) {
	m := LogNormal{Median: 100 * time.Millisecond, Sigma: 0.5, Cap: time.Second}
	r := rand.New(rand.NewSource(4))
	var over, total int
	for i := 0; i < 5000; i++ {
		got := m.Sample(r)
		if got < 0 {
			t.Fatalf("negative sample %v", got)
		}
		if got > time.Second {
			t.Fatalf("sample %v exceeds cap", got)
		}
		if got > 100*time.Millisecond {
			over++
		}
		total++
	}
	// Median property: roughly half the samples exceed the median.
	if over < total/3 || over > 2*total/3 {
		t.Fatalf("samples over median = %d/%d, want near half", over, total)
	}
}

func TestLinkRequestCostComponents(t *testing.T) {
	l := NewLink(LinkConfig{
		RTT:          Constant{D: 100 * time.Millisecond},
		PerRequest:   10 * time.Millisecond,
		BandwidthBps: 1 << 20, // 1 MiB/s
	})
	d, failed := l.RequestCost(1 << 20) // exactly one second of transfer
	if failed {
		t.Fatal("unexpected failure with FailureProb=0")
	}
	want := 100*time.Millisecond + 10*time.Millisecond + time.Second
	if d != want {
		t.Fatalf("cost = %v, want %v", d, want)
	}
}

func TestLinkZeroBandwidthIgnoresPayload(t *testing.T) {
	l := NewLink(LinkConfig{RTT: Constant{D: time.Millisecond}})
	small, _ := l.RequestCost(0)
	big, _ := l.RequestCost(1 << 30)
	if small != big {
		t.Fatalf("payload changed cost with zero bandwidth: %v vs %v", small, big)
	}
}

func TestLinkFailureRate(t *testing.T) {
	l := NewLink(LinkConfig{FailureProb: 0.25, Seed: 99})
	var failures int
	const n = 10000
	for i := 0; i < n; i++ {
		if _, failed := l.RequestCost(0); failed {
			failures++
		}
	}
	rate := float64(failures) / n
	if rate < 0.20 || rate > 0.30 {
		t.Fatalf("failure rate = %.3f, want ~0.25", rate)
	}
}

func TestLinkDeterministicForSeed(t *testing.T) {
	sample := func(seed int64) []time.Duration {
		l := WAN(seed)
		out := make([]time.Duration, 20)
		for i := range out {
			out[i], _ = l.RequestCost(1024)
		}
		return out
	}
	a, b := sample(7), sample(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := sample(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestProfilesOrdering(t *testing.T) {
	// The WAN must be meaningfully slower than the in-cloud path; this is
	// the entire premise of the massive-spawning mechanism (paper §5.1).
	wan, cloud := WAN(1), InCloud(1)
	var wanSum, cloudSum time.Duration
	for i := 0; i < 200; i++ {
		d, _ := wan.RequestCost(1024)
		wanSum += d
		d, _ = cloud.RequestCost(1024)
		cloudSum += d
	}
	if wanSum < 20*cloudSum {
		t.Fatalf("WAN (%v) not ≫ in-cloud (%v)", wanSum/200, cloudSum/200)
	}
}

func TestLoopbackFree(t *testing.T) {
	l := Loopback()
	d, failed := l.RequestCost(1 << 30)
	if d != 0 || failed {
		t.Fatalf("loopback cost=%v failed=%v, want 0,false", d, failed)
	}
}

func TestLinkCostNonNegativeProperty(t *testing.T) {
	l := WAN(5)
	f := func(payload int32) bool {
		p := int64(payload)
		if p < 0 {
			p = -p
		}
		d, _ := l.RequestCost(p)
		return d >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWANStorageProfileBetween(t *testing.T) {
	// The client→COS path must be faster than the client→gateway path but
	// far slower than the in-cloud path.
	wan, wanStore, cloud := WAN(3), WANStorage(3), InCloud(3)
	avg := func(l *Link) time.Duration {
		var sum time.Duration
		for i := 0; i < 300; i++ {
			d, _ := l.RequestCost(512)
			sum += d
		}
		return sum / 300
	}
	aWAN, aStore, aCloud := avg(wan), avg(wanStore), avg(cloud)
	if !(aCloud < aStore && aStore < aWAN) {
		t.Fatalf("ordering violated: cloud=%v store=%v wan=%v", aCloud, aStore, aWAN)
	}
}

func TestLogNormalUncapped(t *testing.T) {
	m := LogNormal{Median: 50 * time.Millisecond, Sigma: 0.3}
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		if d := m.Sample(r); d < 0 {
			t.Fatalf("negative sample %v", d)
		}
	}
}

func TestLinkTransferZeroPayload(t *testing.T) {
	l := NewLink(LinkConfig{BandwidthBps: 1 << 20})
	if got := l.Transfer(0); got != 0 {
		t.Fatalf("zero payload transfer = %v", got)
	}
	if got := l.Transfer(-5); got != 0 {
		t.Fatalf("negative payload transfer = %v", got)
	}
	if got := l.Transfer(1 << 20); got != time.Second {
		t.Fatalf("1MiB at 1MiB/s = %v", got)
	}
}

func TestLinkFailNoProb(t *testing.T) {
	l := Loopback()
	for i := 0; i < 100; i++ {
		if l.Fail() {
			t.Fatal("loopback failed")
		}
	}
}

func TestLinkDeterministicAcrossOpInterleavings(t *testing.T) {
	// All three randomness-consuming operations share one seeded PRNG, so
	// a fixed seed must reproduce the exact outcome stream for any fixed
	// interleaving of RequestCost, Latency and Fail calls.
	type outcome struct {
		d    time.Duration
		fail bool
	}
	run := func(seed int64) []outcome {
		l := NewLink(LinkConfig{
			RTT:         LogNormal{Median: 50 * time.Millisecond, Sigma: 0.4, Cap: time.Second},
			PerRequest:  5 * time.Millisecond,
			FailureProb: 0.3,
			Seed:        seed,
		})
		var out []outcome
		for i := 0; i < 30; i++ {
			switch i % 3 {
			case 0:
				d, f := l.RequestCost(int64(i) * 100)
				out = append(out, outcome{d, f})
			case 1:
				out = append(out, outcome{d: l.Latency()})
			default:
				out = append(out, outcome{fail: l.Fail()})
			}
		}
		return out
	}
	a, b := run(11), run(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(12)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical mixed-op streams")
	}
}

func TestLogNormalNegativeClampOnOverflow(t *testing.T) {
	// An extreme median/sigma combination overflows the float→Duration
	// conversion; the clamp must keep every sample non-negative rather
	// than letting wrapped values surface as negative latencies.
	m := LogNormal{Median: time.Duration(1 << 62), Sigma: 4}
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 5000; i++ {
		if d := m.Sample(r); d < 0 {
			t.Fatalf("sample %d negative: %v", i, d)
		}
	}
}

func TestLinkZeroBandwidthTransferFree(t *testing.T) {
	l := NewLink(LinkConfig{RTT: Constant{D: time.Millisecond}}) // BandwidthBps 0
	if got := l.Transfer(1 << 30); got != 0 {
		t.Fatalf("zero-bandwidth transfer of 1GiB = %v, want instantaneous", got)
	}
}
