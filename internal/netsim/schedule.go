package netsim

import (
	"fmt"
	"time"

	"gowren/internal/vclock"
)

// Phase is one scripted degradation window on a link, relative to the
// owning Schedule's epoch. The netsim links model steady-state behaviour
// (latency distributions, Bernoulli loss); phases layer the correlated,
// time-windowed events those draws cannot express — "the transatlantic
// path brownouts from t=10s to t=40s", "the region's uplink partitions for
// a minute" — so whole WAN outage scenarios replay bit-for-bit under a
// fixed seed.
type Phase struct {
	// Start and End bound the window: active when Start <= elapsed < End.
	// End must be greater than Start.
	Start, End time.Duration
	// LatencyFactor multiplies every latency sample while the window is
	// active. Values below 1 (including zero) are treated as 1.
	LatencyFactor float64
	// ExtraLatency is added to every request while the window is active.
	ExtraLatency time.Duration
	// FailureProb raises the link's failure probability to at least this
	// value while the window is active (a brownout).
	FailureProb float64
	// Partition makes every request on the link fail while the window is
	// active — a full network partition. Latency is still charged: the
	// caller observed a timeout, not an instant error.
	Partition bool
}

func (p Phase) validate() error {
	if p.End <= p.Start || p.Start < 0 {
		return fmt.Errorf("netsim: phase window [%v, %v) is empty or negative", p.Start, p.End)
	}
	if p.FailureProb < 0 || p.FailureProb > 1 {
		return fmt.Errorf("netsim: phase failure probability %v out of [0,1]", p.FailureProb)
	}
	if p.LatencyFactor < 0 {
		return fmt.Errorf("netsim: phase latency factor %v negative", p.LatencyFactor)
	}
	if p.ExtraLatency < 0 {
		return fmt.Errorf("netsim: phase extra latency %v negative", p.ExtraLatency)
	}
	return nil
}

// Schedule is a validated sequence of degradation phases anchored on a
// clock. One schedule can drive any number of links (SetSchedule), and each
// link can carry its own schedule, which is how regional outage scenarios
// compose: one schedule partitions region A's path while another inflates
// the client WAN. A nil *Schedule is inert. Schedules are immutable after
// creation and safe for concurrent use.
type Schedule struct {
	clk    vclock.Clock
	epoch  time.Time
	phases []Phase
}

// NewSchedule validates phases and anchors their windows at clk.Now().
// Overlapping windows resolve to the first matching phase in order.
func NewSchedule(clk vclock.Clock, phases []Phase) (*Schedule, error) {
	if clk == nil {
		return nil, fmt.Errorf("netsim: schedule requires a clock")
	}
	for _, p := range phases {
		if err := p.validate(); err != nil {
			return nil, err
		}
	}
	out := make([]Phase, len(phases))
	copy(out, phases)
	return &Schedule{clk: clk, epoch: clk.Now(), phases: out}, nil
}

// active returns the currently active phase, if any.
func (s *Schedule) active() (Phase, bool) {
	if s == nil {
		return Phase{}, false
	}
	elapsed := s.clk.Now().Sub(s.epoch)
	for _, p := range s.phases {
		if elapsed >= p.Start && elapsed < p.End {
			return p, true
		}
	}
	return Phase{}, false
}

// Partitioned reports whether a full-partition phase is active now.
func (s *Schedule) Partitioned() bool {
	p, ok := s.active()
	return ok && p.Partition
}

// degradeLatency applies the active phase (if any) to a base latency sample.
func (s *Schedule) degradeLatency(d time.Duration) time.Duration {
	p, ok := s.active()
	if !ok {
		return d
	}
	if p.LatencyFactor > 1 {
		d = time.Duration(float64(d) * p.LatencyFactor)
	}
	return d + p.ExtraLatency
}

// failureFloor returns the minimum failure probability imposed by the
// active phase and whether the link is fully partitioned.
func (s *Schedule) failureFloor() (prob float64, partitioned bool) {
	p, ok := s.active()
	if !ok {
		return 0, false
	}
	return p.FailureProb, p.Partition
}
