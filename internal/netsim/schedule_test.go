package netsim

import (
	"testing"
	"time"

	"gowren/internal/vclock"
)

func TestScheduleValidation(t *testing.T) {
	clk := vclock.NewVirtual()
	bad := []Phase{
		{Start: 10 * time.Second, End: 5 * time.Second},
		{Start: -time.Second, End: time.Second},
		{Start: 0, End: time.Second, FailureProb: 1.5},
		{Start: 0, End: time.Second, FailureProb: -0.1},
		{Start: 0, End: time.Second, LatencyFactor: -2},
		{Start: 0, End: time.Second, ExtraLatency: -time.Millisecond},
	}
	for i, p := range bad {
		if _, err := NewSchedule(clk, []Phase{p}); err == nil {
			t.Fatalf("phase %d (%+v) accepted, want error", i, p)
		}
	}
	if _, err := NewSchedule(nil, nil); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := NewSchedule(clk, nil); err != nil {
		t.Fatalf("empty schedule rejected: %v", err)
	}
}

func TestNilScheduleInert(t *testing.T) {
	var s *Schedule
	if s.Partitioned() {
		t.Fatal("nil schedule partitioned")
	}
	if got := s.degradeLatency(7 * time.Millisecond); got != 7*time.Millisecond {
		t.Fatalf("nil schedule changed latency: %v", got)
	}
	if prob, part := s.failureFloor(); prob != 0 || part {
		t.Fatalf("nil schedule floor = %v,%v", prob, part)
	}
}

func TestLatencyInflationWindow(t *testing.T) {
	clk := vclock.NewVirtual()
	clk.Run(func() {
		sched, err := NewSchedule(clk, []Phase{
			{Start: 10 * time.Second, End: 20 * time.Second, LatencyFactor: 3, ExtraLatency: 50 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		l := NewLink(LinkConfig{RTT: Constant{D: 100 * time.Millisecond}})
		l.SetSchedule(sched)

		if got := l.Latency(); got != 100*time.Millisecond {
			t.Fatalf("before window: latency = %v, want 100ms", got)
		}
		clk.Sleep(10 * time.Second) // t=10s: window opens
		want := 350 * time.Millisecond
		if got := l.Latency(); got != want {
			t.Fatalf("inside window: latency = %v, want %v", got, want)
		}
		d, failed := l.RequestCost(0)
		if failed || d != want {
			t.Fatalf("inside window: cost = %v failed=%v, want %v,false", d, failed, want)
		}
		clk.Sleep(10 * time.Second) // t=20s: End is exclusive
		if got := l.Latency(); got != 100*time.Millisecond {
			t.Fatalf("after window: latency = %v, want 100ms", got)
		}
	})
	clk.Wait()
}

func TestPartitionWindow(t *testing.T) {
	clk := vclock.NewVirtual()
	clk.Run(func() {
		sched, err := NewSchedule(clk, []Phase{
			{Start: 5 * time.Second, End: 15 * time.Second, Partition: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		l := NewLink(LinkConfig{RTT: Constant{D: 10 * time.Millisecond}})
		l.SetSchedule(sched)

		if _, failed := l.RequestCost(0); failed {
			t.Fatal("failed before partition window")
		}
		if l.Fail() {
			t.Fatal("Fail() true before partition window")
		}
		clk.Sleep(5 * time.Second) // t=5s: partition starts
		if !sched.Partitioned() {
			t.Fatal("schedule not partitioned at t=5s")
		}
		for i := 0; i < 50; i++ {
			d, failed := l.RequestCost(0)
			if !failed {
				t.Fatalf("request %d succeeded during partition", i)
			}
			if d < 10*time.Millisecond {
				t.Fatalf("partition dropped latency charge: %v", d)
			}
			if !l.Fail() {
				t.Fatalf("Fail() %d false during partition", i)
			}
		}
		clk.Sleep(10 * time.Second) // t=15s: partition heals
		if sched.Partitioned() {
			t.Fatal("still partitioned after window")
		}
		if _, failed := l.RequestCost(0); failed {
			t.Fatal("failed after partition healed")
		}
	})
	clk.Wait()
}

func TestBrownoutFloorsFailureProb(t *testing.T) {
	clk := vclock.NewVirtual()
	clk.Run(func() {
		sched, err := NewSchedule(clk, []Phase{
			{Start: 0, End: time.Hour, FailureProb: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		l := NewLink(LinkConfig{FailureProb: 0.01, Seed: 4})
		l.SetSchedule(sched)
		for i := 0; i < 20; i++ {
			if _, failed := l.RequestCost(0); !failed {
				t.Fatalf("request %d succeeded under prob-1 brownout", i)
			}
		}
	})
	clk.Wait()
}

func TestScheduleComposesPerLink(t *testing.T) {
	// Two links on one clock, each with its own schedule: partitioning one
	// region's path must not disturb the other.
	clk := vclock.NewVirtual()
	clk.Run(func() {
		partA, err := NewSchedule(clk, []Phase{{Start: 0, End: time.Minute, Partition: true}})
		if err != nil {
			t.Fatal(err)
		}
		slowB, err := NewSchedule(clk, []Phase{{Start: 0, End: time.Minute, LatencyFactor: 2}})
		if err != nil {
			t.Fatal(err)
		}
		a := NewLink(LinkConfig{RTT: Constant{D: time.Millisecond}})
		b := NewLink(LinkConfig{RTT: Constant{D: time.Millisecond}})
		a.SetSchedule(partA)
		b.SetSchedule(slowB)

		if _, failed := a.RequestCost(0); !failed {
			t.Fatal("link A not partitioned")
		}
		d, failed := b.RequestCost(0)
		if failed {
			t.Fatal("link B failed while only A is partitioned")
		}
		if d != 2*time.Millisecond {
			t.Fatalf("link B latency = %v, want 2ms", d)
		}
		clk.Sleep(time.Minute)
		if _, failed := a.RequestCost(0); failed {
			t.Fatal("link A still failing after its window")
		}
	})
	clk.Wait()
}

func TestOverlappingPhasesFirstWins(t *testing.T) {
	clk := vclock.NewVirtual()
	clk.Run(func() {
		sched, err := NewSchedule(clk, []Phase{
			{Start: 0, End: 10 * time.Second, ExtraLatency: time.Millisecond},
			{Start: 5 * time.Second, End: 20 * time.Second, Partition: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		clk.Sleep(7 * time.Second) // both windows active
		if sched.Partitioned() {
			t.Fatal("second phase won over first")
		}
		clk.Sleep(5 * time.Second) // t=12s: only the partition phase
		if !sched.Partitioned() {
			t.Fatal("partition phase not active at t=12s")
		}
	})
	clk.Wait()
}

func TestScheduleEpochAnchoredAtCreation(t *testing.T) {
	clk := vclock.NewVirtual()
	clk.Run(func() {
		clk.Sleep(30 * time.Second)
		sched, err := NewSchedule(clk, []Phase{{Start: 0, End: time.Second, Partition: true}})
		if err != nil {
			t.Fatal(err)
		}
		if !sched.Partitioned() {
			t.Fatal("window [0,1s) not active immediately after creation at t=30s")
		}
		clk.Sleep(time.Second)
		if sched.Partitioned() {
			t.Fatal("window still active after 1s")
		}
	})
	clk.Wait()
}
