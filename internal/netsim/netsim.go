// Package netsim models the network paths of the paper's deployment: the
// high-latency WAN between the client machine and the IBM Cloud US-south
// region, and the low-latency network inside the datacenter. Section 5.1 of
// the paper attributes the 38 s vs 8 s invocation-phase gap (Fig. 2) to
// exactly this difference, including the higher failure-and-retry rate on
// the WAN, so both latency and failures are first-class here.
//
// All randomness is drawn from an injected seed so simulations are
// reproducible run to run.
package netsim

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// LatencyModel produces per-request latency samples.
type LatencyModel interface {
	// Sample returns one latency draw using r as the randomness source.
	Sample(r *rand.Rand) time.Duration
}

// Constant is a LatencyModel that always returns D.
type Constant struct {
	D time.Duration
}

// Sample implements LatencyModel.
func (c Constant) Sample(*rand.Rand) time.Duration { return c.D }

// Uniform is a LatencyModel drawing uniformly from [Min, Max].
type Uniform struct {
	Min, Max time.Duration
}

// Sample implements LatencyModel.
func (u Uniform) Sample(r *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(r.Int63n(int64(u.Max-u.Min)+1))
}

// LogNormal is a LatencyModel with a lognormal distribution, the shape
// commonly measured for WAN round-trip times: most samples near the median
// with a heavy tail of slow requests.
type LogNormal struct {
	Median time.Duration // exp(mu)
	Sigma  float64       // sigma of the underlying normal
	Cap    time.Duration // optional upper clamp; zero means none
}

// Sample implements LatencyModel.
func (l LogNormal) Sample(r *rand.Rand) time.Duration {
	mu := math.Log(float64(l.Median))
	d := time.Duration(math.Exp(mu + l.Sigma*r.NormFloat64()))
	if l.Cap > 0 && d > l.Cap {
		d = l.Cap
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Link models one directional network path: per-request round-trip latency,
// a fixed per-request service overhead, payload transfer time at a given
// bandwidth, and a request failure probability. An optional Schedule layers
// scripted degradation windows (latency inflation, brownouts, full
// partitions) on top of the steady-state model.
type Link struct {
	mu sync.Mutex

	rtt         LatencyModel
	perRequest  time.Duration
	bandwidth   float64 // bytes per second; 0 means infinite
	failureProb float64
	rng         *rand.Rand
	sched       *Schedule // nil means no scripted degradation
}

// LinkConfig configures a Link.
type LinkConfig struct {
	RTT          LatencyModel  // round-trip latency model; nil means zero latency
	PerRequest   time.Duration // fixed service overhead added to every request
	BandwidthBps float64       // payload bytes/second; 0 disables transfer cost
	FailureProb  float64       // probability in [0,1] that a request fails
	Seed         int64         // PRNG seed; the zero seed is valid and deterministic
}

// NewLink returns a Link with the given configuration.
func NewLink(cfg LinkConfig) *Link {
	rtt := cfg.RTT
	if rtt == nil {
		rtt = Constant{}
	}
	return &Link{
		rtt:         rtt,
		perRequest:  cfg.PerRequest,
		bandwidth:   cfg.BandwidthBps,
		failureProb: cfg.FailureProb,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
	}
}

// SetSchedule attaches a scripted degradation schedule to the link. All
// subsequent requests consult it: latency samples are inflated, the failure
// probability is floored, and partition phases fail every request. A nil
// schedule restores steady-state behaviour. Attach schedules at wiring
// time, before traffic flows.
func (l *Link) SetSchedule(s *Schedule) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sched = s
}

// Schedule returns the attached degradation schedule, or nil.
func (l *Link) Schedule() *Schedule {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sched
}

// RequestCost returns the simulated duration of one request carrying
// payloadBytes, and whether the request fails. A failing request still
// consumes its duration (the caller observed a timeout or error response).
func (l *Link) RequestCost(payloadBytes int64) (time.Duration, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	d := l.sched.degradeLatency(l.rtt.Sample(l.rng) + l.perRequest)
	if l.bandwidth > 0 && payloadBytes > 0 {
		d += time.Duration(float64(payloadBytes) / l.bandwidth * float64(time.Second))
	}
	floor, partitioned := l.sched.failureFloor()
	if partitioned {
		return d, true
	}
	prob := l.failureProb
	if floor > prob {
		prob = floor
	}
	fail := prob > 0 && l.rng.Float64() < prob
	return d, fail
}

// Latency returns one latency-only sample (no payload, no failure draw).
func (l *Link) Latency() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sched.degradeLatency(l.rtt.Sample(l.rng) + l.perRequest)
}

// Transfer returns the time to move payloadBytes across the link, excluding
// per-request latency. Zero-bandwidth links transfer instantaneously.
func (l *Link) Transfer(payloadBytes int64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.bandwidth <= 0 || payloadBytes <= 0 {
		return 0
	}
	return time.Duration(float64(payloadBytes) / l.bandwidth * float64(time.Second))
}

// Fail draws one failure decision for a request on this link.
func (l *Link) Fail() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	floor, partitioned := l.sched.failureFloor()
	if partitioned {
		return true
	}
	prob := l.failureProb
	if floor > prob {
		prob = floor
	}
	if prob <= 0 {
		return false
	}
	return l.rng.Float64() < prob
}

// Profiles for the two paths in the paper's testbed. Constants are
// calibrated in internal/experiments/calibration.go; these are the
// documented defaults.

// WAN returns a link profile for a client in a remote high-latency network
// (the paper's client: an Intel Core i5 laptop far from US-south).
func WAN(seed int64) *Link {
	return NewLink(LinkConfig{
		RTT:          LogNormal{Median: 240 * time.Millisecond, Sigma: 0.35, Cap: 3 * time.Second},
		PerRequest:   60 * time.Millisecond,
		BandwidthBps: 4 << 20, // 4 MiB/s effective upload
		FailureProb:  0.08,
		Seed:         seed,
	})
}

// WANStorage returns the client-to-COS path from the same remote network.
// Object-storage endpoints sustain lower per-request overhead than the
// Cloud Functions API gateway (connection reuse, no action dispatch), which
// is why the paper's invocation phase — not payload staging — dominates the
// remote client's costs.
func WANStorage(seed int64) *Link {
	return NewLink(LinkConfig{
		RTT:          LogNormal{Median: 120 * time.Millisecond, Sigma: 0.25, Cap: 1500 * time.Millisecond},
		PerRequest:   30 * time.Millisecond,
		BandwidthBps: 6 << 20, // 6 MiB/s effective
		FailureProb:  0.02,
		Seed:         seed,
	})
}

// InCloud returns a link profile for traffic inside the datacenter
// (function containers to COS, remote invoker to the controller).
func InCloud(seed int64) *Link {
	return NewLink(LinkConfig{
		RTT:          Uniform{Min: 500 * time.Microsecond, Max: 2 * time.Millisecond},
		PerRequest:   time.Millisecond,
		BandwidthBps: 100 << 20, // 100 MiB/s
		FailureProb:  0.001,
		Seed:         seed,
	})
}

// MemoryTier returns a link profile for the in-memory exchange cache node
// (a Redis-like instance in the same availability zone as the function
// containers): sub-millisecond round trips, negligible service overhead,
// and roughly an order of magnitude more per-connection bandwidth than the
// shared COS frontend. This gap — not a different protocol — is what the
// fast shuffle tier buys.
func MemoryTier(seed int64) *Link {
	return NewLink(LinkConfig{
		RTT:          Uniform{Min: 100 * time.Microsecond, Max: 300 * time.Microsecond},
		PerRequest:   50 * time.Microsecond,
		BandwidthBps: 1 << 30, // 1 GiB/s
		FailureProb:  0.0005,
		Seed:         seed,
	})
}

// PeerToPeer returns a link profile for direct container-to-container
// transfer inside the datacenter fabric (a reducer pulling a partition
// straight from the map activation that produced it).
func PeerToPeer(seed int64) *Link {
	return NewLink(LinkConfig{
		RTT:          Uniform{Min: 100 * time.Microsecond, Max: 400 * time.Microsecond},
		PerRequest:   100 * time.Microsecond,
		BandwidthBps: 1 << 30, // 1 GiB/s, in-rack
		FailureProb:  0.0005,
		Seed:         seed,
	})
}

// Loopback returns a link with no latency, no failures and infinite
// bandwidth, for unit tests that do not exercise the network model.
func Loopback() *Link {
	return NewLink(LinkConfig{})
}
