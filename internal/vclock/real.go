package vclock

import (
	"sync"
	"time"
)

// Real is a Clock backed by the time package. Its zero value is ready to use.
type Real struct {
	wg sync.WaitGroup
}

var _ Clock = (*Real)(nil)

// NewReal returns a wall-clock Clock.
func NewReal() *Real { return &Real{} }

// Now returns the current wall-clock time.
func (r *Real) Now() time.Time { return time.Now() }

// Sleep pauses the calling goroutine for d.
func (r *Real) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(d)
}

// Go runs fn in a new goroutine tracked by Wait.
func (r *Real) Go(fn func()) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		fn()
	}()
}

// Wait blocks until all goroutines started with Go have returned.
func (r *Real) Wait() { r.wg.Wait() }
