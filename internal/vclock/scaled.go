package vclock

import (
	"sync"
	"time"
)

// Scaled is a real-time Clock that runs faster (or slower) than the wall
// clock by a constant factor: Sleep(d) blocks for d/factor of wall time and
// Now advances factor seconds per wall second. It keeps interactive runs
// responsive while model costs (cold starts, compute charges) remain
// expressed in realistic durations — a middle ground between the wall
// clock and the discrete-event Virtual clock.
type Scaled struct {
	factor float64
	start  time.Time // wall instant of epoch
	epoch  time.Time // reported instant at start
	wg     sync.WaitGroup
}

var _ Clock = (*Scaled)(nil)

// NewScaled returns a clock running factor× wall speed. Factors <= 0 are
// treated as 1.
func NewScaled(factor float64) *Scaled {
	if factor <= 0 {
		factor = 1
	}
	now := time.Now()
	return &Scaled{factor: factor, start: now, epoch: now}
}

// Factor returns the acceleration factor.
func (s *Scaled) Factor() float64 { return s.factor }

// Now returns the scaled time: epoch + wallElapsed × factor.
func (s *Scaled) Now() time.Time {
	wall := time.Since(s.start)
	return s.epoch.Add(time.Duration(float64(wall) * s.factor))
}

// Sleep blocks for d of scaled time (d/factor of wall time).
func (s *Scaled) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(d) / s.factor))
}

// Go runs fn in a goroutine tracked by Wait.
func (s *Scaled) Go(fn func()) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		fn()
	}()
}

// Wait blocks until all goroutines started with Go have returned.
func (s *Scaled) Wait() { s.wg.Wait() }
