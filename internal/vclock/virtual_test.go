package vclock

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualSingleSleepAdvances(t *testing.T) {
	clk := NewVirtual()
	start := clk.Now()
	clk.Run(func() {
		clk.Sleep(50 * time.Second)
	})
	if got := clk.Now().Sub(start); got != 50*time.Second {
		t.Fatalf("elapsed = %v, want 50s", got)
	}
}

func TestVirtualSleepZeroOrNegativeReturns(t *testing.T) {
	clk := NewVirtual()
	start := clk.Now()
	clk.Run(func() {
		clk.Sleep(0)
		clk.Sleep(-time.Hour)
	})
	if !clk.Now().Equal(start) {
		t.Fatalf("time advanced on non-positive sleep: %v", clk.Now().Sub(start))
	}
}

func TestVirtualConcurrentSleepsOverlap(t *testing.T) {
	// 1000 tasks each sleeping 60s concurrently must take 60s of simulated
	// time total, not 1000*60s.
	clk := NewVirtual()
	start := clk.Now()
	clk.Run(func() {
		for i := 0; i < 1000; i++ {
			clk.Go(func() { clk.Sleep(60 * time.Second) })
		}
	})
	if got := clk.Now().Sub(start); got != 60*time.Second {
		t.Fatalf("elapsed = %v, want 60s", got)
	}
}

func TestVirtualStaggeredWakeOrder(t *testing.T) {
	clk := NewVirtual()
	var mu sync.Mutex
	var order []int
	clk.Run(func() {
		for i := 5; i >= 1; i-- {
			d := time.Duration(i) * time.Second
			idx := i
			clk.Go(func() {
				clk.Sleep(d)
				mu.Lock()
				order = append(order, idx)
				mu.Unlock()
			})
		}
	})
	if len(order) != 5 {
		t.Fatalf("got %d wakes, want 5", len(order))
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("wake order = %v, want ascending 1..5", order)
		}
	}
}

func TestVirtualNowMonotonicUnderRandomSleeps(t *testing.T) {
	clk := NewVirtual()
	rng := rand.New(rand.NewSource(42))
	var mu sync.Mutex
	var stamps []time.Time
	durations := make([][]time.Duration, 20)
	for i := range durations {
		for j := 0; j < 10; j++ {
			durations[i] = append(durations[i], time.Duration(rng.Intn(5000))*time.Millisecond)
		}
	}
	clk.Run(func() {
		for i := 0; i < 20; i++ {
			ds := durations[i]
			clk.Go(func() {
				for _, d := range ds {
					clk.Sleep(d)
					now := clk.Now()
					mu.Lock()
					stamps = append(stamps, now)
					mu.Unlock()
				}
			})
		}
	})
	if !sort.SliceIsSorted(stamps, func(i, j int) bool { return stamps[i].Before(stamps[j]) }) {
		// Equal timestamps are fine; only strict regressions are bugs.
		for i := 1; i < len(stamps); i++ {
			if stamps[i].Before(stamps[i-1]) {
				t.Fatalf("time went backwards: %v then %v", stamps[i-1], stamps[i])
			}
		}
	}
}

func TestVirtualNestedSpawn(t *testing.T) {
	// A task that spawns children mid-simulation; total time is the critical
	// path: 10s parent + 20s child = 30s.
	clk := NewVirtual()
	start := clk.Now()
	var childDone atomic.Bool
	clk.Run(func() {
		clk.Sleep(10 * time.Second)
		clk.Go(func() {
			clk.Sleep(20 * time.Second)
			childDone.Store(true)
		})
	})
	if !childDone.Load() {
		t.Fatal("child task did not complete")
	}
	if got := clk.Now().Sub(start); got != 30*time.Second {
		t.Fatalf("elapsed = %v, want 30s", got)
	}
}

func TestVirtualPollObservesSharedState(t *testing.T) {
	clk := NewVirtual()
	var ready atomic.Bool
	var sawAt time.Duration
	start := clk.Now()
	clk.Run(func() {
		clk.Go(func() {
			clk.Sleep(7 * time.Second)
			ready.Store(true)
		})
		clk.Go(func() {
			if !Poll(clk, ready.Load, 100*time.Millisecond, time.Time{}) {
				t.Error("poll returned false without deadline")
				return
			}
			sawAt = clk.Now().Sub(start)
		})
	})
	if sawAt < 7*time.Second || sawAt > 8*time.Second {
		t.Fatalf("poll observed readiness at %v, want within [7s,8s]", sawAt)
	}
}

func TestVirtualPollDeadline(t *testing.T) {
	clk := NewVirtual()
	var ok bool
	start := clk.Now()
	clk.Run(func() {
		ok = Poll(clk, func() bool { return false }, time.Second, start.Add(5*time.Second))
	})
	if ok {
		t.Fatal("poll succeeded on always-false predicate")
	}
	if got := clk.Now().Sub(start); got < 5*time.Second || got > 6*time.Second {
		t.Fatalf("poll gave up at %v, want ~5s", got)
	}
}

func TestVirtualDeterministic(t *testing.T) {
	run := func() (time.Duration, int) {
		clk := NewVirtual()
		start := clk.Now()
		var wakes atomic.Int64
		clk.Run(func() {
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 50; i++ {
				d := time.Duration(rng.Intn(10000)) * time.Millisecond
				clk.Go(func() {
					clk.Sleep(d)
					wakes.Add(1)
				})
			}
		})
		return clk.Now().Sub(start), int(wakes.Load())
	}
	e1, n1 := run()
	e2, n2 := run()
	if e1 != e2 || n1 != n2 {
		t.Fatalf("runs differ: (%v,%d) vs (%v,%d)", e1, n1, e2, n2)
	}
}

func TestVirtualElapsedEqualsMaxSleepProperty(t *testing.T) {
	// Property: for k concurrent tasks each doing one sleep, elapsed
	// simulated time equals the maximum requested duration.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		clk := NewVirtual()
		start := clk.Now()
		var want time.Duration
		clk.Run(func() {
			for _, r := range raw {
				d := time.Duration(r) * time.Millisecond
				if d > want {
					want = d
				}
				clk.Go(func() { clk.Sleep(d) })
			}
		})
		return clk.Now().Sub(start) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRealClockBasics(t *testing.T) {
	clk := NewReal()
	start := clk.Now()
	var ran atomic.Bool
	clk.Go(func() {
		clk.Sleep(10 * time.Millisecond)
		ran.Store(true)
	})
	clk.Wait()
	if !ran.Load() {
		t.Fatal("task did not run")
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("elapsed %v < sleep duration", elapsed)
	}
	if Since(clk, start) < 10*time.Millisecond {
		t.Fatal("Since helper disagrees")
	}
}

func TestWatchdogDetectsStuckSimulation(t *testing.T) {
	clk := NewVirtual()
	reported := make(chan WatchdogReport, 1)
	stop := clk.StartWatchdog(5*time.Millisecond, func(r WatchdogReport) {
		reported <- r
	})
	defer stop()

	release := make(chan struct{})
	go func() {
		// Deliberately violate the contract: block a registered task on a
		// bare channel with nothing else runnable.
		clk.Run(func() {
			<-release
		})
	}()
	select {
	case r := <-reported:
		if r.Tasks != 1 || r.Sleepers != 0 {
			t.Fatalf("report = %+v", r)
		}
		if r.String() == "" {
			t.Fatal("empty report string")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never fired")
	}
	close(release)
}

func TestWatchdogQuietOnHealthySimulation(t *testing.T) {
	clk := NewVirtual()
	fired := make(chan struct{}, 1)
	stop := clk.StartWatchdog(2*time.Millisecond, func(WatchdogReport) {
		fired <- struct{}{}
	})
	defer stop()
	clk.Run(func() {
		for i := 0; i < 50; i++ {
			clk.Sleep(time.Second)
		}
	})
	// Give the watchdog a few intervals to (incorrectly) trip.
	time.Sleep(20 * time.Millisecond)
	select {
	case <-fired:
		t.Fatal("watchdog fired on a healthy simulation")
	default:
	}
}

func TestWatchdogStopIdempotent(t *testing.T) {
	clk := NewVirtual()
	stop := clk.StartWatchdog(time.Millisecond, func(WatchdogReport) {})
	stop()
	stop()
}

func TestScaledClockAccelerates(t *testing.T) {
	clk := NewScaled(100)
	if clk.Factor() != 100 {
		t.Fatalf("factor = %v", clk.Factor())
	}
	wallStart := time.Now()
	simStart := clk.Now()
	var ran atomic.Bool
	clk.Go(func() {
		clk.Sleep(time.Second) // 10ms of wall time at 100x
		ran.Store(true)
	})
	clk.Wait()
	if !ran.Load() {
		t.Fatal("task did not run")
	}
	wall := time.Since(wallStart)
	if wall > 500*time.Millisecond {
		t.Fatalf("1s scaled sleep took %v wall", wall)
	}
	if sim := clk.Now().Sub(simStart); sim < time.Second {
		t.Fatalf("scaled Now advanced only %v for a 1s sleep", sim)
	}
	clk.Sleep(0)
	clk.Sleep(-time.Minute) // non-positive returns immediately
}

func TestScaledClockDegenerateFactor(t *testing.T) {
	if got := NewScaled(0).Factor(); got != 1 {
		t.Fatalf("factor = %v, want clamp to 1", got)
	}
	if got := NewScaled(-3).Factor(); got != 1 {
		t.Fatalf("factor = %v, want clamp to 1", got)
	}
}

func TestVirtualStressManyTasks(t *testing.T) {
	// 5,000 interleaved tasks with mixed sleeps: exercises the heap and
	// the advance logic at experiment scale.
	clk := NewVirtual()
	start := clk.Now()
	var done atomic.Int64
	clk.Run(func() {
		for i := 0; i < 5000; i++ {
			d := time.Duration(i%97+1) * 100 * time.Millisecond
			clk.Go(func() {
				clk.Sleep(d)
				clk.Sleep(d / 2)
				done.Add(1)
			})
		}
	})
	if done.Load() != 5000 {
		t.Fatalf("done = %d", done.Load())
	}
	want := time.Duration(97) * 100 * time.Millisecond * 3 / 2
	if got := clk.Now().Sub(start); got != want {
		t.Fatalf("elapsed = %v, want %v (longest task)", got, want)
	}
}
