// Package vclock provides the time substrate for GoWren's simulated cloud.
//
// Two implementations of the Clock interface are provided:
//
//   - Real: thin wrapper over the time package. Used by examples and
//     integration tests that run at small scale in wall-clock time.
//   - Virtual: a cooperative discrete-event clock. Time advances only when
//     every registered task is blocked in a clock primitive, which lets the
//     experiment harnesses simulate thousands of concurrent multi-minute
//     serverless functions in milliseconds of wall time.
//
// The contract for Virtual is that all concurrency is created through
// Clock.Go and all blocking goes through Clock.Sleep (directly or via the
// Poll helper). Real CPU work performed between clock calls is
// "instantaneous" in simulated time; simulated durations (compute models,
// network latency, cold starts) are charged explicitly with Sleep.
package vclock

import "time"

// Clock abstracts time and task creation so the same system code can run in
// wall-clock or simulated time.
type Clock interface {
	// Now returns the current (possibly simulated) time.
	Now() time.Time

	// Sleep blocks the calling task for d. Non-positive durations return
	// immediately.
	Sleep(d time.Duration)

	// Go starts fn as a task registered with the clock. On the virtual
	// clock, registration is what allows time to advance while fn blocks;
	// tasks must therefore never block outside clock primitives.
	Go(fn func())

	// Wait blocks the caller (in real time) until every task started with
	// Go has returned.
	Wait()
}

// Since returns the time elapsed on c since t.
func Since(c Clock, t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// Poll calls pred repeatedly, sleeping interval between attempts, until pred
// returns true or the deadline (zero means none) passes. It reports whether
// pred succeeded. On a virtual clock polling is essentially free; interval
// only sets the granularity at which simulated time advances.
func Poll(c Clock, pred func() bool, interval time.Duration, deadline time.Time) bool {
	if interval <= 0 {
		interval = time.Millisecond
	}
	for {
		if pred() {
			return true
		}
		if !deadline.IsZero() && !c.Now().Before(deadline) {
			return false
		}
		c.Sleep(interval)
	}
}
