package vclock

import (
	"sync"
	"testing"
	"time"
)

// TestEventSignalWakesWaiter checks the basic park/signal round trip on a
// Virtual clock: the waiter blocks in simulated time until Signal lands.
func TestEventSignalWakesWaiter(t *testing.T) {
	clk := NewVirtual()
	evt := NewEvent(clk)
	var mu sync.Mutex
	ready := false
	var waited time.Duration
	clk.Run(func() {
		start := clk.Now()
		clk.Go(func() {
			ok := evt.WaitFor(func() bool {
				mu.Lock()
				defer mu.Unlock()
				return ready
			}, time.Time{})
			if !ok {
				t.Error("WaitFor with no deadline returned false")
			}
			waited = clk.Now().Sub(start)
		})
		clk.Sleep(3 * time.Second)
		mu.Lock()
		ready = true
		mu.Unlock()
		evt.Signal()
	})
	if waited != 3*time.Second {
		t.Fatalf("waiter woke after %v of simulated time, want 3s (the signal instant)", waited)
	}
}

// TestEventWaitDeadline checks that a timed wait gives up at its virtual
// deadline and reports pred's final answer.
func TestEventWaitDeadline(t *testing.T) {
	clk := NewVirtual()
	evt := NewEvent(clk)
	var elapsed time.Duration
	var ok bool
	clk.Run(func() {
		start := clk.Now()
		ok = evt.WaitFor(func() bool { return false }, start.Add(250*time.Millisecond))
		elapsed = clk.Now().Sub(start)
	})
	if ok {
		t.Fatal("WaitFor returned true though pred never held")
	}
	if elapsed != 250*time.Millisecond {
		t.Fatalf("gave up after %v of simulated time, want exactly 250ms", elapsed)
	}
}

// TestEventGenClosesRace checks the generation protocol: a Signal that
// lands between the Gen snapshot and the Wait call makes Wait return true
// immediately instead of parking forever.
func TestEventGenClosesRace(t *testing.T) {
	clk := NewVirtual()
	evt := NewEvent(clk)
	clk.Run(func() {
		gen := evt.Gen()
		evt.Signal() // lands before the park
		if !evt.Wait(gen, time.Time{}) {
			t.Error("Wait missed a Signal that preceded it")
		}
	})
}

// TestEventWaitExpiredDeadline checks that a deadline at or before now
// returns false without blocking.
func TestEventWaitExpiredDeadline(t *testing.T) {
	clk := NewVirtual()
	evt := NewEvent(clk)
	clk.Run(func() {
		if evt.Wait(evt.Gen(), clk.Now()) {
			t.Error("Wait(deadline=now) reported a signal")
		}
		if evt.Wait(evt.Gen(), clk.Now().Add(-time.Second)) {
			t.Error("Wait(past deadline) reported a signal")
		}
	})
}

// TestEventSignalWakesAllWaiters checks broadcast semantics: every parked
// waiter is released by one Signal, at the same simulated instant.
func TestEventSignalWakesAllWaiters(t *testing.T) {
	const waiters = 32
	clk := NewVirtual()
	evt := NewEvent(clk)
	var mu sync.Mutex
	done := false
	wakes := make([]time.Time, 0, waiters)
	clk.Run(func() {
		for i := 0; i < waiters; i++ {
			clk.Go(func() {
				evt.WaitFor(func() bool {
					mu.Lock()
					defer mu.Unlock()
					return done
				}, time.Time{})
				mu.Lock()
				wakes = append(wakes, clk.Now())
				mu.Unlock()
			})
		}
		clk.Sleep(time.Second)
		mu.Lock()
		done = true
		mu.Unlock()
		evt.Signal()
	})
	if len(wakes) != waiters {
		t.Fatalf("%d of %d waiters woke", len(wakes), waiters)
	}
	for i, at := range wakes {
		if at != wakes[0] {
			t.Fatalf("waiter %d woke at %v, first at %v — not one broadcast instant", i, at, wakes[0])
		}
	}
}

// TestEventSignalThenDeadline checks the double-waker interaction: a timed
// waiter signalled before its deadline reports the signal, and the stale
// heap entry firing later must not corrupt scheduler accounting. The
// trailing sleeps exercise the post-deadline bookkeeping.
func TestEventSignalThenDeadline(t *testing.T) {
	clk := NewVirtual()
	evt := NewEvent(clk)
	var mu sync.Mutex
	flag := false
	clk.Run(func() {
		start := clk.Now()
		clk.Go(func() {
			ok := evt.WaitFor(func() bool {
				mu.Lock()
				defer mu.Unlock()
				return flag
			}, start.Add(10*time.Second))
			if !ok {
				t.Error("signalled waiter reported deadline expiry")
			}
			if got := clk.Now().Sub(start); got != time.Second {
				t.Errorf("woke after %v, want 1s (the signal instant)", got)
			}
		})
		clk.Sleep(time.Second)
		mu.Lock()
		flag = true
		mu.Unlock()
		evt.Signal()
		// Sleep past the abandoned deadline entry so it fires and is
		// discarded while this test still owns the clock.
		clk.Sleep(15 * time.Second)
	})
}

// TestEventPollFallback checks that a non-Virtual clock degrades to polling
// with the same semantics.
func TestEventPollFallback(t *testing.T) {
	clk := NewScaled(1000) // fast real-time clock
	evt := NewEvent(clk)
	var mu sync.Mutex
	ready := false
	doneCh := make(chan bool, 1)
	clk.Go(func() {
		doneCh <- evt.WaitFor(func() bool {
			mu.Lock()
			defer mu.Unlock()
			return ready
		}, time.Time{})
	})
	clk.Go(func() {
		clk.Sleep(50 * time.Millisecond)
		mu.Lock()
		ready = true
		mu.Unlock()
		evt.Signal()
	})
	clk.Wait()
	if ok := <-doneCh; !ok {
		t.Fatal("fallback WaitFor returned false")
	}
}

// TestEventWaitDeterministic runs a contended signal/wait mix twice and
// requires identical simulated completion times — the determinism contract
// the rest of the simulator builds on.
func TestEventWaitDeterministic(t *testing.T) {
	runOnce := func() time.Duration {
		clk := NewVirtual()
		evt := NewEvent(clk)
		var mu sync.Mutex
		count := 0
		var elapsed time.Duration
		clk.Run(func() {
			start := clk.Now()
			for i := 0; i < 8; i++ {
				step := time.Duration(i+1) * 100 * time.Millisecond
				clk.Go(func() {
					clk.Sleep(step)
					mu.Lock()
					count++
					mu.Unlock()
					evt.Signal()
				})
			}
			evt.WaitFor(func() bool {
				mu.Lock()
				defer mu.Unlock()
				return count == 8
			}, time.Time{})
			elapsed = clk.Now().Sub(start)
		})
		return elapsed
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("same scenario finished at %v then %v — not deterministic", a, b)
	}
	if a != 800*time.Millisecond {
		t.Fatalf("finished at %v, want 800ms (the slowest signaller)", a)
	}
}
