package vclock

import (
	"testing"
	"time"
)

// BenchmarkVirtualSleep measures the scheduler's innermost loop: one task
// sleeping repeatedly, each sleep a park, an advance, and a wake.
func BenchmarkVirtualSleep(b *testing.B) {
	clk := NewVirtual()
	clk.Run(func() {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clk.Sleep(time.Millisecond)
		}
	})
}

// BenchmarkVirtualSleepFanout measures batch release: many tasks asleep at
// once with interleaved wake instants, the shape of a loaded simulation.
func BenchmarkVirtualSleepFanout(b *testing.B) {
	const tasks = 64
	clk := NewVirtual()
	clk.Run(func() {
		b.ResetTimer()
		per := b.N/tasks + 1
		for t := 0; t < tasks; t++ {
			d := time.Duration(t+1) * 100 * time.Microsecond
			clk.Go(func() {
				for i := 0; i < per; i++ {
					clk.Sleep(d)
				}
			})
		}
	})
}

// BenchmarkVirtualGo measures task spawn/exit accounting.
func BenchmarkVirtualGo(b *testing.B) {
	clk := NewVirtual()
	clk.Run(func() {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clk.Go(func() {})
		}
	})
	clk.Wait()
}

// BenchmarkEventSignalWait measures the event primitive round trip: one
// waiter parked, one signaller flipping it awake.
func BenchmarkEventSignalWait(b *testing.B) {
	clk := NewVirtual()
	evt := NewEvent(clk)
	clk.Run(func() {
		var turn int
		b.ResetTimer()
		clk.Go(func() {
			for i := 0; i < b.N; i++ {
				evt.WaitFor(func() bool { return turn > i }, time.Time{})
			}
		})
		for i := 0; i < b.N; i++ {
			turn++
			evt.Signal()
			clk.Sleep(time.Microsecond)
		}
	})
}

// TestSleepSteadyStateAllocs pins the pooled-parker guarantee: once the
// free list is warm, Sleep on a Virtual clock performs zero heap
// allocations per call. A regression here silently reintroduces the
// per-sleep channel allocation the hot-path overhaul removed.
func TestSleepSteadyStateAllocs(t *testing.T) {
	clk := NewVirtual()
	clk.Run(func() {
		// Warm the parker free list past any startup growth.
		for i := 0; i < 64; i++ {
			clk.Sleep(time.Millisecond)
		}
		avg := testing.AllocsPerRun(200, func() {
			clk.Sleep(time.Millisecond)
		})
		if avg != 0 {
			t.Fatalf("steady-state Sleep allocates %.1f objects per call, want 0", avg)
		}
	})
}
