package vclock

import (
	"sync"
	"time"
)

// Event is the clock's event-driven wait primitive: tasks block in Wait (or
// the WaitFor convenience loop) until another goroutine calls Signal, with
// an optional virtual-time deadline. On a Virtual clock a waiter costs O(1)
// scheduler events — park once, wake once — where the Poll helper costs one
// scheduler event per tick for the whole wait. Code that today spins on the
// clock waiting for shared state another task flips (admission queues,
// worker-pool barriers, sweep followers) should signal that flip instead.
//
// The generation protocol makes waits lost-wakeup-free without holding any
// lock across the predicate: snapshot Gen, check the predicate, then
// Wait(gen, ...) — a Signal that lands between the snapshot and the park
// returns immediately instead of being missed.
//
// Signal may be called from any goroutine. Wait and WaitFor must be called
// from a registered task (they block on the clock). On non-Virtual clocks
// the primitive degrades to polling at a small fixed interval, preserving
// semantics for real-time and scaled runs.
type Event struct {
	v *Virtual // nil selects the polling fallback

	// Fallback state; gen is guarded by v.mu when v != nil, by mu below
	// otherwise.
	c  Clock
	mu sync.Mutex

	gen     uint64
	waiters []*parker // native mode, guarded by v.mu
}

// eventPollInterval is the polling granularity of the non-Virtual fallback.
const eventPollInterval = time.Millisecond

// NewEvent returns an Event bound to c. Virtual clocks get the native
// event-driven implementation; any other Clock gets a polling fallback.
func NewEvent(c Clock) *Event {
	e := &Event{c: c}
	if v, ok := c.(*Virtual); ok {
		e.v = v
	}
	return e
}

// Gen returns the signal generation: it increments on every Signal. Pair it
// with Wait to close the check-then-block race.
func (e *Event) Gen() uint64 {
	if e.v != nil {
		e.v.mu.Lock()
		defer e.v.mu.Unlock()
		return e.gen
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.gen
}

// Signal wakes every waiter parked on the event and advances the
// generation so concurrent Wait(gen, ...) callers do not park at all.
// It never blocks.
func (e *Event) Signal() {
	if e.v == nil {
		e.mu.Lock()
		e.gen++
		e.mu.Unlock()
		return
	}
	v := e.v
	v.mu.Lock()
	e.gen++
	for i, p := range e.waiters {
		e.waiters[i] = nil
		if p.woken {
			continue // already released by its deadline
		}
		p.woken = true
		p.signaled = true
		v.parked--
		v.active++
		v.events++
		p.ch <- struct{}{} //gowren:allow lockhold — cap-1 parker channel with exactly one send per wake; never blocks
	}
	e.waiters = e.waiters[:0]
	v.mu.Unlock()
}

// Wait blocks the calling task until the event is signalled past gen or
// the (virtual-time) deadline passes; a zero deadline means no deadline.
// It reports whether the wake-up was a signal. A Signal that happened
// after the Gen() snapshot but before Wait returns true immediately.
func (e *Event) Wait(gen uint64, deadline time.Time) bool {
	if e.v == nil {
		return Poll(e.c, func() bool { return e.Gen() != gen }, eventPollInterval, deadline)
	}
	v := e.v
	v.mu.Lock()
	if e.gen != gen {
		v.mu.Unlock()
		return true
	}
	timed := !deadline.IsZero()
	var wakeNS int64
	if timed {
		wakeNS = int64(deadline.Sub(v.epoch))
		if wakeNS <= v.offset.Load() {
			v.mu.Unlock()
			return false
		}
	}
	// Event waiters get a fresh parker: a timed waiter has two potential
	// wakers (Signal and its deadline group), and the loser of that race
	// still holds a reference after the wait returns, so the parker cannot
	// be recycled the way Sleep's are. Compact previously released
	// waiters while appending so an often-timed-out event list stays
	// short.
	kept := e.waiters[:0]
	for _, w := range e.waiters {
		if !w.woken {
			kept = append(kept, w)
		}
	}
	p := &parker{ch: make(chan struct{}, 1)}
	e.waiters = append(kept, p)
	if timed {
		v.enqueueLocked(wakeNS, p)
	} else {
		v.parked++
	}
	v.active--
	v.events++
	v.maybeAdvanceLocked()
	v.mu.Unlock()
	<-p.ch
	return p.signaled
}

// WaitFor blocks until pred reports true, rechecking on every signal, or
// until the deadline (zero means none) passes; it returns pred's final
// answer. pred runs without event-internal locks held and may itself
// block on the clock.
func (e *Event) WaitFor(pred func() bool, deadline time.Time) bool {
	for {
		gen := e.Gen()
		if pred() {
			return true
		}
		if !e.Wait(gen, deadline) {
			return pred()
		}
	}
}
