package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Virtual is a cooperative discrete-event clock. Tasks are registered with
// Go; simulated time advances to the earliest pending wake-up whenever every
// registered task is blocked in Sleep. CPU work performed by tasks between
// clock calls consumes no simulated time.
//
// Rules for correctness (enforced by convention across GoWren's internals):
//
//   - every goroutine that participates in the simulation is started via Go
//     (directly or transitively from a task);
//   - tasks block only via Sleep / Poll, never on bare channels or mutexes
//     held across simulated time.
//
// Shared state protected by mutexes is fine as long as critical sections do
// not block on the clock.
type Virtual struct {
	mu       sync.Mutex
	now      time.Time
	active   int    // registered tasks currently runnable
	tasks    int    // registered tasks alive (runnable, sleeping, or blocked)
	events   uint64 // scheduler progress counter (sleeps, wakes, spawns, exits)
	sleepers sleepQueue
	seq      uint64
	wg       sync.WaitGroup
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a Virtual clock starting at epoch. A fixed, non-zero
// epoch keeps timestamps deterministic across runs.
func NewVirtual() *Virtual {
	return NewVirtualAt(time.Date(2018, time.December, 10, 0, 0, 0, 0, time.UTC))
}

// NewVirtualAt returns a Virtual clock starting at epoch.
func NewVirtualAt(epoch time.Time) *Virtual {
	return &Virtual{now: epoch}
}

// Now returns the current simulated time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep blocks the calling task for d of simulated time. It must be called
// from a task started with Go (or Run); calling it from an unregistered
// goroutine corrupts the runnable-task accounting.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	s := &sleeper{wake: v.now.Add(d), seq: v.seq, ch: make(chan struct{})}
	v.seq++
	v.events++
	heap.Push(&v.sleepers, s)
	v.active--
	v.maybeAdvanceLocked()
	v.mu.Unlock()
	<-s.ch
}

// Go starts fn as a registered simulation task.
func (v *Virtual) Go(fn func()) {
	v.mu.Lock()
	v.active++
	v.tasks++
	v.events++
	v.mu.Unlock()
	v.wg.Add(1)
	go func() {
		defer func() {
			v.mu.Lock()
			v.active--
			v.tasks--
			v.events++
			v.maybeAdvanceLocked()
			v.mu.Unlock()
			v.wg.Done()
		}()
		fn()
	}()
}

// Wait blocks the caller in real time until every task has returned.
func (v *Virtual) Wait() { v.wg.Wait() }

// Run starts fn as the root task and blocks until fn and every task it
// spawned (transitively) have returned. It is the usual entry point for a
// simulation:
//
//	clk := vclock.NewVirtual()
//	clk.Run(func() { ... })
func (v *Virtual) Run(fn func()) {
	v.Go(fn)
	v.Wait()
}

// maybeAdvanceLocked advances simulated time to the earliest wake-up and
// releases the sleepers due at that instant, but only once no task is
// runnable. Callers must hold v.mu.
func (v *Virtual) maybeAdvanceLocked() {
	if v.active != 0 || v.sleepers.Len() == 0 {
		return
	}
	next := v.sleepers[0].wake
	if next.After(v.now) {
		v.now = next
	}
	for v.sleepers.Len() > 0 && !v.sleepers[0].wake.After(v.now) {
		s := heap.Pop(&v.sleepers).(*sleeper)
		v.active++
		v.events++
		close(s.ch)
	}
}

type sleeper struct {
	wake time.Time
	seq  uint64 // FIFO tiebreak for equal wake times
	ch   chan struct{}
}

type sleepQueue []*sleeper

func (q sleepQueue) Len() int { return len(q) }

func (q sleepQueue) Less(i, j int) bool {
	if !q[i].wake.Equal(q[j].wake) {
		return q[i].wake.Before(q[j].wake)
	}
	return q[i].seq < q[j].seq
}

func (q sleepQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *sleepQueue) Push(x any) { *q = append(*q, x.(*sleeper)) }

func (q *sleepQueue) Pop() any {
	old := *q
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return s
}
