package vclock

import (
	"sync"
	"sync/atomic"
	"time"
)

// Virtual is a cooperative discrete-event clock. Tasks are registered with
// Go; simulated time advances to the earliest pending wake-up whenever every
// registered task is blocked in Sleep. CPU work performed by tasks between
// clock calls consumes no simulated time.
//
// Rules for correctness (enforced by convention across GoWren's internals):
//
//   - every goroutine that participates in the simulation is started via Go
//     (directly or transitively from a task);
//   - tasks block only via Sleep / Poll / Event.Wait, never on bare
//     channels or mutexes held across simulated time.
//
// Shared state protected by mutexes is fine as long as critical sections do
// not block on the clock.
//
// Internally the scheduler works in integer nanoseconds since the epoch and
// keeps sleepers in a hand-rolled min-heap keyed by (wake instant, arrival
// sequence): when time advances, every parker due at the minimum instant is
// released in one batch under one lock acquisition, in FIFO sequence order —
// the deterministic tiebreak for simultaneous wake-ups. Parkers — the
// one-slot channels a blocked task waits on — are recycled on a free list
// under the scheduler lock, so steady-state Sleep allocates nothing.
type Virtual struct {
	epoch time.Time

	mu     sync.Mutex
	offset atomic.Int64 // ns since epoch; written under mu, read lock-free
	active int          // registered tasks currently runnable
	tasks  int          // registered tasks alive (runnable, sleeping, or blocked)
	events uint64       // scheduler progress counter (sleeps, wakes, spawns, exits)
	parked int          // tasks blocked in Sleep or a timed/untimed Event wait
	seq    uint64       // next parker arrival sequence (FIFO tiebreak)

	sleepers parkerHeap

	freeParkers []*parker

	wg sync.WaitGroup
}

var _ Clock = (*Virtual)(nil)

// maxFreeParkers bounds the parker free list: high enough to cover a large
// simulation's concurrent-sleeper high-water mark, low enough that a burst
// does not pin memory forever.
const maxFreeParkers = 1 << 16

// NewVirtual returns a Virtual clock starting at epoch. A fixed, non-zero
// epoch keeps timestamps deterministic across runs.
func NewVirtual() *Virtual {
	return NewVirtualAt(time.Date(2018, time.December, 10, 0, 0, 0, 0, time.UTC))
}

// NewVirtualAt returns a Virtual clock starting at epoch.
func NewVirtualAt(epoch time.Time) *Virtual {
	return &Virtual{epoch: epoch}
}

// Now returns the current simulated time. It is lock-free: the offset is
// published atomically by the scheduler, so hot paths that timestamp every
// operation do not serialize on the scheduler mutex.
func (v *Virtual) Now() time.Time {
	return v.epoch.Add(time.Duration(v.offset.Load()))
}

// parker is the one-slot channel a blocked task waits on, tagged with its
// position in the wake heap. Sleep parkers are recycled through the clock's
// free list; Event waiters allocate their own (they can be woken twice —
// signal and deadline — so recycling them would race a late wake-up against
// reuse).
type parker struct {
	ch     chan struct{}
	wakeNS int64  // heap key: wake instant, ns since epoch
	seq    uint64 // heap tiebreak: arrival order among equal instants
	// timer entries always fire; event entries are skipped once woken.
	woken bool
	// signaled records, for event waiters, whether the wake-up came from
	// Signal (true) or the deadline (false).
	signaled bool
}

// getParkerLocked pops a recycled parker or allocates one.
func (v *Virtual) getParkerLocked() *parker {
	if n := len(v.freeParkers); n > 0 {
		p := v.freeParkers[n-1]
		v.freeParkers = v.freeParkers[:n-1]
		return p
	}
	return &parker{ch: make(chan struct{}, 1)}
}

func (v *Virtual) putParkerLocked(p *parker) {
	p.woken = false
	p.signaled = false
	if len(v.freeParkers) < maxFreeParkers {
		v.freeParkers = append(v.freeParkers, p)
	}
}

// enqueueLocked parks p at the wake instant.
func (v *Virtual) enqueueLocked(wakeNS int64, p *parker) {
	p.wakeNS = wakeNS
	p.seq = v.seq
	v.seq++
	v.sleepers.push(p)
	v.parked++
}

// Sleep blocks the calling task for d of simulated time. It must be called
// from a task started with Go (or Run); calling it from an unregistered
// goroutine corrupts the runnable-task accounting.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	p := v.getParkerLocked()
	v.events++
	v.enqueueLocked(v.offset.Load()+int64(d), p)
	v.active--
	v.maybeAdvanceLocked()
	v.mu.Unlock()
	<-p.ch
	v.mu.Lock()
	v.putParkerLocked(p)
	v.mu.Unlock()
}

// Go starts fn as a registered simulation task.
func (v *Virtual) Go(fn func()) {
	v.mu.Lock()
	v.active++
	v.tasks++
	v.events++
	v.mu.Unlock()
	v.wg.Add(1)
	go func() {
		defer func() {
			v.mu.Lock()
			v.active--
			v.tasks--
			v.events++
			v.maybeAdvanceLocked()
			v.mu.Unlock()
			v.wg.Done()
		}()
		fn()
	}()
}

// Wait blocks the caller in real time until every task has returned.
func (v *Virtual) Wait() { v.wg.Wait() }

// Run starts fn as the root task and blocks until fn and every task it
// spawned (transitively) have returned. It is the usual entry point for a
// simulation:
//
//	clk := vclock.NewVirtual()
//	clk.Run(func() { ... })
func (v *Virtual) Run(fn func()) {
	v.Go(fn)
	v.Wait()
}

// maybeAdvanceLocked advances simulated time to the earliest wake-up and
// releases every parker due at that instant in one batch — in FIFO seq
// order, the heap's tiebreak — but only once no task is runnable. Instants
// whose entries were all cancelled (event waiters signalled before their
// deadline) release nobody; the loop skips past them to the next instant.
// Callers must hold v.mu.
func (v *Virtual) maybeAdvanceLocked() {
	for v.active == 0 && v.sleepers.len() > 0 {
		instant := v.sleepers.ps[0].wakeNS
		if instant > v.offset.Load() {
			v.offset.Store(instant)
		}
		released := 0
		for v.sleepers.len() > 0 && v.sleepers.ps[0].wakeNS == instant {
			p := v.sleepers.pop()
			if p.woken {
				continue // event waiter already released by Signal
			}
			p.woken = true
			v.parked--
			v.active++
			v.events++
			p.ch <- struct{}{}
			released++
		}
		if released > 0 {
			return
		}
	}
}

// parkerHeap is a binary min-heap of parkers keyed by (wakeNS, seq). It is
// hand-rolled over the two integer keys rather than container/heap to keep
// the per-operation cost — this is the simulator's innermost loop — free of
// interface dispatch.
type parkerHeap struct {
	ps []*parker
}

func (h *parkerHeap) len() int { return len(h.ps) }

// before reports whether a wakes strictly before b.
func before(a, b *parker) bool {
	return a.wakeNS < b.wakeNS || (a.wakeNS == b.wakeNS && a.seq < b.seq)
}

func (h *parkerHeap) push(p *parker) {
	h.ps = append(h.ps, p)
	i := len(h.ps) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !before(h.ps[i], h.ps[parent]) {
			break
		}
		h.ps[parent], h.ps[i] = h.ps[i], h.ps[parent]
		i = parent
	}
}

func (h *parkerHeap) pop() *parker {
	top := h.ps[0]
	n := len(h.ps) - 1
	h.ps[0] = h.ps[n]
	h.ps[n] = nil
	h.ps = h.ps[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && before(h.ps[l], h.ps[smallest]) {
			smallest = l
		}
		if r < n && before(h.ps[r], h.ps[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.ps[i], h.ps[smallest] = h.ps[smallest], h.ps[i]
		i = smallest
	}
	return top
}
