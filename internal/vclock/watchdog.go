package vclock

import (
	"fmt"
	"time"
)

// Deadlock detection for Virtual. A simulation is stuck when registered
// tasks still exist but the scheduler stops making progress — no sleeps, no
// wake-ups, no spawns, no exits — for multiple watchdog intervals of real
// time. That is the signature of a task blocked outside the clock, which
// violates the Virtual contract (documented on the type). Genuine CPU-heavy
// stretches between clock calls also pause scheduler progress, so pick an
// interval comfortably above the longest expected compute burst.

// WatchdogReport describes a detected stall.
type WatchdogReport struct {
	Tasks    int // registered tasks still alive
	Sleepers int // tasks parked in Sleep or an Event wait
	Runnable int // tasks the scheduler believes are runnable
}

func (r WatchdogReport) String() string {
	return fmt.Sprintf("vclock: simulation stuck: %d tasks alive (%d nominally runnable, %d sleeping) with no scheduler progress — a task is likely blocked outside the clock", r.Tasks, r.Runnable, r.Sleepers)
}

// StartWatchdog begins sampling for deadlock every interval of real time;
// after two consecutive stuck samples it calls onStuck once and stops.
// A nil onStuck panics with the report. The returned stop function halts
// the watchdog (idempotent). Intended for long experiment runs and tests
// of clock-driven code.
func (v *Virtual) StartWatchdog(interval time.Duration, onStuck func(WatchdogReport)) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	if onStuck == nil {
		onStuck = func(r WatchdogReport) { panic(r.String()) }
	}
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		var lastEvents uint64
		strikes := 0
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				report, events := v.sample()
				if report.Tasks == 0 || events != lastEvents {
					strikes = 0
					lastEvents = events
					continue
				}
				strikes++
				if strikes >= 2 {
					onStuck(report)
					return
				}
			}
		}
	}()
	var stopped bool
	return func() {
		if !stopped {
			stopped = true
			close(done)
		}
	}
}

// sample inspects the scheduler state and returns the progress counter.
func (v *Virtual) sample() (WatchdogReport, uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	r := WatchdogReport{
		Tasks:    v.tasks,
		Sleepers: v.parked,
		Runnable: v.active,
	}
	return r, v.events
}
