package workloads

import (
	"fmt"
	"time"

	"gowren"
)

// Cost model for the §6.4 tone-analysis job, calibrated against Table 3
// (see EXPERIMENTS.md for the derivation):
//
//   - the sequential baseline ran on a 4 vCPU / 16 GB VM and took 5,160 s
//     for the 1.9 GB dataset → ~2.66 s per MiB end to end;
//   - the parallel runs imply a per-executor rate of ~7 s per MiB inside
//     a 512 MB function container (slower core, per-request COS bandwidth),
//     plus a per-city map-render cost and a per-partial merge cost in the
//     reducer.
const (
	// VMAnalyzePerMiB is the sequential baseline's processing rate.
	VMAnalyzePerMiB = 2660 * time.Millisecond
	// ContainerAnalyzePerMiB is the in-function processing rate.
	ContainerAnalyzePerMiB = 7000 * time.Millisecond
	// RenderCostPerCity is the reducer's map-rendering cost.
	RenderCostPerCity = 10 * time.Second
	// PartialMergeCost is the reducer's per-chunk cost to download and
	// merge one map partial.
	PartialMergeCost = 80 * time.Millisecond
	// SampleBytesPerPartition caps the bytes a map function actually
	// parses; tone fractions are extrapolated to the partition (records
	// are i.i.d., so sampling preserves the statistics while keeping the
	// simulation's real CPU cost bounded).
	SampleBytesPerPartition = 64 * 1024
	// MaxPointsPerChunk bounds the map points sampled per partition.
	MaxPointsPerChunk = 40
)

// Registered function names.
const (
	FuncComputeBound = "compute/busy"
	FuncToneMap      = "tone/analyze-chunk"
	FuncToneReduce   = "tone/render-city"
	FuncMergesort    = "sort/mergesort"
)

// ChunkTone is the map function's partial result for one partition.
type ChunkTone struct {
	City   string     `json:"city"`
	Bytes  int64      `json:"bytes"`
	Counts ToneCounts `json:"counts"`
	Points []Point    `json:"points"`
}

// CityMap is the reducer's per-city output: aggregate tone plus the points
// of the rendered map (paper Fig. 5).
type CityMap struct {
	City   string     `json:"city"`
	Bytes  int64      `json:"bytes"`
	Chunks int        `json:"chunks"`
	Counts ToneCounts `json:"counts"`
	Points []Point    `json:"points"`
}

// Register adds every workload function to img. Call it before publishing
// the image to a cloud.
func Register(img *gowren.Image) error {
	if err := gowren.RegisterFunc(img, FuncComputeBound, computeBound); err != nil {
		return err
	}
	if err := gowren.RegisterMapFunc(img, FuncToneMap, toneMapChunk); err != nil {
		return err
	}
	if err := gowren.RegisterReduceFunc(img, FuncToneReduce, toneRenderCity); err != nil {
		return err
	}
	if err := gowren.RegisterFunc(img, FuncMergesort, mergesortTask); err != nil {
		return err
	}
	if err := gowren.RegisterKVMapFunc(img, FuncKVToneMap, kvToneMap); err != nil {
		return err
	}
	if err := gowren.RegisterKVReduceFunc(img, FuncKVToneReduce, kvToneReduce); err != nil {
		return err
	}
	return nil
}

// computeBound models the arbitrary compute-bound tasks of §6.1–6.2: it
// occupies the function for the requested number of seconds.
func computeBound(ctx *gowren.Ctx, seconds float64) (float64, error) {
	if err := ctx.ChargeCompute(time.Duration(seconds * float64(time.Second))); err != nil {
		return 0, err
	}
	return seconds, nil
}

// toneMapChunk analyzes one partition of a city dataset: it parses a
// sample of real records, extrapolates the tone distribution to the whole
// partition, and charges the partition's full modeled processing cost.
func toneMapChunk(ctx *gowren.Ctx, part *gowren.PartitionReader) (ChunkTone, error) {
	size := part.Size()
	sample := size
	if sample > SampleBytesPerPartition {
		sample = SampleBytesPerPartition
	}
	sample -= sample % RecordSize
	var (
		counts ToneCounts
		points []Point
	)
	if sample > 0 {
		data, err := part.ReadAt(0, sample)
		if err != nil {
			return ChunkTone{}, err
		}
		counts, points = AnalyzeTone(data, MaxPointsPerChunk)
		// Extrapolate the sampled classification to the partition.
		totalRecords := size / RecordSize
		if counts.Records > 0 && totalRecords > counts.Records {
			scale := float64(totalRecords) / float64(counts.Records)
			counts.Good = int64(float64(counts.Good) * scale)
			counts.Neutral = int64(float64(counts.Neutral) * scale)
			counts.Records = totalRecords
			counts.Bad = counts.Records - counts.Good - counts.Neutral
		}
	}
	cost := time.Duration(float64(size) / (1 << 20) * float64(ContainerAnalyzePerMiB))
	if err := ctx.ChargeCompute(cost); err != nil {
		return ChunkTone{}, err
	}
	return ChunkTone{
		City:   part.Partition().Key,
		Bytes:  size,
		Counts: counts,
		Points: points,
	}, nil
}

// toneRenderCity is the per-city reducer (§6.4 runs it with
// reducer_one_per_object=true): it merges the chunk partials and renders
// the city map.
func toneRenderCity(ctx *gowren.Ctx, group string, partials []ChunkTone) (CityMap, error) {
	out := CityMap{City: group, Chunks: len(partials)}
	for _, p := range partials {
		out.Bytes += p.Bytes
		out.Counts.Add(p.Counts)
		out.Points = append(out.Points, p.Points...)
	}
	if len(out.Points) > 400 {
		out.Points = out.Points[:400]
	}
	if err := ctx.ChargeCompute(RenderCostPerCity + time.Duration(len(partials))*PartialMergeCost); err != nil {
		return CityMap{}, err
	}
	return out, nil
}

// SequentialToneAnalysis models the paper's baseline: a single notebook VM
// processing every city one after another (§6.4, "it took 1 hour and 26
// minutes"). It charges the VM-rate cost on the clock and returns the
// per-city maps. The bytes parameter allows scaled-down runs.
func SequentialToneAnalysis(ctx SequentialCtx, cities []City, seed uint64) ([]CityMap, error) {
	out := make([]CityMap, 0, len(cities))
	for _, city := range cities {
		sample := city.SizeBytes
		if sample > SampleBytesPerPartition {
			sample = SampleBytesPerPartition
		}
		sample -= sample % RecordSize
		buf := make([]byte, sample)
		CityGenerator(city, seed).FillAt(0, buf)
		counts, points := AnalyzeTone(buf, MaxPointsPerChunk)
		totalRecords := city.Records()
		if counts.Records > 0 && totalRecords > counts.Records {
			scale := float64(totalRecords) / float64(counts.Records)
			counts.Good = int64(float64(counts.Good) * scale)
			counts.Neutral = int64(float64(counts.Neutral) * scale)
			counts.Records = totalRecords
			counts.Bad = counts.Records - counts.Good - counts.Neutral
		}
		cost := time.Duration(float64(city.SizeBytes)/(1<<20)*float64(VMAnalyzePerMiB)) + RenderCostPerCity
		ctx.Clock.Sleep(cost)
		out = append(out, CityMap{
			City:   city.Name,
			Bytes:  city.SizeBytes,
			Chunks: 1,
			Counts: counts,
			Points: points,
		})
	}
	return out, nil
}

// SequentialCtx carries what the sequential baseline needs — just a clock.
type SequentialCtx struct {
	Clock gowren.Clock
}

// RenderASCIIMap draws the §6.4 city map as text: apartments plotted on a
// lat/lon grid, marked by dominant tone (+ good, . neutral, x bad) —
// the terminal stand-in for the paper's Fig. 5.
func RenderASCIIMap(m CityMap, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	if len(m.Points) == 0 {
		return fmt.Sprintf("%s: no points\n", m.City)
	}
	minLat, maxLat := m.Points[0].Lat, m.Points[0].Lat
	minLon, maxLon := m.Points[0].Lon, m.Points[0].Lon
	for _, p := range m.Points {
		if p.Lat < minLat {
			minLat = p.Lat
		}
		if p.Lat > maxLat {
			maxLat = p.Lat
		}
		if p.Lon < minLon {
			minLon = p.Lon
		}
		if p.Lon > maxLon {
			maxLon = p.Lon
		}
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = make([]byte, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	for _, p := range m.Points {
		x, y := 0, 0
		if maxLon > minLon {
			x = int((p.Lon - minLon) / (maxLon - minLon) * float64(width-1))
		}
		if maxLat > minLat {
			y = int((maxLat - p.Lat) / (maxLat - minLat) * float64(height-1))
		}
		mark := byte('.')
		switch p.Tone {
		case ToneGood:
			mark = '+'
		case ToneBad:
			mark = 'x'
		}
		grid[y][x] = mark
	}
	var b []byte
	b = fmt.Appendf(b, "%s — %d comments (good %d / neutral %d / bad %d)\n",
		m.City, m.Counts.Records, m.Counts.Good, m.Counts.Neutral, m.Counts.Bad)
	for _, row := range grid {
		b = append(b, row...)
		b = append(b, '\n')
	}
	return string(b)
}

// Keyed-shuffle workload: tone word counting over review records. The map
// side emits (tone, count) pairs per chunk; the reduce side merges counts
// per tone key, charging interpreter-speed per-value costs so the shuffle
// ablation reflects realistic reduce-phase scaling.
const (
	FuncKVToneMap    = "kvtone/emit"
	FuncKVToneReduce = "kvtone/sum"
	// KVReducePerValue is the reducer's modeled cost per merged value.
	KVReducePerValue = 40 * time.Millisecond
)

func kvToneMap(ctx *gowren.Ctx, part *gowren.PartitionReader) ([]gowren.KV, error) {
	size := part.Size()
	sample := size
	if sample > SampleBytesPerPartition {
		sample = SampleBytesPerPartition
	}
	sample -= sample % RecordSize
	var counts ToneCounts
	if sample > 0 {
		data, err := part.ReadAt(0, sample)
		if err != nil {
			return nil, err
		}
		counts, _ = AnalyzeTone(data, 0)
		totalRecords := size / RecordSize
		if counts.Records > 0 && totalRecords > counts.Records {
			scale := float64(totalRecords) / float64(counts.Records)
			counts.Good = int64(float64(counts.Good) * scale)
			counts.Neutral = int64(float64(counts.Neutral) * scale)
			counts.Records = totalRecords
			counts.Bad = counts.Records - counts.Good - counts.Neutral
		}
	}
	if err := ctx.ChargeCompute(time.Duration(float64(size) / (1 << 20) * float64(ContainerAnalyzePerMiB))); err != nil {
		return nil, err
	}
	out := make([]gowren.KV, 0, 3)
	for _, t := range []struct {
		tone string
		n    int64
	}{{ToneGood, counts.Good}, {ToneNeutral, counts.Neutral}, {ToneBad, counts.Bad}} {
		kv, err := gowren.EmitKV(t.tone, t.n)
		if err != nil {
			return nil, err
		}
		out = append(out, kv)
	}
	return out, nil
}

func kvToneReduce(ctx *gowren.Ctx, _ string, values []int64) (int64, error) {
	if err := ctx.ChargeCompute(time.Duration(len(values)) * KVReducePerValue); err != nil {
		return 0, err
	}
	var sum int64
	for _, v := range values {
		sum += v
	}
	return sum, nil
}
