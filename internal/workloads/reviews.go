// Package workloads implements the workloads of the paper's evaluation
// (§6): the compute-bound tasks of the spawning and elasticity experiments
// (Figs. 2–3), the depth-controlled parallel mergesort of the dynamic-
// composition experiment (Fig. 4), and the Airbnb-reviews tone-analysis
// MapReduce job of §6.4 (Table 3, Fig. 5).
//
// The paper's dataset — 1.9 GB of www.airbnb.com reviews for 33 cities,
// 3,695,107 comments, obtained from the IBM Watson Studio Community — is
// proprietary-ish and unavailable offline, so this package synthesizes an
// equivalent: fixed-size review records generated deterministically from a
// seed, with a per-city size distribution calibrated so the partitioner
// produces executor counts close to Table 3's. The tone analyzer is a
// lexicon-based classifier standing in for the Watson Tone Analyzer; what
// matters for the experiment's shape is bytes-per-city and per-byte
// processing cost, both of which are preserved (see DESIGN.md §3).
package workloads

import (
	"fmt"
	"strings"

	"gowren/internal/cos"
)

// RecordSize is the fixed byte size of one review record. Chunk sizes used
// by the experiments are multiples of RecordSize, so partition boundaries
// never split a record.
const RecordSize = 256

// City describes one city dataset object.
type City struct {
	Name string
	Lat  float64
	Lon  float64
	// SizeBytes is the city's object size (multiple of RecordSize).
	SizeBytes int64
	// goodBias shifts the city's tone distribution; purely cosmetic for
	// the rendered maps.
	goodBias float64
}

// Records returns the number of review records in the city object.
func (c City) Records() int64 { return c.SizeBytes / RecordSize }

// cityWeights lists the paper's 33 cities (airbnb datasets in the Watson
// Studio Community are per-city; the exact set is not published, so this
// uses well-known Airbnb markets) with relative dataset weights. Sizes are
// deliberately skewed: a few very large cities and a long tail, which is
// what makes Table 3's executor counts grow sublinearly as chunks shrink.
var cityWeights = []struct {
	name     string
	lat, lon float64
	weight   float64
	goodBias float64
}{
	{"new-york", 40.7128, -74.0060, 13.0, 0.02},
	{"london", 51.5074, -0.1278, 11.5, 0.00},
	{"paris", 48.8566, 2.3522, 10.0, 0.05},
	{"los-angeles", 34.0522, -118.2437, 7.5, 0.01},
	{"rome", 41.9028, 12.4964, 5.5, 0.06},
	{"barcelona", 41.3851, 2.1734, 5.0, 0.04},
	{"amsterdam", 52.3676, 4.9041, 4.5, 0.07},
	{"berlin", 52.5200, 13.4050, 4.2, 0.03},
	{"san-francisco", 37.7749, -122.4194, 3.8, 0.02},
	{"sydney", -33.8688, 151.2093, 3.5, 0.08},
	{"toronto", 43.6532, -79.3832, 3.0, 0.04},
	{"madrid", 40.4168, -3.7038, 2.8, 0.03},
	{"chicago", 41.8781, -87.6298, 2.5, 0.00},
	{"austin", 30.2672, -97.7431, 2.2, 0.05},
	{"lisbon", 38.7223, -9.1393, 2.0, 0.06},
	{"copenhagen", 55.6761, 12.5683, 1.8, 0.07},
	{"dublin", 53.3498, -6.2603, 1.7, 0.02},
	{"vienna", 48.2082, 16.3738, 1.6, 0.05},
	{"seattle", 47.6062, -122.3321, 1.5, 0.03},
	{"boston", 42.3601, -71.0589, 1.4, 0.01},
	{"melbourne", -37.8136, 144.9631, 1.3, 0.06},
	{"vancouver", 49.2827, -123.1207, 1.2, 0.05},
	{"prague", 50.0755, 14.4378, 1.1, 0.04},
	{"brussels", 50.8503, 4.3517, 1.0, 0.02},
	{"athens", 37.9838, 23.7275, 0.95, 0.05},
	{"budapest", 47.4979, 19.0402, 0.9, 0.03},
	{"oslo", 59.9139, 10.7522, 0.85, 0.06},
	{"stockholm", 59.3293, 18.0686, 0.8, 0.05},
	{"helsinki", 60.1699, 24.9384, 0.75, 0.04},
	{"porto", 41.1579, -8.6291, 0.7, 0.06},
	{"edinburgh", 55.9533, -3.1883, 0.65, 0.05},
	{"valencia", 39.4699, -0.3763, 0.6, 0.04},
	{"geneva", 46.2044, 6.1432, 0.55, 0.01},
}

// DefaultDatasetBytes is the paper's total dataset size: 1.9 GB.
const DefaultDatasetBytes = int64(1_900_000_000)

// Cities returns the 33-city dataset scaled to totalBytes (use
// DefaultDatasetBytes for the paper's scale). Each size is rounded down to
// a whole number of records.
func Cities(totalBytes int64) []City {
	var sum float64
	for _, c := range cityWeights {
		sum += c.weight
	}
	out := make([]City, len(cityWeights))
	for i, c := range cityWeights {
		size := int64(float64(totalBytes) * c.weight / sum)
		size -= size % RecordSize
		if size < RecordSize {
			size = RecordSize
		}
		out[i] = City{
			Name:      c.name,
			Lat:       c.lat,
			Lon:       c.lon,
			SizeBytes: size,
			goodBias:  c.goodBias,
		}
	}
	return out
}

// TotalBytes sums the city object sizes.
func TotalBytes(cities []City) int64 {
	var total int64
	for _, c := range cities {
		total += c.SizeBytes
	}
	return total
}

// TotalRecords sums the city record (comment) counts.
func TotalRecords(cities []City) int64 {
	var total int64
	for _, c := range cities {
		total += c.Records()
	}
	return total
}

// Tone classes.
const (
	ToneGood    = "good"
	ToneNeutral = "neutral"
	ToneBad     = "bad"
)

// Tone lexicons: the generator writes reviews drawn from these, and the
// analyzer classifies by counting hits, the classic lexicon approach.
var (
	goodWords    = []string{"wonderful", "great", "cozy", "perfect", "lovely", "spotless", "charming", "amazing"}
	neutralWords = []string{"okay", "fine", "average", "decent", "standard", "adequate", "plain", "simple"}
	badWords     = []string{"dirty", "noisy", "awful", "broken", "terrible", "cramped", "smelly", "rude"}
)

// splitmix64 is a tiny deterministic PRNG step, good enough for content
// synthesis and stable across platforms.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// recordTone picks the tone class of record k deterministically: roughly
// 50% good / 30% neutral / 20% bad, shifted by the city's bias.
func recordTone(seed uint64, k int64, goodBias float64) string {
	r := splitmix64(seed ^ uint64(k)*0x9e3779b97f4a7c15)
	u := float64(r%10000) / 10000
	switch {
	case u < 0.50+goodBias:
		return ToneGood
	case u < 0.80+goodBias:
		return ToneNeutral
	default:
		return ToneBad
	}
}

// buildRecord renders review record k for a city into a RecordSize buffer.
// Layout: "R|<city>|<lat>|<lon>|<words ...>" padded with spaces, ending in
// '\n'. Latitude/longitude jitter around the city centre gives each
// apartment a distinct point on the rendered map.
func buildRecord(city City, seed uint64, k int64, buf []byte) {
	tone := recordTone(seed, k, city.goodBias)
	var words []string
	switch tone {
	case ToneGood:
		words = goodWords
	case ToneNeutral:
		words = neutralWords
	default:
		words = badWords
	}
	r1 := splitmix64(seed ^ uint64(k)*31 + 7)
	r2 := splitmix64(seed ^ uint64(k)*131 + 13)
	lat := city.Lat + (float64(r1%2000)/2000-0.5)*0.2
	lon := city.Lon + (float64(r2%2000)/2000-0.5)*0.2

	var b strings.Builder
	b.Grow(RecordSize)
	fmt.Fprintf(&b, "R|%s|%.5f|%.5f|", city.Name, lat, lon)
	wi := int(r1 % uint64(len(words)))
	for b.Len() < RecordSize-16 {
		b.WriteString(words[wi])
		b.WriteByte(' ')
		wi = (wi + 1) % len(words)
	}
	s := b.String()
	n := copy(buf, s)
	for i := n; i < RecordSize-1; i++ {
		buf[i] = ' '
	}
	buf[RecordSize-1] = '\n'
}

// CityGenerator returns a cos.Generator producing the city's review
// records for any byte range. Reads need not be record-aligned.
func CityGenerator(city City, seed uint64) cos.Generator {
	return cos.GeneratorFunc(func(off int64, p []byte) {
		var rec [RecordSize]byte
		for len(p) > 0 {
			k := off / RecordSize
			within := off % RecordSize
			buildRecord(city, seed, k, rec[:])
			n := copy(p, rec[within:])
			p = p[n:]
			off += int64(n)
		}
	})
}

// LoadDataset creates bucket and stores every city as a generated object,
// so even the full 1.9 GB dataset occupies no memory. It returns the city
// list for convenience.
func LoadDataset(store *cos.Store, bucket string, totalBytes int64, seed uint64) ([]City, error) {
	if err := store.CreateBucket(bucket); err != nil {
		return nil, fmt.Errorf("workloads: create dataset bucket: %w", err)
	}
	cities := Cities(totalBytes)
	for _, city := range cities {
		if _, err := store.PutGenerated(bucket, city.Name, city.SizeBytes, CityGenerator(city, seed)); err != nil {
			return nil, fmt.Errorf("workloads: store city %s: %w", city.Name, err)
		}
	}
	return cities, nil
}

// ToneCounts aggregates tone classifications over review records.
type ToneCounts struct {
	Good    int64 `json:"good"`
	Neutral int64 `json:"neutral"`
	Bad     int64 `json:"bad"`
	Records int64 `json:"records"`
}

// Add accumulates other into c.
func (c *ToneCounts) Add(other ToneCounts) {
	c.Good += other.Good
	c.Neutral += other.Neutral
	c.Bad += other.Bad
	c.Records += other.Records
}

// Point is one apartment location with its dominant review tone, used to
// render the §6.4 city maps.
type Point struct {
	Lat  float64 `json:"lat"`
	Lon  float64 `json:"lon"`
	Tone string  `json:"tone"`
}

// AnalyzeTone classifies whole records in data (record-aligned; trailing
// partial records are ignored) and returns counts plus up to maxPoints
// sampled map points.
func AnalyzeTone(data []byte, maxPoints int) (ToneCounts, []Point) {
	var counts ToneCounts
	var points []Point
	for len(data) >= RecordSize {
		rec := data[:RecordSize]
		data = data[RecordSize:]
		fields := strings.SplitN(string(rec), "|", 5)
		if len(fields) != 5 || fields[0] != "R" {
			continue
		}
		tone := classify(fields[4])
		counts.Records++
		switch tone {
		case ToneGood:
			counts.Good++
		case ToneNeutral:
			counts.Neutral++
		default:
			counts.Bad++
		}
		if len(points) < maxPoints {
			var lat, lon float64
			if _, err := fmt.Sscanf(fields[2], "%f", &lat); err != nil {
				continue
			}
			if _, err := fmt.Sscanf(fields[3], "%f", &lon); err != nil {
				continue
			}
			points = append(points, Point{Lat: lat, Lon: lon, Tone: tone})
		}
	}
	return counts, points
}

// classify counts lexicon hits in the review body and returns the dominant
// tone.
func classify(body string) string {
	var good, neutral, bad int
	for _, w := range strings.Fields(body) {
		switch {
		case contains(goodWords, w):
			good++
		case contains(neutralWords, w):
			neutral++
		case contains(badWords, w):
			bad++
		}
	}
	switch {
	case good >= neutral && good >= bad && good > 0:
		return ToneGood
	case neutral >= bad && neutral > 0:
		return ToneNeutral
	case bad > 0:
		return ToneBad
	default:
		return ToneNeutral
	}
}

func contains(words []string, w string) bool {
	for _, x := range words {
		if x == w {
			return true
		}
	}
	return false
}
