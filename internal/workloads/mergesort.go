package workloads

import (
	"encoding/binary"
	"errors"
	"fmt"
	"slices"
	"time"

	"gowren"
	"gowren/internal/cos"
)

// Mergesort cost model, calibrated to a hand-written Python mergesort
// running inside a function container (the paper's Fig. 4 workload; see
// EXPERIMENTS.md). Leaf sorts and merge passes both cost linear time per
// element at Python interpreter speed; the real Go sort/merge below keeps
// the data path honest while the clock charge models the paper's runtime.
const (
	// PySortPerElem is the leaf-sort cost per element.
	PySortPerElem = 12 * time.Microsecond
	// PyMergePerElem is the per-element cost of one merge pass.
	PyMergePerElem = 3 * time.Microsecond
)

// elemSize is the array element width in storage (int32, little endian).
const elemSize = 4

// SortTask describes one node of the mergesort spawn tree: sort Count
// elements of the input array starting at element Offset, spawning children
// for Depth more levels (paper §4.4 / §6.3 — "to control the number of
// recursive iterations per parallel function, we made use of the depth d of
// the resultant function tree").
type SortTask struct {
	Bucket    string `json:"bucket"`
	Key       string `json:"key"`
	Offset    int64  `json:"offset"` // element index
	Count     int64  `json:"count"`  // element count
	Depth     int    `json:"depth"`
	OutBucket string `json:"outBucket"`
}

// Segment names a sorted array segment written by a mergesort function.
type Segment struct {
	Bucket string `json:"bucket"`
	Key    string `json:"key"`
	Count  int64  `json:"count"`
}

// mergesortTask is the registered mergesort function. At depth 0 it sorts
// its whole range locally; otherwise it spawns two children one level
// shallower, awaits them (nested parallelism with an in-function merge) and
// merges their outputs.
func mergesortTask(ctx *gowren.Ctx, task SortTask) (Segment, error) {
	if task.Count <= 0 {
		return Segment{}, errors.New("workloads: mergesort over empty range")
	}
	outKey := fmt.Sprintf("sorted/%s", ctx.ActivationID())

	if task.Depth <= 0 || task.Count < 2 {
		raw, _, err := ctx.Storage().GetRange(task.Bucket, task.Key, task.Offset*elemSize, task.Count*elemSize)
		if err != nil {
			return Segment{}, fmt.Errorf("workloads: mergesort read input: %w", err)
		}
		values := decodeInt32s(raw)
		slices.Sort(values)
		if err := ctx.ChargeCompute(time.Duration(task.Count) * PySortPerElem); err != nil {
			return Segment{}, err
		}
		if _, err := ctx.Storage().Put(task.OutBucket, outKey, encodeInt32s(values)); err != nil {
			return Segment{}, fmt.Errorf("workloads: mergesort write leaf: %w", err)
		}
		return Segment{Bucket: task.OutBucket, Key: outKey, Count: task.Count}, nil
	}

	half := task.Count / 2
	left := task
	left.Count = half
	left.Depth = task.Depth - 1
	right := task
	right.Offset += half
	right.Count = task.Count - half
	right.Depth = task.Depth - 1

	children, err := gowren.SpawnAwait[Segment](ctx, FuncMergesort, []any{left, right})
	if err != nil {
		return Segment{}, fmt.Errorf("workloads: mergesort spawn children: %w", err)
	}
	if len(children) != 2 {
		return Segment{}, fmt.Errorf("workloads: mergesort expected 2 children, got %d", len(children))
	}

	lRaw, _, err := ctx.Storage().Get(children[0].Bucket, children[0].Key)
	if err != nil {
		return Segment{}, fmt.Errorf("workloads: mergesort read left child: %w", err)
	}
	rRaw, _, err := ctx.Storage().Get(children[1].Bucket, children[1].Key)
	if err != nil {
		return Segment{}, fmt.Errorf("workloads: mergesort read right child: %w", err)
	}
	merged := mergeSorted(decodeInt32s(lRaw), decodeInt32s(rRaw))
	if err := ctx.ChargeCompute(time.Duration(task.Count) * PyMergePerElem); err != nil {
		return Segment{}, err
	}
	if _, err := ctx.Storage().Put(task.OutBucket, outKey, encodeInt32s(merged)); err != nil {
		return Segment{}, fmt.Errorf("workloads: mergesort write merge: %w", err)
	}
	// Children are no longer needed; free the storage. Best-effort: a
	// failed delete leaks an intermediate object, never corrupts the sort.
	_ = ctx.Storage().Delete(children[0].Bucket, children[0].Key) //gowren:allow errsink — best-effort cleanup of merged children
	_ = ctx.Storage().Delete(children[1].Bucket, children[1].Key) //gowren:allow errsink — best-effort cleanup of merged children
	return Segment{Bucket: task.OutBucket, Key: outKey, Count: task.Count}, nil
}

// mergeSorted merges two sorted slices.
func mergeSorted(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func decodeInt32s(raw []byte) []int32 {
	n := len(raw) / elemSize
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		out[i] = int32(binary.LittleEndian.Uint32(raw[i*elemSize:]))
	}
	return out
}

func encodeInt32s(values []int32) []byte {
	out := make([]byte, len(values)*elemSize)
	for i, v := range values {
		binary.LittleEndian.PutUint32(out[i*elemSize:], uint32(v))
	}
	return out
}

// ArrayGenerator produces a deterministic pseudorandom int32 array of n
// elements as a storage object (little endian), so Fig. 4's 25M-integer
// inputs occupy no memory until read.
func ArrayGenerator(seed uint64) cos.Generator {
	return cos.GeneratorFunc(func(off int64, p []byte) {
		for len(p) > 0 {
			idx := off / elemSize
			within := off % elemSize
			var word [elemSize]byte
			binary.LittleEndian.PutUint32(word[:], uint32(splitmix64(seed^uint64(idx))))
			n := copy(p, word[within:])
			p = p[n:]
			off += int64(n)
		}
	})
}

// LoadArray stores an n-element generated array under bucket/key, creating
// the bucket if needed.
func LoadArray(store *cos.Store, bucket, key string, n int64, seed uint64) error {
	if err := store.CreateBucket(bucket); err != nil && !errors.Is(err, cos.ErrBucketExists) {
		return err
	}
	_, err := store.PutGenerated(bucket, key, n*elemSize, ArrayGenerator(seed))
	return err
}

// VerifySorted reads a segment and checks it is sorted and has the
// expected element count.
func VerifySorted(storage cos.Client, seg Segment) error {
	raw, _, err := storage.Get(seg.Bucket, seg.Key)
	if err != nil {
		return err
	}
	values := decodeInt32s(raw)
	if int64(len(values)) != seg.Count {
		return fmt.Errorf("workloads: segment has %d elements, want %d", len(values), seg.Count)
	}
	for i := 1; i < len(values); i++ {
		if values[i-1] > values[i] {
			return fmt.Errorf("workloads: segment unsorted at %d", i)
		}
	}
	return nil
}
