package workloads

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"gowren"
	"gowren/internal/cos"
)

func TestCitiesCalibration(t *testing.T) {
	cities := Cities(DefaultDatasetBytes)
	if len(cities) != 33 {
		t.Fatalf("cities = %d, want 33 (paper: 'The full dataset is composed of 33 cities')", len(cities))
	}
	total := TotalBytes(cities)
	if total < DefaultDatasetBytes*95/100 || total > DefaultDatasetBytes {
		t.Fatalf("total = %d, want within 5%% of 1.9GB", total)
	}
	records := TotalRecords(cities)
	// Paper: 3,695,107 comments. RecordSize=256 over 1.9GB gives ~7.3M;
	// the figure-relevant quantity is bytes, but the count must be in the
	// millions for the workload to be comparable.
	if records < 3_000_000 {
		t.Fatalf("records = %d, want millions of comments", records)
	}
	for _, c := range cities {
		if c.SizeBytes%RecordSize != 0 {
			t.Fatalf("city %s size %d not record aligned", c.Name, c.SizeBytes)
		}
	}
	// Skew: the largest city must dominate the smallest by >10x, which is
	// what produces Table 3's sublinear executor growth.
	if cities[0].SizeBytes < 10*cities[len(cities)-1].SizeBytes {
		t.Fatalf("size distribution not skewed: max=%d min=%d", cities[0].SizeBytes, cities[len(cities)-1].SizeBytes)
	}
}

func TestCityGeneratorDeterministicAndAligned(t *testing.T) {
	city := Cities(DefaultDatasetBytes)[0]
	gen := CityGenerator(city, 42)
	a := make([]byte, 3*RecordSize)
	b := make([]byte, 3*RecordSize)
	gen.FillAt(0, a)
	gen.FillAt(0, b)
	if string(a) != string(b) {
		t.Fatal("generator not deterministic")
	}
	// Unaligned reads see the same content.
	c := make([]byte, RecordSize)
	gen.FillAt(100, c)
	if string(c) != string(a[100:100+RecordSize]) {
		t.Fatal("unaligned read disagrees with aligned read")
	}
	// Each record terminates with a newline at the boundary.
	for i := 1; i <= 3; i++ {
		if a[i*RecordSize-1] != '\n' {
			t.Fatalf("record %d not newline-terminated", i)
		}
	}
	if !strings.HasPrefix(string(a), "R|new-york|") {
		t.Fatalf("record prefix = %q", a[:32])
	}
}

func TestGeneratorRangeConsistencyProperty(t *testing.T) {
	city := Cities(DefaultDatasetBytes)[3]
	gen := CityGenerator(city, 7)
	full := make([]byte, 8*RecordSize)
	gen.FillAt(0, full)
	f := func(offRaw, lenRaw uint16) bool {
		off := int64(offRaw) % int64(len(full)-1)
		length := int64(lenRaw)%512 + 1
		if off+length > int64(len(full)) {
			length = int64(len(full)) - off
		}
		part := make([]byte, length)
		gen.FillAt(off, part)
		return string(part) == string(full[off:off+length])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeToneDistribution(t *testing.T) {
	city := Cities(DefaultDatasetBytes)[0]
	const n = 2000
	buf := make([]byte, n*RecordSize)
	CityGenerator(city, 42).FillAt(0, buf)
	counts, points := AnalyzeTone(buf, 100)
	if counts.Records != n {
		t.Fatalf("records = %d, want %d", counts.Records, n)
	}
	if counts.Good+counts.Neutral+counts.Bad != n {
		t.Fatalf("counts don't sum: %+v", counts)
	}
	goodFrac := float64(counts.Good) / n
	if goodFrac < 0.40 || goodFrac > 0.65 {
		t.Fatalf("good fraction = %.2f, want ~0.5", goodFrac)
	}
	badFrac := float64(counts.Bad) / n
	if badFrac < 0.10 || badFrac > 0.30 {
		t.Fatalf("bad fraction = %.2f, want ~0.2", badFrac)
	}
	if len(points) != 100 {
		t.Fatalf("points = %d, want capped at 100", len(points))
	}
	for _, p := range points {
		if p.Lat < city.Lat-0.2 || p.Lat > city.Lat+0.2 {
			t.Fatalf("point latitude %f too far from city %f", p.Lat, city.Lat)
		}
	}
}

func TestAnalyzeToneIgnoresPartialRecords(t *testing.T) {
	city := Cities(DefaultDatasetBytes)[1]
	buf := make([]byte, 2*RecordSize+100)
	CityGenerator(city, 1).FillAt(0, buf)
	counts, _ := AnalyzeTone(buf, 0)
	if counts.Records != 2 {
		t.Fatalf("records = %d, want 2 (trailing partial ignored)", counts.Records)
	}
}

func TestLoadDataset(t *testing.T) {
	store := cos.NewStore()
	cities, err := LoadDataset(store, "airbnb", 10<<20, 9)
	if err != nil {
		t.Fatal(err)
	}
	listed, err := cos.ListAll(store, "airbnb", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != len(cities) {
		t.Fatalf("stored %d objects, want %d", len(listed), len(cities))
	}
	data, _, err := store.GetRange("airbnb", cities[0].Name, 0, RecordSize)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "R|") {
		t.Fatalf("stored object content = %q", data[:16])
	}
}

func TestRenderASCIIMap(t *testing.T) {
	m := CityMap{
		City:   "testville",
		Counts: ToneCounts{Good: 2, Neutral: 1, Bad: 1, Records: 4},
		Points: []Point{
			{Lat: 1, Lon: 1, Tone: ToneGood},
			{Lat: 2, Lon: 2, Tone: ToneBad},
			{Lat: 1.5, Lon: 1.5, Tone: ToneNeutral},
		},
	}
	out := RenderASCIIMap(m, 20, 10)
	if !strings.Contains(out, "testville") {
		t.Fatal("render missing city name")
	}
	if !strings.Contains(out, "+") || !strings.Contains(out, "x") || !strings.Contains(out, ".") {
		t.Fatalf("render missing tone marks:\n%s", out)
	}
	empty := RenderASCIIMap(CityMap{City: "void"}, 10, 5)
	if !strings.Contains(empty, "no points") {
		t.Fatal("empty render should say so")
	}
}

func TestMergeSortedAndCodecs(t *testing.T) {
	a := []int32{1, 3, 5}
	b := []int32{2, 3, 8, 9}
	got := mergeSorted(a, b)
	want := []int32{1, 2, 3, 3, 5, 8, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge = %v, want %v", got, want)
		}
	}
	raw := encodeInt32s(want)
	back := decodeInt32s(raw)
	for i := range want {
		if back[i] != want[i] {
			t.Fatalf("codec round trip = %v", back)
		}
	}
}

func TestMergeSortedProperty(t *testing.T) {
	f := func(aRaw, bRaw []int32) bool {
		a := append([]int32(nil), aRaw...)
		b := append([]int32(nil), bRaw...)
		sortInt32s(a)
		sortInt32s(b)
		m := mergeSorted(a, b)
		if len(m) != len(a)+len(b) {
			return false
		}
		for i := 1; i < len(m); i++ {
			if m[i-1] > m[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func sortInt32s(v []int32) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j-1] > v[j]; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
}

func TestArrayGeneratorDeterministic(t *testing.T) {
	gen := ArrayGenerator(5)
	a := make([]byte, 64)
	b := make([]byte, 64)
	gen.FillAt(0, a)
	gen.FillAt(0, b)
	if string(a) != string(b) {
		t.Fatal("array generator not deterministic")
	}
	// Partial word reads agree with full reads.
	c := make([]byte, 10)
	gen.FillAt(3, c)
	if string(c) != string(a[3:13]) {
		t.Fatal("unaligned array read disagrees")
	}
}

// newWorkloadCloud wires a virtual-time cloud with the workload functions.
func newWorkloadCloud(t *testing.T) *gowren.Cloud {
	t.Helper()
	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	if err := Register(img); err != nil {
		t.Fatal(err)
	}
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{Images: []*gowren.Image{img}})
	if err != nil {
		t.Fatal(err)
	}
	return cloud
}

func TestMergesortEndToEndAllDepths(t *testing.T) {
	for depth := 0; depth <= 3; depth++ {
		cloud := newWorkloadCloud(t)
		const n = int64(4000)
		if err := LoadArray(cloud.Store(), "arrays", "input", n, 11); err != nil {
			t.Fatal(err)
		}
		if err := cloud.Store().CreateBucket("out"); err != nil {
			t.Fatal(err)
		}
		var seg Segment
		cloud.Run(func() {
			exec, err := cloud.Executor()
			if err != nil {
				t.Error(err)
				return
			}
			task := SortTask{Bucket: "arrays", Key: "input", Offset: 0, Count: n, Depth: depth, OutBucket: "out"}
			if _, err := exec.CallAsync(FuncMergesort, task); err != nil {
				t.Error(err)
				return
			}
			seg, err = gowren.Result[Segment](exec)
			if err != nil {
				t.Error(err)
			}
		})
		if seg.Count != n {
			t.Fatalf("depth %d: segment count = %d, want %d", depth, seg.Count, n)
		}
		if err := VerifySorted(cloud.Store(), seg); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
	}
}

func TestMergesortDeeperIsFasterAtScale(t *testing.T) {
	elapsed := func(depth int) time.Duration {
		cloud := newWorkloadCloud(t)
		const n = int64(2_000_000)
		if err := LoadArray(cloud.Store(), "arrays", "input", n, 3); err != nil {
			t.Fatal(err)
		}
		if err := cloud.Store().CreateBucket("out"); err != nil {
			t.Fatal(err)
		}
		var d time.Duration
		cloud.Run(func() {
			exec, err := cloud.Executor()
			if err != nil {
				t.Error(err)
				return
			}
			start := cloud.Clock().Now()
			task := SortTask{Bucket: "arrays", Key: "input", Count: n, Depth: depth, OutBucket: "out"}
			if _, err := exec.CallAsync(FuncMergesort, task); err != nil {
				t.Error(err)
				return
			}
			if _, err := gowren.Result[Segment](exec); err != nil {
				t.Error(err)
				return
			}
			d = cloud.Clock().Now().Sub(start)
		})
		return d
	}
	d0 := elapsed(0)
	d2 := elapsed(2)
	if d2 >= d0 {
		t.Fatalf("depth 2 (%v) should beat depth 0 (%v) at 2M elements", d2, d0)
	}
}

func TestToneMapReduceJob(t *testing.T) {
	cloud := newWorkloadCloud(t)
	cities, err := LoadDataset(cloud.Store(), "airbnb", 4<<20, 21)
	if err != nil {
		t.Fatal(err)
	}
	var maps []CityMap
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		_, err = exec.MapReduce(FuncToneMap, gowren.FromBuckets("airbnb"), FuncToneReduce, gowren.MapReduceOptions{
			ChunkBytes:          256 << 10,
			ReducerOnePerObject: true,
		})
		if err != nil {
			t.Error(err)
			return
		}
		maps, err = gowren.Results[CityMap](exec)
		if err != nil {
			t.Error(err)
		}
	})
	if len(maps) != len(cities) {
		t.Fatalf("city maps = %d, want %d", len(maps), len(cities))
	}
	byCity := map[string]CityMap{}
	var recs int64
	for _, m := range maps {
		byCity[strings.TrimPrefix(m.City, "airbnb/")] = m
		recs += m.Counts.Records
	}
	for _, c := range cities {
		m, ok := byCity[c.Name]
		if !ok {
			t.Fatalf("missing map for city %s", c.Name)
		}
		if m.Bytes != c.SizeBytes {
			t.Fatalf("city %s bytes = %d, want %d", c.Name, m.Bytes, c.SizeBytes)
		}
		if m.Counts.Records != c.Records() {
			t.Fatalf("city %s records = %d, want %d", c.Name, m.Counts.Records, c.Records())
		}
	}
	if recs != TotalRecords(cities) {
		t.Fatalf("total records = %d, want %d", recs, TotalRecords(cities))
	}
}

func TestSequentialToneAnalysisChargesVMRate(t *testing.T) {
	cloud := newWorkloadCloud(t)
	cities := Cities(64 << 20)
	var maps []CityMap
	start := cloud.Clock().Now()
	cloud.Run(func() {
		var err error
		maps, err = SequentialToneAnalysis(SequentialCtx{Clock: cloud.Clock()}, cities, 1)
		if err != nil {
			t.Error(err)
		}
	})
	if len(maps) != len(cities) {
		t.Fatalf("maps = %d, want %d", len(maps), len(cities))
	}
	elapsed := cloud.Clock().Now().Sub(start)
	wantMin := time.Duration(float64(TotalBytes(cities))/(1<<20)*float64(VMAnalyzePerMiB)) + time.Duration(len(cities))*RenderCostPerCity
	wantMin -= time.Microsecond // per-city float rounding
	if elapsed < wantMin {
		t.Fatalf("sequential elapsed = %v, want >= %v", elapsed, wantMin)
	}
}

func TestKVToneShuffleJob(t *testing.T) {
	cloud := newWorkloadCloud(t)
	cities, err := LoadDataset(cloud.Store(), "airbnb", 3<<20, 5)
	if err != nil {
		t.Fatal(err)
	}
	var merged []gowren.KeyResult
	cloud.Run(func() {
		exec, err := cloud.Executor()
		if err != nil {
			t.Error(err)
			return
		}
		_, err = exec.MapReduceShuffle(FuncKVToneMap, gowren.FromBuckets("airbnb"), FuncKVToneReduce,
			gowren.ShuffleOptions{ChunkBytes: 512 << 10, NumReducers: 3})
		if err != nil {
			t.Error(err)
			return
		}
		merged, err = gowren.ShuffleResults(exec)
		if err != nil {
			t.Error(err)
		}
	})
	if len(merged) != 3 {
		t.Fatalf("tone keys = %d, want 3 (good/neutral/bad)", len(merged))
	}
	var total int64
	counts := map[string]int64{}
	for _, kr := range merged {
		var n int64
		if err := json.Unmarshal(kr.Value, &n); err != nil {
			t.Fatal(err)
		}
		counts[kr.Key] = n
		total += n
	}
	if want := TotalRecords(cities); total != want {
		t.Fatalf("total classified records = %d, want %d (counts: %v)", total, want, counts)
	}
	if counts[ToneGood] <= counts[ToneBad] {
		t.Fatalf("tone distribution inverted: %v", counts)
	}
}
