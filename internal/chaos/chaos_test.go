package chaos

import (
	"errors"
	"testing"
	"time"

	"gowren/internal/cos"
	"gowren/internal/vclock"
)

func TestPlanValidation(t *testing.T) {
	clk := vclock.NewVirtual()
	cases := []Fault{
		{Kind: "bogus", Start: 0, End: time.Second},
		{Kind: COSBrownout, Start: time.Second, End: time.Second},
		{Kind: COSBrownout, Start: -time.Second, End: time.Second},
		{Kind: COSBrownout, Start: 0, End: time.Second, Probability: 1.5},
		{Kind: SlowContainers, Start: 0, End: time.Second, Factor: -2},
	}
	for _, f := range cases {
		if _, err := NewPlan(clk, 0, []Fault{f}); err == nil {
			t.Errorf("fault %+v accepted, want error", f)
		}
	}
	if _, err := NewPlan(nil, 0, nil); err == nil {
		t.Error("nil clock accepted")
	}
}

func TestWindowsActivateOnTheClock(t *testing.T) {
	clk := vclock.NewVirtual()
	clk.Run(func() {
		plan, err := NewPlan(clk, 1, []Fault{
			{Kind: ControllerOutage, Start: 10 * time.Second, End: 20 * time.Second},
			{Kind: SlowContainers, Start: 30 * time.Second, End: 40 * time.Second, Factor: 5},
		})
		if err != nil {
			t.Fatal(err)
		}
		if plan.ControllerDown() {
			t.Error("outage active before its window")
		}
		clk.Sleep(15 * time.Second)
		if !plan.ControllerDown() {
			t.Error("outage inactive inside its window")
		}
		if plan.ExecFactor() != 1 {
			t.Errorf("exec factor = %v before slow window", plan.ExecFactor())
		}
		clk.Sleep(5 * time.Second) // t=20s: End is exclusive
		if plan.ControllerDown() {
			t.Error("outage active at End")
		}
		clk.Sleep(15 * time.Second) // t=35s
		if plan.ExecFactor() != 5 {
			t.Errorf("exec factor = %v inside slow window, want 5", plan.ExecFactor())
		}
	})
}

func TestNilPlanInert(t *testing.T) {
	var plan *Plan
	if plan.ControllerDown() || plan.StorageFailure() || plan.ExecFactor() != 1 {
		t.Fatal("nil plan not inert")
	}
	store := cos.NewStore()
	if got := WrapStorage(store, nil); got != cos.Client(store) {
		t.Fatal("nil plan should return inner client unchanged")
	}
}

func TestBrownoutFailsStorageDeterministically(t *testing.T) {
	run := func(seed int64) (fails int) {
		clk := vclock.NewVirtual()
		clk.Run(func() {
			plan, err := NewPlan(clk, seed, []Fault{
				{Kind: COSBrownout, Start: 0, End: time.Minute, Probability: 0.5},
			})
			if err != nil {
				t.Fatal(err)
			}
			store := cos.NewStore()
			if err := store.CreateBucket("b"); err != nil {
				t.Fatal(err)
			}
			client := WrapStorage(store, plan)
			for i := 0; i < 200; i++ {
				if _, err := client.Put("b", "k", []byte("v")); errors.Is(err, cos.ErrRequestFailed) {
					fails++
				} else if err != nil {
					t.Fatal(err)
				}
			}
		})
		return fails
	}
	a, b := run(3), run(3)
	if a != b {
		t.Fatalf("same seed, different failure counts: %d vs %d", a, b)
	}
	if a < 50 || a > 150 {
		t.Fatalf("failure count %d wildly off a 0.5 brownout over 200 requests", a)
	}
	if c := run(4); c == a {
		t.Logf("different seeds coincided (%d); acceptable but unusual", c)
	}
}

func TestBrownoutEndsWithWindow(t *testing.T) {
	clk := vclock.NewVirtual()
	clk.Run(func() {
		plan, err := NewPlan(clk, 0, []Fault{
			{Kind: COSBrownout, Start: 0, End: 10 * time.Second, Probability: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		store := cos.NewStore()
		if err := store.CreateBucket("b"); err != nil {
			t.Fatal(err)
		}
		client := WrapStorage(store, plan)
		if _, err := client.Put("b", "k", []byte("v")); !errors.Is(err, cos.ErrRequestFailed) {
			t.Fatalf("in-window put err = %v, want ErrRequestFailed", err)
		}
		clk.Sleep(10 * time.Second)
		if _, err := client.Put("b", "k", []byte("v")); err != nil {
			t.Fatalf("post-window put err = %v", err)
		}
		if _, _, err := client.Get("b", "k"); err != nil {
			t.Fatalf("post-window get err = %v", err)
		}
	})
}
