// Package chaos schedules deterministic, time-windowed, *correlated*
// faults over the simulated cloud. The netsim links already model
// independent per-request failures (the paper's WAN loss rate); chaos adds
// the failure modes those Bernoulli draws cannot express — "COS is browned
// out from t=10s to t=25s", "the Cloud Functions gateway answers 429 for a
// minute", "containers run slow during the noisy-neighbour window" — so
// experiments and tests can script whole outage scenarios on the virtual
// clock and replay them bit-for-bit under a fixed seed.
//
// A Plan is a list of Fault windows anchored at the moment the plan is
// created (the simulation epoch). The platform consults the plan through
// narrow probes: storage wrappers ask StorageFailure per request, the FaaS
// controller asks ControllerDown per invocation and ExecFactor per
// activation. A nil *Plan is inert everywhere, so wiring is unconditional.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"gowren/internal/cos"
	"gowren/internal/vclock"
)

// Kind names a fault type.
type Kind string

const (
	// COSBrownout makes object-storage requests fail with
	// cos.ErrRequestFailed at Probability while the window is active —
	// a region-wide storage degradation rather than independent packet
	// loss.
	COSBrownout Kind = "cos-brownout"
	// ControllerOutage makes the FaaS gateway refuse every invocation
	// with a 429 (faas.ErrThrottled) while the window is active.
	ControllerOutage Kind = "controller-outage"
	// SlowContainers multiplies each activation's execution jitter by
	// Factor while the window is active — the noisy-neighbour windows
	// behind the paper's Fig. 3 stragglers.
	SlowContainers Kind = "slow-containers"
	// ExchangeCacheDown kills the memory-tier exchange cache while the
	// window is active: requests fail and the node's contents are lost,
	// so it restarts empty when the window closes. Shuffles must degrade
	// to the COS path, never fail.
	ExchangeCacheDown Kind = "exchange-cache-down"
	// ExchangePeerLoss kills lingering exchange peers while the window is
	// active: direct partition pulls fail and advertised partitions are
	// dropped, forcing reducers onto the COS/recompute fallback.
	ExchangePeerLoss Kind = "exchange-peer-loss"
)

// Fault is one scripted fault window, relative to the plan epoch.
type Fault struct {
	// Kind selects the fault type. Required.
	Kind Kind
	// Start and End bound the window: active when Start <= elapsed < End.
	// End must be greater than Start.
	Start, End time.Duration
	// Probability is the per-request failure probability of a
	// COSBrownout. Zero selects 0.9 (browned out, not fully down).
	Probability float64
	// Factor is the jitter multiplier of a SlowContainers window. Zero
	// selects 10.
	Factor float64
}

func (f Fault) validate() error {
	switch f.Kind {
	case COSBrownout, ControllerOutage, SlowContainers,
		ExchangeCacheDown, ExchangePeerLoss:
	default:
		return fmt.Errorf("chaos: unknown fault kind %q", f.Kind)
	}
	if f.End <= f.Start || f.Start < 0 {
		return fmt.Errorf("chaos: %s window [%v, %v) is empty or negative", f.Kind, f.Start, f.End)
	}
	if f.Probability < 0 || f.Probability > 1 {
		return fmt.Errorf("chaos: %s probability %v out of [0,1]", f.Kind, f.Probability)
	}
	if f.Factor < 0 {
		return fmt.Errorf("chaos: %s factor %v negative", f.Kind, f.Factor)
	}
	return nil
}

// Plan is a validated fault schedule anchored on a clock. All methods are
// safe for concurrent use and on a nil receiver (inert).
type Plan struct {
	clk    vclock.Clock
	epoch  time.Time
	faults []Fault

	mu  sync.Mutex
	rng *rand.Rand
}

// NewPlan validates faults and anchors their windows at clk.Now(). seed
// drives the brownout failure draws.
func NewPlan(clk vclock.Clock, seed int64, faults []Fault) (*Plan, error) {
	if clk == nil {
		return nil, fmt.Errorf("chaos: plan requires a clock")
	}
	normalized := make([]Fault, len(faults))
	for i, f := range faults {
		if err := f.validate(); err != nil {
			return nil, err
		}
		if f.Kind == COSBrownout && f.Probability == 0 {
			f.Probability = 0.9
		}
		if f.Kind == SlowContainers && f.Factor == 0 {
			f.Factor = 10
		}
		normalized[i] = f
	}
	return &Plan{
		clk:    clk,
		epoch:  clk.Now(),
		faults: normalized,
		rng:    rand.New(rand.NewSource(seed)),
	}, nil
}

// active returns the matching active fault of the given kind, if any.
// Overlapping windows of the same kind resolve to the first in plan order.
func (p *Plan) active(kind Kind) (Fault, bool) {
	if p == nil {
		return Fault{}, false
	}
	elapsed := p.clk.Now().Sub(p.epoch)
	for _, f := range p.faults {
		if f.Kind == kind && elapsed >= f.Start && elapsed < f.End {
			return f, true
		}
	}
	return Fault{}, false
}

// StorageFailure draws one correlated-failure decision for a storage
// request issued now.
func (p *Plan) StorageFailure() bool {
	f, ok := p.active(COSBrownout)
	if !ok {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Float64() < f.Probability
}

// ControllerDown reports whether the FaaS gateway is refusing invocations
// now.
func (p *Plan) ControllerDown() bool {
	_, ok := p.active(ControllerOutage)
	return ok
}

// CacheDown reports whether the memory-tier exchange cache is dead now.
func (p *Plan) CacheDown() bool {
	_, ok := p.active(ExchangeCacheDown)
	return ok
}

// PeerLost reports whether lingering exchange peers are being killed now.
func (p *Plan) PeerLost() bool {
	_, ok := p.active(ExchangePeerLoss)
	return ok
}

// ExecFactor returns the current execution-jitter multiplier (1 outside
// any SlowContainers window).
func (p *Plan) ExecFactor() float64 {
	f, ok := p.active(SlowContainers)
	if !ok {
		return 1
	}
	return f.Factor
}

// Storage wraps a cos.Client with the plan's COS-brownout windows: while a
// window is active, requests fail with cos.ErrRequestFailed at the window's
// probability before reaching the inner client. Layer it *under* retrying
// wrappers so retries observe the brownout like real SDKs would.
type Storage struct {
	inner cos.Client
	plan  *Plan
}

var _ cos.Client = (*Storage)(nil)

// WrapStorage returns inner guarded by plan. A nil plan returns inner
// unchanged.
func WrapStorage(inner cos.Client, plan *Plan) cos.Client {
	if plan == nil {
		return inner
	}
	return &Storage{inner: inner, plan: plan}
}

func (s *Storage) guard() error {
	if s.plan.StorageFailure() {
		return cos.ErrRequestFailed
	}
	return nil
}

// CreateBucket implements cos.Client.
func (s *Storage) CreateBucket(bucket string) error {
	if err := s.guard(); err != nil {
		return err
	}
	return s.inner.CreateBucket(bucket)
}

// DeleteBucket implements cos.Client.
func (s *Storage) DeleteBucket(bucket string) error {
	if err := s.guard(); err != nil {
		return err
	}
	return s.inner.DeleteBucket(bucket)
}

// BucketExists implements cos.Client.
func (s *Storage) BucketExists(bucket string) (bool, error) {
	if err := s.guard(); err != nil {
		return false, err
	}
	return s.inner.BucketExists(bucket)
}

// Put implements cos.Client.
func (s *Storage) Put(bucket, key string, data []byte) (cos.ObjectMeta, error) {
	if err := s.guard(); err != nil {
		return cos.ObjectMeta{}, err
	}
	return s.inner.Put(bucket, key, data)
}

// PutIf implements cos.Conditional: the fault guard fires before the inner
// compare-and-swap, so an injected failure never half-commits a lease write.
func (s *Storage) PutIf(bucket, key string, data []byte, ifMatch string) (cos.ObjectMeta, error) {
	if err := s.guard(); err != nil {
		return cos.ObjectMeta{}, err
	}
	return cos.PutIf(s.inner, bucket, key, data, ifMatch)
}

// Get implements cos.Client.
func (s *Storage) Get(bucket, key string) ([]byte, cos.ObjectMeta, error) {
	if err := s.guard(); err != nil {
		return nil, cos.ObjectMeta{}, err
	}
	return s.inner.Get(bucket, key)
}

// GetRange implements cos.Client.
func (s *Storage) GetRange(bucket, key string, offset, length int64) ([]byte, cos.ObjectMeta, error) {
	if err := s.guard(); err != nil {
		return nil, cos.ObjectMeta{}, err
	}
	return s.inner.GetRange(bucket, key, offset, length)
}

// Head implements cos.Client.
func (s *Storage) Head(bucket, key string) (cos.ObjectMeta, error) {
	if err := s.guard(); err != nil {
		return cos.ObjectMeta{}, err
	}
	return s.inner.Head(bucket, key)
}

// List implements cos.Client.
func (s *Storage) List(bucket, prefix, marker string, maxKeys int) (cos.ListResult, error) {
	if err := s.guard(); err != nil {
		return cos.ListResult{}, err
	}
	return s.inner.List(bucket, prefix, marker, maxKeys)
}

// ListBuckets implements cos.Client.
func (s *Storage) ListBuckets() ([]string, error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	return s.inner.ListBuckets()
}

// Delete implements cos.Client.
func (s *Storage) Delete(bucket, key string) error {
	if err := s.guard(); err != nil {
		return err
	}
	return s.inner.Delete(bucket, key)
}
