package traffic

import (
	"reflect"
	"testing"
	"time"
)

func baseConfig() Config {
	return Config{
		Seed:     42,
		Tenants:  []string{"alpha", "beta", "gamma", "delta"},
		Horizon:  60 * time.Second,
		BaseRate: 40,
		ZipfS:    1,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := baseConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different schedules")
	}
	cfg.Seed = 43
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateSortedWithinHorizon(t *testing.T) {
	arr, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) == 0 {
		t.Fatal("empty schedule")
	}
	for i, a := range arr {
		if a.At < 0 || a.At >= 60*time.Second {
			t.Fatalf("arrival %d at %v outside horizon", i, a.At)
		}
		if i > 0 && arr[i-1].At > a.At {
			t.Fatalf("arrivals out of order at %d: %v > %v", i, arr[i-1].At, a.At)
		}
	}
}

func TestZipfSkewOrdersTenantVolume(t *testing.T) {
	cfg := baseConfig()
	cfg.Horizon = 5 * time.Minute
	arr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, a := range arr {
		counts[a.Tenant]++
	}
	if counts["alpha"] <= counts["delta"] {
		t.Fatalf("zipf skew should favor the first tenant: alpha=%d delta=%d",
			counts["alpha"], counts["delta"])
	}
	shares := cfg.Shares()
	if shares[0] <= shares[3] {
		t.Fatalf("shares not skewed: %v", shares)
	}
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %g, want 1", sum)
	}
}

func TestBurstRaisesWindowVolume(t *testing.T) {
	cfg := baseConfig()
	cfg.ZipfS = 0
	cfg.Bursts = []Burst{{Tenant: "beta", Start: 20 * time.Second, End: 40 * time.Second, Factor: 10}}
	arr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inWindow, outWindow := 0, 0
	for _, a := range arr {
		if a.Tenant != "beta" {
			continue
		}
		if a.At >= 20*time.Second && a.At < 40*time.Second {
			inWindow++
		} else {
			outWindow++
		}
	}
	// The burst window is 20s of 10× rate vs 40s of 1×: expect roughly
	// a 5× count ratio; 2× is a safe lower bound for any seed.
	if inWindow < 2*outWindow {
		t.Fatalf("burst window not elevated: in=%d out=%d", inWindow, outWindow)
	}
}

func TestBurstDoesNotPerturbOtherTenants(t *testing.T) {
	cfg := baseConfig()
	plain, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Bursts = []Burst{{Tenant: "beta", Start: 0, End: 30 * time.Second, Factor: 8}}
	bursty, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	filter := func(arr []Arrival, tenant string) []Arrival {
		var out []Arrival
		for _, a := range arr {
			if a.Tenant == tenant {
				out = append(out, a)
			}
		}
		return out
	}
	for _, tenant := range []string{"alpha", "gamma", "delta"} {
		if !reflect.DeepEqual(filter(plain, tenant), filter(bursty, tenant)) {
			t.Fatalf("burst on beta changed %s's stream", tenant)
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{Tenants: []string{"a"}, BaseRate: 1},                                            // no horizon
		{Tenants: []string{"a"}, Horizon: time.Second},                                   // no rate
		{Tenants: []string{"a"}, Horizon: time.Second, BaseRate: 1, DiurnalAmplitude: 1}, // amplitude ≥ 1
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Fatalf("config %d: expected error", i)
		}
	}
}
