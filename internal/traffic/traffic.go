// Package traffic generates seeded open-loop arrival schedules for
// multi-tenant load experiments. An open-loop generator decides arrival
// times up front from the offered-load model alone — arrivals do not slow
// down when the platform rejects or queues them — which is what makes it
// suitable for overload studies: the platform must shed, not the workload.
//
// The model is an inhomogeneous Poisson process per tenant, realized by
// thinning: tenant shares follow a Zipf distribution over the tenant list
// (first tenant largest), the aggregate rate is modulated by a diurnal
// sinusoid, and per-tenant burst windows multiply the tenant's rate by a
// factor — the noisy-neighbor knob. Everything derives from Config.Seed,
// so the same config always yields the same schedule, bit for bit.
package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Burst multiplies one tenant's arrival rate by Factor inside [Start, End).
type Burst struct {
	Tenant string
	Start  time.Duration
	End    time.Duration
	// Factor scales the tenant's rate within the window; 10 turns a
	// tenant offering its fair share into a 10× noisy neighbor.
	Factor float64
}

// Config describes the offered load.
type Config struct {
	// Seed drives every random draw; same seed, same schedule.
	Seed int64
	// Tenants lists tenant names in share order: with ZipfS > 0 the
	// first tenant receives the largest share of BaseRate.
	Tenants []string
	// Horizon is the schedule length; arrivals land in [0, Horizon).
	Horizon time.Duration
	// BaseRate is the aggregate arrival rate across all tenants, per
	// second, before diurnal modulation and bursts.
	BaseRate float64
	// ZipfS is the Zipf skew exponent over tenant shares: 0 means equal
	// shares, 1 gives the classic 1/rank falloff.
	ZipfS float64
	// DiurnalAmplitude in [0, 1) modulates the rate as
	// 1 + A·sin(2πt/Period); 0 disables the sinusoid.
	DiurnalAmplitude float64
	// DiurnalPeriod is the sinusoid period (default: the horizon).
	DiurnalPeriod time.Duration
	// Bursts are per-tenant overload windows.
	Bursts []Burst
}

// Arrival is one scheduled invocation.
type Arrival struct {
	At     time.Duration
	Tenant string
}

// Shares returns each tenant's fraction of BaseRate under the Zipf skew,
// in Tenants order. The fractions sum to 1.
func (c Config) Shares() []float64 {
	n := len(c.Tenants)
	shares := make([]float64, n)
	if n == 0 {
		return shares
	}
	var sum float64
	for i := range shares {
		shares[i] = 1 / math.Pow(float64(i+1), c.ZipfS)
		sum += shares[i]
	}
	for i := range shares {
		shares[i] /= sum
	}
	return shares
}

// Generate realizes the schedule: one thinned Poisson stream per tenant,
// merged and sorted by (At, Tenant). Each tenant draws from its own
// sub-seeded source, so adding a tenant or a burst window never perturbs
// the other tenants' streams.
func Generate(cfg Config) ([]Arrival, error) {
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("traffic: horizon must be positive, got %v", cfg.Horizon)
	}
	if cfg.BaseRate <= 0 {
		return nil, fmt.Errorf("traffic: base rate must be positive, got %g", cfg.BaseRate)
	}
	if cfg.DiurnalAmplitude < 0 || cfg.DiurnalAmplitude >= 1 {
		return nil, fmt.Errorf("traffic: diurnal amplitude must be in [0,1), got %g", cfg.DiurnalAmplitude)
	}
	period := cfg.DiurnalPeriod
	if period <= 0 {
		period = cfg.Horizon
	}
	shares := cfg.Shares()
	var out []Arrival
	for i, tenant := range cfg.Tenants {
		rate := cfg.BaseRate * shares[i]
		if rate <= 0 {
			continue
		}
		// Independent per-tenant stream: mix the tenant index into the
		// seed with a splitmix-style constant so adjacent seeds do not
		// produce correlated streams.
		src := rand.New(rand.NewSource(cfg.Seed ^ int64(uint64(i+1)*0x9e3779b97f4a7c15)))
		out = append(out, thinnedStream(src, tenant, rate, period, cfg)...)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].At != out[b].At {
			return out[a].At < out[b].At
		}
		return out[a].Tenant < out[b].Tenant
	})
	return out, nil
}

// thinnedStream realizes one tenant's inhomogeneous Poisson process by
// Lewis-Shedler thinning: candidates arrive at the tenant's peak rate and
// survive with probability rate(t)/peak.
func thinnedStream(src *rand.Rand, tenant string, rate float64, period time.Duration, cfg Config) []Arrival {
	peak := rate * (1 + cfg.DiurnalAmplitude) * maxBurstFactor(tenant, cfg.Bursts)
	var out []Arrival
	t := time.Duration(0)
	for {
		// Exponential interarrival at the peak rate.
		t += time.Duration(src.ExpFloat64() / peak * float64(time.Second))
		if t >= cfg.Horizon {
			return out
		}
		r := rate * diurnal(t, period, cfg.DiurnalAmplitude) * burstFactor(tenant, t, cfg.Bursts)
		if src.Float64()*peak < r {
			out = append(out, Arrival{At: t, Tenant: tenant})
		}
	}
}

// diurnal evaluates the sinusoidal modulation at t.
func diurnal(t, period time.Duration, amplitude float64) float64 {
	if amplitude == 0 {
		return 1
	}
	return 1 + amplitude*math.Sin(2*math.Pi*t.Seconds()/period.Seconds())
}

// burstFactor multiplies the factors of every burst window covering t.
func burstFactor(tenant string, t time.Duration, bursts []Burst) float64 {
	f := 1.0
	for _, b := range bursts {
		if b.Tenant == tenant && t >= b.Start && t < b.End && b.Factor > 0 {
			f *= b.Factor
		}
	}
	return f
}

// maxBurstFactor bounds the tenant's burst multiplier for the thinning
// envelope.
func maxBurstFactor(tenant string, bursts []Burst) float64 {
	f := 1.0
	for _, b := range bursts {
		if b.Tenant == tenant && b.Factor > 1 {
			f *= b.Factor
		}
	}
	return f
}
