// Package runtime models IBM Cloud Functions' Docker-based runtimes. In the
// paper, a runtime is a Docker image holding a Python interpreter plus the
// packages a function needs; users build custom images and share them via
// the Docker Hub registry, and IBM-PyWren ships pickled user code that the
// image can import.
//
// Go cannot serialize closures, so GoWren makes the runtime image the unit
// of code distribution for user functions too: an Image bundles named,
// registered Go functions, and a staged call references (image, function
// name). This preserves the behaviours the paper depends on — per-executor
// runtime selection, custom runtimes with extra capabilities, image sharing
// through a registry, and cold-start cost attributed to image size — while
// substituting name-based dispatch for bytecode shipping.
package runtime

import (
	"encoding/json"
	"errors"
	"fmt"
	"maps"
	"slices"
	"sort"
	"sync"
	"time"

	"gowren/internal/cos"
	"gowren/internal/vclock"
	"gowren/internal/wire"
)

// Errors reported by the registry and execution context.
var (
	ErrImageNotFound    = errors.New("runtime: image not found")
	ErrFunctionNotFound = errors.New("runtime: function not found in image")
	ErrFunctionExists   = errors.New("runtime: function already registered")
	ErrImageExists      = errors.New("runtime: image already published")
	ErrDeadlineExceeded = errors.New("runtime: function deadline exceeded")
	ErrNoSpawner        = errors.New("runtime: dynamic composition unavailable in this context")
)

// DefaultImage is the name of the stock runtime, the analogue of the
// python-jessie:3 image IBM Cloud Functions ships with the most common
// packages preinstalled.
const DefaultImage = "gowren-default:1"

// PlainFunc is a user function over an inline JSON argument — the shape
// behind call_async() and map() in the paper's API (Table 2). The returned
// value is JSON-marshaled; returning *wire.FuturesRef instead makes the
// result a composition continuation (paper §4.4).
type PlainFunc func(ctx *Ctx, arg json.RawMessage) (any, error)

// MapPartitionFunc is a map function over a storage partition produced by
// the data partitioner (paper §4.3).
type MapPartitionFunc func(ctx *Ctx, part *PartitionReader) (any, error)

// ReduceFunc aggregates the JSON results of a set of map calls. group is
// the source object key in reducer-one-per-object mode, "" for a global
// reducer.
type ReduceFunc func(ctx *Ctx, group string, partials []json.RawMessage) (any, error)

// KVMapFunc is a shuffle map function: it emits key–value pairs from its
// partition, which the runner hash-partitions across reducers.
type KVMapFunc func(ctx *Ctx, part *PartitionReader) ([]wire.KV, error)

// KVReduceFunc reduces all values of one key; a shuffle reducer calls it
// once per key in its partition.
type KVReduceFunc func(ctx *Ctx, key string, values []json.RawMessage) (any, error)

// Image is a named bundle of registered functions plus simulated image
// properties that drive cold-start cost.
type Image struct {
	name   string
	sizeMB int

	mu       sync.RWMutex
	plain    map[string]PlainFunc
	mappers  map[string]MapPartitionFunc
	reducer  map[string]ReduceFunc
	kvMap    map[string]KVMapFunc
	kvReduce map[string]KVReduceFunc
}

// NewImage creates an empty image. sizeMB models the compressed image size
// pulled on cold start; <= 0 uses a typical small-runtime default.
func NewImage(name string, sizeMB int) *Image {
	if sizeMB <= 0 {
		sizeMB = 180 // python-jessie:3 scale
	}
	return &Image{
		name:     name,
		sizeMB:   sizeMB,
		plain:    make(map[string]PlainFunc),
		mappers:  make(map[string]MapPartitionFunc),
		reducer:  make(map[string]ReduceFunc),
		kvMap:    make(map[string]KVMapFunc),
		kvReduce: make(map[string]KVReduceFunc),
	}
}

// Name returns the image name.
func (img *Image) Name() string { return img.name }

// SizeMB returns the simulated image size in MB.
func (img *Image) SizeMB() int { return img.sizeMB }

// Extend builds a new image on top of img, the Docker FROM idiom the paper
// describes for custom runtimes ("a user can build a Docker image with the
// required packages"). The child starts with every function of the base;
// extraSizeMB models the added layers. Register additional functions on
// the returned image before publishing it.
func (img *Image) Extend(name string, extraSizeMB int) *Image {
	if extraSizeMB < 0 {
		extraSizeMB = 0
	}
	child := NewImage(name, img.sizeMB+extraSizeMB)
	img.mu.RLock()
	defer img.mu.RUnlock()
	for n, fn := range img.plain {
		child.plain[n] = fn
	}
	for n, fn := range img.mappers {
		child.mappers[n] = fn
	}
	for n, fn := range img.reducer {
		child.reducer[n] = fn
	}
	for n, fn := range img.kvMap {
		child.kvMap[n] = fn
	}
	for n, fn := range img.kvReduce {
		child.kvReduce[n] = fn
	}
	return child
}

// RegisterPlain adds a plain function under name.
func (img *Image) RegisterPlain(name string, fn PlainFunc) error {
	img.mu.Lock()
	defer img.mu.Unlock()
	if img.existsLocked(name) {
		return fmt.Errorf("register %q in %s: %w", name, img.name, ErrFunctionExists)
	}
	img.plain[name] = fn
	return nil
}

// RegisterMapPartition adds a partition map function under name.
func (img *Image) RegisterMapPartition(name string, fn MapPartitionFunc) error {
	img.mu.Lock()
	defer img.mu.Unlock()
	if img.existsLocked(name) {
		return fmt.Errorf("register %q in %s: %w", name, img.name, ErrFunctionExists)
	}
	img.mappers[name] = fn
	return nil
}

// RegisterReduce adds a reduce function under name.
func (img *Image) RegisterReduce(name string, fn ReduceFunc) error {
	img.mu.Lock()
	defer img.mu.Unlock()
	if img.existsLocked(name) {
		return fmt.Errorf("register %q in %s: %w", name, img.name, ErrFunctionExists)
	}
	img.reducer[name] = fn
	return nil
}

// RegisterKVMap adds a shuffle map function under name.
func (img *Image) RegisterKVMap(name string, fn KVMapFunc) error {
	img.mu.Lock()
	defer img.mu.Unlock()
	if img.existsLocked(name) {
		return fmt.Errorf("register %q in %s: %w", name, img.name, ErrFunctionExists)
	}
	img.kvMap[name] = fn
	return nil
}

// RegisterKVReduce adds a per-key reduce function under name.
func (img *Image) RegisterKVReduce(name string, fn KVReduceFunc) error {
	img.mu.Lock()
	defer img.mu.Unlock()
	if img.existsLocked(name) {
		return fmt.Errorf("register %q in %s: %w", name, img.name, ErrFunctionExists)
	}
	img.kvReduce[name] = fn
	return nil
}

func (img *Image) existsLocked(name string) bool {
	_, p := img.plain[name]
	_, m := img.mappers[name]
	_, r := img.reducer[name]
	_, km := img.kvMap[name]
	_, kr := img.kvReduce[name]
	return p || m || r || km || kr
}

// Plain resolves a plain function.
func (img *Image) Plain(name string) (PlainFunc, error) {
	img.mu.RLock()
	defer img.mu.RUnlock()
	fn, ok := img.plain[name]
	if !ok {
		return nil, fmt.Errorf("plain function %q in image %s: %w", name, img.name, ErrFunctionNotFound)
	}
	return fn, nil
}

// MapPartition resolves a partition map function.
func (img *Image) MapPartition(name string) (MapPartitionFunc, error) {
	img.mu.RLock()
	defer img.mu.RUnlock()
	fn, ok := img.mappers[name]
	if !ok {
		return nil, fmt.Errorf("map function %q in image %s: %w", name, img.name, ErrFunctionNotFound)
	}
	return fn, nil
}

// Reduce resolves a reduce function.
func (img *Image) Reduce(name string) (ReduceFunc, error) {
	img.mu.RLock()
	defer img.mu.RUnlock()
	fn, ok := img.reducer[name]
	if !ok {
		return nil, fmt.Errorf("reduce function %q in image %s: %w", name, img.name, ErrFunctionNotFound)
	}
	return fn, nil
}

// KVMap resolves a shuffle map function.
func (img *Image) KVMap(name string) (KVMapFunc, error) {
	img.mu.RLock()
	defer img.mu.RUnlock()
	fn, ok := img.kvMap[name]
	if !ok {
		return nil, fmt.Errorf("kv-map function %q in image %s: %w", name, img.name, ErrFunctionNotFound)
	}
	return fn, nil
}

// KVReduce resolves a per-key reduce function.
func (img *Image) KVReduce(name string) (KVReduceFunc, error) {
	img.mu.RLock()
	defer img.mu.RUnlock()
	fn, ok := img.kvReduce[name]
	if !ok {
		return nil, fmt.Errorf("kv-reduce function %q in image %s: %w", name, img.name, ErrFunctionNotFound)
	}
	return fn, nil
}

// Functions lists every registered function name, sorted.
func (img *Image) Functions() []string {
	img.mu.RLock()
	defer img.mu.RUnlock()
	names := make([]string, 0, len(img.plain)+len(img.mappers)+len(img.reducer)+len(img.kvMap)+len(img.kvReduce))
	names = append(names, slices.Sorted(maps.Keys(img.plain))...)
	names = append(names, slices.Sorted(maps.Keys(img.mappers))...)
	names = append(names, slices.Sorted(maps.Keys(img.reducer))...)
	names = append(names, slices.Sorted(maps.Keys(img.kvMap))...)
	names = append(names, slices.Sorted(maps.Keys(img.kvReduce))...)
	sort.Strings(names)
	return names
}

// Registry is the Docker-Hub analogue: a shared catalogue of published
// images from which the FaaS platform pulls runtimes.
type Registry struct {
	mu     sync.RWMutex
	images map[string]*Image
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{images: make(map[string]*Image)}
}

// Publish adds an image to the registry; republishing a name is an error
// (images are immutable once shared, like tagged Docker images).
func (r *Registry) Publish(img *Image) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.images[img.Name()]; ok {
		return fmt.Errorf("publish %s: %w", img.Name(), ErrImageExists)
	}
	r.images[img.Name()] = img
	return nil
}

// Pull fetches an image by name.
func (r *Registry) Pull(name string) (*Image, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	img, ok := r.images[name]
	if !ok {
		return nil, fmt.Errorf("pull %s: %w", name, ErrImageNotFound)
	}
	return img, nil
}

// Images lists published image names, sorted.
func (r *Registry) Images() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.images))
	for n := range r.images {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Spawner is implemented by the executor layer and injected into function
// contexts to enable dynamic composition: code inside a function spawning
// further parallel functions (paper §4.4). The returned FuturesRef can be
// awaited in-function (nested parallelism with local merge) or returned as
// the function result (sequences / fully dynamic compositions, which
// GetResult follows transparently).
type Spawner interface {
	// Spawn stages one invocation of function per element of args and
	// fires them through the platform, returning a reference to the new
	// calls.
	Spawn(function string, args []any) (*wire.FuturesRef, error)
	// Await blocks on the simulation clock until every call in ref has
	// finished, returning their raw JSON results in call order.
	Await(ref *wire.FuturesRef) ([]json.RawMessage, error)
}

// CtxConfig assembles an execution context; it is populated by the FaaS
// container before entering user code.
type CtxConfig struct {
	Clock        vclock.Clock
	Storage      cos.Client
	Image        *Image
	ActivationID string
	Deadline     time.Time
	ColdStart    bool
	MemoryMB     int
	Spawner      Spawner
	// Region names the storage region the invocation executes in; empty on
	// single-region platforms. It is set after the runner decodes its call
	// payload (via WithPlacement), not by the container, because placement
	// travels in the payload.
	Region string
}

// Ctx is the per-invocation execution context passed to user functions. It
// exposes the simulation clock, object storage, limits, and the spawner for
// dynamic composition.
type Ctx struct {
	cfg CtxConfig
}

// NewCtx builds a context from cfg.
func NewCtx(cfg CtxConfig) *Ctx { return &Ctx{cfg: cfg} }

// WithPlacement derives a context for a call placed in a storage region:
// the same activation, clock, image and limits, but reading and writing
// through storage (the region's view) and spawning through spawner (which
// propagates the placement to child calls). A nil storage or spawner keeps
// the parent's.
func (c *Ctx) WithPlacement(storage cos.Client, region string, spawner Spawner) *Ctx {
	cfg := c.cfg
	if storage != nil {
		cfg.Storage = storage
	}
	if spawner != nil {
		cfg.Spawner = spawner
	}
	cfg.Region = region
	return &Ctx{cfg: cfg}
}

// Clock returns the simulation clock.
func (c *Ctx) Clock() vclock.Clock { return c.cfg.Clock }

// Storage returns the object-storage client visible to the function.
func (c *Ctx) Storage() cos.Client { return c.cfg.Storage }

// Region returns the storage region the invocation executes in, or "" on a
// single-region platform.
func (c *Ctx) Region() string { return c.cfg.Region }

// Image returns the runtime image the function executes in; handlers use it
// to resolve registered user functions by name.
func (c *Ctx) Image() *Image { return c.cfg.Image }

// ActivationID returns the platform activation identifier.
func (c *Ctx) ActivationID() string { return c.cfg.ActivationID }

// ColdStart reports whether this invocation paid a container cold start.
func (c *Ctx) ColdStart() bool { return c.cfg.ColdStart }

// MemoryMB returns the memory limit of the executing container.
func (c *Ctx) MemoryMB() int { return c.cfg.MemoryMB }

// Deadline returns the instant at which the platform will consider the
// invocation timed out.
func (c *Ctx) Deadline() time.Time { return c.cfg.Deadline }

// Remaining returns the time left before the deadline.
func (c *Ctx) Remaining() time.Duration {
	if c.cfg.Deadline.IsZero() {
		return time.Duration(1<<63 - 1)
	}
	return c.cfg.Deadline.Sub(c.cfg.Clock.Now())
}

// ChargeCompute advances the simulation clock by d, modeling CPU work of
// that duration inside the function. If the charge would cross the
// deadline, the clock advances only to the deadline and
// ErrDeadlineExceeded is returned; handlers should propagate it.
func (c *Ctx) ChargeCompute(d time.Duration) error {
	if d <= 0 {
		return nil
	}
	if !c.cfg.Deadline.IsZero() {
		if rem := c.Remaining(); d >= rem {
			c.cfg.Clock.Sleep(rem)
			return fmt.Errorf("charging %v with %v remaining: %w", d, rem, ErrDeadlineExceeded)
		}
	}
	c.cfg.Clock.Sleep(d)
	return nil
}

// Spawner returns the dynamic-composition spawner, or ErrNoSpawner when the
// context does not support it (e.g. plain unit tests).
func (c *Ctx) Spawner() (Spawner, error) {
	if c.cfg.Spawner == nil {
		return nil, ErrNoSpawner
	}
	return c.cfg.Spawner, nil
}

// PartitionReader gives a map function ranged access to its assigned
// partition without loading more than it asks for.
type PartitionReader struct {
	storage cos.Client
	part    wire.Partition
}

// NewPartitionReader wraps part for reads through storage.
func NewPartitionReader(storage cos.Client, part wire.Partition) *PartitionReader {
	return &PartitionReader{storage: storage, part: part}
}

// Partition returns the partition descriptor.
func (r *PartitionReader) Partition() wire.Partition { return r.part }

// Size returns the partition length in bytes.
func (r *PartitionReader) Size() int64 {
	if r.part.Length >= 0 {
		return r.part.Length
	}
	return r.part.ObjectSize - r.part.Offset
}

// ReadAll fetches the entire partition body.
func (r *PartitionReader) ReadAll() ([]byte, error) {
	data, _, err := r.storage.GetRange(r.part.Bucket, r.part.Key, r.part.Offset, r.part.Length)
	if err != nil {
		return nil, fmt.Errorf("partition read %s/%s: %w", r.part.Bucket, r.part.Key, err)
	}
	return data, nil
}

// ReadBeyond fetches up to length bytes starting immediately after the
// partition's end, clamped to the source object. Map functions use it to
// finish a record that the partitioner split across a chunk boundary.
func (r *PartitionReader) ReadBeyond(length int64) ([]byte, error) {
	end := r.part.Offset + r.Size()
	if max := r.part.ObjectSize - end; length > max {
		length = max
	}
	if length <= 0 {
		return []byte{}, nil
	}
	data, _, err := r.storage.GetRange(r.part.Bucket, r.part.Key, end, length)
	if err != nil {
		return nil, fmt.Errorf("partition read-beyond %s/%s: %w", r.part.Bucket, r.part.Key, err)
	}
	return data, nil
}

// ReadBefore fetches up to length bytes immediately preceding the
// partition's start. Map functions use it to decide whether the partition
// begins on a record boundary (e.g. whether the previous byte is '\n').
func (r *PartitionReader) ReadBefore(length int64) ([]byte, error) {
	if length > r.part.Offset {
		length = r.part.Offset
	}
	if length <= 0 {
		return []byte{}, nil
	}
	data, _, err := r.storage.GetRange(r.part.Bucket, r.part.Key, r.part.Offset-length, length)
	if err != nil {
		return nil, fmt.Errorf("partition read-before %s/%s: %w", r.part.Bucket, r.part.Key, err)
	}
	return data, nil
}

// ReadAt fetches length bytes starting at off *within* the partition.
// Reads are clamped to the partition bounds.
func (r *PartitionReader) ReadAt(off, length int64) ([]byte, error) {
	if off < 0 || off > r.Size() {
		return nil, fmt.Errorf("partition read at %d of %d: %w", off, r.Size(), cos.ErrInvalidRange)
	}
	if max := r.Size() - off; length < 0 || length > max {
		length = max
	}
	if length == 0 {
		return []byte{}, nil
	}
	data, _, err := r.storage.GetRange(r.part.Bucket, r.part.Key, r.part.Offset+off, length)
	if err != nil {
		return nil, fmt.Errorf("partition read %s/%s: %w", r.part.Bucket, r.part.Key, err)
	}
	return data, nil
}
