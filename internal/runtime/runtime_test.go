package runtime

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"gowren/internal/cos"
	"gowren/internal/vclock"
	"gowren/internal/wire"
)

func TestImageRegistrationAndLookup(t *testing.T) {
	img := NewImage("custom:1", 200)
	if img.Name() != "custom:1" || img.SizeMB() != 200 {
		t.Fatalf("image identity wrong: %s/%d", img.Name(), img.SizeMB())
	}
	if err := img.RegisterPlain("add7", func(*Ctx, json.RawMessage) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if err := img.RegisterMapPartition("scan", func(*Ctx, *PartitionReader) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if err := img.RegisterReduce("sum", func(*Ctx, string, []json.RawMessage) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := img.Plain("add7"); err != nil {
		t.Fatal(err)
	}
	if _, err := img.MapPartition("scan"); err != nil {
		t.Fatal(err)
	}
	if _, err := img.Reduce("sum"); err != nil {
		t.Fatal(err)
	}
	if _, err := img.Plain("scan"); !errors.Is(err, ErrFunctionNotFound) {
		t.Fatalf("cross-kind lookup err = %v", err)
	}
	if got, want := img.Functions(), []string{"add7", "scan", "sum"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Functions() = %v, want %v", got, want)
	}
}

func TestImageDuplicateNamesRejectedAcrossKinds(t *testing.T) {
	img := NewImage("i:1", 0)
	if err := img.RegisterPlain("f", func(*Ctx, json.RawMessage) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if err := img.RegisterMapPartition("f", func(*Ctx, *PartitionReader) (any, error) { return nil, nil }); !errors.Is(err, ErrFunctionExists) {
		t.Fatalf("err = %v, want ErrFunctionExists", err)
	}
	if err := img.RegisterReduce("f", func(*Ctx, string, []json.RawMessage) (any, error) { return nil, nil }); !errors.Is(err, ErrFunctionExists) {
		t.Fatalf("err = %v, want ErrFunctionExists", err)
	}
}

func TestImageDefaultSize(t *testing.T) {
	if got := NewImage("x", 0).SizeMB(); got <= 0 {
		t.Fatalf("default size = %d, want positive", got)
	}
}

func TestRegistryPublishPull(t *testing.T) {
	r := NewRegistry()
	img := NewImage("matplotlib:1", 450)
	if err := r.Publish(img); err != nil {
		t.Fatal(err)
	}
	if err := r.Publish(NewImage("matplotlib:1", 1)); !errors.Is(err, ErrImageExists) {
		t.Fatalf("republish err = %v, want ErrImageExists", err)
	}
	got, err := r.Pull("matplotlib:1")
	if err != nil {
		t.Fatal(err)
	}
	if got != img {
		t.Fatal("pulled a different image")
	}
	if _, err := r.Pull("nope"); !errors.Is(err, ErrImageNotFound) {
		t.Fatalf("pull missing err = %v", err)
	}
	if got := r.Images(); !reflect.DeepEqual(got, []string{"matplotlib:1"}) {
		t.Fatalf("Images() = %v", got)
	}
}

func TestCtxChargeComputeAdvancesClock(t *testing.T) {
	clk := vclock.NewVirtual()
	start := clk.Now()
	var err error
	clk.Run(func() {
		ctx := NewCtx(CtxConfig{Clock: clk, Deadline: start.Add(time.Minute)})
		err = ctx.ChargeCompute(10 * time.Second)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := clk.Now().Sub(start); got != 10*time.Second {
		t.Fatalf("elapsed = %v, want 10s", got)
	}
}

func TestCtxChargeComputeDeadline(t *testing.T) {
	clk := vclock.NewVirtual()
	start := clk.Now()
	var err error
	clk.Run(func() {
		ctx := NewCtx(CtxConfig{Clock: clk, Deadline: start.Add(5 * time.Second)})
		err = ctx.ChargeCompute(time.Minute)
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	// The clock stops exactly at the deadline: the platform kills the
	// function there rather than running the full requested charge.
	if got := clk.Now().Sub(start); got != 5*time.Second {
		t.Fatalf("elapsed = %v, want 5s", got)
	}
}

func TestCtxChargeComputeZeroDeadlineUnlimited(t *testing.T) {
	clk := vclock.NewVirtual()
	var err error
	clk.Run(func() {
		ctx := NewCtx(CtxConfig{Clock: clk})
		err = ctx.ChargeCompute(time.Hour)
	})
	if err != nil {
		t.Fatalf("unlimited ctx charge err = %v", err)
	}
	if ctx := NewCtx(CtxConfig{Clock: clk}); ctx.Remaining() <= 0 {
		t.Fatal("zero deadline should mean effectively infinite remaining")
	}
}

func TestCtxSpawnerAbsent(t *testing.T) {
	ctx := NewCtx(CtxConfig{Clock: vclock.NewReal()})
	if _, err := ctx.Spawner(); !errors.Is(err, ErrNoSpawner) {
		t.Fatalf("err = %v, want ErrNoSpawner", err)
	}
}

func TestPartitionReader(t *testing.T) {
	store := cos.NewStore()
	if err := store.CreateBucket("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put("d", "obj", []byte("abcdefghij")); err != nil {
		t.Fatal(err)
	}
	part := wire.Partition{Bucket: "d", Key: "obj", Offset: 2, Length: 6, ObjectSize: 10}
	r := NewPartitionReader(store, part)
	if r.Size() != 6 {
		t.Fatalf("size = %d, want 6", r.Size())
	}
	all, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if string(all) != "cdefgh" {
		t.Fatalf("ReadAll = %q", all)
	}
	mid, err := r.ReadAt(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(mid) != "def" {
		t.Fatalf("ReadAt(1,3) = %q", mid)
	}
	tail, err := r.ReadAt(4, -1)
	if err != nil {
		t.Fatal(err)
	}
	if string(tail) != "gh" {
		t.Fatalf("ReadAt(4,-1) = %q", tail)
	}
	clamped, err := r.ReadAt(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if string(clamped) != "gh" {
		t.Fatalf("clamped ReadAt = %q", clamped)
	}
	empty, err := r.ReadAt(6, 1)
	if err != nil || len(empty) != 0 {
		t.Fatalf("read at end = %q, %v; want empty, nil", empty, err)
	}
	if _, err := r.ReadAt(-1, 1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := r.ReadAt(7, 1); err == nil {
		t.Fatal("offset past partition accepted")
	}
}

func TestPartitionReaderWholeObject(t *testing.T) {
	store := cos.NewStore()
	if err := store.CreateBucket("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put("d", "obj", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	part := wire.Partition{Bucket: "d", Key: "obj", Offset: 0, Length: -1, ObjectSize: 10}
	r := NewPartitionReader(store, part)
	if r.Size() != 10 {
		t.Fatalf("size = %d, want 10", r.Size())
	}
	all, err := r.ReadAll()
	if err != nil || string(all) != "0123456789" {
		t.Fatalf("ReadAll = %q, %v", all, err)
	}
}

func TestPartitionReaderReadBeyond(t *testing.T) {
	store := cos.NewStore()
	if err := store.CreateBucket("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put("d", "obj", []byte("abcdefghij")); err != nil {
		t.Fatal(err)
	}
	part := wire.Partition{Bucket: "d", Key: "obj", Offset: 2, Length: 4, ObjectSize: 10}
	r := NewPartitionReader(store, part)
	got, err := r.ReadBeyond(3)
	if err != nil || string(got) != "ghi" {
		t.Fatalf("ReadBeyond(3) = %q, %v", got, err)
	}
	clamped, err := r.ReadBeyond(100)
	if err != nil || string(clamped) != "ghij" {
		t.Fatalf("clamped ReadBeyond = %q, %v", clamped, err)
	}
	last := NewPartitionReader(store, wire.Partition{Bucket: "d", Key: "obj", Offset: 6, Length: 4, ObjectSize: 10})
	empty, err := last.ReadBeyond(5)
	if err != nil || len(empty) != 0 {
		t.Fatalf("ReadBeyond at object end = %q, %v", empty, err)
	}
}

func TestPartitionReaderReadBefore(t *testing.T) {
	store := cos.NewStore()
	if err := store.CreateBucket("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put("d", "obj", []byte("abcdefghij")); err != nil {
		t.Fatal(err)
	}
	r := NewPartitionReader(store, wire.Partition{Bucket: "d", Key: "obj", Offset: 4, Length: 3, ObjectSize: 10})
	got, err := r.ReadBefore(2)
	if err != nil || string(got) != "cd" {
		t.Fatalf("ReadBefore(2) = %q, %v", got, err)
	}
	clamped, err := r.ReadBefore(100)
	if err != nil || string(clamped) != "abcd" {
		t.Fatalf("clamped ReadBefore = %q, %v", clamped, err)
	}
	first := NewPartitionReader(store, wire.Partition{Bucket: "d", Key: "obj", Offset: 0, Length: 3, ObjectSize: 10})
	empty, err := first.ReadBefore(5)
	if err != nil || len(empty) != 0 {
		t.Fatalf("ReadBefore at object start = %q, %v", empty, err)
	}
}

func TestImageExtend(t *testing.T) {
	base := NewImage("base:1", 100)
	if err := base.RegisterPlain("shared", func(*Ctx, json.RawMessage) (any, error) { return "base", nil }); err != nil {
		t.Fatal(err)
	}
	child := base.Extend("child:1", 50)
	if child.Name() != "child:1" || child.SizeMB() != 150 {
		t.Fatalf("child identity = %s/%d", child.Name(), child.SizeMB())
	}
	if _, err := child.Plain("shared"); err != nil {
		t.Fatalf("inherited function missing: %v", err)
	}
	// Additions to the child do not leak into the base.
	if err := child.RegisterPlain("extra", func(*Ctx, json.RawMessage) (any, error) { return "child", nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := base.Plain("extra"); !errors.Is(err, ErrFunctionNotFound) {
		t.Fatalf("base polluted by child registration: %v", err)
	}
	// Negative extra size clamps.
	if got := base.Extend("c2:1", -5).SizeMB(); got != 100 {
		t.Fatalf("clamped size = %d", got)
	}
}

func TestKVFunctionRegistration(t *testing.T) {
	img := NewImage("kv:1", 0)
	if err := img.RegisterKVMap("emit", func(*Ctx, *PartitionReader) ([]wire.KV, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if err := img.RegisterKVReduce("sum", func(*Ctx, string, []json.RawMessage) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := img.KVMap("emit"); err != nil {
		t.Fatal(err)
	}
	if _, err := img.KVReduce("sum"); err != nil {
		t.Fatal(err)
	}
	if _, err := img.KVMap("sum"); !errors.Is(err, ErrFunctionNotFound) {
		t.Fatalf("cross-kind lookup err = %v", err)
	}
	if _, err := img.KVReduce("missing"); !errors.Is(err, ErrFunctionNotFound) {
		t.Fatalf("missing lookup err = %v", err)
	}
	// Names shared across all five kinds collide.
	if err := img.RegisterPlain("emit", func(*Ctx, json.RawMessage) (any, error) { return nil, nil }); !errors.Is(err, ErrFunctionExists) {
		t.Fatalf("collision err = %v", err)
	}
	got := img.Functions()
	found := 0
	for _, n := range got {
		if n == "emit" || n == "sum" {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("Functions() = %v", got)
	}
	// Extend copies KV functions too.
	child := img.Extend("kv:2", 10)
	if _, err := child.KVMap("emit"); err != nil {
		t.Fatalf("extended image missing kv map: %v", err)
	}
	if _, err := child.KVReduce("sum"); err != nil {
		t.Fatalf("extended image missing kv reduce: %v", err)
	}
}
