// Package trace is the simulation's flight recorder: platform components
// emit structured events (invocations, throttles, cold starts, activation
// lifecycle) into a fixed-capacity ring, and tools dump them as a timeline.
// It answers the "what actually happened in that run?" questions that
// aggregate metrics hide — which activation throttled, when a container was
// pulled, how a spawner group interleaved.
//
// A nil *Recorder is valid everywhere and records nothing, so call sites
// never branch on whether tracing is on.
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Event kinds emitted by the platform.
const (
	KindInvoke    = "invoke"     // invocation admitted by the gateway
	KindThrottle  = "throttle"   // invocation rejected with 429
	KindShed      = "shed"       // queued invocation dropped past its admission deadline
	KindColdStart = "cold-start" // container provisioned cold
	KindWarmStart = "warm-start" // container reused
	KindImagePull = "image-pull" // first cold start of an image
	KindActStart  = "act-start"  // handler entered
	KindActEnd    = "act-end"    // handler finished
	KindCrash     = "crash"      // injected container crash
	KindExchange  = "exchange"   // shuffle-intermediate exchange op (fast tier or fallback)
)

// Event is one recorded occurrence.
type Event struct {
	At     time.Time
	Kind   string
	Actor  string // activation ID, action name, or executor ID
	Detail string
}

// Recorder is a bounded ring of events, safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	events  []Event
	next    int
	full    bool
	dropped int64
}

// New returns a Recorder holding up to capacity events (oldest evicted
// first). Capacity <= 0 selects a generous default.
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 16384
	}
	return &Recorder{events: make([]Event, capacity)}
}

// Emit records one event. Safe on a nil receiver.
func (r *Recorder) Emit(at time.Time, kind, actor, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.full {
		r.dropped++
	}
	r.events[r.next] = Event{At: at, Kind: kind, Actor: actor, Detail: detail}
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Emitf is Emit with a formatted detail.
func (r *Recorder) Emitf(at time.Time, kind, actor, format string, args ...any) {
	if r == nil {
		return
	}
	r.Emit(at, kind, actor, fmt.Sprintf(format, args...))
}

// Events returns the recorded events, oldest first. Safe on nil (empty).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.events[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Dropped reports how many events were evicted from the ring.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// CountByKind tallies recorded events per kind.
func (r *Recorder) CountByKind() map[string]int {
	counts := make(map[string]int)
	for _, ev := range r.Events() {
		counts[ev.Kind]++
	}
	return counts
}

// Dump writes the timeline with offsets relative to origin (zero origin
// uses the first event's time).
func (r *Recorder) Dump(w io.Writer, origin time.Time) error {
	events := r.Events()
	if len(events) == 0 {
		_, err := fmt.Fprintln(w, "(no events)")
		return err
	}
	if origin.IsZero() {
		origin = events[0].At
	}
	for _, ev := range events {
		off := ev.At.Sub(origin)
		if _, err := fmt.Fprintf(w, "%12s  %-10s  %-12s  %s\n", formatOffset(off), ev.Kind, ev.Actor, ev.Detail); err != nil {
			return err
		}
	}
	if d := r.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "(%d earlier events evicted)\n", d); err != nil {
			return err
		}
	}
	return nil
}

func formatOffset(d time.Duration) string {
	return fmt.Sprintf("+%.3fs", d.Seconds())
}
