package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)

func TestRecorderOrderAndSnapshot(t *testing.T) {
	r := New(8)
	for i := 0; i < 5; i++ {
		r.Emit(t0.Add(time.Duration(i)*time.Second), KindInvoke, "act", "x")
	}
	events := r.Events()
	if len(events) != 5 {
		t.Fatalf("events = %d", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].At.Before(events[i-1].At) {
			t.Fatal("events out of order")
		}
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped = %d", r.Dropped())
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Emitf(t0.Add(time.Duration(i)*time.Second), KindActEnd, "a", "ev-%d", i)
	}
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("events = %d, want capacity 4", len(events))
	}
	if events[0].Detail != "ev-6" || events[3].Detail != "ev-9" {
		t.Fatalf("ring kept wrong window: %v … %v", events[0].Detail, events[3].Detail)
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Emit(t0, KindInvoke, "a", "b")
	r.Emitf(t0, KindInvoke, "a", "%d", 1)
	if r.Events() != nil || r.Dropped() != 0 {
		t.Fatal("nil recorder should be inert")
	}
	if counts := r.CountByKind(); len(counts) != 0 {
		t.Fatalf("nil counts = %v", counts)
	}
}

func TestCountByKind(t *testing.T) {
	r := New(16)
	r.Emit(t0, KindInvoke, "a", "")
	r.Emit(t0, KindInvoke, "b", "")
	r.Emit(t0, KindThrottle, "c", "")
	counts := r.CountByKind()
	if counts[KindInvoke] != 2 || counts[KindThrottle] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestDump(t *testing.T) {
	r := New(16)
	r.Emit(t0, KindInvoke, "act-1", "work")
	r.Emit(t0.Add(1500*time.Millisecond), KindActEnd, "act-1", "work ok")
	var sb strings.Builder
	if err := r.Dump(&sb, t0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "+0.000s") || !strings.Contains(out, "+1.500s") {
		t.Fatalf("dump offsets wrong:\n%s", out)
	}
	if !strings.Contains(out, "act-end") {
		t.Fatalf("dump missing kinds:\n%s", out)
	}
	var empty strings.Builder
	if err := New(4).Dump(&empty, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no events") {
		t.Fatal("empty dump should say so")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := New(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(t0, KindActStart, "a", "d")
			}
		}()
	}
	wg.Wait()
	if got := len(r.Events()); got != 800 {
		t.Fatalf("events = %d, want 800", got)
	}
}
