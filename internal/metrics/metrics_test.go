package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var origin = time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)

func at(s float64) time.Time { return origin.Add(time.Duration(s * float64(time.Second))) }

func TestConcurrencySeriesBasic(t *testing.T) {
	spans := []Span{
		{Start: at(0), End: at(10)},
		{Start: at(2), End: at(8)},
		{Start: at(5), End: at(15)},
	}
	s := ConcurrencySeries(spans, origin, time.Second, 0)
	checks := map[time.Duration]int{
		0 * time.Second:  1,
		3 * time.Second:  2,
		6 * time.Second:  3,
		9 * time.Second:  2,
		12 * time.Second: 1,
	}
	for off, want := range checks {
		if got := s.At(off); got != want {
			t.Errorf("concurrency at %v = %d, want %d", off, got, want)
		}
	}
	if s.Max() != 3 {
		t.Errorf("max = %d, want 3", s.Max())
	}
}

func TestConcurrencySeriesNeverExceedsSpanCountProperty(t *testing.T) {
	f := func(startsRaw, lensRaw []uint8) bool {
		n := min(len(startsRaw), len(lensRaw), 30)
		spans := make([]Span, n)
		for i := 0; i < n; i++ {
			st := at(float64(startsRaw[i] % 60))
			spans[i] = MakeSpan(st, st.Add(time.Duration(lensRaw[i]%30)*time.Second))
		}
		s := ConcurrencySeries(spans, origin, time.Second, 0)
		return s.Max() <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeToReach(t *testing.T) {
	spans := []Span{
		{Start: at(0), End: at(60)},
		{Start: at(5), End: at(60)},
		{Start: at(10), End: at(60)},
	}
	s := ConcurrencySeries(spans, origin, time.Second, 0)
	if got := s.TimeToReach(3); got != 10*time.Second {
		t.Fatalf("time to reach 3 = %v, want 10s", got)
	}
	if got := s.TimeToReach(4); got != -1 {
		t.Fatalf("unreachable target = %v, want -1", got)
	}
}

func TestStats(t *testing.T) {
	spans := []Span{
		{Start: at(0), End: at(10)},
		{Start: at(0), End: at(20)},
		{Start: at(0), End: at(30)},
		{Start: at(0), End: at(40)},
	}
	st := Stats(spans)
	if st.Count != 4 || st.Min != 10*time.Second || st.Max != 40*time.Second {
		t.Fatalf("stats = %+v", st)
	}
	if st.Mean != 25*time.Second {
		t.Fatalf("mean = %v", st.Mean)
	}
	if st.P50 != 20*time.Second {
		t.Fatalf("p50 = %v", st.P50)
	}
	if empty := Stats(nil); empty.Count != 0 {
		t.Fatalf("empty stats = %+v", empty)
	}
}

func TestMakeSpanClampsInverted(t *testing.T) {
	s := MakeSpan(at(10), at(5))
	if s.Duration() != 0 {
		t.Fatalf("inverted span duration = %v", s.Duration())
	}
}

func TestChartRenders(t *testing.T) {
	spans := []Span{{Start: at(0), End: at(30)}, {Start: at(10), End: at(20)}}
	s := ConcurrencySeries(spans, origin, time.Second, 0)
	out := Chart("demo", s, 40, 8)
	if !strings.Contains(out, "demo") || !strings.Contains(out, "*") {
		t.Fatalf("chart output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 { // title + 8 rows
		t.Fatalf("chart rows = %d, want 9", len(lines))
	}
}

func TestCSVSeries(t *testing.T) {
	s := Series{Step: time.Second, Values: []int{1, 2, 3}}
	out := CSV(s)
	if !strings.HasPrefix(out, "offset_s,value\n0.0,1\n") {
		t.Fatalf("csv = %q", out)
	}
	if !strings.Contains(out, "2.0,3") {
		t.Fatalf("csv missing last sample: %q", out)
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Headers: []string{"Chunk", "Speedup"}}
	tb.AddRow("64MB", "10.95x")
	tb.AddRow("2MB", "135.79x")
	out := tb.Render()
	if !strings.Contains(out, "Chunk") || !strings.Contains(out, "135.79x") {
		t.Fatalf("table:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table rows = %d, want 4", len(lines))
	}
	csv := tb.RenderCSV()
	if !strings.HasPrefix(csv, "Chunk,Speedup\n64MB,10.95x\n") {
		t.Fatalf("csv = %q", csv)
	}
}

func TestSeriesAtBounds(t *testing.T) {
	s := Series{Step: time.Second, Values: []int{5, 6}}
	if s.At(-time.Second) != 5 {
		t.Fatal("negative offset should clamp to first")
	}
	if s.At(time.Hour) != 6 {
		t.Fatal("overlong offset should clamp to last")
	}
	var empty Series
	if empty.At(0) != 0 {
		t.Fatal("empty series At should be 0")
	}
}

func TestGanttRenders(t *testing.T) {
	spans := []Span{
		{Start: at(0), End: at(30)},
		{Start: at(5), End: at(35)},
		{Start: at(10), End: at(40)},
		{Start: at(15), End: at(45)},
		{Start: at(20), End: at(50)},
	}
	out := Gantt("executions", spans, origin, 40, 5)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("gantt rows = %d, want 6", len(lines))
	}
	if !strings.Contains(lines[0], "5 executions") {
		t.Fatalf("header = %q", lines[0])
	}
	// Later rows must start later (sorted by start, staircase shape).
	firstBar := strings.Index(lines[1], "=")
	lastBar := strings.Index(lines[5], "=")
	if lastBar <= firstBar {
		t.Fatalf("gantt not staircased: first=%d last=%d\n%s", firstBar, lastBar, out)
	}
	if empty := Gantt("none", nil, origin, 20, 4); !strings.Contains(empty, "no spans") {
		t.Fatal("empty gantt should say so")
	}
}

func TestGanttDownsamples(t *testing.T) {
	var spans []Span
	for i := 0; i < 100; i++ {
		spans = append(spans, Span{Start: at(float64(i)), End: at(float64(i) + 10)})
	}
	out := Gantt("many", spans, origin, 40, 8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 {
		t.Fatalf("gantt rows = %d, want 9 (8 bars + header)", len(lines))
	}
}
