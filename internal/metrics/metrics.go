// Package metrics turns raw activation spans into the quantities the
// paper's evaluation reports: concurrency-over-time series (Figs. 2 and 3),
// duration statistics, and aligned text/CSV tables (Table 3). It is shared
// by the experiment harnesses, cmd/experiments and the benchmarks.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Span is one function execution interval.
type Span struct {
	Start time.Time
	End   time.Time
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Series is a sampled time series relative to an origin instant.
type Series struct {
	Step   time.Duration
	Values []int
}

// At returns the sample index for an offset.
func (s Series) At(offset time.Duration) int {
	if s.Step <= 0 || len(s.Values) == 0 {
		return 0
	}
	i := int(offset / s.Step)
	if i < 0 {
		i = 0
	}
	if i >= len(s.Values) {
		i = len(s.Values) - 1
	}
	return s.Values[i]
}

// Max returns the series' maximum value.
func (s Series) Max() int {
	m := 0
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// ConcurrencySeries samples how many spans are simultaneously active at
// each step after origin — the black lines of the paper's Figs. 2 and 3.
func ConcurrencySeries(spans []Span, origin time.Time, step time.Duration, horizon time.Duration) Series {
	if step <= 0 {
		step = time.Second
	}
	if horizon <= 0 {
		for _, sp := range spans {
			if d := sp.End.Sub(origin); d > horizon {
				horizon = d
			}
		}
	}
	n := int(horizon/step) + 1
	values := make([]int, n)
	for _, sp := range spans {
		from := int(math.Ceil(float64(sp.Start.Sub(origin)) / float64(step)))
		to := int(math.Floor(float64(sp.End.Sub(origin)) / float64(step)))
		if from < 0 {
			from = 0
		}
		if to >= n {
			to = n - 1
		}
		for i := from; i <= to; i++ {
			values[i]++
		}
	}
	return Series{Step: step, Values: values}
}

// TimeToReach returns the first offset at which the series reaches target,
// or -1 if it never does. This measures the paper's "invocation phase":
// time until all N functions are up and running.
func (s Series) TimeToReach(target int) time.Duration {
	for i, v := range s.Values {
		if v >= target {
			return time.Duration(i) * s.Step
		}
	}
	return -1
}

// DurationStats summarizes span durations.
type DurationStats struct {
	Count          int
	Min, Max, Mean time.Duration
	P50, P90, P99  time.Duration
}

// Stats computes duration statistics over spans.
func Stats(spans []Span) DurationStats {
	if len(spans) == 0 {
		return DurationStats{}
	}
	ds := make([]time.Duration, len(spans))
	var sum time.Duration
	for i, sp := range spans {
		ds[i] = sp.Duration()
		sum += ds[i]
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(ds)-1))
		return ds[i]
	}
	return DurationStats{
		Count: len(ds),
		Min:   ds[0],
		Max:   ds[len(ds)-1],
		Mean:  sum / time.Duration(len(ds)),
		P50:   pct(0.50),
		P90:   pct(0.90),
		P99:   pct(0.99),
	}
}

// MakeSpan builds a span, clamping inverted intervals to empty.
func MakeSpan(start, end time.Time) Span {
	if end.Before(start) {
		end = start
	}
	return Span{Start: start, End: end}
}

// Chart renders a series as an ASCII line chart — the terminal counterpart
// of the paper's figures.
func Chart(title string, s Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	maxV := s.Max()
	if maxV == 0 {
		maxV = 1
	}
	n := len(s.Values)
	if n == 0 {
		return title + ": (no data)\n"
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for x := 0; x < width; x++ {
		idx := x * (n - 1) / max(width-1, 1)
		v := s.Values[idx]
		y := height - 1 - v*(height-1)/maxV
		grid[y][x] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (max %d, step %v, span %v)\n", title, s.Max(), s.Step, time.Duration(n-1)*s.Step)
	for i, row := range grid {
		label := ""
		switch i {
		case 0:
			label = fmt.Sprintf("%5d", maxV)
		case height - 1:
			label = fmt.Sprintf("%5d", 0)
		default:
			label = "     "
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, row)
	}
	return b.String()
}

// CSV renders a series as offset_seconds,value lines.
func CSV(s Series) string {
	var b strings.Builder
	b.WriteString("offset_s,value\n")
	for i, v := range s.Values {
		fmt.Fprintf(&b, "%.1f,%d\n", (time.Duration(i) * s.Step).Seconds(), v)
	}
	return b.String()
}

// Table is an aligned text table with optional CSV output.
type Table struct {
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render returns the table as aligned monospaced text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// RenderCSV returns the table as CSV.
func (t *Table) RenderCSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Gantt renders spans as stacked horizontal bars over a time axis — the
// gray per-function execution lines of the paper's Fig. 3. With more spans
// than rows, spans are downsampled evenly; bars are ordered by start time.
func Gantt(title string, spans []Span, origin time.Time, width, rows int) string {
	if width < 16 {
		width = 16
	}
	if rows < 4 {
		rows = 4
	}
	if len(spans) == 0 {
		return title + ": (no spans)\n"
	}
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start.Before(sorted[j].Start) })

	var horizon time.Duration
	for _, sp := range sorted {
		if d := sp.End.Sub(origin); d > horizon {
			horizon = d
		}
	}
	if horizon <= 0 {
		horizon = time.Second
	}
	if rows > len(sorted) {
		rows = len(sorted)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d executions over %v; showing %d)\n", title, len(sorted), horizon.Round(time.Second), rows)
	for r := 0; r < rows; r++ {
		sp := sorted[r*(len(sorted)-1)/max(rows-1, 1)]
		line := []byte(strings.Repeat(" ", width))
		from := int(float64(sp.Start.Sub(origin)) / float64(horizon) * float64(width-1))
		to := int(float64(sp.End.Sub(origin)) / float64(horizon) * float64(width-1))
		if from < 0 {
			from = 0
		}
		if to >= width {
			to = width - 1
		}
		for x := from; x <= to; x++ {
			line[x] = '='
		}
		fmt.Fprintf(&b, "|%s|\n", line)
	}
	return b.String()
}
