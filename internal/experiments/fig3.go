package experiments

import (
	"fmt"
	"io"
	"time"

	"gowren"
	"gowren/internal/metrics"
	"gowren/internal/workloads"
)

// Fig3Run is one workload of §6.2: n concurrent ~60 s compute-bound
// executors launched with massive spawning.
type Fig3Run struct {
	// Workload is the requested number of concurrent function executors.
	Workload int
	// PeakConcurrency is the maximum simultaneous executions observed —
	// "full concurrency" means it reaches Workload (the paper's black
	// line meeting the target size).
	PeakConcurrency int
	// TimeToFull is when the peak was first reached.
	TimeToFull time.Duration
	// Total is the experiment duration.
	Total time.Duration
	// Durations summarizes per-function runtimes; the spread is the
	// paper's "some functions ran fast while others slow".
	Durations metrics.DurationStats
	// Series is the concurrency curve (the black line of Fig. 3).
	Series metrics.Series
	// Spans are the individual executions (the gray lines of Fig. 3).
	Spans []metrics.Span
	// Origin is the measurement start, for rendering spans.
	Origin time.Time
}

// FullConcurrency reports whether every requested executor ran
// simultaneously at some instant.
func (r Fig3Run) FullConcurrency() bool { return r.PeakConcurrency >= r.Workload }

// Fig3Result aggregates the workload sweep.
type Fig3Result struct {
	Runs []Fig3Run
}

// RunFig3 reproduces Fig. 3 for the given workload sizes (use
// Fig3Workloads for the paper's 500…2,000 sweep).
func RunFig3(workloads_ []int, taskSeconds float64, seed int64) (Fig3Result, error) {
	var out Fig3Result
	for _, n := range workloads_ {
		run, err := runFig3Workload(n, taskSeconds, seed)
		if err != nil {
			return Fig3Result{}, fmt.Errorf("experiments: fig3 workload %d: %w", n, err)
		}
		out.Runs = append(out.Runs, run)
	}
	return out, nil
}

func runFig3Workload(n int, taskSeconds float64, seed int64) (Fig3Run, error) {
	// The paper raised the 1,000-concurrent default to reach 2,000.
	cloud, err := newWorkloadCloud(seed+int64(n), n+100)
	if err != nil {
		return Fig3Run{}, err
	}
	var runErr error
	var origin time.Time
	cloud.Run(func() {
		if err := warmPlatform(cloud); err != nil {
			runErr = err
			return
		}
		exec, err := wanExecutor(cloud, true)
		if err != nil {
			runErr = err
			return
		}
		args := make([]any, n)
		for i := range args {
			args[i] = taskSeconds
		}
		origin = cloud.Clock().Now()
		if _, err := exec.MapSlice(workloads.FuncComputeBound, args); err != nil {
			runErr = err
			return
		}
		if _, err := gowren.Results[float64](exec); err != nil {
			runErr = err
			return
		}
	})
	if runErr != nil {
		return Fig3Run{}, runErr
	}

	spans := spansSince(spansOf(cloud.Platform().Controller().Activations(), "gowren-runner--"), origin)
	if len(spans) != n {
		return Fig3Run{}, fmt.Errorf("got %d executions, want %d", len(spans), n)
	}
	series := metrics.ConcurrencySeries(spans, origin, time.Second, 0)
	var total time.Duration
	for _, sp := range spans {
		if d := sp.End.Sub(origin); d > total {
			total = d
		}
	}
	peak := series.Max()
	return Fig3Run{
		Workload:        n,
		PeakConcurrency: peak,
		TimeToFull:      series.TimeToReach(peak),
		Total:           total,
		Durations:       metrics.Stats(spans),
		Series:          series,
		Spans:           spans,
		Origin:          origin,
	}, nil
}

// Report writes the Fig. 3 reproduction.
func (r Fig3Result) Report(w io.Writer) {
	fmt.Fprintln(w, "Fig. 3 — Elasticity and Concurrency (massive spawning, ~60s tasks)")
	tbl := metrics.Table{Headers: []string{
		"workload", "peak concurrency", "full?", "time to full", "total", "exec p50", "exec p99",
	}}
	for _, run := range r.Runs {
		tbl.AddRow(
			fmt.Sprintf("%d", run.Workload),
			fmt.Sprintf("%d", run.PeakConcurrency),
			fmt.Sprintf("%v", run.FullConcurrency()),
			fmt.Sprintf("%.0fs", run.TimeToFull.Seconds()),
			fmt.Sprintf("%.0fs", run.Total.Seconds()),
			fmt.Sprintf("%.0fs", run.Durations.P50.Seconds()),
			fmt.Sprintf("%.0fs", run.Durations.P99.Seconds()),
		)
	}
	fmt.Fprint(w, tbl.Render())
	fmt.Fprintln(w, "paper: the black line met the target workload size in all experiments (full concurrency),")
	fmt.Fprintln(w, "with per-function runtimes varying due to platform internals (gray-line spread).")
	fmt.Fprintln(w)
	for _, run := range r.Runs {
		fmt.Fprint(w, metrics.Chart(fmt.Sprintf("concurrent functions — workload %d", run.Workload), run.Series, 72, 10))
		fmt.Fprint(w, metrics.Gantt(fmt.Sprintf("function executions — workload %d", run.Workload), run.Spans, run.Origin, 72, 8))
	}
}
