package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"gowren"
	"gowren/internal/billing"
	"gowren/internal/metrics"
	"gowren/internal/workloads"
)

// Table3Row is one measured row of the §6.4 MapReduce experiment.
type Table3Row struct {
	ChunkMiB    int // 0 for the sequential baseline
	Concurrency int // map executors (partitions)
	Elapsed     time.Duration
	Speedup     float64
	// CostUSD is the billed cost of the run: GB-seconds + storage
	// requests for the parallel rows, VM occupancy for the baseline.
	CostUSD float64
}

// Table3Result holds the sequential baseline and the chunk-size sweep,
// plus the per-city outputs of one run (used by the Fig. 5 rendering).
type Table3Result struct {
	DatasetBytes int64
	Cities       int
	Comments     int64
	Sequential   Table3Row
	Rows         []Table3Row
	// Maps are the per-city results from the finest-chunk run.
	Maps []workloads.CityMap
}

// RunTable3 reproduces Table 3 over a dataset of totalBytes (use
// Table3DatasetBytes for the paper's 1.9 GB) and the given chunk sizes in
// MiB.
func RunTable3(chunksMiB []int, totalBytes int64, seed int64) (Table3Result, error) {
	cities := workloads.Cities(totalBytes)
	out := Table3Result{
		DatasetBytes: workloads.TotalBytes(cities),
		Cities:       len(cities),
		Comments:     workloads.TotalRecords(cities),
	}

	// Sequential baseline: one notebook VM processing the cities one
	// after another (the paper's 1h26m run).
	seqCloud, err := newWorkloadCloud(seed, 10)
	if err != nil {
		return Table3Result{}, err
	}
	var seqErr error
	seqStart := seqCloud.Clock().Now()
	seqCloud.Run(func() {
		_, seqErr = workloads.SequentialToneAnalysis(workloads.SequentialCtx{Clock: seqCloud.Clock()}, cities, uint64(seed))
	})
	if seqErr != nil {
		return Table3Result{}, fmt.Errorf("experiments: table3 sequential baseline: %w", seqErr)
	}
	seqElapsed := seqCloud.Clock().Now().Sub(seqStart)
	out.Sequential = Table3Row{
		ChunkMiB:    0,
		Concurrency: 0,
		Elapsed:     seqElapsed,
		Speedup:     1,
		CostUSD:     billing.IBMVM2018().VMCost(seqElapsed),
	}

	for _, chunk := range chunksMiB {
		row, maps, err := runTable3Chunk(chunk, totalBytes, seed)
		if err != nil {
			return Table3Result{}, fmt.Errorf("experiments: table3 chunk %dMiB: %w", chunk, err)
		}
		row.Speedup = out.Sequential.Elapsed.Seconds() / row.Elapsed.Seconds()
		out.Rows = append(out.Rows, row)
		out.Maps = maps
	}
	return out, nil
}

func runTable3Chunk(chunkMiB int, totalBytes, seed int64) (Table3Row, []workloads.CityMap, error) {
	cloud, err := newWorkloadCloud(seed+int64(chunkMiB), 1000)
	if err != nil {
		return Table3Row{}, nil, err
	}
	if _, err := workloads.LoadDataset(cloud.Store(), "airbnb", totalBytes, uint64(seed)); err != nil {
		return Table3Row{}, nil, err
	}
	var (
		runErr  error
		elapsed time.Duration
		maps    []workloads.CityMap
		futures int
	)
	cloud.Run(func() {
		if err := warmPlatform(cloud); err != nil {
			runErr = err
			return
		}
		// The paper runs this from an IBM Watson Studio notebook — a
		// client inside the cloud — with massive spawning enabled.
		exec, err := cloud.Executor(
			gowren.WithClientProfile(gowren.ClientInCloud),
			gowren.WithMassiveSpawning(0),
			gowren.WithClientOverhead(WANClientOverhead),
			gowren.WithPollInterval(ExperimentPollInterval),
			gowren.WithStageConcurrency(WANStageConcurrency),
		)
		if err != nil {
			runErr = err
			return
		}
		start := cloud.Clock().Now()
		fs, err := exec.MapReduce(
			workloads.FuncToneMap,
			gowren.FromBuckets("airbnb"),
			workloads.FuncToneReduce,
			gowren.MapReduceOptions{
				ChunkBytes:          int64(chunkMiB) << 20,
				ReducerOnePerObject: true,
			},
		)
		if err != nil {
			runErr = err
			return
		}
		futures = len(fs)
		maps, err = gowren.Results[workloads.CityMap](exec)
		if err != nil {
			runErr = err
			return
		}
		elapsed = cloud.Clock().Now().Sub(start)
	})
	if runErr != nil {
		return Table3Row{}, nil, runErr
	}
	if futures != len(workloads.Cities(totalBytes)) {
		return Table3Row{}, nil, fmt.Errorf("reducers = %d, want one per city", futures)
	}

	// Concurrency = number of map executors = partitions of the plan.
	parts, err := gowren.PlanPartitions(cloud.Store(), gowren.FromBuckets("airbnb"), int64(chunkMiB)<<20)
	if err != nil {
		return Table3Row{}, nil, err
	}

	// Bill the run: function GB-seconds plus storage requests.
	usage := billing.MeterActivations(cloud.Platform().Controller().Activations(), 0)
	stats := cloud.Store().Stats()
	usage.StorageWrites = stats.PutOps
	usage.StorageReads = stats.GetOps + stats.HeadOps + stats.ListOps
	cost := usage.Cost(billing.IBMCloud2018())

	return Table3Row{ChunkMiB: chunkMiB, Concurrency: len(parts), Elapsed: elapsed, CostUSD: cost}, maps, nil
}

// Report writes the measured Table 3 next to the paper's values.
func (r Table3Result) Report(w io.Writer) {
	fmt.Fprintf(w, "Table 3 — Airbnb MapReduce job (%d cities, %.2f GB, %d comments)\n",
		r.Cities, float64(r.DatasetBytes)/1e9, r.Comments)
	tbl := metrics.Table{Headers: []string{
		"chunk", "executors", "paper", "exec time", "paper", "speedup", "paper", "cost",
	}}
	tbl.AddRow("sequential", "0",
		"0", fmt.Sprintf("%.0fs", r.Sequential.Elapsed.Seconds()),
		fmt.Sprintf("%.0fs", PaperTable3.SequentialSeconds), "1.00x", "(base)",
		fmt.Sprintf("$%.3f (VM)", r.Sequential.CostUSD))
	for i, row := range r.Rows {
		paperConc, paperTime, paperSpeed := "-", "-", "-"
		if i < len(PaperTable3.Concurrency) {
			paperConc = fmt.Sprintf("%d", PaperTable3.Concurrency[i])
			paperTime = fmt.Sprintf("%.0fs", PaperTable3.ExecSeconds[i])
			paperSpeed = fmt.Sprintf("%.2fx", PaperTable3.Speedup[i])
		}
		tbl.AddRow(
			fmt.Sprintf("%dMB", row.ChunkMiB),
			fmt.Sprintf("%d", row.Concurrency), paperConc,
			fmt.Sprintf("%.0fs", row.Elapsed.Seconds()), paperTime,
			fmt.Sprintf("%.2fx", row.Speedup), paperSpeed,
			fmt.Sprintf("$%.3f", row.CostUSD),
		)
	}
	fmt.Fprint(w, tbl.Render())
	fmt.Fprintln(w, "cost: function GB-seconds + storage requests (parallel rows) vs VM occupancy (baseline);")
	fmt.Fprintln(w, "the 100x+ faster runs cost the same order of magnitude — the serverless trade the paper's intro describes.")
	fmt.Fprintln(w)
}

// RenderCityMap renders the Fig. 5 stand-in for the named city from the
// finest-chunk run ("new-york" matches the paper's figure).
func (r Table3Result) RenderCityMap(city string, width, height int) string {
	for _, m := range r.Maps {
		if strings.HasSuffix(m.City, city) {
			return workloads.RenderASCIIMap(m, width, height)
		}
	}
	return fmt.Sprintf("city %q not found in results\n", city)
}
