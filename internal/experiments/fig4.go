package experiments

import (
	"fmt"
	"io"
	"time"

	"gowren"
	"gowren/internal/metrics"
	"gowren/internal/workloads"
)

// Fig4Cell is one (array size, depth) measurement of §6.3: the time to
// mergesort N integers with a function spawn tree of the given depth.
type Fig4Cell struct {
	N        int64
	Depth    int
	Elapsed  time.Duration
	Verified bool
}

// Fig4Result is the full sweep: one line per depth, one point per size, as
// plotted in the paper's Fig. 4.
type Fig4Result struct {
	Sizes  []int64
	Depths []int
	// Cells[d][s] is the measurement for Depths[d] and Sizes[s].
	Cells [][]Fig4Cell
}

// RunFig4 reproduces Fig. 4. Use Fig4Sizes/Fig4Depths for the paper's
// scale; smaller sweeps keep benchmark iterations cheap.
func RunFig4(sizes []int64, depths []int, seed int64, verify bool) (Fig4Result, error) {
	out := Fig4Result{Sizes: sizes, Depths: depths}
	for _, d := range depths {
		row := make([]Fig4Cell, 0, len(sizes))
		for _, n := range sizes {
			cell, err := runFig4Cell(n, d, seed, verify)
			if err != nil {
				return Fig4Result{}, fmt.Errorf("experiments: fig4 n=%d d=%d: %w", n, d, err)
			}
			row = append(row, cell)
		}
		out.Cells = append(out.Cells, row)
	}
	return out, nil
}

func runFig4Cell(n int64, depth int, seed int64, verify bool) (Fig4Cell, error) {
	cloud, err := newWorkloadCloud(seed, 4096)
	if err != nil {
		return Fig4Cell{}, err
	}
	if err := workloads.LoadArray(cloud.Store(), "arrays", "input", n, uint64(seed)+uint64(n)); err != nil {
		return Fig4Cell{}, err
	}
	if err := cloud.Store().CreateBucket("sortout"); err != nil {
		return Fig4Cell{}, err
	}
	var (
		runErr  error
		elapsed time.Duration
		seg     workloads.Segment
	)
	cloud.Run(func() {
		if err := warmPlatform(cloud); err != nil {
			runErr = err
			return
		}
		exec, err := wanExecutor(cloud, false)
		if err != nil {
			runErr = err
			return
		}
		task := workloads.SortTask{
			Bucket:    "arrays",
			Key:       "input",
			Offset:    0,
			Count:     n,
			Depth:     depth,
			OutBucket: "sortout",
		}
		start := cloud.Clock().Now()
		if _, err := exec.CallAsync(workloads.FuncMergesort, task); err != nil {
			runErr = err
			return
		}
		seg, err = gowren.Result[workloads.Segment](exec)
		if err != nil {
			runErr = err
			return
		}
		elapsed = cloud.Clock().Now().Sub(start)
	})
	if runErr != nil {
		return Fig4Cell{}, runErr
	}
	cell := Fig4Cell{N: n, Depth: depth, Elapsed: elapsed}
	if verify {
		if err := workloads.VerifySorted(cloud.Store(), seg); err != nil {
			return Fig4Cell{}, err
		}
		cell.Verified = true
	}
	return cell, nil
}

// BestDepthAt returns the depth with the lowest time for size index s.
func (r Fig4Result) BestDepthAt(s int) int {
	best, bestD := time.Duration(1<<62), 0
	for d := range r.Depths {
		if e := r.Cells[d][s].Elapsed; e < best {
			best, bestD = e, r.Depths[d]
		}
	}
	return bestD
}

// Report writes the Fig. 4 reproduction: execution time per array length,
// one column group per depth, as the paper plots.
func (r Fig4Result) Report(w io.Writer) {
	fmt.Fprintln(w, "Fig. 4 — Dynamic composition (mergesort): sort time vs array length per spawn-tree depth")
	headers := []string{"integers"}
	for _, d := range r.Depths {
		headers = append(headers, fmt.Sprintf("d=%d", d))
	}
	tbl := metrics.Table{Headers: headers}
	for s, n := range r.Sizes {
		row := []string{fmt.Sprintf("%d", n)}
		for d := range r.Depths {
			row = append(row, fmt.Sprintf("%.1fs", r.Cells[d][s].Elapsed.Seconds()))
		}
		tbl.AddRow(row...)
	}
	fmt.Fprint(w, tbl.Render())
	if len(r.Sizes) > 0 {
		fmt.Fprintf(w, "best depth at largest size (%d): d=%d\n", r.Sizes[len(r.Sizes)-1], r.BestDepthAt(len(r.Sizes)-1))
	}
	fmt.Fprintln(w, "paper: sort time grows linearly with N; deeper trees win at larger N,")
	fmt.Fprintln(w, "with major improvements up to d=3 and diminishing returns beyond.")
	fmt.Fprintln(w)
}
