package experiments

import (
	"fmt"

	"gowren"
	"gowren/internal/workloads"
)

// newWorkloadCloud builds a virtual-time cloud with the workload functions
// installed and the platform concurrency limit raised to maxConcurrent
// (the paper notes the 1,000 default "can be increased if needed"; §6.2
// runs up to 2,000 concurrent executors).
func newWorkloadCloud(seed int64, maxConcurrent int) (*gowren.Cloud, error) {
	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	if err := workloads.Register(img); err != nil {
		return nil, fmt.Errorf("experiments: register workloads: %w", err)
	}
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{
		Images:        []*gowren.Image{img},
		Seed:          seed,
		MaxConcurrent: maxConcurrent,
		Jitter:        true,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: build cloud: %w", err)
	}
	return cloud, nil
}

// warmPlatform performs one throwaway invocation so the runtime image is
// pulled and cached before measurement begins, as it would be on a platform
// that has executed the runtime before (§3.1: "the Docker container is
// cached in an internal registry"). Call it from inside cloud.Run.
func warmPlatform(cloud *gowren.Cloud) error {
	exec, err := cloud.Executor()
	if err != nil {
		return err
	}
	if _, err := exec.CallAsync(workloads.FuncComputeBound, 0.0); err != nil {
		return err
	}
	_, err = gowren.Results[float64](exec)
	return err
}
