package experiments

import (
	"fmt"
	"io"
	"time"

	"gowren"
	"gowren/internal/metrics"
	"gowren/internal/workloads"
)

// Table1Result compares "classic PyWren" behaviour (the baseline: direct
// local invocation, map-only, fixed runtime, no partitioner, no
// composition) against the full system, feature by feature, with measured
// demos where a feature is quantitative. It reproduces Table 1 of the
// paper as a behavioural checklist rather than prose.
type Table1Result struct {
	// Invocation times for ClassicFunctions tasks from the WAN client.
	ClassicInvoke time.Duration
	FullInvoke    time.Duration
	// MapReduceOK reports the full-system map_reduce with a
	// reducer-per-object ran correctly (classic mode has no reducer).
	MapReduceOK bool
	// Partitions counted by automatic discovery + partitioning (classic
	// mode has none).
	Partitions int
	// CompositionOK reports that a dynamic composition (nested spawn)
	// resolved end to end (classic mode has none).
	CompositionOK bool
	// CustomRuntimeOK reports a function exclusive to a user-built image
	// ran under an executor selecting that runtime.
	CustomRuntimeOK bool
}

// Table1Functions is the job size of the invocation-row demo (kept smaller
// than Fig. 2 so the Table 1 check stays fast).
const Table1Functions = 300

// RunTable1 measures the feature matrix.
func RunTable1(seed int64) (Table1Result, error) {
	var out Table1Result

	// Row "remote function spawning": classic = local invocation.
	invoke := func(massive bool) (time.Duration, error) {
		cloud, err := newWorkloadCloud(seed, Table1Functions+50)
		if err != nil {
			return 0, err
		}
		var (
			runErr  error
			elapsed time.Duration
		)
		cloud.Run(func() {
			if err := warmPlatform(cloud); err != nil {
				runErr = err
				return
			}
			exec, err := wanExecutor(cloud, massive)
			if err != nil {
				runErr = err
				return
			}
			args := make([]any, Table1Functions)
			for i := range args {
				args[i] = 1.0
			}
			start := cloud.Clock().Now()
			if _, err := exec.MapSlice(workloads.FuncComputeBound, args); err != nil {
				runErr = err
				return
			}
			elapsed = cloud.Clock().Now().Sub(start)
			if _, err := gowren.Results[float64](exec); err != nil {
				runErr = err
			}
		})
		return elapsed, runErr
	}
	var err error
	if out.ClassicInvoke, err = invoke(false); err != nil {
		return out, fmt.Errorf("experiments: table1 classic invoke: %w", err)
	}
	if out.FullInvoke, err = invoke(true); err != nil {
		return out, fmt.Errorf("experiments: table1 massive invoke: %w", err)
	}

	// Rows "MapReduce" + "data discovery & partitioning": full system runs
	// a reducer-per-object job over a discovered bucket.
	cloud, err := newWorkloadCloud(seed+7, 200)
	if err != nil {
		return out, err
	}
	cities, err := workloads.LoadDataset(cloud.Store(), "airbnb", 32<<20, uint64(seed))
	if err != nil {
		return out, err
	}
	parts, err := gowren.PlanPartitions(cloud.Store(), gowren.FromBuckets("airbnb"), 1<<20)
	if err != nil {
		return out, err
	}
	out.Partitions = len(parts)
	cloud.Run(func() {
		exec, err := cloud.Executor(gowren.WithPollInterval(ExperimentPollInterval))
		if err != nil {
			return
		}
		_, err = exec.MapReduce(workloads.FuncToneMap, gowren.FromBuckets("airbnb"),
			workloads.FuncToneReduce, gowren.MapReduceOptions{ChunkBytes: 1 << 20, ReducerOnePerObject: true})
		if err != nil {
			return
		}
		maps, err := gowren.Results[workloads.CityMap](exec)
		out.MapReduceOK = err == nil && len(maps) == len(cities)
	})

	// Row "composability": mergesort with a spawn tree.
	sortCloud, err := newWorkloadCloud(seed+11, 200)
	if err != nil {
		return out, err
	}
	if err := workloads.LoadArray(sortCloud.Store(), "arrays", "in", 50_000, uint64(seed)); err != nil {
		return out, err
	}
	if err := sortCloud.Store().CreateBucket("out"); err != nil {
		return out, err
	}
	sortCloud.Run(func() {
		exec, err := sortCloud.Executor(gowren.WithPollInterval(ExperimentPollInterval))
		if err != nil {
			return
		}
		task := workloads.SortTask{Bucket: "arrays", Key: "in", Count: 50_000, Depth: 2, OutBucket: "out"}
		if _, err := exec.CallAsync(workloads.FuncMergesort, task); err != nil {
			return
		}
		seg, err := gowren.Result[workloads.Segment](exec)
		if err != nil {
			return
		}
		out.CompositionOK = workloads.VerifySorted(sortCloud.Store(), seg) == nil
	})

	// Row "runtime": a user-built image with an exclusive function.
	custom := gowren.NewImage("user/tone-extras:1", 420)
	if err := gowren.RegisterFunc(custom, "extras/hello", func(_ *gowren.Ctx, name string) (string, error) {
		return "hello " + name, nil
	}); err != nil {
		return out, err
	}
	base := gowren.NewImage(gowren.DefaultRuntime, 0)
	if err := workloads.Register(base); err != nil {
		return out, err
	}
	rtCloud, err := gowren.NewSimCloud(gowren.SimConfig{Images: []*gowren.Image{base, custom}, Seed: seed})
	if err != nil {
		return out, err
	}
	rtCloud.Run(func() {
		exec, err := rtCloud.Executor(gowren.WithRuntime("user/tone-extras:1"))
		if err != nil {
			return
		}
		if _, err := exec.CallAsync("extras/hello", "gowren"); err != nil {
			return
		}
		got, err := gowren.Result[string](exec)
		out.CustomRuntimeOK = err == nil && got == "hello gowren"
	})

	return out, nil
}

// Report writes the Table 1 feature matrix with measured evidence.
func (r Table1Result) Report(w io.Writer) {
	fmt.Fprintln(w, "Table 1 — PyWren (classic baseline) vs IBM-PyWren (this system)")
	tbl := metrics.Table{Headers: []string{"feature", "classic PyWren", "this system (measured)"}}
	tbl.AddRow("MapReduce", "map only; reduce experimental",
		fmt.Sprintf("full map_reduce + reducer-per-object: %v", r.MapReduceOK))
	tbl.AddRow("Data discovery & partitioning", "none",
		fmt.Sprintf("automatic; bucket discovered into %d partitions", r.Partitions))
	tbl.AddRow("Composability", "none",
		fmt.Sprintf("dynamic spawn trees (mergesort verified): %v", r.CompositionOK))
	tbl.AddRow("Runtime", "fixed (Anaconda on Lambda)",
		fmt.Sprintf("custom shared images: %v", r.CustomRuntimeOK))
	tbl.AddRow("Remote function spawning",
		fmt.Sprintf("local only: %.0fs for %d calls", r.ClassicInvoke.Seconds(), Table1Functions),
		fmt.Sprintf("massive spawning: %.0fs (%.1fx faster)", r.FullInvoke.Seconds(), r.InvokeSpeedup()))
	tbl.AddRow("Open-source portability", "AWS Lambda",
		"Apache OpenWhisk-style platform (this simulator)")
	fmt.Fprint(w, tbl.Render())
	fmt.Fprintln(w)
}

// InvokeSpeedup is the invocation-phase improvement of massive spawning in
// the Table 1 demo.
func (r Table1Result) InvokeSpeedup() float64 {
	if r.FullInvoke <= 0 {
		return 0
	}
	return r.ClassicInvoke.Seconds() / r.FullInvoke.Seconds()
}
