package experiments

import (
	"strings"
	"testing"
	"time"
)

// The tests run the harnesses at reduced scale (the full paper scale runs
// in cmd/experiments and bench_test.go) and assert the *shapes* the paper
// reports, not absolute values.

func TestFig2ShapeReducedScale(t *testing.T) {
	res, err := RunFig2(200, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Local.InvokeAll <= 0 {
		t.Fatal("local arm never reached full concurrency")
	}
	if res.Massive.InvokeAll <= 0 {
		t.Fatal("massive arm never reached full concurrency")
	}
	// The headline claim: massive spawning brings functions up much
	// faster than local invocation from a high-latency network.
	if res.InvocationSpeedup() < 1.5 {
		t.Fatalf("invocation speedup = %.2fx, want > 1.5x (paper: ~5x at full scale)", res.InvocationSpeedup())
	}
	if res.Massive.Total >= res.Local.Total {
		t.Fatalf("massive total %v should beat local total %v", res.Massive.Total, res.Local.Total)
	}
	var sb strings.Builder
	res.Report(&sb)
	if !strings.Contains(sb.String(), "Fig. 2") || !strings.Contains(sb.String(), "speedup") {
		t.Fatal("report missing sections")
	}
}

func TestFig3FullConcurrencyReducedScale(t *testing.T) {
	res, err := RunFig3([]int{100, 200}, 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	for _, run := range res.Runs {
		if !run.FullConcurrency() {
			t.Fatalf("workload %d reached only %d concurrent", run.Workload, run.PeakConcurrency)
		}
		// Elasticity: the platform absorbs the doubled workload without
		// the invocation phase blowing up.
		if run.TimeToFull > 30*time.Second {
			t.Fatalf("workload %d took %v to reach full concurrency", run.Workload, run.TimeToFull)
		}
		// Variability: functions do not all take exactly the task time.
		if run.Durations.Max == run.Durations.Min {
			t.Fatalf("workload %d shows no runtime variability", run.Workload)
		}
	}
	var sb strings.Builder
	res.Report(&sb)
	if !strings.Contains(sb.String(), "workload") {
		t.Fatal("report missing table")
	}
}

func TestFig4ShapeReducedScale(t *testing.T) {
	sizes := []int64{100_000, 2_000_000}
	depths := []int{0, 2, 3}
	res, err := RunFig4(sizes, depths, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	// Linear-ish growth: 20x the data takes at least 5x the time at d=0.
	if res.Cells[0][1].Elapsed < 5*res.Cells[0][0].Elapsed {
		t.Fatalf("d=0 growth not linear-ish: %v vs %v", res.Cells[0][0].Elapsed, res.Cells[0][1].Elapsed)
	}
	// Depth helps at the large size...
	large := len(sizes) - 1
	if res.Cells[1][large].Elapsed >= res.Cells[0][large].Elapsed {
		t.Fatalf("d=2 (%v) should beat d=0 (%v) at %d elements",
			res.Cells[1][large].Elapsed, res.Cells[0][large].Elapsed, sizes[large])
	}
	// ...much more than at the small size (relative gain comparison).
	gainSmall := res.Cells[0][0].Elapsed.Seconds() - res.Cells[1][0].Elapsed.Seconds()
	gainLarge := res.Cells[0][large].Elapsed.Seconds() - res.Cells[1][large].Elapsed.Seconds()
	if gainLarge <= gainSmall {
		t.Fatalf("depth gain at large size (%.1fs) should exceed small size (%.1fs)", gainLarge, gainSmall)
	}
	for d := range depths {
		for s := range sizes {
			if !res.Cells[d][s].Verified {
				t.Fatalf("cell d=%d s=%d not verified sorted", depths[d], sizes[s])
			}
		}
	}
	var sb strings.Builder
	res.Report(&sb)
	if !strings.Contains(sb.String(), "Fig. 4") {
		t.Fatal("report missing title")
	}
}

func TestTable3ShapeReducedScale(t *testing.T) {
	// 1/20 of the paper's dataset keeps the simulated COS request volume
	// small while preserving the qualitative rows.
	res, err := RunTable3([]int{8, 2}, Table3DatasetBytes/20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cities != 33 {
		t.Fatalf("cities = %d", res.Cities)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Smaller chunks → more executors → bigger speedup.
	if res.Rows[1].Concurrency <= res.Rows[0].Concurrency {
		t.Fatalf("concurrency not increasing: %d then %d", res.Rows[0].Concurrency, res.Rows[1].Concurrency)
	}
	if res.Rows[1].Speedup <= res.Rows[0].Speedup {
		t.Fatalf("speedup not increasing: %.1f then %.1f", res.Rows[0].Speedup, res.Rows[1].Speedup)
	}
	if res.Rows[0].Speedup < 2 {
		t.Fatalf("parallel run barely beats sequential: %.2fx", res.Rows[0].Speedup)
	}
	// Speedup is sublinear in executors (the paper's efficiency remark).
	if res.Rows[1].Speedup >= float64(res.Rows[1].Concurrency) {
		t.Fatalf("speedup %.1fx super-linear for %d executors", res.Rows[1].Speedup, res.Rows[1].Concurrency)
	}
	if len(res.Maps) != 33 {
		t.Fatalf("city maps = %d", len(res.Maps))
	}
	render := res.RenderCityMap("new-york", 40, 12)
	if !strings.Contains(render, "new-york") {
		t.Fatalf("render = %q", render)
	}
	var sb strings.Builder
	res.Report(&sb)
	if !strings.Contains(sb.String(), "Table 3") || !strings.Contains(sb.String(), "sequential") {
		t.Fatal("report missing rows")
	}
}

func TestTable1FeatureMatrix(t *testing.T) {
	res, err := RunTable1(5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.MapReduceOK {
		t.Error("map_reduce feature check failed")
	}
	if !res.CompositionOK {
		t.Error("composability feature check failed")
	}
	if !res.CustomRuntimeOK {
		t.Error("custom runtime feature check failed")
	}
	if res.Partitions <= 33 {
		t.Errorf("partitioner produced %d partitions, want > one per city", res.Partitions)
	}
	if res.InvokeSpeedup() < 1.5 {
		t.Errorf("massive spawning speedup = %.1fx in Table 1 demo", res.InvokeSpeedup())
	}
	var sb strings.Builder
	res.Report(&sb)
	out := sb.String()
	for _, want := range []string{"MapReduce", "Composability", "Runtime", "Remote function spawning"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing row %q", want)
		}
	}
}

func TestSpawnGroupAblation(t *testing.T) {
	rows, err := RunSpawnGroupAblation(60, []int{10, 60}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.InvokeAll <= 0 {
			t.Fatalf("group %d never reached full concurrency", row.GroupSize)
		}
	}
}

func TestWarmColdAblation(t *testing.T) {
	res, err := RunWarmColdAblation(40, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Warm >= res.Cold {
		t.Fatalf("warm run (%v) not faster than cold (%v)", res.Warm, res.Cold)
	}
}

func TestPartitionGranularityAblation(t *testing.T) {
	res, err := RunPartitionGranularityAblation(Table3DatasetBytes/50, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunkedExecutors <= res.PerObjectCount {
		t.Fatalf("chunked executors (%d) should exceed per-object (%d)", res.ChunkedExecutors, res.PerObjectCount)
	}
	if res.ChunkedElapsed >= res.PerObjectElapsed {
		t.Fatalf("chunking (%v) should beat per-object stragglers (%v)", res.ChunkedElapsed, res.PerObjectElapsed)
	}
}

func TestShuffleAblation(t *testing.T) {
	rows, err := RunShuffleAblation(Table3DatasetBytes/50, []int{1, 3}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Keys != 3 {
			t.Fatalf("R=%d produced %d keys, want 3 tones", row.NumReducers, row.Keys)
		}
		if row.Elapsed <= 0 {
			t.Fatalf("R=%d elapsed = %v", row.NumReducers, row.Elapsed)
		}
	}
}

func TestWANLatencySweep(t *testing.T) {
	rows, err := RunWANLatencySweep(150, []WANSweepRow{
		{RTTMillis: 60},
		{RTTMillis: 240, FailureProb: 0.08},
		{RTTMillis: 600, FailureProb: 0.15},
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].InvokeAll <= rows[i-1].InvokeAll {
			t.Fatalf("invocation phase not increasing with RTT/failures: %v then %v (rtt %d→%d)",
				rows[i-1].InvokeAll, rows[i].InvokeAll, rows[i-1].RTTMillis, rows[i].RTTMillis)
		}
	}
}

func TestSpeculationAblation(t *testing.T) {
	res, err := RunSpeculationAblation(100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Seed 1's heavy-tailed jitter puts a multi-minute straggler in the
	// plain run; speculation re-executes it and caps the tail.
	if res.Plain < time.Minute {
		t.Fatalf("plain run = %v; expected a straggler-dominated job", res.Plain)
	}
	if res.Speculative >= res.Plain/2 {
		t.Fatalf("speculation (%v) should at least halve the straggler tail (plain %v)", res.Speculative, res.Plain)
	}
}

func TestChaosRecoveryAblation(t *testing.T) {
	res, err := RunChaosRecoveryAblation(100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The faulted arm rides out a 90% COS brownout plus 5% crashes: it
	// must still finish (zero dead letters) and must pay for it in time.
	if res.DeadLetters != 0 {
		t.Fatalf("faulted arm lost %d calls; recovery should absorb the incident", res.DeadLetters)
	}
	if res.RecoveryOverhead() <= 0 {
		t.Fatalf("fault windows cost nothing (clean %v, faulted %v); chaos did not engage", res.Clean, res.Faulted)
	}
}
