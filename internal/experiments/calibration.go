// Package experiments contains one harness per table and figure of the
// paper's evaluation (§6). Each harness builds a fresh simulated cloud on a
// virtual clock, runs the experiment at the paper's scale, and reports the
// measured quantities next to the paper's values (EXPERIMENTS.md records
// both). The harnesses are shared by cmd/experiments and the benchmarks in
// bench_test.go.
package experiments

import (
	"time"

	"gowren"
	"gowren/internal/faas"
	"gowren/internal/metrics"
)

// Calibration constants. Every model parameter that was tuned against a
// number reported in the paper lives here, with the paper's target beside
// it. Changing one of these shifts a measured curve; the defaults land the
// reproduction within a few percent of each target (see EXPERIMENTS.md).
const (
	// WANClientThreads is the client invocation thread pool on the
	// paper's laptop client. With ~200 ms WAN round trips this alone
	// would allow ~80 invocations/s...
	WANClientThreads = 13
	// WANClientOverhead is the serialized per-invocation client work
	// (Python's GIL-bound serialize/sign/build). ~7 ms/invocation keeps
	// an in-cloud client near the paper's 8 s for 1,000 invocations,
	// while the WAN arm is dominated by round trips and retries.
	WANClientOverhead = 7 * time.Millisecond
	// WANStageConcurrency is the payload upload/download pool.
	WANStageConcurrency = 192
	// ExperimentPollInterval is the status polling granularity used by
	// experiment clients; coarser than the library default to keep the
	// simulated COS request volume realistic at thousand-call scale.
	ExperimentPollInterval = 500 * time.Millisecond

	// Fig2Functions and Fig2TaskSeconds mirror §6.1: "two tests that
	// realized 1,000 function invocations. Each function performed an
	// arbitrary compute-bound task of 50-seconds duration."
	Fig2Functions   = 1000
	Fig2TaskSeconds = 50.0

	// Fig3TaskSeconds mirrors §6.2: "a function that runs a compute-bound
	// task for around 60 seconds."
	Fig3TaskSeconds = 60.0

	// Table3DatasetBytes is the §6.4 dataset size (1.9 GB, 33 cities).
	Table3DatasetBytes = int64(1_900_000_000)
)

// Fig3Workloads are the §6.2 workload sizes: 500 up to 2,000 concurrent
// function executors.
var Fig3Workloads = []int{500, 1000, 1500, 2000}

// Fig4Sizes are the §6.3 array lengths (500 K to 25 M integers).
var Fig4Sizes = []int64{500_000, 1_000_000, 5_000_000, 10_000_000, 25_000_000}

// Fig4Depths are the §6.3 spawn-tree depths d = 0…4.
var Fig4Depths = []int{0, 1, 2, 3, 4}

// Table3ChunksMiB are the §6.4 chunk sizes.
var Table3ChunksMiB = []int{64, 32, 16, 8, 4, 2}

// PaperTable3 is the paper's reported Table 3, for side-by-side output.
// Index order matches Table3ChunksMiB; Sequential is the baseline row.
var PaperTable3 = struct {
	SequentialSeconds float64
	Concurrency       []int
	ExecSeconds       []float64
	Speedup           []float64
}{
	SequentialSeconds: 5160,
	Concurrency:       []int{47, 72, 129, 242, 471, 923},
	ExecSeconds:       []float64{471, 297, 181, 112, 63, 38},
	Speedup:           []float64{10.95, 17.37, 28.51, 46.07, 81.90, 135.79},
}

// Paper-reported Fig. 2 milestones.
const (
	PaperFig2LocalInvokeSeconds   = 38.0
	PaperFig2LocalTotalSeconds    = 88.0
	PaperFig2MassiveInvokeSeconds = 8.0
	PaperFig2MassiveTotalSeconds  = 58.0
)

// spansOf converts platform activations for one action prefix into metric
// spans, skipping unfinished and helper activations.
func spansOf(acts []faas.Activation, actionPrefix string) []metrics.Span {
	var spans []metrics.Span
	for _, a := range acts {
		if !a.Done() {
			continue
		}
		if actionPrefix != "" && !hasPrefix(a.Action, actionPrefix) {
			continue
		}
		spans = append(spans, metrics.MakeSpan(a.StartAt, a.EndAt))
	}
	return spans
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// wanExecutor builds the paper's remote-laptop client against cloud.
func wanExecutor(cloud *gowren.Cloud, massive bool, extra ...gowren.ExecutorOption) (*gowren.Executor, error) {
	opts := []gowren.ExecutorOption{
		gowren.WithClientProfile(gowren.ClientWAN),
		gowren.WithInvokeConcurrency(WANClientThreads),
		gowren.WithStageConcurrency(WANStageConcurrency),
		gowren.WithClientOverhead(WANClientOverhead),
		gowren.WithPollInterval(ExperimentPollInterval),
	}
	if massive {
		opts = append(opts, gowren.WithMassiveSpawning(0))
	}
	opts = append(opts, extra...)
	return cloud.Executor(opts...)
}

// spansSince filters spans to those starting at or after origin (dropping
// warm-up activations).
func spansSince(spans []metrics.Span, origin time.Time) []metrics.Span {
	out := spans[:0:0]
	for _, sp := range spans {
		if !sp.Start.Before(origin) {
			out = append(out, sp)
		}
	}
	return out
}
