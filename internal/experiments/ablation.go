package experiments

import (
	"fmt"
	"time"

	"gowren"
	"gowren/internal/core"
	"gowren/internal/cos"
	"gowren/internal/metrics"
	"gowren/internal/netsim"
	"gowren/internal/workloads"
)

// Ablations for the design choices DESIGN.md calls out: the spawner group
// size (the paper tuned it to 100), warm-vs-cold container pools, and
// chunk-size vs per-object partitioning.

// SpawnGroupResult measures the invocation phase for one spawner group
// size.
type SpawnGroupResult struct {
	GroupSize int
	InvokeAll time.Duration
}

// RunSpawnGroupAblation invokes n short tasks with massive spawning at each
// group size and reports the time for all of them to be running. The paper
// §5.1 settled on groups of 100 after finding one big group too slow.
func RunSpawnGroupAblation(n int, groupSizes []int, seed int64) ([]SpawnGroupResult, error) {
	out := make([]SpawnGroupResult, 0, len(groupSizes))
	for _, g := range groupSizes {
		cloud, err := newWorkloadCloud(seed, n+100)
		if err != nil {
			return nil, err
		}
		var (
			runErr error
			origin time.Time
		)
		cloud.Run(func() {
			if err := warmPlatform(cloud); err != nil {
				runErr = err
				return
			}
			exec, err := wanExecutor(cloud, true, gowren.WithMassiveSpawning(g))
			if err != nil {
				runErr = err
				return
			}
			args := make([]any, n)
			for i := range args {
				args[i] = 30.0
			}
			origin = cloud.Clock().Now()
			if _, err := exec.MapSlice(workloads.FuncComputeBound, args); err != nil {
				runErr = err
				return
			}
			if _, err := gowren.Results[float64](exec); err != nil {
				runErr = err
			}
		})
		if runErr != nil {
			return nil, fmt.Errorf("experiments: spawn ablation group=%d: %w", g, runErr)
		}
		spans := spansSince(spansOf(cloud.Platform().Controller().Activations(), "gowren-runner--"), origin)
		series := metrics.ConcurrencySeries(spans, origin, time.Second, 0)
		out = append(out, SpawnGroupResult{GroupSize: g, InvokeAll: series.TimeToReach(n)})
	}
	return out, nil
}

// WarmColdResult compares a job on a cold platform against an immediate
// re-run that reuses warm containers.
type WarmColdResult struct {
	Cold time.Duration
	Warm time.Duration
}

// RunWarmColdAblation measures container reuse: the §3.1 caching story.
func RunWarmColdAblation(n int, seed int64) (WarmColdResult, error) {
	cloud, err := newWorkloadCloud(seed, n+50)
	if err != nil {
		return WarmColdResult{}, err
	}
	var (
		out    WarmColdResult
		runErr error
	)
	cloud.Run(func() {
		runOnce := func() (time.Duration, error) {
			exec, err := cloud.Executor(gowren.WithPollInterval(ExperimentPollInterval))
			if err != nil {
				return 0, err
			}
			args := make([]any, n)
			for i := range args {
				args[i] = 5.0
			}
			start := cloud.Clock().Now()
			if _, err := exec.MapSlice(workloads.FuncComputeBound, args); err != nil {
				return 0, err
			}
			if _, err := gowren.Results[float64](exec); err != nil {
				return 0, err
			}
			return cloud.Clock().Now().Sub(start), nil
		}
		if out.Cold, runErr = runOnce(); runErr != nil {
			return
		}
		out.Warm, runErr = runOnce()
	})
	if runErr != nil {
		return WarmColdResult{}, fmt.Errorf("experiments: warm/cold ablation: %w", runErr)
	}
	return out, nil
}

// PartitionGranularityResult compares chunked partitioning against
// per-object granularity for the tone job.
type PartitionGranularityResult struct {
	ChunkedExecutors int
	ChunkedElapsed   time.Duration
	PerObjectCount   int
	PerObjectElapsed time.Duration
}

// RunPartitionGranularityAblation contrasts the two §4.3 partitioning
// modes on the same dataset: user-defined chunk size vs one executor per
// object. Per-object granularity leaves big cities as stragglers.
func RunPartitionGranularityAblation(datasetBytes int64, chunkMiB int, seed int64) (PartitionGranularityResult, error) {
	var out PartitionGranularityResult
	run := func(chunkBytes int64) (int, time.Duration, error) {
		cloud, err := newWorkloadCloud(seed, 1000)
		if err != nil {
			return 0, 0, err
		}
		if _, err := workloads.LoadDataset(cloud.Store(), "airbnb", datasetBytes, uint64(seed)); err != nil {
			return 0, 0, err
		}
		var (
			elapsed time.Duration
			runErr  error
		)
		cloud.Run(func() {
			if err := warmPlatform(cloud); err != nil {
				runErr = err
				return
			}
			exec, err := cloud.Executor(
				gowren.WithClientProfile(gowren.ClientInCloud),
				gowren.WithMassiveSpawning(0),
				gowren.WithPollInterval(ExperimentPollInterval),
			)
			if err != nil {
				runErr = err
				return
			}
			start := cloud.Clock().Now()
			_, err = exec.MapReduce(workloads.FuncToneMap, gowren.FromBuckets("airbnb"),
				workloads.FuncToneReduce, gowren.MapReduceOptions{ChunkBytes: chunkBytes, ReducerOnePerObject: true})
			if err != nil {
				runErr = err
				return
			}
			if _, err := gowren.Results[workloads.CityMap](exec); err != nil {
				runErr = err
				return
			}
			elapsed = cloud.Clock().Now().Sub(start)
		})
		if runErr != nil {
			return 0, 0, runErr
		}
		parts, err := gowren.PlanPartitions(cloud.Store(), gowren.FromBuckets("airbnb"), chunkBytes)
		if err != nil {
			return 0, 0, err
		}
		return len(parts), elapsed, nil
	}

	var err error
	if out.ChunkedExecutors, out.ChunkedElapsed, err = run(int64(chunkMiB) << 20); err != nil {
		return out, fmt.Errorf("experiments: granularity ablation chunked: %w", err)
	}
	if out.PerObjectCount, out.PerObjectElapsed, err = run(0); err != nil {
		return out, fmt.Errorf("experiments: granularity ablation per-object: %w", err)
	}
	return out, nil
}

// ShuffleAblationRow measures one reduce-side parallelism level of the
// keyed-shuffle extension.
type ShuffleAblationRow struct {
	NumReducers int
	Elapsed     time.Duration
	Keys        int
}

// RunShuffleAblation measures the keyed tone-count job across reduce-side
// parallelism levels. Beyond the paper: it quantifies the object-storage
// shuffle its related-work section identifies as the open challenge.
func RunShuffleAblation(datasetBytes int64, reducerCounts []int, seed int64) ([]ShuffleAblationRow, error) {
	out := make([]ShuffleAblationRow, 0, len(reducerCounts))
	for _, r := range reducerCounts {
		cloud, err := newWorkloadCloud(seed+int64(r), 1000)
		if err != nil {
			return nil, err
		}
		if _, err := workloads.LoadDataset(cloud.Store(), "airbnb", datasetBytes, uint64(seed)); err != nil {
			return nil, err
		}
		var (
			elapsed time.Duration
			keys    int
			runErr  error
		)
		cloud.Run(func() {
			if err := warmPlatform(cloud); err != nil {
				runErr = err
				return
			}
			exec, err := cloud.Executor(
				gowren.WithClientProfile(gowren.ClientInCloud),
				gowren.WithMassiveSpawning(0),
				gowren.WithPollInterval(ExperimentPollInterval),
			)
			if err != nil {
				runErr = err
				return
			}
			start := cloud.Clock().Now()
			_, err = exec.MapReduceShuffle(workloads.FuncKVToneMap, gowren.FromBuckets("airbnb"),
				workloads.FuncKVToneReduce, gowren.ShuffleOptions{ChunkBytes: 4 << 20, NumReducers: r})
			if err != nil {
				runErr = err
				return
			}
			results, err := gowren.ShuffleResults(exec)
			if err != nil {
				runErr = err
				return
			}
			keys = len(results)
			elapsed = cloud.Clock().Now().Sub(start)
		})
		if runErr != nil {
			return nil, fmt.Errorf("experiments: shuffle ablation R=%d: %w", r, runErr)
		}
		out = append(out, ShuffleAblationRow{NumReducers: r, Elapsed: elapsed, Keys: keys})
	}
	return out, nil
}

// WANSweepRow measures the local-invocation phase under one client network
// condition.
type WANSweepRow struct {
	RTTMillis   int
	FailureProb float64
	InvokeAll   time.Duration
}

// RunWANLatencySweep quantifies §5.1's premise — "a high network latency
// between the client and the data center can significantly impact the total
// invocation time" — by running the local-invocation arm under increasing
// client RTTs and failure rates.
func RunWANLatencySweep(n int, rows []WANSweepRow, seed int64) ([]WANSweepRow, error) {
	out := make([]WANSweepRow, 0, len(rows))
	for _, row := range rows {
		cloud, err := newWorkloadCloud(seed, n+100)
		if err != nil {
			return nil, err
		}
		link := netsim.NewLink(netsim.LinkConfig{
			RTT:         netsim.LogNormal{Median: time.Duration(row.RTTMillis) * time.Millisecond, Sigma: 0.35, Cap: 10 * time.Duration(row.RTTMillis) * time.Millisecond},
			PerRequest:  60 * time.Millisecond,
			FailureProb: row.FailureProb,
			Seed:        seed,
		})
		var (
			runErr error
			origin time.Time
		)
		cloud.Run(func() {
			if err := warmPlatform(cloud); err != nil {
				runErr = err
				return
			}
			exec, err := core.NewExecutor(core.Config{
				Platform:          cloud.Platform(),
				Storage:           cos.NewLinked(cloud.Store(), cloud.Clock(), netsim.WANStorage(seed)),
				ControlLink:       link,
				InvokeConcurrency: WANClientThreads,
				StageConcurrency:  WANStageConcurrency,
				ClientOverhead:    WANClientOverhead,
				PollInterval:      ExperimentPollInterval,
			})
			if err != nil {
				runErr = err
				return
			}
			args := make([]any, n)
			for i := range args {
				args[i] = 30.0
			}
			origin = cloud.Clock().Now()
			if _, err := exec.Map(workloads.FuncComputeBound, args); err != nil {
				runErr = err
				return
			}
			if _, err := exec.GetResult(core.GetResultOptions{}); err != nil {
				runErr = err
			}
		})
		if runErr != nil {
			return nil, fmt.Errorf("experiments: wan sweep rtt=%dms: %w", row.RTTMillis, runErr)
		}
		spans := spansSince(spansOf(cloud.Platform().Controller().Activations(), "gowren-runner--"), origin)
		series := metrics.ConcurrencySeries(spans, origin, time.Second, 0)
		row.InvokeAll = series.TimeToReach(n)
		out = append(out, row)
	}
	return out, nil
}

// ChaosRecoveryResult compares one job on a clean platform against the
// same job (same seed) under a scripted fault plan that automatic
// recovery must absorb.
type ChaosRecoveryResult struct {
	Clean       time.Duration
	Faulted     time.Duration
	DeadLetters int
}

// RecoveryOverhead is the extra job time the fault windows cost.
func (r ChaosRecoveryResult) RecoveryOverhead() time.Duration {
	return r.Faulted - r.Clean
}

// RunChaosRecoveryAblation runs an n-call compute job twice — once clean,
// once through a mid-job COS brownout plus container crashes — and
// reports both job times. The faulted arm must still return every result
// (recovery in the wait path re-executes lost calls); the delta is the
// price of riding out the incident rather than failing the job, the
// fault-tolerance story §5.1's WAN retry observations motivate.
func RunChaosRecoveryAblation(n int, taskSeconds float64, seed int64) (ChaosRecoveryResult, error) {
	var out ChaosRecoveryResult
	run := func(faulted bool) (time.Duration, int, error) {
		img := gowren.NewImage(gowren.DefaultRuntime, 0)
		if err := workloads.Register(img); err != nil {
			return 0, 0, err
		}
		cfg := gowren.SimConfig{
			Images:        []*gowren.Image{img},
			Seed:          seed,
			MaxConcurrent: n + 50,
		}
		if faulted {
			cfg.CrashProb = 0.05
			cfg.Chaos = []gowren.ChaosFault{{
				Kind:        gowren.ChaosCOSBrownout,
				Start:       time.Duration(taskSeconds * float64(time.Second) / 2),
				End:         time.Duration(taskSeconds * 2 * float64(time.Second)),
				Probability: 0.9,
			}}
		}
		cloud, err := gowren.NewSimCloud(cfg)
		if err != nil {
			return 0, 0, err
		}
		var (
			elapsed time.Duration
			dead    int
			runErr  error
		)
		cloud.Run(func() {
			exec, err := cloud.Executor(gowren.WithPollInterval(ExperimentPollInterval))
			if err != nil {
				runErr = err
				return
			}
			args := make([]any, n)
			for i := range args {
				args[i] = taskSeconds
			}
			start := cloud.Clock().Now()
			if _, err := exec.MapSlice(workloads.FuncComputeBound, args); err != nil {
				runErr = err
				return
			}
			if _, err := gowren.Results[float64](exec); err != nil {
				runErr = err
				return
			}
			elapsed = cloud.Clock().Now().Sub(start)
			dead = len(exec.DeadLetters())
		})
		return elapsed, dead, runErr
	}
	var err error
	if out.Clean, _, err = run(false); err != nil {
		return out, fmt.Errorf("experiments: chaos ablation clean arm: %w", err)
	}
	if out.Faulted, out.DeadLetters, err = run(true); err != nil {
		return out, fmt.Errorf("experiments: chaos ablation faulted arm: %w", err)
	}
	return out, nil
}

// SpeculationResult compares plain and speculative result collection on a
// platform with heavy-tailed execution noise.
type SpeculationResult struct {
	Plain       time.Duration
	Speculative time.Duration
}

// RunSpeculationAblation runs the same straggler-prone job (same seed, so
// the first attempts draw identical jitter) with plain GetResult and with
// speculative re-execution, reporting both job times. It quantifies the
// straggler effect behind Fig. 3's runtime spread.
func RunSpeculationAblation(n int, taskSeconds float64, seed int64) (SpeculationResult, error) {
	run := func(speculate bool) (time.Duration, error) {
		img := gowren.NewImage(gowren.DefaultRuntime, 0)
		if err := workloads.Register(img); err != nil {
			return 0, err
		}
		cloud, err := gowren.NewSimCloud(gowren.SimConfig{
			Images:        []*gowren.Image{img},
			Seed:          seed,
			MaxConcurrent: n + 50,
			Jitter:        true,
			JitterSigma:   2.5, // heavy tail: occasional multi-minute stragglers
		})
		if err != nil {
			return 0, err
		}
		var (
			elapsed time.Duration
			runErr  error
		)
		cloud.Run(func() {
			exec, err := cloud.Executor(gowren.WithPollInterval(ExperimentPollInterval))
			if err != nil {
				runErr = err
				return
			}
			args := make([]any, n)
			for i := range args {
				args[i] = taskSeconds
			}
			start := cloud.Clock().Now()
			if _, err := exec.MapSlice(workloads.FuncComputeBound, args); err != nil {
				runErr = err
				return
			}
			if speculate {
				_, err = exec.GetResultSpeculative(gowren.GetResultOptions{}, gowren.SpeculationOptions{})
			} else {
				_, err = exec.GetResult()
			}
			if err != nil {
				runErr = err
				return
			}
			elapsed = cloud.Clock().Now().Sub(start)
		})
		return elapsed, runErr
	}
	plain, err := run(false)
	if err != nil {
		return SpeculationResult{}, fmt.Errorf("experiments: speculation ablation plain: %w", err)
	}
	spec, err := run(true)
	if err != nil {
		return SpeculationResult{}, fmt.Errorf("experiments: speculation ablation speculative: %w", err)
	}
	return SpeculationResult{Plain: plain, Speculative: spec}, nil
}
