package experiments

import (
	"fmt"
	"io"
	"time"

	"gowren"
	"gowren/internal/metrics"
	"gowren/internal/workloads"
)

// Fig2Arm is one test of §6.1: N compute-bound invocations issued either
// locally (from the high-latency client) or through massive function
// spawning.
type Fig2Arm struct {
	Name string
	// InvokeAll is the time until all N functions were up and running —
	// the paper's "invocation phase".
	InvokeAll time.Duration
	// Total is the time until the last function finished.
	Total time.Duration
	// Series is the concurrent-invocations-over-time curve of Fig. 2.
	Series metrics.Series
	// Failures counts invocation attempts lost to the network (visible
	// only indirectly in the paper as retry-inflated invocation times).
	Functions int
}

// Fig2Result holds both arms of the §6.1 experiment.
type Fig2Result struct {
	Local   Fig2Arm
	Massive Fig2Arm
}

// InvocationSpeedup returns how much faster massive spawning brought all
// functions up ("we obtained 5X faster invocation times").
func (r Fig2Result) InvocationSpeedup() float64 {
	if r.Massive.InvokeAll <= 0 {
		return 0
	}
	return r.Local.InvokeAll.Seconds() / r.Massive.InvokeAll.Seconds()
}

// RunFig2 reproduces Fig. 2 with n functions of taskSeconds each (use
// Fig2Functions / Fig2TaskSeconds for the paper's scale).
func RunFig2(n int, taskSeconds float64, seed int64) (Fig2Result, error) {
	local, err := runFig2Arm("local invocation", n, taskSeconds, seed, false)
	if err != nil {
		return Fig2Result{}, fmt.Errorf("experiments: fig2 local arm: %w", err)
	}
	massive, err := runFig2Arm("massive spawning", n, taskSeconds, seed, true)
	if err != nil {
		return Fig2Result{}, fmt.Errorf("experiments: fig2 massive arm: %w", err)
	}
	return Fig2Result{Local: local, Massive: massive}, nil
}

func runFig2Arm(name string, n int, taskSeconds float64, seed int64, massive bool) (Fig2Arm, error) {
	cloud, err := newWorkloadCloud(seed, n+100)
	if err != nil {
		return Fig2Arm{}, err
	}
	var runErr error
	var origin time.Time
	cloud.Run(func() {
		if err := warmPlatform(cloud); err != nil {
			runErr = err
			return
		}
		exec, err := wanExecutor(cloud, massive)
		if err != nil {
			runErr = err
			return
		}
		args := make([]any, n)
		for i := range args {
			args[i] = taskSeconds
		}
		origin = cloud.Clock().Now()
		if _, err := exec.MapSlice(workloads.FuncComputeBound, args); err != nil {
			runErr = err
			return
		}
		if _, err := gowren.Results[float64](exec); err != nil {
			runErr = err
			return
		}
	})
	if runErr != nil {
		return Fig2Arm{}, runErr
	}

	acts := cloud.Platform().Controller().Activations()
	spans := spansSince(spansOf(acts, "gowren-runner--"), origin)
	if len(spans) != n {
		return Fig2Arm{}, fmt.Errorf("experiments: fig2 %s: %d runner activations, want %d", name, len(spans), n)
	}
	series := metrics.ConcurrencySeries(spans, origin, time.Second, 0)
	var total time.Duration
	for _, sp := range spans {
		if d := sp.End.Sub(origin); d > total {
			total = d
		}
	}
	return Fig2Arm{
		Name:      name,
		InvokeAll: series.TimeToReach(n),
		Total:     total,
		Series:    series,
		Functions: n,
	}, nil
}

// Report writes the Fig. 2 reproduction next to the paper's milestones.
func (r Fig2Result) Report(w io.Writer) {
	tbl := metrics.Table{Headers: []string{"arm", "invocation phase", "paper", "total", "paper"}}
	tbl.AddRow(r.Local.Name,
		fmt.Sprintf("%.0fs", r.Local.InvokeAll.Seconds()), fmt.Sprintf("%.0fs", PaperFig2LocalInvokeSeconds),
		fmt.Sprintf("%.0fs", r.Local.Total.Seconds()), fmt.Sprintf("%.0fs", PaperFig2LocalTotalSeconds))
	tbl.AddRow(r.Massive.Name,
		fmt.Sprintf("%.0fs", r.Massive.InvokeAll.Seconds()), fmt.Sprintf("%.0fs", PaperFig2MassiveInvokeSeconds),
		fmt.Sprintf("%.0fs", r.Massive.Total.Seconds()), fmt.Sprintf("%.0fs", PaperFig2MassiveTotalSeconds))
	fmt.Fprintln(w, "Fig. 2 — Local invocation vs Massive Function Spawning")
	fmt.Fprint(w, tbl.Render())
	fmt.Fprintf(w, "invocation speedup: %.1fx (paper: ~5x)\n\n", r.InvocationSpeedup())
	fmt.Fprint(w, metrics.Chart("concurrent invocations — local", r.Local.Series, 72, 10))
	fmt.Fprint(w, metrics.Chart("concurrent invocations — massive spawning", r.Massive.Series, 72, 10))
}
