// Package retry is GoWren's single retry policy. Every retry loop in the
// system — the executor's invocation path, its storage accesses, the
// in-cloud runner helpers and the cos SDK-style client wrapper — is backed
// by the same three primitives:
//
//   - Policy: bounded exponential backoff, optionally with decorrelated
//     jitter, driven by the simulation clock so virtual-time experiments
//     pay realistic retry delays;
//   - Budget: a per-executor token bucket that caps the *total* retry
//     volume a client may generate, so a sustained outage degrades into
//     fast failures instead of a retry storm (the WAN failure-and-retry
//     effect of the paper's §5.1, kept under control);
//   - Breaker: a circuit breaker that sheds load after sustained
//     throttling, for callers that prefer failing fast over queueing
//     behind a saturated gateway.
//
// Callers classify errors with a Classifier; the package itself has no
// knowledge of faas or cos error values, which keeps it at the bottom of
// the dependency graph.
package retry

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"gowren/internal/vclock"
)

// Class buckets an operation error for retry purposes.
type Class int

const (
	// Fatal errors are returned immediately; retrying cannot help
	// (user-code errors, missing actions, serialization failures).
	Fatal Class = iota
	// Transient errors are retried with backoff (lost requests,
	// simulated network failures).
	Transient
	// Throttle errors are retried with backoff and additionally feed the
	// circuit breaker (429-style admission rejections).
	Throttle
)

// Classifier maps an operation error to its retry class. It is never
// called with a nil error.
type Classifier func(error) Class

// Errors produced by the policy layer itself. Both wrap the underlying
// operation error, so errors.Is works for either.
var (
	// ErrBudgetExhausted marks a failure that was *not* retried because
	// the executor's retry budget ran dry.
	ErrBudgetExhausted = errors.New("retry: retry budget exhausted")
	// ErrCircuitOpen marks a call shed by an open circuit breaker.
	ErrCircuitOpen = errors.New("retry: circuit open")
)

// Policy describes one bounded-backoff retry schedule.
type Policy struct {
	// MaxAttempts is the total number of tries including the first.
	// Zero or negative selects 5.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry. Zero or negative
	// selects 100 ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the delay between retries. Zero selects 30 s.
	MaxBackoff time.Duration
	// Multiplier grows the delay per retry. Values <= 1 keep the delay
	// fixed at BaseBackoff; zero selects 2.
	Multiplier float64
	// Jitter switches the schedule to decorrelated jitter: each delay is
	// drawn uniformly from [BaseBackoff, prev*3], capped at MaxBackoff.
	// Jittered schedules need a seeded Retrier to stay deterministic.
	Jitter bool
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 30 * time.Second
	}
	if p.Multiplier == 0 {
		p.Multiplier = 2
	}
	return p
}

// Budget is a token bucket bounding total retry volume across every
// operation that shares it (typically one Budget per executor). Each retry
// spends one token; each successful operation deposits Refill tokens up to
// the cap. A bucket that runs dry converts retryable failures into
// immediate ErrBudgetExhausted failures until successes replenish it.
type Budget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	refill float64
}

// NewBudget returns a full bucket holding max tokens that earns refill
// tokens back per successful operation. max <= 0 selects 1024, refill <= 0
// selects 1.
func NewBudget(max, refill float64) *Budget {
	if max <= 0 {
		max = 1024
	}
	if refill <= 0 {
		refill = 1
	}
	return &Budget{tokens: max, max: max, refill: refill}
}

// spend takes one retry token, reporting whether one was available.
func (b *Budget) spend() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// deposit credits the bucket for a successful operation.
func (b *Budget) deposit() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.refill
	if b.tokens > b.max {
		b.tokens = b.max
	}
}

// Remaining returns the current token count (for tests and metrics).
func (b *Budget) Remaining() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// Breaker sheds load after sustained throttling: Threshold consecutive
// Throttle-class failures open the circuit for Cooldown, during which every
// Do fails fast with ErrCircuitOpen. After the cooldown the circuit is
// half-open: exactly one caller is admitted as the probe while concurrent
// callers keep failing fast — a saturated platform sees a single feeler,
// not the whole herd. The probe's success closes the circuit; another
// throttle reopens it for a fresh cooldown.
//
// Reopening is adaptive: a circuit that just closed does not resume at full
// rate. For a ramp window after the cooldown expires, every call through the
// breaker is paced — delayed by an interval that starts at the slow-start
// pace and decays linearly to zero — so a platform that shed load recovers
// under a gentle ramp instead of the full thundering herd that tripped it.
type Breaker struct {
	mu          sync.Mutex
	threshold   int
	cooldown    time.Duration
	paceInitial time.Duration // per-call delay right after the circuit closes
	ramp        time.Duration // window over which the pace decays to zero
	consecutive int
	openUntil   time.Time
	rampUntil   time.Time
	// tripped marks a circuit that opened and has not yet seen a
	// successful probe; probing marks the in-flight half-open probe, so
	// concurrent callers are shed until it reports back.
	tripped bool
	probing bool
}

// NewBreaker returns a breaker tripping after threshold consecutive
// throttles for cooldown. cooldown <= 0 selects 5 s. Slow-start defaults to
// an initial pace of cooldown/10 decaying over one cooldown; tune it with
// SetSlowStart.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		return nil
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{
		threshold:   threshold,
		cooldown:    cooldown,
		paceInitial: cooldown / 10,
		ramp:        cooldown,
	}
}

// SetSlowStart configures the post-trip ramp: the first call after the
// cooldown is delayed by initial, decaying linearly to zero over ramp.
// initial <= 0 disables slow-start.
func (b *Breaker) SetSlowStart(initial, ramp time.Duration) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if initial <= 0 {
		b.paceInitial, b.ramp = 0, 0
		return
	}
	if ramp <= 0 {
		ramp = b.cooldown
	}
	b.paceInitial, b.ramp = initial, ramp
}

// allow reports whether a call may proceed at now. On a tripped circuit
// past its cooldown, the first caller claims the single half-open probe;
// the rest are denied until the probe's outcome is recorded.
func (b *Breaker) allow(now time.Time) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if now.Before(b.openUntil) {
		return false
	}
	if b.tripped {
		if b.probing {
			return false
		}
		b.probing = true
	}
	return true
}

// record feeds one attempt outcome into the breaker state.
func (b *Breaker) record(throttled bool, now time.Time) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if !throttled {
		b.consecutive = 0
		b.tripped = false
		return
	}
	b.consecutive++
	// A throttled half-open probe reopens immediately: the platform is
	// still saturated, so one more cooldown, not threshold more throttles.
	if b.consecutive >= b.threshold || b.tripped {
		b.openUntil = now.Add(b.cooldown)
		b.rampUntil = b.openUntil.Add(b.ramp)
		b.consecutive = 0
		b.tripped = true
	}
}

// Open reports whether the circuit is currently open at now. Unlike
// allow, it never claims the half-open probe.
func (b *Breaker) Open(now time.Time) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return now.Before(b.openUntil)
}

// Pace returns the slow-start delay a call admitted at now must wait before
// proceeding. Zero outside a ramp window (and always for a nil breaker).
func (b *Breaker) Pace(now time.Time) time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.paceInitial <= 0 || b.ramp <= 0 {
		return 0
	}
	if now.Before(b.openUntil) || !now.Before(b.rampUntil) {
		return 0
	}
	remaining := b.rampUntil.Sub(now)
	return time.Duration(float64(b.paceInitial) * float64(remaining) / float64(b.ramp))
}

// Retrier executes operations under a Policy on a clock, with an optional
// shared Budget and Breaker. It is safe for concurrent use; jittered
// backoff draws come from one seeded PRNG so virtual-time runs stay
// deterministic.
type Retrier struct {
	policy   Policy
	clk      vclock.Clock
	classify Classifier
	budget   *Budget
	breaker  *Breaker

	mu  sync.Mutex
	rng *rand.Rand
}

// Option customizes a Retrier.
type Option func(*Retrier)

// WithBudget attaches a shared retry budget.
func WithBudget(b *Budget) Option { return func(r *Retrier) { r.budget = b } }

// WithBreaker attaches a shared circuit breaker.
func WithBreaker(b *Breaker) Option { return func(r *Retrier) { r.breaker = b } }

// WithSeed seeds the jitter PRNG (default seed 0, still deterministic).
func WithSeed(seed int64) Option {
	return func(r *Retrier) { r.rng = rand.New(rand.NewSource(seed)) }
}

// New builds a Retrier. clk and classify are required.
func New(clk vclock.Clock, policy Policy, classify Classifier, opts ...Option) *Retrier {
	if clk == nil {
		panic("retry: nil clock")
	}
	if classify == nil {
		panic("retry: nil classifier")
	}
	r := &Retrier{
		policy:   policy.withDefaults(),
		clk:      clk,
		classify: classify,
		rng:      rand.New(rand.NewSource(0)),
	}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Policy returns the retrier's (defaulted) policy.
func (r *Retrier) Policy() Policy { return r.policy }

// Budget returns the attached budget, if any.
func (r *Retrier) Budget() *Budget { return r.budget }

// Breaker returns the attached breaker, if any.
func (r *Retrier) Breaker() *Breaker { return r.breaker }

// backoff computes the delay before retry number n (1-based), updating prev
// for decorrelated jitter.
func (r *Retrier) backoff(n int, prev time.Duration) time.Duration {
	p := r.policy
	if p.Jitter {
		lo, hi := p.BaseBackoff, 3*prev
		if hi < lo {
			hi = lo
		}
		if hi > p.MaxBackoff {
			hi = p.MaxBackoff
		}
		d := lo
		if hi > lo {
			r.mu.Lock()
			d = lo + time.Duration(r.rng.Int63n(int64(hi-lo)+1))
			r.mu.Unlock()
		}
		return d
	}
	d := p.BaseBackoff
	if p.Multiplier > 1 {
		for i := 1; i < n && d < p.MaxBackoff; i++ {
			d = time.Duration(float64(d) * p.Multiplier)
		}
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// Do runs op under the policy: retry on Transient/Throttle classes until
// the attempt cap, the budget, or the breaker stops it. The returned error
// is the last operation error, wrapped with ErrBudgetExhausted or
// ErrCircuitOpen when those mechanisms cut the retry short.
func (r *Retrier) Do(op func() error) error {
	var lastErr error
	prev := r.policy.BaseBackoff
	for attempt := 1; ; attempt++ {
		if !r.breaker.allow(r.clk.Now()) {
			if lastErr != nil {
				return fmt.Errorf("%w (last error: %v)", ErrCircuitOpen, lastErr)
			}
			return ErrCircuitOpen
		}
		if pace := r.breaker.Pace(r.clk.Now()); pace > 0 {
			r.clk.Sleep(pace) // slow-start: ramp back up after a trip
		}
		err := op()
		if err == nil {
			r.breaker.record(false, r.clk.Now())
			r.budget.deposit()
			return nil
		}
		class := r.classify(err)
		r.breaker.record(class == Throttle, r.clk.Now())
		if class == Fatal {
			return err
		}
		lastErr = err
		if attempt >= r.policy.MaxAttempts {
			return fmt.Errorf("retry: %d attempts exhausted: %w", attempt, err)
		}
		if !r.budget.spend() {
			return fmt.Errorf("%w: %w", ErrBudgetExhausted, err)
		}
		d := r.backoff(attempt, prev)
		prev = d
		r.clk.Sleep(d)
	}
}
