package retry

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"gowren/internal/vclock"
)

var (
	errTransient = errors.New("transient")
	errThrottle  = errors.New("throttle")
	errFatal     = errors.New("fatal")
)

func classify(err error) Class {
	switch {
	case errors.Is(err, errTransient):
		return Transient
	case errors.Is(err, errThrottle):
		return Throttle
	default:
		return Fatal
	}
}

func TestDoRetriesTransientThenSucceeds(t *testing.T) {
	clk := vclock.NewVirtual()
	clk.Run(func() {
		r := New(clk, Policy{MaxAttempts: 5, BaseBackoff: 100 * time.Millisecond}, classify)
		calls := 0
		start := clk.Now()
		err := r.Do(func() error {
			calls++
			if calls < 3 {
				return errTransient
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if calls != 3 {
			t.Fatalf("calls = %d, want 3", calls)
		}
		// Deterministic exponential backoff: 100ms + 200ms.
		if got := clk.Now().Sub(start); got != 300*time.Millisecond {
			t.Fatalf("elapsed = %v, want 300ms", got)
		}
	})
}

func TestDoFatalNotRetried(t *testing.T) {
	clk := vclock.NewVirtual()
	clk.Run(func() {
		r := New(clk, Policy{}, classify)
		calls := 0
		err := r.Do(func() error {
			calls++
			return errFatal
		})
		if !errors.Is(err, errFatal) {
			t.Fatalf("err = %v, want fatal", err)
		}
		if calls != 1 {
			t.Fatalf("calls = %d, want 1", calls)
		}
	})
}

func TestDoAttemptCap(t *testing.T) {
	clk := vclock.NewVirtual()
	clk.Run(func() {
		r := New(clk, Policy{MaxAttempts: 3, BaseBackoff: time.Millisecond}, classify)
		calls := 0
		err := r.Do(func() error {
			calls++
			return errTransient
		})
		if !errors.Is(err, errTransient) {
			t.Fatalf("err = %v, want wrapped transient", err)
		}
		if calls != 3 {
			t.Fatalf("calls = %d, want 3", calls)
		}
	})
}

func TestDoBackoffCapped(t *testing.T) {
	clk := vclock.NewVirtual()
	clk.Run(func() {
		r := New(clk, Policy{
			MaxAttempts: 6,
			BaseBackoff: time.Second,
			MaxBackoff:  2 * time.Second,
		}, classify)
		start := clk.Now()
		_ = r.Do(func() error { return errTransient })
		// Backoffs: 1s, 2s, 2s, 2s, 2s = 9s.
		if got := clk.Now().Sub(start); got != 9*time.Second {
			t.Fatalf("elapsed = %v, want 9s", got)
		}
	})
}

func TestDecorrelatedJitterDeterministicAndBounded(t *testing.T) {
	elapsed := func(seed int64) time.Duration {
		clk := vclock.NewVirtual()
		var d time.Duration
		clk.Run(func() {
			r := New(clk, Policy{
				MaxAttempts: 8,
				BaseBackoff: 50 * time.Millisecond,
				MaxBackoff:  time.Second,
				Jitter:      true,
			}, classify, WithSeed(seed))
			start := clk.Now()
			_ = r.Do(func() error { return errTransient })
			d = clk.Now().Sub(start)
		})
		return d
	}
	a, b := elapsed(7), elapsed(7)
	if a != b {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}
	// 7 backoffs, each in [50ms, 1s].
	if a < 7*50*time.Millisecond || a > 7*time.Second {
		t.Fatalf("jittered total %v outside bounds", a)
	}
	if c := elapsed(8); c == a {
		t.Fatalf("different seeds produced identical schedule %v", c)
	}
}

func TestBudgetStopsRetriesAndRefills(t *testing.T) {
	clk := vclock.NewVirtual()
	clk.Run(func() {
		budget := NewBudget(2, 1)
		r := New(clk, Policy{MaxAttempts: 10, BaseBackoff: time.Millisecond}, classify, WithBudget(budget))
		calls := 0
		err := r.Do(func() error {
			calls++
			return errTransient
		})
		if !errors.Is(err, ErrBudgetExhausted) {
			t.Fatalf("err = %v, want ErrBudgetExhausted", err)
		}
		if !errors.Is(err, errTransient) {
			t.Fatalf("err = %v, should wrap the operation error", err)
		}
		// 1 first try + 2 budgeted retries.
		if calls != 3 {
			t.Fatalf("calls = %d, want 3", calls)
		}
		// Successes replenish the bucket.
		for i := 0; i < 5; i++ {
			if err := r.Do(func() error { return nil }); err != nil {
				t.Fatal(err)
			}
		}
		if budget.Remaining() != 2 {
			t.Fatalf("budget = %v, want refilled to cap 2", budget.Remaining())
		}
	})
}

func TestBreakerShedsAfterSustainedThrottle(t *testing.T) {
	clk := vclock.NewVirtual()
	clk.Run(func() {
		br := NewBreaker(3, 10*time.Second)
		r := New(clk, Policy{MaxAttempts: 4, BaseBackoff: time.Millisecond}, classify, WithBreaker(br))
		calls := 0
		// First Do: 4 throttled attempts trip the breaker at the third.
		err := r.Do(func() error {
			calls++
			return errThrottle
		})
		if !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("err = %v, want ErrCircuitOpen once tripped mid-loop", err)
		}
		if calls != 3 {
			t.Fatalf("calls = %d, want 3 (fourth attempt shed)", calls)
		}
		// While open, calls are shed without running the op.
		err = r.Do(func() error {
			calls++
			return nil
		})
		if !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("err = %v, want ErrCircuitOpen while open", err)
		}
		if calls != 3 {
			t.Fatalf("op ran while circuit open")
		}
		// After the cooldown the probe goes through and closes the circuit.
		clk.Sleep(11 * time.Second)
		if err := r.Do(func() error { calls++; return nil }); err != nil {
			t.Fatal(err)
		}
		if calls != 4 {
			t.Fatalf("calls = %d, want 4", calls)
		}
		if br.Open(clk.Now()) {
			t.Fatal("breaker still open after successful probe")
		}
	})
}

func TestNilBudgetAndBreakerAreInert(t *testing.T) {
	clk := vclock.NewVirtual()
	clk.Run(func() {
		r := New(clk, Policy{MaxAttempts: 2, BaseBackoff: time.Millisecond}, classify)
		if r.Budget() != nil || r.Breaker() != nil {
			t.Fatal("unexpected attached budget/breaker")
		}
		if err := r.Do(func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	})
	if NewBreaker(0, time.Second) != nil {
		t.Fatal("threshold 0 should disable the breaker")
	}
}

func TestBreakerSlowStartPacesAfterTrip(t *testing.T) {
	clk := vclock.NewVirtual()
	clk.Run(func() {
		b := NewBreaker(2, 10*time.Second) // pace starts at 1s, decays over 10s
		now := clk.Now()
		b.record(true, now)
		b.record(true, now) // trips: open until t+10s, ramp until t+20s

		if got := b.Pace(now); got != 0 {
			t.Fatalf("pace while open = %v, want 0 (allow() sheds these)", got)
		}
		reopen := now.Add(10 * time.Second)
		if got := b.Pace(reopen); got != time.Second {
			t.Fatalf("pace at reopen = %v, want 1s", got)
		}
		if got := b.Pace(reopen.Add(5 * time.Second)); got != 500*time.Millisecond {
			t.Fatalf("pace mid-ramp = %v, want 500ms", got)
		}
		if got := b.Pace(reopen.Add(10 * time.Second)); got != 0 {
			t.Fatalf("pace after ramp = %v, want 0", got)
		}
	})
	clk.Wait()
}

func TestRetrierSlowStartDelaysPostTripCalls(t *testing.T) {
	clk := vclock.NewVirtual()
	clk.Run(func() {
		b := NewBreaker(1, 10*time.Second)
		r := New(clk, Policy{MaxAttempts: 1}, classify, WithBreaker(b))

		if err := r.Do(func() error { return errThrottle }); err == nil {
			t.Fatal("throttle not surfaced")
		}
		if !b.Open(clk.Now()) {
			t.Fatal("breaker not open after trip")
		}
		clk.Sleep(10 * time.Second) // cooldown expires; ramp window begins

		start := clk.Now()
		if err := r.Do(func() error { return nil }); err != nil {
			t.Fatal(err)
		}
		// The first post-trip call pays the full slow-start pace (1s).
		if got := clk.Now().Sub(start); got != time.Second {
			t.Fatalf("post-trip call delayed %v, want 1s", got)
		}
		clk.Sleep(9 * time.Second) // past the ramp window
		start = clk.Now()
		if err := r.Do(func() error { return nil }); err != nil {
			t.Fatal(err)
		}
		if got := clk.Now().Sub(start); got != 0 {
			t.Fatalf("steady-state call delayed %v, want 0", got)
		}
	})
	clk.Wait()
}

func TestBreakerSlowStartDisabled(t *testing.T) {
	clk := vclock.NewVirtual()
	clk.Run(func() {
		b := NewBreaker(1, 10*time.Second)
		b.SetSlowStart(0, 0)
		now := clk.Now()
		b.record(true, now)
		if got := b.Pace(now.Add(10 * time.Second)); got != 0 {
			t.Fatalf("disabled slow-start paced %v", got)
		}
		var nilB *Breaker
		nilB.SetSlowStart(time.Second, time.Second)
		if got := nilB.Pace(now); got != 0 {
			t.Fatalf("nil breaker paced %v", got)
		}
	})
	clk.Wait()
}

// TestBreakerHalfOpenSingleProbe drives concurrent Do calls into a tripped
// breaker whose cooldown has expired: exactly one caller must be admitted
// as the half-open probe while the rest fail fast with ErrCircuitOpen, and
// the probe's success must close the circuit for everyone.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clk := vclock.NewVirtual()
	clk.Run(func() {
		br := NewBreaker(1, 10*time.Second)
		br.SetSlowStart(0, 0)
		r := New(clk, Policy{MaxAttempts: 1, BaseBackoff: time.Millisecond}, classify, WithBreaker(br))

		// Trip the circuit.
		if err := r.Do(func() error { return errThrottle }); err == nil {
			t.Fatal("expected trip error")
		}
		if !br.Open(clk.Now()) {
			t.Fatal("breaker should be open after trip")
		}
		clk.Sleep(11 * time.Second)

		// Five concurrent callers arrive at the same virtual instant. The
		// probe op holds the half-open window open for a full virtual
		// second, so every loser observes the in-flight probe.
		var ran, shed, succeeded atomic.Int32
		var done atomic.Int32
		for i := 0; i < 5; i++ {
			clk.Go(func() {
				defer done.Add(1)
				err := r.Do(func() error {
					ran.Add(1)
					clk.Sleep(time.Second)
					return nil
				})
				switch {
				case err == nil:
					succeeded.Add(1)
				case errors.Is(err, ErrCircuitOpen):
					shed.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
				}
			})
		}
		if !vclock.Poll(clk, func() bool { return done.Load() == 5 }, time.Millisecond, clk.Now().Add(time.Minute)) {
			t.Fatal("concurrent callers did not finish")
		}
		if got := ran.Load(); got != 1 {
			t.Fatalf("ops run = %d, want exactly 1 probe", got)
		}
		if succeeded.Load() != 1 || shed.Load() != 4 {
			t.Fatalf("succeeded = %d shed = %d, want 1 and 4", succeeded.Load(), shed.Load())
		}
		if br.Open(clk.Now()) {
			t.Fatal("breaker still open after successful probe")
		}
		// Closed circuit: everyone flows again.
		if err := r.Do(func() error { return nil }); err != nil {
			t.Fatalf("post-close call failed: %v", err)
		}
	})
}

// TestBreakerThrottledProbeReopens checks the other half-open outcome: a
// probe that is itself throttled reopens the circuit for a fresh cooldown
// immediately (no need for threshold more throttles).
func TestBreakerThrottledProbeReopens(t *testing.T) {
	clk := vclock.NewVirtual()
	clk.Run(func() {
		br := NewBreaker(3, 10*time.Second)
		br.SetSlowStart(0, 0)
		r := New(clk, Policy{MaxAttempts: 1, BaseBackoff: time.Millisecond}, classify, WithBreaker(br))

		for i := 0; i < 3; i++ {
			if err := r.Do(func() error { return errThrottle }); err == nil {
				t.Fatal("expected throttle error")
			}
		}
		if !br.Open(clk.Now()) {
			t.Fatal("breaker should be open")
		}
		clk.Sleep(11 * time.Second)

		// The probe throttles: one attempt, immediate reopen.
		calls := 0
		if err := r.Do(func() error { calls++; return errThrottle }); err == nil {
			t.Fatal("expected probe failure")
		}
		if calls != 1 {
			t.Fatalf("probe calls = %d, want 1", calls)
		}
		if !br.Open(clk.Now()) {
			t.Fatal("breaker should have reopened after throttled probe")
		}
		// And while reopened, callers shed without running the op.
		err := r.Do(func() error { calls++; return nil })
		if !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("err = %v, want ErrCircuitOpen", err)
		}
		if calls != 1 {
			t.Fatal("op ran through a reopened circuit")
		}
	})
}
