package cos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// HTTPClient is a Client backed by a remote Store served with Handler. It is
// used when the simulated cloud runs as a separate process
// (cmd/gowren-server); in-process simulations talk to the Store directly.
type HTTPClient struct {
	base string
	hc   *http.Client
}

var _ Client = (*HTTPClient)(nil)

// NewHTTPClient returns a client for the store served at baseURL
// (e.g. "http://127.0.0.1:7070"). A nil httpClient uses a default with a
// 60 s timeout.
func NewHTTPClient(baseURL string, httpClient *http.Client) *HTTPClient {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 60 * time.Second}
	}
	return &HTTPClient{base: baseURL, hc: httpClient}
}

func (c *HTTPClient) bucketURL(bucket string) string {
	return c.base + "/b/" + url.PathEscape(bucket)
}

func (c *HTTPClient) objectURL(bucket, key string) string {
	// Keys may contain slashes that must survive as path separators.
	return c.bucketURL(bucket) + "/" + escapeKey(key)
}

func escapeKey(key string) string {
	segs := make([]string, 0, 4)
	start := 0
	for i := 0; i <= len(key); i++ {
		if i == len(key) || key[i] == '/' {
			segs = append(segs, url.PathEscape(key[start:i]))
			start = i + 1
		}
	}
	out := segs[0]
	for _, s := range segs[1:] {
		out += "/" + s
	}
	return out
}

func (c *HTTPClient) do(method, rawURL string, body []byte, header http.Header) (*http.Response, error) {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, rawURL, rdr)
	if err != nil {
		return nil, fmt.Errorf("cos http: build %s %s: %w", method, rawURL, err)
	}
	// http.Header is itself a map: cross-key write order is unobservable,
	// and per-key value order is preserved by the inner slice loop.
	for k, vs := range header { //gowren:allow mapiter — writes into another map, order unobservable
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cos http: %s %s: %w", method, rawURL, err)
	}
	return resp, nil
}

// remoteErr converts an error response into the matching package sentinel.
func remoteErr(resp *http.Response) error {
	defer drain(resp)
	code := resp.Header.Get(headerError)
	if base, ok := errToCode[code]; ok {
		return fmt.Errorf("remote (%s): %w", resp.Status, base)
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("cos http: unexpected status %s: %s", resp.Status, bytes.TrimSpace(msg))
}

func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
}

func metaFromHeaders(key string, h http.Header) ObjectMeta {
	size, _ := strconv.ParseInt(h.Get(headerObjectSize), 10, 64)
	mod, _ := time.Parse("2006-01-02T15:04:05.000000000Z", h.Get(headerLastModified))
	return ObjectMeta{Key: key, Size: size, ETag: h.Get("ETag"), LastModified: mod}
}

// CreateBucket implements Client.
func (c *HTTPClient) CreateBucket(bucket string) error {
	resp, err := c.do(http.MethodPut, c.bucketURL(bucket), nil, nil)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusCreated {
		return remoteErr(resp)
	}
	drain(resp)
	return nil
}

// DeleteBucket implements Client.
func (c *HTTPClient) DeleteBucket(bucket string) error {
	resp, err := c.do(http.MethodDelete, c.bucketURL(bucket), nil, nil)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusNoContent {
		return remoteErr(resp)
	}
	drain(resp)
	return nil
}

// BucketExists implements Client.
func (c *HTTPClient) BucketExists(bucket string) (bool, error) {
	resp, err := c.do(http.MethodHead, c.bucketURL(bucket), nil, nil)
	if err != nil {
		return false, err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("cos http: head bucket: unexpected status %s", resp.Status)
	}
}

// Put implements Client.
func (c *HTTPClient) Put(bucket, key string, data []byte) (ObjectMeta, error) {
	resp, err := c.do(http.MethodPut, c.objectURL(bucket, key), data, nil)
	if err != nil {
		return ObjectMeta{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return ObjectMeta{}, remoteErr(resp)
	}
	meta := metaFromHeaders(key, resp.Header)
	drain(resp)
	return meta, nil
}

// Get implements Client.
func (c *HTTPClient) Get(bucket, key string) ([]byte, ObjectMeta, error) {
	return c.get(bucket, key, "")
}

// GetRange implements Client.
func (c *HTTPClient) GetRange(bucket, key string, offset, length int64) ([]byte, ObjectMeta, error) {
	var rangeHeader string
	if length < 0 {
		rangeHeader = fmt.Sprintf("bytes=%d-", offset)
	} else {
		if length == 0 {
			// The HTTP range unit cannot express empty ranges; resolve
			// locally with a metadata round trip.
			meta, err := c.Head(bucket, key)
			if err != nil {
				return nil, ObjectMeta{}, err
			}
			if offset > 0 && offset >= meta.Size {
				return nil, ObjectMeta{}, fmt.Errorf("get %s/%s offset=%d size=%d: %w", bucket, key, offset, meta.Size, ErrInvalidRange)
			}
			return []byte{}, meta, nil
		}
		rangeHeader = fmt.Sprintf("bytes=%d-%d", offset, offset+length-1)
	}
	return c.get(bucket, key, rangeHeader)
}

func (c *HTTPClient) get(bucket, key, rangeHeader string) ([]byte, ObjectMeta, error) {
	var h http.Header
	if rangeHeader != "" {
		h = http.Header{"Range": []string{rangeHeader}}
	}
	resp, err := c.do(http.MethodGet, c.objectURL(bucket, key), nil, h)
	if err != nil {
		return nil, ObjectMeta{}, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusPartialContent {
		return nil, ObjectMeta{}, remoteErr(resp)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, ObjectMeta{}, fmt.Errorf("cos http: read body %s/%s: %w", bucket, key, err)
	}
	return data, metaFromHeaders(key, resp.Header), nil
}

// Head implements Client.
func (c *HTTPClient) Head(bucket, key string) (ObjectMeta, error) {
	resp, err := c.do(http.MethodHead, c.objectURL(bucket, key), nil, nil)
	if err != nil {
		return ObjectMeta{}, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		// HEAD responses carry no body; rebuild the sentinel from headers.
		if base, ok := errToCode[resp.Header.Get(headerError)]; ok {
			return ObjectMeta{}, fmt.Errorf("head %s/%s: %w", bucket, key, base)
		}
		return ObjectMeta{}, fmt.Errorf("cos http: head %s/%s: unexpected status %s", bucket, key, resp.Status)
	}
	return metaFromHeaders(key, resp.Header), nil
}

// List implements Client.
func (c *HTTPClient) List(bucket, prefix, marker string, maxKeys int) (ListResult, error) {
	q := url.Values{}
	if prefix != "" {
		q.Set("prefix", prefix)
	}
	if marker != "" {
		q.Set("marker", marker)
	}
	if maxKeys > 0 {
		q.Set("max-keys", strconv.Itoa(maxKeys))
	}
	u := c.bucketURL(bucket)
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	resp, err := c.do(http.MethodGet, u, nil, nil)
	if err != nil {
		return ListResult{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return ListResult{}, remoteErr(resp)
	}
	defer resp.Body.Close()
	var res ListResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return ListResult{}, fmt.Errorf("cos http: decode list response: %w", err)
	}
	return res, nil
}

// ListBuckets implements Client.
func (c *HTTPClient) ListBuckets() ([]string, error) {
	resp, err := c.do(http.MethodGet, c.base+"/b", nil, nil)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, remoteErr(resp)
	}
	defer resp.Body.Close()
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		return nil, fmt.Errorf("cos http: decode bucket list: %w", err)
	}
	return names, nil
}

// Delete implements Client.
func (c *HTTPClient) Delete(bucket, key string) error {
	resp, err := c.do(http.MethodDelete, c.objectURL(bucket, key), nil, nil)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusNoContent {
		return remoteErr(resp)
	}
	drain(resp)
	return nil
}
