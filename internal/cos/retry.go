package cos

import (
	"errors"
	"time"

	"gowren/internal/vclock"
)

// Retrying wraps a Client and retries operations that fail with the
// simulated transient error ErrRequestFailed, as real storage SDKs do.
// Non-transient errors pass through untouched. The platform wraps the
// in-cloud storage view with it so every function sees SDK-like semantics.
type Retrying struct {
	inner    Client
	clk      vclock.Clock
	attempts int
	backoff  time.Duration
}

var _ Client = (*Retrying)(nil)

// NewRetrying wraps inner with up to attempts tries separated by backoff.
// Zero values select 4 attempts and 100 ms.
func NewRetrying(inner Client, clk vclock.Clock, attempts int, backoff time.Duration) *Retrying {
	if attempts <= 0 {
		attempts = 4
	}
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	return &Retrying{inner: inner, clk: clk, attempts: attempts, backoff: backoff}
}

// do retries op while it reports a transient failure.
func (r *Retrying) do(op func() error) error {
	var err error
	for attempt := 0; attempt < r.attempts; attempt++ {
		if attempt > 0 {
			r.clk.Sleep(r.backoff)
		}
		if err = op(); err == nil || !errors.Is(err, ErrRequestFailed) {
			return err
		}
	}
	return err
}

// CreateBucket implements Client.
func (r *Retrying) CreateBucket(bucket string) error {
	return r.do(func() error { return r.inner.CreateBucket(bucket) })
}

// DeleteBucket implements Client.
func (r *Retrying) DeleteBucket(bucket string) error {
	return r.do(func() error { return r.inner.DeleteBucket(bucket) })
}

// BucketExists implements Client.
func (r *Retrying) BucketExists(bucket string) (ok bool, err error) {
	err = r.do(func() error {
		ok, err = r.inner.BucketExists(bucket)
		return err
	})
	return ok, err
}

// Put implements Client.
func (r *Retrying) Put(bucket, key string, data []byte) (meta ObjectMeta, err error) {
	err = r.do(func() error {
		meta, err = r.inner.Put(bucket, key, data)
		return err
	})
	return meta, err
}

// Get implements Client.
func (r *Retrying) Get(bucket, key string) (data []byte, meta ObjectMeta, err error) {
	err = r.do(func() error {
		data, meta, err = r.inner.Get(bucket, key)
		return err
	})
	return data, meta, err
}

// GetRange implements Client.
func (r *Retrying) GetRange(bucket, key string, offset, length int64) (data []byte, meta ObjectMeta, err error) {
	err = r.do(func() error {
		data, meta, err = r.inner.GetRange(bucket, key, offset, length)
		return err
	})
	return data, meta, err
}

// Head implements Client.
func (r *Retrying) Head(bucket, key string) (meta ObjectMeta, err error) {
	err = r.do(func() error {
		meta, err = r.inner.Head(bucket, key)
		return err
	})
	return meta, err
}

// List implements Client.
func (r *Retrying) List(bucket, prefix, marker string, maxKeys int) (res ListResult, err error) {
	err = r.do(func() error {
		res, err = r.inner.List(bucket, prefix, marker, maxKeys)
		return err
	})
	return res, err
}

// ListBuckets implements Client.
func (r *Retrying) ListBuckets() (names []string, err error) {
	err = r.do(func() error {
		names, err = r.inner.ListBuckets()
		return err
	})
	return names, err
}

// Delete implements Client.
func (r *Retrying) Delete(bucket, key string) error {
	return r.do(func() error { return r.inner.Delete(bucket, key) })
}
