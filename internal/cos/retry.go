package cos

import (
	"errors"
	"time"

	"gowren/internal/retry"
	"gowren/internal/vclock"
)

// Defaults applied by NewRetrying when the caller passes non-positive
// values. They mirror common storage-SDK settings: a handful of quick,
// evenly spaced tries.
const (
	// DefaultRetryAttempts is the total number of tries (first call
	// included) selected when attempts <= 0.
	DefaultRetryAttempts = 4
	// DefaultRetryBackoff is the fixed delay between tries selected when
	// backoff <= 0.
	DefaultRetryBackoff = 100 * time.Millisecond
)

// Retrying wraps a Client and retries operations that fail with the
// simulated transient error ErrRequestFailed, as real storage SDKs do.
// Non-transient errors pass through untouched. The platform wraps the
// in-cloud storage view with it so every function sees SDK-like semantics.
// It is a thin shim over the system-wide policy in internal/retry.
type Retrying struct {
	inner Client
	retr  *retry.Retrier
}

var _ Client = (*Retrying)(nil)

// classifyStorage maps storage errors onto the shared retry classes: only
// the simulated transient request failure is retryable.
func classifyStorage(err error) retry.Class {
	if errors.Is(err, ErrRequestFailed) {
		return retry.Transient
	}
	return retry.Fatal
}

// NewRetrying wraps inner with up to attempts total tries separated by a
// fixed backoff. Validation is explicit: any attempts >= 1 is honored
// exactly (attempts == 1 disables retries entirely) and any backoff > 0 is
// honored exactly; only non-positive values select DefaultRetryAttempts
// and DefaultRetryBackoff. Callers needing exponential or jittered
// schedules, budgets or breakers should build a retry.Retrier directly.
func NewRetrying(inner Client, clk vclock.Clock, attempts int, backoff time.Duration) *Retrying {
	if attempts <= 0 {
		attempts = DefaultRetryAttempts
	}
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	return &Retrying{
		inner: inner,
		retr: retry.New(clk, retry.Policy{
			MaxAttempts: attempts,
			BaseBackoff: backoff,
			MaxBackoff:  backoff,
			Multiplier:  1, // fixed spacing, as storage SDKs default to
		}, classifyStorage),
	}
}

// do retries op while it reports a transient failure.
func (r *Retrying) do(op func() error) error {
	return r.retr.Do(op)
}

// CreateBucket implements Client.
func (r *Retrying) CreateBucket(bucket string) error {
	return r.do(func() error { return r.inner.CreateBucket(bucket) })
}

// DeleteBucket implements Client.
func (r *Retrying) DeleteBucket(bucket string) error {
	return r.do(func() error { return r.inner.DeleteBucket(bucket) })
}

// BucketExists implements Client.
func (r *Retrying) BucketExists(bucket string) (ok bool, err error) {
	err = r.do(func() error {
		ok, err = r.inner.BucketExists(bucket)
		return err
	})
	return ok, err
}

// Put implements Client.
func (r *Retrying) Put(bucket, key string, data []byte) (meta ObjectMeta, err error) {
	err = r.do(func() error {
		meta, err = r.inner.Put(bucket, key, data)
		return err
	})
	return meta, err
}

// Get implements Client.
func (r *Retrying) Get(bucket, key string) (data []byte, meta ObjectMeta, err error) {
	err = r.do(func() error {
		data, meta, err = r.inner.Get(bucket, key)
		return err
	})
	return data, meta, err
}

// GetRange implements Client.
func (r *Retrying) GetRange(bucket, key string, offset, length int64) (data []byte, meta ObjectMeta, err error) {
	err = r.do(func() error {
		data, meta, err = r.inner.GetRange(bucket, key, offset, length)
		return err
	})
	return data, meta, err
}

// Head implements Client.
func (r *Retrying) Head(bucket, key string) (meta ObjectMeta, err error) {
	err = r.do(func() error {
		meta, err = r.inner.Head(bucket, key)
		return err
	})
	return meta, err
}

// List implements Client.
func (r *Retrying) List(bucket, prefix, marker string, maxKeys int) (res ListResult, err error) {
	err = r.do(func() error {
		res, err = r.inner.List(bucket, prefix, marker, maxKeys)
		return err
	})
	return res, err
}

// ListBuckets implements Client.
func (r *Retrying) ListBuckets() (names []string, err error) {
	err = r.do(func() error {
		names, err = r.inner.ListBuckets()
		return err
	})
	return names, err
}

// Delete implements Client.
func (r *Retrying) Delete(bucket, key string) error {
	return r.do(func() error { return r.inner.Delete(bucket, key) })
}
