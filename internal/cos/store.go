package cos

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"maps"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gowren/internal/netsim"
	"gowren/internal/vclock"
)

// Store is the in-memory object-store engine. It is safe for concurrent use.
// When configured with a network link, every operation charges simulated
// latency (and transfer time proportional to the bytes moved) on the
// simulation clock before touching state, which is how the experiments see
// realistic COS round-trip costs.
type Store struct {
	clock vclock.Clock
	link  *netsim.Link // nil disables network modeling

	mu        sync.RWMutex
	buckets   map[string]*bucket
	naiveList bool // re-sort the full key set on every List (A/B baseline)

	stats Stats
}

var _ Client = (*Store)(nil)

// Stats counts operations and bytes through the store. Counters are
// cumulative and safe to read concurrently.
type Stats struct {
	PutOps    atomic.Int64
	GetOps    atomic.Int64
	HeadOps   atomic.Int64
	ListOps   atomic.Int64
	DeleteOps atomic.Int64
	BytesIn   atomic.Int64
	BytesOut  atomic.Int64
}

// StatsSnapshot is a point-in-time copy of the store counters.
type StatsSnapshot struct {
	PutOps, GetOps, HeadOps, ListOps, DeleteOps int64
	BytesIn, BytesOut                           int64
}

// bucket pairs the object map with an incrementally maintained sorted key
// index. List range-scans the index from a binary-searched start position
// instead of materializing and sorting the full key set per call, which is
// what makes repeated prefix listings over large buckets (the wait path's
// status sweeps) cheap. The index is exact: insert on first Put of a key,
// remove on Delete, no tombstones.
type bucket struct {
	objects map[string]*object
	keys    []string // sorted; in sync with objects
}

// insertKey adds key to the sorted index if absent. Appends (keys arriving
// in order, the common case for zero-padded call IDs) are O(1).
func (b *bucket) insertKey(key string) {
	if n := len(b.keys); n == 0 || b.keys[n-1] < key {
		b.keys = append(b.keys, key)
		return
	}
	i := sort.SearchStrings(b.keys, key)
	if i < len(b.keys) && b.keys[i] == key {
		return
	}
	b.keys = append(b.keys, "")
	copy(b.keys[i+1:], b.keys[i:])
	b.keys[i] = key
}

// removeKey deletes key from the sorted index if present.
func (b *bucket) removeKey(key string) {
	i := sort.SearchStrings(b.keys, key)
	if i < len(b.keys) && b.keys[i] == key {
		b.keys = append(b.keys[:i], b.keys[i+1:]...)
	}
}

type object struct {
	meta ObjectMeta
	data []byte    // nil when gen != nil
	gen  Generator // synthetic content
}

// StoreOption configures a Store.
type StoreOption func(*Store)

// WithLink attaches a network cost model: every operation sleeps the link's
// latency on clk, and payload bytes are charged at the link's bandwidth.
func WithLink(clk vclock.Clock, link *netsim.Link) StoreOption {
	return func(s *Store) {
		s.clock = clk
		s.link = link
	}
}

// WithNaiveListing disables the incrementally maintained per-bucket key
// index and re-sorts the full key set on every List call — the
// pre-overhaul behavior, kept as an A/B baseline for cmd/simbench and the
// index equivalence tests. Listing output is byte-identical either way.
func WithNaiveListing() StoreOption {
	return func(s *Store) { s.naiveList = true }
}

// NewStore returns an empty Store. Without options it is a zero-latency
// in-process store, suitable for unit tests.
func NewStore(opts ...StoreOption) *Store {
	s := &Store{buckets: make(map[string]*bucket)}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Stats returns a snapshot of the operation counters.
func (s *Store) Stats() StatsSnapshot {
	return StatsSnapshot{
		PutOps:    s.stats.PutOps.Load(),
		GetOps:    s.stats.GetOps.Load(),
		HeadOps:   s.stats.HeadOps.Load(),
		ListOps:   s.stats.ListOps.Load(),
		DeleteOps: s.stats.DeleteOps.Load(),
		BytesIn:   s.stats.BytesIn.Load(),
		BytesOut:  s.stats.BytesOut.Load(),
	}
}

// charge sleeps the link's per-request latency plus the transfer time for
// payloadBytes, and reports a simulated failure if the link injects one.
// It must be called without s.mu held.
func (s *Store) charge(payloadBytes int64) error {
	if s.link == nil {
		return nil
	}
	d := s.link.Latency() + s.link.Transfer(payloadBytes)
	s.clock.Sleep(d)
	if s.link.Fail() {
		return ErrRequestFailed
	}
	return nil
}

// CreateBucket implements Client.
func (s *Store) CreateBucket(name string) error {
	if err := s.charge(0); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[name]; ok {
		return fmt.Errorf("create bucket %q: %w", name, ErrBucketExists)
	}
	s.buckets[name] = &bucket{objects: make(map[string]*object)}
	return nil
}

// DeleteBucket implements Client.
func (s *Store) DeleteBucket(name string) error {
	if err := s.charge(0); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[name]
	if !ok {
		return fmt.Errorf("delete bucket %q: %w", name, ErrNoSuchBucket)
	}
	if len(b.objects) > 0 {
		return fmt.Errorf("delete bucket %q: %w", name, ErrBucketNotEmpty)
	}
	delete(s.buckets, name)
	return nil
}

// BucketExists implements Client.
func (s *Store) BucketExists(name string) (bool, error) {
	if err := s.charge(0); err != nil {
		return false, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.buckets[name]
	return ok, nil
}

// Put implements Client. The stored object owns a copy of data.
func (s *Store) Put(bucketName, key string, data []byte) (ObjectMeta, error) {
	s.stats.PutOps.Add(1)
	s.stats.BytesIn.Add(int64(len(data)))
	if err := s.charge(int64(len(data))); err != nil {
		return ObjectMeta{}, err
	}
	body := make([]byte, len(data))
	copy(body, data)
	sum := md5.Sum(body)
	meta := ObjectMeta{
		Key:          key,
		Size:         int64(len(body)),
		ETag:         hex.EncodeToString(sum[:]),
		LastModified: s.now(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return ObjectMeta{}, fmt.Errorf("put %s/%s: %w", bucketName, key, ErrNoSuchBucket)
	}
	if _, exists := b.objects[key]; !exists {
		b.insertKey(key)
	}
	b.objects[key] = &object{meta: meta, data: body}
	return meta, nil
}

// PutGenerated stores a synthetic object of the given size whose content is
// produced on demand by gen. It is a simulator-only entry point (not part of
// Client) used by experiment harnesses to host multi-gigabyte datasets
// without materializing them.
func (s *Store) PutGenerated(bucketName, key string, size int64, gen Generator) (ObjectMeta, error) {
	if size < 0 {
		return ObjectMeta{}, fmt.Errorf("put generated %s/%s: negative size %d", bucketName, key, size)
	}
	if gen == nil {
		return ObjectMeta{}, fmt.Errorf("put generated %s/%s: nil generator", bucketName, key)
	}
	meta := ObjectMeta{
		Key:          key,
		Size:         size,
		ETag:         syntheticETag(bucketName, key, size),
		LastModified: s.now(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return ObjectMeta{}, fmt.Errorf("put generated %s/%s: %w", bucketName, key, ErrNoSuchBucket)
	}
	if _, exists := b.objects[key]; !exists {
		b.insertKey(key)
	}
	b.objects[key] = &object{meta: meta, gen: gen}
	return meta, nil
}

// Get implements Client.
func (s *Store) Get(bucketName, key string) ([]byte, ObjectMeta, error) {
	return s.GetRange(bucketName, key, 0, -1)
}

// GetRange implements Client.
func (s *Store) GetRange(bucketName, key string, offset, length int64) ([]byte, ObjectMeta, error) {
	s.stats.GetOps.Add(1)
	s.mu.RLock()
	obj, err := s.lookupLocked(bucketName, key)
	if err != nil {
		s.mu.RUnlock()
		// Even a miss costs a round trip.
		if cerr := s.charge(0); cerr != nil {
			return nil, ObjectMeta{}, cerr
		}
		return nil, ObjectMeta{}, fmt.Errorf("get %s/%s: %w", bucketName, key, err)
	}
	size := obj.meta.Size
	if offset < 0 || (offset > 0 && offset >= size) {
		s.mu.RUnlock()
		return nil, ObjectMeta{}, fmt.Errorf("get %s/%s offset=%d size=%d: %w", bucketName, key, offset, size, ErrInvalidRange)
	}
	if length < 0 || offset+length > size {
		length = size - offset
	}
	out := make([]byte, length)
	if obj.gen != nil {
		obj.gen.FillAt(offset, out)
	} else {
		copy(out, obj.data[offset:offset+length])
	}
	meta := obj.meta
	s.mu.RUnlock()

	s.stats.BytesOut.Add(length)
	if err := s.charge(length); err != nil {
		return nil, ObjectMeta{}, err
	}
	return out, meta, nil
}

// Head implements Client.
func (s *Store) Head(bucketName, key string) (ObjectMeta, error) {
	s.stats.HeadOps.Add(1)
	if err := s.charge(0); err != nil {
		return ObjectMeta{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	obj, err := s.lookupLocked(bucketName, key)
	if err != nil {
		return ObjectMeta{}, fmt.Errorf("head %s/%s: %w", bucketName, key, err)
	}
	return obj.meta, nil
}

// List implements Client.
func (s *Store) List(bucketName, prefix, marker string, maxKeys int) (ListResult, error) {
	s.stats.ListOps.Add(1)
	if err := s.charge(0); err != nil {
		return ListResult{}, err
	}
	if maxKeys <= 0 {
		maxKeys = DefaultMaxKeys
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return ListResult{}, fmt.Errorf("list %s: %w", bucketName, ErrNoSuchBucket)
	}
	if s.naiveList {
		return listNaive(b, prefix, marker, maxKeys), nil
	}
	// Range-scan the sorted index: binary-search the first candidate (past
	// both the prefix's lower bound and the marker), then walk forward until
	// the prefix is exhausted or the page fills.
	start := prefix
	if marker != "" && marker >= start {
		// First key strictly after the marker.
		start = marker + "\x00"
	}
	i := sort.SearchStrings(b.keys, start)
	var res ListResult
	for ; i < len(b.keys); i++ {
		k := b.keys[i]
		if len(prefix) > 0 && (len(k) < len(prefix) || k[:len(prefix)] != prefix) {
			break
		}
		if len(res.Objects) == maxKeys {
			res.IsTruncated = true
			res.NextMarker = res.Objects[len(res.Objects)-1].Key
			break
		}
		res.Objects = append(res.Objects, b.objects[k].meta)
	}
	return res, nil
}

// listNaive is the pre-index listing path: materialize and sort every key,
// then filter. Kept behind WithNaiveListing as the A/B baseline; its output
// is byte-identical to the indexed path.
func listNaive(b *bucket, prefix, marker string, maxKeys int) ListResult {
	keys := make([]string, 0, len(b.objects))
	for _, k := range slices.Sorted(maps.Keys(b.objects)) {
		if len(prefix) > 0 && (len(k) < len(prefix) || k[:len(prefix)] != prefix) {
			continue
		}
		if marker != "" && k <= marker {
			continue
		}
		keys = append(keys, k)
	}
	var res ListResult
	for i, k := range keys {
		if i == maxKeys {
			res.IsTruncated = true
			res.NextMarker = res.Objects[len(res.Objects)-1].Key
			break
		}
		res.Objects = append(res.Objects, b.objects[k].meta)
	}
	return res
}

// ListBuckets implements Client.
func (s *Store) ListBuckets() ([]string, error) {
	if err := s.charge(0); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.buckets))
	for name := range s.buckets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Delete implements Client.
func (s *Store) Delete(bucketName, key string) error {
	s.stats.DeleteOps.Add(1)
	if err := s.charge(0); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return fmt.Errorf("delete %s/%s: %w", bucketName, key, ErrNoSuchBucket)
	}
	if _, exists := b.objects[key]; exists {
		delete(b.objects, key)
		b.removeKey(key)
	}
	return nil
}

// lookupLocked finds an object; callers hold s.mu (read or write).
func (s *Store) lookupLocked(bucketName, key string) (*object, error) {
	b, ok := s.buckets[bucketName]
	if !ok {
		return nil, ErrNoSuchBucket
	}
	obj, ok := b.objects[key]
	if !ok {
		return nil, ErrNoSuchKey
	}
	return obj, nil
}

func (s *Store) now() time.Time {
	if s.clock != nil {
		return s.clock.Now()
	}
	// Real-mode fallback: a Store constructed without a clock (integration
	// tests, the HTTP server) stamps objects with wall time.
	return time.Now() //gowren:allow clockcheck — real-mode fallback when no Clock is injected
}

func syntheticETag(bucket, key string, size int64) string {
	sum := md5.Sum([]byte(fmt.Sprintf("synthetic:%s/%s:%d", bucket, key, size)))
	return hex.EncodeToString(sum[:])
}
