package cos

import (
	"fmt"
	"testing"
)

// benchStore builds a store with n zero-padded status-style keys, the shape
// the wait path lists: one namespace prefix, keys arriving in order.
func benchStore(b *testing.B, n int, naive bool) *Store {
	b.Helper()
	var opts []StoreOption
	if naive {
		opts = append(opts, WithNaiveListing())
	}
	s := NewStore(opts...)
	if err := s.CreateBucket("b"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := s.Put("b", fmt.Sprintf("exec/status/%08d", i), nil); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkList measures one page off a large bucket — the indexed path
// binary-searches and copies a page; the naive path sorts every key first.
func BenchmarkList(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		for _, naive := range []bool{false, true} {
			name := fmt.Sprintf("n=%d/indexed=%v", n, !naive)
			b.Run(name, func(b *testing.B) {
				s := benchStore(b, n, naive)
				marker := fmt.Sprintf("exec/status/%08d", n/2)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.List("b", "exec/status/", marker, 100); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkListFrom measures the frontier-resume pattern: repeatedly list a
// short tail page from a marker near the end of a large bucket, the
// steady-state shape of the sweep coordinator's incremental LISTs.
func BenchmarkListFrom(b *testing.B) {
	for _, naive := range []bool{false, true} {
		name := fmt.Sprintf("indexed=%v", !naive)
		b.Run(name, func(b *testing.B) {
			const n = 100000
			s := benchStore(b, n, naive)
			marker := fmt.Sprintf("exec/status/%08d", n-10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ListFrom(s, "b", "exec/status/", marker); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
