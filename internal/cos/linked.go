package cos

import (
	"gowren/internal/netsim"
	"gowren/internal/vclock"
)

// Linked wraps a Client and charges every operation on a network link: RTT
// per request plus transfer time for the bytes moved, with optional injected
// failures. The same underlying Store can be viewed through different links
// — the executor's WAN path and the functions' in-cloud path — which is how
// GoWren reproduces the client-location effects of the paper's §5.1.
type Linked struct {
	inner Client
	clk   vclock.Clock
	link  *netsim.Link
}

var _ Client = (*Linked)(nil)

// NewLinked returns a view of inner charged on link using clk.
func NewLinked(inner Client, clk vclock.Clock, link *netsim.Link) *Linked {
	return &Linked{inner: inner, clk: clk, link: link}
}

func (l *Linked) charge(bytes int64) error {
	l.clk.Sleep(l.link.Latency() + l.link.Transfer(bytes))
	if l.link.Fail() {
		return ErrRequestFailed
	}
	return nil
}

// CreateBucket implements Client.
func (l *Linked) CreateBucket(bucket string) error {
	if err := l.charge(0); err != nil {
		return err
	}
	return l.inner.CreateBucket(bucket)
}

// DeleteBucket implements Client.
func (l *Linked) DeleteBucket(bucket string) error {
	if err := l.charge(0); err != nil {
		return err
	}
	return l.inner.DeleteBucket(bucket)
}

// BucketExists implements Client.
func (l *Linked) BucketExists(bucket string) (bool, error) {
	if err := l.charge(0); err != nil {
		return false, err
	}
	return l.inner.BucketExists(bucket)
}

// Put implements Client; the payload is charged as upload.
func (l *Linked) Put(bucket, key string, data []byte) (ObjectMeta, error) {
	if err := l.charge(int64(len(data))); err != nil {
		return ObjectMeta{}, err
	}
	return l.inner.Put(bucket, key, data)
}

// Get implements Client; the body is charged as download.
func (l *Linked) Get(bucket, key string) ([]byte, ObjectMeta, error) {
	data, meta, err := l.inner.Get(bucket, key)
	if err != nil {
		if cerr := l.charge(0); cerr != nil {
			return nil, ObjectMeta{}, cerr
		}
		return nil, ObjectMeta{}, err
	}
	if cerr := l.charge(int64(len(data))); cerr != nil {
		return nil, ObjectMeta{}, cerr
	}
	return data, meta, nil
}

// GetRange implements Client; the body is charged as download.
func (l *Linked) GetRange(bucket, key string, offset, length int64) ([]byte, ObjectMeta, error) {
	data, meta, err := l.inner.GetRange(bucket, key, offset, length)
	if err != nil {
		if cerr := l.charge(0); cerr != nil {
			return nil, ObjectMeta{}, cerr
		}
		return nil, ObjectMeta{}, err
	}
	if cerr := l.charge(int64(len(data))); cerr != nil {
		return nil, ObjectMeta{}, cerr
	}
	return data, meta, nil
}

// Head implements Client.
func (l *Linked) Head(bucket, key string) (ObjectMeta, error) {
	if err := l.charge(0); err != nil {
		return ObjectMeta{}, err
	}
	return l.inner.Head(bucket, key)
}

// List implements Client.
func (l *Linked) List(bucket, prefix, marker string, maxKeys int) (ListResult, error) {
	if err := l.charge(0); err != nil {
		return ListResult{}, err
	}
	return l.inner.List(bucket, prefix, marker, maxKeys)
}

// ListBuckets implements Client.
func (l *Linked) ListBuckets() ([]string, error) {
	if err := l.charge(0); err != nil {
		return nil, err
	}
	return l.inner.ListBuckets()
}

// Delete implements Client.
func (l *Linked) Delete(bucket, key string) error {
	if err := l.charge(0); err != nil {
		return err
	}
	return l.inner.Delete(bucket, key)
}
