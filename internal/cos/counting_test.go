package cos

import (
	"fmt"
	"testing"
)

func TestCountingCountsRequestsAndListedObjects(t *testing.T) {
	store := NewStore()
	c := NewCounting(store)
	if err := c.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Put("b", fmt.Sprintf("k/%05d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.Get("b", "k/00000"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Head("b", "k/00001"); err != nil {
		t.Fatal(err)
	}
	listed, err := ListAll(c, "b", "k/")
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 5 {
		t.Fatalf("listed %d objects, want 5", len(listed))
	}
	got := c.Counts()
	want := OpCounts{PutOps: 5, GetOps: 1, HeadOps: 1, ListOps: 1, BucketOps: 1, ObjectsListed: 5,
		BytesOut: 5, BytesIn: 1}
	if got != want {
		t.Fatalf("counts = %+v, want %+v", got, want)
	}
}

func TestListFromResumesAfterMarker(t *testing.T) {
	store := NewStore()
	if err := store.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := store.Put("b", fmt.Sprintf("k/%05d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCounting(store)
	out, err := ListFrom(c, "b", "k/", "k/00006")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d keys after marker, want 3", len(out))
	}
	if out[0].Key != "k/00007" || out[2].Key != "k/00009" {
		t.Fatalf("unexpected range: %s .. %s", out[0].Key, out[len(out)-1].Key)
	}
	if n := c.Counts().ObjectsListed; n != 3 {
		t.Fatalf("objects listed = %d, want 3", n)
	}
}

// TestListFromMarkerAtFrontier pins the sweep coordinator's contract: a
// marker equal to an existing key — the done-frontier — yields exactly the
// keys strictly after it, even when the marker sits on a page boundary.
func TestListFromMarkerAtFrontier(t *testing.T) {
	store := NewStore()
	if err := store.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	n := DefaultMaxKeys + 3
	key := func(i int) string { return fmt.Sprintf("k/%06d", i) }
	for i := 0; i < n; i++ {
		if _, err := store.Put("b", key(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Marker exactly on the last key of the first full page.
	out, err := ListFrom(store, "b", "k/", key(DefaultMaxKeys-1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d keys after page-boundary marker, want 3", len(out))
	}
	if out[0].Key != key(DefaultMaxKeys) || out[2].Key != key(n-1) {
		t.Fatalf("unexpected range: %s .. %s", out[0].Key, out[len(out)-1].Key)
	}
	// Marker exactly on the last key of the whole prefix: nothing after it.
	out, err = ListFrom(store, "b", "k/", key(n-1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("got %d keys after final-key marker, want 0", len(out))
	}
}

// TestListFromMarkerPastLastKey: a marker sorting beyond every key in the
// prefix (a frontier that outran storage, e.g. after a Clean) is an empty
// listing, not an error.
func TestListFromMarkerPastLastKey(t *testing.T) {
	store := NewStore()
	if err := store.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := store.Put("b", fmt.Sprintf("k/%06d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	out, err := ListFrom(store, "b", "k/", "k/zzzzzz")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("got %d keys after past-the-end marker, want 0", len(out))
	}
}

func TestListFromPaginates(t *testing.T) {
	store := NewStore()
	if err := store.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	// More keys than one default page so ListFrom must follow NextMarker.
	n := DefaultMaxKeys + 7
	for i := 0; i < n; i++ {
		if _, err := store.Put("b", fmt.Sprintf("k/%06d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	out, err := ListFrom(store, "b", "k/", fmt.Sprintf("k/%06d", 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n-3 {
		t.Fatalf("got %d keys, want %d", len(out), n-3)
	}
}
