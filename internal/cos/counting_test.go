package cos

import (
	"fmt"
	"testing"
)

func TestCountingCountsRequestsAndListedObjects(t *testing.T) {
	store := NewStore()
	c := NewCounting(store)
	if err := c.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Put("b", fmt.Sprintf("k/%05d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.Get("b", "k/00000"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Head("b", "k/00001"); err != nil {
		t.Fatal(err)
	}
	listed, err := ListAll(c, "b", "k/")
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 5 {
		t.Fatalf("listed %d objects, want 5", len(listed))
	}
	got := c.Counts()
	want := OpCounts{PutOps: 5, GetOps: 1, HeadOps: 1, ListOps: 1, BucketOps: 1, ObjectsListed: 5}
	if got != want {
		t.Fatalf("counts = %+v, want %+v", got, want)
	}
}

func TestListFromResumesAfterMarker(t *testing.T) {
	store := NewStore()
	if err := store.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := store.Put("b", fmt.Sprintf("k/%05d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCounting(store)
	out, err := ListFrom(c, "b", "k/", "k/00006")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d keys after marker, want 3", len(out))
	}
	if out[0].Key != "k/00007" || out[2].Key != "k/00009" {
		t.Fatalf("unexpected range: %s .. %s", out[0].Key, out[len(out)-1].Key)
	}
	if n := c.Counts().ObjectsListed; n != 3 {
		t.Fatalf("objects listed = %d, want 3", n)
	}
}

func TestListFromPaginates(t *testing.T) {
	store := NewStore()
	if err := store.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	// More keys than one default page so ListFrom must follow NextMarker.
	n := DefaultMaxKeys + 7
	for i := 0; i < n; i++ {
		if _, err := store.Put("b", fmt.Sprintf("k/%06d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	out, err := ListFrom(store, "b", "k/", fmt.Sprintf("k/%06d", 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n-3 {
		t.Fatalf("got %d keys, want %d", len(out), n-3)
	}
}
