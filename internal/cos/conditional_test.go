package cos

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"gowren/internal/vclock"
)

func TestStorePutIfCreateAndUpdate(t *testing.T) {
	s := NewStore()
	if err := s.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	// Empty ifMatch means "must not exist": the first create wins, the
	// second loses with ErrPreconditionFailed and changes nothing.
	m1, err := s.PutIf("b", "k", []byte("v1"), "")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if m1.ETag != contentETag([]byte("v1")) {
		t.Fatalf("create etag = %q, want content etag", m1.ETag)
	}
	if _, err := s.PutIf("b", "k", []byte("loser"), ""); !errors.Is(err, ErrPreconditionFailed) {
		t.Fatalf("second create err = %v, want ErrPreconditionFailed", err)
	}
	if got, _, _ := s.Get("b", "k"); !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("losing create mutated the object: %q", got)
	}
	// A matching ETag swaps; the stale ETag from before the swap is then
	// rejected.
	m2, err := s.PutIf("b", "k", []byte("v2"), m1.ETag)
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if _, err := s.PutIf("b", "k", []byte("v3"), m1.ETag); !errors.Is(err, ErrPreconditionFailed) {
		t.Fatalf("stale update err = %v, want ErrPreconditionFailed", err)
	}
	if got, lm, _ := s.Get("b", "k"); !bytes.Equal(got, []byte("v2")) || lm.ETag != m2.ETag {
		t.Fatalf("after stale update: %q (etag %q), want v2 (etag %q)", got, lm.ETag, m2.ETag)
	}
}

func TestPutIfUnsupportedClient(t *testing.T) {
	// A struct embedding the Client interface promotes only Client's
	// methods, so the dispatcher must see it as non-conditional even though
	// the wrapped store supports PutIf.
	s := NewStore()
	if err := s.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	plain := struct{ Client }{s}
	_, err := PutIf(plain, "b", "k", []byte("v"), "")
	if !errors.Is(err, ErrConditionalUnsupported) {
		t.Fatalf("err = %v, want ErrConditionalUnsupported", err)
	}
}

func TestCountingPutIfCounts(t *testing.T) {
	s := NewStore()
	if err := s.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	c := NewCounting(s)
	if _, err := c.PutIf("b", "k", []byte("abc"), ""); err != nil {
		t.Fatal(err)
	}
	got := c.Counts()
	if got.PutOps != 1 || got.BytesOut != 3 {
		t.Fatalf("counts = %+v, want 1 put op, 3 bytes out", got)
	}
}

// flakyConditional fails the first failuresLeft PutIf calls with a transient
// error, then forwards to the store.
type flakyConditional struct {
	*flaky
	store *Store
}

func (f *flakyConditional) PutIf(bucket, key string, data []byte, ifMatch string) (ObjectMeta, error) {
	f.calls.Add(1)
	if f.failuresLeft.Add(-1) >= 0 {
		return ObjectMeta{}, ErrRequestFailed
	}
	return f.store.PutIf(bucket, key, data, ifMatch)
}

func TestRetryingPutIfRetriesTransientOnly(t *testing.T) {
	clk := vclock.NewVirtual()
	store := NewStore()
	if err := store.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	fc := &flakyConditional{flaky: &flaky{Client: store}, store: store}
	fc.failuresLeft.Store(2)
	r := NewRetrying(fc, clk, 4, 50*time.Millisecond)
	clk.Run(func() {
		if _, err := r.PutIf("b", "k", []byte("v"), ""); err != nil {
			t.Errorf("put-if after retries: %v", err)
		}
	})
	if got := fc.calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (two transient failures, then success)", got)
	}
	// ErrPreconditionFailed classifies as fatal: exactly one attempt, error
	// surfaced unchanged.
	fc.calls.Store(0)
	clk.Run(func() {
		if _, err := r.PutIf("b", "k", []byte("v2"), "bogus"); !errors.Is(err, ErrPreconditionFailed) {
			t.Errorf("err = %v, want ErrPreconditionFailed", err)
		}
	})
	if got := fc.calls.Load(); got != 1 {
		t.Fatalf("precondition failure retried: %d attempts, want 1", got)
	}
}

func TestMultiRegionPutIfFansOutAndFences(t *testing.T) {
	m, _, _, sa, sb := twoRegions(t)
	if err := m.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	va, err := m.View("us-south", "us-south")
	if err != nil {
		t.Fatal(err)
	}
	vb, err := m.View("eu-gb", "eu-gb")
	if err != nil {
		t.Fatal(err)
	}
	// Create through one view: sync mode lands the bytes in both regions.
	m1, err := PutIf(va, "b", "lease", []byte("epoch1"), "")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for name, s := range map[string]*Store{"us-south": sa, "eu-gb": sb} {
		if got, _, err := s.Get("b", "lease"); err != nil || !bytes.Equal(got, []byte("epoch1")) {
			t.Fatalf("%s replica: %q, %v", name, got, err)
		}
	}
	// The losing creator — through the other view — is fenced.
	if _, err := PutIf(vb, "b", "lease", []byte("rival"), ""); !errors.Is(err, ErrPreconditionFailed) {
		t.Fatalf("rival create err = %v, want ErrPreconditionFailed", err)
	}
	// A takeover through the other view invalidates the first view's ETag:
	// exactly the cross-driver fencing sequence the executor lease runs.
	if _, err := PutIf(vb, "b", "lease", []byte("epoch2"), m1.ETag); err != nil {
		t.Fatalf("takeover: %v", err)
	}
	if _, err := PutIf(va, "b", "lease", []byte("epoch1-renew"), m1.ETag); !errors.Is(err, ErrPreconditionFailed) {
		t.Fatalf("stale renewal err = %v, want ErrPreconditionFailed", err)
	}
	if got, _, err := m.Get("b", "lease"); err != nil || !bytes.Equal(got, []byte("epoch2")) {
		t.Fatalf("after fencing: %q, %v", got, err)
	}
}

func TestMultiRegionPutIfRollsBackOnTotalFailure(t *testing.T) {
	m, ra, rb, _, _ := twoRegions(t)
	if err := m.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	m1, err := m.PutIf("b", "lease", []byte("v1"), "")
	if err != nil {
		t.Fatal(err)
	}
	// Every region down: the claim must roll back so the failed swap does
	// not burn the version — the caller's ETag stays valid for a retry.
	ra.down, rb.down = true, true
	if _, err := m.PutIf("b", "lease", []byte("v2"), m1.ETag); err == nil {
		t.Fatal("put-if with all regions down succeeded")
	}
	ra.down, rb.down = false, false
	if got, _, err := m.Get("b", "lease"); err != nil || !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("failed swap left state: %q, %v", got, err)
	}
	if _, err := m.PutIf("b", "lease", []byte("v2"), m1.ETag); err != nil {
		t.Fatalf("retry with the same etag after rollback: %v", err)
	}
}
