// Package cos implements the object-storage substrate of GoWren: an IBM
// Cloud Object Storage (COS) stand-in with buckets, keys, range reads, HEAD
// and paginated LIST — the exact surface IBM-PyWren uses for staging job
// payloads, discovering datasets, partitioning objects and collecting
// results. An in-memory engine (Store) and an HTTP server/client pair
// (Serve/HTTPClient) implement the same Client interface, so the executor
// is oblivious to whether the store is in-process or across a socket.
//
// Objects can be backed by real bytes or by a deterministic content
// generator. Generated objects let the experiment harnesses work with the
// paper's full 1.9 GB dataset without materializing it: range reads
// synthesize exactly the bytes requested.
package cos

import (
	"errors"
	"fmt"
	"time"
)

// Errors reported by Client implementations. HTTP transports map status
// codes back onto these values so errors.Is works across the wire.
var (
	ErrNoSuchBucket   = errors.New("cos: no such bucket")
	ErrNoSuchKey      = errors.New("cos: no such key")
	ErrBucketExists   = errors.New("cos: bucket already exists")
	ErrBucketNotEmpty = errors.New("cos: bucket not empty")
	ErrInvalidRange   = errors.New("cos: invalid range")
	ErrRequestFailed  = errors.New("cos: simulated request failure")
)

// ObjectMeta describes a stored object.
type ObjectMeta struct {
	Key          string            `json:"key"`
	Size         int64             `json:"size"`
	ETag         string            `json:"etag"`
	LastModified time.Time         `json:"lastModified"`
	UserMeta     map[string]string `json:"userMeta,omitempty"`
}

// ListResult is one page of a bucket listing, ordered lexicographically by
// key as object stores do.
type ListResult struct {
	Objects     []ObjectMeta `json:"objects"`
	IsTruncated bool         `json:"isTruncated"`
	NextMarker  string       `json:"nextMarker,omitempty"`
}

// DefaultMaxKeys is the page size used when List is called with maxKeys <= 0,
// matching the common object-store default.
const DefaultMaxKeys = 1000

// Client is the object-storage API used throughout GoWren.
type Client interface {
	// CreateBucket creates bucket; ErrBucketExists if it already does.
	CreateBucket(bucket string) error
	// DeleteBucket removes an empty bucket.
	DeleteBucket(bucket string) error
	// BucketExists reports whether bucket exists.
	BucketExists(bucket string) (bool, error)
	// Put stores data under bucket/key, overwriting any previous object.
	Put(bucket, key string, data []byte) (ObjectMeta, error)
	// Get returns the full object body.
	Get(bucket, key string) ([]byte, ObjectMeta, error)
	// GetRange returns length bytes starting at offset; length < 0 means
	// to the end of the object. Reads beyond the end are clamped;
	// offsets at or past the end return ErrInvalidRange.
	GetRange(bucket, key string, offset, length int64) ([]byte, ObjectMeta, error)
	// Head returns object metadata without the body.
	Head(bucket, key string) (ObjectMeta, error)
	// List returns keys under prefix, starting strictly after marker,
	// at most maxKeys per page (DefaultMaxKeys if maxKeys <= 0).
	List(bucket, prefix, marker string, maxKeys int) (ListResult, error)
	// ListBuckets returns all bucket names, sorted.
	ListBuckets() ([]string, error)
	// Delete removes an object; deleting a missing key is not an error,
	// as in S3/COS.
	Delete(bucket, key string) error
}

// Generator deterministically produces the content of a synthetic object
// for any byte range. Implementations must be safe for concurrent use and
// must return exactly p's length of bytes for in-range reads.
type Generator interface {
	// FillAt fills p with the object's content starting at offset off.
	FillAt(off int64, p []byte)
}

// GeneratorFunc adapts a function to the Generator interface.
type GeneratorFunc func(off int64, p []byte)

// FillAt implements Generator.
func (f GeneratorFunc) FillAt(off int64, p []byte) { f(off, p) }

// ListAll drains every page of a listing. It is a convenience for data
// discovery over buckets with more keys than one page.
func ListAll(c Client, bucket, prefix string) ([]ObjectMeta, error) {
	return ListFrom(c, bucket, prefix, "")
}

// ListFrom drains every page of a listing starting strictly after
// startAfter (the marker semantics of List). It is the primitive behind
// incremental sweeps: a poller that remembers the last key of a contiguous
// already-seen range can resume the listing there instead of re-walking
// the whole prefix, paying O(new keys) per call instead of O(all keys).
func ListFrom(c Client, bucket, prefix, startAfter string) ([]ObjectMeta, error) {
	var out []ObjectMeta
	marker := startAfter
	for {
		page, err := c.List(bucket, prefix, marker, 0)
		if err != nil {
			return nil, fmt.Errorf("list %s/%s after %q: %w", bucket, prefix, startAfter, err)
		}
		out = append(out, page.Objects...)
		if !page.IsTruncated {
			return out, nil
		}
		marker = page.NextMarker
	}
}
