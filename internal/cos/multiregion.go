package cos

import (
	"errors"
	"fmt"
	"maps"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
)

// Multi-region object storage. The paper's executor treats COS as a single
// always-available endpoint; real deployments replicate the data-exchange
// plane across independent failure domains so a regional brownout or
// partition degrades into transient errors instead of lost data. MultiRegion
// is that replication layer: a Client facade over N independent region
// stacks (each typically a Store behind its own netsim link and chaos plan).
//
// Semantics:
//
//   - writes replicate synchronously to every region and succeed once at
//     least one region accepts them; regions that missed a write are marked
//     stale for that key;
//   - reads try the preferred region first and fail over, in region order,
//     to any region holding the latest version; a read never serves a stale
//     replica;
//   - full-object reads repair stale replicas in passing (read-repair),
//     re-writing the latest bytes through the stale region's own stack so
//     a still-partitioned region simply stays stale;
//   - listings merge the reachable regions, so statuses committed to a
//     healthy region during another region's outage are always visible;
//   - when every region fails an operation, the facade reports
//     ErrRequestFailed — a transient error that routes into the existing
//     retry/recovery machinery, never silent data loss.
//
// Version bookkeeping lives in the facade (the replication control plane);
// object bytes live only in the region stores. Keys written around the
// facade (e.g. datasets seeded directly into one region's Store) have no
// version record and are served from the first region that has them.
type MultiRegion struct {
	regions  []RegionBackend
	failover bool

	mu       sync.Mutex
	latest   map[string]objVersion // object key → latest committed version
	replicas []map[string]uint64   // per-region committed version
	buckets  map[string]bool       // buckets created through the facade

	stats MultiRegionStats
}

var _ Client = (*MultiRegion)(nil)

// RegionBackend couples a region name with its client stack — typically
// chaos.WrapStorage(NewLinked(store, clk, regionLink), regionPlan), so the
// region has its own network path and its own fault plan.
type RegionBackend struct {
	Name   string
	Client Client
}

type objVersion struct {
	v       uint64
	deleted bool
}

// MultiRegionStats counts cross-region events. Counters are cumulative and
// safe to read concurrently.
type MultiRegionStats struct {
	// Failovers counts reads served by a non-preferred region because the
	// preferred one was unreachable or stale.
	Failovers atomic.Int64
	// Repairs counts stale replicas brought current by read-repair.
	Repairs atomic.Int64
	// WriteMisses counts per-region write failures that left a replica
	// stale (the write still succeeded elsewhere).
	WriteMisses atomic.Int64
}

// MultiRegionSnapshot is a point-in-time copy of the facade counters.
type MultiRegionSnapshot struct {
	Failovers, Repairs, WriteMisses int64
}

// MultiRegionOption configures a MultiRegion.
type MultiRegionOption func(*MultiRegion)

// WithoutFailover pins every operation to the preferred region alone: no
// replica writes, no failover reads, no read-repair. It exists to
// demonstrate (in tests and experiments) what a regional outage costs
// without the resilience layer.
func WithoutFailover() MultiRegionOption {
	return func(m *MultiRegion) { m.failover = false }
}

// NewMultiRegion builds a facade over the given regions. Region order is
// the default failover order; region 0 is the default preferred region.
// At least one region is required; names must be unique and non-empty.
func NewMultiRegion(regions []RegionBackend, opts ...MultiRegionOption) (*MultiRegion, error) {
	if len(regions) == 0 {
		return nil, errors.New("cos: multi-region facade requires at least one region")
	}
	seen := make(map[string]bool, len(regions))
	for _, r := range regions {
		if r.Name == "" || r.Client == nil {
			return nil, errors.New("cos: region requires a name and a client")
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("cos: duplicate region name %q", r.Name)
		}
		seen[r.Name] = true
	}
	m := &MultiRegion{
		regions:  append([]RegionBackend(nil), regions...),
		failover: true,
		latest:   make(map[string]objVersion),
		replicas: make([]map[string]uint64, len(regions)),
		buckets:  make(map[string]bool),
	}
	for i := range m.replicas {
		m.replicas[i] = make(map[string]uint64)
	}
	for _, opt := range opts {
		opt(m)
	}
	return m, nil
}

// RegionNames returns the region names in failover order.
func (m *MultiRegion) RegionNames() []string {
	names := make([]string, len(m.regions))
	for i, r := range m.regions {
		names[i] = r.Name
	}
	return names
}

// Stats returns a snapshot of the cross-region counters.
func (m *MultiRegion) Stats() MultiRegionSnapshot {
	return MultiRegionSnapshot{
		Failovers:   m.stats.Failovers.Load(),
		Repairs:     m.stats.Repairs.Load(),
		WriteMisses: m.stats.WriteMisses.Load(),
	}
}

// Preferred returns a Client view of the facade whose reads start at the
// named region. All views share one version map, so failover and
// read-repair behave identically regardless of entry point.
func (m *MultiRegion) Preferred(name string) (Client, error) {
	for i, r := range m.regions {
		if r.Name == name {
			return &regionView{m: m, pref: i}, nil
		}
	}
	return nil, fmt.Errorf("cos: unknown region %q", name)
}

func objKey(bucket, key string) string { return bucket + "\x00" + key }

// order returns region indices to try: pref first, then the rest in region
// order. Without failover only pref is returned.
func (m *MultiRegion) order(pref int) []int {
	if !m.failover {
		return []int{pref}
	}
	out := make([]int, 0, len(m.regions))
	out = append(out, pref)
	for i := range m.regions {
		if i != pref {
			out = append(out, i)
		}
	}
	return out
}

// transient reports whether err should trigger failover to another region.
func transientRegionErr(err error) bool {
	return errors.Is(err, ErrRequestFailed)
}

// --- writes ---------------------------------------------------------------

// put replicates one write. pref orders the attempts so the preferred
// region's endpoint is tried first.
func (m *MultiRegion) put(pref int, bucket, key string, data []byte) (ObjectMeta, error) {
	k := objKey(bucket, key)
	m.mu.Lock()
	v := m.latest[k].v + 1
	m.mu.Unlock()

	var (
		meta         ObjectMeta
		gotMeta      bool
		lastErr      error
		sawTransient bool
		wrote        []int
	)
	for _, i := range m.order(pref) {
		got, err := m.regions[i].Client.Put(bucket, key, data)
		if err != nil {
			switch {
			case transientRegionErr(err):
				sawTransient = true
			case errors.Is(err, ErrNoSuchBucket):
				// This region missed the bucket creation (it was down when
				// the facade created it); the replica is simply stale and
				// read-repair recreates bucket and object later.
			default:
				return ObjectMeta{}, err
			}
			m.stats.WriteMisses.Add(1)
			lastErr = err
			continue
		}
		if !gotMeta {
			meta, gotMeta = got, true
		}
		wrote = append(wrote, i)
	}
	if !gotMeta {
		if !sawTransient && lastErr != nil {
			// Every region agrees the bucket does not exist: a real caller
			// error, not an outage.
			return ObjectMeta{}, fmt.Errorf("put %s/%s: %w", bucket, key, lastErr)
		}
		return ObjectMeta{}, fmt.Errorf("cos: put %s/%s failed in all %d regions: %w", bucket, key, len(m.regions), ErrRequestFailed)
	}
	m.mu.Lock()
	if v > m.latest[k].v || m.latest[k].deleted {
		m.latest[k] = objVersion{v: v}
	}
	for _, i := range wrote {
		if m.replicas[i][k] < v {
			m.replicas[i][k] = v
		}
	}
	m.mu.Unlock()
	return meta, nil
}

// delete_ tombstones one key across the regions. Regions that miss the
// delete keep stale bytes, which listings and reads filter out through the
// tombstone; the bytes themselves are reclaimed only if the region sees a
// later delete or overwrite.
func (m *MultiRegion) delete_(pref int, bucket, key string) error {
	k := objKey(bucket, key)
	m.mu.Lock()
	v := m.latest[k].v + 1
	m.mu.Unlock()

	var (
		okAny        bool
		lastErr      error
		sawTransient bool
		wrote        []int
	)
	for _, i := range m.order(pref) {
		if err := m.regions[i].Client.Delete(bucket, key); err != nil {
			switch {
			case transientRegionErr(err):
				sawTransient = true
			case errors.Is(err, ErrNoSuchKey) || errors.Is(err, ErrNoSuchBucket):
				// Nothing to delete in this region; the tombstone below
				// hides any stale copy it may grow back via repair races.
				okAny = true
				wrote = append(wrote, i)
				continue
			default:
				return err
			}
			m.stats.WriteMisses.Add(1)
			lastErr = err
			continue
		}
		okAny = true
		wrote = append(wrote, i)
	}
	if !okAny {
		if !sawTransient && lastErr != nil {
			return fmt.Errorf("delete %s/%s: %w", bucket, key, lastErr)
		}
		return fmt.Errorf("cos: delete %s/%s failed in all %d regions: %w", bucket, key, len(m.regions), ErrRequestFailed)
	}
	m.mu.Lock()
	if v > m.latest[k].v {
		m.latest[k] = objVersion{v: v, deleted: true}
	}
	for _, i := range wrote {
		if m.replicas[i][k] < v {
			m.replicas[i][k] = v
		}
	}
	m.mu.Unlock()
	return nil
}

// --- reads ----------------------------------------------------------------

// current reports whether region i holds the latest version of k. Untracked
// keys (written around the facade) are current everywhere.
func (m *MultiRegion) current(i int, k string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	lv, tracked := m.latest[k]
	if !tracked {
		return true
	}
	return m.replicas[i][k] == lv.v
}

// tombstoned reports whether k's latest version is a delete.
func (m *MultiRegion) tombstoned(k string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.latest[k].deleted
}

// getRange serves a ranged read with failover; full reads (offset 0,
// length < 0) repair stale replicas with the bytes just fetched.
func (m *MultiRegion) getRange(pref int, bucket, key string, offset, length int64) ([]byte, ObjectMeta, error) {
	k := objKey(bucket, key)
	if m.tombstoned(k) {
		return nil, ObjectMeta{}, fmt.Errorf("get %s/%s: %w", bucket, key, ErrNoSuchKey)
	}
	var (
		lastErr error
		sawMiss bool
	)
	for n, i := range m.order(pref) {
		if !m.current(i, k) {
			continue // stale replica; never serve it
		}
		data, meta, err := m.regions[i].Client.GetRange(bucket, key, offset, length)
		if err != nil {
			switch {
			case transientRegionErr(err):
				lastErr = err
				continue
			case errors.Is(err, ErrNoSuchKey) || errors.Is(err, ErrNoSuchBucket):
				// Another region may hold the object (seeded around the
				// facade, or this replica lost it); keep looking.
				sawMiss = true
				lastErr = err
				continue
			default:
				return nil, ObjectMeta{}, err
			}
		}
		if n > 0 {
			m.stats.Failovers.Add(1)
		}
		if offset == 0 && length < 0 {
			m.repair(k, bucket, key, data)
		}
		return data, meta, nil
	}
	if lastErr == nil {
		// Every region skipped as stale: the object exists but no current
		// replica is known — only possible for keys that were never
		// successfully written, so report it as transient.
		lastErr = ErrRequestFailed
	}
	if sawMiss && !transientRegionErr(lastErr) {
		return nil, ObjectMeta{}, fmt.Errorf("get %s/%s: %w", bucket, key, lastErr)
	}
	return nil, ObjectMeta{}, fmt.Errorf("cos: get %s/%s unreachable in all regions: %w", bucket, key, ErrRequestFailed)
}

// repair pushes the latest bytes of k to every stale region, through that
// region's own stack so its link and fault plan apply. Failures leave the
// replica stale; a later read retries.
func (m *MultiRegion) repair(k, bucket, key string, data []byte) {
	if !m.failover {
		return
	}
	m.mu.Lock()
	lv, tracked := m.latest[k]
	var stale []int
	if tracked && !lv.deleted {
		for i := range m.regions {
			if m.replicas[i][k] != lv.v {
				stale = append(stale, i)
			}
		}
	}
	m.mu.Unlock()
	for _, i := range stale {
		if _, err := m.regions[i].Client.Put(bucket, key, data); err != nil {
			if errors.Is(err, ErrNoSuchBucket) {
				// The region also missed the bucket creation; repair that
				// first, then retry the object once.
				if cerr := m.regions[i].Client.CreateBucket(bucket); cerr != nil && !errors.Is(cerr, ErrBucketExists) {
					continue
				}
				if _, err = m.regions[i].Client.Put(bucket, key, data); err != nil {
					continue
				}
			} else {
				continue
			}
		}
		m.mu.Lock()
		if cur := m.latest[k]; cur.v == lv.v && !cur.deleted && m.replicas[i][k] < lv.v {
			m.replicas[i][k] = lv.v
			m.stats.Repairs.Add(1)
		}
		m.mu.Unlock()
	}
}

// head serves metadata with failover, mirroring getRange without a body.
func (m *MultiRegion) head(pref int, bucket, key string) (ObjectMeta, error) {
	k := objKey(bucket, key)
	if m.tombstoned(k) {
		return ObjectMeta{}, fmt.Errorf("head %s/%s: %w", bucket, key, ErrNoSuchKey)
	}
	var lastErr error
	for n, i := range m.order(pref) {
		if !m.current(i, k) {
			continue
		}
		meta, err := m.regions[i].Client.Head(bucket, key)
		if err != nil {
			if transientRegionErr(err) || errors.Is(err, ErrNoSuchKey) || errors.Is(err, ErrNoSuchBucket) {
				lastErr = err
				continue
			}
			return ObjectMeta{}, err
		}
		if n > 0 {
			m.stats.Failovers.Add(1)
		}
		return meta, nil
	}
	if lastErr != nil && !transientRegionErr(lastErr) {
		return ObjectMeta{}, fmt.Errorf("head %s/%s: %w", bucket, key, lastErr)
	}
	return ObjectMeta{}, fmt.Errorf("cos: head %s/%s unreachable in all regions: %w", bucket, key, ErrRequestFailed)
}

// list merges the reachable regions' listings into one page, filtering
// tombstoned keys and preferring metadata from a region holding the latest
// version. Statuses committed to a healthy region during another region's
// outage are therefore always visible to pollers.
func (m *MultiRegion) list(pref int, bucket, prefix, marker string, maxKeys int) (ListResult, error) {
	if maxKeys <= 0 {
		maxKeys = DefaultMaxKeys
	}
	type entry struct {
		meta    ObjectMeta
		current bool
	}
	var (
		merged     = make(map[string]entry)
		reachable  bool
		sawBucket  bool
		truncated  bool
		lastErr    error
		fatalMiss  error
		regionList []int
	)
	regionList = m.order(pref)
	for _, i := range regionList {
		page, err := m.regions[i].Client.List(bucket, prefix, marker, maxKeys)
		if err != nil {
			switch {
			case transientRegionErr(err):
				lastErr = err
				continue
			case errors.Is(err, ErrNoSuchBucket):
				// The region may simply have missed the bucket creation.
				reachable = true
				fatalMiss = err
				continue
			default:
				return ListResult{}, err
			}
		}
		reachable, sawBucket = true, true
		if page.IsTruncated {
			truncated = true
		}
		for _, om := range page.Objects {
			k := objKey(bucket, om.Key)
			if m.tombstoned(k) {
				continue
			}
			cur := m.current(i, k)
			if prev, ok := merged[k]; ok && (prev.current || !cur) {
				continue
			}
			merged[k] = entry{meta: om, current: cur}
		}
	}
	if !reachable {
		return ListResult{}, fmt.Errorf("cos: list %s unreachable in all regions: %w", bucket, ErrRequestFailed)
	}
	if !sawBucket {
		return ListResult{}, fmt.Errorf("list %s: %w", bucket, fatalMiss)
	}
	_ = lastErr
	// objKeys of one bucket share the bucket prefix, so sorting them orders
	// the result by object key — and keeps the merged listing independent
	// of map iteration order.
	var res ListResult
	for i, k := range slices.Sorted(maps.Keys(merged)) {
		if i == maxKeys {
			truncated = true
			break
		}
		res.Objects = append(res.Objects, merged[k].meta)
	}
	if truncated && len(res.Objects) > 0 {
		res.IsTruncated = true
		res.NextMarker = res.Objects[len(res.Objects)-1].Key
	}
	return res, nil
}

// --- buckets --------------------------------------------------------------

func (m *MultiRegion) createBucket(pref int, name string) error {
	var (
		okAny, existed bool
		lastErr        error
	)
	for _, i := range m.order(pref) {
		err := m.regions[i].Client.CreateBucket(name)
		switch {
		case err == nil:
			okAny = true
		case errors.Is(err, ErrBucketExists):
			existed = true
		case transientRegionErr(err):
			lastErr = err
		default:
			return err
		}
	}
	if !okAny && !existed {
		return fmt.Errorf("cos: create bucket %q failed in all regions: %w", name, lastErr)
	}
	m.mu.Lock()
	m.buckets[name] = true
	m.mu.Unlock()
	if !okAny && existed {
		return fmt.Errorf("create bucket %q: %w", name, ErrBucketExists)
	}
	return nil
}

func (m *MultiRegion) deleteBucket(pref int, name string) error {
	var (
		okAny   bool
		lastErr error
	)
	for _, i := range m.order(pref) {
		err := m.regions[i].Client.DeleteBucket(name)
		switch {
		case err == nil:
			okAny = true
		case transientRegionErr(err):
			lastErr = err
		case errors.Is(err, ErrNoSuchBucket):
			// already absent in this region
		default:
			return err
		}
	}
	if !okAny {
		return fmt.Errorf("cos: delete bucket %q failed in all regions: %w", name, lastErr)
	}
	m.mu.Lock()
	delete(m.buckets, name)
	m.mu.Unlock()
	return nil
}

func (m *MultiRegion) bucketExists(pref int) func(name string) (bool, error) {
	return func(name string) (bool, error) {
		var lastErr error
		for _, i := range m.order(pref) {
			ok, err := m.regions[i].Client.BucketExists(name)
			if err != nil {
				if transientRegionErr(err) {
					lastErr = err
					continue
				}
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		if lastErr != nil {
			return false, fmt.Errorf("cos: bucket-exists %q unreachable: %w", name, ErrRequestFailed)
		}
		return false, nil
	}
}

func (m *MultiRegion) listBuckets(pref int) ([]string, error) {
	var (
		union     = make(map[string]bool)
		reachable bool
	)
	for _, i := range m.order(pref) {
		names, err := m.regions[i].Client.ListBuckets()
		if err != nil {
			if transientRegionErr(err) {
				continue
			}
			return nil, err
		}
		reachable = true
		for _, n := range names {
			union[n] = true
		}
	}
	if !reachable {
		return nil, fmt.Errorf("cos: list buckets unreachable in all regions: %w", ErrRequestFailed)
	}
	out := make([]string, 0, len(union))
	for n := range union {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// --- Client implementation (preferred region 0) ---------------------------

// CreateBucket implements Client.
func (m *MultiRegion) CreateBucket(bucket string) error { return m.createBucket(0, bucket) }

// DeleteBucket implements Client.
func (m *MultiRegion) DeleteBucket(bucket string) error { return m.deleteBucket(0, bucket) }

// BucketExists implements Client.
func (m *MultiRegion) BucketExists(bucket string) (bool, error) {
	return m.bucketExists(0)(bucket)
}

// Put implements Client.
func (m *MultiRegion) Put(bucket, key string, data []byte) (ObjectMeta, error) {
	return m.put(0, bucket, key, data)
}

// Get implements Client.
func (m *MultiRegion) Get(bucket, key string) ([]byte, ObjectMeta, error) {
	return m.getRange(0, bucket, key, 0, -1)
}

// GetRange implements Client.
func (m *MultiRegion) GetRange(bucket, key string, offset, length int64) ([]byte, ObjectMeta, error) {
	return m.getRange(0, bucket, key, offset, length)
}

// Head implements Client.
func (m *MultiRegion) Head(bucket, key string) (ObjectMeta, error) {
	return m.head(0, bucket, key)
}

// List implements Client.
func (m *MultiRegion) List(bucket, prefix, marker string, maxKeys int) (ListResult, error) {
	return m.list(0, bucket, prefix, marker, maxKeys)
}

// ListBuckets implements Client.
func (m *MultiRegion) ListBuckets() ([]string, error) { return m.listBuckets(0) }

// Delete implements Client.
func (m *MultiRegion) Delete(bucket, key string) error { return m.delete_(0, bucket, key) }

// regionView is a Client whose reads prefer a specific region.
type regionView struct {
	m    *MultiRegion
	pref int
}

var _ Client = (*regionView)(nil)

// CreateBucket implements Client.
func (v *regionView) CreateBucket(bucket string) error { return v.m.createBucket(v.pref, bucket) }

// DeleteBucket implements Client.
func (v *regionView) DeleteBucket(bucket string) error { return v.m.deleteBucket(v.pref, bucket) }

// BucketExists implements Client.
func (v *regionView) BucketExists(bucket string) (bool, error) {
	return v.m.bucketExists(v.pref)(bucket)
}

// Put implements Client.
func (v *regionView) Put(bucket, key string, data []byte) (ObjectMeta, error) {
	return v.m.put(v.pref, bucket, key, data)
}

// Get implements Client.
func (v *regionView) Get(bucket, key string) ([]byte, ObjectMeta, error) {
	return v.m.getRange(v.pref, bucket, key, 0, -1)
}

// GetRange implements Client.
func (v *regionView) GetRange(bucket, key string, offset, length int64) ([]byte, ObjectMeta, error) {
	return v.m.getRange(v.pref, bucket, key, offset, length)
}

// Head implements Client.
func (v *regionView) Head(bucket, key string) (ObjectMeta, error) {
	return v.m.head(v.pref, bucket, key)
}

// List implements Client.
func (v *regionView) List(bucket, prefix, marker string, maxKeys int) (ListResult, error) {
	return v.m.list(v.pref, bucket, prefix, marker, maxKeys)
}

// ListBuckets implements Client.
func (v *regionView) ListBuckets() ([]string, error) { return v.m.listBuckets(v.pref) }

// Delete implements Client.
func (v *regionView) Delete(bucket, key string) error { return v.m.delete_(v.pref, bucket, key) }
