package cos

import (
	"errors"
	"fmt"
	"maps"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gowren/internal/vclock"
)

// Multi-region object storage. The paper's executor treats COS as a single
// always-available endpoint; real deployments replicate the data-exchange
// plane across independent failure domains so a regional brownout or
// partition degrades into transient errors instead of lost data. MultiRegion
// is that replication layer: a Client facade over N independent region
// stacks (each typically a Store behind its own netsim link and chaos plan).
//
// Semantics:
//
//   - in the default ReplicationSync mode, writes replicate synchronously to
//     every region and succeed once at least one region accepts them;
//     regions that missed a write are marked stale for that key;
//   - in ReplicationAsync mode, a write acks as soon as one region (the
//     preferred one when reachable) durably accepts it; the remaining
//     regions catch up off the critical path through a bounded in-facade
//     replication queue drained by per-region workers on the virtual clock
//     (see putAsync); deletes always replicate synchronously;
//   - reads try the preferred region first and fail over, in region order,
//     to any region holding the latest version; a read never serves a stale
//     replica;
//   - full-object reads repair stale replicas in passing (read-repair),
//     re-writing the latest bytes through the stale region's own stack so
//     a still-partitioned region simply stays stale;
//   - listings merge the reachable regions, so statuses committed to a
//     healthy region during another region's outage are always visible;
//   - when every region fails an operation, the facade reports
//     ErrRequestFailed — a transient error that routes into the existing
//     retry/recovery machinery, never silent data loss.
//
// Version bookkeeping lives in the facade (the replication control plane);
// object bytes live only in the region stores. Keys written around the
// facade (e.g. datasets seeded directly into one region's Store) have no
// version record and are served from the first region that has them.
type MultiRegion struct {
	regions   []RegionBackend
	failover  bool
	mode      ReplicationMode
	clk       vclock.Clock // required in async mode (catch-up workers)
	qlimit    int          // per-region replication queue bound
	redeliver int          // attempts per catch-up task before it is dropped
	root      regionView   // default view: preferred region 0, no home region

	mu       sync.Mutex
	latest   map[string]objVersion // object key → latest committed version
	replicas []map[string]uint64   // per-region committed version
	buckets  map[string]bool       // buckets created through the facade

	qmu          sync.Mutex
	queues       [][]repTask // per-region pending catch-up writes
	workers      []bool      // per-region: a drain worker task is running
	redelivering []int       // per-region: tasks waiting out a redelivery backoff

	stats MultiRegionStats
}

// ReplicationMode selects how MultiRegion propagates writes to non-preferred
// regions.
type ReplicationMode int

const (
	// ReplicationSync (the zero value) replicates every write to every
	// region before acking.
	ReplicationSync ReplicationMode = iota
	// ReplicationAsync acks once the primary region durably accepts the
	// write and catches the remaining regions up off the critical path.
	ReplicationAsync
)

// String implements fmt.Stringer.
func (r ReplicationMode) String() string {
	if r == ReplicationAsync {
		return "async"
	}
	return "sync"
}

// repTask is one queued catch-up write: propagate version v of bucket/key to
// a specific region. The task owns a reference to the committed bytes so
// catch-up succeeds even if the primary region is lost before it drains.
type repTask struct {
	bucket, key string
	k           string // objKey(bucket, key)
	v           uint64
	data        []byte
	attempts    int // delivery attempts already spent (see redeliverOrDrop)
}

// DefaultReplicationQueueLimit bounds each region's catch-up queue when
// WithAsyncReplication is given a non-positive limit. A full queue
// backpressures writers (they block on the virtual clock until the region's
// worker drains a slot), so the facade can never buffer unbounded bytes.
const DefaultReplicationQueueLimit = 1024

// DefaultReplicationRedeliveryBudget is the delivery attempts each catch-up
// task gets before its replica is declared stale (dropped to read-repair).
// A budget of 1 restores the old single-attempt behaviour.
const DefaultReplicationRedeliveryBudget = 3

// replicationRedeliveryBackoff is the delay before a failed catch-up task's
// first redelivery; it doubles per attempt.
const replicationRedeliveryBackoff = 50 * time.Millisecond

var _ Client = (*MultiRegion)(nil)

// RegionBackend couples a region name with its client stack — typically
// chaos.WrapStorage(NewLinked(store, clk, regionLink), regionPlan), so the
// region has its own network path and its own fault plan.
type RegionBackend struct {
	Name   string
	Client Client
}

type objVersion struct {
	v       uint64
	deleted bool
	// etag is the content ETag of the latest committed version, maintained
	// so conditional puts (PutIf) can compare against the facade's own
	// control plane instead of racing the region stores.
	etag string
}

// MultiRegionStats counts cross-region events. Counters are cumulative and
// safe to read concurrently.
type MultiRegionStats struct {
	// Failovers counts reads served by a non-preferred region because the
	// preferred one was unreachable or stale.
	Failovers atomic.Int64
	// Repairs counts stale replicas brought current by read-repair.
	Repairs atomic.Int64
	// WriteMisses counts per-region write failures that left a replica
	// stale (the write still succeeded elsewhere).
	WriteMisses atomic.Int64
	// CrossRegionReads counts GET/GetRange/Head requests issued through a
	// region view that were served by a region other than the view's home
	// region. CrossRegionReadBytes sums the body bytes of those reads.
	// Merged listings are excluded: a LIST consults every region by design.
	CrossRegionReads     atomic.Int64
	CrossRegionReadBytes atomic.Int64
	// CrossRegionWrites counts per-region object writes that landed in a
	// region other than the issuing view's home region (replica fan-out in
	// sync mode, primary failover in async mode). CrossRegionWriteBytes
	// sums their payloads. Background catch-up and read-repair traffic is
	// not attributed to any home region and is excluded.
	CrossRegionWrites     atomic.Int64
	CrossRegionWriteBytes atomic.Int64
	// AsyncQueued counts catch-up writes enqueued by async-mode puts;
	// AsyncReplicated counts those that landed, AsyncDropped those that
	// exhausted their redelivery budget (the replica stays stale until
	// read-repair finds it), and AsyncSkipped those that were obsolete by
	// the time the worker reached them — superseded by a newer version or
	// already made current by read-repair. AsyncRedelivered counts failed
	// attempts that were re-enqueued with backoff instead of dropped; a
	// redelivered task is not re-counted as queued, so the ledger
	// Queued = Replicated + Dropped + Skipped still closes once drained.
	AsyncQueued      atomic.Int64
	AsyncReplicated  atomic.Int64
	AsyncDropped     atomic.Int64
	AsyncSkipped     atomic.Int64
	AsyncRedelivered atomic.Int64
	// AsyncBackpressure counts puts that had to wait for queue space.
	AsyncBackpressure atomic.Int64
}

// MultiRegionSnapshot is a point-in-time copy of the facade counters.
type MultiRegionSnapshot struct {
	Failovers, Repairs, WriteMisses                                                       int64
	CrossRegionReads, CrossRegionReadBytes                                                int64
	CrossRegionWrites, CrossRegionWriteBytes                                              int64
	AsyncQueued, AsyncReplicated, AsyncDropped, AsyncSkipped, AsyncBackpressure, AsyncLag int64
	AsyncRedelivered                                                                      int64
}

// MultiRegionOption configures a MultiRegion.
type MultiRegionOption func(*MultiRegion)

// WithoutFailover pins every operation to the preferred region alone: no
// replica writes, no failover reads, no read-repair. It exists to
// demonstrate (in tests and experiments) what a regional outage costs
// without the resilience layer.
func WithoutFailover() MultiRegionOption {
	return func(m *MultiRegion) { m.failover = false }
}

// WithAsyncReplication switches the facade to ReplicationAsync: puts ack
// after the primary region accepts them and per-region catch-up workers —
// scheduled on clk, so they obey the virtual-clock contract — propagate the
// committed bytes to the remaining regions off the critical path. Each
// region's queue holds at most queueLimit pending writes
// (DefaultReplicationQueueLimit if queueLimit <= 0); writers block on the
// clock while their target queue is full. Deletes and bucket operations
// still replicate synchronously.
func WithAsyncReplication(clk vclock.Clock, queueLimit int) MultiRegionOption {
	return func(m *MultiRegion) {
		if queueLimit <= 0 {
			queueLimit = DefaultReplicationQueueLimit
		}
		m.mode = ReplicationAsync
		m.clk = clk
		m.qlimit = queueLimit
	}
}

// WithReplicationRedelivery sets the delivery-attempt budget of each async
// catch-up task: a failed attempt is re-enqueued with exponential backoff
// until budget attempts have been spent, and only then is the replica
// declared stale (dropped to read-repair). A budget of 1 disables
// redelivery; non-positive selects DefaultReplicationRedeliveryBudget.
// It only matters under WithAsyncReplication.
func WithReplicationRedelivery(budget int) MultiRegionOption {
	return func(m *MultiRegion) { m.redeliver = budget }
}

// NewMultiRegion builds a facade over the given regions. Region order is
// the default failover order; region 0 is the default preferred region.
// At least one region is required; names must be unique and non-empty.
func NewMultiRegion(regions []RegionBackend, opts ...MultiRegionOption) (*MultiRegion, error) {
	if len(regions) == 0 {
		return nil, errors.New("cos: multi-region facade requires at least one region")
	}
	seen := make(map[string]bool, len(regions))
	for _, r := range regions {
		if r.Name == "" || r.Client == nil {
			return nil, errors.New("cos: region requires a name and a client")
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("cos: duplicate region name %q", r.Name)
		}
		seen[r.Name] = true
	}
	m := &MultiRegion{
		regions:  append([]RegionBackend(nil), regions...),
		failover: true,
		latest:   make(map[string]objVersion),
		replicas: make([]map[string]uint64, len(regions)),
		buckets:  make(map[string]bool),
	}
	for i := range m.replicas {
		m.replicas[i] = make(map[string]uint64)
	}
	for _, opt := range opts {
		opt(m)
	}
	if m.mode == ReplicationAsync {
		if m.clk == nil {
			return nil, errors.New("cos: async replication requires a clock")
		}
		if m.redeliver <= 0 {
			m.redeliver = DefaultReplicationRedeliveryBudget
		}
		m.queues = make([][]repTask, len(regions))
		m.workers = make([]bool, len(regions))
		m.redelivering = make([]int, len(regions))
	}
	m.root = regionView{m: m, pref: 0, home: -1}
	return m, nil
}

// Mode returns the facade's replication mode.
func (m *MultiRegion) Mode() ReplicationMode { return m.mode }

// FailoverEnabled reports whether the facade replicates and fails over at
// all (false under WithoutFailover).
func (m *MultiRegion) FailoverEnabled() bool { return m.failover }

// RegionNames returns the region names in failover order.
func (m *MultiRegion) RegionNames() []string {
	names := make([]string, len(m.regions))
	for i, r := range m.regions {
		names[i] = r.Name
	}
	return names
}

// Stats returns a snapshot of the cross-region counters. AsyncLag is the
// number of catch-up writes still queued at snapshot time.
func (m *MultiRegion) Stats() MultiRegionSnapshot {
	return MultiRegionSnapshot{
		Failovers:             m.stats.Failovers.Load(),
		Repairs:               m.stats.Repairs.Load(),
		WriteMisses:           m.stats.WriteMisses.Load(),
		CrossRegionReads:      m.stats.CrossRegionReads.Load(),
		CrossRegionReadBytes:  m.stats.CrossRegionReadBytes.Load(),
		CrossRegionWrites:     m.stats.CrossRegionWrites.Load(),
		CrossRegionWriteBytes: m.stats.CrossRegionWriteBytes.Load(),
		AsyncQueued:           m.stats.AsyncQueued.Load(),
		AsyncReplicated:       m.stats.AsyncReplicated.Load(),
		AsyncDropped:          m.stats.AsyncDropped.Load(),
		AsyncSkipped:          m.stats.AsyncSkipped.Load(),
		AsyncBackpressure:     m.stats.AsyncBackpressure.Load(),
		AsyncRedelivered:      m.stats.AsyncRedelivered.Load(),
		AsyncLag:              m.queueDepth(),
	}
}

// Preferred returns a Client view of the facade whose reads start at the
// named region and whose cross-region accounting treats that region as
// home. All views share one version map, so failover and read-repair behave
// identically regardless of entry point.
func (m *MultiRegion) Preferred(name string) (Client, error) {
	return m.View(name, name)
}

// View returns a Client view for a consumer located in region home whose
// reads start at region pref. Requests the facade ends up serving from (or
// writing to) a region other than home count toward the CrossRegion*
// counters. Splitting home from pref exists to measure legacy placement —
// a runner executing in one region but still reading through region 0.
func (m *MultiRegion) View(home, pref string) (Client, error) {
	hi, err := m.regionIndex(home)
	if err != nil {
		return nil, err
	}
	pi, err := m.regionIndex(pref)
	if err != nil {
		return nil, err
	}
	return &regionView{m: m, pref: pi, home: hi}, nil
}

func (m *MultiRegion) regionIndex(name string) (int, error) {
	for i, r := range m.regions {
		if r.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("cos: unknown region %q", name)
}

func objKey(bucket, key string) string { return bucket + "\x00" + key }

// order returns region indices to try: pref first, then the rest in region
// order. Without failover only pref is returned.
func (m *MultiRegion) order(pref int) []int {
	if !m.failover {
		return []int{pref}
	}
	out := make([]int, 0, len(m.regions))
	out = append(out, pref)
	for i := range m.regions {
		if i != pref {
			out = append(out, i)
		}
	}
	return out
}

// transient reports whether err should trigger failover to another region.
func transientRegionErr(err error) bool {
	return errors.Is(err, ErrRequestFailed)
}

// --- writes ---------------------------------------------------------------

// put replicates one write. pref orders the attempts so the preferred
// region's endpoint is tried first; home attributes cross-region traffic
// (-1 for client-side views outside any region). In async mode the write
// acks after the primary region and the rest catch up via the queue.
func (m *MultiRegion) put(home, pref int, bucket, key string, data []byte) (ObjectMeta, error) {
	if m.mode == ReplicationAsync && m.failover {
		return m.putAsync(home, pref, bucket, key, data)
	}
	k := objKey(bucket, key)
	m.mu.Lock()
	v := m.latest[k].v + 1
	m.mu.Unlock()

	var (
		meta         ObjectMeta
		gotMeta      bool
		lastErr      error
		sawTransient bool
		wrote        []int
	)
	for _, i := range m.order(pref) {
		got, err := m.regions[i].Client.Put(bucket, key, data)
		if err != nil {
			switch {
			case transientRegionErr(err):
				sawTransient = true
			case errors.Is(err, ErrNoSuchBucket):
				// This region missed the bucket creation (it was down when
				// the facade created it); the replica is simply stale and
				// read-repair recreates bucket and object later.
			default:
				return ObjectMeta{}, err
			}
			m.stats.WriteMisses.Add(1)
			lastErr = err
			continue
		}
		if !gotMeta {
			meta, gotMeta = got, true
		}
		m.countCrossWrite(home, i, len(data))
		wrote = append(wrote, i)
	}
	if !gotMeta {
		if !sawTransient && lastErr != nil {
			// Every region agrees the bucket does not exist: a real caller
			// error, not an outage.
			return ObjectMeta{}, fmt.Errorf("put %s/%s: %w", bucket, key, lastErr)
		}
		return ObjectMeta{}, fmt.Errorf("cos: put %s/%s failed in all %d regions: %w", bucket, key, len(m.regions), ErrRequestFailed)
	}
	m.mu.Lock()
	if v > m.latest[k].v || m.latest[k].deleted {
		m.latest[k] = objVersion{v: v, etag: meta.ETag}
	}
	for _, i := range wrote {
		if m.replicas[i][k] < v {
			m.replicas[i][k] = v
		}
	}
	m.mu.Unlock()
	return meta, nil
}

// putAsync writes the primary copy synchronously — the first region in
// failover order that accepts it — commits the version, and enqueues
// catch-up tasks carrying the committed bytes for every other region. The
// ack therefore costs one region's round-trip instead of all of them;
// replicas are stale until their catch-up write lands (or, if it is
// dropped, until read-repair finds them).
func (m *MultiRegion) putAsync(home, pref int, bucket, key string, data []byte) (ObjectMeta, error) {
	k := objKey(bucket, key)
	m.mu.Lock()
	v := m.latest[k].v + 1
	m.mu.Unlock()

	var (
		meta         ObjectMeta
		primary      = -1
		lastErr      error
		sawTransient bool
	)
	for _, i := range m.order(pref) {
		got, err := m.regions[i].Client.Put(bucket, key, data)
		if err != nil {
			switch {
			case transientRegionErr(err):
				sawTransient = true
			case errors.Is(err, ErrNoSuchBucket):
				// Missed bucket creation; catch-up recreates it below.
			default:
				return ObjectMeta{}, err
			}
			m.stats.WriteMisses.Add(1)
			lastErr = err
			continue
		}
		meta, primary = got, i
		m.countCrossWrite(home, i, len(data))
		break
	}
	if primary < 0 {
		if !sawTransient && lastErr != nil {
			return ObjectMeta{}, fmt.Errorf("put %s/%s: %w", bucket, key, lastErr)
		}
		return ObjectMeta{}, fmt.Errorf("cos: put %s/%s failed in all %d regions: %w", bucket, key, len(m.regions), ErrRequestFailed)
	}
	m.mu.Lock()
	if v > m.latest[k].v || m.latest[k].deleted {
		m.latest[k] = objVersion{v: v, etag: meta.ETag}
	}
	if m.replicas[primary][k] < v {
		m.replicas[primary][k] = v
	}
	m.mu.Unlock()
	task := repTask{bucket: bucket, key: key, k: k, v: v, data: data}
	for i := range m.regions {
		if i != primary {
			m.enqueue(i, task)
		}
	}
	return meta, nil
}

// enqueue appends a catch-up task to region i's queue, blocking on the
// clock while the queue is at its bound, and starts a drain worker for the
// region if none is running. Workers are short-lived clock tasks: they
// exit as soon as their queue empties, so an idle facade keeps no tasks
// registered with the virtual clock.
func (m *MultiRegion) enqueue(i int, t repTask) { m.enqueueTask(i, t, false) }

// enqueueTask is enqueue with redelivery bookkeeping: a redelivered task
// was already counted as queued (the ledger tracks logical catch-up writes,
// not attempts) and releases its slot in the pending-redelivery count once
// it is back on the queue.
func (m *MultiRegion) enqueueTask(i int, t repTask, redelivery bool) {
	backpressured := false
	vclock.Poll(m.clk, func() bool {
		m.qmu.Lock()
		defer m.qmu.Unlock()
		if len(m.queues[i]) >= m.qlimit {
			backpressured = true
			return false
		}
		m.queues[i] = append(m.queues[i], t)
		if redelivery {
			m.redelivering[i]--
		} else {
			m.stats.AsyncQueued.Add(1)
		}
		if !m.workers[i] {
			m.workers[i] = true
			m.clk.Go(func() { m.drainRegion(i) })
		}
		return true
	}, time.Millisecond, time.Time{})
	if backpressured {
		m.stats.AsyncBackpressure.Add(1)
	}
}

// drainRegion is region i's catch-up worker: it pops queued writes in FIFO
// order and lands them through the region's own client stack (so its link
// latency and fault plan apply), then exits when the queue is empty. A
// failed attempt is redelivered with backoff until the task's attempt
// budget runs out (see replicate), so a partitioned region can never wedge
// the queue — the task waits out its backoff off-queue, not at its head.
func (m *MultiRegion) drainRegion(i int) {
	for {
		m.qmu.Lock()
		if len(m.queues[i]) == 0 {
			m.workers[i] = false
			m.qmu.Unlock()
			return
		}
		t := m.queues[i][0]
		m.queues[i] = m.queues[i][1:]
		m.qmu.Unlock()
		m.replicate(i, t)
	}
}

// replicate lands one catch-up write in region i. Tasks superseded by a
// newer committed version (or a tombstone) are skipped rather than risk
// writing stale bytes over a newer replica; the newer version's own
// catch-up task covers the region. A failed attempt consumes one unit of
// the task's redelivery budget: the task is re-enqueued after an
// exponential backoff on the clock, and only a task out of budget is
// dropped — declaring the replica stale until read-repair finds it.
func (m *MultiRegion) replicate(i int, t repTask) {
	m.mu.Lock()
	lv := m.latest[t.k]
	stale := lv.v == t.v && !lv.deleted && m.replicas[i][t.k] < t.v
	m.mu.Unlock()
	if !stale {
		m.stats.AsyncSkipped.Add(1)
		return
	}
	if _, err := m.regions[i].Client.Put(t.bucket, t.key, t.data); err != nil {
		if !errors.Is(err, ErrNoSuchBucket) {
			m.redeliverOrDrop(i, t)
			return
		}
		// The region also missed the bucket creation; repair that first,
		// then retry the object once.
		if cerr := m.regions[i].Client.CreateBucket(t.bucket); cerr != nil && !errors.Is(cerr, ErrBucketExists) {
			m.redeliverOrDrop(i, t)
			return
		}
		if _, err = m.regions[i].Client.Put(t.bucket, t.key, t.data); err != nil {
			m.redeliverOrDrop(i, t)
			return
		}
	}
	m.mu.Lock()
	if cur := m.latest[t.k]; cur.v == t.v && !cur.deleted && m.replicas[i][t.k] < t.v {
		m.replicas[i][t.k] = t.v
		m.stats.AsyncReplicated.Add(1)
	} else {
		// Superseded while the write was in flight; the newer version's own
		// catch-up (or the delete's tombstone) covers this region.
		m.stats.AsyncSkipped.Add(1)
	}
	m.mu.Unlock()
}

// redeliverOrDrop handles one failed catch-up attempt for region i: while
// the task has redelivery budget left it is rescheduled after an
// exponential backoff (50ms, 100ms, ... on the virtual clock) by a
// short-lived clock task; out of budget it is dropped and the replica
// declared stale. Every failed attempt counts as a write miss — the
// replica really did stay stale across it.
func (m *MultiRegion) redeliverOrDrop(i int, t repTask) {
	m.stats.WriteMisses.Add(1)
	t.attempts++
	if t.attempts >= m.redeliver {
		m.stats.AsyncDropped.Add(1)
		return
	}
	m.stats.AsyncRedelivered.Add(1)
	backoff := replicationRedeliveryBackoff << (t.attempts - 1)
	m.qmu.Lock()
	m.redelivering[i]++
	m.qmu.Unlock()
	m.clk.Go(func() {
		m.clk.Sleep(backoff)
		m.enqueueTask(i, t, true)
	})
}

// queueDepth returns the number of catch-up writes still queued.
func (m *MultiRegion) queueDepth() int64 {
	if m.mode != ReplicationAsync {
		return 0
	}
	m.qmu.Lock()
	defer m.qmu.Unlock()
	var n int64
	for i := range m.queues {
		n += int64(len(m.queues[i]))
	}
	return n
}

// Drain blocks on the clock until every queued catch-up write has been
// attempted (landed or dropped). Call it before tearing a simulation down
// or before comparing per-region state in tests; a facade in sync mode
// returns immediately. The deadline (zero means none) bounds the wait.
func (m *MultiRegion) Drain(deadline time.Time) bool {
	if m.mode != ReplicationAsync {
		return true
	}
	return vclock.Poll(m.clk, func() bool {
		m.qmu.Lock()
		defer m.qmu.Unlock()
		for i := range m.queues {
			if len(m.queues[i]) > 0 || m.workers[i] || m.redelivering[i] > 0 {
				return false
			}
		}
		return true
	}, time.Millisecond, deadline)
}

// countCrossWrite attributes one landed object write to the issuing view's
// home region. home < 0 (a client-side view) is never cross-region.
func (m *MultiRegion) countCrossWrite(home, region, payload int) {
	if home < 0 || home == region {
		return
	}
	m.stats.CrossRegionWrites.Add(1)
	m.stats.CrossRegionWriteBytes.Add(int64(payload))
}

// countCrossRead attributes one served read to the issuing view's home
// region.
func (m *MultiRegion) countCrossRead(home, region, body int) {
	if home < 0 || home == region {
		return
	}
	m.stats.CrossRegionReads.Add(1)
	m.stats.CrossRegionReadBytes.Add(int64(body))
}

// delete_ tombstones one key across the regions. Regions that miss the
// delete keep stale bytes, which listings and reads filter out through the
// tombstone; the bytes themselves are reclaimed only if the region sees a
// later delete or overwrite.
func (m *MultiRegion) delete_(pref int, bucket, key string) error {
	k := objKey(bucket, key)
	m.mu.Lock()
	v := m.latest[k].v + 1
	m.mu.Unlock()

	var (
		okAny        bool
		lastErr      error
		sawTransient bool
		wrote        []int
	)
	for _, i := range m.order(pref) {
		if err := m.regions[i].Client.Delete(bucket, key); err != nil {
			switch {
			case transientRegionErr(err):
				sawTransient = true
			case errors.Is(err, ErrNoSuchKey) || errors.Is(err, ErrNoSuchBucket):
				// Nothing to delete in this region; the tombstone below
				// hides any stale copy it may grow back via repair races.
				okAny = true
				wrote = append(wrote, i)
				continue
			default:
				return err
			}
			m.stats.WriteMisses.Add(1)
			lastErr = err
			continue
		}
		okAny = true
		wrote = append(wrote, i)
	}
	if !okAny {
		if !sawTransient && lastErr != nil {
			return fmt.Errorf("delete %s/%s: %w", bucket, key, lastErr)
		}
		return fmt.Errorf("cos: delete %s/%s failed in all %d regions: %w", bucket, key, len(m.regions), ErrRequestFailed)
	}
	m.mu.Lock()
	if v > m.latest[k].v {
		m.latest[k] = objVersion{v: v, deleted: true}
	}
	for _, i := range wrote {
		if m.replicas[i][k] < v {
			m.replicas[i][k] = v
		}
	}
	m.mu.Unlock()
	return nil
}

// putIf is the facade's conditional put. The compare and the version claim
// happen atomically under the control-plane lock, so two racing conditional
// puts serialize there: the loser observes the winner's ETag and fails with
// ErrPreconditionFailed before touching any region. The region fan-out then
// proceeds like a sync put at the claimed version (conditional writes are
// coordination records — small, rare, and worth full replication). If no
// region accepts the bytes the claim is rolled back — provided it is still
// the latest — so a transient outage surfaces as a retryable failure
// rather than a committed phantom version. Keys written through putIf
// should be written exclusively through it: an unconditional Put racing a
// conditional one on the same key can interleave version claims.
func (m *MultiRegion) putIf(home, pref int, bucket, key string, data []byte, ifMatch string) (ObjectMeta, error) {
	k := objKey(bucket, key)
	newTag := contentETag(data)
	m.mu.Lock()
	lv, tracked := m.latest[k]
	cur := ""
	if tracked && !lv.deleted {
		cur = lv.etag
	}
	if cur != ifMatch {
		m.mu.Unlock()
		return ObjectMeta{}, fmt.Errorf("put-if %s/%s: have %q want %q: %w", bucket, key, cur, ifMatch, ErrPreconditionFailed)
	}
	v := lv.v + 1
	m.latest[k] = objVersion{v: v, etag: newTag}
	m.mu.Unlock()

	var (
		meta         ObjectMeta
		gotMeta      bool
		lastErr      error
		sawTransient bool
		wrote        []int
	)
	for _, i := range m.order(pref) {
		got, err := m.regions[i].Client.Put(bucket, key, data)
		if err != nil {
			switch {
			case transientRegionErr(err):
				sawTransient = true
			case errors.Is(err, ErrNoSuchBucket):
				// Missed bucket creation; the replica stays stale and
				// read-repair recreates bucket and object later.
			default:
				m.rollbackClaim(k, lv, v, newTag, tracked)
				return ObjectMeta{}, err
			}
			m.stats.WriteMisses.Add(1)
			lastErr = err
			continue
		}
		if !gotMeta {
			meta, gotMeta = got, true
		}
		m.countCrossWrite(home, i, len(data))
		wrote = append(wrote, i)
	}
	if !gotMeta {
		m.rollbackClaim(k, lv, v, newTag, tracked)
		if !sawTransient && lastErr != nil {
			return ObjectMeta{}, fmt.Errorf("put-if %s/%s: %w", bucket, key, lastErr)
		}
		return ObjectMeta{}, fmt.Errorf("cos: put-if %s/%s failed in all %d regions: %w", bucket, key, len(m.regions), ErrRequestFailed)
	}
	m.mu.Lock()
	for _, i := range wrote {
		if m.replicas[i][k] < v {
			m.replicas[i][k] = v
		}
	}
	m.mu.Unlock()
	return meta, nil
}

// rollbackClaim withdraws a conditional put's version claim after a total
// write failure, but only while the claim is still the latest — a newer
// writer's claim is never disturbed.
func (m *MultiRegion) rollbackClaim(k string, prev objVersion, v uint64, etag string, wasTracked bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur := m.latest[k]; cur.v == v && cur.etag == etag && !cur.deleted {
		if wasTracked {
			m.latest[k] = prev
		} else {
			delete(m.latest, k)
		}
	}
}

// PutIf implements Conditional on the facade's default view.
func (m *MultiRegion) PutIf(bucket, key string, data []byte, ifMatch string) (ObjectMeta, error) {
	return m.putIf(-1, 0, bucket, key, data, ifMatch)
}

// --- reads ----------------------------------------------------------------

// current reports whether region i holds the latest version of k. Untracked
// keys (written around the facade) are current everywhere.
func (m *MultiRegion) current(i int, k string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	lv, tracked := m.latest[k]
	if !tracked {
		return true
	}
	return m.replicas[i][k] == lv.v
}

// tombstoned reports whether k's latest version is a delete.
func (m *MultiRegion) tombstoned(k string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.latest[k].deleted
}

// getRange serves a ranged read with failover; full reads (offset 0,
// length < 0) repair stale replicas with the bytes just fetched. home
// attributes cross-region reads (-1 for client-side views).
func (m *MultiRegion) getRange(home, pref int, bucket, key string, offset, length int64) ([]byte, ObjectMeta, error) {
	k := objKey(bucket, key)
	if m.tombstoned(k) {
		return nil, ObjectMeta{}, fmt.Errorf("get %s/%s: %w", bucket, key, ErrNoSuchKey)
	}
	var (
		lastErr error
		sawMiss bool
	)
	for n, i := range m.order(pref) {
		if !m.current(i, k) {
			continue // stale replica; never serve it
		}
		data, meta, err := m.regions[i].Client.GetRange(bucket, key, offset, length)
		if err != nil {
			switch {
			case transientRegionErr(err):
				lastErr = err
				continue
			case errors.Is(err, ErrNoSuchKey) || errors.Is(err, ErrNoSuchBucket):
				// Another region may hold the object (seeded around the
				// facade, or this replica lost it); keep looking.
				sawMiss = true
				lastErr = err
				continue
			default:
				return nil, ObjectMeta{}, err
			}
		}
		if n > 0 {
			m.stats.Failovers.Add(1)
		}
		m.countCrossRead(home, i, len(data))
		if offset == 0 && length < 0 {
			m.repair(k, bucket, key, data)
		}
		return data, meta, nil
	}
	if lastErr == nil {
		// Every region skipped as stale: the object exists but no current
		// replica is known — only possible for keys that were never
		// successfully written, so report it as transient.
		lastErr = ErrRequestFailed
	}
	if sawMiss && !transientRegionErr(lastErr) {
		return nil, ObjectMeta{}, fmt.Errorf("get %s/%s: %w", bucket, key, lastErr)
	}
	return nil, ObjectMeta{}, fmt.Errorf("cos: get %s/%s unreachable in all regions: %w", bucket, key, ErrRequestFailed)
}

// repair pushes the latest bytes of k to every stale region, through that
// region's own stack so its link and fault plan apply. Failures leave the
// replica stale; a later read retries.
func (m *MultiRegion) repair(k, bucket, key string, data []byte) {
	if !m.failover {
		return
	}
	m.mu.Lock()
	lv, tracked := m.latest[k]
	var stale []int
	if tracked && !lv.deleted {
		for i := range m.regions {
			if m.replicas[i][k] != lv.v {
				stale = append(stale, i)
			}
		}
	}
	m.mu.Unlock()
	for _, i := range stale {
		if _, err := m.regions[i].Client.Put(bucket, key, data); err != nil {
			if errors.Is(err, ErrNoSuchBucket) {
				// The region also missed the bucket creation; repair that
				// first, then retry the object once.
				if cerr := m.regions[i].Client.CreateBucket(bucket); cerr != nil && !errors.Is(cerr, ErrBucketExists) {
					continue
				}
				if _, err = m.regions[i].Client.Put(bucket, key, data); err != nil {
					continue
				}
			} else {
				continue
			}
		}
		m.mu.Lock()
		if cur := m.latest[k]; cur.v == lv.v && !cur.deleted && m.replicas[i][k] < lv.v {
			m.replicas[i][k] = lv.v
			m.stats.Repairs.Add(1)
		}
		m.mu.Unlock()
	}
}

// head serves metadata with failover, mirroring getRange without a body.
func (m *MultiRegion) head(home, pref int, bucket, key string) (ObjectMeta, error) {
	k := objKey(bucket, key)
	if m.tombstoned(k) {
		return ObjectMeta{}, fmt.Errorf("head %s/%s: %w", bucket, key, ErrNoSuchKey)
	}
	var lastErr error
	for n, i := range m.order(pref) {
		if !m.current(i, k) {
			continue
		}
		meta, err := m.regions[i].Client.Head(bucket, key)
		if err != nil {
			if transientRegionErr(err) || errors.Is(err, ErrNoSuchKey) || errors.Is(err, ErrNoSuchBucket) {
				lastErr = err
				continue
			}
			return ObjectMeta{}, err
		}
		if n > 0 {
			m.stats.Failovers.Add(1)
		}
		m.countCrossRead(home, i, 0)
		return meta, nil
	}
	if lastErr != nil && !transientRegionErr(lastErr) {
		return ObjectMeta{}, fmt.Errorf("head %s/%s: %w", bucket, key, lastErr)
	}
	return ObjectMeta{}, fmt.Errorf("cos: head %s/%s unreachable in all regions: %w", bucket, key, ErrRequestFailed)
}

// list merges the reachable regions' listings into one page, filtering
// tombstoned keys and preferring metadata from a region holding the latest
// version. Statuses committed to a healthy region during another region's
// outage are therefore always visible to pollers.
func (m *MultiRegion) list(pref int, bucket, prefix, marker string, maxKeys int) (ListResult, error) {
	if maxKeys <= 0 {
		maxKeys = DefaultMaxKeys
	}
	type entry struct {
		meta    ObjectMeta
		current bool
	}
	var (
		merged     = make(map[string]entry)
		reachable  bool
		sawBucket  bool
		truncated  bool
		lastErr    error
		fatalMiss  error
		regionList []int
	)
	regionList = m.order(pref)
	for _, i := range regionList {
		page, err := m.regions[i].Client.List(bucket, prefix, marker, maxKeys)
		if err != nil {
			switch {
			case transientRegionErr(err):
				lastErr = err
				continue
			case errors.Is(err, ErrNoSuchBucket):
				// The region may simply have missed the bucket creation.
				reachable = true
				fatalMiss = err
				continue
			default:
				return ListResult{}, err
			}
		}
		reachable, sawBucket = true, true
		if page.IsTruncated {
			truncated = true
		}
		for _, om := range page.Objects {
			k := objKey(bucket, om.Key)
			if m.tombstoned(k) {
				continue
			}
			cur := m.current(i, k)
			if prev, ok := merged[k]; ok && (prev.current || !cur) {
				continue
			}
			merged[k] = entry{meta: om, current: cur}
		}
	}
	if !reachable {
		return ListResult{}, fmt.Errorf("cos: list %s unreachable in all regions: %w", bucket, ErrRequestFailed)
	}
	if !sawBucket {
		return ListResult{}, fmt.Errorf("list %s: %w", bucket, fatalMiss)
	}
	_ = lastErr
	// objKeys of one bucket share the bucket prefix, so sorting them orders
	// the result by object key — and keeps the merged listing independent
	// of map iteration order.
	var res ListResult
	for i, k := range slices.Sorted(maps.Keys(merged)) {
		if i == maxKeys {
			truncated = true
			break
		}
		res.Objects = append(res.Objects, merged[k].meta)
	}
	if truncated && len(res.Objects) > 0 {
		res.IsTruncated = true
		res.NextMarker = res.Objects[len(res.Objects)-1].Key
	}
	return res, nil
}

// --- buckets --------------------------------------------------------------

func (m *MultiRegion) createBucket(pref int, name string) error {
	var (
		okAny, existed bool
		lastErr        error
	)
	for _, i := range m.order(pref) {
		err := m.regions[i].Client.CreateBucket(name)
		switch {
		case err == nil:
			okAny = true
		case errors.Is(err, ErrBucketExists):
			existed = true
		case transientRegionErr(err):
			lastErr = err
		default:
			return err
		}
	}
	if !okAny && !existed {
		return fmt.Errorf("cos: create bucket %q failed in all regions: %w", name, lastErr)
	}
	m.mu.Lock()
	m.buckets[name] = true
	m.mu.Unlock()
	if !okAny && existed {
		return fmt.Errorf("create bucket %q: %w", name, ErrBucketExists)
	}
	return nil
}

func (m *MultiRegion) deleteBucket(pref int, name string) error {
	var (
		okAny   bool
		lastErr error
	)
	for _, i := range m.order(pref) {
		err := m.regions[i].Client.DeleteBucket(name)
		switch {
		case err == nil:
			okAny = true
		case transientRegionErr(err):
			lastErr = err
		case errors.Is(err, ErrNoSuchBucket):
			// already absent in this region
		default:
			return err
		}
	}
	if !okAny {
		return fmt.Errorf("cos: delete bucket %q failed in all regions: %w", name, lastErr)
	}
	m.mu.Lock()
	delete(m.buckets, name)
	m.mu.Unlock()
	return nil
}

func (m *MultiRegion) bucketExists(pref int) func(name string) (bool, error) {
	return func(name string) (bool, error) {
		var lastErr error
		for _, i := range m.order(pref) {
			ok, err := m.regions[i].Client.BucketExists(name)
			if err != nil {
				if transientRegionErr(err) {
					lastErr = err
					continue
				}
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		if lastErr != nil {
			return false, fmt.Errorf("cos: bucket-exists %q unreachable: %w", name, ErrRequestFailed)
		}
		return false, nil
	}
}

func (m *MultiRegion) listBuckets(pref int) ([]string, error) {
	var (
		union     = make(map[string]bool)
		reachable bool
	)
	for _, i := range m.order(pref) {
		names, err := m.regions[i].Client.ListBuckets()
		if err != nil {
			if transientRegionErr(err) {
				continue
			}
			return nil, err
		}
		reachable = true
		for _, n := range names {
			union[n] = true
		}
	}
	if !reachable {
		return nil, fmt.Errorf("cos: list buckets unreachable in all regions: %w", ErrRequestFailed)
	}
	out := make([]string, 0, len(union))
	for n := range union {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// --- Client implementation ------------------------------------------------

// pref returns the facade's default view: preferred region 0, no home
// region (the facade used directly is client-side traffic, never
// cross-region). Every facade Client method delegates through it, so a
// placement change in the view logic cannot miss a method.
func (m *MultiRegion) pref() *regionView { return &m.root }

// CreateBucket implements Client.
func (m *MultiRegion) CreateBucket(bucket string) error { return m.pref().CreateBucket(bucket) }

// DeleteBucket implements Client.
func (m *MultiRegion) DeleteBucket(bucket string) error { return m.pref().DeleteBucket(bucket) }

// BucketExists implements Client.
func (m *MultiRegion) BucketExists(bucket string) (bool, error) {
	return m.pref().BucketExists(bucket)
}

// Put implements Client.
func (m *MultiRegion) Put(bucket, key string, data []byte) (ObjectMeta, error) {
	return m.pref().Put(bucket, key, data)
}

// Get implements Client.
func (m *MultiRegion) Get(bucket, key string) ([]byte, ObjectMeta, error) {
	return m.pref().Get(bucket, key)
}

// GetRange implements Client.
func (m *MultiRegion) GetRange(bucket, key string, offset, length int64) ([]byte, ObjectMeta, error) {
	return m.pref().GetRange(bucket, key, offset, length)
}

// Head implements Client.
func (m *MultiRegion) Head(bucket, key string) (ObjectMeta, error) {
	return m.pref().Head(bucket, key)
}

// List implements Client.
func (m *MultiRegion) List(bucket, prefix, marker string, maxKeys int) (ListResult, error) {
	return m.pref().List(bucket, prefix, marker, maxKeys)
}

// ListBuckets implements Client.
func (m *MultiRegion) ListBuckets() ([]string, error) { return m.pref().ListBuckets() }

// Delete implements Client.
func (m *MultiRegion) Delete(bucket, key string) error { return m.pref().Delete(bucket, key) }

// regionView is a Client whose reads prefer a specific region and whose
// cross-region traffic is attributed to a home region (-1 for client-side
// views outside any region).
type regionView struct {
	m    *MultiRegion
	pref int
	home int
}

var _ Client = (*regionView)(nil)

// CreateBucket implements Client.
func (v *regionView) CreateBucket(bucket string) error { return v.m.createBucket(v.pref, bucket) }

// DeleteBucket implements Client.
func (v *regionView) DeleteBucket(bucket string) error { return v.m.deleteBucket(v.pref, bucket) }

// BucketExists implements Client.
func (v *regionView) BucketExists(bucket string) (bool, error) {
	return v.m.bucketExists(v.pref)(bucket)
}

// Put implements Client.
func (v *regionView) Put(bucket, key string, data []byte) (ObjectMeta, error) {
	return v.m.put(v.home, v.pref, bucket, key, data)
}

// PutIf implements Conditional through the region's view; the compare still
// resolves against the facade-wide latest version, so fencing works across
// regions.
func (v *regionView) PutIf(bucket, key string, data []byte, ifMatch string) (ObjectMeta, error) {
	return v.m.putIf(v.home, v.pref, bucket, key, data, ifMatch)
}

// Get implements Client.
func (v *regionView) Get(bucket, key string) ([]byte, ObjectMeta, error) {
	return v.m.getRange(v.home, v.pref, bucket, key, 0, -1)
}

// GetRange implements Client.
func (v *regionView) GetRange(bucket, key string, offset, length int64) ([]byte, ObjectMeta, error) {
	return v.m.getRange(v.home, v.pref, bucket, key, offset, length)
}

// Head implements Client.
func (v *regionView) Head(bucket, key string) (ObjectMeta, error) {
	return v.m.head(v.home, v.pref, bucket, key)
}

// List implements Client.
func (v *regionView) List(bucket, prefix, marker string, maxKeys int) (ListResult, error) {
	return v.m.list(v.pref, bucket, prefix, marker, maxKeys)
}

// ListBuckets implements Client.
func (v *regionView) ListBuckets() ([]string, error) { return v.m.listBuckets(v.pref) }

// Delete implements Client.
func (v *regionView) Delete(bucket, key string) error { return v.m.delete_(v.pref, bucket, key) }
