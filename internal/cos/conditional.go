package cos

import (
	"crypto/md5"
	"encoding/hex"
	"errors"
	"fmt"
)

// Conditional put (compare-and-swap on ETags). Real COS/S3 expose this as
// If-Match / If-None-Match preconditions on PUT; GoWren uses it for exactly
// what real systems do — tiny coordination records (the driver lease of the
// job journal) where last-writer-wins would let two clients both believe
// they own a job. Only the lease path needs it, so it is a side interface
// rather than part of Client: wrappers forward it when their inner client
// supports it, and PutIf surfaces ErrConditionalUnsupported otherwise.
var (
	// ErrPreconditionFailed reports a conditional put whose expectation did
	// not hold: the object changed (or appeared) since the caller read it.
	// It is a terminal outcome, never retried by the SDK-style retry layer.
	ErrPreconditionFailed = errors.New("cos: precondition failed")
	// ErrConditionalUnsupported reports that the client stack has no
	// conditional-put support (e.g. the HTTP transport).
	ErrConditionalUnsupported = errors.New("cos: client does not support conditional put")
)

// Conditional is the optional compare-and-swap extension of Client.
type Conditional interface {
	// PutIf stores data under bucket/key only if the current object's ETag
	// equals ifMatch; an empty ifMatch requires the key to not exist. On a
	// mismatch it returns ErrPreconditionFailed and leaves the object
	// untouched.
	PutIf(bucket, key string, data []byte, ifMatch string) (ObjectMeta, error)
}

// PutIf dispatches a conditional put through c, unwrapping to the first
// layer that implements Conditional. Clients without support report
// ErrConditionalUnsupported, which callers treat as "journaling off", not
// as a failure of the write itself.
func PutIf(c Client, bucket, key string, data []byte, ifMatch string) (ObjectMeta, error) {
	if cc, ok := c.(Conditional); ok {
		return cc.PutIf(bucket, key, data, ifMatch)
	}
	return ObjectMeta{}, fmt.Errorf("put-if %s/%s: %w", bucket, key, ErrConditionalUnsupported)
}

// contentETag is the ETag algorithm shared by Store and the multi-region
// facade: hex MD5 of the body, as S3/COS compute for simple puts. Sharing
// it means an ETag read through any layer matches the one a conditional
// put will compare against.
func contentETag(data []byte) string {
	sum := md5.Sum(data)
	return hex.EncodeToString(sum[:])
}

// PutIf implements Conditional on the in-memory engine. The compare and the
// store are atomic under the bucket lock; the link charge (and any injected
// failure) happens before either, so a failed request never committed and
// is safe to retry.
func (s *Store) PutIf(bucketName, key string, data []byte, ifMatch string) (ObjectMeta, error) {
	s.stats.PutOps.Add(1)
	s.stats.BytesIn.Add(int64(len(data)))
	if err := s.charge(int64(len(data))); err != nil {
		return ObjectMeta{}, err
	}
	body := make([]byte, len(data))
	copy(body, data)
	meta := ObjectMeta{
		Key:          key,
		Size:         int64(len(body)),
		ETag:         contentETag(body),
		LastModified: s.now(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return ObjectMeta{}, fmt.Errorf("put-if %s/%s: %w", bucketName, key, ErrNoSuchBucket)
	}
	cur := ""
	if obj, ok := b.objects[key]; ok {
		cur = obj.meta.ETag
	}
	if cur != ifMatch {
		return ObjectMeta{}, fmt.Errorf("put-if %s/%s: have %q want %q: %w", bucketName, key, cur, ifMatch, ErrPreconditionFailed)
	}
	b.objects[key] = &object{meta: meta, data: body}
	return meta, nil
}

// PutIf implements Conditional: the payload is charged as upload before the
// inner compare-and-swap, like Put.
func (l *Linked) PutIf(bucket, key string, data []byte, ifMatch string) (ObjectMeta, error) {
	if err := l.charge(int64(len(data))); err != nil {
		return ObjectMeta{}, err
	}
	return PutIf(l.inner, bucket, key, data, ifMatch)
}

// PutIf implements Conditional; conditional puts count as put requests.
func (c *Counting) PutIf(bucket, key string, data []byte, ifMatch string) (ObjectMeta, error) {
	c.putOps.Add(1)
	c.bytesOut.Add(int64(len(data)))
	return PutIf(c.inner, bucket, key, data, ifMatch)
}

// PutIf implements Conditional. Retrying a conditional put is safe because
// every layer below injects failures before mutating state, so a transient
// error means the write never committed; ErrPreconditionFailed classifies
// as fatal and passes through on the first observation.
func (r *Retrying) PutIf(bucket, key string, data []byte, ifMatch string) (meta ObjectMeta, err error) {
	err = r.do(func() error {
		meta, err = PutIf(r.inner, bucket, key, data, ifMatch)
		return err
	})
	return meta, err
}
