package cos

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"gowren/internal/netsim"
	"gowren/internal/vclock"
)

func newTestStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	if err := s.CreateBucket("data"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBucketLifecycle(t *testing.T) {
	s := NewStore()
	if err := s.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateBucket("b"); !errors.Is(err, ErrBucketExists) {
		t.Fatalf("duplicate create err = %v, want ErrBucketExists", err)
	}
	ok, err := s.BucketExists("b")
	if err != nil || !ok {
		t.Fatalf("BucketExists = %v,%v want true,nil", ok, err)
	}
	ok, err = s.BucketExists("nope")
	if err != nil || ok {
		t.Fatalf("BucketExists(nope) = %v,%v want false,nil", ok, err)
	}
	if _, err := s.Put("b", "k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteBucket("b"); !errors.Is(err, ErrBucketNotEmpty) {
		t.Fatalf("delete non-empty err = %v, want ErrBucketNotEmpty", err)
	}
	if err := s.Delete("b", "k"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteBucket("b"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteBucket("b"); !errors.Is(err, ErrNoSuchBucket) {
		t.Fatalf("delete missing bucket err = %v, want ErrNoSuchBucket", err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := newTestStore(t)
	body := []byte("hello object world")
	meta, err := s.Put("data", "greeting", body)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Size != int64(len(body)) || meta.ETag == "" {
		t.Fatalf("bad meta %+v", meta)
	}
	got, gotMeta, err := s.Get("data", "greeting")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("body mismatch: %q", got)
	}
	if gotMeta.ETag != meta.ETag {
		t.Fatalf("etag changed between put and get")
	}
}

func TestPutCopiesCallerBuffer(t *testing.T) {
	s := newTestStore(t)
	buf := []byte("immutable?")
	if _, err := s.Put("data", "k", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	got, _, err := s.Get("data", "k")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 'i' {
		t.Fatal("store aliased the caller's buffer")
	}
}

func TestGetMissing(t *testing.T) {
	s := newTestStore(t)
	if _, _, err := s.Get("data", "absent"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("err = %v, want ErrNoSuchKey", err)
	}
	if _, _, err := s.Get("nobucket", "k"); !errors.Is(err, ErrNoSuchBucket) {
		t.Fatalf("err = %v, want ErrNoSuchBucket", err)
	}
	if _, err := s.Head("data", "absent"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("head err = %v, want ErrNoSuchKey", err)
	}
}

func TestGetRangeSemantics(t *testing.T) {
	s := newTestStore(t)
	body := []byte("0123456789")
	if _, err := s.Put("data", "d", body); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name        string
		off, length int64
		want        string
		wantErr     error
	}{
		{"full via -1", 0, -1, "0123456789", nil},
		{"middle", 3, 4, "3456", nil},
		{"to end", 7, -1, "789", nil},
		{"clamped", 8, 100, "89", nil},
		{"empty at start", 0, 0, "", nil},
		{"offset at size", 10, 1, "", ErrInvalidRange},
		{"offset past size", 11, 1, "", ErrInvalidRange},
		{"negative offset", -1, 5, "", ErrInvalidRange},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, _, err := s.GetRange("data", "d", tt.off, tt.length)
			if tt.wantErr != nil {
				if !errors.Is(err, tt.wantErr) {
					t.Fatalf("err = %v, want %v", err, tt.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != tt.want {
				t.Fatalf("got %q, want %q", got, tt.want)
			}
		})
	}
}

func TestGetRangeEquivalenceProperty(t *testing.T) {
	s := newTestStore(t)
	rng := rand.New(rand.NewSource(11))
	body := make([]byte, 4096)
	rng.Read(body)
	if _, err := s.Put("data", "blob", body); err != nil {
		t.Fatal(err)
	}
	f := func(offRaw, lenRaw uint16) bool {
		off := int64(offRaw) % int64(len(body))
		length := int64(lenRaw) % 1024
		got, _, err := s.GetRange("data", "blob", off, length)
		if err != nil {
			return false
		}
		end := off + length
		if end > int64(len(body)) {
			end = int64(len(body))
		}
		return bytes.Equal(got, body[off:end])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedObject(t *testing.T) {
	s := newTestStore(t)
	// Content: byte i has value i % 251, verifiable at any offset.
	gen := GeneratorFunc(func(off int64, p []byte) {
		for i := range p {
			p[i] = byte((off + int64(i)) % 251)
		}
	})
	const size = int64(10 << 20)
	meta, err := s.PutGenerated("data", "big", size, gen)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Size != size {
		t.Fatalf("size = %d, want %d", meta.Size, size)
	}
	got, _, err := s.GetRange("data", "big", size-5, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("tail read length = %d", len(got))
	}
	for i, b := range got {
		want := byte((size - 5 + int64(i)) % 251)
		if b != want {
			t.Fatalf("byte %d = %d, want %d", i, b, want)
		}
	}
	// HEAD must not materialize anything and still report the size.
	hm, err := s.Head("data", "big")
	if err != nil || hm.Size != size {
		t.Fatalf("head = %+v, %v", hm, err)
	}
}

func TestPutGeneratedValidation(t *testing.T) {
	s := newTestStore(t)
	if _, err := s.PutGenerated("data", "k", -1, GeneratorFunc(func(int64, []byte) {})); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := s.PutGenerated("data", "k", 1, nil); err == nil {
		t.Fatal("nil generator accepted")
	}
	if _, err := s.PutGenerated("nobucket", "k", 1, GeneratorFunc(func(int64, []byte) {})); !errors.Is(err, ErrNoSuchBucket) {
		t.Fatalf("err = %v, want ErrNoSuchBucket", err)
	}
}

func TestListPaginationAndPrefix(t *testing.T) {
	s := newTestStore(t)
	for i := 0; i < 25; i++ {
		key := fmt.Sprintf("logs/%03d", i)
		if _, err := s.Put("data", key, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Put("data", fmt.Sprintf("other/%d", i), []byte("y")); err != nil {
			t.Fatal(err)
		}
	}

	var all []ObjectMeta
	marker := ""
	pages := 0
	for {
		res, err := s.List("data", "logs/", marker, 10)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		all = append(all, res.Objects...)
		if !res.IsTruncated {
			break
		}
		marker = res.NextMarker
	}
	if pages != 3 {
		t.Fatalf("pages = %d, want 3", pages)
	}
	if len(all) != 25 {
		t.Fatalf("listed %d keys, want 25", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Key >= all[i].Key {
			t.Fatalf("listing not sorted: %q then %q", all[i-1].Key, all[i].Key)
		}
	}

	helper, err := ListAll(s, "data", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(helper) != 30 {
		t.Fatalf("ListAll = %d keys, want 30", len(helper))
	}
}

func TestListMissingBucket(t *testing.T) {
	s := NewStore()
	if _, err := s.List("nope", "", "", 0); !errors.Is(err, ErrNoSuchBucket) {
		t.Fatalf("err = %v, want ErrNoSuchBucket", err)
	}
}

func TestDeleteIdempotent(t *testing.T) {
	s := newTestStore(t)
	if err := s.Delete("data", "never-existed"); err != nil {
		t.Fatalf("deleting missing key should succeed, got %v", err)
	}
}

func TestOverwriteUpdatesMeta(t *testing.T) {
	s := newTestStore(t)
	m1, err := s.Put("data", "k", []byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Put("data", "k", []byte("twotwo"))
	if err != nil {
		t.Fatal(err)
	}
	if m1.ETag == m2.ETag {
		t.Fatal("etag did not change on overwrite")
	}
	if m2.Size != 6 {
		t.Fatalf("size = %d, want 6", m2.Size)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := newTestStore(t)
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("w%d/%d", g, i)
				if _, err := s.Put("data", key, []byte(key)); err != nil {
					errCh <- err
					return
				}
				got, _, err := s.Get("data", key)
				if err != nil {
					errCh <- err
					return
				}
				if string(got) != key {
					errCh <- fmt.Errorf("read back %q for key %q", got, key)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	res, err := ListAll(s, "data", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 400 {
		t.Fatalf("listed %d objects, want 400", len(res))
	}
}

func TestStoreChargesSimulatedLatency(t *testing.T) {
	clk := vclock.NewVirtual()
	link := netsim.NewLink(netsim.LinkConfig{
		RTT:          netsim.Constant{D: 10 * time.Millisecond},
		BandwidthBps: 1 << 20, // 1 MiB/s
	})
	s := NewStore(WithLink(clk, link))
	start := clk.Now()
	clk.Run(func() {
		if err := s.CreateBucket("b"); err != nil {
			t.Error(err)
			return
		}
		if _, err := s.Put("b", "k", make([]byte, 1<<20)); err != nil {
			t.Error(err)
			return
		}
		if _, _, err := s.Get("b", "k"); err != nil {
			t.Error(err)
			return
		}
	})
	// create (10ms) + put (10ms + 1s transfer) + get (10ms + 1s transfer)
	want := 30*time.Millisecond + 2*time.Second
	if got := clk.Now().Sub(start); got != want {
		t.Fatalf("elapsed = %v, want %v", got, want)
	}
}

func TestStoreInjectedFailures(t *testing.T) {
	clk := vclock.NewVirtual()
	link := netsim.NewLink(netsim.LinkConfig{FailureProb: 1.0, Seed: 1})
	s := NewStore(WithLink(clk, link))
	clk.Run(func() {
		if err := s.CreateBucket("b"); !errors.Is(err, ErrRequestFailed) {
			t.Errorf("err = %v, want ErrRequestFailed", err)
		}
	})
}

func TestStatsCounters(t *testing.T) {
	s := newTestStore(t)
	if _, err := s.Put("data", "k", []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("data", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Head("data", "k"); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.PutOps != 1 || st.GetOps != 1 || st.HeadOps != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesIn != 4 || st.BytesOut != 4 {
		t.Fatalf("byte counters = in %d out %d, want 4/4", st.BytesIn, st.BytesOut)
	}
}

func TestListBuckets(t *testing.T) {
	s := NewStore()
	names, err := s.ListBuckets()
	if err != nil || len(names) != 0 {
		t.Fatalf("empty store buckets = %v, %v", names, err)
	}
	for _, b := range []string{"zeta", "alpha", "mid"} {
		if err := s.CreateBucket(b); err != nil {
			t.Fatal(err)
		}
	}
	names, err = s.ListBuckets()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
		t.Fatalf("buckets = %v, want sorted [alpha mid zeta]", names)
	}
}

func TestGeneratedObjectConcurrentReads(t *testing.T) {
	s := newTestStore(t)
	gen := GeneratorFunc(func(off int64, p []byte) {
		for i := range p {
			p[i] = byte((off + int64(i)) % 97)
		}
	})
	const size = int64(1 << 20)
	if _, err := s.PutGenerated("data", "g", size, gen); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				off := int64((w*50 + i) * 1000 % (1 << 19))
				data, _, err := s.GetRange("data", "g", off, 256)
				if err != nil {
					errCh <- err
					return
				}
				for j, b := range data {
					if b != byte((off+int64(j))%97) {
						errCh <- fmt.Errorf("corrupt read at %d+%d", off, j)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
