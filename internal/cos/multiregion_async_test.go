package cos

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"gowren/internal/vclock"
)

// slowClient delays every Put by d on the clock — a region whose ingest path
// is slow enough for catch-up queues to fill.
type slowClient struct {
	Client
	clk vclock.Clock
	d   time.Duration
}

func (s *slowClient) Put(bucket, key string, data []byte) (ObjectMeta, error) {
	s.clk.Sleep(s.d)
	return s.Client.Put(bucket, key, data)
}

func asyncTwoRegions(t *testing.T, clk vclock.Clock, qlimit int) (*MultiRegion, *flakyRegion, *flakyRegion, *Store, *Store) {
	t.Helper()
	sa, sb := NewStore(), NewStore()
	ra := &flakyRegion{Client: sa}
	rb := &flakyRegion{Client: sb}
	m, err := NewMultiRegion([]RegionBackend{
		{Name: "us-south", Client: ra},
		{Name: "eu-gb", Client: rb},
	}, WithAsyncReplication(clk, qlimit))
	if err != nil {
		t.Fatal(err)
	}
	return m, ra, rb, sa, sb
}

func TestAsyncReplicationRequiresClock(t *testing.T) {
	s := NewStore()
	_, err := NewMultiRegion([]RegionBackend{{Name: "a", Client: s}}, WithAsyncReplication(nil, 0))
	if err == nil {
		t.Fatal("async facade without a clock accepted")
	}
}

func TestAsyncPutAcksAfterPrimaryAndCatchesUp(t *testing.T) {
	clk := vclock.NewVirtual()
	m, _, _, sa, sb := asyncTwoRegions(t, clk, 0)
	clk.Run(func() {
		if err := m.CreateBucket("b"); err != nil {
			t.Error(err)
			return
		}
		if _, err := m.Put("b", "k", []byte("v1")); err != nil {
			t.Error(err)
			return
		}
		// The ack means the primary (preferred) region has the bytes, with
		// no round-trip to the second region on the critical path.
		if got, _, err := sa.Get("b", "k"); err != nil || !bytes.Equal(got, []byte("v1")) {
			t.Errorf("primary region after ack: %q, %v", got, err)
		}
		if !m.Drain(time.Time{}) {
			t.Error("drain did not complete")
		}
	})
	if got, _, err := sb.Get("b", "k"); err != nil || !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("second region after drain: %q, %v", got, err)
	}
	st := m.Stats()
	if st.AsyncQueued != 1 || st.AsyncReplicated != 1 || st.AsyncDropped != 0 || st.AsyncLag != 0 {
		t.Fatalf("stats = %+v, want 1 queued, 1 replicated", st)
	}
}

func TestAsyncPrimaryFailoverThenReadRepair(t *testing.T) {
	clk := vclock.NewVirtual()
	m, ra, _, sa, sb := asyncTwoRegions(t, clk, 0)
	clk.Run(func() {
		if err := m.CreateBucket("b"); err != nil {
			t.Error(err)
			return
		}
		// Preferred region down: the primary write fails over to eu-gb and
		// the catch-up back to us-south is dropped (one attempt, no retry).
		ra.down = true
		if _, err := m.Put("b", "k", []byte("v1")); err != nil {
			t.Error(err)
			return
		}
		if got, _, err := sb.Get("b", "k"); err != nil || !bytes.Equal(got, []byte("v1")) {
			t.Errorf("failover primary: %q, %v", got, err)
		}
		if !m.Drain(time.Time{}) {
			t.Error("drain did not complete")
		}
		st := m.Stats()
		if st.AsyncDropped != 1 {
			t.Errorf("dropped = %d, want 1 (catch-up to downed region)", st.AsyncDropped)
		}
		// Region recovers. A full read through the facade must not serve the
		// stale (absent) us-south replica: it fails over and read-repairs.
		ra.down = false
		got, _, err := m.Get("b", "k")
		if err != nil || !bytes.Equal(got, []byte("v1")) {
			t.Errorf("read after recovery: %q, %v", got, err)
		}
	})
	if got, _, err := sa.Get("b", "k"); err != nil || !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("us-south after read-repair: %q, %v", got, err)
	}
	st := m.Stats()
	if st.Failovers == 0 || st.Repairs != 1 {
		t.Fatalf("stats = %+v, want failovers > 0 and 1 repair", st)
	}
}

func TestAsyncSupersededCatchupSkipped(t *testing.T) {
	clk := vclock.NewVirtual()
	m, _, rb, _, sb := asyncTwoRegions(t, clk, 0)
	var task1, task2 repTask
	clk.Run(func() {
		if err := m.CreateBucket("b"); err != nil {
			t.Error(err)
			return
		}
		// eu-gb down: both versions commit to us-south only, both catch-up
		// attempts drop, leaving eu-gb stale at version 0.
		rb.down = true
		if _, err := m.Put("b", "k", []byte("v1")); err != nil {
			t.Error(err)
			return
		}
		if _, err := m.Put("b", "k", []byte("v2")); err != nil {
			t.Error(err)
			return
		}
		if !m.Drain(time.Time{}) {
			t.Error("drain did not complete")
		}
	})
	k := objKey("b", "k")
	task1 = repTask{bucket: "b", key: "k", k: k, v: 1, data: []byte("v1")}
	task2 = repTask{bucket: "b", key: "k", k: k, v: 2, data: []byte("v2")}
	rb.down = false
	skippedBefore := m.Stats().AsyncSkipped
	// A stale catch-up task must never overwrite: replaying version 1 after
	// version 2 committed is skipped outright.
	m.replicate(1, task1)
	if _, _, err := sb.Get("b", "k"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("superseded catch-up wrote to region: err = %v", err)
	}
	m.replicate(1, task2)
	if got, _, err := sb.Get("b", "k"); err != nil || !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("current catch-up did not land: %q, %v", got, err)
	}
	// Replaying the landed task is idempotent.
	m.replicate(1, task2)
	st := m.Stats()
	if st.AsyncReplicated != 1 {
		t.Fatalf("replicated = %d, want 1", st.AsyncReplicated)
	}
	// The superseded and idempotent replays both count as skipped.
	if got := st.AsyncSkipped - skippedBefore; got != 2 {
		t.Fatalf("skipped = %d, want 2", got)
	}
}

func TestAsyncBackpressureBoundsQueue(t *testing.T) {
	clk := vclock.NewVirtual()
	sa, sb := NewStore(), NewStore()
	m, err := NewMultiRegion([]RegionBackend{
		{Name: "us-south", Client: sa},
		{Name: "eu-gb", Client: &slowClient{Client: sb, clk: clk, d: 10 * time.Millisecond}},
	}, WithAsyncReplication(clk, 1))
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	clk.Run(func() {
		if err := m.CreateBucket("b"); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			if _, err := m.Put("b", string(rune('a'+i)), []byte("x")); err != nil {
				t.Error(err)
				return
			}
		}
		if !m.Drain(time.Time{}) {
			t.Error("drain did not complete")
		}
	})
	st := m.Stats()
	if st.AsyncQueued != n || st.AsyncReplicated != n {
		t.Fatalf("stats = %+v, want %d queued and replicated", st, n)
	}
	if st.AsyncBackpressure == 0 {
		t.Fatalf("no backpressure recorded with queue limit 1 and a slow region")
	}
}

func TestDrainIsImmediateInSyncMode(t *testing.T) {
	m, _, _, _, _ := twoRegions(t)
	if !m.Drain(time.Time{}) {
		t.Fatal("sync-mode drain did not return true")
	}
}

func TestViewCrossRegionAccounting(t *testing.T) {
	m, _, _, sa, _ := twoRegions(t)
	if err := m.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	// Seed around the facade so only us-south holds the object.
	if _, err := sa.Put("b", "k", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	// A legacy-placement view: the consumer lives in eu-gb but reads
	// through us-south, so the serve is cross-region traffic.
	legacy, err := m.View("eu-gb", "us-south")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := legacy.Get("b", "k"); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.CrossRegionReads != 1 || st.CrossRegionReadBytes != 5 {
		t.Fatalf("cross-region reads = %d (%d bytes), want 1 (5 bytes)", st.CrossRegionReads, st.CrossRegionReadBytes)
	}
	// Writes through a home view fan out in sync mode; the replica landing
	// in the other region is the cross-region write.
	home, err := m.View("eu-gb", "eu-gb")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := home.Put("b", "k2", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	st = m.Stats()
	if st.CrossRegionWrites != 1 || st.CrossRegionWriteBytes != 3 {
		t.Fatalf("cross-region writes = %d (%d bytes), want 1 (3 bytes)", st.CrossRegionWrites, st.CrossRegionWriteBytes)
	}
}
