package cos

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// HTTP wire details shared by Handler and HTTPClient. The dialect is a small
// REST protocol in the spirit of the COS/S3 API:
//
//	GET    /b                       list buckets (JSON array)
//	PUT    /b/{bucket}              create bucket
//	HEAD   /b/{bucket}              bucket existence
//	GET    /b/{bucket}?prefix=&marker=&max-keys=   list (JSON ListResult)
//	DELETE /b/{bucket}              delete bucket
//	PUT    /b/{bucket}/{key...}     put object (body = content)
//	GET    /b/{bucket}/{key...}     get object; honors Range: bytes=a-b
//	HEAD   /b/{bucket}/{key...}     object metadata
//	DELETE /b/{bucket}/{key...}     delete object
//	GET    /stats                   engine counters (JSON)
//
// Error identity crosses the wire in the X-Cos-Error header so errors.Is
// works against the package sentinels on both sides.
const (
	headerError        = "X-Cos-Error"
	headerObjectSize   = "X-Cos-Object-Size"
	headerLastModified = "X-Cos-Last-Modified"
)

var errToCode = map[string]error{
	"NoSuchBucket":   ErrNoSuchBucket,
	"NoSuchKey":      ErrNoSuchKey,
	"BucketExists":   ErrBucketExists,
	"BucketNotEmpty": ErrBucketNotEmpty,
	"InvalidRange":   ErrInvalidRange,
	"RequestFailed":  ErrRequestFailed,
}

func codeForErr(err error) (string, int) {
	switch {
	case errors.Is(err, ErrNoSuchBucket):
		return "NoSuchBucket", http.StatusNotFound
	case errors.Is(err, ErrNoSuchKey):
		return "NoSuchKey", http.StatusNotFound
	case errors.Is(err, ErrBucketExists):
		return "BucketExists", http.StatusConflict
	case errors.Is(err, ErrBucketNotEmpty):
		return "BucketNotEmpty", http.StatusConflict
	case errors.Is(err, ErrInvalidRange):
		return "InvalidRange", http.StatusRequestedRangeNotSatisfiable
	case errors.Is(err, ErrRequestFailed):
		return "RequestFailed", http.StatusServiceUnavailable
	default:
		return "Internal", http.StatusInternalServerError
	}
}

// Handler serves a Store over the HTTP dialect above. Use it to run the
// object store as a standalone service (cmd/gowren-server); the virtual-time
// experiment harnesses use the Store directly because real sockets cannot
// block on a simulated clock.
func Handler(store *Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, store.Stats())
	})
	mux.HandleFunc("GET /b", func(w http.ResponseWriter, _ *http.Request) {
		names, err := store.ListBuckets()
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, names)
	})
	mux.HandleFunc("PUT /b/{bucket}", func(w http.ResponseWriter, r *http.Request) {
		if err := store.CreateBucket(r.PathValue("bucket")); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("HEAD /b/{bucket}", func(w http.ResponseWriter, r *http.Request) {
		ok, err := store.BucketExists(r.PathValue("bucket"))
		if err != nil {
			writeErr(w, err)
			return
		}
		if !ok {
			w.Header().Set(headerError, "NoSuchBucket")
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /b/{bucket}", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		maxKeys := 0
		if v := q.Get("max-keys"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				http.Error(w, "bad max-keys", http.StatusBadRequest)
				return
			}
			maxKeys = n
		}
		res, err := store.List(r.PathValue("bucket"), q.Get("prefix"), q.Get("marker"), maxKeys)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, res)
	})
	mux.HandleFunc("DELETE /b/{bucket}", func(w http.ResponseWriter, r *http.Request) {
		if err := store.DeleteBucket(r.PathValue("bucket")); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("PUT /b/{bucket}/{key...}", func(w http.ResponseWriter, r *http.Request) {
		body, err := readAll(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		meta, err := store.Put(r.PathValue("bucket"), r.PathValue("key"), body)
		if err != nil {
			writeErr(w, err)
			return
		}
		setMetaHeaders(w, meta)
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /b/{bucket}/{key...}", func(w http.ResponseWriter, r *http.Request) {
		offset, length, haveRange, err := parseRange(r.Header.Get("Range"))
		if err != nil {
			writeErr(w, fmt.Errorf("%w: %v", ErrInvalidRange, err))
			return
		}
		var (
			data []byte
			meta ObjectMeta
		)
		if haveRange {
			data, meta, err = store.GetRange(r.PathValue("bucket"), r.PathValue("key"), offset, length)
		} else {
			data, meta, err = store.Get(r.PathValue("bucket"), r.PathValue("key"))
		}
		if err != nil {
			writeErr(w, err)
			return
		}
		setMetaHeaders(w, meta)
		if haveRange {
			w.WriteHeader(http.StatusPartialContent)
		}
		_, _ = w.Write(data)
	})
	mux.HandleFunc("HEAD /b/{bucket}/{key...}", func(w http.ResponseWriter, r *http.Request) {
		meta, err := store.Head(r.PathValue("bucket"), r.PathValue("key"))
		if err != nil {
			writeErr(w, err)
			return
		}
		setMetaHeaders(w, meta)
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("DELETE /b/{bucket}/{key...}", func(w http.ResponseWriter, r *http.Request) {
		if err := store.Delete(r.PathValue("bucket"), r.PathValue("key")); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

func setMetaHeaders(w http.ResponseWriter, meta ObjectMeta) {
	w.Header().Set("ETag", meta.ETag)
	w.Header().Set(headerObjectSize, strconv.FormatInt(meta.Size, 10))
	w.Header().Set(headerLastModified, meta.LastModified.UTC().Format("2006-01-02T15:04:05.000000000Z"))
}

func writeErr(w http.ResponseWriter, err error) {
	code, status := codeForErr(err)
	w.Header().Set(headerError, code)
	http.Error(w, err.Error(), status)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func readAll(r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	return io.ReadAll(r.Body)
}

// parseRange parses "bytes=start-end" (end inclusive, optional) into an
// offset and length for GetRange. haveRange is false for an empty header.
func parseRange(h string) (offset, length int64, haveRange bool, err error) {
	if h == "" {
		return 0, 0, false, nil
	}
	spec, ok := strings.CutPrefix(h, "bytes=")
	if !ok {
		return 0, 0, false, fmt.Errorf("unsupported range unit in %q", h)
	}
	startStr, endStr, ok := strings.Cut(spec, "-")
	if !ok {
		return 0, 0, false, fmt.Errorf("malformed range %q", h)
	}
	start, err := strconv.ParseInt(startStr, 10, 64)
	if err != nil {
		return 0, 0, false, fmt.Errorf("malformed range start %q", h)
	}
	if endStr == "" {
		return start, -1, true, nil
	}
	end, err := strconv.ParseInt(endStr, 10, 64)
	if err != nil {
		return 0, 0, false, fmt.Errorf("malformed range end %q", h)
	}
	if end < start {
		return 0, 0, false, fmt.Errorf("inverted range %q", h)
	}
	return start, end - start + 1, true, nil
}
