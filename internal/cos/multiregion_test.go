package cos

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// flakyRegion wraps a Client and fails every operation with ErrRequestFailed
// while down is set — the shape a partitioned region presents through its
// netsim link.
type flakyRegion struct {
	Client
	down bool
}

func (f *flakyRegion) check() error {
	if f.down {
		return fmt.Errorf("region down: %w", ErrRequestFailed)
	}
	return nil
}

func (f *flakyRegion) CreateBucket(bucket string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.Client.CreateBucket(bucket)
}

func (f *flakyRegion) DeleteBucket(bucket string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.Client.DeleteBucket(bucket)
}

func (f *flakyRegion) BucketExists(bucket string) (bool, error) {
	if err := f.check(); err != nil {
		return false, err
	}
	return f.Client.BucketExists(bucket)
}

func (f *flakyRegion) Put(bucket, key string, data []byte) (ObjectMeta, error) {
	if err := f.check(); err != nil {
		return ObjectMeta{}, err
	}
	return f.Client.Put(bucket, key, data)
}

func (f *flakyRegion) Get(bucket, key string) ([]byte, ObjectMeta, error) {
	if err := f.check(); err != nil {
		return nil, ObjectMeta{}, err
	}
	return f.Client.Get(bucket, key)
}

func (f *flakyRegion) GetRange(bucket, key string, offset, length int64) ([]byte, ObjectMeta, error) {
	if err := f.check(); err != nil {
		return nil, ObjectMeta{}, err
	}
	return f.Client.GetRange(bucket, key, offset, length)
}

func (f *flakyRegion) Head(bucket, key string) (ObjectMeta, error) {
	if err := f.check(); err != nil {
		return ObjectMeta{}, err
	}
	return f.Client.Head(bucket, key)
}

func (f *flakyRegion) List(bucket, prefix, marker string, maxKeys int) (ListResult, error) {
	if err := f.check(); err != nil {
		return ListResult{}, err
	}
	return f.Client.List(bucket, prefix, marker, maxKeys)
}

func (f *flakyRegion) ListBuckets() ([]string, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	return f.Client.ListBuckets()
}

func (f *flakyRegion) Delete(bucket, key string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.Client.Delete(bucket, key)
}

func twoRegions(t *testing.T, opts ...MultiRegionOption) (*MultiRegion, *flakyRegion, *flakyRegion, *Store, *Store) {
	t.Helper()
	sa, sb := NewStore(), NewStore()
	ra := &flakyRegion{Client: sa}
	rb := &flakyRegion{Client: sb}
	m, err := NewMultiRegion([]RegionBackend{
		{Name: "us-south", Client: ra},
		{Name: "eu-gb", Client: rb},
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return m, ra, rb, sa, sb
}

func TestMultiRegionValidation(t *testing.T) {
	if _, err := NewMultiRegion(nil); err == nil {
		t.Fatal("empty region list accepted")
	}
	s := NewStore()
	if _, err := NewMultiRegion([]RegionBackend{{Name: "", Client: s}}); err == nil {
		t.Fatal("unnamed region accepted")
	}
	if _, err := NewMultiRegion([]RegionBackend{{Name: "a", Client: nil}}); err == nil {
		t.Fatal("nil client accepted")
	}
	if _, err := NewMultiRegion([]RegionBackend{
		{Name: "a", Client: s}, {Name: "a", Client: s},
	}); err == nil {
		t.Fatal("duplicate region names accepted")
	}
}

func TestMultiRegionReplicatesWrites(t *testing.T) {
	m, _, _, sa, sb := twoRegions(t)
	if err := m.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Put("b", "k", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	for i, s := range []*Store{sa, sb} {
		data, _, err := s.Get("b", "k")
		if err != nil {
			t.Fatalf("region %d missing replica: %v", i, err)
		}
		if !bytes.Equal(data, []byte("hello")) {
			t.Fatalf("region %d replica = %q", i, data)
		}
	}
}

func TestMultiRegionWriteSurvivesOneRegionDown(t *testing.T) {
	m, ra, _, sa, sb := twoRegions(t)
	if err := m.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	ra.down = true
	if _, err := m.Put("b", "k", []byte("v1")); err != nil {
		t.Fatalf("put with one region down: %v", err)
	}
	if _, _, err := sb.Get("b", "k"); err != nil {
		t.Fatalf("healthy region missing write: %v", err)
	}
	if _, _, err := sa.Get("b", "k"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("down region unexpectedly has write: %v", err)
	}
	if got := m.Stats().WriteMisses; got != 1 {
		t.Fatalf("write misses = %d, want 1", got)
	}
}

func TestMultiRegionAllRegionsDownIsTransient(t *testing.T) {
	m, ra, rb, _, _ := twoRegions(t)
	if err := m.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Put("b", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	ra.down, rb.down = true, true
	if _, err := m.Put("b", "k2", []byte("v")); !errors.Is(err, ErrRequestFailed) {
		t.Fatalf("all-down put error = %v, want ErrRequestFailed", err)
	}
	if _, _, err := m.Get("b", "k"); !errors.Is(err, ErrRequestFailed) {
		t.Fatalf("all-down get error = %v, want ErrRequestFailed", err)
	}
	if _, err := m.List("b", "", "", 0); !errors.Is(err, ErrRequestFailed) {
		t.Fatalf("all-down list error = %v, want ErrRequestFailed", err)
	}
}

func TestMultiRegionFailoverOrdering(t *testing.T) {
	m, ra, _, _, _ := twoRegions(t)
	if err := m.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Put("b", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Preferred region healthy: reads stay local, no failover counted.
	if _, _, err := m.Get("b", "k"); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Failovers; got != 0 {
		t.Fatalf("failovers with healthy preferred = %d", got)
	}
	// Preferred region down: the read fails over to eu-gb.
	ra.down = true
	data, _, err := m.Get("b", "k")
	if err != nil {
		t.Fatalf("failover read: %v", err)
	}
	if !bytes.Equal(data, []byte("v")) {
		t.Fatalf("failover read = %q", data)
	}
	if got := m.Stats().Failovers; got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	if _, err := m.Head("b", "k"); err != nil {
		t.Fatalf("failover head: %v", err)
	}
}

func TestMultiRegionNeverServesStaleReplica(t *testing.T) {
	m, ra, rb, _, _ := twoRegions(t)
	if err := m.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Put("b", "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// v2 lands only in us-south; eu-gb's replica is stale at v1.
	rb.down = true
	if _, err := m.Put("b", "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	rb.down = false
	// A read preferring eu-gb must skip its stale replica and serve v2.
	euView, err := m.Preferred("eu-gb")
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := euView.Get("b", "k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte("v2")) {
		t.Fatalf("read served stale replica: %q", data)
	}
	// If the only current region is also down, the read must degrade to a
	// transient error, not fall back to stale data.
	ra.down = true
	// Undo the read-repair performed by the Get above by writing v3 to
	// us-south alone... us-south is down, so instead assert on a fresh key.
	ra.down = false
	if _, err := m.Put("b", "k2", []byte("w1")); err != nil {
		t.Fatal(err)
	}
	rb.down = true
	if _, err := m.Put("b", "k2", []byte("w2")); err != nil {
		t.Fatal(err)
	}
	rb.down = false
	ra.down = true
	if _, _, err := m.Get("b", "k2"); !errors.Is(err, ErrRequestFailed) {
		t.Fatalf("stale-only read error = %v, want ErrRequestFailed", err)
	}
}

func TestMultiRegionReadRepair(t *testing.T) {
	m, _, rb, _, sb := twoRegions(t)
	if err := m.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Put("b", "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	rb.down = true
	if _, err := m.Put("b", "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	rb.down = false
	if data, _, _ := sb.Get("b", "k"); !bytes.Equal(data, []byte("v1")) {
		t.Fatalf("precondition: eu-gb should hold stale v1, got %q", data)
	}
	// A full-body read repairs the stale replica in passing.
	if _, _, err := m.Get("b", "k"); err != nil {
		t.Fatal(err)
	}
	data, _, err := sb.Get("b", "k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte("v2")) {
		t.Fatalf("replica not repaired: %q", data)
	}
	if got := m.Stats().Repairs; got != 1 {
		t.Fatalf("repairs = %d, want 1", got)
	}
	// Once repaired, eu-gb serves reads again without failover.
	before := m.Stats().Failovers
	euView, err := m.Preferred("eu-gb")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := euView.Get("b", "k"); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Failovers; got != before {
		t.Fatalf("repaired replica still causing failovers: %d → %d", before, got)
	}
}

func TestMultiRegionReadRepairRecreatesMissedBucket(t *testing.T) {
	m, _, rb, _, sb := twoRegions(t)
	// eu-gb misses the bucket creation AND the write.
	rb.down = true
	if err := m.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Put("b", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	rb.down = false
	if _, _, err := m.Get("b", "k"); err != nil {
		t.Fatal(err)
	}
	data, _, err := sb.Get("b", "k")
	if err != nil {
		t.Fatalf("repair did not recreate bucket+object: %v", err)
	}
	if !bytes.Equal(data, []byte("v")) {
		t.Fatalf("repaired replica = %q", data)
	}
}

func TestMultiRegionListMergesRegions(t *testing.T) {
	m, ra, rb, _, _ := twoRegions(t)
	if err := m.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	// k1 lands everywhere; k2 only in eu-gb (us-south down); k3 only in
	// us-south (eu-gb down).
	if _, err := m.Put("b", "k1", []byte("1")); err != nil {
		t.Fatal(err)
	}
	ra.down = true
	if _, err := m.Put("b", "k2", []byte("2")); err != nil {
		t.Fatal(err)
	}
	ra.down = false
	rb.down = true
	if _, err := m.Put("b", "k3", []byte("3")); err != nil {
		t.Fatal(err)
	}
	rb.down = false
	res, err := m.List("b", "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, om := range res.Objects {
		keys = append(keys, om.Key)
	}
	want := []string{"k1", "k2", "k3"}
	if len(keys) != len(want) {
		t.Fatalf("merged list = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("merged list = %v, want %v", keys, want)
		}
	}
	// With us-south down, the merged listing still shows everything that is
	// reachable (k1 and k2 live in eu-gb).
	ra.down = true
	res, err = m.List("b", "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) != 2 || res.Objects[0].Key != "k1" || res.Objects[1].Key != "k2" {
		t.Fatalf("partitioned list = %+v, want k1,k2", res.Objects)
	}
}

func TestMultiRegionDeleteTombstones(t *testing.T) {
	m, ra, _, _, _ := twoRegions(t)
	if err := m.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Put("b", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Delete while us-south is down: its replica keeps the bytes, but the
	// facade must hide them everywhere.
	ra.down = true
	if err := m.Delete("b", "k"); err != nil {
		t.Fatal(err)
	}
	ra.down = false
	if _, _, err := m.Get("b", "k"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("get after delete = %v, want ErrNoSuchKey", err)
	}
	if _, err := m.Head("b", "k"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("head after delete = %v, want ErrNoSuchKey", err)
	}
	res, err := m.List("b", "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) != 0 {
		t.Fatalf("list after delete = %+v, want empty", res.Objects)
	}
}

func TestMultiRegionUntrackedKeyFallsBack(t *testing.T) {
	// Keys seeded directly into one region's store (around the facade) are
	// served from whichever region has them.
	m, _, _, _, sb := twoRegions(t)
	if err := sb.CreateBucket("data"); err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Put("data", "part-0", []byte("seeded")); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateBucket("data"); err != nil {
		t.Fatal(err)
	}
	data, _, err := m.Get("data", "part-0")
	if err != nil {
		t.Fatalf("untracked key not served: %v", err)
	}
	if !bytes.Equal(data, []byte("seeded")) {
		t.Fatalf("untracked key = %q", data)
	}
}

func TestMultiRegionMissingKeyIsNoSuchKey(t *testing.T) {
	m, _, _, _, _ := twoRegions(t)
	if err := m.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Get("b", "nope"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("missing key error = %v, want ErrNoSuchKey", err)
	}
	if _, err := m.Head("b", "nope"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("missing key head = %v, want ErrNoSuchKey", err)
	}
}

func TestMultiRegionWithoutFailoverPinsToPreferred(t *testing.T) {
	m, ra, _, sa, sb := twoRegions(t, WithoutFailover())
	if err := m.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Put("b", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Without failover, writes land only in the preferred region.
	if _, _, err := sa.Get("b", "k"); err != nil {
		t.Fatalf("preferred region missing write: %v", err)
	}
	if _, _, err := sb.Get("b", "k"); !errors.Is(err, ErrNoSuchBucket) && !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("non-preferred region has write without failover: %v", err)
	}
	// A preferred-region outage is fatal to reads: no failover, just the
	// transient error.
	ra.down = true
	if _, _, err := m.Get("b", "k"); !errors.Is(err, ErrRequestFailed) {
		t.Fatalf("pinned read during outage = %v, want ErrRequestFailed", err)
	}
}

func TestMultiRegionPreferredUnknownRegion(t *testing.T) {
	m, _, _, _, _ := twoRegions(t)
	if _, err := m.Preferred("mars"); err == nil {
		t.Fatal("unknown region accepted")
	}
	names := m.RegionNames()
	if len(names) != 2 || names[0] != "us-south" || names[1] != "eu-gb" {
		t.Fatalf("region names = %v", names)
	}
}

func TestMultiRegionListPagination(t *testing.T) {
	m, _, _, _, _ := twoRegions(t)
	if err := m.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := m.Put("b", fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.List("b", "", "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) != 2 || !res.IsTruncated || res.NextMarker != "k1" {
		t.Fatalf("page1 = %+v", res)
	}
	res, err = m.List("b", "", res.NextMarker, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) != 3 || res.IsTruncated {
		t.Fatalf("page2 = %+v", res)
	}
	if res.Objects[0].Key != "k2" {
		t.Fatalf("page2 starts at %q", res.Objects[0].Key)
	}
}

func TestMultiRegionBucketOps(t *testing.T) {
	m, ra, _, sa, sb := twoRegions(t)
	ra.down = true
	if err := m.CreateBucket("b"); err != nil {
		t.Fatalf("create with one region down: %v", err)
	}
	ra.down = false
	ok, err := m.BucketExists("b")
	if err != nil || !ok {
		t.Fatalf("bucket exists = %v, %v", ok, err)
	}
	// The down region missed the creation; ListBuckets still unions.
	if ok, _ := sa.BucketExists("b"); ok {
		t.Fatal("down region has bucket")
	}
	if ok, _ := sb.BucketExists("b"); !ok {
		t.Fatal("healthy region missing bucket")
	}
	names, err := m.ListBuckets()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "b" {
		t.Fatalf("list buckets = %v", names)
	}
	if err := m.DeleteBucket("b"); err != nil {
		t.Fatal(err)
	}
	ok, err = m.BucketExists("b")
	if err != nil || ok {
		t.Fatalf("bucket exists after delete = %v, %v", ok, err)
	}
}
