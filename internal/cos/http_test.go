package cos

import (
	"bytes"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
)

// newHTTPPair serves a fresh Store over httptest and returns a client for it.
func newHTTPPair(t *testing.T) (*Store, Client) {
	t.Helper()
	store := NewStore()
	srv := httptest.NewServer(Handler(store))
	t.Cleanup(srv.Close)
	return store, NewHTTPClient(srv.URL, srv.Client())
}

func TestHTTPBucketLifecycle(t *testing.T) {
	_, c := newHTTPPair(t)
	if err := c.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateBucket("b"); !errors.Is(err, ErrBucketExists) {
		t.Fatalf("duplicate create err = %v, want ErrBucketExists", err)
	}
	ok, err := c.BucketExists("b")
	if err != nil || !ok {
		t.Fatalf("exists = %v, %v", ok, err)
	}
	ok, err = c.BucketExists("missing")
	if err != nil || ok {
		t.Fatalf("exists(missing) = %v, %v", ok, err)
	}
	if err := c.DeleteBucket("b"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteBucket("b"); !errors.Is(err, ErrNoSuchBucket) {
		t.Fatalf("err = %v, want ErrNoSuchBucket", err)
	}
}

func TestHTTPObjectRoundTrip(t *testing.T) {
	_, c := newHTTPPair(t)
	if err := c.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	body := []byte("the quick brown fox")
	putMeta, err := c.Put("b", "dir/sub/key.txt", body)
	if err != nil {
		t.Fatal(err)
	}
	if putMeta.Size != int64(len(body)) || putMeta.ETag == "" {
		t.Fatalf("put meta = %+v", putMeta)
	}
	got, meta, err := c.Get("b", "dir/sub/key.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("body = %q", got)
	}
	if meta.ETag != putMeta.ETag || meta.Size != putMeta.Size {
		t.Fatalf("meta mismatch: %+v vs %+v", meta, putMeta)
	}
	hm, err := c.Head("b", "dir/sub/key.txt")
	if err != nil {
		t.Fatal(err)
	}
	if hm.Size != int64(len(body)) || hm.ETag != putMeta.ETag {
		t.Fatalf("head meta = %+v", hm)
	}
	if hm.LastModified.IsZero() {
		t.Fatal("last-modified did not survive the wire")
	}
}

func TestHTTPRangeReads(t *testing.T) {
	_, c := newHTTPPair(t)
	if err := c.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	body := []byte("0123456789")
	if _, err := c.Put("b", "d", body); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		off, length int64
		want        string
	}{
		{0, -1, "0123456789"},
		{2, 3, "234"},
		{5, -1, "56789"},
		{8, 100, "89"},
		{0, 0, ""},
		{3, 0, ""},
	}
	for _, tt := range tests {
		got, _, err := c.GetRange("b", "d", tt.off, tt.length)
		if err != nil {
			t.Fatalf("GetRange(%d,%d): %v", tt.off, tt.length, err)
		}
		if string(got) != tt.want {
			t.Fatalf("GetRange(%d,%d) = %q, want %q", tt.off, tt.length, got, tt.want)
		}
	}
	if _, _, err := c.GetRange("b", "d", 10, 1); !errors.Is(err, ErrInvalidRange) {
		t.Fatalf("offset-at-size err = %v, want ErrInvalidRange", err)
	}
	if _, _, err := c.GetRange("b", "d", 10, 0); !errors.Is(err, ErrInvalidRange) {
		t.Fatalf("empty-range-at-size err = %v, want ErrInvalidRange", err)
	}
}

func TestHTTPErrorsCrossTheWire(t *testing.T) {
	_, c := newHTTPPair(t)
	if err := c.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("b", "missing"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("get err = %v, want ErrNoSuchKey", err)
	}
	if _, _, err := c.Get("nobucket", "k"); !errors.Is(err, ErrNoSuchBucket) {
		t.Fatalf("get err = %v, want ErrNoSuchBucket", err)
	}
	if _, err := c.Head("b", "missing"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("head err = %v, want ErrNoSuchKey", err)
	}
	if _, err := c.List("nobucket", "", "", 0); !errors.Is(err, ErrNoSuchBucket) {
		t.Fatalf("list err = %v, want ErrNoSuchBucket", err)
	}
}

func TestHTTPListPagination(t *testing.T) {
	_, c := newHTTPPair(t)
	if err := c.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := c.Put("b", fmt.Sprintf("k/%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	page1, err := c.List("b", "k/", "", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(page1.Objects) != 5 || !page1.IsTruncated {
		t.Fatalf("page1 = %d objects truncated=%v", len(page1.Objects), page1.IsTruncated)
	}
	all, err := ListAll(c, "b", "k/")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 12 {
		t.Fatalf("ListAll over HTTP = %d, want 12", len(all))
	}
}

func TestHTTPDelete(t *testing.T) {
	_, c := newHTTPPair(t)
	if err := c.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("b", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("b", "k"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("b", "k"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("get after delete err = %v", err)
	}
	if err := c.Delete("b", "k"); err != nil {
		t.Fatalf("idempotent delete err = %v", err)
	}
}

func TestHTTPKeyEscaping(t *testing.T) {
	_, c := newHTTPPair(t)
	if err := c.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	weird := "jobs/exec 1/call#7/status?.json"
	if _, err := c.Put("b", weird, []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Get("b", weird)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v" {
		t.Fatalf("got %q", got)
	}
}

func TestParseRange(t *testing.T) {
	tests := []struct {
		in          string
		off, length int64
		have        bool
		wantErr     bool
	}{
		{"", 0, 0, false, false},
		{"bytes=0-9", 0, 10, true, false},
		{"bytes=5-", 5, -1, true, false},
		{"bytes=7-7", 7, 1, true, false},
		{"bytes=9-5", 0, 0, false, true},
		{"items=0-5", 0, 0, false, true},
		{"bytes=a-b", 0, 0, false, true},
		{"bytes=5", 0, 0, false, true},
	}
	for _, tt := range tests {
		off, length, have, err := parseRange(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parseRange(%q): want error", tt.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseRange(%q): %v", tt.in, err)
			continue
		}
		if off != tt.off || length != tt.length || have != tt.have {
			t.Errorf("parseRange(%q) = (%d,%d,%v), want (%d,%d,%v)", tt.in, off, length, have, tt.off, tt.length, tt.have)
		}
	}
}

func TestHTTPListBuckets(t *testing.T) {
	_, c := newHTTPPair(t)
	for _, b := range []string{"b2", "b1"} {
		if err := c.CreateBucket(b); err != nil {
			t.Fatal(err)
		}
	}
	names, err := c.ListBuckets()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "b1" {
		t.Fatalf("buckets over HTTP = %v", names)
	}
}
