package cos

import (
	"errors"
	"testing"
	"time"

	"gowren/internal/netsim"
	"gowren/internal/vclock"
)

func TestLinkedChargesPerView(t *testing.T) {
	clk := vclock.NewVirtual()
	store := NewStore()
	if err := store.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	slow := NewLinked(store, clk, netsim.NewLink(netsim.LinkConfig{
		RTT: netsim.Constant{D: 100 * time.Millisecond},
	}))
	fast := NewLinked(store, clk, netsim.NewLink(netsim.LinkConfig{
		RTT: netsim.Constant{D: time.Millisecond},
	}))

	measure := func(c Client) time.Duration {
		start := clk.Now()
		clk.Run(func() {
			if _, err := c.Put("b", "k", []byte("v")); err != nil {
				t.Error(err)
			}
			if _, _, err := c.Get("b", "k"); err != nil {
				t.Error(err)
			}
		})
		return clk.Now().Sub(start)
	}
	slowD := measure(slow)
	fastD := measure(fast)
	if slowD != 200*time.Millisecond {
		t.Fatalf("slow view elapsed = %v, want 200ms", slowD)
	}
	if fastD != 2*time.Millisecond {
		t.Fatalf("fast view elapsed = %v, want 2ms", fastD)
	}
}

func TestLinkedTransferCharged(t *testing.T) {
	clk := vclock.NewVirtual()
	store := NewStore()
	if err := store.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	c := NewLinked(store, clk, netsim.NewLink(netsim.LinkConfig{
		BandwidthBps: 1 << 20, // 1 MiB/s
	}))
	start := clk.Now()
	clk.Run(func() {
		if _, err := c.Put("b", "big", make([]byte, 1<<20)); err != nil {
			t.Error(err)
		}
	})
	if got := clk.Now().Sub(start); got != time.Second {
		t.Fatalf("upload time = %v, want 1s", got)
	}
}

func TestLinkedFailureInjection(t *testing.T) {
	clk := vclock.NewVirtual()
	store := NewStore()
	if err := store.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	c := NewLinked(store, clk, netsim.NewLink(netsim.LinkConfig{FailureProb: 1}))
	clk.Run(func() {
		if _, err := c.Put("b", "k", []byte("v")); !errors.Is(err, ErrRequestFailed) {
			t.Errorf("err = %v, want ErrRequestFailed", err)
		}
	})
	// The failed request must not have reached the inner store.
	if _, _, err := store.Get("b", "k"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("inner store has the object despite link failure: err=%v", err)
	}
}

func TestLinkedErrorsPassThrough(t *testing.T) {
	clk := vclock.NewVirtual()
	store := NewStore()
	c := NewLinked(store, clk, netsim.Loopback())
	clk.Run(func() {
		if _, _, err := c.Get("nobucket", "k"); !errors.Is(err, ErrNoSuchBucket) {
			t.Errorf("err = %v, want ErrNoSuchBucket", err)
		}
		if err := c.CreateBucket("b"); err != nil {
			t.Error(err)
		}
		if _, err := c.Head("b", "missing"); !errors.Is(err, ErrNoSuchKey) {
			t.Errorf("err = %v, want ErrNoSuchKey", err)
		}
		if _, err := c.List("b", "", "", 0); err != nil {
			t.Error(err)
		}
		ok, err := c.BucketExists("b")
		if err != nil || !ok {
			t.Errorf("exists = %v, %v", ok, err)
		}
		if err := c.Delete("b", "missing"); err != nil {
			t.Error(err)
		}
		if err := c.DeleteBucket("b"); err != nil {
			t.Error(err)
		}
	})
}

func TestLinkedAndRetryingListBuckets(t *testing.T) {
	clk := vclock.NewVirtual()
	store := NewStore()
	if err := store.CreateBucket("x"); err != nil {
		t.Fatal(err)
	}
	linked := NewLinked(store, clk, netsim.Loopback())
	retrying := NewRetrying(linked, clk, 2, time.Millisecond)
	clk.Run(func() {
		names, err := linked.ListBuckets()
		if err != nil || len(names) != 1 {
			t.Errorf("linked buckets = %v, %v", names, err)
		}
		names, err = retrying.ListBuckets()
		if err != nil || len(names) != 1 {
			t.Errorf("retrying buckets = %v, %v", names, err)
		}
	})
}
