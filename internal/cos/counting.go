package cos

import "sync/atomic"

// Counting wraps a Client and counts every request that passes through it,
// including the number of objects returned by LIST pages. It is the
// client-side twin of Store.Stats: where the store counts what the service
// served, Counting counts what one particular consumer asked for, which is
// what wait-path regression tests and the wait-path benchmark assert on.
// Wrapped below a retry layer it counts individual attempts (requests on
// the wire); wrapped above, logical operations.
//
// The counters double as the seed of an observability layer: an executor
// exposes its Counting view through Executor.StorageOps, so tooling can
// report per-client storage traffic without touching the store.
type Counting struct {
	inner Client

	putOps        atomic.Int64
	getOps        atomic.Int64
	headOps       atomic.Int64
	listOps       atomic.Int64
	deleteOps     atomic.Int64
	bucketOps     atomic.Int64
	objectsListed atomic.Int64
	bytesOut      atomic.Int64
	bytesIn       atomic.Int64
}

var _ Client = (*Counting)(nil)

// OpCounts is a point-in-time snapshot of a Counting client's counters.
type OpCounts struct {
	// PutOps..DeleteOps count object-level requests.
	PutOps, GetOps, HeadOps, ListOps, DeleteOps int64
	// BucketOps counts bucket-level requests (create/delete/exists/list).
	BucketOps int64
	// ObjectsListed is the total number of object entries returned across
	// every LIST page — the quantity an incremental sweep keeps O(new
	// completions) where a full re-list pays O(total) per poll.
	ObjectsListed int64
	// BytesOut is the total payload bytes sent in PUT requests; BytesIn is
	// the total body bytes received from successful GET/GetRange responses.
	// Listing and metadata traffic is not included — the counters track
	// object data moved, the quantity a placement change shifts between
	// regions.
	BytesOut, BytesIn int64
}

// NewCounting wraps inner with request counters.
func NewCounting(inner Client) *Counting {
	return &Counting{inner: inner}
}

// Counts returns a snapshot of the counters.
func (c *Counting) Counts() OpCounts {
	return OpCounts{
		PutOps:        c.putOps.Load(),
		GetOps:        c.getOps.Load(),
		HeadOps:       c.headOps.Load(),
		ListOps:       c.listOps.Load(),
		DeleteOps:     c.deleteOps.Load(),
		BucketOps:     c.bucketOps.Load(),
		ObjectsListed: c.objectsListed.Load(),
		BytesOut:      c.bytesOut.Load(),
		BytesIn:       c.bytesIn.Load(),
	}
}

// CreateBucket implements Client.
func (c *Counting) CreateBucket(bucket string) error {
	c.bucketOps.Add(1)
	return c.inner.CreateBucket(bucket)
}

// DeleteBucket implements Client.
func (c *Counting) DeleteBucket(bucket string) error {
	c.bucketOps.Add(1)
	return c.inner.DeleteBucket(bucket)
}

// BucketExists implements Client.
func (c *Counting) BucketExists(bucket string) (bool, error) {
	c.bucketOps.Add(1)
	return c.inner.BucketExists(bucket)
}

// Put implements Client.
func (c *Counting) Put(bucket, key string, data []byte) (ObjectMeta, error) {
	c.putOps.Add(1)
	c.bytesOut.Add(int64(len(data)))
	return c.inner.Put(bucket, key, data)
}

// Get implements Client.
func (c *Counting) Get(bucket, key string) ([]byte, ObjectMeta, error) {
	c.getOps.Add(1)
	data, meta, err := c.inner.Get(bucket, key)
	if err == nil {
		c.bytesIn.Add(int64(len(data)))
	}
	return data, meta, err
}

// GetRange implements Client.
func (c *Counting) GetRange(bucket, key string, offset, length int64) ([]byte, ObjectMeta, error) {
	c.getOps.Add(1)
	data, meta, err := c.inner.GetRange(bucket, key, offset, length)
	if err == nil {
		c.bytesIn.Add(int64(len(data)))
	}
	return data, meta, err
}

// Head implements Client.
func (c *Counting) Head(bucket, key string) (ObjectMeta, error) {
	c.headOps.Add(1)
	return c.inner.Head(bucket, key)
}

// List implements Client.
func (c *Counting) List(bucket, prefix, marker string, maxKeys int) (ListResult, error) {
	c.listOps.Add(1)
	res, err := c.inner.List(bucket, prefix, marker, maxKeys)
	if err == nil {
		c.objectsListed.Add(int64(len(res.Objects)))
	}
	return res, err
}

// ListBuckets implements Client.
func (c *Counting) ListBuckets() ([]string, error) {
	c.bucketOps.Add(1)
	return c.inner.ListBuckets()
}

// Delete implements Client.
func (c *Counting) Delete(bucket, key string) error {
	c.deleteOps.Add(1)
	return c.inner.Delete(bucket, key)
}
