package cos

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"gowren/internal/vclock"
)

// flaky is a Client stub failing the first failuresLeft calls of each op.
type flaky struct {
	Client
	failuresLeft atomic.Int64
	calls        atomic.Int64
}

func (f *flaky) Get(bucket, key string) ([]byte, ObjectMeta, error) {
	f.calls.Add(1)
	if f.failuresLeft.Add(-1) >= 0 {
		return nil, ObjectMeta{}, ErrRequestFailed
	}
	return f.Client.Get(bucket, key)
}

func (f *flaky) Put(bucket, key string, data []byte) (ObjectMeta, error) {
	f.calls.Add(1)
	if f.failuresLeft.Add(-1) >= 0 {
		return ObjectMeta{}, ErrRequestFailed
	}
	return f.Client.Put(bucket, key, data)
}

func TestRetryingRecoversTransientFailures(t *testing.T) {
	clk := vclock.NewVirtual()
	store := NewStore()
	if err := store.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	fl := &flaky{Client: store}
	fl.failuresLeft.Store(2)
	r := NewRetrying(fl, clk, 4, 50*time.Millisecond)
	start := clk.Now()
	clk.Run(func() {
		if _, err := r.Put("b", "k", []byte("v")); err != nil {
			t.Errorf("put after retries: %v", err)
		}
	})
	// Two failures → two backoffs of 50ms each.
	if got := clk.Now().Sub(start); got != 100*time.Millisecond {
		t.Fatalf("backoff time = %v, want 100ms", got)
	}
}

func TestRetryingGivesUpEventually(t *testing.T) {
	clk := vclock.NewVirtual()
	store := NewStore()
	fl := &flaky{Client: store}
	fl.failuresLeft.Store(1000)
	r := NewRetrying(fl, clk, 3, 10*time.Millisecond)
	clk.Run(func() {
		if _, _, err := r.Get("b", "k"); !errors.Is(err, ErrRequestFailed) {
			t.Errorf("err = %v, want ErrRequestFailed after exhausting retries", err)
		}
	})
	if got := fl.calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}

func TestRetryingPassesThroughPermanentErrors(t *testing.T) {
	clk := vclock.NewVirtual()
	store := NewStore()
	if err := store.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	fl := &flaky{Client: store} // no failures armed
	r := NewRetrying(fl, clk, 5, time.Millisecond)
	clk.Run(func() {
		if _, _, err := r.Get("b", "missing"); !errors.Is(err, ErrNoSuchKey) {
			t.Errorf("err = %v, want ErrNoSuchKey without retries", err)
		}
	})
	if got := fl.calls.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry on permanent error)", got)
	}
}

func TestRetryingHonorsSmallExplicitValues(t *testing.T) {
	// attempts == 1 is a caller choice meaning "no retries" and must not
	// be rewritten to the default.
	clk := vclock.NewVirtual()
	store := NewStore()
	fl := &flaky{Client: store}
	fl.failuresLeft.Store(1000)
	r := NewRetrying(fl, clk, 1, time.Millisecond)
	clk.Run(func() {
		if _, _, err := r.Get("b", "k"); !errors.Is(err, ErrRequestFailed) {
			t.Errorf("err = %v, want ErrRequestFailed", err)
		}
	})
	if got := fl.calls.Load(); got != 1 {
		t.Fatalf("attempts = %d, want exactly 1", got)
	}
}

func TestRetryingZeroValuesSelectDefaults(t *testing.T) {
	clk := vclock.NewVirtual()
	store := NewStore()
	fl := &flaky{Client: store}
	fl.failuresLeft.Store(1000)
	r := NewRetrying(fl, clk, 0, 0)
	start := clk.Now()
	clk.Run(func() {
		if _, _, err := r.Get("b", "k"); !errors.Is(err, ErrRequestFailed) {
			t.Errorf("err = %v, want ErrRequestFailed", err)
		}
	})
	if got := fl.calls.Load(); got != DefaultRetryAttempts {
		t.Fatalf("attempts = %d, want DefaultRetryAttempts (%d)", got, DefaultRetryAttempts)
	}
	want := time.Duration(DefaultRetryAttempts-1) * DefaultRetryBackoff
	if got := clk.Now().Sub(start); got != want {
		t.Fatalf("backoff time = %v, want %v", got, want)
	}
}

func TestRetryingCoversAllOps(t *testing.T) {
	clk := vclock.NewVirtual()
	store := NewStore()
	r := NewRetrying(store, clk, 2, time.Millisecond)
	clk.Run(func() {
		if err := r.CreateBucket("b"); err != nil {
			t.Error(err)
		}
		if ok, err := r.BucketExists("b"); err != nil || !ok {
			t.Errorf("exists = %v, %v", ok, err)
		}
		if _, err := r.Put("b", "k", []byte("v")); err != nil {
			t.Error(err)
		}
		if _, _, err := r.GetRange("b", "k", 0, 1); err != nil {
			t.Error(err)
		}
		if _, err := r.Head("b", "k"); err != nil {
			t.Error(err)
		}
		if _, err := r.List("b", "", "", 0); err != nil {
			t.Error(err)
		}
		if err := r.Delete("b", "k"); err != nil {
			t.Error(err)
		}
		if err := r.DeleteBucket("b"); err != nil {
			t.Error(err)
		}
	})
}
