package cos

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// The sorted key index must be observationally identical to the old
// sort-per-call listing. These tests drive both paths — the indexed Store
// and one built WithNaiveListing — through the same operation sequences and
// compare every page.

func newIndexPair(t *testing.T, bucketName string) (indexed, naive *Store) {
	t.Helper()
	indexed = NewStore()
	naive = NewStore(WithNaiveListing())
	for _, s := range []*Store{indexed, naive} {
		if err := s.CreateBucket(bucketName); err != nil {
			t.Fatalf("create bucket: %v", err)
		}
	}
	return indexed, naive
}

// pageShape is the part of a ListResult both stores must agree on. The two
// stores stamp objects with their own wall-clock LastModified, so metadata
// is compared by key, not byte for byte.
type pageShape struct {
	Keys        []string
	IsTruncated bool
	NextMarker  string
}

func shapeOf(res ListResult) pageShape {
	p := pageShape{IsTruncated: res.IsTruncated, NextMarker: res.NextMarker}
	for _, obj := range res.Objects {
		p.Keys = append(p.Keys, obj.Key)
	}
	return p
}

// listPages drains a full listing page by page with the given page size.
func listPages(t *testing.T, s *Store, bucketName, prefix string, pageSize int) []string {
	t.Helper()
	var keys []string
	marker := ""
	for {
		res, err := s.List(bucketName, prefix, marker, pageSize)
		if err != nil {
			t.Fatalf("list: %v", err)
		}
		for _, obj := range res.Objects {
			keys = append(keys, obj.Key)
		}
		if !res.IsTruncated {
			return keys
		}
		marker = res.NextMarker
	}
}

// TestIndexInsertDeleteInterleavings drives put/delete/overwrite
// interleavings, including re-inserting deleted keys, and checks the index
// path lists exactly what the naive path does after every step.
func TestIndexInsertDeleteInterleavings(t *testing.T) {
	indexed, naive := newIndexPair(t, "b")
	steps := []struct {
		op  string // "put" or "del"
		key string
	}{
		{"put", "m"},
		{"put", "c"},
		{"put", "x"},
		{"put", "c"}, // overwrite: no duplicate index entry
		{"del", "m"},
		{"del", "m"}, // delete of absent key: no-op
		{"put", "m"}, // re-insert a deleted key
		{"put", "a"},
		{"del", "x"},
		{"put", "x"},
		{"del", "a"},
		{"del", "c"},
		{"put", "b"},
	}
	for i, st := range steps {
		for _, s := range []*Store{indexed, naive} {
			var err error
			switch st.op {
			case "put":
				_, err = s.Put("b", st.key, []byte(st.key))
			case "del":
				err = s.Delete("b", st.key)
			}
			if err != nil {
				t.Fatalf("step %d %s %q: %v", i, st.op, st.key, err)
			}
		}
		got := listPages(t, indexed, "b", "", 2)
		want := listPages(t, naive, "b", "", 2)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("after step %d (%s %q): indexed %v, naive %v", i, st.op, st.key, got, want)
		}
	}
}

// TestIndexListFromResume checks marker resume at an exact existing key and
// at keys that are absent (deleted between pages, or never present).
func TestIndexListFromResume(t *testing.T) {
	indexed, naive := newIndexPair(t, "b")
	for i := 0; i < 10; i += 2 { // even keys only: key-0, key-2, ...
		key := fmt.Sprintf("key-%d", i)
		for _, s := range []*Store{indexed, naive} {
			if _, err := s.Put("b", key, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	markers := []string{
		"",      // from the start
		"key-4", // exact existing key: resume strictly after it
		"key-3", // absent key between neighbors
		"a",     // before every key
		"key-9", // after every key (empty page, not truncated)
	}
	for _, marker := range markers {
		for _, prefix := range []string{"", "key-", "nope-"} {
			got, gerr := indexed.List("b", prefix, marker, 2)
			want, werr := naive.List("b", prefix, marker, 2)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("marker %q prefix %q: errors diverge: %v vs %v", marker, prefix, gerr, werr)
			}
			if !reflect.DeepEqual(shapeOf(got), shapeOf(want)) {
				t.Fatalf("marker %q prefix %q: indexed %+v, naive %+v", marker, prefix, shapeOf(got), shapeOf(want))
			}
		}
	}
}

// TestIndexTombstoneInterleavings exercises the linked tombstone layer over
// both listing paths: deletes there write tombstone objects into the same
// bucket, a foreign-writer pattern the index must track like any other key.
func TestIndexTombstoneInterleavings(t *testing.T) {
	indexed, naive := newIndexPair(t, "b")
	ops := func(s *Store) []string {
		if err := s.Delete("b", "ghost"); err != nil {
			t.Fatal(err)
		}
		for _, k := range []string{"a", "a.tomb", "b", "b.tomb"} {
			if _, err := s.Put("b", k, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Delete("b", "a.tomb"); err != nil {
			t.Fatal(err)
		}
		return listPages(t, s, "b", "", 3)
	}
	got, want := ops(indexed), ops(naive)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tombstone interleaving: indexed %v, naive %v", got, want)
	}
}

// TestIndexRandomizedEquivalence fuzzes both paths with the same seeded
// operation stream over a small key universe (to force collisions,
// overwrites and re-inserts) and compares listings with random prefixes,
// markers and page sizes after every operation.
func TestIndexRandomizedEquivalence(t *testing.T) {
	indexed, naive := newIndexPair(t, "b")
	rng := rand.New(rand.NewSource(42))
	universe := make([]string, 40)
	for i := range universe {
		universe[i] = fmt.Sprintf("%c%02d", 'a'+byte(i%4), rng.Intn(20))
	}
	for step := 0; step < 800; step++ {
		key := universe[rng.Intn(len(universe))]
		if rng.Intn(3) == 0 {
			for _, s := range []*Store{indexed, naive} {
				if err := s.Delete("b", key); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for _, s := range []*Store{indexed, naive} {
				if _, err := s.Put("b", key, []byte{byte(step)}); err != nil {
					t.Fatal(err)
				}
			}
		}
		prefix := ""
		if rng.Intn(2) == 0 {
			prefix = string([]byte{'a' + byte(rng.Intn(5))})
		}
		marker := ""
		if rng.Intn(2) == 0 {
			marker = universe[rng.Intn(len(universe))]
		}
		pageSize := 1 + rng.Intn(7)
		got, gerr := indexed.List("b", prefix, marker, pageSize)
		want, werr := naive.List("b", prefix, marker, pageSize)
		if gerr != nil || werr != nil {
			t.Fatalf("step %d: list errors %v / %v", step, gerr, werr)
		}
		if !reflect.DeepEqual(shapeOf(got), shapeOf(want)) {
			t.Fatalf("step %d (prefix %q marker %q page %d): indexed %+v, naive %+v",
				step, prefix, marker, pageSize, shapeOf(got), shapeOf(want))
		}
	}
}
