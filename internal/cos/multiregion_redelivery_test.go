package cos

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"gowren/internal/vclock"
)

// failNPuts fails the first n object Puts against the wrapped client with a
// transient error — a region that stays flaky for a bounded stretch, unlike
// flakyRegion's manual down switch (which races against the catch-up worker
// under the virtual clock).
type failNPuts struct {
	Client
	left atomic.Int64
}

func (f *failNPuts) Put(bucket, key string, data []byte) (ObjectMeta, error) {
	if f.left.Add(-1) >= 0 {
		return ObjectMeta{}, ErrRequestFailed
	}
	return f.Client.Put(bucket, key, data)
}

func redeliveryRegions(t *testing.T, clk vclock.Clock, budget int) (*MultiRegion, *failNPuts, *Store) {
	t.Helper()
	sa, sb := NewStore(), NewStore()
	fb := &failNPuts{Client: sb}
	m, err := NewMultiRegion([]RegionBackend{
		{Name: "us-south", Client: sa},
		{Name: "eu-gb", Client: fb},
	}, WithAsyncReplication(clk, 0), WithReplicationRedelivery(budget))
	if err != nil {
		t.Fatal(err)
	}
	return m, fb, sb
}

func TestAsyncRedeliveryLandsThroughFlakiness(t *testing.T) {
	// With the default budget of 3 a catch-up write survives two transient
	// failures: redelivered twice with exponential backoff, landed on the
	// third attempt, ledger closed with nothing dropped.
	clk := vclock.NewVirtual()
	m, fb, sb := redeliveryRegions(t, clk, DefaultReplicationRedeliveryBudget)
	fb.left.Store(2)
	start := clk.Now()
	clk.Run(func() {
		if err := m.CreateBucket("b"); err != nil {
			t.Error(err)
			return
		}
		if _, err := m.Put("b", "k", []byte("v1")); err != nil {
			t.Error(err)
			return
		}
		if !m.Drain(time.Time{}) {
			t.Error("drain did not complete")
		}
	})
	if got, _, err := sb.Get("b", "k"); err != nil || !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("flaky region after drain: %q, %v", got, err)
	}
	st := m.Stats()
	if st.AsyncQueued != 1 || st.AsyncReplicated != 1 || st.AsyncDropped != 0 {
		t.Fatalf("stats = %+v, want 1 queued, 1 replicated, 0 dropped", st)
	}
	if st.AsyncRedelivered != 2 || st.WriteMisses != 2 {
		t.Fatalf("stats = %+v, want 2 redeliveries and 2 write misses", st)
	}
	// The two backoffs (50ms, then 100ms) must have elapsed on the clock.
	if got := clk.Now().Sub(start); got < 150*time.Millisecond {
		t.Fatalf("drain finished after %v, want ≥ 150ms of backoff", got)
	}
}

func TestAsyncRedeliveryBudgetOneDropsImmediately(t *testing.T) {
	// Budget 1 restores the old single-attempt behavior: the first failure
	// drops the task, the replica stays stale until read-repair.
	clk := vclock.NewVirtual()
	m, fb, sb := redeliveryRegions(t, clk, 1)
	fb.left.Store(1)
	clk.Run(func() {
		if err := m.CreateBucket("b"); err != nil {
			t.Error(err)
			return
		}
		if _, err := m.Put("b", "k", []byte("v1")); err != nil {
			t.Error(err)
			return
		}
		if !m.Drain(time.Time{}) {
			t.Error("drain did not complete")
		}
		if _, _, err := sb.Get("b", "k"); !errors.Is(err, ErrNoSuchKey) {
			t.Errorf("dropped catch-up still landed: err = %v", err)
		}
		st := m.Stats()
		if st.AsyncQueued != 1 || st.AsyncDropped != 1 || st.AsyncRedelivered != 0 {
			t.Errorf("stats = %+v, want 1 queued, 1 dropped, 0 redelivered", st)
		}
		// Read-repair remains the backstop for the stale replica.
		if got, _, err := m.Get("b", "k"); err != nil || !bytes.Equal(got, []byte("v1")) {
			t.Errorf("facade read: %q, %v", got, err)
		}
	})
	if got, _, err := sb.Get("b", "k"); err != nil || !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("read-repair did not land: %q, %v", got, err)
	}
}
