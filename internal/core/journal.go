package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gowren/internal/cos"
	"gowren/internal/wire"
)

// Durable job journal and driver lease. In the PyWren model the client
// process is the orchestrator, so a crashed driver used to lose the job even
// though every payload, status, and result object was already durable. The
// journal closes that gap: at first launch the executor writes a job
// manifest plus a driver lease under its COS namespace, and every recovery
// event (launches, respawns, dead letters, replays) appends a journal
// record. AttachExecutor (attach.go) rebuilds the whole job from those
// objects alone.
//
// The lease is the fencing mechanism: a tiny object written only through
// conditional puts (cos.Conditional). The driver caches the lease ETag it
// last wrote; every mutation of job state re-asserts ownership by CAS-ing a
// renewal against that ETag. A resuming driver takes over by CAS-bumping the
// epoch, which changes the ETag — the old driver's next renewal then fails
// with ErrPreconditionFailed and it fences itself off with ErrFenced. Read
// paths (status sweeps, result collection) are deliberately unfenced: a
// superseded driver observing the job complete is harmless.

// ErrFenced reports a job-state mutation rejected because a newer driver
// holds the job's lease (a later epoch). The superseded driver may keep
// reading results but must not respawn, dead-letter, or replay calls.
var ErrFenced = errors.New("core: driver lease fenced by a newer driver")

// leaseRenewInterval is how often a driver blocked in result collection
// refreshes its lease timestamp, keeping the job visibly owned so the
// orphan GC (CleanAbandoned) does not collect a live job. TTLs passed to
// CleanAbandoned should comfortably exceed this.
const leaseRenewInterval = 30 * time.Second

// jobJournal is the executor's journaling state. Critical sections under mu
// are short and never touch storage (storage calls sleep on the clock);
// the storage operations themselves run outside the lock, which is safe
// because executors are driven by a single task at a time.
type jobJournal struct {
	mu        sync.Mutex
	started   bool // manifest written, lease held
	disabled  bool // Config.DisableJournal, or storage without conditional put
	fenced    bool // a conditional renewal failed; a newer driver owns the job
	epoch     uint64
	seq       int    // next journal record sequence within this epoch
	leaseETag string // ETag of the lease body this driver last wrote
	lastRenew time.Time
}

// journalStart lazily writes the job manifest and acquires the epoch-1
// driver lease, once per executor, before the first launch stages anything.
// Storage stacks without conditional-put support (e.g. the HTTP transport)
// switch journaling off permanently instead of failing the job.
func (e *Executor) journalStart() error {
	j := &e.journal
	j.mu.Lock()
	if e.cfg.DisableJournal {
		j.disabled = true
	}
	if j.started || j.disabled {
		j.mu.Unlock()
		return nil
	}
	j.mu.Unlock()

	meta := e.cfg.Platform.MetaBucket()
	man := wire.JobManifest{
		JobID:         e.id,
		MetaBucket:    meta,
		Runtime:       e.cfg.RuntimeImage,
		Seed:          e.cfg.Platform.Seed(),
		CreatedUnixNs: e.clock.Now().UnixNano(),
	}
	if err := e.putWithRetry(meta, manifestKey(e.id), wire.MustMarshal(man)); err != nil {
		return fmt.Errorf("core: write job manifest: %w", err)
	}
	lease := wire.DriverLease{JobID: e.id, Epoch: 1, RenewedUnixNs: e.clock.Now().UnixNano()}
	var lm cos.ObjectMeta
	err := e.storageRetry.Do(func() error {
		var err error
		lm, err = cos.PutIf(e.cfg.Storage, meta, leaseKey(e.id), wire.MustMarshal(lease), "")
		return err
	})
	switch {
	case errors.Is(err, cos.ErrConditionalUnsupported):
		j.mu.Lock()
		j.disabled = true
		j.mu.Unlock()
		return nil
	case errors.Is(err, cos.ErrPreconditionFailed):
		// A lease already exists under this executor's ID — only possible
		// when an attached driver races the original on a shared ID.
		return fmt.Errorf("core: job %s already has a driver lease: %w", e.id, ErrFenced)
	case err != nil:
		return fmt.Errorf("core: acquire driver lease: %w", err)
	}
	j.mu.Lock()
	j.started = true
	j.epoch = 1
	j.leaseETag = lm.ETag
	j.lastRenew = e.clock.Now()
	j.mu.Unlock()
	return nil
}

// renewLease re-asserts lease ownership with a conditional put against the
// ETag this driver last wrote. It is the fencing checkpoint every job-state
// mutation (Respawn, dead-letter persistence, replay) passes through first:
// a failed precondition means a newer driver bumped the epoch, and this
// driver permanently fences itself off. With journaling disabled or not yet
// started it is a no-op.
func (e *Executor) renewLease() error {
	j := &e.journal
	j.mu.Lock()
	if !j.started || j.disabled {
		j.mu.Unlock()
		return nil
	}
	if j.fenced {
		j.mu.Unlock()
		return fmt.Errorf("core: job %s: %w", e.id, ErrFenced)
	}
	epoch := j.epoch
	etag := j.leaseETag
	j.mu.Unlock()

	meta := e.cfg.Platform.MetaBucket()
	lease := wire.DriverLease{JobID: e.id, Epoch: epoch, RenewedUnixNs: e.clock.Now().UnixNano()}
	var lm cos.ObjectMeta
	err := e.storageRetry.Do(func() error {
		var err error
		lm, err = cos.PutIf(e.cfg.Storage, meta, leaseKey(e.id), wire.MustMarshal(lease), etag)
		return err
	})
	switch {
	case errors.Is(err, cos.ErrPreconditionFailed):
		j.mu.Lock()
		j.fenced = true
		j.mu.Unlock()
		return fmt.Errorf("core: job %s: %w", e.id, ErrFenced)
	case err != nil:
		// Transient storage trouble is not a fence; the mutation the caller
		// was about to make would have hit the same trouble.
		return fmt.Errorf("core: renew driver lease: %w", err)
	}
	j.mu.Lock()
	j.leaseETag = lm.ETag
	j.lastRenew = e.clock.Now()
	j.mu.Unlock()
	return nil
}

// maybeRenewLease renews the lease once leaseRenewInterval has elapsed. The
// wait path calls it each poll so a driver blocked in a long collection
// keeps its job visibly owned. Failures are not fatal here: waiting and
// reading results is allowed even for a superseded driver, and mutations
// re-check through renewLease themselves.
func (e *Executor) maybeRenewLease() {
	j := &e.journal
	j.mu.Lock()
	due := j.started && !j.disabled && !j.fenced && e.clock.Now().Sub(j.lastRenew) >= leaseRenewInterval
	j.mu.Unlock()
	if due {
		_ = e.renewLease() //gowren:allow errsink — advisory on the read path; every mutation re-checks the lease itself
	}
}

// appendJournal writes one journal record under the job's journal prefix.
// The record key embeds (epoch, seq) zero-padded, so replay order is plain
// key order and a stale driver's records sort strictly before the epochs
// that superseded it. Appends are best-effort: the journal is redundancy
// over the durable per-call objects — losing a record degrades what a later
// Attach can reconstruct, never the correctness of the running job.
func (e *Executor) appendJournal(kind string, mut func(*wire.JournalRecord)) {
	j := &e.journal
	j.mu.Lock()
	if !j.started || j.disabled || j.fenced {
		j.mu.Unlock()
		return
	}
	epoch := j.epoch
	seq := j.seq
	j.seq++
	j.mu.Unlock()

	rec := wire.JournalRecord{Epoch: epoch, Seq: seq, Kind: kind, AtUnixNs: e.clock.Now().UnixNano()}
	if mut != nil {
		mut(&rec)
	}
	meta := e.cfg.Platform.MetaBucket()
	_ = e.putWithRetry(meta, journalKey(e.id, epoch, seq), wire.MustMarshal(rec)) //gowren:allow errsink — journal records are advisory redundancy over durable call objects
}

// journalCalls builds the per-call entries of a launch record. actIDs is
// index-aligned with payloads when known (direct invocation) and nil under
// spawner fan-out, mirroring launch().
func journalCalls(payloads []*wire.CallPayload, actIDs []string) []wire.JournalCall {
	calls := make([]wire.JournalCall, len(payloads))
	for i, p := range payloads {
		calls[i] = wire.JournalCall{CallID: p.CallID, Region: p.Region}
		if actIDs != nil {
			calls[i].ActivationID = actIDs[i]
		}
	}
	return calls
}
