package core

import (
	"errors"
	"testing"

	"gowren/internal/cos"
	"gowren/internal/netsim"
	"gowren/internal/wire"
)

// attachConfig builds a fresh driver config against the same platform — the
// storage stack a second process would assemble before AttachExecutor.
func (e *env) attachConfig() Config {
	return Config{
		Platform: e.platform,
		Storage:  cos.NewLinked(e.store, e.clk, netsim.Loopback()),
	}
}

func TestAttachResumesInFlightJob(t *testing.T) {
	e := newEnv(t, nil)
	exec1 := e.executor(t, nil)
	var results []int
	e.clk.Run(func() {
		futs, err := exec1.Map("busy", []any{5, 5, 5})
		if err != nil {
			t.Error(err)
			return
		}
		// The driver dies right after launch: all in-memory state is
		// abandoned, the activations keep running in the cloud.
		exec2, err := AttachExecutor(e.attachConfig(), exec1.ID())
		if err != nil {
			t.Errorf("attach: %v", err)
			return
		}
		if exec2.ID() != exec1.ID() {
			t.Errorf("attached executor id = %s, want %s", exec2.ID(), exec1.ID())
		}
		raws, err := exec2.GetResult(GetResultOptions{})
		if err != nil {
			t.Errorf("get result after attach: %v", err)
			return
		}
		results = decodeInts(t, raws)
		// The dead driver is fenced: its next job-state mutation fails.
		if err := exec1.Respawn(futs[:1]); !errors.Is(err, ErrFenced) {
			t.Errorf("old driver respawn err = %v, want ErrFenced", err)
		}
	})
	want := []int{5, 5, 5}
	if len(results) != len(want) {
		t.Fatalf("results = %v, want %v", results, want)
	}
	for i := range want {
		if results[i] != want[i] {
			t.Fatalf("results = %v, want %v", results, want)
		}
	}
}

func TestAttachUnknownJobFails(t *testing.T) {
	e := newEnv(t, nil)
	e.clk.Run(func() {
		if _, err := AttachExecutor(e.attachConfig(), "no-such-job"); err == nil {
			t.Error("attach to unknown job succeeded")
		}
	})
}

func TestPlaceCallAvoidingPicksAnotherRegion(t *testing.T) {
	sa, sb, sc := cos.NewStore(), cos.NewStore(), cos.NewStore()
	multi, err := cos.NewMultiRegion([]cos.RegionBackend{
		{Name: "us-south", Client: sa},
		{Name: "eu-gb", Client: sb},
		{Name: "ap-jp", Client: sc},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := newEnv(t, func(cfg *PlatformConfig) { cfg.Store, cfg.Backend = sa, multi })
	p := e.platform
	for _, id := range []string{"00000", "00007", "00042"} {
		home := p.PlaceCall(id)
		moved := p.PlaceCallAvoiding(id, home)
		if moved == home || moved == "" {
			t.Fatalf("avoid(%s, %s) = %q, want a different region", id, home, moved)
		}
		if again := p.PlaceCallAvoiding(id, home); again != moved {
			t.Fatalf("avoid(%s, %s) not deterministic: %q then %q", id, home, moved, again)
		}
		// No avoid constraint degenerates to the plain placement.
		if got := p.PlaceCallAvoiding(id, ""); got != home {
			t.Fatalf("avoid(%s, \"\") = %q, want PlaceCall's %q", id, got, home)
		}
	}
}

func TestAntiAffinityRespawnMovesHomeRegion(t *testing.T) {
	sa, sb := cos.NewStore(), cos.NewStore()
	multi, err := cos.NewMultiRegion([]cos.RegionBackend{
		{Name: "us-south", Client: sa},
		{Name: "eu-gb", Client: sb},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := newEnv(t, func(cfg *PlatformConfig) { cfg.Store, cfg.Backend = sa, multi })
	exec := e.executor(t, func(cfg *Config) {
		cfg.Storage = cos.NewLinked(multi, e.clk, netsim.Loopback())
		cfg.AntiAffinityRespawn = true
	})
	meta := e.platform.MetaBucket()
	readRegion := func(callID string) string {
		t.Helper()
		data, _, err := multi.Get(meta, payloadKey(exec.ID(), callID))
		if err != nil {
			t.Fatalf("read payload %s: %v", callID, err)
		}
		var p wire.CallPayload
		if err := wire.Unmarshal(data, &p); err != nil {
			t.Fatal(err)
		}
		return p.Region
	}
	e.clk.Run(func() {
		futs, err := exec.Map("add7", []any{1})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.GetResult(GetResultOptions{}); err != nil {
			t.Error(err)
			return
		}
		callID := futs[0].callID
		before := readRegion(callID)
		if before == "" {
			t.Error("placed call has no home region")
			return
		}
		if err := exec.Respawn(futs); err != nil {
			t.Errorf("respawn: %v", err)
			return
		}
		after := readRegion(callID)
		if after == before {
			t.Errorf("respawn kept home region %q with anti-affinity on", before)
		}
		if want := e.platform.PlaceCallAvoiding(callID, before); after != want {
			t.Errorf("respawn home = %q, want PlaceCallAvoiding's %q", after, want)
		}
		if _, err := exec.GetResult(GetResultOptions{}); err != nil {
			t.Errorf("get result after moved respawn: %v", err)
		}
	})
}
