package core

import (
	"sync"
	"time"

	"gowren/internal/vclock"
)

// parallelFor runs fn(0..n-1) on a pool of worker tasks registered with the
// clock and blocks (in simulated time) until every call finishes. Errors are
// collected per index; the returned slice is nil when all calls succeed.
// fn must follow the virtual-clock rules: block only via clock primitives.
func parallelFor(clk vclock.Clock, workers, n int, fn func(i int) error) []error {
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	var (
		mu      sync.Mutex
		next    int
		done    int
		errs    []error
		errsSet bool
	)
	// Workers signal each completion; the caller blocks until the count
	// reaches n instead of polling the clock every simulated millisecond.
	evt := vclock.NewEvent(clk)
	for w := 0; w < workers; w++ {
		clk.Go(func() {
			for {
				mu.Lock()
				if next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				err := fn(i)

				mu.Lock()
				if err != nil {
					if !errsSet {
						errs = make([]error, n)
						errsSet = true
					}
					errs[i] = err
				}
				done++
				mu.Unlock()
				evt.Signal()
			}
		})
	}
	evt.WaitFor(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return done == n
	}, time.Time{})

	mu.Lock()
	defer mu.Unlock()
	return errs
}

// firstErr returns the first non-nil error in errs, or nil.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// serial models a resource that admits one holder at a time — the analogue
// of the Python client's GIL-bound serialization work, which is what keeps
// WAN invocation rates far below what the thread count suggests (§5.1).
// Acquire reserves the next slot and sleeps until the hold completes.
type serial struct {
	clk vclock.Clock

	mu   sync.Mutex
	next time.Time
}

func newSerial(clk vclock.Clock) *serial {
	return &serial{clk: clk}
}

// Acquire reserves hold time on the resource and blocks until it has been
// consumed. A non-positive hold returns immediately.
func (s *serial) Acquire(hold time.Duration) {
	if hold <= 0 {
		return
	}
	s.mu.Lock()
	now := s.clk.Now()
	start := s.next
	if start.Before(now) {
		start = now
	}
	end := start.Add(hold)
	s.next = end
	s.mu.Unlock()
	s.clk.Sleep(end.Sub(now))
}
