package core

import (
	"fmt"

	"gowren/internal/cos"
	"gowren/internal/wire"
)

// Dead-letter persistence and replay. The in-memory dead-letter list
// (recover.go) tells the caller which calls automatic recovery abandoned;
// this file makes those records durable and actionable. Every dead letter
// is also written to the meta bucket next to the job's staged payloads, and
// ReplayDeadLetters re-stages the abandoned calls as a brand-new job — the
// operational loop a real deployment runs after an outage: wait for the
// platform to heal, then replay what was parked.

// persistDeadLetter writes d to the meta bucket, best-effort: the call is
// already parked in memory, and a storage plane unhealthy enough to reject
// this write is usually the reason the call dead-lettered in the first
// place. The record is overwritten if the same call dead-letters again.
// Persisting is a job-state mutation, so it passes the lease checkpoint
// first: a fenced driver must not write durable records the job's new
// driver may already have replayed or recovered past.
func (e *Executor) persistDeadLetter(d DeadLetter) {
	if err := e.renewLease(); err != nil {
		return
	}
	body, err := wire.Marshal(d)
	if err != nil {
		return
	}
	_ = e.putWithRetry(e.cfg.Platform.MetaBucket(), deadLetterKey(d.ExecutorID, d.CallID), body)
	e.appendJournal(wire.JournalDeadLetter, func(rec *wire.JournalRecord) {
		rec.Calls = []wire.JournalCall{{CallID: d.CallID}}
	})
}

// PersistedDeadLetters loads the dead-letter records of this executor from
// the meta bucket, in key (call ID) order.
func (e *Executor) PersistedDeadLetters() ([]DeadLetter, error) {
	meta := e.cfg.Platform.MetaBucket()
	listed, err := cos.ListAll(e.cfg.Storage, meta, fmt.Sprintf("jobs/%s/%s/", e.id, deadLetterPrefix))
	if err != nil {
		return nil, fmt.Errorf("core: list dead letters: %w", err)
	}
	out := make([]DeadLetter, 0, len(listed))
	for _, obj := range listed {
		data, err := e.getWithRetry(meta, obj.Key)
		if err != nil {
			return nil, fmt.Errorf("core: load dead letter %s: %w", obj.Key, err)
		}
		var d DeadLetter
		if err := wire.Unmarshal(data, &d); err != nil {
			return nil, fmt.Errorf("core: decode dead letter %s: %w", obj.Key, err)
		}
		out = append(out, d)
	}
	return out, nil
}

// ReplayDeadLetters re-stages every dead-lettered call as a new job on this
// executor: the original staged payloads are fetched, re-keyed under fresh
// call IDs, staged, and invoked like any other job, so the replay gets the
// full machinery — retries, recovery, speculation — from scratch. On
// success the executor's dead-letter list is cleared, the persisted records
// are deleted, and the new futures are returned, tracked in place of the
// dead originals (which are untracked, so the next GetResult collects each
// replayed call exactly once). With no dead letters it returns (nil, nil).
// On error the dead-letter list is left intact for a later retry.
func (e *Executor) ReplayDeadLetters() ([]*Future, error) {
	e.mu.Lock()
	letters := e.deadLetters
	e.deadLetters = nil
	e.mu.Unlock()
	if len(letters) == 0 {
		return nil, nil
	}
	restore := func() {
		e.mu.Lock()
		e.deadLetters = append(letters, e.deadLetters...)
		e.mu.Unlock()
	}

	meta := e.cfg.Platform.MetaBucket()
	payloads := make([]*wire.CallPayload, len(letters))
	for i, d := range letters {
		data, err := e.getWithRetry(meta, payloadKey(d.ExecutorID, d.CallID))
		if err != nil {
			restore()
			return nil, fmt.Errorf("core: replay: fetch payload %s/%s: %w", d.ExecutorID, d.CallID, err)
		}
		var p wire.CallPayload
		if err := wire.Unmarshal(data, &p); err != nil {
			restore()
			return nil, fmt.Errorf("core: replay: decode payload %s/%s: %w", d.ExecutorID, d.CallID, err)
		}
		payloads[i] = &p
	}
	ids := e.reserveCallIDs(len(payloads))
	for i, p := range payloads {
		p.ExecutorID = e.id
		p.CallID = ids[i]
	}
	// Replay is a job-state mutation: re-assert the lease, then journal the
	// old→new mapping BEFORE the replacements launch. A driver attaching
	// after the record lands never resurrects the superseded originals,
	// even if this driver dies mid-replay (the replacements then simply
	// never ran — their launch record is missing — and the replayed work is
	// lost with the driver, like any un-launched job).
	if err := e.renewLease(); err != nil {
		restore()
		return nil, err
	}
	e.appendJournal(wire.JournalReplay, func(rec *wire.JournalRecord) {
		rec.OldCallIDs = make([]string, len(letters))
		for i, d := range letters {
			rec.OldCallIDs[i] = d.CallID
		}
		rec.Calls = journalCalls(payloads, nil)
	})
	futures, err := e.launch(payloads, true)
	if err != nil {
		restore()
		return nil, fmt.Errorf("core: replay dead letters: %w", err)
	}
	// The replacements are tracked; the dead originals must not be, or the
	// next GetResult would collect (and re-recover) both copies.
	dead := make(map[[2]string]bool, len(letters))
	for _, d := range letters {
		dead[[2]string{d.ExecutorID, d.CallID}] = true
	}
	e.untrack(dead)
	// The replay owns these calls now; drop the persisted records
	// best-effort (a leftover record is re-deleted by Clean).
	for _, d := range letters {
		_ = e.cfg.Storage.Delete(meta, deadLetterKey(d.ExecutorID, d.CallID)) //gowren:allow errsink — best-effort cleanup, Clean re-deletes leftovers
	}
	return futures, nil
}
