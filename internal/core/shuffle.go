package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"maps"
	"slices"
	"time"

	"gowren/internal/cos"
	"gowren/internal/exchange"
	"gowren/internal/runtime"
	"gowren/internal/trace"
	"gowren/internal/wire"
)

// Keyed-shuffle MapReduce. The paper's related-work section singles out
// data shuffling as "one of the biggest challenges in running MapReduce
// jobs over serverless architectures" and lists object storage among the
// proposed shuffle media; this file implements exactly that — map
// executors hash-partition their emitted key–value pairs into per-reducer
// objects in COS, and R reduce executors each merge their partition of
// every map output, grouping by key — plus the fast tiers the follow-up
// literature argues for: a per-stage Exchange selector can route the
// intermediates through the memory-tier cache node or directly between
// the producing and consuming activations (internal/exchange), with COS
// remaining the default and the correctness baseline every fast-tier
// failure degrades back to.

// ShuffleOptions tune MapReduceShuffle.
type ShuffleOptions struct {
	// ChunkBytes is the map-side partition size (zero = per object).
	ChunkBytes int64
	// NumReducers is the reduce-side parallelism R (default 1).
	NumReducers int
	// Exchange selects the intermediate-data transport: one of
	// wire.ExchangeCOS (default, also the empty string),
	// wire.ExchangeMemory or wire.ExchangeDirect. The fast tiers are
	// best-effort: any miss, eviction, node kill or expired linger window
	// falls back transparently to the COS path (spilled object, short
	// poll, then recomputation from the staged map payload), so results
	// are byte-identical across transports.
	Exchange string
}

// shuffleMapResult carries a shuffle-map call's user-visible value
// together with its fast-tier advertisement; the runner unwraps it and
// embeds the ad in the status record (like the *wire.FuturesRef unwrap in
// envelopeFor). COS-transport maps return the bare value, keeping the
// baseline status records unchanged.
type shuffleMapResult struct {
	value any
	ad    *wire.ExchangeAd
}

// MapReduceShuffle runs a keyed MapReduce: mapFn (a KV map function) over
// the partitioned source, a data-exchange shuffle (COS by default; see
// ShuffleOptions.Exchange), and reduceFn (a per-key reduce function)
// across NumReducers reduce executors. It returns the reducer futures;
// each resolves to a []wire.KeyResult sorted by key.
func (e *Executor) MapReduceShuffle(mapFn string, src DataSource, reduceFn string, opts ShuffleOptions) ([]*Future, error) {
	r := opts.NumReducers
	if r <= 0 {
		r = 1
	}
	if !wire.ValidExchange(opts.Exchange) {
		return nil, fmt.Errorf("core: unknown exchange transport %q", opts.Exchange)
	}
	meta := e.cfg.Platform.MetaBucket()

	parts, err := PlanPartitions(e.cfg.Storage, src, opts.ChunkBytes)
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, errors.New("core: shuffle partitioner produced no work")
	}

	mapIDs := e.reserveCallIDs(len(parts))
	mapPayloads := make([]*wire.CallPayload, len(parts))
	for i := range parts {
		part := parts[i]
		mapPayloads[i] = &wire.CallPayload{
			ExecutorID: e.id,
			CallID:     mapIDs[i],
			Runtime:    e.cfg.RuntimeImage,
			Function:   mapFn,
			Kind:       wire.KindShuffleMap,
			Partition:  &part,
			Shuffle:    &wire.ShuffleSpec{NumReducers: r, Exchange: opts.Exchange},
			MetaBucket: meta,
		}
	}
	if _, err := e.launch(mapPayloads, false); err != nil {
		return nil, fmt.Errorf("core: shuffle map phase: %w", err)
	}

	reduceIDs := e.reserveCallIDs(r)
	reducePayloads := make([]*wire.CallPayload, r)
	for i := 0; i < r; i++ {
		reducePayloads[i] = &wire.CallPayload{
			ExecutorID: e.id,
			CallID:     reduceIDs[i],
			Runtime:    e.cfg.RuntimeImage,
			Function:   reduceFn,
			Kind:       wire.KindShuffleReduce,
			Shuffle: &wire.ShuffleSpec{
				NumReducers: r,
				Reducer:     i,
				MapCallIDs:  mapIDs,
				Exchange:    opts.Exchange,
			},
			MetaBucket: meta,
		}
	}
	futures, err := e.runJob(reducePayloads)
	if err != nil {
		return nil, fmt.Errorf("core: shuffle reduce phase: %w", err)
	}
	return futures, nil
}

// reducerForKey assigns a key to a reducer partition by FNV-1a hash.
func reducerForKey(key string, numReducers int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(numReducers))
}

// runShuffleMap executes the map side: run the KV function, hash-partition
// its output, and stage one partition per reducer (always, even when
// empty, so reducers need no existence probes) on the selected exchange
// transport. Fast-tier refusals — cache down, entry too large, peers being
// killed — degrade to the baseline COS write per partition, so the shuffle
// never depends on the fast tier being alive.
func (p *Platform) runShuffleMap(ctx *runtime.Ctx, payload *wire.CallPayload) (any, error) {
	fn, err := ctx.Image().KVMap(payload.Function)
	if err != nil {
		return nil, err
	}
	reader := runtime.NewPartitionReader(ctx.Storage(), *payload.Partition)
	kvs, err := fn(ctx, reader)
	if err != nil {
		return nil, err
	}
	r := payload.Shuffle.NumReducers
	buckets := make([][]wire.KV, r)
	for _, kv := range kvs {
		i := reducerForKey(kv.Key, r)
		buckets[i] = append(buckets[i], kv)
	}
	counts := make([]int, r)
	bodies := make([][]byte, r)
	descs := make([]wire.PartitionDescriptor, r)
	for i, bucket := range buckets {
		body, err := wire.Marshal(bucket)
		if err != nil {
			return nil, fmt.Errorf("core: shuffle map serialize partition %d: %w", i, err)
		}
		bodies[i] = body
		counts[i] = len(bucket)
		descs[i] = wire.PartitionDescriptor{Reducer: i, Bytes: int64(len(body)), Keys: len(bucket)}
	}

	transport := payload.Shuffle.Exchange
	if transport == "" {
		transport = wire.ExchangeCOS
	}
	ad := &wire.ExchangeAd{Transport: transport, Partitions: descs}
	writeStart := ctx.Clock().Now()

	switch transport {
	case wire.ExchangeMemory:
		for i, body := range bodies {
			key := wire.ShuffleKey(payload.ExecutorID, payload.CallID, i)
			putErr := p.exchange.Cache.Put(key, body)
			if putErr == nil {
				continue
			}
			// Cache refused (down, transient failure, oversized entry):
			// this partition takes the baseline path right now, so no
			// reducer ever waits on a write that never happened.
			p.exchange.NoteFallback(wire.ExchangeMemory)
			ad.Fallbacks++
			if p.trace != nil {
				p.trace.Emitf(ctx.Clock().Now(), trace.KindExchange, ctx.ActivationID(),
					"transport=memory op=put key=%s bytes=%d fallback=%v", key, len(body), putErr)
			}
			if err := p.putRetry(ctx, payload.MetaBucket, key, body); err != nil {
				return nil, fmt.Errorf("core: shuffle map write partition %d: %w", i, err)
			}
		}
	case wire.ExchangeDirect:
		expires, pubErr := p.exchange.Peers.Publish(payload.ExecutorID, payload.CallID, bodies)
		if pubErr == nil {
			ad.LingerUntilNs = expires.UnixNano()
			// The producing container stays resident — pinned against
			// idle eviction, though still reusable — until the linger
			// window closes, serving peer pulls.
			p.controller.LingerActivation(ctx.ActivationID(), expires)
		} else {
			// Peers are being killed: every partition degrades to COS.
			p.exchange.NoteFallback(wire.ExchangeDirect)
			ad.Fallbacks = r
			if p.trace != nil {
				p.trace.Emitf(ctx.Clock().Now(), trace.KindExchange, ctx.ActivationID(),
					"transport=direct op=publish call=%s fallback=%v", payload.CallID, pubErr)
			}
			for i, body := range bodies {
				key := wire.ShuffleKey(payload.ExecutorID, payload.CallID, i)
				if err := p.putRetry(ctx, payload.MetaBucket, key, body); err != nil {
					return nil, fmt.Errorf("core: shuffle map write partition %d: %w", i, err)
				}
			}
		}
	default: // wire.ExchangeCOS
		for i, body := range bodies {
			key := wire.ShuffleKey(payload.ExecutorID, payload.CallID, i)
			if err := p.putRetry(ctx, payload.MetaBucket, key, body); err != nil {
				return nil, fmt.Errorf("core: shuffle map write partition %d: %w", i, err)
			}
		}
	}
	p.exchange.NoteWrite(writeStart, ctx.Clock().Now())

	value := map[string]any{"emitted": len(kvs), "perReducer": counts}
	if transport == wire.ExchangeCOS {
		// Baseline path: bare value, status record unchanged from the
		// pre-exchange wire format.
		return value, nil
	}
	return &shuffleMapResult{value: value, ad: ad}, nil
}

// Bounds for the COS poll between a fast-tier miss and recomputation: long
// enough to cover an in-flight eviction spill or a producer's synchronous
// fallback write landing, short enough that a dead tier costs the reducer
// a bounded delay, not its deadline.
const (
	shuffleFallbackWait = 2 * time.Second
	shuffleFallbackPoll = 100 * time.Millisecond
	// shuffleTierRetries bounds the quick same-tier retries a reducer pays
	// on ErrUnavailable before declaring the tier gone: a transient link
	// blip recovers in one hop instead of a full fallback poll, while a
	// genuinely dead node fails all retries in a few milliseconds.
	shuffleTierRetries  = 2
	shuffleTierRetryGap = 25 * time.Millisecond
)

// fetchShufflePartition fetches this reducer's partition of one map call
// over the job's exchange transport. Fast-tier misses fall through to
// shuffleFallback; the COS baseline reads the shuffle object directly.
func (p *Platform) fetchShufflePartition(ctx *runtime.Ctx, payload *wire.CallPayload, mapID string) ([]byte, error) {
	spec := payload.Shuffle
	key := wire.ShuffleKey(payload.ExecutorID, mapID, spec.Reducer)
	switch spec.Exchange {
	case wire.ExchangeMemory:
		body, err := p.tierGet(ctx, func() ([]byte, error) { return p.exchange.Cache.Get(key) })
		if err == nil {
			return body, nil
		}
		return p.shuffleFallback(ctx, payload, mapID, key, err)
	case wire.ExchangeDirect:
		body, err := p.tierGet(ctx, func() ([]byte, error) {
			return p.exchange.Peers.Pull(payload.ExecutorID, mapID, spec.Reducer)
		})
		if err == nil {
			return body, nil
		}
		return p.shuffleFallback(ctx, payload, mapID, key, err)
	default: // wire.ExchangeCOS
		return p.getRetry(ctx, payload.MetaBucket, key)
	}
}

// tierGet runs one fast-tier read, absorbing up to shuffleTierRetries
// transient ErrUnavailable failures. Definitive misses (not found, peer
// lost, expired) return immediately — retrying cannot change them.
func (p *Platform) tierGet(ctx *runtime.Ctx, get func() ([]byte, error)) ([]byte, error) {
	body, err := get()
	for attempt := 0; errors.Is(err, exchange.ErrUnavailable) && attempt < shuffleTierRetries; attempt++ {
		ctx.Clock().Sleep(shuffleTierRetryGap)
		body, err = get()
	}
	return body, err
}

// shuffleFallback is the degradation path after a fast-tier miss: poll COS
// for the partition object (an eviction spill or a producer-side fallback
// write may still be landing), then recompute the partition from the
// staged map payload. cause is the fast-tier error, kept for the trace.
func (p *Platform) shuffleFallback(ctx *runtime.Ctx, payload *wire.CallPayload, mapID, key string, cause error) ([]byte, error) {
	spec := payload.Shuffle
	p.exchange.NoteFallback(spec.Exchange)
	if p.trace != nil {
		p.trace.Emitf(ctx.Clock().Now(), trace.KindExchange, ctx.ActivationID(),
			"transport=%s op=get key=%s fallback=%v", spec.Exchange, key, cause)
	}
	deadline := ctx.Clock().Now().Add(shuffleFallbackWait)
	if ctxDeadline := ctx.Deadline(); !ctxDeadline.IsZero() && ctxDeadline.Before(deadline) {
		deadline = ctxDeadline
	}
	for {
		body, err := p.getRetry(ctx, payload.MetaBucket, key)
		if err == nil {
			if p.trace != nil {
				p.trace.Emitf(ctx.Clock().Now(), trace.KindExchange, ctx.ActivationID(),
					"transport=%s op=get key=%s bytes=%d served=cos", spec.Exchange, key, len(body))
			}
			return body, nil
		}
		if !errors.Is(err, cos.ErrNoSuchKey) {
			return nil, fmt.Errorf("core: shuffle fallback fetch %s: %w", key, err)
		}
		if !ctx.Clock().Now().Add(shuffleFallbackPoll).Before(deadline) {
			break
		}
		ctx.Clock().Sleep(shuffleFallbackPoll)
	}
	body, err := p.recomputeShufflePartition(ctx, payload, mapID)
	if err != nil {
		return nil, err
	}
	if p.trace != nil {
		p.trace.Emitf(ctx.Clock().Now(), trace.KindExchange, ctx.ActivationID(),
			"transport=%s op=get key=%s bytes=%d served=recompute", spec.Exchange, key, len(body))
	}
	return body, nil
}

// recomputeShufflePartition rebuilds this reducer's partition of one map
// call from first principles: load the map call's staged payload, re-run
// its KV function over its source partition, and keep the keys that hash
// to this reducer. The staged payload is durable in COS and the map
// function is pure over its partition, so the result is byte-identical to
// what the producer staged — this is the recomputation-from-payload
// fallback that lets the fast tiers skip synchronous COS backups. The
// reducer's activation pays the map work again, which is the documented
// cost of losing a fast-tier node.
func (p *Platform) recomputeShufflePartition(ctx *runtime.Ctx, payload *wire.CallPayload, mapID string) ([]byte, error) {
	spec := payload.Shuffle
	body, err := p.getRetry(ctx, payload.MetaBucket, payloadKey(payload.ExecutorID, mapID))
	if err != nil {
		return nil, fmt.Errorf("core: shuffle recompute load payload %s: %w", mapID, err)
	}
	var mp wire.CallPayload
	if err := wire.Unmarshal(body, &mp); err != nil {
		return nil, err
	}
	if mp.Kind != wire.KindShuffleMap || mp.Partition == nil {
		return nil, fmt.Errorf("core: shuffle recompute: call %s is not a shuffle map", mapID)
	}
	fn, err := ctx.Image().KVMap(mp.Function)
	if err != nil {
		return nil, err
	}
	reader := runtime.NewPartitionReader(ctx.Storage(), *mp.Partition)
	kvs, err := fn(ctx, reader)
	if err != nil {
		return nil, fmt.Errorf("core: shuffle recompute map %s: %w", mapID, err)
	}
	var bucket []wire.KV
	for _, kv := range kvs {
		if reducerForKey(kv.Key, spec.NumReducers) == spec.Reducer {
			bucket = append(bucket, kv)
		}
	}
	return wire.Marshal(bucket)
}

// runShuffleReduce executes the reduce side: wait for every map call,
// fetch this reducer's shuffle partition from each over the job's exchange
// transport, group by key, and call the per-key reduce function over
// sorted keys.
func (p *Platform) runShuffleReduce(ctx *runtime.Ctx, payload *wire.CallPayload) (any, error) {
	fn, err := ctx.Image().KVReduce(payload.Function)
	if err != nil {
		return nil, err
	}
	spec := payload.Shuffle

	// The shuffle partitions are staged before the map status commits, so
	// awaiting statuses (same mechanism as plain reducers) is sufficient
	// on every transport. The per-activation coordinator keeps the polling
	// incremental: each LIST resumes at the reducer's done-frontier.
	sweeps := newSweepCoordinator(ctx.Storage(), ctx.Clock(), false)
	ns := nsKey{bucket: payload.MetaBucket, execID: payload.ExecutorID}
	if err := sweeps.awaitStatuses(ns, spec.MapCallIDs, nil, nil, 100*time.Millisecond, ctx.Deadline()); err != nil {
		if errors.Is(err, ErrWaitTimeout) {
			return nil, fmt.Errorf("core: shuffle reduce waiting for %d map calls: %w", len(spec.MapCallIDs), runtime.ErrDeadlineExceeded)
		}
		return nil, fmt.Errorf("core: shuffle reduce status sweep: %w", err)
	}

	readStart := ctx.Clock().Now()
	groups := make(map[string][]json.RawMessage)
	for _, mapID := range spec.MapCallIDs {
		body, err := p.fetchShufflePartition(ctx, payload, mapID)
		if err != nil {
			return nil, fmt.Errorf("core: shuffle reduce fetch partition of %s: %w", mapID, err)
		}
		var kvs []wire.KV
		if err := wire.Unmarshal(body, &kvs); err != nil {
			return nil, err
		}
		for _, kv := range kvs {
			groups[kv.Key] = append(groups[kv.Key], kv.Value)
		}
	}
	p.exchange.NoteRead(readStart, ctx.Clock().Now())

	keys := slices.Sorted(maps.Keys(groups))
	for _, k := range keys {
		// Defensive: a hash mismatch would silently double-count keys.
		if reducerForKey(k, spec.NumReducers) != spec.Reducer {
			return nil, fmt.Errorf("core: key %q shuffled to wrong reducer %d", k, spec.Reducer)
		}
	}

	out := make([]wire.KeyResult, 0, len(keys))
	for _, k := range keys {
		value, err := fn(ctx, k, groups[k])
		if err != nil {
			return nil, fmt.Errorf("core: reduce key %q: %w", k, err)
		}
		raw, err := wire.Marshal(value)
		if err != nil {
			return nil, fmt.Errorf("core: serialize reduced key %q: %w", k, err)
		}
		out = append(out, wire.KeyResult{Key: k, Value: raw})
	}
	return out, nil
}
