package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"maps"
	"slices"
	"time"

	"gowren/internal/runtime"
	"gowren/internal/wire"
)

// Keyed-shuffle MapReduce. The paper's related-work section singles out
// data shuffling as "one of the biggest challenges in running MapReduce
// jobs over serverless architectures" and lists object storage among the
// proposed shuffle media; this file implements exactly that: map executors
// hash-partition their emitted key–value pairs into per-reducer objects in
// COS, and R reduce executors each merge their partition of every map
// output, grouping by key. It generalizes the paper's reducer-per-object
// mode to arbitrary keys.

// ShuffleOptions tune MapReduceShuffle.
type ShuffleOptions struct {
	// ChunkBytes is the map-side partition size (zero = per object).
	ChunkBytes int64
	// NumReducers is the reduce-side parallelism R (default 1).
	NumReducers int
}

// MapReduceShuffle runs a keyed MapReduce: mapFn (a KV map function) over
// the partitioned source, an object-storage shuffle, and reduceFn (a
// per-key reduce function) across NumReducers reduce executors. It returns
// the reducer futures; each resolves to a []wire.KeyResult sorted by key.
func (e *Executor) MapReduceShuffle(mapFn string, src DataSource, reduceFn string, opts ShuffleOptions) ([]*Future, error) {
	r := opts.NumReducers
	if r <= 0 {
		r = 1
	}
	meta := e.cfg.Platform.MetaBucket()

	parts, err := PlanPartitions(e.cfg.Storage, src, opts.ChunkBytes)
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, errors.New("core: shuffle partitioner produced no work")
	}

	mapIDs := e.reserveCallIDs(len(parts))
	mapPayloads := make([]*wire.CallPayload, len(parts))
	for i := range parts {
		part := parts[i]
		mapPayloads[i] = &wire.CallPayload{
			ExecutorID: e.id,
			CallID:     mapIDs[i],
			Runtime:    e.cfg.RuntimeImage,
			Function:   mapFn,
			Kind:       wire.KindShuffleMap,
			Partition:  &part,
			Shuffle:    &wire.ShuffleSpec{NumReducers: r},
			MetaBucket: meta,
		}
	}
	if _, err := e.launch(mapPayloads, false); err != nil {
		return nil, fmt.Errorf("core: shuffle map phase: %w", err)
	}

	reduceIDs := e.reserveCallIDs(r)
	reducePayloads := make([]*wire.CallPayload, r)
	for i := 0; i < r; i++ {
		reducePayloads[i] = &wire.CallPayload{
			ExecutorID: e.id,
			CallID:     reduceIDs[i],
			Runtime:    e.cfg.RuntimeImage,
			Function:   reduceFn,
			Kind:       wire.KindShuffleReduce,
			Shuffle: &wire.ShuffleSpec{
				NumReducers: r,
				Reducer:     i,
				MapCallIDs:  mapIDs,
			},
			MetaBucket: meta,
		}
	}
	futures, err := e.runJob(reducePayloads)
	if err != nil {
		return nil, fmt.Errorf("core: shuffle reduce phase: %w", err)
	}
	return futures, nil
}

// reducerForKey assigns a key to a reducer partition by FNV-1a hash.
func reducerForKey(key string, numReducers int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(numReducers))
}

// runShuffleMap executes the map side: run the KV function, hash-partition
// its output, and write one shuffle object per reducer (always, even when
// empty, so reducers need no existence probes).
func (p *Platform) runShuffleMap(ctx *runtime.Ctx, payload *wire.CallPayload) (any, error) {
	fn, err := ctx.Image().KVMap(payload.Function)
	if err != nil {
		return nil, err
	}
	reader := runtime.NewPartitionReader(ctx.Storage(), *payload.Partition)
	kvs, err := fn(ctx, reader)
	if err != nil {
		return nil, err
	}
	r := payload.Shuffle.NumReducers
	buckets := make([][]wire.KV, r)
	for _, kv := range kvs {
		i := reducerForKey(kv.Key, r)
		buckets[i] = append(buckets[i], kv)
	}
	counts := make([]int, r)
	for i, bucket := range buckets {
		body, err := wire.Marshal(bucket)
		if err != nil {
			return nil, fmt.Errorf("core: shuffle map serialize partition %d: %w", i, err)
		}
		key := wire.ShuffleKey(payload.ExecutorID, payload.CallID, i)
		if err := p.putRetry(ctx, payload.MetaBucket, key, body); err != nil {
			return nil, fmt.Errorf("core: shuffle map write partition %d: %w", i, err)
		}
		counts[i] = len(bucket)
	}
	return map[string]any{"emitted": len(kvs), "perReducer": counts}, nil
}

// runShuffleReduce executes the reduce side: wait for every map call,
// fetch this reducer's shuffle partition from each, group by key, and call
// the per-key reduce function over sorted keys.
func (p *Platform) runShuffleReduce(ctx *runtime.Ctx, payload *wire.CallPayload) (any, error) {
	fn, err := ctx.Image().KVReduce(payload.Function)
	if err != nil {
		return nil, err
	}
	spec := payload.Shuffle

	// The shuffle files are committed before the map status, so awaiting
	// statuses (same mechanism as plain reducers) is sufficient. The
	// per-activation coordinator keeps the polling incremental: each LIST
	// resumes at the reducer's done-frontier.
	sweeps := newSweepCoordinator(ctx.Storage(), ctx.Clock(), false)
	ns := nsKey{bucket: payload.MetaBucket, execID: payload.ExecutorID}
	if err := sweeps.awaitStatuses(ns, spec.MapCallIDs, nil, nil, 100*time.Millisecond, ctx.Deadline()); err != nil {
		if errors.Is(err, ErrWaitTimeout) {
			return nil, fmt.Errorf("core: shuffle reduce waiting for %d map calls: %w", len(spec.MapCallIDs), runtime.ErrDeadlineExceeded)
		}
		return nil, fmt.Errorf("core: shuffle reduce status sweep: %w", err)
	}

	groups := make(map[string][]json.RawMessage)
	for _, mapID := range spec.MapCallIDs {
		key := wire.ShuffleKey(payload.ExecutorID, mapID, spec.Reducer)
		body, err := p.getRetry(ctx, payload.MetaBucket, key)
		if err != nil {
			return nil, fmt.Errorf("core: shuffle reduce fetch %s: %w", key, err)
		}
		var kvs []wire.KV
		if err := wire.Unmarshal(body, &kvs); err != nil {
			return nil, err
		}
		for _, kv := range kvs {
			groups[kv.Key] = append(groups[kv.Key], kv.Value)
		}
	}

	keys := slices.Sorted(maps.Keys(groups))
	for _, k := range keys {
		// Defensive: a hash mismatch would silently double-count keys.
		if reducerForKey(k, spec.NumReducers) != spec.Reducer {
			return nil, fmt.Errorf("core: key %q shuffled to wrong reducer %d", k, spec.Reducer)
		}
	}

	out := make([]wire.KeyResult, 0, len(keys))
	for _, k := range keys {
		value, err := fn(ctx, k, groups[k])
		if err != nil {
			return nil, fmt.Errorf("core: reduce key %q: %w", k, err)
		}
		raw, err := wire.Marshal(value)
		if err != nil {
			return nil, fmt.Errorf("core: serialize reduced key %q: %w", k, err)
		}
		out = append(out, wire.KeyResult{Key: k, Value: raw})
	}
	return out, nil
}
