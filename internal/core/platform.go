package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"gowren/internal/chaos"
	"gowren/internal/cos"
	"gowren/internal/exchange"
	"gowren/internal/faas"
	"gowren/internal/netsim"
	"gowren/internal/retry"
	"gowren/internal/runtime"
	"gowren/internal/trace"
	"gowren/internal/vclock"
)

// DefaultMetaBucket holds job payloads, statuses and results unless the
// platform is configured otherwise.
const DefaultMetaBucket = "gowren-meta"

// PlatformConfig assembles a simulated cloud: object store, FaaS controller
// and the in-cloud network path connecting them.
type PlatformConfig struct {
	Clock    vclock.Clock
	Registry *runtime.Registry
	// Store is the object-store engine. Functions and remote invokers see
	// it through CloudLink; executors attach their own views.
	Store *cos.Store
	// Backend, when non-nil, replaces Store as the storage plane seen by
	// functions and executors — typically a cos.MultiRegion facade whose
	// region stacks already charge their own links and fault plans, so no
	// additional CloudLink charge is layered on top. Store is still
	// required: it remains the raw engine for bucket bootstrap and for
	// tests that seed data directly.
	Backend cos.Client
	// CloudLink is the in-datacenter network path (functions ↔ COS,
	// invoker ↔ controller). Nil uses netsim.InCloud with Seed.
	CloudLink *netsim.Link
	// MetaBucket overrides DefaultMetaBucket.
	MetaBucket string
	// Seed feeds default link models and the controller PRNG.
	Seed int64
	// Trace, when non-nil, records platform events for inspection.
	Trace *trace.Recorder
	// Chaos, when non-nil, schedules correlated fault windows on the
	// virtual clock: COS brownouts degrade the in-cloud storage view,
	// controller outages reject invocations with 429s, and slow-container
	// windows stretch activation jitter. Nil disables fault injection.
	Chaos *chaos.Plan
	// RegionZeroPlacement restores the legacy behaviour on a multi-region
	// Backend: calls are still assigned a region (so cross-region traffic
	// is measurable) but every function keeps reading and writing through
	// region 0's view. The zero value — region-aware placement, functions
	// use their own region's view — is the default.
	RegionZeroPlacement bool

	// ExchangeCacheBytes bounds the memory-tier exchange cache node; zero
	// selects exchange.DefaultCacheCapacity.
	ExchangeCacheBytes int64
	// ExchangeLinger bounds how long a direct-transport map activation
	// stays resident to serve peer pulls; zero selects
	// exchange.DefaultLinger.
	ExchangeLinger time.Duration

	// FaaS platform knobs, forwarded to faas.Config.
	MaxConcurrent int
	// Admission, when non-nil, enables the tenant-aware admission layer
	// on the controller: per-tenant token buckets, deficit-weighted
	// round-robin over bounded queues, deadline shedding. Nil keeps the
	// global 429 gate.
	Admission     *faas.AdmissionConfig
	AdmitOverhead time.Duration
	ExecJitter    netsim.LatencyModel
	CrashProb     float64
	ColdStartBoot time.Duration
	WarmStart     time.Duration
	KeepAlive     time.Duration
}

// Platform is the wired simulated cloud. One Platform hosts any number of
// executors (remote clients and in-cloud sub-executors alike).
type Platform struct {
	clock        vclock.Clock
	registry     *runtime.Registry
	store        *cos.Store
	backend      cos.Client
	controller   *faas.Controller
	cloudStorage cos.Client
	cloudLink    *netsim.Link
	metaBucket   string
	seed         int64
	chaos        *chaos.Plan
	trace        *trace.Recorder
	exchange     *exchange.Fabric

	// multi is the Backend downcast to the multi-region facade (nil on
	// single-region platforms); regionNames caches its region order for
	// placement hashing, and regionZero pins function views to region 0.
	multi       *cos.MultiRegion
	regionNames []string
	regionZero  bool

	// regionViews caches the per-region storage stacks handed to placed
	// functions, one per region name (built lazily under viewMu).
	viewMu      sync.Mutex
	regionViews map[string]cos.Client

	// fnStorageRetry and fnInvokeRetry back the in-cloud helpers
	// (runner/invoker handlers): the cloud link is reliable, so a short
	// fixed schedule for storage and a capped exponential one for
	// invocations suffice.
	fnStorageRetry *retry.Retrier
	fnInvokeRetry  *retry.Retrier

	// execSeq numbers executors per platform so their derived PRNG seeds
	// are reproducible run to run (the process-global ID counter is not).
	execSeq atomic.Int64

	mu       sync.Mutex
	deployed map[string]string // image name → runner action name
}

// NewPlatform wires a Platform from cfg, creating the meta bucket and the
// remote invoker action, and installing the composability hook that gives
// every function a spawner backed by an in-cloud executor.
func NewPlatform(cfg PlatformConfig) (*Platform, error) {
	if cfg.Clock == nil || cfg.Registry == nil || cfg.Store == nil {
		return nil, errors.New("core: platform requires clock, registry and store")
	}
	if cfg.MetaBucket == "" {
		cfg.MetaBucket = DefaultMetaBucket
	}
	cloudLink := cfg.CloudLink
	if cloudLink == nil {
		cloudLink = netsim.InCloud(cfg.Seed)
	}
	// Functions see storage through the in-cloud link with SDK-style
	// retries on transient request failures. A chaos plan slots in below
	// the retry layer, so brownout failures look exactly like ordinary
	// transient request failures to every consumer. A multi-region backend
	// carries its own per-region links and plans and is used as-is.
	backend := cos.Client(cfg.Store)
	if cfg.Backend != nil {
		backend = cfg.Backend
	}
	inner := backend
	if cfg.Backend == nil {
		inner = cos.NewLinked(cfg.Store, cfg.Clock, cloudLink)
	}
	cloudStorage := cos.Client(cos.NewRetrying(chaos.WrapStorage(inner, cfg.Chaos), cfg.Clock, 0, 0))

	var outage func() bool
	var slowFactor func() float64
	if cfg.Chaos != nil {
		outage = cfg.Chaos.ControllerDown
		slowFactor = cfg.Chaos.ExecFactor
	}
	ctrl, err := faas.New(faas.Config{
		Clock:         cfg.Clock,
		Registry:      cfg.Registry,
		Storage:       cloudStorage,
		Trace:         cfg.Trace,
		MaxConcurrent: cfg.MaxConcurrent,
		Admission:     cfg.Admission,
		AdmitOverhead: cfg.AdmitOverhead,
		ExecJitter:    cfg.ExecJitter,
		CrashProb:     cfg.CrashProb,
		ColdStartBoot: cfg.ColdStartBoot,
		WarmStart:     cfg.WarmStart,
		KeepAlive:     cfg.KeepAlive,
		Seed:          cfg.Seed,
		Outage:        outage,
		SlowFactor:    slowFactor,
	})
	if err != nil {
		return nil, fmt.Errorf("core: build controller: %w", err)
	}

	p := &Platform{
		clock:        cfg.Clock,
		registry:     cfg.Registry,
		store:        cfg.Store,
		backend:      backend,
		controller:   ctrl,
		cloudStorage: cloudStorage,
		cloudLink:    cloudLink,
		metaBucket:   cfg.MetaBucket,
		seed:         cfg.Seed,
		chaos:        cfg.Chaos,
		trace:        cfg.Trace,
		regionZero:   cfg.RegionZeroPlacement,
		regionViews:  make(map[string]cos.Client),
		deployed:     make(map[string]string),
	}
	if multi, ok := backend.(*cos.MultiRegion); ok {
		p.multi = multi
		// Region placement depends on replication and failover to make a
		// placed call's objects reachable everywhere; a facade running
		// without them (the outage-cost control) keeps the legacy
		// everything-through-region-0 behaviour, so placement stays off.
		if multi.FailoverEnabled() {
			p.regionNames = multi.RegionNames()
		}
	}
	p.fnStorageRetry = retry.New(cfg.Clock, retry.Policy{
		MaxAttempts: runnerRetries + 1,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
		Multiplier:  1,
	}, classifyStorageErr)
	p.fnInvokeRetry = retry.New(cfg.Clock, retry.Policy{
		MaxAttempts: runnerRetries + 1,
		BaseBackoff: 250 * time.Millisecond,
		MaxBackoff:  5 * time.Second,
		Multiplier:  2,
	}, classifyCallErr)

	// The exchange fabric is always wired (selection is per shuffle stage):
	// its two links get dedicated seed offsets so adding fast-tier traffic
	// never perturbs the draws of the main cloud link, and its chaos probes
	// come from the same plan as everything else. Evicted cache entries
	// spill to COS asynchronously via the platform's storage stack.
	var cacheDown, peerLost func() bool
	if cfg.Chaos != nil {
		cacheDown = cfg.Chaos.CacheDown
		peerLost = cfg.Chaos.PeerLost
	}
	fabric, err := exchange.NewFabric(exchange.Config{
		Clock:         cfg.Clock,
		CacheLink:     netsim.MemoryTier(cfg.Seed + 21),
		PeerLink:      netsim.PeerToPeer(cfg.Seed + 22),
		CacheCapacity: cfg.ExchangeCacheBytes,
		Linger:        cfg.ExchangeLinger,
		CacheDown:     cacheDown,
		PeerLost:      peerLost,
		Spill:         p.spillShuffleObject,
	})
	if err != nil {
		return nil, fmt.Errorf("core: build exchange fabric: %w", err)
	}
	p.exchange = fabric

	if err := cfg.Store.CreateBucket(cfg.MetaBucket); err != nil && !errors.Is(err, cos.ErrBucketExists) {
		return nil, fmt.Errorf("core: create meta bucket: %w", err)
	}

	ctrl.SetSpawnerFactory(func(ctx *runtime.Ctx) runtime.Spawner {
		image := ""
		if img := ctx.Image(); img != nil {
			image = img.Name()
		}
		return &spawner{platform: p, image: image, deadline: ctx.Deadline()}
	})
	return p, nil
}

// Clock returns the simulation clock.
func (p *Platform) Clock() vclock.Clock { return p.clock }

// Controller returns the FaaS controller.
func (p *Platform) Controller() *faas.Controller { return p.controller }

// Store returns the raw object-store engine (no link charging).
func (p *Platform) Store() *cos.Store { return p.store }

// Backend returns the storage plane behind every view: the configured
// multi-region facade when one is wired, otherwise the raw store.
func (p *Platform) Backend() cos.Client { return p.backend }

// CloudStorage returns the in-cloud view of the store.
func (p *Platform) CloudStorage() cos.Client { return p.cloudStorage }

// CloudLink returns the in-datacenter link profile.
func (p *Platform) CloudLink() *netsim.Link { return p.cloudLink }

// MetaBucket returns the job-metadata bucket name.
func (p *Platform) MetaBucket() string { return p.metaBucket }

// Seed returns the platform seed, used to derive per-executor PRNG streams.
func (p *Platform) Seed() int64 { return p.seed }

// nextExecutorSeed derives a fresh deterministic PRNG seed for the next
// executor created against this platform.
func (p *Platform) nextExecutorSeed() int64 {
	return p.seed + p.execSeq.Add(1)*1000003
}

// Chaos returns the active fault plan, or nil when fault injection is off.
func (p *Platform) Chaos() *chaos.Plan { return p.chaos }

// Exchange returns the fast-tier data-exchange fabric.
func (p *Platform) Exchange() *exchange.Fabric { return p.exchange }

// ExchangeOps returns the fabric-wide exchange accounting snapshot, the
// fast-tier analogue of Executor.StorageOps.
func (p *Platform) ExchangeOps() exchange.OpCounts { return p.exchange.Counts() }

// spillShuffleObject is the write-back path of the memory-tier cache: an
// evicted shuffle partition becomes a COS object under its canonical
// shuffle key, so reducers that miss the cache find it on the baseline
// path. It runs as its own clock task, off the evicting writer's critical
// path, and retries transient failures like any in-cloud storage consumer.
func (p *Platform) spillShuffleObject(key string, data []byte) {
	err := p.fnStorageRetry.Do(func() error {
		_, perr := p.cloudStorage.Put(p.metaBucket, key, data)
		return perr
	})
	if p.trace != nil {
		if err != nil {
			p.trace.Emitf(p.clock.Now(), trace.KindExchange, "exchange-cache",
				"spill key=%s bytes=%d failed: %v", key, len(data), err)
		} else {
			p.trace.Emitf(p.clock.Now(), trace.KindExchange, "exchange-cache",
				"spill key=%s bytes=%d", key, len(data))
		}
	}
}

// runnerActionName is the platform action executing staged calls for image.
func runnerActionName(image string) string { return "gowren-runner--" + image }

// invokerActionName is the massive-spawning helper action for image.
func invokerActionName(image string) string { return "gowren-invoker--" + image }

// EnsureRuntime deploys the runner and invoker actions for image if not yet
// present, returning the runner action name. It corresponds to IBM Cloud
// Functions pulling a runtime image the first time a function uses it.
func (p *Platform) EnsureRuntime(image string) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if name, ok := p.deployed[image]; ok {
		return name, nil
	}
	if _, err := p.registry.Pull(image); err != nil {
		return "", fmt.Errorf("core: deploy runtime: %w", err)
	}
	runner := runnerActionName(image)
	if err := p.controller.CreateAction(faas.ActionSpec{
		Name:    runner,
		Image:   image,
		Handler: p.runnerHandler(),
	}); err != nil {
		return "", fmt.Errorf("core: deploy runner for %s: %w", image, err)
	}
	if err := p.controller.CreateAction(faas.ActionSpec{
		Name:    invokerActionName(image),
		Image:   image,
		Handler: p.invokerHandler(),
	}); err != nil {
		return "", fmt.Errorf("core: deploy invoker for %s: %w", image, err)
	}
	p.deployed[image] = runner
	return runner, nil
}

// InCloudExecutor returns an executor that runs inside the datacenter: it
// talks to storage and the controller over the cloud link. It backs both
// the remote invoker and the composability spawner.
func (p *Platform) InCloudExecutor(image string) (*Executor, error) {
	return p.InCloudExecutorAt(image, "")
}

// InCloudExecutorAt is InCloudExecutor for a caller executing in a storage
// region: the executor's own storage traffic (payload staging, status
// sweeps, result collection) goes through that region's view. An empty
// region or a single-region platform falls back to the default in-cloud
// view.
func (p *Platform) InCloudExecutorAt(image, region string) (*Executor, error) {
	return p.inCloudExecutor(image, region, "")
}

// inCloudExecutor is InCloudExecutorAt with a tenant: the sub-executor's
// spawned calls are admitted under that tenant's fair-share quota.
func (p *Platform) inCloudExecutor(image, region, tenant string) (*Executor, error) {
	storage := p.cloudStorage
	if s := p.regionStorage(region); s != nil {
		storage = s
	}
	return NewExecutor(Config{
		Platform:     p,
		Storage:      storage,
		ControlLink:  p.cloudLink,
		RuntimeImage: image,
		Tenant:       tenant,
		// Helper executors (remote invokers, composition spawners) live and
		// die with a parent call; their jobs are not independently resumable
		// and must not write manifests or contend for driver leases.
		DisableJournal: true,
	})
}

// Regions returns the storage region names in facade order, nil on
// single-region platforms.
func (p *Platform) Regions() []string { return p.regionNames }

// MultiRegion returns the multi-region facade behind the platform, or nil.
func (p *Platform) MultiRegion() *cos.MultiRegion { return p.multi }

// PlaceCall assigns a call to a storage region by hashing its call ID with
// the platform seed. Executor identity deliberately stays out of the hash:
// executor IDs come from a process-global counter, so including them would
// make placement — and therefore the whole simulation — depend on how many
// executors earlier tests created. Hashing only stable inputs keeps a
// job's placement reproducible run to run and across respawns of the same
// call. Single-region platforms place nothing (empty string).
func (p *Platform) PlaceCall(callID string) string {
	if len(p.regionNames) == 0 {
		return ""
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", p.seed, callID)
	return p.regionNames[int(h.Sum64()%uint64(len(p.regionNames)))]
}

// PlaceCallAvoiding is PlaceCall restricted to the regions other than
// avoid — the anti-affinity placement respawns use so a re-executed call
// does not rehash onto the region whose failure killed the original run.
// Like PlaceCall it hashes only stable inputs (seed, call ID, avoided
// region), so the replacement region is reproducible run to run. With no
// other region to choose from (single region, empty or unknown avoid) it
// falls back to PlaceCall.
func (p *Platform) PlaceCallAvoiding(callID, avoid string) string {
	if len(p.regionNames) == 0 {
		return ""
	}
	rest := make([]string, 0, len(p.regionNames)-1)
	for _, name := range p.regionNames {
		if name != avoid {
			rest = append(rest, name)
		}
	}
	if avoid == "" || len(rest) == 0 || len(rest) == len(p.regionNames) {
		return p.PlaceCall(callID)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s/avoid/%s", p.seed, callID, avoid)
	return rest[int(h.Sum64()%uint64(len(rest)))]
}

// regionStorage returns the storage stack a function placed in region uses:
// the region's facade view (home = region; preferred = region, or region 0
// under legacy placement) behind the same chaos wrapper and retry layer as
// the default in-cloud view. It returns nil — caller keeps the default
// view — for an empty or unknown region or a single-region platform.
func (p *Platform) regionStorage(region string) cos.Client {
	if region == "" || p.multi == nil {
		return nil
	}
	p.viewMu.Lock()
	defer p.viewMu.Unlock()
	if s, ok := p.regionViews[region]; ok {
		return s
	}
	pref := region
	if p.regionZero {
		pref = p.regionNames[0]
	}
	view, err := p.multi.View(region, pref)
	if err != nil {
		return nil
	}
	s := cos.Client(cos.NewRetrying(chaos.WrapStorage(view, p.chaos), p.clock, 0, 0))
	p.regionViews[region] = s
	return s
}

// placementFor derives the execution context and spawner for a call placed
// in a region and/or owned by a tenant: storage becomes the region's view
// and spawned children inherit both the placement and the tenant. Unplaced
// default-tenant calls keep their context.
func (p *Platform) placementFor(ctx *runtime.Ctx, region, tenant string) *runtime.Ctx {
	var storage cos.Client
	if region != "" && p.multi != nil {
		storage = p.regionStorage(region)
	}
	if storage == nil {
		// Not (or not successfully) region-placed: the context keeps the
		// default storage view and stays unplaced; only a tenant still
		// needs a derived spawner so children inherit its quota.
		region = ""
		if tenant == "" {
			return ctx
		}
	}
	image := ""
	if img := ctx.Image(); img != nil {
		image = img.Name()
	}
	sp := &spawner{platform: p, image: image, deadline: ctx.Deadline(), region: region, tenant: tenant}
	return ctx.WithPlacement(storage, region, sp)
}
