package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gowren/internal/cos"
	"gowren/internal/faas"
	"gowren/internal/netsim"
	"gowren/internal/runtime"
	"gowren/internal/trace"
	"gowren/internal/vclock"
)

// DefaultMetaBucket holds job payloads, statuses and results unless the
// platform is configured otherwise.
const DefaultMetaBucket = "gowren-meta"

// PlatformConfig assembles a simulated cloud: object store, FaaS controller
// and the in-cloud network path connecting them.
type PlatformConfig struct {
	Clock    vclock.Clock
	Registry *runtime.Registry
	// Store is the object-store engine. Functions and remote invokers see
	// it through CloudLink; executors attach their own views.
	Store *cos.Store
	// CloudLink is the in-datacenter network path (functions ↔ COS,
	// invoker ↔ controller). Nil uses netsim.InCloud with Seed.
	CloudLink *netsim.Link
	// MetaBucket overrides DefaultMetaBucket.
	MetaBucket string
	// Seed feeds default link models and the controller PRNG.
	Seed int64
	// Trace, when non-nil, records platform events for inspection.
	Trace *trace.Recorder

	// FaaS platform knobs, forwarded to faas.Config.
	MaxConcurrent int
	AdmitOverhead time.Duration
	ExecJitter    netsim.LatencyModel
	CrashProb     float64
	ColdStartBoot time.Duration
	WarmStart     time.Duration
	KeepAlive     time.Duration
}

// Platform is the wired simulated cloud. One Platform hosts any number of
// executors (remote clients and in-cloud sub-executors alike).
type Platform struct {
	clock        vclock.Clock
	registry     *runtime.Registry
	store        *cos.Store
	controller   *faas.Controller
	cloudStorage cos.Client
	cloudLink    *netsim.Link
	metaBucket   string

	mu       sync.Mutex
	deployed map[string]string // image name → runner action name
}

// NewPlatform wires a Platform from cfg, creating the meta bucket and the
// remote invoker action, and installing the composability hook that gives
// every function a spawner backed by an in-cloud executor.
func NewPlatform(cfg PlatformConfig) (*Platform, error) {
	if cfg.Clock == nil || cfg.Registry == nil || cfg.Store == nil {
		return nil, errors.New("core: platform requires clock, registry and store")
	}
	if cfg.MetaBucket == "" {
		cfg.MetaBucket = DefaultMetaBucket
	}
	cloudLink := cfg.CloudLink
	if cloudLink == nil {
		cloudLink = netsim.InCloud(cfg.Seed)
	}
	// Functions see storage through the in-cloud link with SDK-style
	// retries on transient request failures.
	cloudStorage := cos.Client(cos.NewRetrying(cos.NewLinked(cfg.Store, cfg.Clock, cloudLink), cfg.Clock, 0, 0))

	ctrl, err := faas.New(faas.Config{
		Clock:         cfg.Clock,
		Registry:      cfg.Registry,
		Storage:       cloudStorage,
		Trace:         cfg.Trace,
		MaxConcurrent: cfg.MaxConcurrent,
		AdmitOverhead: cfg.AdmitOverhead,
		ExecJitter:    cfg.ExecJitter,
		CrashProb:     cfg.CrashProb,
		ColdStartBoot: cfg.ColdStartBoot,
		WarmStart:     cfg.WarmStart,
		KeepAlive:     cfg.KeepAlive,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("core: build controller: %w", err)
	}

	p := &Platform{
		clock:        cfg.Clock,
		registry:     cfg.Registry,
		store:        cfg.Store,
		controller:   ctrl,
		cloudStorage: cloudStorage,
		cloudLink:    cloudLink,
		metaBucket:   cfg.MetaBucket,
		deployed:     make(map[string]string),
	}

	if err := cfg.Store.CreateBucket(cfg.MetaBucket); err != nil && !errors.Is(err, cos.ErrBucketExists) {
		return nil, fmt.Errorf("core: create meta bucket: %w", err)
	}

	ctrl.SetSpawnerFactory(func(ctx *runtime.Ctx) runtime.Spawner {
		image := ""
		if img := ctx.Image(); img != nil {
			image = img.Name()
		}
		return &spawner{platform: p, image: image, deadline: ctx.Deadline()}
	})
	return p, nil
}

// Clock returns the simulation clock.
func (p *Platform) Clock() vclock.Clock { return p.clock }

// Controller returns the FaaS controller.
func (p *Platform) Controller() *faas.Controller { return p.controller }

// Store returns the raw object-store engine (no link charging).
func (p *Platform) Store() *cos.Store { return p.store }

// CloudStorage returns the in-cloud view of the store.
func (p *Platform) CloudStorage() cos.Client { return p.cloudStorage }

// CloudLink returns the in-datacenter link profile.
func (p *Platform) CloudLink() *netsim.Link { return p.cloudLink }

// MetaBucket returns the job-metadata bucket name.
func (p *Platform) MetaBucket() string { return p.metaBucket }

// runnerActionName is the platform action executing staged calls for image.
func runnerActionName(image string) string { return "gowren-runner--" + image }

// invokerActionName is the massive-spawning helper action for image.
func invokerActionName(image string) string { return "gowren-invoker--" + image }

// EnsureRuntime deploys the runner and invoker actions for image if not yet
// present, returning the runner action name. It corresponds to IBM Cloud
// Functions pulling a runtime image the first time a function uses it.
func (p *Platform) EnsureRuntime(image string) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if name, ok := p.deployed[image]; ok {
		return name, nil
	}
	if _, err := p.registry.Pull(image); err != nil {
		return "", fmt.Errorf("core: deploy runtime: %w", err)
	}
	runner := runnerActionName(image)
	if err := p.controller.CreateAction(faas.ActionSpec{
		Name:    runner,
		Image:   image,
		Handler: p.runnerHandler(),
	}); err != nil {
		return "", fmt.Errorf("core: deploy runner for %s: %w", image, err)
	}
	if err := p.controller.CreateAction(faas.ActionSpec{
		Name:    invokerActionName(image),
		Image:   image,
		Handler: p.invokerHandler(),
	}); err != nil {
		return "", fmt.Errorf("core: deploy invoker for %s: %w", image, err)
	}
	p.deployed[image] = runner
	return runner, nil
}

// InCloudExecutor returns an executor that runs inside the datacenter: it
// talks to storage and the controller over the cloud link. It backs both
// the remote invoker and the composability spawner.
func (p *Platform) InCloudExecutor(image string) (*Executor, error) {
	return NewExecutor(Config{
		Platform:     p,
		Storage:      p.cloudStorage,
		ControlLink:  p.cloudLink,
		RuntimeImage: image,
	})
}
