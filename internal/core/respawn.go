package core

import "sync"

// respawnLedger coordinates the two automatic re-execution paths — failure
// recovery (recover.go) and straggler speculation (speculate.go). Both ride
// the same staged-payload Respawn machinery, and before the ledger existed
// they kept separate budgets: a call that failed and was respawned by
// recovery inside one poll tick was immediately pending again, so the
// speculation branch of the same tick could respawn it a second time. The
// ledger makes a reservation mandatory before any automatic respawn, with
// two rules:
//
//   - at most one automatic respawn per future per poll tick, whichever
//     path gets there first;
//   - a shared lifetime cap across both paths, so recovery attempts and
//     speculative copies draw from one budget instead of stacking.
//
// Manual Respawn calls are deliberately exempt: an explicit user action
// should not be silently filtered.
type respawnLedger struct {
	mu   sync.Mutex
	tick uint64
	n    map[*Future]int    // lifetime automatic respawns
	last map[*Future]uint64 // tick of the most recent reservation
}

func newRespawnLedger() *respawnLedger {
	return &respawnLedger{n: make(map[*Future]int), last: make(map[*Future]uint64)}
}

// advance opens a new poll tick. The wait loops call it once per sweep, so
// "one respawn per tick" matches one recovery step plus one speculation
// check.
func (l *respawnLedger) advance() {
	l.mu.Lock()
	l.tick++
	l.mu.Unlock()
}

// reserve filters futures down to those allowed to respawn now, recording a
// reservation for each one returned. limit caps lifetime automatic
// respawns per future across both paths.
func (l *respawnLedger) reserve(fs []*Future, limit int) []*Future {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []*Future
	for _, f := range fs {
		if l.n[f] >= limit {
			continue
		}
		if t, ok := l.last[f]; ok && t == l.tick {
			continue // the other path already respawned this call this tick
		}
		l.n[f]++
		l.last[f] = l.tick
		out = append(out, f)
	}
	return out
}

// seed preloads f's lifetime automatic-respawn count. Attach uses it to
// carry a dead driver's journaled respawns into the new ledger, so a
// crash-looping driver cannot grant each incarnation a fresh budget for the
// same call.
func (l *respawnLedger) seed(f *Future, n int) {
	l.mu.Lock()
	if n > l.n[f] {
		l.n[f] = n
	}
	l.mu.Unlock()
}

// count returns the lifetime automatic respawns recorded for f.
func (l *respawnLedger) count(f *Future) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n[f]
}

// respawnLimit is the shared automatic-respawn budget per call for a
// collection running with opts: the recovery attempt cap plus one
// speculative copy.
func respawnLimit(opts RecoveryOptions) int { return opts.MaxAttempts + 1 }
