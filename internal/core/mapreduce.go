package core

import (
	"errors"
	"fmt"

	"gowren/internal/wire"
)

// MapReduceOptions tune map_reduce (§4.3).
type MapReduceOptions struct {
	// ChunkBytes is the partition size for storage-backed sources. Zero
	// or negative selects per-object granularity (one map executor per
	// dataset object).
	ChunkBytes int64
	// ReducerOnePerObject runs one reducer per source object key instead
	// of a single global reducer — the paper's reduceByKey-like mode
	// (reducer_one_per_object=True).
	ReducerOnePerObject bool
}

// MapReduce executes a full MapReduce flow (Table 2: map_reduce): a map
// phase over the partitioned dataset and one or more reduce executors that
// wait in-cloud for their partials. It returns the reducer futures; map
// calls run untracked so GetResult yields the reduced results.
func (e *Executor) MapReduce(mapFn string, src DataSource, reduceFn string, opts MapReduceOptions) ([]*Future, error) {
	meta := e.cfg.Platform.MetaBucket()

	var (
		mapPayloads []*wire.CallPayload
		groups      []reduceGroup
	)
	switch s := src.(type) {
	case InlineValues:
		if len(s) == 0 {
			return nil, errors.New("core: map_reduce over empty input")
		}
		if opts.ReducerOnePerObject {
			return nil, errors.New("core: reducer-per-object requires a storage-backed source")
		}
		callIDs := e.reserveCallIDs(len(s))
		mapPayloads = make([]*wire.CallPayload, len(s))
		for i, v := range s {
			raw, err := wire.Marshal(v)
			if err != nil {
				return nil, fmt.Errorf("core: serialize map_reduce argument %d: %w", i, err)
			}
			mapPayloads[i] = &wire.CallPayload{
				ExecutorID: e.id,
				CallID:     callIDs[i],
				Runtime:    e.cfg.RuntimeImage,
				Function:   mapFn,
				Kind:       wire.KindPlain,
				Arg:        raw,
				MetaBucket: meta,
			}
		}
		groups = []reduceGroup{{key: "", callIDs: callIDs}}
	default:
		parts, err := PlanPartitions(e.cfg.Storage, src, opts.ChunkBytes)
		if err != nil {
			return nil, err
		}
		if len(parts) == 0 {
			return nil, errors.New("core: partitioner produced no work")
		}
		callIDs := e.reserveCallIDs(len(parts))
		mapPayloads = make([]*wire.CallPayload, len(parts))
		for i := range parts {
			part := parts[i]
			mapPayloads[i] = &wire.CallPayload{
				ExecutorID: e.id,
				CallID:     callIDs[i],
				Runtime:    e.cfg.RuntimeImage,
				Function:   mapFn,
				Kind:       wire.KindMapPartition,
				Partition:  &part,
				MetaBucket: meta,
			}
		}
		groups = groupForReduce(parts, callIDs, opts.ReducerOnePerObject)
	}

	// Launch the map phase untracked; reducers observe it through COS.
	if _, err := e.launch(mapPayloads, false); err != nil {
		return nil, fmt.Errorf("core: map phase: %w", err)
	}

	reduceIDs := e.reserveCallIDs(len(groups))
	reducePayloads := make([]*wire.CallPayload, len(groups))
	for g, grp := range groups {
		reducePayloads[g] = &wire.CallPayload{
			ExecutorID: e.id,
			CallID:     reduceIDs[g],
			Runtime:    e.cfg.RuntimeImage,
			Function:   reduceFn,
			Kind:       wire.KindReduce,
			Reduce: &wire.ReduceSpec{
				MetaBucket: meta,
				ExecutorID: e.id,
				MapCallIDs: grp.callIDs,
				GroupKey:   grp.key,
			},
			MetaBucket: meta,
		}
	}
	futures, err := e.runJob(reducePayloads)
	if err != nil {
		return nil, fmt.Errorf("core: reduce phase: %w", err)
	}
	return futures, nil
}

type reduceGroup struct {
	key     string
	callIDs []string
}

// groupForReduce assigns map calls to reducers: all-to-one by default, or
// one group per source object key in reducer-per-object mode. Partition
// order (and therefore call order within each group) is preserved.
func groupForReduce(parts []wire.Partition, callIDs []string, perObject bool) []reduceGroup {
	if !perObject {
		return []reduceGroup{{key: "", callIDs: callIDs}}
	}
	index := make(map[string]int)
	var groups []reduceGroup
	for i, part := range parts {
		key := part.Bucket + "/" + part.Key
		gi, ok := index[key]
		if !ok {
			gi = len(groups)
			index[key] = gi
			groups = append(groups, reduceGroup{key: key})
		}
		groups[gi].callIDs = append(groups[gi].callIDs, callIDs[i])
	}
	return groups
}
