// Package core implements the executor engine of GoWren — the Go
// counterpart of the IBM-PyWren client library plus the generic "runner"
// function it executes inside IBM Cloud Functions. It provides:
//
//   - the Executor with the paper's Table 2 API (call_async, map,
//     map_reduce, wait, get_result);
//   - payload staging in object storage and asynchronous invocation, both
//     directly from the client and through the massive-function-spawning
//     mechanism of §5.1 (remote invoker functions firing groups of
//     invocations from inside the cloud);
//   - automatic data discovery and partitioning for map_reduce (§4.3),
//     including the reducer-one-per-object mode;
//   - dynamic function composition (§4.4): functions spawn further
//     functions through a Spawner, and GetResult transparently follows the
//     resulting continuation chains;
//   - futures with Always / AnyCompleted / AllCompleted wait semantics.
package core

import (
	"fmt"
	"strconv"
	"strings"

	"gowren/internal/wire"
)

// Storage layout inside the meta bucket. Statuses share a per-executor
// prefix so one paginated LIST discovers every finished call — the same
// trick IBM-PyWren uses so client polling does not need a round trip per
// future.
const (
	payloadPrefix    = "payload"
	statusPrefix     = "status"
	resultPrefix     = "result"
	shufflePrefix    = "shuffle"
	deadLetterPrefix = "deadletter"
)

func jobKey(kind, execID, callID string) string {
	return fmt.Sprintf("jobs/%s/%s/%s", execID, kind, callID)
}

// payloadKey is where a call's serialized CallPayload is staged.
func payloadKey(execID, callID string) string { return jobKey(payloadPrefix, execID, callID) }

// statusKey is the commit point of a call: its existence means finished.
func statusKey(execID, callID string) string { return jobKey(statusPrefix, execID, callID) }

// resultKey holds the call's ResultEnvelope.
func resultKey(execID, callID string) string { return jobKey(resultPrefix, execID, callID) }

// statusListPrefix lists every finished call of an executor.
func statusListPrefix(execID string) string {
	return fmt.Sprintf("jobs/%s/%s/", execID, statusPrefix)
}

// callIDFromStatusKey recovers the call ID from a listed status key.
func callIDFromStatusKey(key string) (string, bool) {
	i := strings.LastIndex(key, "/")
	if i < 0 || i == len(key)-1 {
		return "", false
	}
	return key[i+1:], true
}

// callIDWidth is the zero-padding width of call IDs (reserveCallIDs). The
// padding makes lexicographic key order equal numeric call order, which is
// what lets the status sweep keep a contiguous done-frontier and resume
// LISTs there; the invariant holds for up to 10^callIDWidth calls per
// executor namespace (beyond that, wider IDs sort after all padded ones
// and the sweep degrades gracefully to re-listing the unpadded tail).
const callIDWidth = 5

// callIDForSeq formats a numeric call sequence as a call ID.
func callIDForSeq(seq int) string { return fmt.Sprintf("%0*d", callIDWidth, seq) }

// callSeq parses a call ID back into its numeric sequence. IDs not minted
// by reserveCallIDs (wrong width or non-digits) report ok=false.
func callSeq(callID string) (int, bool) {
	if len(callID) != callIDWidth {
		return 0, false
	}
	n, err := strconv.Atoi(callID)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// deadLetterKey is where a call's DeadLetter record is persisted when
// automatic recovery gives up on it.
func deadLetterKey(execID, callID string) string { return jobKey(deadLetterPrefix, execID, callID) }

// journalPrefix groups a job's recovery journal records.
const journalPrefix = "journal"

// manifestListPrefix groups every job manifest in the meta bucket, outside
// the per-job namespaces so ListJobs is a single cheap prefix LIST.
const manifestListPrefix = "manifests/"

// manifestKey is where a job's JobManifest lives.
func manifestKey(execID string) string { return manifestListPrefix + execID }

// leaseKey is the job's driver-lease object, written only via conditional
// put so competing drivers serialize on epochs.
func leaseKey(execID string) string { return fmt.Sprintf("jobs/%s/lease", execID) }

// journalKey names one journal record. Zero-padding epoch and sequence makes
// lexicographic key order equal (epoch, seq) order, so a resuming driver
// replays records exactly as they were written.
func journalKey(execID string, epoch uint64, seq int) string {
	return fmt.Sprintf("jobs/%s/%s/%06d-%06d", execID, journalPrefix, epoch, seq)
}

// journalListPrefix lists a job's journal records in replay order.
func journalListPrefix(execID string) string {
	return fmt.Sprintf("jobs/%s/%s/", execID, journalPrefix)
}

// payloadListPrefix lists every staged payload of an executor; Attach uses
// it to recover the call-ID high-water mark.
func payloadListPrefix(execID string) string {
	return fmt.Sprintf("jobs/%s/%s/", execID, payloadPrefix)
}

// payloadRef builds the ObjectRef for a staged payload.
func payloadRef(metaBucket, execID, callID string) wire.ObjectRef {
	return wire.ObjectRef{Bucket: metaBucket, Key: payloadKey(execID, callID)}
}
