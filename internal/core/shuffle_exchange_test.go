package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"gowren/internal/runtime"
	"gowren/internal/trace"
	"gowren/internal/wire"
)

// allExchanges enumerates the selectable shuffle transports: the COS
// baseline plus both fast tiers.
var allExchanges = []string{wire.ExchangeCOS, wire.ExchangeMemory, wire.ExchangeDirect}

// newExchangeEnv is newShuffleEnv with a platform-config hook, so tests can
// shrink the memory-tier cache or attach a trace recorder.
func newExchangeEnv(t *testing.T, mutate func(*PlatformConfig)) (*env, map[string]int) {
	t.Helper()
	e := newEnvFull(t, mutate, func(img *runtime.Image) {
		registerShuffleFunctions(t, img)
	})
	if err := e.store.CreateBucket("corpus"); err != nil {
		t.Fatal(err)
	}
	docs := map[string]string{
		"doc-a": "apple banana apple cherry\napple banana\n",
		"doc-b": "banana cherry cherry date\n",
		"doc-c": "egg apple date banana egg\n",
	}
	want := map[string]int{}
	for key, body := range docs {
		if _, err := e.store.Put("corpus", key, []byte(body)); err != nil {
			t.Fatal(err)
		}
		for _, w := range strings.Fields(body) {
			want[w]++
		}
	}
	return e, want
}

// runShuffleJob runs one word-count shuffle over the corpus bucket on the
// given transport and returns the raw per-reducer results, reducer order.
func runShuffleJob(t *testing.T, e *env, transport string, reducers int) []json.RawMessage {
	t.Helper()
	exec := e.executor(t, nil)
	var results []json.RawMessage
	e.clk.Run(func() {
		_, err := exec.MapReduceShuffle("kv/words", Buckets{"corpus"}, "kv/sum", ShuffleOptions{
			NumReducers: reducers,
			Exchange:    transport,
		})
		if err != nil {
			t.Error(err)
			return
		}
		results, err = exec.GetResult(GetResultOptions{})
		if err != nil {
			t.Error(err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	return results
}

func decodeWordCounts(t *testing.T, results []json.RawMessage) map[string]int {
	t.Helper()
	got := map[string]int{}
	for _, raw := range results {
		var krs []wire.KeyResult
		if err := wire.Unmarshal(raw, &krs); err != nil {
			t.Fatal(err)
		}
		for _, kr := range krs {
			var n int
			if err := wire.Unmarshal(kr.Value, &n); err != nil {
				t.Fatal(err)
			}
			if _, dup := got[kr.Key]; dup {
				t.Fatalf("key %q reduced twice", kr.Key)
			}
			got[kr.Key] = n
		}
	}
	return got
}

func TestShuffleTransportsWordCount(t *testing.T) {
	for _, transport := range allExchanges {
		t.Run(transport, func(t *testing.T) {
			e, want := newExchangeEnv(t, nil)
			got := decodeWordCounts(t, runShuffleJob(t, e, transport, 3))
			if len(got) != len(want) {
				t.Fatalf("keys = %d, want %d (%v)", len(got), len(want), got)
			}
			for k, n := range want {
				if got[k] != n {
					t.Fatalf("count[%q] = %d, want %d", k, got[k], n)
				}
			}
			ops := e.platform.ExchangeOps()
			switch transport {
			case wire.ExchangeMemory:
				if ops.Memory.PutOps == 0 || ops.Memory.Hits == 0 {
					t.Fatalf("memory tier not engaged: %+v", ops.Memory)
				}
			case wire.ExchangeDirect:
				if ops.Direct.PutOps == 0 || ops.Direct.Hits == 0 {
					t.Fatalf("direct tier not engaged: %+v", ops.Direct)
				}
			default:
				if ops.Memory.PutOps != 0 || ops.Direct.PutOps != 0 {
					t.Fatalf("COS baseline touched fast tiers: %+v", ops)
				}
			}
		})
	}
}

func TestShuffleZeroEmitMappers(t *testing.T) {
	for _, transport := range allExchanges {
		t.Run(transport, func(t *testing.T) {
			e := newEnvFull(t, nil, func(img *runtime.Image) {
				registerShuffleFunctions(t, img)
				err := img.RegisterKVMap("kv/none", func(_ *runtime.Ctx, _ *runtime.PartitionReader) ([]wire.KV, error) {
					return nil, nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
			if err := e.store.CreateBucket("corpus"); err != nil {
				t.Fatal(err)
			}
			if _, err := e.store.Put("corpus", "doc", []byte("ignored words here")); err != nil {
				t.Fatal(err)
			}
			exec := e.executor(t, nil)
			var results []json.RawMessage
			e.clk.Run(func() {
				_, err := exec.MapReduceShuffle("kv/none", Buckets{"corpus"}, "kv/sum", ShuffleOptions{
					NumReducers: 3,
					Exchange:    transport,
				})
				if err != nil {
					t.Error(err)
					return
				}
				results, err = exec.GetResult(GetResultOptions{})
				if err != nil {
					t.Error(err)
				}
			})
			if len(results) != 3 {
				t.Fatalf("reducer results = %d, want 3", len(results))
			}
			if got := decodeWordCounts(t, results); len(got) != 0 {
				t.Fatalf("zero-emit map produced keys: %v", got)
			}
		})
	}
}

func TestShuffleMoreReducersThanKeys(t *testing.T) {
	for _, transport := range allExchanges {
		t.Run(transport, func(t *testing.T) {
			e, want := newExchangeEnv(t, nil)
			// 5 distinct words across 8 reducers: several reducers see no
			// keys at all and must still complete cleanly.
			got := decodeWordCounts(t, runShuffleJob(t, e, transport, 8))
			if len(got) != len(want) {
				t.Fatalf("keys = %d, want %d", len(got), len(want))
			}
			for k, n := range want {
				if got[k] != n {
					t.Fatalf("count[%q] = %d, want %d", k, got[k], n)
				}
			}
		})
	}
}

// TestShuffleTransportEquivalenceRandomized is the byte-identity check: on
// a randomized corpus, all three transports must produce identical raw
// reducer output — same keys, same values, same ordering, same encoding.
// The fast tiers are an optimization, never a semantic change.
func TestShuffleTransportEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vocab := make([]string, 30)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("word%02d", i)
	}
	for round := 0; round < 3; round++ {
		docs := map[string]string{}
		for d := 0; d < 4; d++ {
			var sb strings.Builder
			for w := 0; w < 50+rng.Intn(100); w++ {
				sb.WriteString(vocab[rng.Intn(len(vocab))])
				sb.WriteByte(' ')
			}
			docs[fmt.Sprintf("doc-%d", d)] = sb.String()
		}
		reducers := 1 + rng.Intn(6)
		var baseline []json.RawMessage
		for _, transport := range allExchanges {
			e := newEnvFull(t, nil, func(img *runtime.Image) {
				registerShuffleFunctions(t, img)
			})
			if err := e.store.CreateBucket("corpus"); err != nil {
				t.Fatal(err)
			}
			for key, body := range docs {
				if _, err := e.store.Put("corpus", key, []byte(body)); err != nil {
					t.Fatal(err)
				}
			}
			results := runShuffleJob(t, e, transport, reducers)
			if transport == wire.ExchangeCOS {
				baseline = results
				continue
			}
			if len(results) != len(baseline) {
				t.Fatalf("round %d %s: %d reducer results, COS had %d", round, transport, len(results), len(baseline))
			}
			for i := range results {
				if string(results[i]) != string(baseline[i]) {
					t.Fatalf("round %d %s: reducer %d output diverges from COS:\n fast: %s\n  cos: %s",
						round, transport, i, results[i], baseline[i])
				}
			}
		}
	}
}

// TestShuffleMemoryTierEvictionFallsBack shrinks the cache far below the
// working set: most partitions are evicted (spilled to COS asynchronously)
// before their reducer pulls, so reads must degrade through the COS
// poll/recompute chain — and still match the baseline exactly.
func TestShuffleMemoryTierEvictionFallsBack(t *testing.T) {
	rec := trace.New(4096)
	e, want := newExchangeEnv(t, func(cfg *PlatformConfig) {
		cfg.ExchangeCacheBytes = 64 // a few dozen bytes: every put evicts
		cfg.Trace = rec
	})
	got := decodeWordCounts(t, runShuffleJob(t, e, wire.ExchangeMemory, 4))
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("count[%q] = %d, want %d", k, got[k], n)
		}
	}
	ops := e.platform.ExchangeOps()
	if ops.Evictions == 0 {
		t.Fatalf("tiny cache evicted nothing: %+v", ops)
	}
	if ops.Memory.Misses == 0 {
		t.Fatalf("expected reducer misses against the tiny cache: %+v", ops.Memory)
	}
	var exchangeEvents, fallbackEvents int
	for _, ev := range rec.Events() {
		if ev.Kind != trace.KindExchange {
			continue
		}
		exchangeEvents++
		if strings.Contains(ev.Detail, "fallback") || strings.Contains(ev.Detail, "spill") {
			fallbackEvents++
		}
	}
	if exchangeEvents == 0 || fallbackEvents == 0 {
		t.Fatalf("exchange trace events = %d (fallback/spill %d), want both > 0", exchangeEvents, fallbackEvents)
	}
}

func TestShuffleRejectsUnknownExchange(t *testing.T) {
	e, _ := newExchangeEnv(t, nil)
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		_, err := exec.MapReduceShuffle("kv/words", Buckets{"corpus"}, "kv/sum", ShuffleOptions{
			NumReducers: 2,
			Exchange:    "carrier-pigeon",
		})
		if err == nil {
			t.Error("unknown exchange transport accepted")
		}
	})
}
