package core

import (
	"errors"
	"sync"
	"time"

	"gowren/internal/cos"
	"gowren/internal/vclock"
)

// Incremental status sweeps. The client discovers completion by polling a
// per-executor status prefix in COS (paper §4.2); naively that is one LIST
// of the *entire* prefix per poll per waiter, which at Table-3 scale makes
// the poll loop O(total futures) per tick and the job O(futures × ticks)
// in listed objects. The sweepCoordinator makes the poll loop O(newly
// finished) instead:
//
//   - Call IDs are zero-padded, so status keys sort in call order. The
//     coordinator keeps, per status namespace, a contiguous done-frontier
//     (every call below it has committed a status) plus a cache of
//     out-of-order completions above it, and starts each LIST strictly
//     after the frontier key via cos.ListFrom. Keys behind the frontier
//     are never listed again.
//   - All waiters of one executor — Wait, GetResult, WaitThreshold, the
//     composition resolver's awaitCalls running on many staging workers —
//     share the coordinator, so concurrent polls of the same namespace
//     coalesce into (at most) one LIST per tick: a caller that finds a
//     sweep in flight, or one that completed at/after its own observation
//     time, reuses the shared state instead of issuing its own LIST.
//
// The coordinator also owns the consecutive-LIST-failure counter that
// arms the dead-call consult (see sweepConsultThreshold in future.go), so
// composition waits get the same outage behavior as the main sweep.

// nsKey identifies one status namespace: a meta bucket plus the executor
// ID whose calls it holds.
type nsKey struct {
	bucket string
	execID string
}

// sweepOutcome reports one coordinated sweep attempt.
type sweepOutcome struct {
	// listed is true when the namespace has at least one successful LIST
	// behind it, i.e. the done-set reflects real storage state (possibly a
	// tick old when the caller coalesced onto an in-flight sweep).
	listed bool
	// fails is the consecutive-failed-LIST count after this attempt.
	fails int
	// err is a non-transient sweep failure; the wait must abort.
	err error
}

// consult reports whether callers should fall through to the
// activation-record consult: either the done-set is trustworthy (a LIST
// succeeded) or the listing has been failing long enough that waiting for
// it to recover would hide platform-dead calls (see sweepStatuses).
func (o sweepOutcome) consult() bool {
	return o.listed || o.fails >= sweepConsultThreshold
}

// sweepState is the per-namespace sweep memory.
type sweepState struct {
	// nextSeq is the frontier: every call sequence below it has a
	// committed status. The next LIST starts after callIDForSeq(nextSeq-1).
	nextSeq int
	// ahead caches committed sequences at or above the frontier
	// (out-of-order completions, bounded by the job's completion skew).
	ahead map[int]bool
	// odd holds committed call IDs that do not parse as padded sequences
	// (foreign writers); they never advance the frontier but still count
	// as done.
	odd map[string]bool

	inflight  bool      // a LIST for this namespace is on the wire
	swept     bool      // at least one LIST has ever succeeded
	lastSweep time.Time // completion time of the last successful LIST
	fails     int       // consecutive failed LISTs
	// evt is signalled whenever a successful sweep lands for the namespace,
	// so waiters sharing it recheck their pending sets immediately instead
	// of discovering a sibling's harvest on their next poll tick.
	evt *vclock.Event
	// gen counts forget calls. A sweep whose LIST was on the wire when a
	// forget landed must discard its harvest: the listing may still show
	// the status object a concurrent respawn just deleted, and marking
	// that call done again would hand the waiter a dangling status key.
	gen int
}

// sweepCoordinator shares incremental sweep state between every waiter of
// one storage view. It is safe for concurrent use; the LIST itself runs
// outside the lock (it sleeps on the simulation clock).
type sweepCoordinator struct {
	storage cos.Client
	clock   vclock.Clock
	// fullRelist disables the frontier and re-LISTs the whole prefix on
	// every sweep — the pre-coordinator behavior, kept as an A/B baseline
	// for the wait-path benchmark (Config.FullRelistSweep).
	fullRelist bool

	mu     sync.Mutex
	states map[nsKey]*sweepState
}

func newSweepCoordinator(storage cos.Client, clock vclock.Clock, fullRelist bool) *sweepCoordinator {
	return &sweepCoordinator{
		storage:    storage,
		clock:      clock,
		fullRelist: fullRelist,
		states:     make(map[nsKey]*sweepState),
	}
}

// stateLocked returns (creating if needed) the state for ns. Callers hold
// c.mu.
func (c *sweepCoordinator) stateLocked(ns nsKey) *sweepState {
	s, ok := c.states[ns]
	if !ok {
		s = &sweepState{
			ahead: make(map[int]bool),
			odd:   make(map[string]bool),
			evt:   vclock.NewEvent(c.clock),
		}
		c.states[ns] = s
	}
	return s
}

// sweep brings ns's done-set up to date with one incremental LIST,
// coalescing with concurrent callers: if a sweep completed at or after
// asOf the cached state is already fresh enough, and if one is in flight
// this caller skips its own LIST entirely — it is polling and will
// observe the in-flight sweep's harvest next tick.
func (c *sweepCoordinator) sweep(ns nsKey, asOf time.Time) sweepOutcome {
	c.mu.Lock()
	s := c.stateLocked(ns)
	if s.swept && !s.lastSweep.Before(asOf) {
		out := sweepOutcome{listed: true, fails: s.fails}
		c.mu.Unlock()
		return out
	}
	if s.inflight {
		out := sweepOutcome{listed: s.swept, fails: s.fails}
		c.mu.Unlock()
		return out
	}
	s.inflight = true
	gen := s.gen
	marker := ""
	if !c.fullRelist && s.nextSeq > 0 {
		marker = statusKey(ns.execID, callIDForSeq(s.nextSeq-1))
	}
	c.mu.Unlock()

	// The LIST sleeps on the clock (link latency, retries); it must not
	// run under c.mu.
	listed, err := cos.ListFrom(c.storage, ns.bucket, statusListPrefix(ns.execID), marker)
	now := c.clock.Now()

	c.mu.Lock()
	defer c.mu.Unlock()
	s.inflight = false
	if err != nil {
		if errors.Is(err, cos.ErrRequestFailed) {
			s.fails++
			return sweepOutcome{listed: s.swept, fails: s.fails}
		}
		return sweepOutcome{err: err}
	}
	s.fails = 0
	if s.gen != gen {
		// A forget raced this LIST: its snapshot may predate the respawn's
		// status delete. Drop the harvest; the next sweep re-lists from the
		// rolled-back frontier and observes only real state.
		return sweepOutcome{listed: s.swept, fails: s.fails}
	}
	for _, obj := range listed {
		id, ok := callIDFromStatusKey(obj.Key)
		if !ok {
			continue
		}
		if seq, numeric := callSeq(id); numeric {
			if seq >= s.nextSeq {
				s.ahead[seq] = true
			}
		} else {
			s.odd[id] = true
		}
	}
	for s.ahead[s.nextSeq] {
		delete(s.ahead, s.nextSeq)
		s.nextSeq++
	}
	s.swept = true
	s.lastSweep = now
	s.evt.Signal()
	return sweepOutcome{listed: true}
}

// completed reports whether callID's status has been observed in ns.
func (c *sweepCoordinator) completed(ns nsKey, callID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.states[ns]
	if !ok {
		return false
	}
	if seq, numeric := callSeq(callID); numeric {
		return seq < s.nextSeq || s.ahead[seq]
	}
	return s.odd[callID]
}

// forget withdraws callID from ns's done-set — called when a respawn
// deletes the stale status object so the next sweep re-observes the call.
// Forgetting a call below the frontier rolls the frontier back to it; the
// completions in between stay cached, so only the forgotten key is
// re-listed.
func (c *sweepCoordinator) forget(ns nsKey, callID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.states[ns]
	if !ok {
		return
	}
	s.gen++
	seq, numeric := callSeq(callID)
	if !numeric {
		delete(s.odd, callID)
		return
	}
	if seq >= s.nextSeq {
		delete(s.ahead, seq)
		return
	}
	for j := seq + 1; j < s.nextSeq; j++ {
		s.ahead[j] = true
	}
	s.nextSeq = seq
}

// forgetNamespace drops all sweep state for ns — called by Clean, which
// deletes the status objects the state mirrors.
func (c *sweepCoordinator) forgetNamespace(ns nsKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.states, ns)
}

// noteFailure and resetFailures expose the consecutive-failure counter for
// the executor's bookkeeping API (and its tests).
func (c *sweepCoordinator) noteFailure(ns nsKey) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stateLocked(ns)
	s.fails++
	return s.fails
}

func (c *sweepCoordinator) resetFailures(ns nsKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.states[ns]; ok {
		s.fails = 0
	}
}

// awaitStatuses polls ns through the coordinator until every call ID in
// want has a committed status, the deadline passes, or a dead activation
// surfaces. It is the shared engine behind the resolver's composition
// waits and the in-cloud reduce barriers. activations is index-aligned
// with want when known ("" = unknown); lookup resolves an activation ID to
// (done, ok) platform state and may be nil when no consult is possible.
func (c *sweepCoordinator) awaitStatuses(ns nsKey, want, activations []string,
	lookup func(string) (done, ok bool), interval time.Duration, deadline time.Time) error {

	if interval <= 0 {
		interval = time.Millisecond
	}
	pending := make([]int, len(want))
	for i := range want {
		pending[i] = i
	}
	c.mu.Lock()
	evt := c.stateLocked(ns).evt
	c.mu.Unlock()
	// Event-driven poll loop: each pass sweeps and prunes like the old
	// Poll-based version, but between passes the waiter parks until either a
	// sibling's sweep lands (the state's event fires) or its own interval
	// tick — whichever comes first — rather than waking every tick to find
	// nothing changed.
	for {
		gen := evt.Gen()
		out := c.sweep(ns, c.clock.Now())
		if out.err != nil {
			return out.err
		}
		kept := pending[:0]
		for _, i := range pending {
			if !c.completed(ns, want[i]) {
				kept = append(kept, i)
			}
		}
		pending = kept
		if len(pending) == 0 {
			return nil
		}
		if out.consult() && lookup != nil {
			// Same rationale as sweepStatuses: a call that died without
			// committing a status is invisible to the listing forever;
			// its activation record is the only witness.
			for _, i := range pending {
				if i >= len(activations) || activations[i] == "" {
					continue
				}
				if done, okRun := lookup(activations[i]); done && !okRun {
					return &deadCallError{execID: ns.execID, callID: want[i], activationID: activations[i]}
				}
			}
		}
		now := c.clock.Now()
		if !deadline.IsZero() && !now.Before(deadline) {
			return ErrWaitTimeout
		}
		wake := now.Add(interval)
		if !deadline.IsZero() && deadline.Before(wake) {
			wake = deadline
		}
		evt.Wait(gen, wake)
	}
}

// deadCallError reports a composed call whose activation died without
// committing a status; it unwraps to ErrCallFailed.
type deadCallError struct {
	execID, callID, activationID string
}

func (e *deadCallError) Error() string {
	return "core: call " + e.execID + "/" + e.callID + " activation " + e.activationID +
		" died without committing a status: " + ErrCallFailed.Error()
}

func (e *deadCallError) Unwrap() error { return ErrCallFailed }
