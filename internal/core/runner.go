package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"gowren/internal/cos"
	"gowren/internal/faas"
	"gowren/internal/runtime"
	"gowren/internal/wire"
)

// runnerRetries bounds storage retries inside functions; the in-cloud link
// is reliable so a handful suffices.
const runnerRetries = 5

// inlineResultThreshold is the largest serialized ResultEnvelope the
// runner embeds directly in the status record instead of spilling it to a
// result object. Collecting an inlined result costs one status GET where
// a spilled one costs a status GET plus a result GET — and the result PUT
// never happens at all. 8 KiB keeps status records comfortably inside one
// request while covering the paper's aggregate-style workloads, whose
// per-call outputs are small.
const inlineResultThreshold = 8 << 10

// runnerHandler returns the generic action handler that executes staged
// calls: the server side of the paper's Fig. 1. It loads the CallPayload
// from COS, dispatches to the user function registered in the runtime
// image, and commits result + status objects back to COS. The status write
// is the commit point clients poll for.
func (p *Platform) runnerHandler() faas.Handler {
	return func(ctx *runtime.Ctx, params []byte) ([]byte, error) {
		var ref wire.ObjectRef
		if err := wire.Unmarshal(params, &ref); err != nil {
			return nil, fmt.Errorf("core: runner params: %w", err)
		}
		body, err := p.getRetry(ctx, ref.Bucket, ref.Key)
		if err != nil {
			return nil, fmt.Errorf("core: runner load payload: %w", err)
		}
		var payload wire.CallPayload
		if err := wire.Unmarshal(body, &payload); err != nil {
			return nil, err
		}
		if err := payload.Validate(); err != nil {
			return nil, err
		}
		// The payload carries the call's region placement and tenant; from
		// here on the function reads and writes through its own region's
		// view (the initial payload load above necessarily used the default
		// view — the region is only known once the payload is decoded) and
		// anything it spawns is admitted as its tenant.
		ctx = p.placementFor(ctx, payload.Region, payload.Tenant)

		started := ctx.Clock().Now()
		value, runErr := p.dispatch(ctx, &payload)
		ended := ctx.Clock().Now()

		// A fast-tier shuffle map returns its value wrapped with the
		// exchange advertisement; unwrap it so the ad rides the status
		// record and the envelope sees the plain value (same pattern as
		// the *wire.FuturesRef unwrap in envelopeFor).
		var exchangeAd *wire.ExchangeAd
		if sr, ok := value.(*shuffleMapResult); ok {
			exchangeAd = sr.ad
			value = sr.value
		}

		rec := wire.StatusRecord{
			ExecutorID:   payload.ExecutorID,
			CallID:       payload.CallID,
			ActivationID: ctx.ActivationID(),
			ColdStart:    ctx.ColdStart(),
			SubmitUnixNs: started.UnixNano(),
			StartUnixNs:  started.UnixNano(),
			EndUnixNs:    ended.UnixNano(),
			Exchange:     exchangeAd,
		}
		if runErr != nil {
			rec.OK = false
			rec.Error = runErr.Error()
		} else {
			env := envelopeFor(value)
			envBody, err := wire.Marshal(env)
			switch {
			case err != nil:
				rec.OK = false
				rec.Error = fmt.Sprintf("serialize result: %v", err)
			case len(envBody) <= inlineResultThreshold:
				// Small result: ride along in the status record; no result
				// object is written or fetched for this call.
				rec.OK = true
				rec.Inline = envBody
			default:
				resRef := wire.ObjectRef{
					Bucket: payload.MetaBucket,
					Key:    resultKey(payload.ExecutorID, payload.CallID),
				}
				if err := p.putRetry(ctx, resRef.Bucket, resRef.Key, envBody); err != nil {
					return nil, fmt.Errorf("core: runner store result: %w", err)
				}
				rec.OK = true
				rec.ResultRef = resRef
			}
		}
		statusBody := wire.MustMarshal(&rec)
		if err := p.putRetry(ctx, payload.MetaBucket, statusKey(payload.ExecutorID, payload.CallID), statusBody); err != nil {
			// Without a status the client can never observe completion;
			// surface the failure at the platform level instead.
			return nil, fmt.Errorf("core: runner commit status: %w", err)
		}
		return statusBody, nil
	}
}

// envelopeFor wraps a user function's return value. Returning a
// *wire.FuturesRef turns the result into a composition continuation.
func envelopeFor(value any) *wire.ResultEnvelope {
	if ref, ok := value.(*wire.FuturesRef); ok && ref != nil {
		return &wire.ResultEnvelope{Kind: wire.ResultFutures, Futures: ref}
	}
	raw, err := wire.Marshal(value)
	if err != nil {
		// Caller checked serializability; nil value fallback keeps the
		// invariant that envelopeFor always produces an envelope.
		raw = json.RawMessage("null")
	}
	return &wire.ResultEnvelope{Kind: wire.ResultValue, Value: raw}
}

// dispatch runs the user (or helper) function named by the payload.
func (p *Platform) dispatch(ctx *runtime.Ctx, payload *wire.CallPayload) (any, error) {
	switch payload.Kind {
	case wire.KindPlain:
		fn, err := ctx.Image().Plain(payload.Function)
		if err != nil {
			return nil, err
		}
		return fn(ctx, payload.Arg)
	case wire.KindMapPartition:
		fn, err := ctx.Image().MapPartition(payload.Function)
		if err != nil {
			return nil, err
		}
		reader := runtime.NewPartitionReader(ctx.Storage(), *payload.Partition)
		return fn(ctx, reader)
	case wire.KindReduce:
		fn, err := ctx.Image().Reduce(payload.Function)
		if err != nil {
			return nil, err
		}
		partials, err := p.awaitMapPartials(ctx, payload.Reduce)
		if err != nil {
			return nil, err
		}
		return fn(ctx, payload.Reduce.GroupKey, partials)
	case wire.KindShuffleMap:
		return p.runShuffleMap(ctx, payload)
	case wire.KindShuffleReduce:
		return p.runShuffleReduce(ctx, payload)
	default:
		return nil, fmt.Errorf("core: runner cannot dispatch kind %s", payload.Kind)
	}
}

// awaitMapPartials blocks (within the function's deadline) until every map
// call feeding this reducer has committed a status, then fetches their
// values. This is the paper's §4.3 semantics: "The reduce function will
// wait for all the partial results before processing them."
func (p *Platform) awaitMapPartials(ctx *runtime.Ctx, spec *wire.ReduceSpec) ([]json.RawMessage, error) {
	// A per-activation coordinator keeps the reducer's status polling
	// incremental too: each poll re-lists only keys past its done-frontier
	// instead of the whole prefix. (No cross-activation sharing — separate
	// containers do not share client state.)
	sweeps := newSweepCoordinator(ctx.Storage(), ctx.Clock(), false)
	ns := nsKey{bucket: spec.MetaBucket, execID: spec.ExecutorID}
	if err := sweeps.awaitStatuses(ns, spec.MapCallIDs, nil, nil, 100*time.Millisecond, ctx.Deadline()); err != nil {
		if errors.Is(err, ErrWaitTimeout) {
			return nil, fmt.Errorf("core: reduce waiting for %d map results: %w", len(spec.MapCallIDs), runtime.ErrDeadlineExceeded)
		}
		return nil, fmt.Errorf("core: reduce status sweep: %w", err)
	}

	partials := make([]json.RawMessage, len(spec.MapCallIDs))
	for i, callID := range spec.MapCallIDs {
		statusBody, err := p.getRetry(ctx, spec.MetaBucket, statusKey(spec.ExecutorID, callID))
		if err != nil {
			return nil, fmt.Errorf("core: reduce fetch map status %s: %w", callID, err)
		}
		var rec wire.StatusRecord
		if err := wire.Unmarshal(statusBody, &rec); err != nil {
			return nil, err
		}
		if !rec.OK {
			return nil, fmt.Errorf("core: map call %s failed: %s: %w", callID, rec.Error, ErrCallFailed)
		}
		var env wire.ResultEnvelope
		if len(rec.Inline) > 0 {
			if err := wire.Unmarshal(rec.Inline, &env); err != nil {
				return nil, err
			}
		} else {
			resBody, err := p.getRetry(ctx, rec.ResultRef.Bucket, rec.ResultRef.Key)
			if err != nil {
				return nil, fmt.Errorf("core: reduce fetch map result %s: %w", callID, err)
			}
			if err := wire.Unmarshal(resBody, &env); err != nil {
				return nil, err
			}
		}
		if env.Kind != wire.ResultValue {
			return nil, fmt.Errorf("core: map call %s returned a %s envelope; reducers consume plain values", callID, env.Kind)
		}
		partials[i] = env.Value
	}
	return partials, nil
}

// invokerHandler returns the remote-invoker action handler: the in-cloud
// half of massive function spawning. It fires each target invocation
// against the controller from datacenter latency, retrying throttled calls.
func (p *Platform) invokerHandler() faas.Handler {
	return func(ctx *runtime.Ctx, params []byte) ([]byte, error) {
		var ref wire.ObjectRef
		if err := wire.Unmarshal(params, &ref); err != nil {
			return nil, fmt.Errorf("core: invoker params: %w", err)
		}
		body, err := p.getRetry(ctx, ref.Bucket, ref.Key)
		if err != nil {
			return nil, fmt.Errorf("core: invoker load payload: %w", err)
		}
		var payload wire.CallPayload
		if err := wire.Unmarshal(body, &payload); err != nil {
			return nil, err
		}
		if payload.Kind != wire.KindInvoker || payload.Invoker == nil {
			return nil, errors.New("core: invoker payload of wrong kind")
		}
		ctx = p.placementFor(ctx, payload.Region, payload.Tenant)

		fired := 0
		for _, target := range payload.Invoker.Targets {
			if err := p.invokeFromCloud(ctx, target); err != nil {
				return nil, fmt.Errorf("core: invoker target %s/%s: %w", target.Payload.Bucket, target.Payload.Key, err)
			}
			fired++
		}
		// The invoker's own status record lets failures surface in
		// activation logs; clients do not wait on it.
		rec := wire.StatusRecord{
			ExecutorID:   payload.ExecutorID,
			CallID:       payload.CallID,
			ActivationID: ctx.ActivationID(),
			OK:           true,
			EndUnixNs:    ctx.Clock().Now().UnixNano(),
			ResultRef:    wire.ObjectRef{},
		}
		_ = p.putRetry(ctx, payload.MetaBucket, statusKey(payload.ExecutorID, payload.CallID), wire.MustMarshal(&rec))
		return wire.Marshal(map[string]int{"fired": fired})
	}
}

// invokeFromCloud fires one invocation over the in-cloud link with
// throttle/failure retries backed by the shared policy, admitted as the
// target's tenant.
func (p *Platform) invokeFromCloud(ctx *runtime.Ctx, target wire.SpawnTarget) error {
	params := wire.MustMarshal(target.Payload)
	err := p.fnInvokeRetry.Do(func() error {
		d, failed := p.cloudLink.RequestCost(approxInvokeBytes)
		ctx.Clock().Sleep(d)
		if failed {
			return cos.ErrRequestFailed
		}
		_, err := p.controller.InvokeTenant(target.Tenant, target.Action, params)
		return err
	})
	if err != nil {
		return fmt.Errorf("core: in-cloud invocation failed: %w", err)
	}
	return nil
}

// getRetry reads an object through the function's storage view with
// transient-failure retries backed by the shared policy.
func (p *Platform) getRetry(ctx *runtime.Ctx, bucket, key string) ([]byte, error) {
	var data []byte
	err := p.fnStorageRetry.Do(func() error {
		var err error
		data, _, err = ctx.Storage().Get(bucket, key)
		return err
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

// putRetry writes an object through the function's storage view with
// transient-failure retries backed by the shared policy.
func (p *Platform) putRetry(ctx *runtime.Ctx, bucket, key string, body []byte) error {
	return p.fnStorageRetry.Do(func() error {
		_, err := ctx.Storage().Put(bucket, key, body)
		return err
	})
}

// spawner implements runtime.Spawner over an in-cloud executor, enabling
// dynamic composition from inside functions (§4.4). region is the spawning
// function's storage region ("" outside multi-region platforms): the
// sub-executor's own traffic stays in that region, while the spawned calls
// get their own placement. tenant is the spawning call's tenant, so
// children are admitted under the same fair-share quota as their parent.
type spawner struct {
	platform *Platform
	image    string
	deadline time.Time
	region   string
	tenant   string
}

var _ runtime.Spawner = (*spawner)(nil)

// Spawn stages and fires one invocation per argument and returns a
// reference combining them as a list. Callers building sequences can set
// ref.Combine = wire.CombineSingle before returning the ref.
func (s *spawner) Spawn(function string, args []any) (*wire.FuturesRef, error) {
	image := s.image
	if image == "" {
		image = runtime.DefaultImage
	}
	sub, err := s.platform.inCloudExecutor(image, s.region, s.tenant)
	if err != nil {
		return nil, err
	}
	futures, err := sub.Map(function, args)
	if err != nil {
		return nil, err
	}
	callIDs := make([]string, len(futures))
	actIDs := make([]string, len(futures))
	known := false
	for i, f := range futures {
		callIDs[i] = f.CallID()
		actIDs[i] = f.ActivationID()
		if actIDs[i] != "" {
			known = true
		}
	}
	ref := &wire.FuturesRef{
		MetaBucket: s.platform.MetaBucket(),
		ExecutorID: sub.ID(),
		CallIDs:    callIDs,
		Combine:    wire.CombineList,
	}
	// Carrying the activation IDs lets whoever awaits this ref consult
	// activation records for spawned calls that die without committing a
	// status, instead of hanging until its deadline.
	if known {
		ref.ActivationIDs = actIDs
	}
	return ref, nil
}

// Await blocks until every call in ref committed a status and returns their
// resolved values in order.
func (s *spawner) Await(ref *wire.FuturesRef) ([]json.RawMessage, error) {
	image := s.image
	if image == "" {
		image = runtime.DefaultImage
	}
	sub, err := s.platform.inCloudExecutor(image, s.region, s.tenant)
	if err != nil {
		return nil, err
	}
	r := &resolver{exec: sub, deadline: s.deadline}
	if err := r.awaitCalls(ref); err != nil {
		return nil, err
	}
	values := make([]json.RawMessage, len(ref.CallIDs))
	for i, callID := range ref.CallIDs {
		val, err := r.resolveCall(ref.MetaBucket, ref.ExecutorID, callID, 0)
		if err != nil {
			return nil, err
		}
		values[i] = val
	}
	return values, nil
}
