package core

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"gowren/internal/cos"
	"gowren/internal/netsim"
	"gowren/internal/runtime"
	"gowren/internal/vclock"
	"gowren/internal/wire"
)

// env is a fully wired simulated cloud plus a client-side executor config.
type env struct {
	clk      *vclock.Virtual
	reg      *runtime.Registry
	store    *cos.Store
	platform *Platform
}

// newEnv builds a platform with a default image preloaded with test
// functions.
func newEnv(t testing.TB, mutate func(*PlatformConfig)) *env {
	t.Helper()
	return newEnvFull(t, mutate, nil)
}

// newEnvWith is newEnv plus an image hook for extra function registration.
func newEnvWith(t testing.TB, mutateImage func(*runtime.Image)) *env {
	t.Helper()
	return newEnvFull(t, nil, mutateImage)
}

func newEnvFull(t testing.TB, mutate func(*PlatformConfig), mutateImage func(*runtime.Image)) *env {
	t.Helper()
	clk := vclock.NewVirtual()
	reg := runtime.NewRegistry()
	img := runtime.NewImage(runtime.DefaultImage, 100)
	registerTestFunctions(t, img)
	if mutateImage != nil {
		mutateImage(img)
	}
	if err := reg.Publish(img); err != nil {
		t.Fatal(err)
	}
	store := cos.NewStore()
	cfg := PlatformConfig{Clock: clk, Registry: reg, Store: store}
	if mutate != nil {
		mutate(&cfg)
	}
	p, err := NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &env{clk: clk, reg: reg, store: store, platform: p}
}

func registerTestFunctions(t testing.TB, img *runtime.Image) {
	t.Helper()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	// The paper's Fig. 1 example: my_function(x) = x + 7.
	must(img.RegisterPlain("add7", func(_ *runtime.Ctx, arg json.RawMessage) (any, error) {
		var x int
		if err := wire.Unmarshal(arg, &x); err != nil {
			return nil, err
		}
		return x + 7, nil
	}))
	must(img.RegisterPlain("boom", func(_ *runtime.Ctx, _ json.RawMessage) (any, error) {
		return nil, errors.New("user code exploded")
	}))
	must(img.RegisterPlain("busy", func(ctx *runtime.Ctx, arg json.RawMessage) (any, error) {
		var seconds int
		if err := wire.Unmarshal(arg, &seconds); err != nil {
			return nil, err
		}
		if err := ctx.ChargeCompute(time.Duration(seconds) * time.Second); err != nil {
			return nil, err
		}
		return seconds, nil
	}))
	// Dynamic parallel composition: spawn add7 over a generated list and
	// return the continuation (paper §4.4 example).
	must(img.RegisterPlain("fanout", func(ctx *runtime.Ctx, arg json.RawMessage) (any, error) {
		var n int
		if err := wire.Unmarshal(arg, &n); err != nil {
			return nil, err
		}
		sp, err := ctx.Spawner()
		if err != nil {
			return nil, err
		}
		args := make([]any, n)
		for i := range args {
			args[i] = i
		}
		return sp.Spawn("add7", args)
	}))
	// Nested parallelism with in-function merge: spawn two add7 calls and
	// sum their results locally before returning.
	must(img.RegisterPlain("fanoutMerge", func(ctx *runtime.Ctx, arg json.RawMessage) (any, error) {
		sp, err := ctx.Spawner()
		if err != nil {
			return nil, err
		}
		ref, err := sp.Spawn("add7", []any{10, 20})
		if err != nil {
			return nil, err
		}
		values, err := sp.Await(ref)
		if err != nil {
			return nil, err
		}
		sum := 0
		for _, v := range values {
			var x int
			if err := wire.Unmarshal(v, &x); err != nil {
				return nil, err
			}
			sum += x
		}
		return sum, nil
	}))
	// A two-step sequence: step1 invokes step2 on its output and returns
	// the continuation, so the client transparently receives step2's value.
	must(img.RegisterPlain("seqStep1", func(ctx *runtime.Ctx, arg json.RawMessage) (any, error) {
		var x int
		if err := wire.Unmarshal(arg, &x); err != nil {
			return nil, err
		}
		sp, err := ctx.Spawner()
		if err != nil {
			return nil, err
		}
		ref, err := sp.Spawn("add7", []any{x * 2})
		if err != nil {
			return nil, err
		}
		ref.Combine = wire.CombineSingle
		return ref, nil
	}))
	must(img.RegisterMapPartition("partitionLen", func(_ *runtime.Ctx, part *runtime.PartitionReader) (any, error) {
		data, err := part.ReadAll()
		if err != nil {
			return nil, err
		}
		return len(data), nil
	}))
	must(img.RegisterReduce("sum", func(_ *runtime.Ctx, group string, partials []json.RawMessage) (any, error) {
		total := 0
		for _, p := range partials {
			var x int
			if err := wire.Unmarshal(p, &x); err != nil {
				return nil, err
			}
			total += x
		}
		return map[string]any{"group": group, "total": total, "parts": len(partials)}, nil
	}))
}

// executor builds a client-side executor with the given overrides.
func (e *env) executor(t testing.TB, mutate func(*Config)) *Executor {
	t.Helper()
	cfg := Config{
		Platform: e.platform,
		Storage:  cos.NewLinked(e.store, e.clk, netsim.Loopback()),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	exec, err := NewExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return exec
}

func decodeInts(t *testing.T, raws []json.RawMessage) []int {
	t.Helper()
	out := make([]int, len(raws))
	for i, r := range raws {
		if err := wire.Unmarshal(r, &out[i]); err != nil {
			t.Fatalf("decode result %d (%s): %v", i, r, err)
		}
	}
	return out
}

func TestMapEndToEnd(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	var results []json.RawMessage
	e.clk.Run(func() {
		if _, err := exec.Map("add7", []any{3, 6, 9}); err != nil {
			t.Error(err)
			return
		}
		var err error
		results, err = exec.GetResult(GetResultOptions{})
		if err != nil {
			t.Error(err)
		}
	})
	got := decodeInts(t, results)
	want := []int{10, 13, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("results = %v, want %v", got, want)
		}
	}
}

func TestCallAsyncNonBlockingThenResult(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		before := e.clk.Now()
		fut, err := exec.CallAsync("busy", 50)
		if err != nil {
			t.Error(err)
			return
		}
		// call_async must not wait the 50s task out.
		if issued := e.clk.Now().Sub(before); issued > 20*time.Second {
			t.Errorf("call_async blocked for %v", issued)
		}
		done, err := fut.Done()
		if err != nil {
			t.Error(err)
		}
		if done {
			t.Error("future done immediately after invocation of 50s task")
		}
		results, err := exec.GetResult(GetResultOptions{})
		if err != nil {
			t.Error(err)
			return
		}
		if got := decodeInts(t, results); got[0] != 50 {
			t.Errorf("result = %d, want 50", got[0])
		}
		if total := e.clk.Now().Sub(before); total < 50*time.Second {
			t.Errorf("result arrived before the task could have finished: %v", total)
		}
	})
}

func TestUserErrorPropagates(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		if _, err := exec.Map("boom", []any{1}); err != nil {
			t.Error(err)
			return
		}
		_, err := exec.GetResult(GetResultOptions{})
		if !errors.Is(err, ErrCallFailed) {
			t.Errorf("err = %v, want ErrCallFailed", err)
		}
		if err == nil || !strings.Contains(err.Error(), "user code exploded") {
			t.Errorf("error %v should carry the user message", err)
		}
	})
}

func TestUnknownFunctionFails(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		if _, err := exec.Map("no-such-fn", []any{1}); err != nil {
			t.Error(err)
			return
		}
		_, err := exec.GetResult(GetResultOptions{Timeout: time.Hour})
		if !errors.Is(err, ErrCallFailed) {
			t.Errorf("err = %v, want ErrCallFailed", err)
		}
	})
}

func TestWaitStrategies(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		// Two tasks with very different durations.
		if _, err := exec.Map("busy", []any{5, 300}); err != nil {
			t.Error(err)
			return
		}
		done, pending, err := exec.Wait(WaitAlways, time.Time{})
		if err != nil {
			t.Error(err)
		}
		if len(done) != 0 || len(pending) != 2 {
			t.Errorf("always: done=%d pending=%d, want 0/2", len(done), len(pending))
		}
		done, pending, err = exec.Wait(WaitAnyCompleted, time.Time{})
		if err != nil {
			t.Error(err)
		}
		if len(done) != 1 || len(pending) != 1 {
			t.Errorf("any: done=%d pending=%d, want 1/1", len(done), len(pending))
		}
		if done[0].CallID() != "00000" {
			t.Errorf("the 5s task should finish first, got call %s", done[0].CallID())
		}
		done, pending, err = exec.Wait(WaitAllCompleted, time.Time{})
		if err != nil {
			t.Error(err)
		}
		if len(done) != 2 || len(pending) != 0 {
			t.Errorf("all: done=%d pending=%d, want 2/0", len(done), len(pending))
		}
	})
}

func TestWaitDeadline(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		if _, err := exec.Map("busy", []any{500}); err != nil {
			t.Error(err)
			return
		}
		_, pending, err := exec.Wait(WaitAllCompleted, e.clk.Now().Add(10*time.Second))
		if !errors.Is(err, ErrWaitTimeout) {
			t.Errorf("err = %v, want ErrWaitTimeout", err)
		}
		if len(pending) != 1 {
			t.Errorf("pending = %d, want 1", len(pending))
		}
	})
}

func TestGetResultTimeout(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		if _, err := exec.Map("busy", []any{500}); err != nil {
			t.Error(err)
			return
		}
		_, err := exec.GetResult(GetResultOptions{Timeout: 30 * time.Second})
		if !errors.Is(err, ErrWaitTimeout) {
			t.Errorf("err = %v, want ErrWaitTimeout", err)
		}
	})
}

func TestGetResultWithoutCalls(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	if _, err := exec.GetResult(GetResultOptions{}); !errors.Is(err, ErrNoFutures) {
		t.Fatalf("err = %v, want ErrNoFutures", err)
	}
	if _, _, err := exec.Wait(WaitAllCompleted, time.Time{}); !errors.Is(err, ErrNoFutures) {
		t.Fatalf("wait err = %v, want ErrNoFutures", err)
	}
}

func TestProgressCallback(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	var reports [][2]int
	e.clk.Run(func() {
		if _, err := exec.Map("busy", []any{1, 2, 3, 4}); err != nil {
			t.Error(err)
			return
		}
		_, err := exec.GetResult(GetResultOptions{
			Progress: func(done, total int) { reports = append(reports, [2]int{done, total}) },
		})
		if err != nil {
			t.Error(err)
		}
	})
	if len(reports) < 2 {
		t.Fatalf("progress reported %d times, want at least initial and final", len(reports))
	}
	last := reports[len(reports)-1]
	if last != [2]int{4, 4} {
		t.Fatalf("final progress = %v, want {4,4}", last)
	}
	for i := 1; i < len(reports); i++ {
		if reports[i][0] < reports[i-1][0] {
			t.Fatalf("progress went backwards: %v", reports)
		}
	}
}

func TestMassiveSpawningEquivalentResults(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, func(c *Config) {
		c.MassiveSpawning = true
		c.SpawnGroupSize = 10
	})
	args := make([]any, 35) // 4 spawner groups
	for i := range args {
		args[i] = i
	}
	var results []json.RawMessage
	e.clk.Run(func() {
		if _, err := exec.Map("add7", args); err != nil {
			t.Error(err)
			return
		}
		var err error
		results, err = exec.GetResult(GetResultOptions{})
		if err != nil {
			t.Error(err)
		}
	})
	got := decodeInts(t, results)
	for i, v := range got {
		if v != i+7 {
			t.Fatalf("result[%d] = %d, want %d", i, v, i+7)
		}
	}
}

func TestThrottledInvocationsRetry(t *testing.T) {
	e := newEnv(t, func(cfg *PlatformConfig) { cfg.MaxConcurrent = 4 })
	exec := e.executor(t, func(c *Config) {
		c.RetryBackoff = 500 * time.Millisecond
		c.MaxRetries = 20
	})
	var results []json.RawMessage
	e.clk.Run(func() {
		if _, err := exec.Map("busy", []any{2, 2, 2, 2, 2, 2, 2, 2, 2, 2}); err != nil {
			t.Error(err)
			return
		}
		var err error
		results, err = exec.GetResult(GetResultOptions{})
		if err != nil {
			t.Error(err)
		}
	})
	if len(results) != 10 {
		t.Fatalf("results = %d, want 10 (throttled calls must retry to completion)", len(results))
	}
}

func TestCrashedActivationSurfacesError(t *testing.T) {
	e := newEnv(t, func(cfg *PlatformConfig) { cfg.CrashProb = 1.0 })
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		if _, err := exec.Map("add7", []any{1}); err != nil {
			t.Error(err)
			return
		}
		_, err := exec.GetResult(GetResultOptions{Timeout: time.Hour})
		if !errors.Is(err, ErrCallFailed) {
			t.Errorf("err = %v, want ErrCallFailed from crashed activation", err)
		}
	})
}

func TestDynamicCompositionFanout(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	var results []json.RawMessage
	e.clk.Run(func() {
		if _, err := exec.CallAsync("fanout", 5); err != nil {
			t.Error(err)
			return
		}
		var err error
		results, err = exec.GetResult(GetResultOptions{})
		if err != nil {
			t.Error(err)
		}
	})
	if len(results) != 1 {
		t.Fatalf("results = %d, want 1", len(results))
	}
	var values []int
	if err := wire.Unmarshal(results[0], &values); err != nil {
		t.Fatalf("composed result %s: %v", results[0], err)
	}
	if len(values) != 5 {
		t.Fatalf("composed values = %v, want 5 entries", values)
	}
	for i, v := range values {
		if v != i+7 {
			t.Fatalf("composed value[%d] = %d, want %d", i, v, i+7)
		}
	}
}

func TestDynamicCompositionInFunctionMerge(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	var results []json.RawMessage
	e.clk.Run(func() {
		if _, err := exec.CallAsync("fanoutMerge", nil); err != nil {
			t.Error(err)
			return
		}
		var err error
		results, err = exec.GetResult(GetResultOptions{})
		if err != nil {
			t.Error(err)
		}
	})
	got := decodeInts(t, results)
	if got[0] != 44 { // (10+7)+(20+7)
		t.Fatalf("merged sum = %d, want 44", got[0])
	}
}

func TestSequenceComposition(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	var results []json.RawMessage
	e.clk.Run(func() {
		if _, err := exec.CallAsync("seqStep1", 5); err != nil {
			t.Error(err)
			return
		}
		var err error
		results, err = exec.GetResult(GetResultOptions{})
		if err != nil {
			t.Error(err)
		}
	})
	got := decodeInts(t, results)
	if got[0] != 17 { // (5*2)+7
		t.Fatalf("sequence result = %d, want 17", got[0])
	}
}

func TestMapReduceInlineValues(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	var results []json.RawMessage
	e.clk.Run(func() {
		if _, err := exec.MapReduce("add7", InlineValues{1, 2, 3}, "sum", MapReduceOptions{}); err != nil {
			t.Error(err)
			return
		}
		var err error
		results, err = exec.GetResult(GetResultOptions{})
		if err != nil {
			t.Error(err)
		}
	})
	if len(results) != 1 {
		t.Fatalf("reduce results = %d, want 1", len(results))
	}
	var red struct {
		Total int `json:"total"`
		Parts int `json:"parts"`
	}
	if err := wire.Unmarshal(results[0], &red); err != nil {
		t.Fatal(err)
	}
	if red.Total != 8+9+10 || red.Parts != 3 {
		t.Fatalf("reduce = %+v, want total 27 over 3 parts", red)
	}
}

func TestMapReduceOverBucketWithChunking(t *testing.T) {
	e := newEnv(t, nil)
	// Dataset: two objects of 1000 and 2500 bytes; 1000-byte chunks give
	// 1 + 3 = 4 partitions.
	if err := e.store.CreateBucket("dataset"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.store.Put("dataset", "a", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.store.Put("dataset", "b", make([]byte, 2500)); err != nil {
		t.Fatal(err)
	}
	exec := e.executor(t, nil)
	var results []json.RawMessage
	e.clk.Run(func() {
		if _, err := exec.MapReduce("partitionLen", Buckets{"dataset"}, "sum", MapReduceOptions{ChunkBytes: 1000}); err != nil {
			t.Error(err)
			return
		}
		var err error
		results, err = exec.GetResult(GetResultOptions{})
		if err != nil {
			t.Error(err)
		}
	})
	if len(results) != 1 {
		t.Fatalf("reduce results = %d, want 1 global reducer", len(results))
	}
	var red struct {
		Total int `json:"total"`
		Parts int `json:"parts"`
	}
	if err := wire.Unmarshal(results[0], &red); err != nil {
		t.Fatal(err)
	}
	if red.Total != 3500 {
		t.Fatalf("total bytes = %d, want 3500 (every byte covered exactly once)", red.Total)
	}
	if red.Parts != 4 {
		t.Fatalf("partitions = %d, want 4", red.Parts)
	}
}

func TestMapReduceReducerPerObject(t *testing.T) {
	e := newEnv(t, nil)
	if err := e.store.CreateBucket("cities"); err != nil {
		t.Fatal(err)
	}
	sizes := map[string]int{"amsterdam": 1200, "barcelona": 800, "chicago": 3000}
	for city, size := range sizes {
		if _, err := e.store.Put("cities", city, make([]byte, size)); err != nil {
			t.Fatal(err)
		}
	}
	exec := e.executor(t, nil)
	var results []json.RawMessage
	e.clk.Run(func() {
		_, err := exec.MapReduce("partitionLen", Buckets{"cities"}, "sum", MapReduceOptions{
			ChunkBytes:          1000,
			ReducerOnePerObject: true,
		})
		if err != nil {
			t.Error(err)
			return
		}
		results, err = exec.GetResult(GetResultOptions{})
		if err != nil {
			t.Error(err)
		}
	})
	if len(results) != 3 {
		t.Fatalf("reducers = %d, want one per city", len(results))
	}
	totals := map[string]int{}
	for _, r := range results {
		var red struct {
			Group string `json:"group"`
			Total int    `json:"total"`
		}
		if err := wire.Unmarshal(r, &red); err != nil {
			t.Fatal(err)
		}
		city := strings.TrimPrefix(red.Group, "cities/")
		totals[city] = red.Total
	}
	for city, size := range sizes {
		if totals[city] != size {
			t.Fatalf("city %s total = %d, want %d (totals: %v)", city, totals[city], size, totals)
		}
	}
}

func TestMapEmptyInputRejected(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		if _, err := exec.Map("add7", nil); err == nil {
			t.Error("empty map accepted")
		}
	})
}

func TestExecutorIDsUnique(t *testing.T) {
	e := newEnv(t, nil)
	a := e.executor(t, nil)
	b := e.executor(t, nil)
	if a.ID() == b.ID() {
		t.Fatalf("executor IDs collide: %s", a.ID())
	}
}

func TestRuntimeSelectionPerExecutor(t *testing.T) {
	e := newEnv(t, nil)
	// Publish a custom image with an exclusive function, like the paper's
	// matplotlib example.
	custom := runtime.NewImage("matplotlib:1", 400)
	if err := custom.RegisterPlain("plot", func(_ *runtime.Ctx, _ json.RawMessage) (any, error) {
		return "plotted", nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.reg.Publish(custom); err != nil {
		t.Fatal(err)
	}
	def := e.executor(t, nil)
	cust := e.executor(t, func(c *Config) { c.RuntimeImage = "matplotlib:1" })
	e.clk.Run(func() {
		// plot is not in the default image...
		if _, err := def.Map("plot", []any{nil}); err != nil {
			t.Error(err)
			return
		}
		if _, err := def.GetResult(GetResultOptions{Timeout: time.Hour}); !errors.Is(err, ErrCallFailed) {
			t.Errorf("default-runtime err = %v, want ErrCallFailed", err)
		}
		// ...but the custom-runtime executor runs it.
		if _, err := cust.Map("plot", []any{nil}); err != nil {
			t.Error(err)
			return
		}
		res, err := cust.GetResult(GetResultOptions{})
		if err != nil {
			t.Error(err)
			return
		}
		var s string
		if err := wire.Unmarshal(res[0], &s); err != nil || s != "plotted" {
			t.Errorf("custom runtime result = %q, %v", s, err)
		}
	})
}

func TestStatusRecordTimestampsConsistent(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		fut, err := exec.CallAsync("busy", 10)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.GetResult(GetResultOptions{}); err != nil {
			t.Error(err)
			return
		}
		rec, err := fut.Status()
		if err != nil {
			t.Error(err)
			return
		}
		if !rec.OK {
			t.Errorf("status = %+v", rec)
		}
		if span := time.Duration(rec.EndUnixNs - rec.StartUnixNs); span != 10*time.Second {
			t.Errorf("recorded span = %v, want 10s", span)
		}
		if rec.ActivationID == "" {
			t.Error("status missing activation id")
		}
		if !rec.ColdStart {
			t.Error("first call should be recorded as cold start")
		}
	})
}

func TestCallIDsUniquePerExecutorProperty(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		for _, id := range exec.reserveCallIDs(i%7 + 1) {
			if seen[id] {
				t.Fatalf("duplicate call id %q", id)
			}
			seen[id] = true
		}
	}
	// IDs are zero-padded and therefore lexicographically ordered, which
	// the status-prefix LIST relies on for stable sweeps.
	prev := ""
	for i := 0; i < 10; i++ {
		id := exec.reserveCallIDs(1)[0]
		if id <= prev {
			t.Fatalf("ids not increasing: %q then %q", prev, id)
		}
		prev = id
	}
}
