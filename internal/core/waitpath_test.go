package core

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"gowren/internal/cos"
	"gowren/internal/netsim"
	"gowren/internal/runtime"
	"gowren/internal/vclock"
	"gowren/internal/wire"
)

// Tests for the high-throughput wait path: incremental frontier-based
// status sweeps, the shared sweep coordinator, single-key Done probes,
// and inline small results.

func TestSweepCoordinatorFrontierAndForget(t *testing.T) {
	store := cos.NewStore()
	if err := store.CreateBucket("meta"); err != nil {
		t.Fatal(err)
	}
	counting := cos.NewCounting(store)
	clk := vclock.NewVirtual()
	co := newSweepCoordinator(counting, clk, false)
	ns := nsKey{bucket: "meta", execID: "ex"}

	put := func(callID string) {
		t.Helper()
		if _, err := store.Put("meta", statusKey("ex", callID), []byte("{}")); err != nil {
			t.Fatal(err)
		}
	}
	// Out-of-order completion: 00002 is still missing.
	put("00000")
	put("00001")
	put("00003")

	asOf := clk.Now()
	if out := co.sweep(ns, asOf); out.err != nil || !out.listed {
		t.Fatalf("sweep outcome = %+v", out)
	}
	for id, want := range map[string]bool{"00000": true, "00001": true, "00002": false, "00003": true} {
		if got := co.completed(ns, id); got != want {
			t.Errorf("completed(%s) = %v, want %v", id, got, want)
		}
	}
	if n := counting.Counts().ObjectsListed; n != 3 {
		t.Fatalf("objects listed = %d, want 3", n)
	}

	// Same observation time: the cached sweep answers, no second LIST.
	if out := co.sweep(ns, asOf); out.err != nil || !out.listed {
		t.Fatalf("cached sweep outcome = %+v", out)
	}
	if n := counting.Counts().ListOps; n != 1 {
		t.Fatalf("list ops after cached sweep = %d, want 1", n)
	}

	// A later sweep resumes at the frontier (after 00001): only the keys
	// past it are listed again, not the whole prefix.
	put("00002")
	if out := co.sweep(ns, asOf.Add(time.Second)); out.err != nil {
		t.Fatal(out.err)
	}
	if !co.completed(ns, "00002") {
		t.Error("00002 not completed after gap filled")
	}
	if n := counting.Counts().ObjectsListed; n != 5 { // 3 + {00002, 00003}
		t.Fatalf("objects listed = %d, want 5 (frontier-resumed LIST)", n)
	}

	// Forgetting a call below the frontier rolls back to it but keeps the
	// completions in between cached.
	co.forget(ns, "00001")
	if co.completed(ns, "00001") {
		t.Error("00001 still completed after forget")
	}
	for _, id := range []string{"00000", "00002", "00003"} {
		if !co.completed(ns, id) {
			t.Errorf("%s lost by forget of 00001", id)
		}
	}
	// The re-sweep re-observes 00001 (still in storage here) and the
	// frontier re-advances past the cached completions.
	if out := co.sweep(ns, asOf.Add(2*time.Second)); out.err != nil {
		t.Fatal(out.err)
	}
	if !co.completed(ns, "00001") {
		t.Error("00001 not re-observed after forget + sweep")
	}
}

// listHookClient runs a callback after the first List returns — the moment
// a LIST's snapshot is on the wire but not yet harvested, which is where a
// concurrent respawn can land.
type listHookClient struct {
	cos.Client
	afterList func()
}

func (h *listHookClient) List(bucket, prefix, marker string, maxKeys int) (cos.ListResult, error) {
	res, err := h.Client.List(bucket, prefix, marker, maxKeys)
	if hook := h.afterList; hook != nil {
		h.afterList = nil
		hook()
	}
	return res, err
}

// TestSweepForgetRacesInflightSweep: a respawn that deletes a stale status
// object and forgets the call while a LIST is in flight must not have the
// call re-marked done by that LIST's (pre-delete) snapshot — the waiter
// would chase a status key that no longer exists. The raced harvest is
// discarded and the next sweep observes only real state.
func TestSweepForgetRacesInflightSweep(t *testing.T) {
	store := cos.NewStore()
	if err := store.CreateBucket("meta"); err != nil {
		t.Fatal(err)
	}
	clk := vclock.NewVirtual()
	hooked := &listHookClient{Client: store}
	co := newSweepCoordinator(hooked, clk, false)
	ns := nsKey{bucket: "meta", execID: "ex"}

	for _, id := range []string{"00000", "00001", "00002"} {
		if _, err := store.Put("meta", statusKey("ex", id), []byte("{}")); err != nil {
			t.Fatal(err)
		}
	}
	// The respawn lands between the LIST response and its harvest: the
	// stale status is deleted from storage and withdrawn from the done-set,
	// but the in-flight snapshot still contains it.
	hooked.afterList = func() {
		if err := store.Delete("meta", statusKey("ex", "00001")); err != nil {
			t.Fatal(err)
		}
		co.forget(ns, "00001")
	}
	if out := co.sweep(ns, clk.Now()); out.err != nil {
		t.Fatal(out.err)
	}
	if co.completed(ns, "00001") {
		t.Fatal("raced sweep re-marked a forgotten call as done from its stale snapshot")
	}
	// The follow-up sweep sees the post-respawn truth: everything but the
	// deleted status is done.
	if out := co.sweep(ns, clk.Now().Add(time.Second)); out.err != nil || !out.listed {
		t.Fatalf("follow-up sweep outcome = %+v", out)
	}
	for id, want := range map[string]bool{"00000": true, "00001": false, "00002": true} {
		if got := co.completed(ns, id); got != want {
			t.Errorf("completed(%s) = %v, want %v", id, got, want)
		}
	}
}

// TestCollectionListingScalesWithCompletions is the O(newly finished)
// regression test: collecting a 1000-future job must list each status
// object a bounded number of times, where the full-relist baseline pays
// for the whole prefix on every poll. It also checks that small results
// never touch a result object.
func TestCollectionListingScalesWithCompletions(t *testing.T) {
	const n = 1000
	run := func(fullRelist bool) (cos.OpCounts, JobStats) {
		e := newEnv(t, nil)
		exec := e.executor(t, func(c *Config) { c.FullRelistSweep = fullRelist })
		var stats JobStats
		e.clk.Run(func() {
			// Uniform task duration: completions arrive in near-call order
			// (invocation order plus platform jitter), the regime the
			// done-frontier is designed for. Wildly skewed completion
			// orders degrade toward the full re-list cost but never exceed
			// it.
			args := make([]any, n)
			for i := range args {
				args[i] = 15 // busy seconds
			}
			if _, err := exec.Map("busy", args); err != nil {
				t.Error(err)
				return
			}
			if _, err := exec.GetResult(GetResultOptions{}); err != nil {
				t.Error(err)
				return
			}
			var err error
			stats, err = exec.Stats()
			if err != nil {
				t.Error(err)
			}
		})
		return exec.StorageOps(), stats
	}

	inc, incStats := run(false)
	full, _ := run(true)

	// The acceptance bar: at least a 10× drop in objects listed per
	// collection versus the pre-change full-relist sweep.
	if full.ObjectsListed < 10*inc.ObjectsListed {
		t.Errorf("objects listed: full relist %d vs incremental %d — want ≥10× reduction",
			full.ObjectsListed, inc.ObjectsListed)
	}
	// Incremental sweeps list each status O(1) times: n statuses plus a
	// small re-list margin at the frontier for out-of-order completions.
	if inc.ObjectsListed > 6*n {
		t.Errorf("incremental sweep listed %d objects for %d futures — not O(new completions)", inc.ObjectsListed, n)
	}
	// busy returns an int: every result inlines, so the collection issues
	// zero result-object GETs — there are no result objects at all.
	if incStats.Results != 0 {
		t.Errorf("result objects = %d, want 0 (small results must inline)", incStats.Results)
	}
	if incStats.Statuses != n {
		t.Errorf("status objects = %d, want %d", incStats.Statuses, n)
	}
	// Beyond listing, the whole collection stays linear: one status GET per
	// future plus staging-phase traffic.
	if inc.GetOps > 3*n {
		t.Errorf("incremental collection issued %d GETs for %d futures", inc.GetOps, n)
	}
}

// TestInlineAndSpilledResultsResolveIdentically pins the inline threshold
// semantics: a value under the threshold rides in the status record (no
// result object), one over it spills to a result object, and both resolve
// to the same bytes through GetResult.
func TestInlineAndSpilledResultsResolveIdentically(t *testing.T) {
	newBlobEnv := func() *env {
		return newEnvWith(t, func(img *runtime.Image) {
			if err := img.RegisterPlain("blob", func(_ *runtime.Ctx, arg json.RawMessage) (any, error) {
				var size int
				if err := wire.Unmarshal(arg, &size); err != nil {
					return nil, err
				}
				return strings.Repeat("x", size), nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
	run := func(size int) (string, JobStats) {
		e := newBlobEnv()
		exec := e.executor(t, nil)
		var got string
		var stats JobStats
		e.clk.Run(func() {
			if _, err := exec.Map("blob", []any{size}); err != nil {
				t.Error(err)
				return
			}
			results, err := exec.GetResult(GetResultOptions{})
			if err != nil {
				t.Error(err)
				return
			}
			if err := wire.Unmarshal(results[0], &got); err != nil {
				t.Error(err)
				return
			}
			stats, err = exec.Stats()
			if err != nil {
				t.Error(err)
			}
		})
		return got, stats
	}

	small, smallStats := run(256)
	if small != strings.Repeat("x", 256) {
		t.Errorf("inlined result corrupted: %d bytes", len(small))
	}
	if smallStats.Results != 0 {
		t.Errorf("small result wrote %d result objects, want 0 (inlined)", smallStats.Results)
	}

	bigSize := 4 * inlineResultThreshold
	big, bigStats := run(bigSize)
	if big != strings.Repeat("x", bigSize) {
		t.Errorf("spilled result corrupted: %d bytes, want %d", len(big), bigSize)
	}
	if bigStats.Results != 1 {
		t.Errorf("large result wrote %d result objects, want 1 (spilled)", bigStats.Results)
	}
}

// TestFutureDoneProbesSingleKey checks Future.Done's fast path: one HEAD
// of the status key, never a namespace LIST.
func TestFutureDoneProbesSingleKey(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		fut, err := exec.CallAsync("busy", 30)
		if err != nil {
			t.Error(err)
			return
		}
		before := exec.StorageOps()
		done, err := fut.Done()
		if err != nil {
			t.Error(err)
			return
		}
		if done {
			t.Error("30s task done immediately")
		}
		after := exec.StorageOps()
		if after.HeadOps != before.HeadOps+1 {
			t.Errorf("Done() issued %d HEADs, want 1", after.HeadOps-before.HeadOps)
		}
		if after.ListOps != before.ListOps {
			t.Errorf("Done() issued %d LISTs, want 0", after.ListOps-before.ListOps)
		}
		for i := 0; i < 40 && !done; i++ {
			e.clk.Sleep(2 * time.Second)
			done, err = fut.Done()
			if err != nil {
				t.Error(err)
				return
			}
		}
		if !done {
			t.Error("future never completed")
		}
		if got := exec.StorageOps(); got.ListOps != before.ListOps {
			t.Errorf("Done() polling issued %d LISTs, want 0", got.ListOps-before.ListOps)
		}
	})
}

// TestCompositionWaitSurfacesDeadCalls: a composition wait whose ref
// carries activation IDs must surface a spawned call that died without
// committing a status as ErrCallFailed, instead of polling until its
// deadline.
func TestCompositionWaitSurfacesDeadCalls(t *testing.T) {
	e := newEnv(t, func(cfg *PlatformConfig) { cfg.CrashProb = 1.0 })
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		fs, err := exec.Map("add7", []any{1})
		if err != nil {
			t.Error(err)
			return
		}
		f := fs[0]
		if f.ActivationID() == "" {
			t.Error("direct invocation produced no activation id")
			return
		}
		ref := &wire.FuturesRef{
			MetaBucket:    e.platform.MetaBucket(),
			ExecutorID:    f.ExecutorID(),
			CallIDs:       []string{f.CallID()},
			ActivationIDs: []string{f.ActivationID()},
			Combine:       wire.CombineList,
		}
		r := &resolver{exec: exec, deadline: e.clk.Now().Add(time.Hour)}
		start := e.clk.Now()
		err = r.awaitCalls(ref)
		if !errors.Is(err, ErrCallFailed) {
			t.Errorf("awaitCalls err = %v, want ErrCallFailed via activation consult", err)
		}
		if waited := e.clk.Now().Sub(start); waited > 10*time.Minute {
			t.Errorf("dead composed call took %v of virtual time to surface", waited)
		}
	})
}

// recordingClient captures the executor's client-side request sequence for
// the determinism test.
type recordingClient struct {
	cos.Client
	mu  sync.Mutex
	ops []string
}

func (c *recordingClient) note(op, bucket, key string) {
	c.mu.Lock()
	c.ops = append(c.ops, op+" "+bucket+" "+key)
	c.mu.Unlock()
}

func (c *recordingClient) Put(bucket, key string, data []byte) (cos.ObjectMeta, error) {
	c.note("PUT", bucket, key)
	return c.Client.Put(bucket, key, data)
}

func (c *recordingClient) Get(bucket, key string) ([]byte, cos.ObjectMeta, error) {
	c.note("GET", bucket, key)
	return c.Client.Get(bucket, key)
}

func (c *recordingClient) GetRange(bucket, key string, offset, length int64) ([]byte, cos.ObjectMeta, error) {
	c.note("GETRANGE", bucket, key)
	return c.Client.GetRange(bucket, key, offset, length)
}

func (c *recordingClient) Head(bucket, key string) (cos.ObjectMeta, error) {
	c.note("HEAD", bucket, key)
	return c.Client.Head(bucket, key)
}

func (c *recordingClient) List(bucket, prefix, marker string, maxKeys int) (cos.ListResult, error) {
	c.note("LIST", bucket, prefix+" after="+marker)
	return c.Client.List(bucket, prefix, marker, maxKeys)
}

func (c *recordingClient) Delete(bucket, key string) error {
	c.note("DELETE", bucket, key)
	return c.Client.Delete(bucket, key)
}

// TestSameSeedIdenticalRequestSequences: with a fixed platform seed and
// serialized client pools, two fresh runs must put byte-identical request
// sequences on the wire — the incremental sweep state (frontier markers in
// LIST requests) must be as deterministic as the rest of the client.
func TestSameSeedIdenticalRequestSequences(t *testing.T) {
	run := func() string {
		e := newEnv(t, func(cfg *PlatformConfig) { cfg.Seed = 42 })
		rec := &recordingClient{Client: cos.NewLinked(e.store, e.clk, netsim.Loopback())}
		exec := e.executor(t, func(c *Config) {
			c.Storage = rec
			c.InvokeConcurrency = 1
			c.StageConcurrency = 1
		})
		e.clk.Run(func() {
			if _, err := exec.Map("busy", []any{3, 1, 2, 5, 4}); err != nil {
				t.Error(err)
				return
			}
			if _, err := exec.GetResult(GetResultOptions{}); err != nil {
				t.Error(err)
			}
		})
		// Executor IDs are process-unique, so normalize them out before
		// comparing runs.
		return strings.ReplaceAll(strings.Join(rec.ops, "\n"), exec.ID(), "EXEC")
	}
	first := run()
	second := run()
	if first != second {
		a := strings.Split(first, "\n")
		b := strings.Split(second, "\n")
		limit := len(a)
		if len(b) < limit {
			limit = len(b)
		}
		for i := 0; i < limit; i++ {
			if a[i] != b[i] {
				t.Fatalf("request sequences diverge at op %d:\n  run1: %s\n  run2: %s", i, a[i], b[i])
			}
		}
		t.Fatalf("request sequences differ in length: %d vs %d ops", len(a), len(b))
	}
}

// BenchmarkWaitPathCollect benchmarks the full invoke→poll→collect loop at
// 10k futures in both sweep modes. Run with -bench to profile the poll
// loop; cmd/waitbench emits the same comparison as JSON for CI.
func BenchmarkWaitPathCollect(b *testing.B) {
	for _, mode := range []struct {
		name       string
		fullRelist bool
	}{
		{"incremental", false},
		{"fullRelist", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := newEnv(b, nil)
				exec := e.executor(b, func(c *Config) { c.FullRelistSweep = mode.fullRelist })
				e.clk.Run(func() {
					const n = 10000
					args := make([]any, n)
					for j := range args {
						args[j] = 15
					}
					if _, err := exec.Map("busy", args); err != nil {
						b.Error(err)
						return
					}
					if _, err := exec.GetResult(GetResultOptions{}); err != nil {
						b.Error(err)
					}
				})
				ops := exec.StorageOps()
				b.ReportMetric(float64(ops.ObjectsListed), "objectsListed/op")
				b.ReportMetric(float64(ops.ListOps), "lists/op")
			}
		})
	}
}
