package core

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"gowren/internal/runtime"
	"gowren/internal/wire"
)

// registerShuffleFunctions adds a word-count style KV pipeline to the test
// image: the map function emits one KV per word in its partition, the
// reducer sums counts per word.
func registerShuffleFunctions(t *testing.T, img *runtime.Image) {
	t.Helper()
	err := img.RegisterKVMap("kv/words", func(_ *runtime.Ctx, part *runtime.PartitionReader) ([]wire.KV, error) {
		data, err := part.ReadAll()
		if err != nil {
			return nil, err
		}
		var out []wire.KV
		for _, w := range strings.Fields(string(data)) {
			out = append(out, wire.KV{Key: w, Value: json.RawMessage("1")})
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = img.RegisterKVReduce("kv/sum", func(_ *runtime.Ctx, key string, values []json.RawMessage) (any, error) {
		total := 0
		for _, v := range values {
			var n int
			if err := wire.Unmarshal(v, &n); err != nil {
				return nil, err
			}
			total += n
		}
		return total, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// newShuffleEnv builds an env whose default image also has the KV pipeline
// and a word corpus in storage.
func newShuffleEnv(t *testing.T) (*env, map[string]int) {
	t.Helper()
	clkEnvBuilt := false
	var e *env
	// newEnv publishes the image before we can add functions; rebuild the
	// registration inside the image constructor instead.
	e = newEnvWith(t, func(img *runtime.Image) {
		registerShuffleFunctions(t, img)
		clkEnvBuilt = true
	})
	if !clkEnvBuilt {
		t.Fatal("image mutation hook not invoked")
	}
	if err := e.store.CreateBucket("corpus"); err != nil {
		t.Fatal(err)
	}
	docs := map[string]string{
		"doc-a": "apple banana apple cherry\napple banana\n",
		"doc-b": "banana cherry cherry date\n",
		"doc-c": "egg apple date banana egg\n",
	}
	want := map[string]int{}
	for key, body := range docs {
		if _, err := e.store.Put("corpus", key, []byte(body)); err != nil {
			t.Fatal(err)
		}
		for _, w := range strings.Fields(body) {
			want[w]++
		}
	}
	return e, want
}

func TestMapReduceShuffleWordCount(t *testing.T) {
	for _, reducers := range []int{1, 2, 4, 7} {
		e, want := newShuffleEnv(t)
		exec := e.executor(t, nil)
		var results []json.RawMessage
		e.clk.Run(func() {
			fs, err := exec.MapReduceShuffle("kv/words", Buckets{"corpus"}, "kv/sum", ShuffleOptions{
				NumReducers: reducers,
			})
			if err != nil {
				t.Error(err)
				return
			}
			if len(fs) != reducers {
				t.Errorf("reducer futures = %d, want %d", len(fs), reducers)
				return
			}
			results, err = exec.GetResult(GetResultOptions{})
			if err != nil {
				t.Error(err)
			}
		})
		got := map[string]int{}
		for _, raw := range results {
			var krs []wire.KeyResult
			if err := wire.Unmarshal(raw, &krs); err != nil {
				t.Fatal(err)
			}
			for i, kr := range krs {
				var n int
				if err := wire.Unmarshal(kr.Value, &n); err != nil {
					t.Fatal(err)
				}
				if _, dup := got[kr.Key]; dup {
					t.Fatalf("R=%d: key %q reduced twice", reducers, kr.Key)
				}
				got[kr.Key] = n
				if i > 0 && krs[i-1].Key >= kr.Key {
					t.Fatalf("R=%d: reducer output not key-sorted", reducers)
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("R=%d: keys = %d, want %d (%v)", reducers, len(got), len(want), got)
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("R=%d: count[%q] = %d, want %d", reducers, k, got[k], n)
			}
		}
	}
}

func TestShuffleWithChunkedPartitions(t *testing.T) {
	e, want := newShuffleEnv(t)
	exec := e.executor(t, nil)
	// Per-object granularity over several objects: word counts must be
	// conserved end to end across the shuffle.
	var results []json.RawMessage
	e.clk.Run(func() {
		_, err := exec.MapReduceShuffle("kv/words", Buckets{"corpus"}, "kv/sum", ShuffleOptions{
			ChunkBytes:  0, // per object
			NumReducers: 3,
		})
		if err != nil {
			t.Error(err)
			return
		}
		results, err = exec.GetResult(GetResultOptions{})
		if err != nil {
			t.Error(err)
		}
	})
	total := 0
	for _, raw := range results {
		var krs []wire.KeyResult
		if err := wire.Unmarshal(raw, &krs); err != nil {
			t.Fatal(err)
		}
		for _, kr := range krs {
			var n int
			if err := wire.Unmarshal(kr.Value, &n); err != nil {
				t.Fatal(err)
			}
			total += n
		}
	}
	wantTotal := 0
	for _, n := range want {
		wantTotal += n
	}
	if total != wantTotal {
		t.Fatalf("total words = %d, want %d", total, wantTotal)
	}
}

func TestShuffleCleanRemovesShuffleFiles(t *testing.T) {
	e, _ := newShuffleEnv(t)
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		if _, err := exec.MapReduceShuffle("kv/words", Buckets{"corpus"}, "kv/sum", ShuffleOptions{NumReducers: 2}); err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.GetResult(GetResultOptions{}); err != nil {
			t.Error(err)
			return
		}
		stats, err := exec.Stats()
		if err != nil {
			t.Error(err)
			return
		}
		if stats.Shuffle != 3*2 { // 3 map calls × 2 reducers
			t.Errorf("shuffle objects = %d, want 6", stats.Shuffle)
		}
		if err := exec.Clean(); err != nil {
			t.Error(err)
			return
		}
		stats, err = exec.Stats()
		if err != nil {
			t.Error(err)
			return
		}
		if stats.Shuffle != 0 {
			t.Errorf("shuffle objects after clean = %d", stats.Shuffle)
		}
	})
}

func TestShuffleValidation(t *testing.T) {
	e, _ := newShuffleEnv(t)
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		// Unknown source bucket surfaces at planning time.
		if _, err := exec.MapReduceShuffle("kv/words", Buckets{"ghost"}, "kv/sum", ShuffleOptions{}); err == nil {
			t.Error("unknown bucket accepted")
		}
		// Unknown functions surface as failed calls.
		if _, err := exec.MapReduceShuffle("kv/nope", Buckets{"corpus"}, "kv/sum", ShuffleOptions{}); err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.GetResult(GetResultOptions{Timeout: time.Hour}); err == nil {
			t.Error("unknown map function should fail the job")
		}
	})
}

func TestReducerForKeyProperty(t *testing.T) {
	f := func(key string, rRaw uint8) bool {
		r := int(rRaw%16) + 1
		i := reducerForKey(key, r)
		j := reducerForKey(key, r)
		return i == j && i >= 0 && i < r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReducerKeySpreadAcrossPartitions(t *testing.T) {
	// With many keys and 4 reducers, no reducer should be empty — the
	// hash must actually spread.
	const r = 4
	counts := make([]int, r)
	for i := 0; i < 1000; i++ {
		counts[reducerForKey(fmt.Sprintf("key-%d", i), r)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("reducer %d received no keys: %v", i, counts)
		}
	}
}
