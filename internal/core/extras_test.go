package core

import (
	"errors"
	"testing"
	"time"

	"gowren/internal/netsim"
	"gowren/internal/wire"
)

func TestCleanRemovesJobObjects(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		if _, err := exec.Map("add7", []any{1, 2, 3}); err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.GetResult(GetResultOptions{}); err != nil {
			t.Error(err)
			return
		}
		stats, err := exec.Stats()
		if err != nil {
			t.Error(err)
			return
		}
		// Results stay 0: small outputs ride inline in the status records,
		// so no result objects are ever written.
		if stats.Payloads != 3 || stats.Statuses != 3 || stats.Results != 0 {
			t.Errorf("pre-clean stats = %+v", stats)
		}
		if err := exec.Clean(); err != nil {
			t.Error(err)
			return
		}
		stats, err = exec.Stats()
		if err != nil {
			t.Error(err)
			return
		}
		if stats.Payloads != 0 || stats.Statuses != 0 || stats.Results != 0 {
			t.Errorf("post-clean stats = %+v", stats)
		}
	})
}

func TestCleanIsPerExecutor(t *testing.T) {
	e := newEnv(t, nil)
	a := e.executor(t, nil)
	b := e.executor(t, nil)
	e.clk.Run(func() {
		if _, err := a.Map("add7", []any{1}); err != nil {
			t.Error(err)
			return
		}
		if _, err := b.Map("add7", []any{2}); err != nil {
			t.Error(err)
			return
		}
		if _, err := a.GetResult(GetResultOptions{}); err != nil {
			t.Error(err)
			return
		}
		if _, err := b.GetResult(GetResultOptions{}); err != nil {
			t.Error(err)
			return
		}
		if err := a.Clean(); err != nil {
			t.Error(err)
			return
		}
		stats, err := b.Stats()
		if err != nil {
			t.Error(err)
			return
		}
		if stats.Payloads != 1 || stats.Statuses != 1 {
			t.Errorf("executor b lost objects to a's clean: %+v", stats)
		}
	})
}

func TestWaitThreshold(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		// Durations 10,20,...,100s: the 50% threshold should be met once
		// the 5th task finishes, well before the last.
		args := make([]any, 10)
		for i := range args {
			args[i] = (i + 1) * 10
		}
		start := e.clk.Now()
		if _, err := exec.Map("busy", args); err != nil {
			t.Error(err)
			return
		}
		done, pending, err := exec.WaitThreshold(0.5, time.Time{})
		if err != nil {
			t.Error(err)
			return
		}
		if len(done) < 5 {
			t.Errorf("threshold met with only %d done", len(done))
		}
		if len(pending) == 0 {
			t.Error("threshold wait degenerated into all-completed")
		}
		elapsed := e.clk.Now().Sub(start)
		if elapsed < 50*time.Second || elapsed > 70*time.Second {
			t.Errorf("50%% threshold met at %v, want shortly after 50s", elapsed)
		}
	})
}

func TestWaitThresholdValidation(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	if _, _, err := exec.WaitThreshold(0, time.Time{}); err == nil {
		t.Fatal("zero threshold accepted")
	}
	if _, _, err := exec.WaitThreshold(1.5, time.Time{}); err == nil {
		t.Fatal("threshold > 1 accepted")
	}
	if _, _, err := exec.WaitThreshold(0.5, time.Time{}); !errors.Is(err, ErrNoFutures) {
		t.Fatalf("err = %v, want ErrNoFutures", err)
	}
}

func TestWaitThresholdDeadline(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		if _, err := exec.Map("busy", []any{500}); err != nil {
			t.Error(err)
			return
		}
		_, _, err := exec.WaitThreshold(1.0, e.clk.Now().Add(5*time.Second))
		if !errors.Is(err, ErrWaitTimeout) {
			t.Errorf("err = %v, want ErrWaitTimeout", err)
		}
	})
}

func TestFailedFuturesAndRespawn(t *testing.T) {
	// Crash probability 1 means every first run dies; we then disable
	// crashes by... we can't mutate the controller, so instead verify the
	// bookkeeping: FailedFutures finds the victims and Respawn re-invokes
	// (which crashes again, observably as a fresh activation).
	e := newEnv(t, func(cfg *PlatformConfig) { cfg.CrashProb = 1.0 })
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		futures, err := exec.Map("add7", []any{1, 2})
		if err != nil {
			t.Error(err)
			return
		}
		if _, _, err := exec.Wait(WaitAllCompleted, e.clk.Now().Add(5*time.Minute)); err != nil {
			t.Error(err)
			return
		}
		failed, err := exec.FailedFutures()
		if err != nil {
			t.Error(err)
			return
		}
		if len(failed) != 2 {
			t.Errorf("failed = %d, want 2", len(failed))
			return
		}
		oldActs := []string{futures[0].ActivationID(), futures[1].ActivationID()}
		if err := exec.Respawn(failed); err != nil {
			t.Error(err)
			return
		}
		if futures[0].ActivationID() == oldActs[0] || futures[1].ActivationID() == oldActs[1] {
			t.Error("respawn did not produce fresh activations")
		}
		if futures[0].knownDone() {
			t.Error("respawned future still marked done")
		}
	})
}

func TestRespawnRecoversTransientCrash(t *testing.T) {
	// With 60% crash probability, a few respawn rounds should drive all
	// calls to success (seeded, so deterministic enough to assert).
	e := newEnv(t, func(cfg *PlatformConfig) {
		cfg.CrashProb = 0.6
		cfg.Seed = 9
	})
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		if _, err := exec.Map("add7", []any{5, 6, 7, 8}); err != nil {
			t.Error(err)
			return
		}
		for round := 0; round < 20; round++ {
			if _, _, err := exec.Wait(WaitAllCompleted, e.clk.Now().Add(10*time.Minute)); err != nil {
				t.Error(err)
				return
			}
			failed, err := exec.FailedFutures()
			if err != nil {
				t.Error(err)
				return
			}
			if len(failed) == 0 {
				results, err := exec.GetResult(GetResultOptions{})
				if err != nil {
					t.Error(err)
					return
				}
				got := decodeInts(t, results)
				want := []int{12, 13, 14, 15}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("results = %v, want %v", got, want)
					}
				}
				return
			}
			if err := exec.Respawn(failed); err != nil {
				t.Error(err)
				return
			}
		}
		t.Error("calls never all succeeded after 20 respawn rounds")
	})
}

func TestRespawnRejectsForeignFutures(t *testing.T) {
	e := newEnv(t, nil)
	a := e.executor(t, nil)
	b := e.executor(t, nil)
	e.clk.Run(func() {
		fs, err := a.Map("add7", []any{1})
		if err != nil {
			t.Error(err)
			return
		}
		if err := b.Respawn(fs); err == nil {
			t.Error("respawn accepted futures from another executor")
		}
	})
}

func TestGetResultSpeculativeBeatsStraggler(t *testing.T) {
	// A platform whose jitter has a brutal tail: most activations finish
	// near the task time, an unlucky one runs minutes longer. Speculation
	// re-invokes the straggler once 75% of the job has finished, and the
	// rerun (a fresh jitter draw) almost surely completes far earlier.
	e := newEnv(t, func(cfg *PlatformConfig) {
		// Seed 1 is known to include a ~60s jitter draw among the 24
		// activations (see the probe history in the test comments).
		cfg.ExecJitter = netsim.LogNormal{Median: 500 * time.Millisecond, Sigma: 2.5, Cap: 8 * time.Minute}
		cfg.Seed = 1
	})
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		args := make([]any, 24)
		for i := range args {
			args[i] = 5 // 5s of work each
		}
		start := e.clk.Now()
		if _, err := exec.Map("busy", args); err != nil {
			t.Error(err)
			return
		}
		results, err := exec.GetResultSpeculative(GetResultOptions{}, SpeculationOptions{
			Threshold: 0.75,
			Factor:    2,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if len(results) != 24 {
			t.Errorf("results = %d", len(results))
			return
		}
		for _, r := range results {
			var v int
			if err := wire.Unmarshal(r, &v); err != nil || v != 5 {
				t.Errorf("result = %s, %v", r, err)
				return
			}
		}
		elapsed := e.clk.Now().Sub(start)
		// Without speculation this seed's job lasts ~61s (the worst
		// jitter draw); with it, the tail is bounded by roughly
		// Factor × the 75% completion time plus one rerun.
		if elapsed > 50*time.Second {
			t.Errorf("speculative job took %v; straggler not mitigated", elapsed)
		}
		// Speculation must actually have fired: respawned calls create
		// extra runner activations.
		runnerActs := 0
		for _, a := range e.platform.Controller().Activations() {
			if len(a.Action) >= len("gowren-runner--") && a.Action[:len("gowren-runner--")] == "gowren-runner--" {
				runnerActs++
			}
		}
		if runnerActs <= 24 {
			t.Errorf("runner activations = %d; speculation never fired", runnerActs)
		}
	})
}

func TestGetResultSpeculativeNoFutures(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	if _, err := exec.GetResultSpeculative(GetResultOptions{}, SpeculationOptions{}); !errors.Is(err, ErrNoFutures) {
		t.Fatalf("err = %v, want ErrNoFutures", err)
	}
}

func TestGetResultSpeculativeFastJobNoSpeculation(t *testing.T) {
	// A uniform job finishes before the straggler deadline; speculation
	// must not fire (no extra activations beyond the originals + helper).
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		if _, err := exec.Map("busy", []any{3, 3, 3, 3}); err != nil {
			t.Error(err)
			return
		}
		if _, err := exec.GetResultSpeculative(GetResultOptions{}, SpeculationOptions{}); err != nil {
			t.Error(err)
			return
		}
	})
	runnerActs := 0
	for _, a := range e.platform.Controller().Activations() {
		if len(a.Action) >= len("gowren-runner--") && a.Action[:len("gowren-runner--")] == "gowren-runner--" {
			runnerActs++
		}
	}
	if runnerActs != 4 {
		t.Fatalf("runner activations = %d, want 4 (no speculation on a uniform job)", runnerActs)
	}
}

func TestGetResultSpeculativeTimeout(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		if _, err := exec.Map("busy", []any{500}); err != nil {
			t.Error(err)
			return
		}
		_, err := exec.GetResultSpeculative(GetResultOptions{Timeout: 5 * time.Second}, SpeculationOptions{})
		if !errors.Is(err, ErrWaitTimeout) {
			t.Errorf("err = %v, want ErrWaitTimeout", err)
		}
	})
}
