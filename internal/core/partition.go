package core

import (
	"errors"
	"fmt"
	"sort"

	"gowren/internal/cos"
	"gowren/internal/wire"
)

// DataSource describes the input of a map_reduce job (§4.3). Three forms
// are supported, mirroring the paper: inline values, explicit object keys,
// and whole buckets (which trigger automatic data discovery).
type DataSource interface {
	isDataSource()
}

// InlineValues maps one function invocation per value, as in plain map().
type InlineValues []any

func (InlineValues) isDataSource() {}

// ObjectKeys names the dataset objects explicitly.
type ObjectKeys struct {
	Bucket string
	Keys   []string
}

func (ObjectKeys) isDataSource() {}

// Buckets triggers data discovery: every object in each bucket becomes part
// of the dataset (paper: "it is possible to specify the name of the IBM COS
// bucket(s) ... the framework is responsible for discovering all the
// objects in the bucket(s), and partition them").
type Buckets []string

func (Buckets) isDataSource() {}

// locatedObject is a discovered dataset object.
type locatedObject struct {
	Bucket string
	Key    string
	Size   int64
}

// discoverObjects resolves a storage-backed DataSource into its objects.
// For ObjectKeys it issues one HEAD per key; for Buckets it lists each
// bucket (the discovery HEAD/LIST requests of §4.3).
func discoverObjects(storage cos.Client, src DataSource) ([]locatedObject, error) {
	switch s := src.(type) {
	case ObjectKeys:
		if s.Bucket == "" || len(s.Keys) == 0 {
			return nil, errors.New("core: object-keys source requires a bucket and at least one key")
		}
		out := make([]locatedObject, 0, len(s.Keys))
		for _, key := range s.Keys {
			meta, err := storage.Head(s.Bucket, key)
			if err != nil {
				return nil, fmt.Errorf("core: discover %s/%s: %w", s.Bucket, key, err)
			}
			out = append(out, locatedObject{Bucket: s.Bucket, Key: key, Size: meta.Size})
		}
		return out, nil
	case Buckets:
		if len(s) == 0 {
			return nil, errors.New("core: bucket source requires at least one bucket")
		}
		var out []locatedObject
		for _, bucket := range s {
			metas, err := cos.ListAll(storage, bucket, "")
			if err != nil {
				return nil, fmt.Errorf("core: discover bucket %s: %w", bucket, err)
			}
			for _, meta := range metas {
				out = append(out, locatedObject{Bucket: bucket, Key: meta.Key, Size: meta.Size})
			}
		}
		if len(out) == 0 {
			return nil, errors.New("core: data discovery found no objects")
		}
		// Deterministic job layout regardless of listing interleave.
		sort.Slice(out, func(i, j int) bool {
			if out[i].Bucket != out[j].Bucket {
				return out[i].Bucket < out[j].Bucket
			}
			return out[i].Key < out[j].Key
		})
		return out, nil
	case InlineValues:
		return nil, errors.New("core: inline values carry no storage objects")
	default:
		return nil, fmt.Errorf("core: unknown data source %T", src)
	}
}

// partitionObjects slices each object into chunkBytes-sized partitions.
// chunkBytes <= 0 selects per-object granularity: exactly one partition per
// object. Partition indexes are global and dense, matching call order.
func partitionObjects(objs []locatedObject, chunkBytes int64) []wire.Partition {
	var parts []wire.Partition
	for _, obj := range objs {
		if chunkBytes <= 0 || obj.Size <= chunkBytes {
			parts = append(parts, wire.Partition{
				Bucket:     obj.Bucket,
				Key:        obj.Key,
				Offset:     0,
				Length:     obj.Size,
				Index:      len(parts),
				ObjectSize: obj.Size,
			})
			continue
		}
		for off := int64(0); off < obj.Size; off += chunkBytes {
			length := chunkBytes
			if off+length > obj.Size {
				length = obj.Size - off
			}
			parts = append(parts, wire.Partition{
				Bucket:     obj.Bucket,
				Key:        obj.Key,
				Offset:     off,
				Length:     length,
				Index:      len(parts),
				ObjectSize: obj.Size,
			})
		}
	}
	return parts
}

// PlanPartitions exposes discovery + partitioning for harnesses that need
// the plan without running a job (e.g. to report executor counts per chunk
// size, as Table 3 does).
func PlanPartitions(storage cos.Client, src DataSource, chunkBytes int64) ([]wire.Partition, error) {
	objs, err := discoverObjects(storage, src)
	if err != nil {
		return nil, err
	}
	return partitionObjects(objs, chunkBytes), nil
}
