package core

import "testing"

func TestRespawnLedgerOnePerTick(t *testing.T) {
	l := newRespawnLedger()
	f := &Future{}
	l.advance()
	if got := l.reserve([]*Future{f}, 4); len(got) != 1 {
		t.Fatalf("first reservation denied")
	}
	// Same tick, other path: denied.
	if got := l.reserve([]*Future{f}, 4); len(got) != 0 {
		t.Fatalf("double respawn granted within one tick")
	}
	l.advance()
	if got := l.reserve([]*Future{f}, 4); len(got) != 1 {
		t.Fatalf("next-tick reservation denied")
	}
	if got := l.count(f); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}

func TestRespawnLedgerLifetimeCap(t *testing.T) {
	l := newRespawnLedger()
	f := &Future{}
	for i := 0; i < 3; i++ {
		l.advance()
		if got := l.reserve([]*Future{f}, 3); len(got) != 1 {
			t.Fatalf("reservation %d denied under cap", i)
		}
	}
	l.advance()
	if got := l.reserve([]*Future{f}, 3); len(got) != 0 {
		t.Fatal("reservation granted past the lifetime cap")
	}
}

func TestRespawnLedgerFiltersPerFuture(t *testing.T) {
	l := newRespawnLedger()
	a, b := &Future{}, &Future{}
	l.advance()
	if got := l.reserve([]*Future{a}, 2); len(got) != 1 {
		t.Fatal("a denied")
	}
	// b is fresh this tick; a was already respawned.
	got := l.reserve([]*Future{a, b}, 2)
	if len(got) != 1 || got[0] != b {
		t.Fatalf("mixed reservation = %v, want just b", got)
	}
}

func TestRespawnLimitSharedBudget(t *testing.T) {
	opts := RecoveryOptions{}.withDefaults()
	if got := respawnLimit(opts); got != DefaultRecoveryAttempts+1 {
		t.Fatalf("respawn limit = %d, want recovery attempts + 1 speculative copy", got)
	}
}
