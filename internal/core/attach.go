package core

import (
	"errors"
	"fmt"
	"maps"
	"slices"
	"time"

	"gowren/internal/cos"
	"gowren/internal/vclock"
	"gowren/internal/wire"
)

// Driver crash recovery. AttachExecutor rebuilds an Executor — and the
// futures a dead driver was waiting on — from the durable job manifest and
// journal alone (journal.go), then catches up through the shared status
// sweep, adopts in-flight activations, and respawns orphans. Wait and
// GetResult on the attached executor continue exactly where the dead driver
// left off. Fencing makes the takeover safe against a driver that is
// actually still alive: Attach CAS-bumps the lease epoch, so the old
// driver's next mutation fails with ErrFenced.

// AttachExecutor rebuilds the executor for jobID from its durable state.
// cfg supplies the platform, storage stack, and tuning knobs exactly as for
// NewExecutor; the runtime image is overridden from the job manifest. The
// storage stack must support conditional puts (cos.Conditional) — fencing
// is not optional on the resume path.
func AttachExecutor(cfg Config, jobID string) (*Executor, error) {
	e, err := NewExecutor(cfg)
	if err != nil {
		return nil, err
	}
	meta := e.cfg.Platform.MetaBucket()

	data, err := e.getWithRetry(meta, manifestKey(jobID))
	if errors.Is(err, cos.ErrNoSuchKey) {
		return nil, fmt.Errorf("core: attach %s: no such job (no manifest): %w", jobID, err)
	}
	if err != nil {
		return nil, fmt.Errorf("core: attach %s: read manifest: %w", jobID, err)
	}
	var man wire.JobManifest
	if err := wire.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("core: attach %s: decode manifest: %w", jobID, err)
	}
	e.id = jobID
	if man.Runtime != "" {
		e.cfg.RuntimeImage = man.Runtime
	}

	if err := e.takeOverLease(); err != nil {
		return nil, err
	}
	st, err := e.replayJournal()
	if err != nil {
		return nil, err
	}
	if err := e.recoverNextID(); err != nil {
		return nil, err
	}

	// Rebuild futures for the tracked calls in call order, skipping calls
	// the previous driver already retired: dead-lettered ones are parked on
	// the dead-letter list below (ReplayDeadLetters picks them up), and
	// replay-superseded ones were dropped during journal replay.
	ids := make([]string, 0, len(st.calls))
	for _, id := range slices.Sorted(maps.Keys(st.calls)) {
		if cs := st.calls[id]; cs.tracked && !cs.dead {
			ids = append(ids, id)
		}
	}
	futures := make([]*Future, 0, len(ids))
	for _, id := range ids {
		cs := st.calls[id]
		f := newFuture(e, e.id, id, cs.actID)
		e.respawns.seed(f, cs.respawns)
		futures = append(futures, f)
	}
	e.track(futures)

	// Reload the durable dead letters, minus any the previous driver
	// already replayed under fresh IDs — resurrecting those would make the
	// replacements run twice.
	letters, err := e.PersistedDeadLetters()
	if err != nil {
		return nil, fmt.Errorf("core: attach %s: %w", jobID, err)
	}
	kept := letters[:0]
	for _, d := range letters {
		if !st.superseded[d.CallID] {
			kept = append(kept, d)
		}
	}
	e.mu.Lock()
	e.deadLetters = slices.Clone(kept)
	e.mu.Unlock()

	// Catch up through the shared sweep coordinator's done-frontier, then
	// deal with what is left: in-flight activations are adopted as-is,
	// everything that cannot make progress on its own is respawned.
	if len(futures) > 0 {
		if _, err := sweepStatuses(e, futures); err != nil {
			return nil, fmt.Errorf("core: attach %s: %w", jobID, err)
		}
		if err := e.respawnOrphans(futures); err != nil {
			return nil, fmt.Errorf("core: attach %s: %w", jobID, err)
		}
	}
	return e, nil
}

// takeOverLease fences the previous driver: it reads the current lease and
// CAS-writes a successor with the epoch bumped, conditional on the ETag it
// read. The old driver's cached ETag is then stale, so its next conditional
// renewal — and with it every subsequent mutation — fails. Two concurrent
// Attach calls race on the same CAS; exactly one wins, the loser reports
// ErrFenced.
func (e *Executor) takeOverLease() error {
	meta := e.cfg.Platform.MetaBucket()
	var (
		cur     wire.DriverLease
		curETag string
	)
	err := e.storageRetry.Do(func() error {
		data, lm, err := e.cfg.Storage.Get(meta, leaseKey(e.id))
		if err != nil {
			return err
		}
		curETag = lm.ETag
		return wire.Unmarshal(data, &cur)
	})
	switch {
	case errors.Is(err, cos.ErrNoSuchKey):
		// Manifest without lease: the original driver died inside the
		// acquire window, or the lease was cleaned. Start at epoch 1.
		cur, curETag = wire.DriverLease{}, ""
	case err != nil:
		return fmt.Errorf("core: attach %s: read lease: %w", e.id, err)
	}
	lease := wire.DriverLease{JobID: e.id, Epoch: cur.Epoch + 1, RenewedUnixNs: e.clock.Now().UnixNano()}
	var lm cos.ObjectMeta
	err = e.storageRetry.Do(func() error {
		var err error
		lm, err = cos.PutIf(e.cfg.Storage, meta, leaseKey(e.id), wire.MustMarshal(lease), curETag)
		return err
	})
	switch {
	case errors.Is(err, cos.ErrPreconditionFailed):
		return fmt.Errorf("core: attach %s: another driver took the lease: %w", e.id, ErrFenced)
	case errors.Is(err, cos.ErrConditionalUnsupported):
		return fmt.Errorf("core: attach %s: storage cannot fence drivers: %w", e.id, err)
	case err != nil:
		return fmt.Errorf("core: attach %s: take over lease: %w", e.id, err)
	}
	j := &e.journal
	j.mu.Lock()
	j.started = true
	j.epoch = lease.Epoch
	j.leaseETag = lm.ETag
	j.lastRenew = e.clock.Now()
	j.mu.Unlock()
	return nil
}

// journalCallState is the reconstructed state of one call after replaying
// the journal in key — that is, (epoch, seq) — order.
type journalCallState struct {
	actID    string
	region   string
	tracked  bool
	dead     bool // dead-lettered and not yet replayed
	respawns int  // journaled automatic respawns, seeds the new ledger
}

// journalState is the aggregate of a full journal replay.
type journalState struct {
	calls      map[string]*journalCallState
	superseded map[string]bool // call IDs replaced by a replay record
}

// replayJournal lists and replays the job's journal records in key order,
// reproducing the dead driver's recovery decisions: which calls exist and
// whether their futures were tracked, the latest activation driving each,
// which were dead-lettered, and which were superseded by a replay.
func (e *Executor) replayJournal() (*journalState, error) {
	meta := e.cfg.Platform.MetaBucket()
	listed, err := cos.ListAll(e.cfg.Storage, meta, journalListPrefix(e.id))
	if err != nil {
		return nil, fmt.Errorf("core: attach %s: list journal: %w", e.id, err)
	}
	st := &journalState{
		calls:      make(map[string]*journalCallState),
		superseded: make(map[string]bool),
	}
	for _, obj := range listed {
		data, err := e.getWithRetry(meta, obj.Key)
		if err != nil {
			return nil, fmt.Errorf("core: attach %s: read journal record %s: %w", e.id, obj.Key, err)
		}
		var rec wire.JournalRecord
		if err := wire.Unmarshal(data, &rec); err != nil {
			return nil, fmt.Errorf("core: attach %s: decode journal record %s: %w", e.id, obj.Key, err)
		}
		switch rec.Kind {
		case wire.JournalLaunch:
			for _, c := range rec.Calls {
				st.calls[c.CallID] = &journalCallState{actID: c.ActivationID, region: c.Region, tracked: rec.Tracked}
			}
		case wire.JournalRespawn:
			for _, c := range rec.Calls {
				if cs, ok := st.calls[c.CallID]; ok {
					cs.actID = c.ActivationID
					if c.Region != "" {
						cs.region = c.Region
					}
					cs.respawns++
				}
			}
		case wire.JournalDeadLetter:
			for _, c := range rec.Calls {
				if cs, ok := st.calls[c.CallID]; ok {
					cs.dead = true
				}
			}
		case wire.JournalReplay:
			// The originals were untracked and their durable letters
			// deleted by the replaying driver; drop them so nothing below
			// rebuilds or resurrects them. Their replacements arrive with
			// the replay's own launch record.
			for _, old := range rec.OldCallIDs {
				st.superseded[old] = true
				delete(st.calls, old)
			}
		}
		// Unknown kinds from newer writers are skipped, not fatal.
	}
	return st, nil
}

// recoverNextID restores the call-ID high-water mark from the staged
// payloads. The LIST covers windows the journal cannot: helper calls that
// never journal, and a driver that died between staging and the launch
// record. Fresh IDs minted by this driver (replays) must never collide with
// any staged call.
func (e *Executor) recoverNextID() error {
	meta := e.cfg.Platform.MetaBucket()
	listed, err := cos.ListAll(e.cfg.Storage, meta, payloadListPrefix(e.id))
	if err != nil {
		return fmt.Errorf("core: attach %s: list payloads: %w", e.id, err)
	}
	next := 0
	for _, obj := range listed {
		id, ok := callIDFromStatusKey(obj.Key) // same trailing-segment shape as status keys
		if !ok {
			continue
		}
		if seq, ok := callSeq(id); ok && seq+1 > next {
			next = seq + 1
		}
	}
	e.mu.Lock()
	if next > e.nextID {
		e.nextID = next
	}
	e.mu.Unlock()
	return nil
}

// respawnOrphans re-invokes adopted calls that cannot make progress: the
// activation is unknown to the controller, or it died without committing a
// status. In-flight and completed-OK activations are adopted as-is — the
// status sweep picks their records up. Calls with no recorded activation ID
// (spawner fan-out) cannot be probed and are conservatively respawned;
// respawns are idempotent by construction, so the worst case is a wasted
// duplicate execution, never a wrong result.
func (e *Executor) respawnOrphans(futures []*Future) error {
	ctrl := e.cfg.Platform.Controller()
	var orphans []*Future
	for _, f := range futures {
		if f.knownDone() {
			continue
		}
		if f.activationID == "" {
			orphans = append(orphans, f)
			continue
		}
		rec, err := ctrl.Activation(f.activationID)
		if err != nil || (rec.Done() && !rec.OK) {
			orphans = append(orphans, f)
		}
	}
	if len(orphans) == 0 {
		return nil
	}
	if err := e.Respawn(orphans); err != nil {
		return fmt.Errorf("respawn orphans: %w", err)
	}
	return nil
}

// JobInfo summarizes one durable job for ListJobs.
type JobInfo struct {
	JobID   string
	Runtime string
	// Created is the manifest write time on the simulation clock.
	Created time.Time
	// LeaseEpoch and LeaseRenewed reflect the driver lease; zero values
	// mean the job never acquired one (journaling was cut short).
	LeaseEpoch   uint64
	LeaseRenewed time.Time
}

// ListJobs lists the durable job manifests in metaBucket in job-ID order,
// joining each with its driver lease. It is the discovery half of the
// resume workflow: pick a job, AttachExecutor to it.
func ListJobs(storage cos.Client, metaBucket string) ([]JobInfo, error) {
	listed, err := cos.ListAll(storage, metaBucket, manifestListPrefix)
	if err != nil {
		return nil, fmt.Errorf("core: list jobs: %w", err)
	}
	out := make([]JobInfo, 0, len(listed))
	for _, obj := range listed {
		data, _, err := storage.Get(metaBucket, obj.Key)
		if err != nil {
			return nil, fmt.Errorf("core: list jobs: read %s: %w", obj.Key, err)
		}
		var man wire.JobManifest
		if err := wire.Unmarshal(data, &man); err != nil {
			return nil, fmt.Errorf("core: list jobs: decode %s: %w", obj.Key, err)
		}
		info := JobInfo{
			JobID:   man.JobID,
			Runtime: man.Runtime,
			Created: time.Unix(0, man.CreatedUnixNs).UTC(),
		}
		if ldata, _, err := storage.Get(metaBucket, leaseKey(man.JobID)); err == nil {
			var lease wire.DriverLease
			if wire.Unmarshal(ldata, &lease) == nil {
				info.LeaseEpoch = lease.Epoch
				info.LeaseRenewed = time.Unix(0, lease.RenewedUnixNs).UTC()
			}
		}
		out = append(out, info)
	}
	return out, nil
}

// CleanAbandoned garbage-collects jobs nobody drives anymore: every job
// whose lease renewal — or, for a job that never held a lease, whose
// manifest creation — is at least ttl old has its entire jobs/{id}/
// namespace and its manifest deleted. It returns the removed job IDs in
// order. Live drivers renew their lease both on every mutation and
// periodically while waiting (leaseRenewInterval), so a ttl comfortably
// above that never collects a driven job.
func CleanAbandoned(storage cos.Client, clk vclock.Clock, metaBucket string, ttl time.Duration) ([]string, error) {
	if ttl <= 0 {
		return nil, errors.New("core: clean abandoned: ttl must be positive")
	}
	jobs, err := ListJobs(storage, metaBucket)
	if err != nil {
		return nil, err
	}
	now := clk.Now()
	var removed []string
	for _, job := range jobs {
		anchor := job.Created
		if !job.LeaseRenewed.IsZero() {
			anchor = job.LeaseRenewed
		}
		if now.Sub(anchor) < ttl {
			continue
		}
		listed, err := cos.ListAll(storage, metaBucket, fmt.Sprintf("jobs/%s/", job.JobID))
		if err != nil {
			return removed, fmt.Errorf("core: clean abandoned %s: %w", job.JobID, err)
		}
		for _, obj := range listed {
			if err := storage.Delete(metaBucket, obj.Key); err != nil {
				return removed, fmt.Errorf("core: clean abandoned %s: %w", job.JobID, err)
			}
		}
		if err := storage.Delete(metaBucket, manifestKey(job.JobID)); err != nil {
			return removed, fmt.Errorf("core: clean abandoned %s: %w", job.JobID, err)
		}
		removed = append(removed, job.JobID)
	}
	return removed, nil
}
