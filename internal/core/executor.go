package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gowren/internal/cos"
	"gowren/internal/faas"
	"gowren/internal/netsim"
	"gowren/internal/retry"
	"gowren/internal/runtime"
	"gowren/internal/vclock"
	"gowren/internal/wire"
)

// Errors reported by the executor.
var (
	ErrNoFutures   = errors.New("core: executor has no tracked futures")
	ErrWaitTimeout = errors.New("core: wait deadline exceeded")
	ErrCallFailed  = errors.New("core: function call failed")
)

// execCounter issues process-unique executor IDs. Uniqueness is all that
// matters: IDs namespace job keys in the meta bucket.
var execCounter atomic.Uint64

// Config configures an Executor: which platform it submits to, through
// which network paths, and how aggressively it stages and invokes.
type Config struct {
	// Platform is the simulated cloud to run on. Required.
	Platform *Platform
	// Storage is this executor's view of object storage (typically a
	// cos.Linked over the client's network profile). Required.
	Storage cos.Client
	// ControlLink models the network path to the invocation API. Nil
	// means free (used by unit tests).
	ControlLink *netsim.Link
	// RuntimeImage selects the runtime for this executor's functions,
	// mirroring pw.ibm_cf_executor(runtime='matplotlib'). Empty uses
	// runtime.DefaultImage.
	RuntimeImage string
	// Tenant attributes this executor's invocations to a platform tenant
	// for fair-share admission and per-tenant billing. The tenant travels
	// in every staged payload, so respawns, remote invokers and
	// composition spawns inherit it. Empty means the default tenant.
	Tenant string

	// InvokeConcurrency is the client thread-pool size for direct
	// invocation. Zero uses 64.
	InvokeConcurrency int
	// StageConcurrency is the pool size for payload uploads and result
	// downloads. Zero uses 64.
	StageConcurrency int
	// ClientOverhead is serialized per-invocation client work (the
	// Python client's GIL-bound serialize/sign/build cost). Zero means
	// none; the WAN experiment profiles set it.
	ClientOverhead time.Duration

	// MassiveSpawning enables the §5.1 mechanism: invocations are fanned
	// out by remote invoker functions running inside the cloud.
	MassiveSpawning bool
	// SpawnGroupSize is the number of invocations per remote invoker.
	// Zero uses 100, the paper's tuned value.
	SpawnGroupSize int

	// MaxRetries bounds invocation retries on throttling or network
	// failure. Zero uses 5.
	MaxRetries int
	// RetryBackoff is the base backoff between retries, grown
	// exponentially with decorrelated jitter by the shared policy in
	// internal/retry. Zero uses 1s.
	RetryBackoff time.Duration
	// PollInterval is the status-polling granularity. Zero uses 50ms.
	PollInterval time.Duration

	// FullRelistSweep disables incremental status sweeps: every poll
	// re-LISTs the whole status prefix instead of resuming at the sweep
	// coordinator's done-frontier. It exists as the A/B baseline for the
	// wait-path benchmark (cmd/waitbench); production use should leave it
	// false.
	FullRelistSweep bool

	// RetryBudget caps the total retry volume this executor may generate
	// across invocations and storage accesses (a token bucket refilled by
	// successes; see retry.Budget). Zero uses 1024 tokens; negative
	// disables the budget entirely.
	RetryBudget float64
	// BreakerThreshold arms a circuit breaker on the invocation path:
	// after this many consecutive throttled attempts the executor sheds
	// invocations with retry.ErrCircuitOpen for BreakerCooldown. Zero
	// disables the breaker (throttled calls then retry until MaxRetries,
	// the classic PyWren behavior).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit sheds load. Zero uses
	// 5s.
	BreakerCooldown time.Duration

	// DisableJournal switches off the durable job journal (manifest, driver
	// lease, recovery records — see journal.go). In-cloud helper executors
	// (remote invokers, composition spawners) set it: their jobs live and
	// die with a parent call and are not independently resumable. Storage
	// stacks without conditional-put support disable journaling on their
	// own.
	DisableJournal bool
	// AntiAffinityRespawn re-places respawned calls in a storage region
	// different from the one whose failure killed the original run, instead
	// of rehashing onto the same sick region. Only meaningful on
	// multi-region platforms; see Platform.PlaceCallAvoiding.
	AntiAffinityRespawn bool
}

func (c *Config) applyDefaults() error {
	if c.Platform == nil {
		return errors.New("core: executor config missing platform")
	}
	if c.Storage == nil {
		return errors.New("core: executor config missing storage client")
	}
	if c.RuntimeImage == "" {
		c.RuntimeImage = runtime.DefaultImage
	}
	if c.InvokeConcurrency <= 0 {
		c.InvokeConcurrency = 64
	}
	if c.StageConcurrency <= 0 {
		c.StageConcurrency = 64
	}
	if c.SpawnGroupSize <= 0 {
		c.SpawnGroupSize = 100
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 50 * time.Millisecond
	}
	return nil
}

// Executor is the first-class object of the programming model (§4.1): it
// tracks the calls it issues and exposes the Table 2 API. Create one per
// logical job; executors are safe for use from a single task at a time.
type Executor struct {
	cfg   Config
	id    string
	clock vclock.Clock
	gil   *serial

	// invokeRetry and storageRetry back every client-side retry loop with
	// the shared policy: exponential backoff with decorrelated jitter, one
	// retry budget for the whole executor, and an optional circuit breaker
	// on the invocation path.
	invokeRetry  *retry.Retrier
	storageRetry *retry.Retrier

	// respawns is the unified automatic-respawn ledger shared by failure
	// recovery and straggler speculation (see respawn.go).
	respawns *respawnLedger

	// sweeps is the shared sweep coordinator: every waiter on this
	// executor's view of storage (Wait, GetResult, composition resolvers)
	// polls completion through it, so LISTs stay incremental and coalesce
	// (see sweep.go).
	sweeps *sweepCoordinator
	// ops counts this executor's storage requests on the wire (below the
	// retry layer), exposed through StorageOps.
	ops *cos.Counting
	// doneTracked counts tracked futures that have transitioned to done,
	// making progress reporting O(1) per poll.
	doneTracked atomic.Int64

	// journal is the durable job-journal state: manifest, driver lease,
	// epoch/sequence counters (see journal.go).
	journal jobJournal

	mu          sync.Mutex
	futures     []*Future
	nextID      int
	deadLetters []DeadLetter
}

// noteListFailure records one more consecutive status-LIST failure for
// execID and returns the updated count. The counter lives in the sweep
// coordinator; this is the executor-level view of it.
func (e *Executor) noteListFailure(execID string) int {
	return e.sweeps.noteFailure(nsKey{bucket: e.cfg.Platform.MetaBucket(), execID: execID})
}

// resetListFailures clears execID's consecutive-failure count after a
// successful LIST.
func (e *Executor) resetListFailures(execID string) {
	e.sweeps.resetFailures(nsKey{bucket: e.cfg.Platform.MetaBucket(), execID: execID})
}

// classifyCallErr maps invocation-path errors onto the shared retry
// classes: 429s — global throttles and the admission layer's quota and
// shed rejections alike — feed the breaker, lost requests retry, the rest
// is fatal.
func classifyCallErr(err error) retry.Class {
	switch {
	case errors.Is(err, faas.ErrThrottled),
		errors.Is(err, faas.ErrQuotaExceeded),
		errors.Is(err, faas.ErrShed):
		return retry.Throttle
	case errors.Is(err, cos.ErrRequestFailed):
		return retry.Transient
	default:
		return retry.Fatal
	}
}

// classifyStorageErr retries only transient simulated request failures.
func classifyStorageErr(err error) retry.Class {
	if errors.Is(err, cos.ErrRequestFailed) {
		return retry.Transient
	}
	return retry.Fatal
}

// NewExecutor validates cfg and returns an executor with a fresh ID.
func NewExecutor(cfg Config) (*Executor, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	clk := cfg.Platform.Clock()
	// Count requests as they hit the wire, then give every storage access
	// SDK-style transient-failure retries, so one lost request cannot fail
	// data discovery or a status sweep. The counter sits below the retry
	// layer so StorageOps reports attempts, not logical operations.
	counting := cos.NewCounting(cfg.Storage)
	cfg.Storage = cos.NewRetrying(counting, clk, 4, 150*time.Millisecond)

	n := execCounter.Add(1)
	var budget *retry.Budget
	if cfg.RetryBudget >= 0 {
		budget = retry.NewBudget(cfg.RetryBudget, 1)
	}
	breaker := retry.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	seed := cfg.Platform.nextExecutorSeed()
	policy := retry.Policy{
		MaxAttempts: cfg.MaxRetries + 1,
		BaseBackoff: cfg.RetryBackoff,
		MaxBackoff:  30 * time.Second,
		Multiplier:  2,
		Jitter:      true,
	}
	return &Executor{
		cfg:      cfg,
		id:       fmt.Sprintf("exec-%06d", n),
		clock:    clk,
		gil:      newSerial(clk),
		respawns: newRespawnLedger(),
		sweeps:   newSweepCoordinator(cfg.Storage, clk, cfg.FullRelistSweep),
		ops:      counting,
		invokeRetry: retry.New(clk, policy, classifyCallErr,
			retry.WithBudget(budget), retry.WithBreaker(breaker), retry.WithSeed(seed)),
		storageRetry: retry.New(clk, policy, classifyStorageErr,
			retry.WithBudget(budget), retry.WithSeed(seed+1)),
	}, nil
}

// StorageOps returns a snapshot of the executor's client-side storage
// request counters: every request this executor put on the wire (retry
// attempts included), plus the total objects returned by its LISTs. The
// wait-path benchmark and regression tests assert on these.
func (e *Executor) StorageOps() cos.OpCounts { return e.ops.Counts() }

// ID returns the executor ID used to namespace its jobs in storage.
func (e *Executor) ID() string { return e.id }

// Futures returns the futures tracked so far, in issue order.
func (e *Executor) Futures() []*Future {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Future, len(e.futures))
	copy(out, e.futures)
	return out
}

// reserveCallIDs allocates n sequential call IDs.
func (e *Executor) reserveCallIDs(n int) []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("%05d", e.nextID)
		e.nextID++
	}
	return ids
}

func (e *Executor) track(fs []*Future) {
	e.mu.Lock()
	e.futures = append(e.futures, fs...)
	e.mu.Unlock()
	for _, f := range fs {
		f.mu.Lock()
		f.tracked = true
		done := f.done
		f.mu.Unlock()
		if done {
			e.doneTracked.Add(1)
		}
	}
}

// untrack removes the futures matching the given (executorID, callID)
// pairs from the tracked set — used by dead-letter replay, which replaces
// terminally failed calls with freshly staged ones.
func (e *Executor) untrack(ids map[[2]string]bool) {
	e.mu.Lock()
	kept := e.futures[:0]
	var removed []*Future
	for _, f := range e.futures {
		if ids[[2]string{f.executorID, f.callID}] {
			removed = append(removed, f)
		} else {
			kept = append(kept, f)
		}
	}
	e.futures = kept
	e.mu.Unlock()
	for _, f := range removed {
		f.mu.Lock()
		wasCounted := f.tracked && f.done
		f.tracked = false
		f.mu.Unlock()
		if wasCounted {
			e.doneTracked.Add(-1)
		}
	}
}

// CallAsync runs one function asynchronously in the cloud (Table 2:
// call_async). It returns immediately after the invocation is issued.
func (e *Executor) CallAsync(function string, arg any) (*Future, error) {
	fs, err := e.Map(function, []any{arg})
	if err != nil {
		return nil, err
	}
	return fs[0], nil
}

// Map runs one function invocation per element of args (Table 2: map).
// It blocks until the invocation phase completes — exactly the phase the
// paper's Fig. 2 measures — and returns one future per element.
func (e *Executor) Map(function string, args []any) ([]*Future, error) {
	if len(args) == 0 {
		return nil, errors.New("core: map over empty input")
	}
	callIDs := e.reserveCallIDs(len(args))
	payloads := make([]*wire.CallPayload, len(args))
	for i, arg := range args {
		raw, err := wire.Marshal(arg)
		if err != nil {
			return nil, fmt.Errorf("core: serialize map argument %d: %w", i, err)
		}
		payloads[i] = &wire.CallPayload{
			ExecutorID: e.id,
			CallID:     callIDs[i],
			Runtime:    e.cfg.RuntimeImage,
			Function:   function,
			Kind:       wire.KindPlain,
			Arg:        raw,
			MetaBucket: e.cfg.Platform.MetaBucket(),
		}
	}
	return e.runJob(payloads)
}

// runJob stages the payloads in object storage and fires their
// invocations, tracking the resulting futures on the executor.
func (e *Executor) runJob(payloads []*wire.CallPayload) ([]*Future, error) {
	return e.launch(payloads, true)
}

// launch is runJob with control over future tracking: map_reduce launches
// its map phase untracked so GetResult waits only on the reducers.
func (e *Executor) launch(payloads []*wire.CallPayload, trackFutures bool) ([]*Future, error) {
	// The manifest and driver lease go down before anything else is staged,
	// so a driver that crashes mid-launch still leaves a resumable job
	// behind (see journal.go).
	if err := e.journalStart(); err != nil {
		return nil, err
	}
	action, err := e.cfg.Platform.EnsureRuntime(e.cfg.RuntimeImage)
	if err != nil {
		return nil, err
	}
	if err := e.stagePayloads(payloads); err != nil {
		return nil, err
	}

	var actIDs []string
	if e.cfg.MassiveSpawning {
		actIDs, err = e.invokeViaSpawners(action, payloads)
	} else {
		actIDs, err = e.invokeDirect(action, payloads)
	}
	if err != nil {
		return nil, err
	}
	e.appendJournal(wire.JournalLaunch, func(rec *wire.JournalRecord) {
		rec.Calls = journalCalls(payloads, actIDs)
		rec.Tracked = trackFutures
	})

	futures := make([]*Future, len(payloads))
	for i, p := range payloads {
		var actID string
		if actIDs != nil {
			actID = actIDs[i]
		}
		futures[i] = newFuture(e, p.ExecutorID, p.CallID, actID)
	}
	if trackFutures {
		e.track(futures)
	}
	return futures, nil
}

// stagePayloads uploads the serialized calls with the staging pool,
// retrying transient storage failures. Every payload passes through here,
// so this is also where calls get their region placement.
func (e *Executor) stagePayloads(payloads []*wire.CallPayload) error {
	meta := e.cfg.Platform.MetaBucket()
	for _, p := range payloads {
		if p.Region == "" {
			p.Region = e.cfg.Platform.PlaceCall(p.CallID)
		}
		if p.Tenant == "" {
			p.Tenant = e.cfg.Tenant
		}
	}
	errs := parallelFor(e.clock, e.cfg.StageConcurrency, len(payloads), func(i int) error {
		p := payloads[i]
		if err := p.Validate(); err != nil {
			return err
		}
		body := wire.MustMarshal(p)
		return e.putWithRetry(meta, payloadKey(p.ExecutorID, p.CallID), body)
	})
	if err := firstErr(errs); err != nil {
		return fmt.Errorf("core: stage payloads: %w", err)
	}
	return nil
}

// putWithRetry retries transient simulated network failures under the
// shared policy.
func (e *Executor) putWithRetry(bucket, key string, body []byte) error {
	return e.storageRetry.Do(func() error {
		_, err := e.cfg.Storage.Put(bucket, key, body)
		return err
	})
}

// headWithRetry probes an object's existence, retrying transient
// simulated network failures under the shared policy. A missing key
// surfaces as cos.ErrNoSuchKey without retries.
func (e *Executor) headWithRetry(bucket, key string) error {
	return e.storageRetry.Do(func() error {
		_, err := e.cfg.Storage.Head(bucket, key)
		return err
	})
}

// getWithRetry fetches an object, retrying transient simulated network
// failures under the shared policy.
func (e *Executor) getWithRetry(bucket, key string) ([]byte, error) {
	var data []byte
	err := e.storageRetry.Do(func() error {
		var err error
		data, _, err = e.cfg.Storage.Get(bucket, key)
		return err
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

// Wait strategies (Table 2: wait). The names mirror the paper's §4.2.
type WaitStrategy int

const (
	// WaitAlways checks availability once and returns immediately.
	WaitAlways WaitStrategy = iota + 1
	// WaitAnyCompleted returns as soon as at least one call finished.
	WaitAnyCompleted
	// WaitAllCompleted returns when every call finished.
	WaitAllCompleted
)

// Wait applies strategy to the executor's tracked futures and returns the
// (done, pending) partition. deadline zero means no deadline; reaching a
// deadline returns ErrWaitTimeout alongside the partition observed last.
func (e *Executor) Wait(strategy WaitStrategy, deadline time.Time) (done, pending []*Future, err error) {
	futures := e.Futures()
	if len(futures) == 0 {
		return nil, nil, ErrNoFutures
	}
	return waitFutures(e, futures, strategy, deadline)
}

// GetResultOptions tune GetResult (Table 2: get_result).
type GetResultOptions struct {
	// Timeout bounds the whole wait+collect; zero means none.
	Timeout time.Duration
	// Progress, when set, receives (done, total) after every poll sweep,
	// backing the paper's progress bar.
	Progress func(done, total int)
	// Recovery tunes automatic re-execution of failed calls while
	// waiting. Nil uses the defaults (recovery on, 3 attempts with
	// doubling backoff); set Recovery.Disabled for the original
	// fail-on-first-observation client behavior.
	Recovery *RecoveryOptions
	// PartialResults returns the successful subset instead of failing the
	// whole collection: permanently failed calls leave nil entries in the
	// result slice and are reported through a *PartialError.
	PartialResults bool
}

// GetResult waits for every tracked future, downloads the results, and
// transparently follows composition continuations (§4.2, §4.4). It returns
// the raw JSON results in call order. Calls that failed surface as a joined
// error wrapping ErrCallFailed.
func (e *Executor) GetResult(opts GetResultOptions) ([]json.RawMessage, error) {
	futures := e.Futures()
	if len(futures) == 0 {
		return nil, ErrNoFutures
	}
	return collectResults(e, futures, opts)
}

// pollInterval is the executor's status polling granularity.
func (e *Executor) pollInterval() time.Duration { return e.cfg.PollInterval }

// deadlineFrom converts a timeout into an absolute deadline on the
// executor's clock.
func (e *Executor) deadlineFrom(timeout time.Duration) time.Time {
	if timeout <= 0 {
		return time.Time{}
	}
	return e.clock.Now().Add(timeout)
}
