package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// Speculative execution. The paper's Fig. 3 observes that "some functions
// ran fast while others slow ... due to the internal operation of IBM Cloud
// Functions"; with thousands of executors the slowest activation sets the
// job time. Speculation — re-invoking calls that remain pending long after
// the bulk of the job finished, racing the original against a fresh
// container — is the classic MapReduce countermeasure, implemented here on
// top of the staged-payload respawn machinery. Functions must be idempotent
// (both attempts may run to completion; they write identical result keys),
// which GoWren jobs are by construction: results are pure functions of the
// staged payload.

// SpeculationOptions tune straggler re-execution.
type SpeculationOptions struct {
	// Threshold is the completed fraction at which speculation arms
	// (default 0.75): once this share of calls finished, the remaining
	// ones are straggler candidates.
	Threshold float64
	// Factor multiplies the arm time to produce the straggler deadline
	// (default 2): a call still pending at Factor × (time the job needed
	// to reach Threshold) is re-invoked once.
	Factor float64
}

func (o *SpeculationOptions) applyDefaults() {
	if o.Threshold <= 0 || o.Threshold >= 1 {
		o.Threshold = 0.75
	}
	if o.Factor <= 1 {
		o.Factor = 2
	}
}

// GetResultSpeculative is GetResult with straggler re-execution: when the
// job is mostly finished but a tail of calls lingers, the pending calls are
// respawned once and the first completion wins.
func (e *Executor) GetResultSpeculative(opts GetResultOptions, spec SpeculationOptions) ([]json.RawMessage, error) {
	spec.applyDefaults()
	futures := e.Futures()
	if len(futures) == 0 {
		return nil, ErrNoFutures
	}
	deadline := e.deadlineFrom(opts.Timeout)
	jobStart := e.clock.Now()
	need := int(spec.Threshold * float64(len(futures)))
	if need < 1 {
		need = 1
	}

	var (
		armAt      time.Time // when the threshold was reached
		speculated bool
	)
	// The executor's done counter tracks completions as they are marked,
	// so the per-tick progress read is O(1) instead of a walk over every
	// future.
	countDone := func() int {
		done := int(e.doneTracked.Load())
		if done > len(futures) {
			done = len(futures)
		}
		return done
	}
	rec := newRecoverer(e, futures, opts.Recovery)
	// A non-transient sweep failure aborts the wait instead of spinning
	// into a misleading ErrWaitTimeout.
	var sweepErr error
	ok := pollClock(e, func() bool {
		e.respawns.advance()
		if _, err := sweepStatuses(e, futures); err != nil {
			sweepErr = err
			return true
		}
		rec.step()
		done := countDone()
		if opts.Progress != nil {
			opts.Progress(done, len(futures))
		}
		if rec.settled() {
			return true
		}
		if armAt.IsZero() && done >= need {
			armAt = e.clock.Now()
		}
		if !armAt.IsZero() && !speculated {
			stragglerDeadline := jobStart.Add(time.Duration(float64(armAt.Sub(jobStart)) * spec.Factor))
			if !e.clock.Now().Before(stragglerDeadline) {
				var pending []*Future
				for _, f := range futures {
					if !f.knownDone() {
						pending = append(pending, f)
					}
				}
				// Stragglers just respawned by recovery this tick (or out
				// of the shared budget) are filtered by the ledger, so one
				// flaky call never gets two copies in one tick.
				pending = e.respawns.reserve(pending, respawnLimit(rec.opts))
				if len(pending) == 0 {
					speculated = true
				} else if err := e.Respawn(pending); err == nil {
					// A failed respawn leaves the original attempt racing
					// on; the wait continues either way.
					speculated = true
				}
			}
		}
		return false
	}, deadline)
	if sweepErr != nil {
		return nil, fmt.Errorf("core: speculative get_result: %w", sweepErr)
	}
	if !ok {
		return nil, fmt.Errorf("core: speculative get_result: %w", ErrWaitTimeout)
	}

	failedFs, failErrs := rec.terminalFailures()
	if len(failedFs) > 0 && !opts.PartialResults {
		return nil, fmt.Errorf("core: speculative get_result: %w", errors.Join(failErrs...))
	}
	failedSet := make(map[*Future]bool, len(failedFs))
	for _, f := range failedFs {
		failedSet[f] = true
	}

	r := &resolver{exec: e, deadline: deadline}
	out := make([]json.RawMessage, len(futures))
	errs := parallelFor(e.clock, e.cfg.StageConcurrency, len(futures), func(i int) error {
		if failedSet[futures[i]] {
			return nil // reported via PartialError
		}
		val, err := r.resolveFuture(futures[i], 0)
		if err != nil {
			return err
		}
		out[i] = val
		return nil
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	if len(failedFs) > 0 {
		return out, &PartialError{Failed: rec.lettersFor(failedFs, failErrs), Errs: failErrs}
	}
	return out, nil
}
