package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"maps"
	"slices"
	"sync"
	"time"

	"gowren/internal/cos"
	"gowren/internal/vclock"
	"gowren/internal/wire"
)

// maxCompositionDepth bounds continuation chains so a buggy self-invoking
// composition cannot hang GetResult forever.
const maxCompositionDepth = 32

// Future tracks one remote call, in the spirit of the Python futures
// interface the paper mimics (§4.2, footnote 2). Futures are created by the
// executor; user code observes them through Wait/GetResult or the
// per-future accessors.
type Future struct {
	exec         *Executor
	executorID   string
	callID       string
	activationID string // empty under massive spawning

	mu     sync.Mutex
	done   bool
	status *wire.StatusRecord
	failed error
}

func newFuture(e *Executor, executorID, callID, activationID string) *Future {
	return &Future{exec: e, executorID: executorID, callID: callID, activationID: activationID}
}

// CallID returns the future's call identifier.
func (f *Future) CallID() string { return f.callID }

// ExecutorID returns the executor namespace of the call.
func (f *Future) ExecutorID() string { return f.executorID }

// ActivationID returns the platform activation ID when known (direct
// invocation); it is empty under massive spawning.
func (f *Future) ActivationID() string { return f.activationID }

// markDone records a completed status sighting.
func (f *Future) markDone() {
	f.mu.Lock()
	f.done = true
	f.mu.Unlock()
}

// markFailed records a platform-level failure (activation died without
// writing a status object).
func (f *Future) markFailed(err error) {
	f.mu.Lock()
	f.done = true
	f.failed = err
	f.mu.Unlock()
}

// knownDone reports the cached completion state without any storage round
// trip.
func (f *Future) knownDone() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done
}

func (f *Future) failure() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failed
}

// Done checks (against storage, via one status sweep of the owning
// executor) whether the call has finished.
func (f *Future) Done() (bool, error) {
	if f.knownDone() {
		return true, nil
	}
	if err := sweepStatuses(f.exec, []*Future{f}); err != nil {
		return false, err
	}
	return f.knownDone(), nil
}

// Status fetches the call's status record; it requires the call to be done.
func (f *Future) Status() (wire.StatusRecord, error) {
	if err := f.failure(); err != nil {
		return wire.StatusRecord{}, err
	}
	f.mu.Lock()
	cached := f.status
	f.mu.Unlock()
	if cached != nil {
		return *cached, nil
	}
	meta := f.exec.cfg.Platform.MetaBucket()
	data, err := f.exec.getWithRetry(meta, statusKey(f.executorID, f.callID))
	if err != nil {
		return wire.StatusRecord{}, fmt.Errorf("core: fetch status %s/%s: %w", f.executorID, f.callID, err)
	}
	var rec wire.StatusRecord
	if err := wire.Unmarshal(data, &rec); err != nil {
		return wire.StatusRecord{}, err
	}
	f.mu.Lock()
	f.status = &rec
	f.done = true
	f.mu.Unlock()
	return rec, nil
}

// sweepConsultThreshold is the number of consecutive failed status LISTs
// (per executor namespace) after which sweepStatuses stops waiting for
// the listing to recover and consults activation records directly. Low
// enough that a permanently partitioned status prefix surfaces dead calls
// within a few poll intervals, high enough that one lost request does not
// trigger a consult storm.
const sweepConsultThreshold = 3

// sweepStatuses performs one LIST over the executor's status prefix
// (grouped by executor namespace, in sorted order so the simulated
// network sees an identical request sequence every run) and marks the
// matching futures done. It also consults platform activation records to
// surface calls that died without committing a status (crash, platform
// timeout).
func sweepStatuses(e *Executor, futures []*Future) error {
	byExec := make(map[string][]*Future)
	for _, f := range futures {
		if !f.knownDone() {
			byExec[f.executorID] = append(byExec[f.executorID], f)
		}
	}
	meta := e.cfg.Platform.MetaBucket()
	for _, execID := range slices.Sorted(maps.Keys(byExec)) {
		fs := byExec[execID]
		doneIDs := make(map[string]bool)
		listed, err := cos.ListAll(e.cfg.Storage, meta, statusListPrefix(execID))
		switch {
		case err == nil:
			e.resetListFailures(execID)
			for _, obj := range listed {
				if id, ok := callIDFromStatusKey(obj.Key); ok {
					doneIDs[id] = true
				}
			}
		case errors.Is(err, cos.ErrRequestFailed):
			// Transient LIST failure: normally just wait for the next poll.
			// But a status prefix pinned to a partitioned region can stay
			// unlistable for the whole outage, and skipping here forever
			// would keep platform-dead calls invisible until the partition
			// lifts. After enough consecutive failures, fall through with an
			// empty done set so the activation-record consult below can
			// still observe calls that died without committing a status.
			if e.noteListFailure(execID) < sweepConsultThreshold {
				continue
			}
		default:
			return fmt.Errorf("core: status sweep: %w", err)
		}
		for _, f := range fs {
			switch {
			case doneIDs[f.callID]:
				f.markDone()
			case f.activationID != "":
				rec, err := e.cfg.Platform.Controller().Activation(f.activationID)
				if err == nil && rec.Done() && !rec.OK {
					f.markFailed(fmt.Errorf("core: call %s/%s activation %s: %s: %w",
						f.executorID, f.callID, f.activationID, rec.Error, ErrCallFailed))
				}
			}
		}
	}
	return nil
}

// waitFutures implements the three §4.2 strategies over an explicit future
// set.
func waitFutures(e *Executor, futures []*Future, strategy WaitStrategy, deadline time.Time) (done, pending []*Future, err error) {
	partition := func() (d, p []*Future) {
		for _, f := range futures {
			if f.knownDone() {
				d = append(d, f)
			} else {
				p = append(p, f)
			}
		}
		return d, p
	}

	satisfied := func() bool {
		d, p := partition()
		switch strategy {
		case WaitAnyCompleted:
			return len(d) > 0
		case WaitAllCompleted:
			return len(p) == 0
		default:
			return true
		}
	}

	if err := sweepStatuses(e, futures); err != nil {
		return nil, nil, err
	}
	if strategy == WaitAlways {
		done, pending = partition()
		return done, pending, nil
	}
	// A non-transient sweep failure must abort the wait, not silently spin
	// until the deadline turns it into a misleading ErrWaitTimeout.
	var sweepErr error
	ok := vclock.Poll(e.clock, func() bool {
		if satisfied() {
			return true
		}
		if err := sweepStatuses(e, futures); err != nil {
			sweepErr = err
			return true
		}
		return satisfied()
	}, e.pollInterval(), deadline)
	done, pending = partition()
	if sweepErr != nil {
		return done, pending, sweepErr
	}
	if !ok {
		return done, pending, fmt.Errorf("core: %d of %d calls still pending: %w", len(pending), len(futures), ErrWaitTimeout)
	}
	return done, pending, nil
}

// collectResults waits for all futures, downloads their results with the
// staging pool, and resolves composition continuations. While waiting it
// drives automatic failure recovery (see recover.go): failed calls are
// re-invoked from their staged payloads until they succeed or run out of
// attempts and land on the executor's dead-letter list.
func collectResults(e *Executor, futures []*Future, opts GetResultOptions) ([]json.RawMessage, error) {
	deadline := e.deadlineFrom(opts.Timeout)
	rec := newRecoverer(e, futures, opts.Recovery)

	total := len(futures)
	last := -1
	report := func() {
		if opts.Progress == nil {
			return
		}
		done := 0
		for _, f := range futures {
			if f.knownDone() {
				done++
			}
		}
		if done != last {
			last = done
			opts.Progress(done, total)
		}
	}
	report()
	var sweepErr error
	ok := vclock.Poll(e.clock, func() bool {
		e.respawns.advance()
		if err := sweepStatuses(e, futures); err != nil {
			sweepErr = err
			return true
		}
		rec.step()
		report()
		return rec.settled()
	}, e.pollInterval(), deadline)
	if sweepErr != nil {
		return nil, fmt.Errorf("core: get_result: %w", sweepErr)
	}
	if !ok {
		return nil, fmt.Errorf("core: get_result: %w", ErrWaitTimeout)
	}

	failedFs, failErrs := rec.terminalFailures()
	if len(failedFs) > 0 && !opts.PartialResults {
		return nil, fmt.Errorf("core: get_result: %w", errors.Join(failErrs...))
	}
	failedSet := make(map[*Future]bool, len(failedFs))
	for _, f := range failedFs {
		failedSet[f] = true
	}

	r := &resolver{exec: e, deadline: deadline}
	out := make([]json.RawMessage, len(futures))
	errs := parallelFor(e.clock, e.cfg.StageConcurrency, len(futures), func(i int) error {
		if failedSet[futures[i]] {
			return nil // left nil in the output; reported via PartialError
		}
		val, err := r.resolveFuture(futures[i], 0)
		if err != nil {
			return err
		}
		out[i] = val
		return nil
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	if len(failedFs) > 0 {
		return out, &PartialError{Failed: rec.lettersFor(failedFs, failErrs), Errs: failErrs}
	}
	return out, nil
}

// resolver follows composition chains: a result envelope of kind "futures"
// points at further calls whose results must be awaited and combined
// (paper §4.4 — get_result "transparently waits for an on-going function
// composition to complete").
type resolver struct {
	exec     *Executor
	deadline time.Time
}

// resolveFuture returns the final JSON value of a completed future.
func (r *resolver) resolveFuture(f *Future, depth int) (json.RawMessage, error) {
	if err := f.failure(); err != nil {
		return nil, err
	}
	rec, err := f.Status()
	if err != nil {
		return nil, err
	}
	if !rec.OK {
		return nil, fmt.Errorf("core: call %s/%s: %s: %w", f.executorID, f.callID, rec.Error, ErrCallFailed)
	}
	return r.resolveResultObject(rec.ResultRef, depth)
}

func (r *resolver) resolveResultObject(ref wire.ObjectRef, depth int) (json.RawMessage, error) {
	data, err := r.exec.getWithRetry(ref.Bucket, ref.Key)
	if err != nil {
		return nil, fmt.Errorf("core: fetch result %s/%s: %w", ref.Bucket, ref.Key, err)
	}
	var env wire.ResultEnvelope
	if err := wire.Unmarshal(data, &env); err != nil {
		return nil, err
	}
	return r.resolveEnvelope(&env, depth)
}

func (r *resolver) resolveEnvelope(env *wire.ResultEnvelope, depth int) (json.RawMessage, error) {
	switch env.Kind {
	case wire.ResultValue:
		return env.Value, nil
	case wire.ResultFutures:
		if depth >= maxCompositionDepth {
			return nil, fmt.Errorf("core: composition deeper than %d levels", maxCompositionDepth)
		}
		if env.Futures == nil {
			return nil, errors.New("core: futures envelope without reference")
		}
		return r.resolveFuturesRef(env.Futures, depth+1)
	default:
		return nil, fmt.Errorf("core: unknown result envelope kind %q", env.Kind)
	}
}

// resolveFuturesRef waits for the referenced calls and combines their
// resolved values.
func (r *resolver) resolveFuturesRef(ref *wire.FuturesRef, depth int) (json.RawMessage, error) {
	if len(ref.CallIDs) == 0 {
		return nil, errors.New("core: empty futures reference")
	}
	if err := r.awaitCalls(ref); err != nil {
		return nil, err
	}
	values := make([]json.RawMessage, len(ref.CallIDs))
	for i, callID := range ref.CallIDs {
		val, err := r.resolveCall(ref.MetaBucket, ref.ExecutorID, callID, depth)
		if err != nil {
			return nil, err
		}
		values[i] = val
	}
	switch ref.Combine {
	case wire.CombineSingle:
		if len(values) != 1 {
			return nil, fmt.Errorf("core: single combine over %d calls", len(values))
		}
		return values[0], nil
	default: // wire.CombineList
		return wire.Marshal(values)
	}
}

// awaitCalls polls the child executor's status prefix until every call ID
// in ref is present.
func (r *resolver) awaitCalls(ref *wire.FuturesRef) error {
	want := make(map[string]bool, len(ref.CallIDs))
	for _, id := range ref.CallIDs {
		want[id] = true
	}
	var sweepErr error
	ok := vclock.Poll(r.exec.clock, func() bool {
		listed, err := cos.ListAll(r.exec.cfg.Storage, ref.MetaBucket, statusListPrefix(ref.ExecutorID))
		if err != nil {
			if errors.Is(err, cos.ErrRequestFailed) {
				return false
			}
			sweepErr = err
			return true
		}
		seen := 0
		for _, obj := range listed {
			if id, idOK := callIDFromStatusKey(obj.Key); idOK && want[id] {
				seen++
			}
		}
		return seen == len(want)
	}, r.exec.pollInterval(), r.deadline)
	if sweepErr != nil {
		return fmt.Errorf("core: await composition: %w", sweepErr)
	}
	if !ok {
		return fmt.Errorf("core: await composition %s: %w", ref.ExecutorID, ErrWaitTimeout)
	}
	return nil
}

// resolveCall fetches a child call's status and resolves its result.
func (r *resolver) resolveCall(metaBucket, execID, callID string, depth int) (json.RawMessage, error) {
	data, err := r.exec.getWithRetry(metaBucket, statusKey(execID, callID))
	if err != nil {
		return nil, fmt.Errorf("core: fetch composed status %s/%s: %w", execID, callID, err)
	}
	var rec wire.StatusRecord
	if err := wire.Unmarshal(data, &rec); err != nil {
		return nil, err
	}
	if !rec.OK {
		return nil, fmt.Errorf("core: composed call %s/%s: %s: %w", execID, callID, rec.Error, ErrCallFailed)
	}
	return r.resolveResultObject(rec.ResultRef, depth)
}
