package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"maps"
	"slices"
	"sync"
	"time"

	"gowren/internal/cos"
	"gowren/internal/vclock"
	"gowren/internal/wire"
)

// maxCompositionDepth bounds continuation chains so a buggy self-invoking
// composition cannot hang GetResult forever.
const maxCompositionDepth = 32

// Future tracks one remote call, in the spirit of the Python futures
// interface the paper mimics (§4.2, footnote 2). Futures are created by the
// executor; user code observes them through Wait/GetResult or the
// per-future accessors.
type Future struct {
	exec         *Executor
	executorID   string
	callID       string
	activationID string // empty under massive spawning

	mu      sync.Mutex
	done    bool
	tracked bool // counted in the executor's doneTracked when done
	status  *wire.StatusRecord
	failed  error
}

func newFuture(e *Executor, executorID, callID, activationID string) *Future {
	return &Future{exec: e, executorID: executorID, callID: callID, activationID: activationID}
}

// CallID returns the future's call identifier.
func (f *Future) CallID() string { return f.callID }

// ExecutorID returns the executor namespace of the call.
func (f *Future) ExecutorID() string { return f.executorID }

// ActivationID returns the platform activation ID when known (direct
// invocation); it is empty under massive spawning.
func (f *Future) ActivationID() string { return f.activationID }

// markDone records a completed status sighting.
func (f *Future) markDone() { f.complete(nil) }

// markFailed records a platform-level failure (activation died without
// writing a status object).
func (f *Future) markFailed(err error) { f.complete(err) }

// complete transitions the future to done, keeping the owning executor's
// doneTracked counter in step so progress reporting stays O(1) per poll
// instead of recounting every future.
func (f *Future) complete(err error) {
	f.mu.Lock()
	first := !f.done
	f.done = true
	if err != nil {
		f.failed = err
	}
	tracked := f.tracked
	f.mu.Unlock()
	if first && tracked {
		f.exec.doneTracked.Add(1)
	}
}

// knownDone reports the cached completion state without any storage round
// trip.
func (f *Future) knownDone() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done
}

func (f *Future) failure() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failed
}

// Done checks whether the call has finished. A single future needs no
// prefix sweep: one HEAD of its status key answers the question in O(1)
// regardless of how many siblings share the namespace, and a miss falls
// back to the activation record so a platform-dead call still surfaces.
func (f *Future) Done() (bool, error) {
	if f.knownDone() {
		return true, nil
	}
	meta := f.exec.cfg.Platform.MetaBucket()
	err := f.exec.headWithRetry(meta, statusKey(f.executorID, f.callID))
	switch {
	case err == nil:
		f.markDone()
		return true, nil
	case errors.Is(err, cos.ErrNoSuchKey):
		if f.activationID != "" {
			rec, aerr := f.exec.cfg.Platform.Controller().Activation(f.activationID)
			if aerr == nil && rec.Done() && !rec.OK {
				f.markFailed(fmt.Errorf("core: call %s/%s activation %s: %s: %w",
					f.executorID, f.callID, f.activationID, rec.Error, ErrCallFailed))
				return true, nil
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("core: probe status %s/%s: %w", f.executorID, f.callID, err)
	}
}

// Status fetches the call's status record; it requires the call to be done.
func (f *Future) Status() (wire.StatusRecord, error) {
	if err := f.failure(); err != nil {
		return wire.StatusRecord{}, err
	}
	f.mu.Lock()
	cached := f.status
	f.mu.Unlock()
	if cached != nil {
		return *cached, nil
	}
	meta := f.exec.cfg.Platform.MetaBucket()
	data, err := f.exec.getWithRetry(meta, statusKey(f.executorID, f.callID))
	if err != nil {
		return wire.StatusRecord{}, fmt.Errorf("core: fetch status %s/%s: %w", f.executorID, f.callID, err)
	}
	var rec wire.StatusRecord
	if err := wire.Unmarshal(data, &rec); err != nil {
		return wire.StatusRecord{}, err
	}
	f.mu.Lock()
	f.status = &rec
	f.mu.Unlock()
	f.complete(nil)
	return rec, nil
}

// sweepConsultThreshold is the number of consecutive failed status LISTs
// (per executor namespace) after which sweepStatuses stops waiting for
// the listing to recover and consults activation records directly. Low
// enough that a permanently partitioned status prefix surfaces dead calls
// within a few poll intervals, high enough that one lost request does not
// trigger a consult storm.
const sweepConsultThreshold = 3

// sweepStatuses advances completion state for the given futures through
// the executor's shared sweep coordinator: one incremental LIST per
// executor namespace (grouped in sorted order so the simulated network
// sees an identical request sequence every run), marking the matching
// futures done. It also consults platform activation records to surface
// calls that died without committing a status (crash, platform timeout):
// on every trustworthy sweep, and — when the LIST itself keeps failing —
// after sweepConsultThreshold consecutive failures, because a status
// prefix pinned to a partitioned region can stay unlistable for a whole
// outage and skipping forever would keep platform-dead calls invisible.
// It returns how many futures transitioned to done this sweep.
func sweepStatuses(e *Executor, futures []*Future) (int, error) {
	byExec := make(map[string][]*Future)
	for _, f := range futures {
		if !f.knownDone() {
			byExec[f.executorID] = append(byExec[f.executorID], f)
		}
	}
	meta := e.cfg.Platform.MetaBucket()
	asOf := e.clock.Now()
	newlyDone := 0
	for _, execID := range slices.Sorted(maps.Keys(byExec)) {
		ns := nsKey{bucket: meta, execID: execID}
		out := e.sweeps.sweep(ns, asOf)
		if out.err != nil {
			return newlyDone, fmt.Errorf("core: status sweep: %w", out.err)
		}
		for _, f := range byExec[execID] {
			switch {
			case e.sweeps.completed(ns, f.callID):
				f.markDone()
				newlyDone++
			case out.consult() && f.activationID != "":
				rec, err := e.cfg.Platform.Controller().Activation(f.activationID)
				if err == nil && rec.Done() && !rec.OK {
					f.markFailed(fmt.Errorf("core: call %s/%s activation %s: %s: %w",
						f.executorID, f.callID, f.activationID, rec.Error, ErrCallFailed))
					newlyDone++
				}
			}
		}
	}
	return newlyDone, nil
}

// waitFutures implements the three §4.2 strategies over an explicit future
// set.
func waitFutures(e *Executor, futures []*Future, strategy WaitStrategy, deadline time.Time) (done, pending []*Future, err error) {
	partition := func() (d, p []*Future) {
		for _, f := range futures {
			if f.knownDone() {
				d = append(d, f)
			} else {
				p = append(p, f)
			}
		}
		return d, p
	}

	satisfied := func() bool {
		d, p := partition()
		switch strategy {
		case WaitAnyCompleted:
			return len(d) > 0
		case WaitAllCompleted:
			return len(p) == 0
		default:
			return true
		}
	}

	if _, err := sweepStatuses(e, futures); err != nil {
		return nil, nil, err
	}
	if strategy == WaitAlways {
		done, pending = partition()
		return done, pending, nil
	}
	// A non-transient sweep failure must abort the wait, not silently spin
	// until the deadline turns it into a misleading ErrWaitTimeout.
	var sweepErr error
	ok := vclock.Poll(e.clock, func() bool {
		if satisfied() {
			return true
		}
		if _, err := sweepStatuses(e, futures); err != nil {
			sweepErr = err
			return true
		}
		return satisfied()
	}, e.pollInterval(), deadline)
	done, pending = partition()
	if sweepErr != nil {
		return done, pending, sweepErr
	}
	if !ok {
		return done, pending, fmt.Errorf("core: %d of %d calls still pending: %w", len(pending), len(futures), ErrWaitTimeout)
	}
	return done, pending, nil
}

// collectResults waits for all futures, downloads their results with the
// staging pool, and resolves composition continuations. While waiting it
// drives automatic failure recovery (see recover.go): failed calls are
// re-invoked from their staged payloads until they succeed or run out of
// attempts and land on the executor's dead-letter list.
func collectResults(e *Executor, futures []*Future, opts GetResultOptions) ([]json.RawMessage, error) {
	deadline := e.deadlineFrom(opts.Timeout)
	rec := newRecoverer(e, futures, opts.Recovery)

	total := len(futures)
	last := -1
	// Progress reads the executor's O(1) done counter instead of recounting
	// every future each poll — at Table-3 scale the recount alone was an
	// O(total) walk per tick.
	report := func() {
		if opts.Progress == nil {
			return
		}
		done := int(e.doneTracked.Load())
		if done > total {
			done = total
		}
		if done != last {
			last = done
			opts.Progress(done, total)
		}
	}
	report()
	var sweepErr error
	ok := vclock.Poll(e.clock, func() bool {
		e.respawns.advance()
		e.maybeRenewLease()
		if _, err := sweepStatuses(e, futures); err != nil {
			sweepErr = err
			return true
		}
		rec.step()
		report()
		return rec.settled()
	}, e.pollInterval(), deadline)
	if sweepErr != nil {
		return nil, fmt.Errorf("core: get_result: %w", sweepErr)
	}
	if !ok {
		return nil, fmt.Errorf("core: get_result: %w", ErrWaitTimeout)
	}

	failedFs, failErrs := rec.terminalFailures()
	if len(failedFs) > 0 && !opts.PartialResults {
		return nil, fmt.Errorf("core: get_result: %w", errors.Join(failErrs...))
	}
	failedSet := make(map[*Future]bool, len(failedFs))
	for _, f := range failedFs {
		failedSet[f] = true
	}

	r := &resolver{exec: e, deadline: deadline}
	out := make([]json.RawMessage, len(futures))
	errs := parallelFor(e.clock, e.cfg.StageConcurrency, len(futures), func(i int) error {
		if failedSet[futures[i]] {
			return nil // left nil in the output; reported via PartialError
		}
		val, err := r.resolveFuture(futures[i], 0)
		if err != nil {
			return err
		}
		out[i] = val
		return nil
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	if len(failedFs) > 0 {
		return out, &PartialError{Failed: rec.lettersFor(failedFs, failErrs), Errs: failErrs}
	}
	return out, nil
}

// resolver follows composition chains: a result envelope of kind "futures"
// points at further calls whose results must be awaited and combined
// (paper §4.4 — get_result "transparently waits for an on-going function
// composition to complete").
type resolver struct {
	exec     *Executor
	deadline time.Time
}

// resolveFuture returns the final JSON value of a completed future.
func (r *resolver) resolveFuture(f *Future, depth int) (json.RawMessage, error) {
	if err := f.failure(); err != nil {
		return nil, err
	}
	rec, err := f.Status()
	if err != nil {
		return nil, err
	}
	if !rec.OK {
		return nil, fmt.Errorf("core: call %s/%s: %s: %w", f.executorID, f.callID, rec.Error, ErrCallFailed)
	}
	return r.resolveStatus(&rec, depth)
}

// resolveStatus resolves a successful status record's result: from the
// envelope inlined in the record when the runner embedded it (small
// results — no result object exists at all), otherwise from the spilled
// result object.
func (r *resolver) resolveStatus(rec *wire.StatusRecord, depth int) (json.RawMessage, error) {
	if len(rec.Inline) > 0 {
		var env wire.ResultEnvelope
		if err := wire.Unmarshal(rec.Inline, &env); err != nil {
			return nil, err
		}
		return r.resolveEnvelope(&env, depth)
	}
	return r.resolveResultObject(rec.ResultRef, depth)
}

func (r *resolver) resolveResultObject(ref wire.ObjectRef, depth int) (json.RawMessage, error) {
	data, err := r.exec.getWithRetry(ref.Bucket, ref.Key)
	if err != nil {
		return nil, fmt.Errorf("core: fetch result %s/%s: %w", ref.Bucket, ref.Key, err)
	}
	var env wire.ResultEnvelope
	if err := wire.Unmarshal(data, &env); err != nil {
		return nil, err
	}
	return r.resolveEnvelope(&env, depth)
}

func (r *resolver) resolveEnvelope(env *wire.ResultEnvelope, depth int) (json.RawMessage, error) {
	switch env.Kind {
	case wire.ResultValue:
		return env.Value, nil
	case wire.ResultFutures:
		if depth >= maxCompositionDepth {
			return nil, fmt.Errorf("core: composition deeper than %d levels", maxCompositionDepth)
		}
		if env.Futures == nil {
			return nil, errors.New("core: futures envelope without reference")
		}
		return r.resolveFuturesRef(env.Futures, depth+1)
	default:
		return nil, fmt.Errorf("core: unknown result envelope kind %q", env.Kind)
	}
}

// resolveFuturesRef waits for the referenced calls and combines their
// resolved values.
func (r *resolver) resolveFuturesRef(ref *wire.FuturesRef, depth int) (json.RawMessage, error) {
	if len(ref.CallIDs) == 0 {
		return nil, errors.New("core: empty futures reference")
	}
	if err := r.awaitCalls(ref); err != nil {
		return nil, err
	}
	values := make([]json.RawMessage, len(ref.CallIDs))
	for i, callID := range ref.CallIDs {
		val, err := r.resolveCall(ref.MetaBucket, ref.ExecutorID, callID, depth)
		if err != nil {
			return nil, err
		}
		values[i] = val
	}
	switch ref.Combine {
	case wire.CombineSingle:
		if len(values) != 1 {
			return nil, fmt.Errorf("core: single combine over %d calls", len(values))
		}
		return values[0], nil
	default: // wire.CombineList
		return wire.Marshal(values)
	}
}

// awaitCalls waits until every call ID in ref committed a status. It goes
// through the executor's shared sweep coordinator, so the LISTs are
// incremental and coalesce with the main collection sweep and with other
// composition waits over the same child namespace — previously each
// waiter re-listed the full prefix on every poll. It also consults
// activation records (when ref carries them) so a composed call that died
// without committing a status surfaces as ErrCallFailed instead of
// hanging the wait until its deadline.
func (r *resolver) awaitCalls(ref *wire.FuturesRef) error {
	ns := nsKey{bucket: ref.MetaBucket, execID: ref.ExecutorID}
	ctrl := r.exec.cfg.Platform.Controller()
	lookup := func(actID string) (done, ok bool) {
		rec, err := ctrl.Activation(actID)
		if err != nil {
			return false, false
		}
		return rec.Done(), rec.OK
	}
	err := r.exec.sweeps.awaitStatuses(ns, ref.CallIDs, ref.ActivationIDs, lookup,
		r.exec.pollInterval(), r.deadline)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrWaitTimeout):
		return fmt.Errorf("core: await composition %s: %w", ref.ExecutorID, ErrWaitTimeout)
	case errors.Is(err, ErrCallFailed):
		return err
	default:
		return fmt.Errorf("core: await composition: %w", err)
	}
}

// resolveCall fetches a child call's status and resolves its result.
func (r *resolver) resolveCall(metaBucket, execID, callID string, depth int) (json.RawMessage, error) {
	data, err := r.exec.getWithRetry(metaBucket, statusKey(execID, callID))
	if err != nil {
		return nil, fmt.Errorf("core: fetch composed status %s/%s: %w", execID, callID, err)
	}
	var rec wire.StatusRecord
	if err := wire.Unmarshal(data, &rec); err != nil {
		return nil, err
	}
	if !rec.OK {
		return nil, fmt.Errorf("core: composed call %s/%s: %s: %w", execID, callID, rec.Error, ErrCallFailed)
	}
	return r.resolveStatus(&rec, depth)
}
