package core

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"gowren/internal/cos"
	"gowren/internal/wire"
)

func TestPartitionObjectsPerObjectGranularity(t *testing.T) {
	objs := []locatedObject{
		{Bucket: "b", Key: "a", Size: 10},
		{Bucket: "b", Key: "b", Size: 0},
		{Bucket: "b", Key: "c", Size: 1 << 20},
	}
	parts := partitionObjects(objs, 0)
	if len(parts) != 3 {
		t.Fatalf("partitions = %d, want 3 (one per object)", len(parts))
	}
	for i, p := range parts {
		if p.Offset != 0 || p.Length != objs[i].Size || p.Index != i {
			t.Fatalf("partition %d = %+v", i, p)
		}
	}
}

func TestPartitionObjectsChunking(t *testing.T) {
	objs := []locatedObject{{Bucket: "b", Key: "obj", Size: 2500}}
	parts := partitionObjects(objs, 1000)
	if len(parts) != 3 {
		t.Fatalf("partitions = %d, want 3", len(parts))
	}
	wantLens := []int64{1000, 1000, 500}
	for i, p := range parts {
		if p.Offset != int64(i)*1000 || p.Length != wantLens[i] {
			t.Fatalf("partition %d = %+v", i, p)
		}
		if p.ObjectSize != 2500 {
			t.Fatalf("partition %d object size = %d", i, p.ObjectSize)
		}
	}
}

// TestPartitionCoverageProperty checks the fundamental partitioner
// invariant: for any object sizes and chunk size, the partitions of each
// object tile [0, size) exactly — no gaps, no overlaps — and indexes are
// dense and ordered.
func TestPartitionCoverageProperty(t *testing.T) {
	f := func(sizesRaw []uint32, chunkRaw uint16) bool {
		if len(sizesRaw) > 20 {
			sizesRaw = sizesRaw[:20]
		}
		objs := make([]locatedObject, len(sizesRaw))
		for i, s := range sizesRaw {
			objs[i] = locatedObject{Bucket: "b", Key: fmt.Sprintf("o%02d", i), Size: int64(s % 100000)}
		}
		chunk := int64(chunkRaw%5000) - 100 // exercise negative/zero too
		parts := partitionObjects(objs, chunk)

		covered := make(map[string]int64)
		for i, p := range parts {
			if p.Index != i {
				return false
			}
			if p.Offset != covered[p.Key] {
				return false // out of order or gap within object
			}
			if p.Length < 0 || (chunk > 0 && p.Length > chunk && p.Length != p.ObjectSize) {
				// A partition longer than the chunk is only legal when
				// chunking is disabled (chunk <= 0).
				if chunk > 0 {
					return false
				}
			}
			covered[p.Key] += p.Length
		}
		for _, obj := range objs {
			if covered[obj.Key] != obj.Size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionCountMatchesCeilDivision(t *testing.T) {
	f := func(sizeRaw uint32, chunkRaw uint16) bool {
		size := int64(sizeRaw % 1000000)
		chunk := int64(chunkRaw%10000) + 1
		parts := partitionObjects([]locatedObject{{Bucket: "b", Key: "k", Size: size}}, chunk)
		want := (size + chunk - 1) / chunk
		if want == 0 {
			want = 1 // empty objects still get one (empty) partition
		}
		return int64(len(parts)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDiscoverObjectKeys(t *testing.T) {
	store := cos.NewStore()
	if err := store.CreateBucket("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put("d", "x", make([]byte, 42)); err != nil {
		t.Fatal(err)
	}
	objs, err := discoverObjects(store, ObjectKeys{Bucket: "d", Keys: []string{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || objs[0].Size != 42 {
		t.Fatalf("objs = %+v", objs)
	}
	if _, err := discoverObjects(store, ObjectKeys{Bucket: "d", Keys: []string{"missing"}}); !errors.Is(err, cos.ErrNoSuchKey) {
		t.Fatalf("err = %v, want ErrNoSuchKey", err)
	}
	if _, err := discoverObjects(store, ObjectKeys{}); err == nil {
		t.Fatal("empty source accepted")
	}
}

func TestDiscoverBucketsSortedAndMultiBucket(t *testing.T) {
	store := cos.NewStore()
	for _, b := range []string{"b2", "b1"} {
		if err := store.CreateBucket(b); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []string{"z", "a", "m"} {
		if _, err := store.Put("b1", k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := store.Put("b2", "k", []byte("y")); err != nil {
		t.Fatal(err)
	}
	objs, err := discoverObjects(store, Buckets{"b2", "b1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 4 {
		t.Fatalf("objs = %d, want 4", len(objs))
	}
	for i := 1; i < len(objs); i++ {
		prev := objs[i-1].Bucket + "/" + objs[i-1].Key
		cur := objs[i].Bucket + "/" + objs[i].Key
		if prev >= cur {
			t.Fatalf("discovery not sorted: %s then %s", prev, cur)
		}
	}
	if _, err := discoverObjects(store, Buckets{}); err == nil {
		t.Fatal("empty bucket list accepted")
	}
	if _, err := discoverObjects(store, Buckets{"ghost"}); !errors.Is(err, cos.ErrNoSuchBucket) {
		t.Fatalf("err = %v, want ErrNoSuchBucket", err)
	}
}

func TestDiscoverEmptyBucketRejected(t *testing.T) {
	store := cos.NewStore()
	if err := store.CreateBucket("empty"); err != nil {
		t.Fatal(err)
	}
	if _, err := discoverObjects(store, Buckets{"empty"}); err == nil {
		t.Fatal("discovery over empty bucket should error")
	}
}

func TestGroupForReduce(t *testing.T) {
	parts := []wire.Partition{
		{Bucket: "b", Key: "city-a"},
		{Bucket: "b", Key: "city-b"},
		{Bucket: "b", Key: "city-a"},
		{Bucket: "b", Key: "city-c"},
		{Bucket: "b", Key: "city-a"},
	}
	ids := []string{"0", "1", "2", "3", "4"}

	global := groupForReduce(parts, ids, false)
	if len(global) != 1 || len(global[0].callIDs) != 5 || global[0].key != "" {
		t.Fatalf("global grouping = %+v", global)
	}

	perObj := groupForReduce(parts, ids, true)
	if len(perObj) != 3 {
		t.Fatalf("per-object groups = %d, want 3", len(perObj))
	}
	if perObj[0].key != "b/city-a" || len(perObj[0].callIDs) != 3 {
		t.Fatalf("group a = %+v", perObj[0])
	}
	if got := perObj[0].callIDs; got[0] != "0" || got[1] != "2" || got[2] != "4" {
		t.Fatalf("group a call order = %v", got)
	}
}

func TestPlanPartitionsEndToEnd(t *testing.T) {
	store := cos.NewStore()
	if err := store.CreateBucket("data"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put("data", "obj", make([]byte, 3072)); err != nil {
		t.Fatal(err)
	}
	parts, err := PlanPartitions(store, Buckets{"data"}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("plan = %d partitions, want 3", len(parts))
	}
}
