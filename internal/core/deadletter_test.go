package core

import (
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"gowren/internal/runtime"
)

// newGateEnv registers "gated": a function that fails while gate is open
// and returns its argument once closed — the shape of a regional outage
// from user code's point of view.
func newGateEnv(t *testing.T) (*env, *atomic.Bool) {
	t.Helper()
	var gate atomic.Bool
	gate.Store(true)
	e := newEnvWith(t, func(img *runtime.Image) {
		if err := img.RegisterPlain("gated", func(_ *runtime.Ctx, arg json.RawMessage) (any, error) {
			if gate.Load() {
				return nil, errors.New("dependency unavailable")
			}
			return arg, nil
		}); err != nil {
			t.Fatal(err)
		}
	})
	return e, &gate
}

func TestDeadLettersPersistedToMetaBucket(t *testing.T) {
	e, _ := newGateEnv(t)
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		if _, err := exec.Map("gated", []any{1, 2}); err != nil {
			t.Error(err)
			return
		}
		_, err := exec.GetResult(GetResultOptions{
			Recovery:       &RecoveryOptions{MaxAttempts: 1, Backoff: 100 * time.Millisecond},
			PartialResults: true,
		})
		var pe *PartialError
		if !errors.As(err, &pe) {
			t.Errorf("err = %v, want PartialError", err)
			return
		}
		letters := exec.DeadLetters()
		if len(letters) != 2 {
			t.Errorf("dead letters = %d, want 2", len(letters))
			return
		}
		persisted, err := exec.PersistedDeadLetters()
		if err != nil {
			t.Error(err)
			return
		}
		if len(persisted) != 2 {
			t.Errorf("persisted dead letters = %d, want 2", len(persisted))
			return
		}
		for i, d := range persisted {
			if d.ExecutorID != exec.ID() || d.Attempts != 1 || d.LastError == "" {
				t.Errorf("persisted[%d] = %+v", i, d)
			}
		}
	})
}

func TestReplayDeadLettersRestagesAsNewJob(t *testing.T) {
	e, gate := newGateEnv(t)
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		if _, err := exec.Map("gated", []any{11, 22, 33}); err != nil {
			t.Error(err)
			return
		}
		_, err := exec.GetResult(GetResultOptions{
			Recovery:       &RecoveryOptions{MaxAttempts: 1, Backoff: 100 * time.Millisecond},
			PartialResults: true,
		})
		if err == nil {
			t.Error("outage produced no error")
			return
		}
		if len(exec.DeadLetters()) != 3 {
			t.Errorf("dead letters = %d, want 3", len(exec.DeadLetters()))
			return
		}
		// The dependency heals; replay the parked calls as a new job.
		gate.Store(false)
		replayed, err := exec.ReplayDeadLetters()
		if err != nil {
			t.Error(err)
			return
		}
		if len(replayed) != 3 {
			t.Errorf("replayed futures = %d, want 3", len(replayed))
			return
		}
		if len(exec.DeadLetters()) != 0 {
			t.Error("dead-letter list not cleared by replay")
		}
		// The dead originals are untracked, so a full GetResult collects
		// each replayed call exactly once.
		if n := len(exec.Futures()); n != 3 {
			t.Errorf("tracked futures after replay = %d, want 3", n)
		}
		results, err := collectResults(exec, replayed, GetResultOptions{})
		if err != nil {
			t.Error(err)
			return
		}
		// Replay order follows dead-letter (give-up) order, not argument
		// order; the values themselves must all come back.
		got := decodeInts(t, results)
		seen := make(map[int]bool, len(got))
		for _, v := range got {
			seen[v] = true
		}
		for _, want := range []int{11, 22, 33} {
			if !seen[want] {
				t.Errorf("replayed results = %v, missing %d", got, want)
			}
		}
		// Replay consumed the durable records.
		persisted, err := exec.PersistedDeadLetters()
		if err != nil {
			t.Error(err)
			return
		}
		if len(persisted) != 0 {
			t.Errorf("persisted dead letters after replay = %d, want 0", len(persisted))
		}
	})
}

func TestReplayDeadLettersEmpty(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		fs, err := exec.ReplayDeadLetters()
		if err != nil || fs != nil {
			t.Errorf("empty replay = %v, %v, want nil, nil", fs, err)
		}
	})
}

func TestCleanRemovesDeadLetterRecords(t *testing.T) {
	e, _ := newGateEnv(t)
	exec := e.executor(t, nil)
	e.clk.Run(func() {
		if _, err := exec.Map("gated", []any{1}); err != nil {
			t.Error(err)
			return
		}
		_, err := exec.GetResult(GetResultOptions{
			Recovery:       &RecoveryOptions{MaxAttempts: 1, Backoff: 100 * time.Millisecond},
			PartialResults: true,
		})
		if err == nil {
			t.Error("outage produced no error")
			return
		}
		if err := exec.Clean(); err != nil {
			t.Error(err)
			return
		}
		persisted, err := exec.PersistedDeadLetters()
		if err != nil {
			t.Error(err)
			return
		}
		if len(persisted) != 0 {
			t.Errorf("persisted dead letters after clean = %d", len(persisted))
		}
	})
}
