package core

import (
	"fmt"
	"time"
)

// Automatic failure recovery in the wait path. The paper's programming
// model (§4.2) leaves failure handling to the user: a crashed container or
// a failed call surfaces from get_result and the caller re-runs the job.
// GoWren keeps that behavior reachable (RecoveryOptions.Disabled, the
// manual FailedFutures/Respawn pair) but defaults to the thing every real
// deployment ends up building anyway: while the client is already polling
// for statuses, failed calls are re-invoked from their staged payloads —
// idempotent by construction — up to a bounded number of attempts with
// backoff. Calls that stay broken are parked on the executor's dead-letter
// list and reported either as an error or, with PartialResults, alongside
// the successful subset.

// Recovery defaults applied by RecoveryOptions.withDefaults.
const (
	// DefaultRecoveryAttempts is the per-call re-execution cap.
	DefaultRecoveryAttempts = 3
	// DefaultRecoveryBackoff is the delay before the first re-execution;
	// it doubles per attempt up to maxRecoveryBackoff.
	DefaultRecoveryBackoff = 500 * time.Millisecond
	maxRecoveryBackoff     = 10 * time.Second
)

// RecoveryOptions tune automatic re-execution of failed calls during
// result collection. The zero value means "recovery on, defaults".
type RecoveryOptions struct {
	// Disabled switches automatic recovery off: failures surface on the
	// first observation, like the original PyWren client.
	Disabled bool
	// MaxAttempts caps re-executions per call. Zero selects
	// DefaultRecoveryAttempts; negative behaves like zero attempts left
	// (failures dead-letter immediately but are still recorded).
	MaxAttempts int
	// Backoff delays the first re-execution of a failed call and doubles
	// per subsequent attempt. Zero selects DefaultRecoveryBackoff.
	Backoff time.Duration
}

func (o RecoveryOptions) withDefaults() RecoveryOptions {
	if o.MaxAttempts == 0 {
		o.MaxAttempts = DefaultRecoveryAttempts
	}
	if o.MaxAttempts < 0 {
		o.MaxAttempts = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = DefaultRecoveryBackoff
	}
	return o
}

// DeadLetter records one call automatic recovery gave up on.
type DeadLetter struct {
	ExecutorID string
	CallID     string
	// Attempts is the number of automatic re-executions performed.
	Attempts int
	// LastError is the failure observed when recovery gave up.
	LastError string
	// GaveUpAt is the virtual time of the final verdict.
	GaveUpAt time.Time
}

// DeadLetters returns the calls automatic recovery abandoned, in the order
// they were given up on. The list accumulates across GetResult calls;
// a respawned call that later succeeds never appears here.
func (e *Executor) DeadLetters() []DeadLetter {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]DeadLetter, len(e.deadLetters))
	copy(out, e.deadLetters)
	return out
}

func (e *Executor) addDeadLetter(d DeadLetter) {
	e.mu.Lock()
	e.deadLetters = append(e.deadLetters, d)
	e.mu.Unlock()
	// Durable copy in the meta bucket, next to the staged payload it
	// refers to (see deadletter.go).
	e.persistDeadLetter(d)
}

// PartialError reports the calls that failed permanently when GetResult
// ran with PartialResults. It unwraps to the per-call errors, so
// errors.Is(err, ErrCallFailed) works on it.
type PartialError struct {
	// Failed lists the permanently failed calls, mirroring the
	// executor's dead letters for this collection.
	Failed []DeadLetter
	// Errs holds one error per failed call.
	Errs []error
}

func (p *PartialError) Error() string {
	return fmt.Sprintf("core: %d calls failed permanently (first: %v)", len(p.Errs), p.Errs[0])
}

// Unwrap exposes the per-call errors to errors.Is/errors.As.
func (p *PartialError) Unwrap() []error { return p.Errs }

// recoverer drives automatic re-execution from inside a wait loop. One
// recoverer serves one collection call; the executor's dead-letter list is
// the only state that outlives it.
type recoverer struct {
	exec    *Executor
	opts    RecoveryOptions
	futures []*Future

	attempts map[*Future]int
	nextTry  map[*Future]time.Time
	failed   map[*Future]error // terminal failures, keyed by future
}

func newRecoverer(e *Executor, futures []*Future, opts *RecoveryOptions) *recoverer {
	var o RecoveryOptions
	if opts != nil {
		o = *opts
	}
	return &recoverer{
		exec:     e,
		opts:     o.withDefaults(),
		futures:  futures,
		attempts: make(map[*Future]int),
		nextTry:  make(map[*Future]time.Time),
		failed:   make(map[*Future]error),
	}
}

// observedFailure returns the failure currently visible on f, or nil. It
// covers both failure modes: an activation that died without committing a
// status (crash) and a committed status with OK=false (user or runner
// error).
func (r *recoverer) observedFailure(f *Future) error {
	if err := f.failure(); err != nil {
		return err
	}
	if !f.knownDone() {
		return nil
	}
	rec, err := f.Status()
	if err != nil {
		return fmt.Errorf("core: call %s/%s status unreadable: %w", f.executorID, f.callID, err)
	}
	if !rec.OK {
		return fmt.Errorf("core: call %s/%s: %s: %w", f.executorID, f.callID, rec.Error, ErrCallFailed)
	}
	return nil
}

// step runs one recovery pass: newly observed failures are scheduled for
// re-execution after their backoff, due ones are respawned in a batch, and
// calls out of attempts are dead-lettered. Respawn failures (for example a
// controller outage outlasting the invocation retries) are not fatal: the
// future stays failed and the next pass tries again until the attempt cap
// dead-letters it.
func (r *recoverer) step() {
	now := r.exec.clock.Now()
	var due []*Future
	for _, f := range r.futures {
		if _, terminal := r.failed[f]; terminal {
			continue
		}
		err := r.observedFailure(f)
		if err == nil {
			continue
		}
		if r.opts.Disabled || r.attempts[f] >= r.opts.MaxAttempts {
			r.failed[f] = err
			if !r.opts.Disabled {
				r.exec.addDeadLetter(DeadLetter{
					ExecutorID: f.executorID,
					CallID:     f.callID,
					Attempts:   r.attempts[f],
					LastError:  err.Error(),
					GaveUpAt:   now,
				})
			}
			continue
		}
		when, scheduled := r.nextTry[f]
		if !scheduled {
			// First sighting of this failure: wait out the backoff before
			// re-invoking, doubling per attempt already spent.
			backoff := r.opts.Backoff << r.attempts[f]
			if backoff > maxRecoveryBackoff || backoff <= 0 {
				backoff = maxRecoveryBackoff
			}
			r.nextTry[f] = now.Add(backoff)
			continue
		}
		if now.Before(when) {
			continue
		}
		due = append(due, f)
	}
	// The ledger shared with speculation grants at most one automatic
	// respawn per call per tick and a joint lifetime budget; denied calls
	// stay due and come around next tick (or dead-letter at the attempt
	// cap above).
	due = r.exec.respawns.reserve(due, respawnLimit(r.opts))
	if len(due) == 0 {
		return
	}
	for _, f := range due {
		r.attempts[f]++
		delete(r.nextTry, f)
	}
	// Respawn resets each successfully re-invoked future; ones it could
	// not re-invoke keep their failure mark and come around again.
	_ = r.exec.Respawn(due)
}

// settled reports whether every future reached a terminal state: succeeded,
// or failed with no recovery attempts left.
func (r *recoverer) settled() bool {
	for _, f := range r.futures {
		if _, terminal := r.failed[f]; terminal {
			continue
		}
		if !f.knownDone() || f.failure() != nil {
			return false
		}
		// Completed with a status: only a success is terminal here; a
		// failure status belongs to step() first.
		rec, err := f.Status()
		if err != nil || !rec.OK {
			return false
		}
	}
	return true
}

// lettersFor summarizes terminal failures as DeadLetter values for a
// PartialError (also covering Disabled mode, where nothing was added to
// the executor's dead-letter list).
func (r *recoverer) lettersFor(fs []*Future, errs []error) []DeadLetter {
	now := r.exec.clock.Now()
	out := make([]DeadLetter, len(fs))
	for i, f := range fs {
		out[i] = DeadLetter{
			ExecutorID: f.executorID,
			CallID:     f.callID,
			Attempts:   r.attempts[f],
			LastError:  errs[i].Error(),
			GaveUpAt:   now,
		}
	}
	return out
}

// terminalFailures returns the futures recovery gave up on, with their
// errors, in future order.
func (r *recoverer) terminalFailures() ([]*Future, []error) {
	var fs []*Future
	var errs []error
	for _, f := range r.futures {
		if err, ok := r.failed[f]; ok {
			fs = append(fs, f)
			errs = append(errs, err)
		}
	}
	return fs, errs
}
