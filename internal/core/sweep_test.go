package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"gowren/internal/cos"
	"gowren/internal/netsim"
)

// statusListBlackhole delegates to an inner client but permanently fails
// every List over a status prefix with the transient ErrRequestFailed —
// the shape of a partition that pins down exactly the status namespace
// while the rest of the job traffic (payload puts, invoke path) still
// flows.
type statusListBlackhole struct {
	cos.Client
}

func (c *statusListBlackhole) List(bucket, prefix, marker string, maxKeys int) (cos.ListResult, error) {
	if strings.Contains(prefix, "/"+statusPrefix+"/") {
		return cos.ListResult{}, cos.ErrRequestFailed
	}
	return c.Client.List(bucket, prefix, marker, maxKeys)
}

// TestDeadActivationSurfacedDuringListOutage is the regression test for
// the sweepConsultThreshold fall-through: when the status LIST fails
// transiently on every poll (a partitioned status prefix) and the
// activation died without committing a status record, the sweep must
// still consult activation records after a few consecutive failures and
// surface ErrCallFailed — instead of skipping the consult forever and
// spinning until the wait deadline.
func TestDeadActivationSurfacedDuringListOutage(t *testing.T) {
	e := newEnv(t, func(cfg *PlatformConfig) { cfg.CrashProb = 1.0 })
	exec := e.executor(t, func(c *Config) {
		c.Storage = &statusListBlackhole{Client: cos.NewLinked(e.store, e.clk, netsim.Loopback())}
	})
	e.clk.Run(func() {
		if _, err := exec.Map("add7", []any{1}); err != nil {
			t.Error(err)
			return
		}
		start := e.clk.Now()
		_, err := exec.GetResult(GetResultOptions{Timeout: time.Hour})
		if !errors.Is(err, ErrCallFailed) {
			t.Errorf("err = %v, want ErrCallFailed surfaced via activation records", err)
		}
		// The consult must kick in after sweepConsultThreshold polls, not
		// ride the outage all the way to the one-hour deadline.
		if waited := e.clk.Now().Sub(start); waited > 30*time.Minute {
			t.Errorf("failure took %v of virtual time to surface — consult threshold did not engage", waited)
		}
	})
}

// TestListFailureCounterResets checks the consecutive-failure bookkeeping:
// a successful LIST must clear the counter so isolated transient failures
// never accumulate to the consult threshold.
func TestListFailureCounterResets(t *testing.T) {
	e := newEnv(t, nil)
	exec := e.executor(t, nil)
	if n := exec.noteListFailure("ex-a"); n != 1 {
		t.Fatalf("first failure count = %d, want 1", n)
	}
	if n := exec.noteListFailure("ex-a"); n != 2 {
		t.Fatalf("second failure count = %d, want 2", n)
	}
	if n := exec.noteListFailure("ex-b"); n != 1 {
		t.Fatalf("counts must be per executor namespace, got %d for ex-b", n)
	}
	exec.resetListFailures("ex-a")
	if n := exec.noteListFailure("ex-a"); n != 1 {
		t.Fatalf("count after reset = %d, want 1", n)
	}
}
