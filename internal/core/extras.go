package core

import (
	"errors"
	"fmt"
	"time"

	"gowren/internal/cos"
	"gowren/internal/wire"
)

// This file holds the quality-of-life operations around the Table 2 API:
// job cleanup (PyWren's clean()), fractional wait thresholds, and respawn
// of platform-failed calls — the operational features a user of the real
// system reaches for once jobs grow to thousands of functions.

// Clean deletes every object this executor staged or produced in the meta
// bucket (payloads, statuses, results). Call it after GetResult; futures
// become unusable afterwards.
func (e *Executor) Clean() error {
	meta := e.cfg.Platform.MetaBucket()
	for _, prefix := range []string{payloadPrefix, statusPrefix, resultPrefix, shufflePrefix, deadLetterPrefix, journalPrefix} {
		listed, err := cos.ListAll(e.cfg.Storage, meta, fmt.Sprintf("jobs/%s/%s/", e.id, prefix))
		if err != nil {
			return fmt.Errorf("core: clean %s: %w", e.id, err)
		}
		errs := parallelFor(e.clock, e.cfg.StageConcurrency, len(listed), func(i int) error {
			return e.cfg.Storage.Delete(meta, listed[i].Key)
		})
		if err := firstErr(errs); err != nil {
			return fmt.Errorf("core: clean %s: %w", e.id, err)
		}
	}
	// The lease and the manifest are single keys outside the per-kind
	// prefixes; jobs that never journaled (disabled, or storage without
	// conditional put) have neither.
	for _, key := range []string{leaseKey(e.id), manifestKey(e.id)} {
		if err := e.cfg.Storage.Delete(meta, key); err != nil && !errors.Is(err, cos.ErrNoSuchKey) {
			return fmt.Errorf("core: clean %s: %w", e.id, err)
		}
	}
	// The status objects the sweep state mirrors are gone; drop the state
	// with them.
	e.sweeps.forgetNamespace(nsKey{bucket: meta, execID: e.id})
	return nil
}

// WaitThreshold blocks until at least frac (0 < frac <= 1) of the tracked
// futures have completed, generalizing AnyCompleted/AllCompleted the way
// later PyWren versions generalize return_when. It returns the (done,
// pending) partition observed when the threshold was met.
func (e *Executor) WaitThreshold(frac float64, deadline time.Time) (done, pending []*Future, err error) {
	if frac <= 0 || frac > 1 {
		return nil, nil, fmt.Errorf("core: wait threshold %v out of (0,1]", frac)
	}
	futures := e.Futures()
	if len(futures) == 0 {
		return nil, nil, ErrNoFutures
	}
	need := int(frac * float64(len(futures)))
	if need < 1 {
		need = 1
	}
	partition := func() (d, p []*Future) {
		for _, f := range futures {
			if f.knownDone() {
				d = append(d, f)
			} else {
				p = append(p, f)
			}
		}
		return d, p
	}
	// A non-transient sweep failure aborts the wait; swallowing it here
	// would spin until the deadline and misreport it as ErrWaitTimeout.
	var sweepErr error
	ok := pollClock(e, func() bool {
		if _, err := sweepStatuses(e, futures); err != nil {
			sweepErr = err
			return true
		}
		d, _ := partition()
		return len(d) >= need
	}, deadline)
	done, pending = partition()
	if sweepErr != nil {
		return done, pending, fmt.Errorf("core: wait threshold: %w", sweepErr)
	}
	if !ok {
		return done, pending, fmt.Errorf("core: threshold %d/%d not reached: %w", need, len(futures), ErrWaitTimeout)
	}
	return done, pending, nil
}

// FailedFutures returns the tracked futures known to have failed — either
// with a failure status committed by the runner or a dead activation.
// It sweeps first so the answer reflects current platform state.
func (e *Executor) FailedFutures() ([]*Future, error) {
	futures := e.Futures()
	if _, err := sweepStatuses(e, futures); err != nil {
		return nil, err
	}
	var failed []*Future
	for _, f := range futures {
		if f.failure() != nil {
			failed = append(failed, f)
			continue
		}
		if !f.knownDone() {
			continue
		}
		rec, err := f.Status()
		if err != nil || !rec.OK {
			failed = append(failed, f)
		}
	}
	return failed, nil
}

// Respawn re-invokes the given (typically failed) calls using their staged
// payloads, which remain in storage. The futures are reset and re-tracked
// in place; useful after transient platform failures (container crashes)
// — deterministic user-code errors will simply fail again. Respawn is a
// job-state mutation: it first re-asserts the driver lease, so a driver
// superseded by Attach fails with ErrFenced before deleting any status.
func (e *Executor) Respawn(futures []*Future) error {
	if len(futures) == 0 {
		return nil
	}
	if err := e.renewLease(); err != nil {
		return err
	}
	meta := e.cfg.Platform.MetaBucket()
	action, err := e.cfg.Platform.EnsureRuntime(e.cfg.RuntimeImage)
	if err != nil {
		return err
	}
	for _, f := range futures {
		if f.exec != e {
			return errors.New("core: respawn of a future from another executor")
		}
	}
	// Remove stale statuses so completion polling does not observe the
	// failed run's record.
	errs := parallelFor(e.clock, e.cfg.StageConcurrency, len(futures), func(i int) error {
		f := futures[i]
		return e.cfg.Storage.Delete(meta, statusKey(f.executorID, f.callID))
	})
	if err := firstErr(errs); err != nil {
		return fmt.Errorf("core: respawn reset: %w", err)
	}
	// The sweep coordinator may already have these calls behind its
	// done-frontier; withdraw them so the next sweep re-observes the
	// respawned run's status instead of trusting the deleted one.
	for _, f := range futures {
		e.sweeps.forget(nsKey{bucket: meta, execID: f.executorID}, f.callID)
	}
	regions, err := e.replaceRegions(futures)
	if err != nil {
		return err
	}
	newActs := make([]string, len(futures))
	errs = parallelFor(e.clock, e.cfg.InvokeConcurrency, len(futures), func(i int) error {
		f := futures[i]
		actID, err := e.invokeOne(action, payloadRef(meta, f.executorID, f.callID), e.cfg.Tenant)
		if err != nil {
			return fmt.Errorf("respawn %s/%s: %w", f.executorID, f.callID, err)
		}
		newActs[i] = actID
		f.reset(actID)
		return nil
	})
	invokeErr := firstErr(errs)
	// Journal what was actually re-invoked, even on partial failure: a
	// resuming driver must know about every live activation.
	var calls []wire.JournalCall
	for i, f := range futures {
		if newActs[i] != "" {
			calls = append(calls, wire.JournalCall{CallID: f.callID, ActivationID: newActs[i], Region: regions[i]})
		}
	}
	if len(calls) > 0 {
		e.appendJournal(wire.JournalRespawn, func(rec *wire.JournalRecord) { rec.Calls = calls })
	}
	if invokeErr != nil {
		return fmt.Errorf("core: respawn: %w", invokeErr)
	}
	return nil
}

// replaceRegions applies the anti-affinity knob before a respawn invokes:
// each call whose payload carries a region is re-placed in a region other
// than the one whose failure killed it, and the payload is re-staged so the
// runner executes through the new region's view. It returns the (possibly
// updated) region per future; with the knob off it reports the empty
// placement without touching storage.
func (e *Executor) replaceRegions(futures []*Future) ([]string, error) {
	regions := make([]string, len(futures))
	if !e.cfg.AntiAffinityRespawn || len(e.cfg.Platform.Regions()) < 2 {
		return regions, nil
	}
	meta := e.cfg.Platform.MetaBucket()
	errs := parallelFor(e.clock, e.cfg.StageConcurrency, len(futures), func(i int) error {
		f := futures[i]
		data, err := e.getWithRetry(meta, payloadKey(f.executorID, f.callID))
		if err != nil {
			return fmt.Errorf("respawn re-place %s/%s: %w", f.executorID, f.callID, err)
		}
		var p wire.CallPayload
		if err := wire.Unmarshal(data, &p); err != nil {
			return fmt.Errorf("respawn re-place %s/%s: %w", f.executorID, f.callID, err)
		}
		regions[i] = p.Region
		moved := e.cfg.Platform.PlaceCallAvoiding(p.CallID, p.Region)
		if moved == "" || moved == p.Region {
			return nil
		}
		p.Region = moved
		if err := e.putWithRetry(meta, payloadKey(f.executorID, f.callID), wire.MustMarshal(&p)); err != nil {
			return fmt.Errorf("respawn re-place %s/%s: %w", f.executorID, f.callID, err)
		}
		regions[i] = moved
		return nil
	})
	if err := firstErr(errs); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return regions, nil
}

// JobStats summarizes the executor's storage footprint (for tests,
// tooling, and Clean verification).
type JobStats struct {
	Payloads int
	Statuses int
	Results  int
	Shuffle  int
}

// Stats counts the executor's objects in the meta bucket.
func (e *Executor) Stats() (JobStats, error) {
	var out JobStats
	meta := e.cfg.Platform.MetaBucket()
	for _, x := range []struct {
		prefix string
		dst    *int
	}{
		{payloadPrefix, &out.Payloads},
		{statusPrefix, &out.Statuses},
		{resultPrefix, &out.Results},
		{shufflePrefix, &out.Shuffle},
	} {
		listed, err := cos.ListAll(e.cfg.Storage, meta, fmt.Sprintf("jobs/%s/%s/", e.id, x.prefix))
		if err != nil {
			return JobStats{}, fmt.Errorf("core: stats %s: %w", e.id, err)
		}
		*x.dst = len(listed)
	}
	return out, nil
}

// pollClock is Poll with the executor's interval.
func pollClock(e *Executor, pred func() bool, deadline time.Time) bool {
	if pred() {
		return true
	}
	for {
		if !deadline.IsZero() && !e.clock.Now().Before(deadline) {
			return false
		}
		e.clock.Sleep(e.pollInterval())
		if pred() {
			return true
		}
	}
}

// reset rearms a future for a respawned invocation, giving back its slot
// in the executor's done counter.
func (f *Future) reset(activationID string) {
	f.mu.Lock()
	wasCounted := f.tracked && f.done
	f.done = false
	f.failed = nil
	f.status = nil
	f.activationID = activationID
	f.mu.Unlock()
	if wasCounted {
		f.exec.doneTracked.Add(-1)
	}
}
