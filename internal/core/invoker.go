package core

import (
	"fmt"

	"gowren/internal/cos"
	"gowren/internal/wire"
)

// approxInvokeBytes is the request-body size charged per invocation call:
// the runner only receives an object reference, not the payload itself.
const approxInvokeBytes = 256

// invokeDirect fires one invocation per payload from this executor's
// location, using the client thread pool — PyWren's original strategy and
// the "local invocation" arm of Fig. 2. It returns the activation IDs in
// payload order.
func (e *Executor) invokeDirect(action string, payloads []*wire.CallPayload) ([]string, error) {
	actIDs := make([]string, len(payloads))
	errs := parallelFor(e.clock, e.cfg.InvokeConcurrency, len(payloads), func(i int) error {
		p := payloads[i]
		ref := payloadRef(p.MetaBucket, p.ExecutorID, p.CallID)
		id, err := e.invokeOne(action, ref, p.Tenant)
		if err != nil {
			return fmt.Errorf("invoke call %s/%s: %w", p.ExecutorID, p.CallID, err)
		}
		actIDs[i] = id
		return nil
	})
	if err := firstErr(errs); err != nil {
		return nil, fmt.Errorf("core: direct invocation: %w", err)
	}
	return actIDs, nil
}

// invokeOne performs a single invocation as tenant under the shared retry
// policy: throttles and lost requests back off with decorrelated jitter,
// drawing on the executor's retry budget and tripping its circuit breaker
// (when armed). Each attempt pays the serialized client overhead and one
// control-link round trip.
func (e *Executor) invokeOne(action string, ref wire.ObjectRef, tenant string) (string, error) {
	params := wire.MustMarshal(ref)
	var id string
	err := e.invokeRetry.Do(func() error {
		e.gil.Acquire(e.cfg.ClientOverhead)
		if e.cfg.ControlLink != nil {
			d, failed := e.cfg.ControlLink.RequestCost(approxInvokeBytes)
			e.clock.Sleep(d)
			if failed {
				return fmt.Errorf("core: invocation request lost: %w", cos.ErrRequestFailed)
			}
		}
		got, err := e.cfg.Platform.Controller().InvokeTenant(tenant, action, params)
		if err != nil {
			return err
		}
		id = got
		return nil
	})
	if err != nil {
		return "", fmt.Errorf("core: invocation failed: %w", err)
	}
	return id, nil
}

// invokeViaSpawners implements massive function spawning (§5.1): payload
// references are grouped (100 per group by default) and each group is
// handed to a remote invoker function that fires the invocations from
// inside the cloud at datacenter latency. The client pays only
// ceil(n/group) WAN invocations. Activation IDs of the target calls are not
// known client-side in this mode.
func (e *Executor) invokeViaSpawners(action string, payloads []*wire.CallPayload) ([]string, error) {
	group := e.cfg.SpawnGroupSize
	meta := e.cfg.Platform.MetaBucket()
	invokerAction := invokerActionName(e.cfg.RuntimeImage)

	var groups [][]wire.SpawnTarget
	for start := 0; start < len(payloads); start += group {
		end := start + group
		if end > len(payloads) {
			end = len(payloads)
		}
		targets := make([]wire.SpawnTarget, 0, end-start)
		for _, p := range payloads[start:end] {
			targets = append(targets, wire.SpawnTarget{
				Action:  action,
				Payload: payloadRef(p.MetaBucket, p.ExecutorID, p.CallID),
				Tenant:  p.Tenant,
			})
		}
		groups = append(groups, targets)
	}

	// Stage one invoker payload per group under this executor's namespace.
	invCallIDs := e.reserveCallIDs(len(groups))
	invPayloads := make([]*wire.CallPayload, len(groups))
	for g, targets := range groups {
		invPayloads[g] = &wire.CallPayload{
			ExecutorID: e.id,
			CallID:     invCallIDs[g],
			Runtime:    e.cfg.RuntimeImage,
			Function:   "gowren/spawn", // resolved by the invoker handler, not an image function
			Kind:       wire.KindInvoker,
			Invoker:    &wire.InvokerSpec{Targets: targets},
			MetaBucket: meta,
		}
	}
	if err := e.stagePayloads(invPayloads); err != nil {
		return nil, fmt.Errorf("core: stage invoker groups: %w", err)
	}

	errs := parallelFor(e.clock, e.cfg.InvokeConcurrency, len(invPayloads), func(g int) error {
		p := invPayloads[g]
		if _, err := e.invokeOne(invokerAction, payloadRef(meta, p.ExecutorID, p.CallID), p.Tenant); err != nil {
			return fmt.Errorf("invoke spawner group %d: %w", g, err)
		}
		return nil
	})
	if err := firstErr(errs); err != nil {
		return nil, fmt.Errorf("core: massive spawning: %w", err)
	}
	return nil, nil
}
