package analysis

import (
	"strings"
)

// allowDirective is the suppression comment prefix. Full form:
//
//	//gowren:allow clockcheck — one-line justification
//
// Several checks may be listed, comma-separated. The directive silences
// matching diagnostics on its own line and on the line directly below it,
// so it works both as a trailing comment and as a preceding one.
const allowDirective = "//gowren:allow"

// AuditCheck names the allow-list audit analyzer. Its diagnostics flag
// //gowren:allow directives themselves (missing justifications), so they are
// exempt from suppression: an allow comment cannot vouch for itself.
const AuditCheck = "allowaudit"

// allowSet maps file → line → set of allowed check names for that line.
type allowSet map[string]map[int]map[string]bool

// allowedLines collects every //gowren:allow directive in pkg's files.
func allowedLines(pkg *Package) allowSet {
	set := allowSet{}
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				checks, _, ok := ParseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				// The directive covers its own line (trailing comment)
				// and the next line (standalone comment above the code).
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if lines[line] == nil {
						lines[line] = map[string]bool{}
					}
					for _, name := range checks {
						lines[line][name] = true
					}
				}
			}
		}
	}
	return set
}

// ParseAllow extracts the check names and the free-form justification from
// one comment's text, reporting whether the comment is an allow directive at
// all. The justification is everything after the check list with the
// conventional "—"/"--" separator stripped; an empty string means the
// directive carries none (which the allowaudit analyzer flags).
func ParseAllow(text string) (checks []string, justification string, ok bool) {
	if !strings.HasPrefix(text, allowDirective) {
		return nil, "", false
	}
	rest := text[len(allowDirective):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, "", false // e.g. //gowren:allowlist — not ours
	}
	// Everything after the check list is a free-form justification,
	// conventionally introduced with "—" or "--".
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, "", false
	}
	for _, name := range strings.Split(fields[0], ",") {
		if name != "" {
			checks = append(checks, name)
		}
	}
	justification = strings.Join(fields[1:], " ")
	for _, sep := range []string{"—", "--", "-", ":"} {
		justification = strings.TrimPrefix(justification, sep)
	}
	justification = strings.TrimSpace(justification)
	return checks, justification, len(checks) > 0
}

// matches reports whether d is silenced by a directive in the set. Audit
// findings are never silenced: a bare //gowren:allow allowaudit would
// otherwise vouch for itself.
func (s allowSet) matches(d Diagnostic) bool {
	if d.Check == AuditCheck {
		return false
	}
	lines, ok := s[d.Pos.Filename]
	if !ok {
		return false
	}
	checks, ok := lines[d.Pos.Line]
	if !ok {
		return false
	}
	return checks[d.Check] || checks["all"]
}
