package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowDirective is the suppression comment prefix. Full form:
//
//	//gowren:allow clockcheck — one-line justification
//
// Several checks may be listed, comma-separated. The directive silences
// matching diagnostics on its own line and on the line directly below it,
// so it works both as a trailing comment and as a preceding one. When the
// directive trails a multi-line expression statement (or precedes one),
// it covers the statement's full line span: a diagnostic anchored at the
// first line of a wrapped call is silenced by the comment after the
// closing parenthesis three lines later.
const allowDirective = "//gowren:allow"

// AuditCheck names the allow-list audit analyzer. Its diagnostics flag
// //gowren:allow directives themselves (missing justifications), so they are
// exempt from suppression: an allow comment cannot vouch for itself.
const AuditCheck = "allowaudit"

// allowSet maps file → line → set of allowed check names for that line.
type allowSet map[string]map[int]map[string]bool

// allowedLines collects every //gowren:allow directive in pkg's files.
func allowedLines(pkg *Package) allowSet {
	set := allowSet{}
	for _, file := range pkg.Files {
		spans := stmtSpans(pkg, file)
		for _, group := range file.Comments {
			for _, c := range group.List {
				checks, _, ok := ParseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				// The directive covers its own line (trailing comment)
				// and the next line (standalone comment above the code) —
				// widened to the full line span of the statement the
				// comment trails (ends on the directive's line) or
				// precedes (starts on the next line), so multi-line call
				// expressions are covered wherever the diagnostic anchors.
				mark := map[int]bool{pos.Line: true, pos.Line + 1: true}
				for _, s := range spans {
					if s.end == pos.Line || s.start == pos.Line+1 {
						for line := s.start; line <= s.end; line++ {
							mark[line] = true
						}
					}
				}
				for line := range mark { //gowren:allow mapiter — set insertion is order-independent
					if lines[line] == nil {
						lines[line] = map[string]bool{}
					}
					for _, name := range checks {
						lines[line][name] = true
					}
				}
			}
		}
	}
	return set
}

// lineSpan is the line range of one suppressible statement.
type lineSpan struct{ start, end int }

// stmtSpans collects the line spans of the file's blockless statements and
// declarations — the nodes a //gowren:allow comment plausibly attaches to.
// Block-bodied constructs (functions, if/for/switch/select) are excluded:
// a trailing comment after a closing brace must not silently blanket an
// entire body. For overlapping candidates sharing an end (or start) line,
// the widened coverage is their union, which is dominated by the outermost
// statement — exactly the expression the human wrote the comment against.
func stmtSpans(pkg *Package, file *ast.File) []lineSpan {
	var spans []lineSpan
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ExprStmt, *ast.AssignStmt, *ast.ReturnStmt, *ast.GoStmt,
			*ast.DeferStmt, *ast.SendStmt, *ast.IncDecStmt, *ast.DeclStmt,
			*ast.GenDecl, *ast.ValueSpec:
			start := pkg.Fset.Position(n.Pos()).Line
			end := pkg.Fset.Position(n.End()).Line
			if end > start {
				spans = append(spans, lineSpan{start: start, end: end})
			}
		}
		return true
	})
	return spans
}

// ParseAllow extracts the check names and the free-form justification from
// one comment's text, reporting whether the comment is an allow directive at
// all. The justification is everything after the check list with the
// conventional "—"/"--" separator stripped; an empty string means the
// directive carries none (which the allowaudit analyzer flags).
func ParseAllow(text string) (checks []string, justification string, ok bool) {
	if !strings.HasPrefix(text, allowDirective) {
		return nil, "", false
	}
	rest := text[len(allowDirective):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, "", false // e.g. //gowren:allowlist — not ours
	}
	// Everything after the check list is a free-form justification,
	// conventionally introduced with "—" or "--".
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, "", false
	}
	for _, name := range strings.Split(fields[0], ",") {
		if name != "" {
			checks = append(checks, name)
		}
	}
	justification = strings.Join(fields[1:], " ")
	for _, sep := range []string{"—", "--", "-", ":"} {
		justification = strings.TrimPrefix(justification, sep)
	}
	justification = strings.TrimSpace(justification)
	return checks, justification, len(checks) > 0
}

// matches reports whether d is silenced by a directive in the set. Audit
// findings are never silenced: a bare //gowren:allow allowaudit would
// otherwise vouch for itself.
func (s allowSet) matches(d Diagnostic) bool {
	if d.Check == AuditCheck {
		return false
	}
	return s.allowsAt(d.Pos, d.Check)
}

// allowsAt reports whether a directive covers the given position for the
// named check. The facts engine uses this to cleanse taints at their
// origin: an allowed origin propagates nothing to its callers.
func (s allowSet) allowsAt(pos token.Position, check string) bool {
	lines, ok := s[pos.Filename]
	if !ok {
		return false
	}
	checks, ok := lines[pos.Line]
	if !ok {
		return false
	}
	return checks[check] || checks["all"]
}
