// Package analysis is GoWren's from-scratch static-analysis framework.
//
// GoWren's headline property — bit-identical same-seed runs of 2,000-call
// jobs on the virtual clock — is a whole-codebase invariant: one stray
// time.Now, one global math/rand draw, one unsorted map iteration feeding
// the wire encoding, and determinism silently dies. The analyzers in the
// subpackages (clockcheck, randcheck, errsink, mapiter, lockhold) encode
// those invariants as machine-checked rules; cmd/gowren-vet runs them over
// ./... and make lint gates on the result.
//
// The framework is intentionally stdlib-only (go/ast, go/parser, go/types,
// go/token plus the go command for export data) — no golang.org/x/tools
// dependency — so the repo keeps its "standard library only" contract.
//
// Suppression: a diagnostic is silenced by a comment
//
//	//gowren:allow <check> — justification
//
// on the flagged line or the line directly above it. Every allow comment
// is expected to carry a justification; gowren-vet -suppressed lists them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the check in diagnostics and in //gowren:allow
	// comments. Lower-case, no spaces.
	Name string
	// Doc is a one-line description shown by gowren-vet -list.
	Doc string
	// Run inspects pass.Pkg and reports findings through pass.Reportf.
	Run func(pass *Pass)
}

// Package is one loaded, parsed, type-checked package.
type Package struct {
	// Path is the import path (e.g. "gowren/internal/core").
	Path string
	// Fset maps token.Pos values of Files to positions.
	Fset *token.FileSet
	// Files are the package's non-test source files, parsed with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's fact tables for Files.
	Info *types.Info
	// Imports are the directly imported package paths; Run uses them to
	// schedule packages in import-topological order so callee taint facts
	// exist before their importers are analyzed.
	Imports []string
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	// Pos locates the finding (file:line:column).
	Pos token.Position
	// Check is the reporting analyzer's name.
	Check string
	// Message describes the finding and, ideally, the fix.
	Message string
	// Suppressed marks diagnostics matched by a //gowren:allow comment.
	// The driver keeps them (for -suppressed) but they do not fail a run.
	Suppressed bool
	// Chain is the taint chain for facts-powered findings, from the called
	// function down to the intrinsic origin (e.g. ["pkg/a.Helper",
	// "time.Now"]); nil for direct single-package findings.
	Chain []string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Check, d.Message)
}

// Pass carries one (analyzer, package) run.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	sink     *[]Diagnostic
	db       *FactDB
	allowed  allowSet
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Check:   p.analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// ReportTaint records a facts-powered diagnostic carrying the taint chain
// from the called function down to the intrinsic origin.
func (p *Pass) ReportTaint(pos token.Pos, chain []string, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Check:   p.analyzer.Name,
		Message: fmt.Sprintf(format, args...),
		Chain:   chain,
	})
}

// FuncTaints returns fn's taint summary from the serialized facts of its
// defining package (the current package included — its facts are computed
// before any analyzer runs). Nil for pure or out-of-set functions.
func (p *Pass) FuncTaints(fn *types.Func) []Taint {
	if p.db == nil {
		return nil
	}
	return p.db.FuncTaints(fn)
}

// NodeTaints scans an arbitrary subtree — typically a goroutine body — for
// taints: intrinsic origins plus calls into summarized functions, with the
// same origin-side //gowren:allow cleansing the summaries apply.
func (p *Pass) NodeTaints(node ast.Node) []Taint {
	if p.db == nil || p.Pkg.Info == nil {
		return nil
	}
	scan := &taintScan{pkg: p.Pkg, allowed: p.allowed, db: p.db, resolveLocal: true, sum: map[TaintKind]Taint{}}
	scan.walk(node)
	return sortedTaints(scan.sum)
}

// Run applies every analyzer to every package, applies //gowren:allow
// suppression, and returns all diagnostics sorted by position then check
// name. The returned slice includes suppressed diagnostics (marked as
// such) so callers can audit the allow list; filter with Active.
//
// Packages are scheduled in import-topological order: before a package's
// analyzers run, its taint facts are computed (a bottom-up fixed point
// over the package call graph, consulting dependency summaries) and
// serialized into a FactDB, so analyzers in dependent packages see
// through cross-package call chains.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	db := NewFactDB()
	for _, pkg := range topoOrder(pkgs) {
		allowed := allowedLines(pkg)
		_ = db.Add(computeFacts(pkg, db, allowed))
		start := len(diags)
		for _, a := range analyzers {
			pass := &Pass{Pkg: pkg, analyzer: a, sink: &diags, db: db, allowed: allowed}
			a.Run(pass)
		}
		for i := start; i < len(diags); i++ {
			if allowed.matches(diags[i]) {
				diags[i].Suppressed = true
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return diags
}

// Active returns the diagnostics that were not suppressed.
func Active(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// Suppressed returns the diagnostics silenced by //gowren:allow comments.
func Suppressed(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}
