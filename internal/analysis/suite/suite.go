// Package suite assembles the full gowren-vet analyzer suite. It exists
// as its own package (rather than a registry in internal/analysis) so the
// framework does not import its own analyzers.
package suite

import (
	"gowren/internal/analysis"
	"gowren/internal/analysis/allowaudit"
	"gowren/internal/analysis/clockcheck"
	"gowren/internal/analysis/errsink"
	"gowren/internal/analysis/lockhold"
	"gowren/internal/analysis/mapiter"
	"gowren/internal/analysis/randcheck"
	"gowren/internal/analysis/vclockescape"
)

// All returns every analyzer in the suite, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		allowaudit.Analyzer,
		clockcheck.Analyzer,
		errsink.Analyzer,
		lockhold.Analyzer,
		mapiter.Analyzer,
		randcheck.Analyzer,
		vclockescape.Analyzer,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
