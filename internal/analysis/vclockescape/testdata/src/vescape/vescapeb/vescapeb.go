// Package vescapeb spawns goroutines from vclock-driven code; bodies that
// transitively block on wall time must be flagged at the go statement.
package vescapeb

import (
	"time"

	"gowren-fixtures/vescape/vescapea"
	"gowren/internal/vclock"
)

// Drive advances the simulation on the virtual clock while spawning
// helpers; every wall-time escape below is one finding.
func Drive(clk vclock.Clock) {
	go vescapea.SpinWall()
	go vescapea.SpinDeep()
	go func() {
		time.Sleep(time.Millisecond)
	}()
	go func() {
		clk.Sleep(time.Millisecond) // vclock sleep: quiet
	}()
	go vescapea.SpinSanctioned() // origin cleansed: quiet
	go vescapea.ReadOnly()       // reads, never blocks: quiet here
	clk.Sleep(time.Second)
}

// NotDriven never touches the vclock: the escape-from-virtual-time hazard
// does not exist, so spawning a wall-time sleeper is not flagged here.
func NotDriven() {
	go vescapea.SpinWall()
}

// AllowedEscape documents a justified wall-time helper at the spawn site.
func AllowedEscape(clk vclock.Clock) {
	go vescapea.SpinWall() //gowren:allow vclockescape — fixture: sanctioned wall-time helper
	clk.Sleep(time.Second)
}
