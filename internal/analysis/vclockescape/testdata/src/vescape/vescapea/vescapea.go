// Package vescapea holds wall-time blockers for goroutines in importing
// packages to escape onto.
package vescapea

import "time"

// SpinWall blocks on the wall clock — the escape vclockescape chases
// through the facts engine.
func SpinWall() {
	for i := 0; i < 3; i++ {
		time.Sleep(time.Second)
	}
}

// SpinDeep reaches the wall sleep through a same-package hop.
func SpinDeep() {
	SpinWall()
}

// SpinSanctioned is cleansed at the origin: spawning it stays quiet.
func SpinSanctioned() {
	time.Sleep(time.Second) //gowren:allow clockcheck — fixture: sanctioned real-mode spinner
}

// ReadOnly reads the clock but never blocks: clockcheck's business, not
// vclockescape's.
func ReadOnly() int64 {
	return time.Now().UnixNano()
}
