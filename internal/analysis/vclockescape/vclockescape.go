// Package vclockescape flags goroutines spawned from vclock-driven code
// whose bodies transitively block on wall time.
//
// This is the bug class no single-package, single-function check can
// express: a function advancing the simulation on the virtual clock spawns
// a helper goroutine, and somewhere down the helper's call chain — often
// in another package — sits a time.Sleep. The goroutine now blocks on the
// host's wall clock while the rest of the simulation runs on virtual time:
// same-seed runs stop being bit-identical, and on a fast virtual clock the
// sleeper simply never wakes inside the simulated window. The analyzer is
// facts-native: the spawned body's taint summary comes from the
// interprocedural facts engine, so the sleep may hide arbitrarily many
// calls (and packages) away.
//
// "vclock-driven" means the enclosing function mentions the vclock package
// at all — takes a vclock.Clock, calls vclock.Poll, reads vclock.Since.
// Code that never touches the virtual clock (real-mode main loops, test
// scaffolding outside the suite's scope) is not this analyzer's business;
// direct wall-clock use there is still clockcheck's.
//
// Suppress at the spawn site with //gowren:allow vclockescape, or cleanse
// at the origin with //gowren:allow clockcheck on the wall-time sleep
// itself (which silences the whole chain for every caller).
package vclockescape

import (
	"go/ast"
	"go/types"
	"strings"

	"gowren/internal/analysis"
)

// Analyzer is the vclockescape analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "vclockescape",
	Doc:  "goroutines spawned from vclock-driven code that transitively block on wall time",
	Run:  run,
}

func run(pass *analysis.Pass) {
	if strings.HasSuffix(pass.Pkg.Path, "internal/vclock") {
		return // the substrate's own goroutines implement the clocks
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !usesVClock(pass, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if gs, ok := n.(*ast.GoStmt); ok {
					checkSpawn(pass, gs)
				}
				return true
			})
		}
	}
}

// usesVClock reports whether the function mentions the vclock package —
// an object defined there, or the package name itself (covering
// vclock.Clock parameters and vclock.Poll/Since calls).
func usesVClock(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		ident, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Pkg.Info.Uses[ident]
		if obj == nil {
			obj = pass.Pkg.Info.Defs[ident]
		}
		switch o := obj.(type) {
		case *types.PkgName:
			if strings.HasSuffix(o.Imported().Path(), "internal/vclock") {
				found = true
			}
		case nil:
		default:
			if o.Pkg() != nil && strings.HasSuffix(o.Pkg().Path(), "internal/vclock") {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkSpawn inspects one go statement: a function-literal body is scanned
// in place through the facts engine, a named callee is looked up in its
// package's serialized summary. Only wall-sleep taints fire — a goroutine
// that merely reads time.Now skews data, which clockcheck already reports,
// but one that blocks on wall time deadlocks the virtual schedule.
func checkSpawn(pass *analysis.Pass, gs *ast.GoStmt) {
	var taints []analysis.Taint
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		taints = pass.NodeTaints(fun.Body)
	default:
		if fn := analysis.CalleeFunc(pass.Pkg.Info, gs.Call); fn != nil {
			for _, t := range pass.FuncTaints(fn) {
				t.Chain = append([]string{analysis.FuncLabel(fn)}, t.Chain...)
				taints = append(taints, t)
			}
		}
	}
	for _, t := range taints {
		if t.Kind != analysis.TaintWallSleep {
			continue
		}
		pass.ReportTaint(gs.Pos(), t.Chain,
			"goroutine spawned from vclock-driven code blocks on the wall clock (%s); sleep on the injected vclock.Clock so virtual time can advance",
			strings.Join(t.Chain, " → "))
	}
}
