package vclockescape_test

import (
	"testing"

	"gowren/internal/analysis/analysistest"
	"gowren/internal/analysis/vclockescape"
)

func TestVclockescapeFixture(t *testing.T) {
	analysistest.Run(t, vclockescape.Analyzer, "vescape")
}
