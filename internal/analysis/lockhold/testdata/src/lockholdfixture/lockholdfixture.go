// Package lockholdfixture exercises lockhold: blocking while holding a
// mutex must be flagged; collect-then-release must pass.
package lockholdfixture

import (
	"sync"
	"time"

	"gowren/internal/vclock"
)

type guarded struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	clk vclock.Clock
	n   int
}

// badSleep holds the mutex across a clock sleep.
func (g *guarded) badSleep() {
	g.mu.Lock()
	g.clk.Sleep(time.Second)
	g.mu.Unlock()
}

// badDeferPoll holds (via defer) across a poll loop.
func (g *guarded) badDeferPoll() {
	g.mu.Lock()
	defer g.mu.Unlock()
	vclock.Poll(g.clk, func() bool { return g.n > 0 }, time.Millisecond, time.Time{})
}

// badChan blocks on a channel receive under an RLock.
func (g *guarded) badChan(ch chan int) int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return <-ch
}

// badWaitGroup waits for a group while holding the lock.
func (g *guarded) badWaitGroup(wg *sync.WaitGroup) {
	g.mu.Lock()
	wg.Wait()
	g.mu.Unlock()
}

// badSend blocks on a channel send in a branch entered while held.
func (g *guarded) badSend(ch chan int) {
	g.mu.Lock()
	if g.n > 0 {
		ch <- g.n
	}
	g.mu.Unlock()
}

// goodCollectThenBlock releases before blocking — the required shape.
func (g *guarded) goodCollectThenBlock() {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	g.clk.Sleep(time.Duration(n))
}

// goodDeferNoBlock holds via defer but never blocks.
func (g *guarded) goodDeferNoBlock() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// goodClosure: the spawned goroutine does not run under the caller's
// lock, and its body is checked independently with fresh state.
func (g *guarded) goodClosure(ch chan int) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	g.clk.Go(func() {
		<-ch
	})
}

// allowed demonstrates the escape hatch.
func (g *guarded) allowed() {
	g.mu.Lock()
	g.clk.Sleep(time.Millisecond) //gowren:allow lockhold — fixture: bounded one-tick hold
	g.mu.Unlock()
}
